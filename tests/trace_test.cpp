// The tracing tier (ctest label `trace`): TraceRecorder/MetricsRegistry
// units, Chrome JSON shape, golden-trace determinism on a fig3-style
// bandwidth-drop scenario, and temporal invariants read back from recorded
// traces — 1F1B ordering, fine-grained vs stop-the-world switching, and
// max-min capacity respect.
//
// Golden file regeneration: run with AUTOPIPE_REGEN_GOLDEN=1 in the
// environment and the checked-in trace is rewritten instead of compared.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "common/units.hpp"
#include "golden_scenario.hpp"
#include "models/zoo.hpp"
#include "partition/partition.hpp"
#include "pipeline/executor.hpp"
#include "sim/cluster.hpp"
#include "sim/trace.hpp"

namespace autopipe {
namespace {

using trace::Category;
using trace::Event;
using trace::TraceRecorder;

// ---------------------------------------------------------------------------
// MetricsRegistry (always compiled, tracing on or off)
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CountersAccumulateAndGaugesOverwrite) {
  trace::MetricsRegistry metrics;
  EXPECT_TRUE(metrics.empty());
  EXPECT_DOUBLE_EQ(metrics.value("never.touched"), 0.0);
  EXPECT_FALSE(metrics.has("never.touched"));

  metrics.add("a.count");
  metrics.add("a.count");
  metrics.add("a.bytes", 100.0);
  metrics.set("a.gauge", 7.0);
  metrics.set("a.gauge", 3.0);

  EXPECT_DOUBLE_EQ(metrics.value("a.count"), 2.0);
  EXPECT_DOUBLE_EQ(metrics.value("a.bytes"), 100.0);
  EXPECT_DOUBLE_EQ(metrics.value("a.gauge"), 3.0);
  EXPECT_TRUE(metrics.has("a.gauge"));
  EXPECT_EQ(metrics.all().size(), 3u);
  // std::map keeps names sorted — printed forms are deterministic.
  EXPECT_EQ(metrics.all().begin()->first, "a.bytes");
  metrics.clear();
  EXPECT_TRUE(metrics.empty());
}

TEST(TraceFormat, FormatDoubleIsDeterministic) {
  EXPECT_EQ(trace::format_double(0.5), "0.5");
  EXPECT_EQ(trace::format_double(1e9), "1e+09");
  EXPECT_EQ(trace::format_double(0.1 + 0.2), trace::format_double(0.1 + 0.2));
}

#if AUTOPIPE_TRACING

// ---------------------------------------------------------------------------
// TraceRecorder unit behaviour
// ---------------------------------------------------------------------------

TEST(TraceRecorder, DisabledByDefaultRecordsNothing) {
  TraceRecorder rec;
  EXPECT_FALSE(rec.enabled());
  rec.complete(Category::kCompute, "fp", 0.0, 1.0, 0, 0);
  rec.instant(Category::kMark, "x", 0.5, 0, 0);
  rec.counter(Category::kComm, "c", 0.5, 1.0);
  EXPECT_EQ(rec.size(), 0u);
}

TEST(TraceRecorder, RecordsEventsWithArgs) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.complete(Category::kCompute, "fp", 1.0, 2.5, 3, 1,
               {trace::arg("batch", 7), trace::arg("speed", 0.5)});
  rec.async_begin(Category::kComm, "flow", 42, 1.5);
  rec.async_end(Category::kComm, "flow", 42, 2.0);
  ASSERT_EQ(rec.size(), 3u);

  const Event& fp = rec.events()[0];
  EXPECT_EQ(fp.phase, 'X');
  EXPECT_DOUBLE_EQ(fp.ts, 1.0);
  EXPECT_DOUBLE_EQ(fp.dur, 1.5);
  EXPECT_EQ(fp.pid, 3);
  EXPECT_EQ(fp.tid, 1);
  ASSERT_NE(fp.find_arg("batch"), nullptr);
  EXPECT_EQ(*fp.find_arg("batch"), "7");
  ASSERT_NE(fp.find_arg("speed"), nullptr);
  EXPECT_EQ(*fp.find_arg("speed"), "0.5");
  EXPECT_EQ(fp.find_arg("absent"), nullptr);

  EXPECT_EQ(rec.events()[1].phase, 'b');
  EXPECT_EQ(rec.events()[2].phase, 'e');
  EXPECT_EQ(rec.events()[1].id, 42u);

  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
}

TEST(TraceRecorder, ChromeJsonHasRequiredFields) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.complete(Category::kCompute, "fp", 0.001, 0.002, 0, 1,
               {trace::arg("batch", 1)});
  rec.instant(Category::kSwitch, "switch_request_stw", 0.003,
              trace::kPidControl, 0);
  rec.counter(Category::kComm, "cap:link", 0.0, 100.0);

  std::ostringstream os;
  rec.write_chrome_json(os);
  const std::string json = os.str();
  // trace_event essentials: the array key, per-event name/ph/ts/pid/tid,
  // and process_name metadata for the synthetic rows.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fp\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  // Chrome timestamps are microseconds: the 0.001 s span starts at ts=1000.
  EXPECT_NE(json.find("\"ts\":1000.000"), std::string::npos);
}

TEST(TraceRecorder, TextFormatIsStable) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.complete(Category::kCompute, "fp", 0.25, 0.5, 2, 1,
               {trace::arg("batch", 3)});
  rec.counter(Category::kComm, "cap:link", 0.0, 12.5);
  std::ostringstream os;
  rec.write_text(os);
  EXPECT_EQ(os.str(),
            "0.250000000 compute X fp pid=2 tid=1 dur=0.250000000 eid=1 "
            "batch=3\n"
            "0.000000000 comm C cap:link pid=1000 tid=0 value=12.5\n");
}

// ---------------------------------------------------------------------------
// Scenario helpers (the golden scenario itself lives in golden_scenario.hpp,
// shared with the differential parity harness)
// ---------------------------------------------------------------------------

using test_scenarios::GoldenCapture;
using test_scenarios::run_golden_scenario;
using test_scenarios::tiny_model;

struct SwitchCapture {
  std::vector<Event> events;
  std::map<std::string, double> metrics;
  std::size_t switches = 0;
  double request_ts = -1.0;
  double finish_ts = -1.0;  // end of the switch X span
};

/// AlexNet on two single-GPU servers over a slow NIC, with a mid-run switch
/// that re-homes the parameter-heavy tail layers — the migration takes many
/// iterations' worth of wire time, so the two switching modes behave
/// visibly differently.
SwitchCapture run_switch_scenario(
    pipeline::PipelineExecutor::SwitchMode mode) {
  sim::Simulator sim;
  sim.tracer().set_enabled(true);
  sim::ClusterConfig config;
  config.num_servers = 2;
  config.gpus_per_server = 1;
  config.nic_bandwidth = gbps(1);
  sim::Cluster cluster(sim, config);

  const auto model = models::alexnet();
  const std::size_t L = model.num_layers();
  const auto initial =
      partition::Partition::even_split(L, {0, 1});
  // Move everything but the last layer onto worker 0: the fully-connected
  // layers' parameters cross the wire.
  const partition::Partition next(
      {{0, L - 2, {0}}, {L - 1, L - 1, {1}}}, L);

  pipeline::PipelineExecutor executor(cluster, model, initial,
                                      pipeline::ExecutorConfig{});
  executor.set_iteration_callback([&](std::size_t iters) {
    if (iters == 3) executor.request_switch(next, mode);
  });
  executor.run(25, 2);

  SwitchCapture capture;
  capture.events = sim.tracer().events();
  capture.metrics = sim.metrics().all();
  capture.switches = executor.switches_performed();
  for (const Event& ev : capture.events) {
    if (ev.phase == 'i' && (ev.name == "switch_request_stw" ||
                            ev.name == "switch_request_fine")) {
      capture.request_ts = ev.ts;
    }
    if (ev.phase == 'X' && ev.name == "switch") {
      capture.finish_ts = ev.ts + ev.dur;
    }
  }
  return capture;
}

// ---------------------------------------------------------------------------
// Golden-trace determinism
// ---------------------------------------------------------------------------

TEST(GoldenTrace, RepeatedRunsAreByteIdentical) {
  const GoldenCapture a = run_golden_scenario();
  const GoldenCapture b = run_golden_scenario();
  EXPECT_FALSE(a.text.empty());
  EXPECT_EQ(a.text, b.text);
  // The scenario exercises compute, comm and resource emissions.
  EXPECT_NE(a.text.find(" compute X fp "), std::string::npos);
  EXPECT_NE(a.text.find(" compute X bp "), std::string::npos);
  EXPECT_NE(a.text.find(" comm b flow "), std::string::npos);
  EXPECT_NE(a.text.find("nic_bw"), std::string::npos);
  EXPECT_NE(a.text.find(" mark i iteration "), std::string::npos);
}

TEST(GoldenTrace, MatchesCheckedInGolden) {
  const std::string path =
      std::string(AUTOPIPE_GOLDEN_DIR) + "/bandwidth_drop.trace";
  const GoldenCapture capture = run_golden_scenario();

  if (std::getenv("AUTOPIPE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write golden file " << path;
    out << capture.text;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — regenerate with AUTOPIPE_REGEN_GOLDEN=1";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(capture.text, golden.str())
      << "trace drifted from the golden file; if the change is intended, "
         "regenerate with AUTOPIPE_REGEN_GOLDEN=1";
}

// ---------------------------------------------------------------------------
// Temporal invariants read back from traces
// ---------------------------------------------------------------------------

std::uint64_t batch_of(const Event& ev) {
  const std::string* arg = ev.find_arg("batch");
  EXPECT_NE(arg, nullptr);
  return arg ? std::stoull(*arg) : 0;
}

TEST(TraceInvariants, OneFOneBOrderingPerStage) {
  const GoldenCapture capture = run_golden_scenario();

  // With replication 1 each stage serves batches FIFO: the batch ids of its
  // fp spans (and of its bp spans) must be strictly increasing.
  std::map<int, std::uint64_t> last_fp, last_bp;
  // A batch's fp must finish on stage s before it finishes on stage s+1,
  // and its bp on stage s must start after its fp on stage s ended.
  std::map<std::uint64_t, std::map<int, const Event*>> fp_by_batch;

  for (const Event& ev : capture.events) {
    if (ev.phase != 'X' || (ev.name != "fp" && ev.name != "bp")) continue;
    const std::uint64_t batch = batch_of(ev);
    auto& last = ev.name == "fp" ? last_fp : last_bp;
    auto it = last.find(ev.tid);
    if (it != last.end()) {
      EXPECT_LT(it->second, batch)
          << ev.name << " order violated on stage " << ev.tid;
    }
    last[ev.tid] = batch;
    if (ev.name == "fp") fp_by_batch[batch][ev.tid] = &ev;
  }
  EXPECT_FALSE(fp_by_batch.empty());

  for (const auto& [batch, stages] : fp_by_batch) {
    const Event* prev = nullptr;
    for (const auto& [stage, ev] : stages) {
      if (prev) {
        EXPECT_LE(prev->ts + prev->dur, ev->ts + ev->dur + 1e-9)
            << "batch " << batch << " fp completed upstream later than "
            << "downstream at stage " << stage;
      }
      prev = ev;
    }
  }

  for (const Event& ev : capture.events) {
    if (ev.phase != 'X' || ev.name != "bp") continue;
    const std::uint64_t batch = batch_of(ev);
    const auto it = fp_by_batch.find(batch);
    ASSERT_NE(it, fp_by_batch.end());
    const auto fp_it = it->second.find(ev.tid);
    if (fp_it == it->second.end()) continue;
    EXPECT_GE(ev.ts + 1e-9, fp_it->second->ts + fp_it->second->dur)
        << "bp of batch " << batch << " started before its fp ended on "
        << "stage " << ev.tid;
  }
}

TEST(TraceInvariants, FineGrainedSwitchNeverHaltsInjection) {
  const SwitchCapture capture = run_switch_scenario(
      pipeline::PipelineExecutor::SwitchMode::kFineGrained);
  ASSERT_EQ(capture.switches, 1u);
  ASSERT_GE(capture.request_ts, 0.0);
  ASSERT_GT(capture.finish_ts, capture.request_ts);

  std::size_t injected_during_switch = 0;
  for (const Event& ev : capture.events) {
    if (ev.phase == 'i' && ev.name == "inject" &&
        ev.ts > capture.request_ts + 1e-9 &&
        ev.ts < capture.finish_ts - 1e-9) {
      ++injected_during_switch;
    }
  }
  EXPECT_GE(injected_during_switch, 1u)
      << "fine-grained switching must keep feeding the pipeline while the "
         "migration is on the wire (span "
      << capture.request_ts << " .. " << capture.finish_ts << ")";
}

TEST(TraceInvariants, StopTheWorldSwitchShowsDrainGap) {
  const SwitchCapture capture = run_switch_scenario(
      pipeline::PipelineExecutor::SwitchMode::kStopTheWorld);
  ASSERT_EQ(capture.switches, 1u);
  ASSERT_GE(capture.request_ts, 0.0);
  // The stall is real: drain plus migration takes simulated time.
  ASSERT_GT(capture.finish_ts, capture.request_ts + 1e-6);

  for (const Event& ev : capture.events) {
    if (ev.phase == 'i' && ev.name == "inject") {
      EXPECT_FALSE(ev.ts > capture.request_ts + 1e-9 &&
                   ev.ts < capture.finish_ts - 1e-9)
          << "stop-the-world injected a batch mid-switch at t=" << ev.ts;
    }
  }
}

TEST(TraceInvariants, FlowsNeverExceedLinkCapacity) {
  const GoldenCapture capture = run_golden_scenario();
  // Replay the cap:/load: counter stream: at no instant may a resource's
  // allocated load exceed its then-current capacity.
  std::map<std::string, double> cap;
  std::size_t loads_checked = 0;
  for (const Event& ev : capture.events) {
    if (ev.phase != 'C') continue;
    if (ev.name.rfind("cap:", 0) == 0) {
      cap[ev.name.substr(4)] = ev.value;
    } else if (ev.name.rfind("load:", 0) == 0) {
      const std::string resource = ev.name.substr(5);
      ASSERT_TRUE(cap.count(resource)) << "load before cap for " << resource;
      EXPECT_LE(ev.value, cap[resource] + 1e-6)
          << resource << " oversubscribed at t=" << ev.ts;
      ++loads_checked;
    }
  }
  EXPECT_GT(loads_checked, 0u);
}

// ---------------------------------------------------------------------------
// Metrics wired through the executor
// ---------------------------------------------------------------------------

TEST(ExecutorMetrics, SwitchCountersAccumulate) {
  const SwitchCapture stw = run_switch_scenario(
      pipeline::PipelineExecutor::SwitchMode::kStopTheWorld);
  EXPECT_DOUBLE_EQ(stw.metrics.at("switch.count"), 1.0);
  EXPECT_GT(stw.metrics.at("switch.migration_bytes"), 0.0);
  EXPECT_GT(stw.metrics.at("switch.stall_seconds"), 0.0);
  EXPECT_GE(stw.metrics.at("pipeline.bubble_seconds"), 0.0);

  const SwitchCapture fine = run_switch_scenario(
      pipeline::PipelineExecutor::SwitchMode::kFineGrained);
  EXPECT_DOUBLE_EQ(fine.metrics.at("switch.count"), 1.0);
  // Fine-grained never stops the pipeline, so it accrues no stall metric.
  EXPECT_EQ(fine.metrics.count("switch.stall_seconds"), 0u);
}

#else  // !AUTOPIPE_TRACING

TEST(TraceRecorder, CompiledOutIsInertAndValid) {
  TraceRecorder rec;
  rec.set_enabled(true);  // a no-op when compiled out
  EXPECT_FALSE(TraceRecorder::enabled());
  rec.complete(Category::kCompute, "fp", 0.0, 1.0, 0, 0);
  EXPECT_EQ(rec.size(), 0u);
  std::ostringstream os;
  rec.write_chrome_json(os);
  EXPECT_NE(os.str().find("\"traceEvents\":[]"), std::string::npos);
}

#endif  // AUTOPIPE_TRACING

}  // namespace
}  // namespace autopipe
