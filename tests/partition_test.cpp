// Partitioning tests: Partition invariants, the analytic pipeline model,
// the PipeDream DP planner (checked against the exhaustive oracle — the
// strongest property available), and the two-worker neighbourhood.
#include <gtest/gtest.h>

#include <set>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "models/zoo.hpp"
#include "partition/analytic_eval.hpp"
#include "partition/environment.hpp"
#include "partition/exhaustive.hpp"
#include "partition/neighborhood.hpp"
#include "partition/partition.hpp"
#include "partition/pipedream_planner.hpp"
#include "partition/rebalance.hpp"
#include "common/stats.hpp"

namespace autopipe::partition {
namespace {

/// Uniform environment helper.
EnvironmentView uniform_env(std::size_t workers, FlopsPerSec speed,
                            BytesPerSec bw,
                            comm::SyncScheme scheme = comm::SyncScheme::kRing) {
  EnvironmentView env;
  env.worker_speed.assign(workers, speed);
  env.worker_bandwidth.assign(workers, bw);
  env.sync_scheme = scheme;
  return env;
}

/// A small synthetic model for oracle comparisons.
models::ModelSpec tiny_model(std::size_t layers) {
  std::vector<models::LayerSpec> specs;
  for (std::size_t l = 0; l < layers; ++l) {
    models::LayerSpec s;
    s.name = "l" + std::to_string(l);
    s.fwd_flops_per_sample = 1e6 * static_cast<double>(1 + (l % 3));
    s.bwd_flops_per_sample = 2.0 * s.fwd_flops_per_sample;
    s.activation_bytes_per_sample = 1e3 * static_cast<double>(1 + (l % 2));
    s.param_bytes = 4e4 * static_cast<double>(1 + (l % 4));
    specs.push_back(std::move(s));
  }
  return models::ModelSpec("tiny", 8, std::move(specs));
}

TEST(Partition, ValidatesContiguity) {
  EXPECT_NO_THROW(Partition({{0, 2, {0}}, {3, 4, {1}}}, 5));
  // Gap.
  EXPECT_THROW(Partition({{0, 1, {0}}, {3, 4, {1}}}, 5), contract_error);
  // Overlap.
  EXPECT_THROW(Partition({{0, 2, {0}}, {2, 4, {1}}}, 5), contract_error);
  // Missing tail.
  EXPECT_THROW(Partition({{0, 2, {0}}}, 5), contract_error);
  // Duplicate worker.
  EXPECT_THROW(Partition({{0, 2, {0}}, {3, 4, {0}}}, 5), contract_error);
  // Empty worker set.
  EXPECT_THROW(Partition({{0, 4, {}}}, 5), contract_error);
}

TEST(Partition, EvenSplitCoversAllLayers) {
  const Partition p = Partition::even_split(10, {0, 1, 2});
  EXPECT_EQ(p.num_stages(), 3u);
  EXPECT_EQ(p.stage(0).num_layers(), 4u);  // remainder goes first
  EXPECT_EQ(p.stage(1).num_layers(), 3u);
  EXPECT_EQ(p.stage(2).num_layers(), 3u);
  EXPECT_EQ(p.stage_of_layer(0), 0u);
  EXPECT_EQ(p.stage_of_layer(9), 2u);
}

TEST(Partition, WorkerLookup) {
  const Partition p({{0, 1, {3, 4}}, {2, 4, {7}}}, 5);
  EXPECT_EQ(p.stage_of_worker(3), 0u);
  EXPECT_EQ(p.stage_of_worker(7), 1u);
  EXPECT_EQ(p.stage_of_worker(0), Partition::npos);
  EXPECT_EQ(p.num_workers(), 3u);
}

TEST(Partition, ChangedWorkersDetectsLayerMoves) {
  const Partition a({{0, 2, {0}}, {3, 4, {1}}}, 5);
  const Partition b({{0, 1, {0}}, {2, 4, {1}}}, 5);
  const auto changed = a.changed_workers(b);
  EXPECT_EQ(changed, (std::vector<sim::WorkerId>{0, 1}));
  EXPECT_TRUE(a.changed_workers(a).empty());
}

TEST(Partition, ToStringIsStable) {
  const Partition p({{0, 2, {0, 1}}, {3, 4, {2}}}, 5);
  EXPECT_EQ(p.to_string(), "L0-2@{0,1} | L3-4@{2}");
}

TEST(AnalyticEval, SingleWorkerMatchesHandComputation) {
  const auto model = tiny_model(4);
  const auto env = uniform_env(1, 1e9, 1e9);
  const Partition p = Partition::single_stage(4, {0});
  // Work: batch 8 x sum (fwd+bwd) flops.
  double flops = 0.0;
  for (std::size_t l = 0; l < 4; ++l)
    flops += (model.fwd_flops(l, 8) + model.bwd_flops(l, 8));
  EXPECT_NEAR(analytic_batch_time(model, p, env, 8), flops / 1e9, 1e-12);
}

TEST(AnalyticEval, ReplicationAmortizes) {
  const auto model = tiny_model(4);
  const auto env = uniform_env(4, 1e9, 1e12);  // effectively free sync
  const Seconds t1 = analytic_batch_time(
      model, Partition::single_stage(4, {0}), env, 8);
  const Seconds t4 = analytic_batch_time(
      model, Partition::single_stage(4, {0, 1, 2, 3}), env, 8);
  EXPECT_NEAR(t4, t1 / 4.0, t1 * 0.02);
}

TEST(AnalyticEval, LowBandwidthMakesBoundaryTheBottleneck) {
  const auto model = tiny_model(4);
  const auto env = uniform_env(2, 1e15, 1.0);  // compute free, wire 1 B/s
  const Partition p({{0, 1, {0}}, {2, 3, {1}}}, 4);
  const Seconds t = analytic_batch_time(model, p, env, 8);
  EXPECT_NEAR(t, model.activation_bytes(1, 8), 1.0);
}

TEST(AnalyticEval, OptimalInFlight) {
  EXPECT_EQ(optimal_in_flight(Partition::even_split(8, {0, 1, 2, 3})), 4u);
  // Replicated input stage: NOW per replica (= ceil(4/2) = 2) times the
  // input replication, so every replica keeps its own pipeline full.
  const Partition p({{0, 3, {0, 1}}, {4, 7, {2, 3}}}, 8);
  EXPECT_EQ(optimal_in_flight(p), 4u);
}

TEST(Planner, ProducesValidPartitionForZooModels) {
  for (const auto& model : models::image_models()) {
    const auto env = uniform_env(10, tflops(4), gbps(25));
    PipeDreamPlanner planner(model, env, model.default_batch_size());
    const PlanResult plan = planner.plan(10);
    EXPECT_LE(plan.partition.num_workers(), 10u);
    EXPECT_GE(plan.in_flight, 1u);
    EXPECT_GT(plan.predicted_batch_time, 0.0);
    EXPECT_EQ(plan.partition.num_layers(), model.num_layers());
  }
}

TEST(Planner, SolveTimeIsSubSecond) {
  // Fig 12's claim: partition calculation well under one second.
  const auto model = models::resnet50();
  const auto env = uniform_env(10, tflops(4), gbps(25));
  PipeDreamPlanner planner(model, env, 128);
  (void)planner.plan(10);
  EXPECT_LT(planner.last_solve_seconds(), 1.0);
}

TEST(Planner, MoreBandwidthNeverHurtsPredictedTime) {
  const auto model = models::vgg16();
  Seconds prev = 1e18;
  for (double g : {10.0, 25.0, 40.0, 100.0}) {
    const auto env = uniform_env(10, tflops(4), gbps(g));
    PipeDreamPlanner planner(model, env, 64);
    const auto plan = planner.plan(10);
    EXPECT_LE(plan.predicted_batch_time, prev + 1e-9) << g << "Gbps";
    prev = plan.predicted_batch_time;
  }
}

/// The strongest property we can assert: under a uniform environment the DP
/// must match brute force over all (split, replication) choices.
class PlannerOracle : public ::testing::TestWithParam<int> {};

TEST_P(PlannerOracle, DpMatchesExhaustiveOptimum) {
  autopipe::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  const std::size_t layers = 4 + static_cast<std::size_t>(rng.uniform_int(0, 4));
  const std::size_t workers = 2 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  const auto model = tiny_model(layers);
  auto env = uniform_env(workers, rng.uniform(1e8, 1e10),
                         rng.uniform(1e5, 1e9));

  PipeDreamPlanner planner(model, env, 8,
                           PipeDreamPlanner::Mode::kCurrentEnvironment);
  const PlanResult dp = planner.plan(workers);
  const auto oracle = exhaustive_best(model, env, 8, workers);
  ASSERT_TRUE(oracle.has_value());

  const Seconds dp_time = analytic_batch_time(model, dp.partition, env, 8);
  EXPECT_NEAR(dp_time, oracle->predicted_batch_time,
              oracle->predicted_batch_time * 1e-9)
      << "dp: " << dp.partition.to_string()
      << " oracle: " << oracle->partition.to_string();
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, PlannerOracle,
                         ::testing::Range(0, 12));

TEST(Planner, PipeDreamModeIgnoresContention) {
  // The paper's Observation 2: PipeDream profiles one exclusive GPU, so
  // contended plans do not differ — while the current-environment mode
  // reacts.
  const auto model = models::vgg16();
  auto env = uniform_env(4, tflops(4), gbps(25));
  env.worker_speed[2] = tflops(1);  // worker 2 heavily contended

  PipeDreamPlanner stale(model, env, 64, PipeDreamPlanner::Mode::kPipeDream);
  auto env_uncontended = uniform_env(4, tflops(4), gbps(25));
  PipeDreamPlanner fresh(model, env_uncontended, 64,
                         PipeDreamPlanner::Mode::kPipeDream);
  EXPECT_EQ(stale.plan(4).partition, fresh.plan(4).partition);
}

TEST(Neighborhood, CandidatesAreValidAndDistinct) {
  const auto model = models::alexnet();
  const Partition current = Partition::even_split(model.num_layers(),
                                                  {0, 1, 2, 3});
  const auto candidates = two_worker_candidates(current);
  EXPECT_FALSE(candidates.empty());
  std::set<std::string> seen;
  for (const auto& c : candidates) {
    EXPECT_NE(c.partition, current);
    EXPECT_FALSE(c.changed_workers.empty());
    EXPECT_EQ(c.partition.num_layers(), model.num_layers());
    seen.insert(c.partition.to_string());
  }
  EXPECT_EQ(seen.size(), candidates.size()) << "duplicate candidates";
}

TEST(Neighborhood, BoundaryMovesChangeExactlyTwoWorkers) {
  const Partition current = Partition::even_split(12, {0, 1, 2});
  for (const auto& c : two_worker_candidates(current)) {
    // Unreplicated stages: every candidate touches exactly two workers.
    EXPECT_EQ(c.changed_workers.size(), 2u) << c.partition.to_string();
  }
}

TEST(Neighborhood, SizeIsQuadraticInLayersAtMost) {
  const Partition current = Partition::even_split(20, {0, 1, 2, 3});
  const auto candidates = two_worker_candidates(current);
  EXPECT_LE(candidates.size(), 20u * 20u);
}

TEST(Neighborhood, ReachesRebalancedOptimum) {
  // A skewed partition must offer a candidate that improves the analytic
  // time — the gradual-migration premise.
  const auto model = tiny_model(8);
  const auto env = uniform_env(2, 1e9, 1e12);
  const Partition skewed({{0, 6, {0}}, {7, 7, {1}}}, 8);
  const Seconds t0 = analytic_batch_time(model, skewed, env, 8);
  bool improves = false;
  for (const auto& c : two_worker_candidates(skewed)) {
    if (analytic_batch_time(model, c.partition, env, 8) < t0) {
      improves = true;
      break;
    }
  }
  EXPECT_TRUE(improves);
}

TEST(Exhaustive, GuardRejectsLargeModels) {
  const auto env = uniform_env(2, 1e9, 1e9);
  EXPECT_FALSE(
      exhaustive_best(models::resnet50(), env, 32, 2).has_value());
}


TEST(Rebalance, UniformSpeedsApproximateEvenWork) {
  const auto model = tiny_model(12);
  const auto env = uniform_env(3, 1e9, 1e12);
  const Partition current = Partition::even_split(12, {0, 1, 2});
  const Partition balanced =
      speed_proportional_rebalance(model, current, env, 8);
  EXPECT_EQ(balanced.num_stages(), 3u);
  // Stage compute times within 2x of each other (layer granularity).
  std::vector<double> times;
  for (std::size_t s = 0; s < 3; ++s) {
    times.push_back(
        stage_cost(model, balanced.stage(s), env, 8).effective);
  }
  EXPECT_LT(max_of(times) / min_of(times), 2.0);
}

TEST(Rebalance, ShiftsWorkAwayFromSlowWorkers) {
  const auto model = tiny_model(12);
  auto env = uniform_env(3, 1e9, 1e12);
  env.worker_speed[1] = 2.5e8;  // worker 1 heavily contended
  const Partition current = Partition::even_split(12, {0, 1, 2});
  const Partition balanced =
      speed_proportional_rebalance(model, current, env, 8);
  // The contended worker's stage must shrink relative to the even split.
  EXPECT_LT(balanced.stage(1).num_layers(), current.stage(1).num_layers());
  // And the balanced plan must beat the even split analytically.
  EXPECT_LT(analytic_batch_time(model, balanced, env, 8),
            analytic_batch_time(model, current, env, 8));
}

TEST(Rebalance, PreservesStageWorkersAndContiguity) {
  const auto model = tiny_model(10);
  auto env = uniform_env(4, 1e9, 1e12);
  env.worker_speed[0] = 5e8;
  const Partition current({{0, 2, {0, 1}}, {3, 6, {2}}, {7, 9, {3}}}, 10);
  const Partition balanced =
      speed_proportional_rebalance(model, current, env, 8);
  ASSERT_EQ(balanced.num_stages(), 3u);
  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_EQ(balanced.stage(s).workers, current.stage(s).workers);
  // Contiguity and coverage are enforced by the Partition constructor; the
  // call not throwing is the assertion.
}

TEST(Rebalance, EveryStageKeepsAtLeastOneLayer) {
  const auto model = tiny_model(4);
  auto env = uniform_env(4, 1e9, 1e12);
  env.worker_speed[3] = 1e15;  // one worker absurdly fast
  const Partition current = Partition::even_split(4, {0, 1, 2, 3});
  const Partition balanced =
      speed_proportional_rebalance(model, current, env, 8);
  for (std::size_t s = 0; s < 4; ++s)
    EXPECT_GE(balanced.stage(s).num_layers(), 1u);
}

}  // namespace
}  // namespace autopipe::partition
