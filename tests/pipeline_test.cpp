// Pipeline-executor tests: steady-state throughput against hand-computed
// bottlenecks, schedule-family ordering (async vs flush bubbles), live
// partition switching in both modes, telemetry, and memory accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/expect.hpp"
#include "common/units.hpp"
#include "models/model.hpp"
#include "models/zoo.hpp"
#include "partition/analytic_eval.hpp"
#include "partition/partition.hpp"
#include "pipeline/executor.hpp"
#include "pipeline/memory.hpp"
#include "pipeline/schedule.hpp"
#include "sim/cluster.hpp"

namespace autopipe::pipeline {
namespace {

/// Four uniform layers, 100 FLOPs fwd / 200 bwd per sample, tiny tensors.
models::ModelSpec uniform_model(std::size_t layers = 4,
                                double act_bytes = 10.0,
                                double param_bytes = 40.0) {
  std::vector<models::LayerSpec> specs;
  for (std::size_t l = 0; l < layers; ++l) {
    models::LayerSpec s;
    s.name = "l" + std::to_string(l);
    s.fwd_flops_per_sample = 100.0;
    s.bwd_flops_per_sample = 200.0;
    s.activation_bytes_per_sample = act_bytes;
    s.param_bytes = param_bytes;
    specs.push_back(std::move(s));
  }
  return models::ModelSpec("uniform", 2, std::move(specs));
}

/// A small fast cluster: 4 servers x 1 GPU at 1e4 FLOP/s, 1e5 B/s NICs —
/// compute-dominated unless a test says otherwise.
struct Rig {
  explicit Rig(std::size_t servers = 4, double gpu_flops = 1e4,
               double nic = 1e5) {
    config.num_servers = servers;
    config.gpus_per_server = 1;
    config.gpu_specs = {sim::GpuSpec{"toy", gpu_flops, gib(16)}};
    config.nic_bandwidth = nic;
    cluster = std::make_unique<sim::Cluster>(sim, config);
  }
  sim::Simulator sim;
  sim::ClusterConfig config;
  std::unique_ptr<sim::Cluster> cluster;
};

ExecutorConfig clean_config() {
  ExecutorConfig c;
  c.framework.per_layer_overhead = 0.0;
  c.framework.comm_efficiency = 1.0;
  c.framework.compute_efficiency = 1.0;
  return c;
}

TEST(Executor, SingleStageMatchesComputeRate) {
  Rig rig(1);
  const auto model = uniform_model();
  PipelineExecutor executor(
      *rig.cluster, model,
      partition::Partition::single_stage(model.num_layers(), {0}),
      clean_config());
  const auto report = executor.run(20, 5);
  // Per batch: 4 layers x (100+200) FLOP/sample x 2 samples = 2400 FLOPs at
  // 1e4 FLOP/s = 0.24 s -> 2/0.24 ≈ 8.33 samples/s.
  EXPECT_NEAR(report.throughput, 2.0 / 0.24, 0.05);
  EXPECT_EQ(report.iterations, 20u);
  EXPECT_EQ(report.batch_size, 2u);
}

TEST(Executor, PipelineReachesBottleneckThroughput) {
  Rig rig(4);
  const auto model = uniform_model();
  const auto partition =
      partition::Partition::even_split(model.num_layers(), {0, 1, 2, 3});
  auto config = clean_config();
  config.in_flight = 5;  // one above PipeDream's NOW: fills the pipe
  PipelineExecutor executor(*rig.cluster, model, partition, config);
  const auto report = executor.run(60, 20);
  // Each worker handles one layer: (100+200)x2 = 600 FLOPs/batch = 0.06 s
  // period; comm is negligible at 1e5 B/s for 20-byte tensors.
  EXPECT_NEAR(report.throughput, 2.0 / 0.06, 2.0);
  EXPECT_GT(report.worker_utilization, 0.9);
}

TEST(Executor, PipeDreamNowUnderfillsWhenBpExceedsFp) {
  // The paper's Observation 3: with BP = 2x FP, PipeDream's NOW (= number
  // of stages) does NOT fill the pipeline — utilization stalls below ~85%.
  Rig rig(4);
  const auto model = uniform_model();
  const auto partition =
      partition::Partition::even_split(model.num_layers(), {0, 1, 2, 3});
  PipelineExecutor executor(*rig.cluster, model, partition, clean_config());
  const auto report = executor.run(60, 20);
  EXPECT_LT(report.worker_utilization, 0.85);
  EXPECT_GT(report.worker_utilization, 0.6);
}

TEST(Executor, MatchesAnalyticModelOnUniformPipeline) {
  Rig rig(4);
  const auto model = uniform_model();
  const auto partition =
      partition::Partition::even_split(model.num_layers(), {0, 1, 2, 3});
  const auto env = partition::EnvironmentView::from_cluster(
      *rig.cluster, clean_config().framework, comm::SyncScheme::kRing);
  const double predicted =
      partition::analytic_throughput(model, partition, env, 2);
  auto config = clean_config();
  config.in_flight = 5;  // filled pipeline: the regime the model describes
  PipelineExecutor executor(*rig.cluster, model, partition, config);
  const auto report = executor.run(60, 20);
  EXPECT_NEAR(report.throughput, predicted, predicted * 0.1);
}

TEST(Executor, InFlightOneIsModelParallelism) {
  const auto model = uniform_model();
  double pipe_speed, mp_speed;
  {
    Rig rig(4);
    PipelineExecutor executor(
        *rig.cluster, model,
        partition::Partition::even_split(model.num_layers(), {0, 1, 2, 3}),
        clean_config());
    pipe_speed = executor.run(40, 10).throughput;
  }
  {
    Rig rig(4);
    auto config = clean_config();
    config.in_flight = 1;
    PipelineExecutor executor(
        *rig.cluster, model,
        partition::Partition::even_split(model.num_layers(), {0, 1, 2, 3}),
        config);
    mp_speed = executor.run(40, 10).throughput;
  }
  // Pipelining should approach 4x naive model parallelism (Fig 1).
  EXPECT_GT(pipe_speed, 3.0 * mp_speed);
}

TEST(Executor, GPipeFlushCostsThroughput) {
  const auto model = uniform_model();
  double async_speed, gpipe_speed;
  {
    Rig rig(4);
    PipelineExecutor executor(
        *rig.cluster, model,
        partition::Partition::even_split(model.num_layers(), {0, 1, 2, 3}),
        clean_config());
    async_speed = executor.run(40, 10).throughput;
  }
  {
    Rig rig(4);
    auto config = clean_config();
    config.mode = ScheduleMode::kGPipe;
    config.micro_batches = 2;
    PipelineExecutor executor(
        *rig.cluster, model,
        partition::Partition::even_split(model.num_layers(), {0, 1, 2, 3}),
        config);
    gpipe_speed = executor.run(40, 10).throughput;
  }
  EXPECT_LT(gpipe_speed, async_speed);
}

TEST(Executor, DappleBeatsGPipe) {
  // Early backward shrinks the activation-stash window and the drain; with
  // equal micro-batches DAPPLE should be at least as fast as GPipe.
  const auto model = uniform_model(8);
  auto run_mode = [&](ScheduleMode mode) {
    Rig rig(4);
    auto config = clean_config();
    config.mode = mode;
    config.micro_batches = 4;
    PipelineExecutor executor(
        *rig.cluster, model,
        partition::Partition::even_split(model.num_layers(), {0, 1, 2, 3}),
        config);
    return executor.run(30, 10).throughput;
  };
  EXPECT_GE(run_mode(ScheduleMode::kDapple) * 1.02,
            run_mode(ScheduleMode::kGPipe));
}

TEST(Executor, ChimeraAndTwoBWRun) {
  const auto model = uniform_model(8);
  for (ScheduleMode mode : {ScheduleMode::kChimera, ScheduleMode::kTwoBW}) {
    Rig rig(4);
    auto config = clean_config();
    config.mode = mode;
    config.micro_batches = 4;
    PipelineExecutor executor(
        *rig.cluster, model,
        partition::Partition::even_split(model.num_layers(), {0, 1, 2, 3}),
        config);
    const auto report = executor.run(20, 5);
    EXPECT_GT(report.throughput, 0.0) << to_string(mode);
    EXPECT_EQ(report.iterations, 20u) << to_string(mode);
  }
}

TEST(Executor, ReplicatedStageSyncGeneratesTraffic) {
  Rig rig(4, 1e4, 1e6);
  const auto model = uniform_model();
  const partition::Partition replicated(
      {{0, 1, {0, 1}}, {2, 3, {2, 3}}}, model.num_layers());
  PipelineExecutor executor(*rig.cluster, model, replicated, clean_config());
  const auto report = executor.run(20, 5);
  // Weight sync for two replicated stages must appear on the wire beyond
  // the activation traffic: activations are 10 B x 2 samples per boundary;
  // params are 80 B per stage.
  EXPECT_GT(report.bytes_on_wire, 20.0 * 20);
}

TEST(Executor, IterationCallbackSeesEveryIteration) {
  Rig rig(2);
  const auto model = uniform_model(2);
  PipelineExecutor executor(
      *rig.cluster, model,
      partition::Partition::even_split(model.num_layers(), {0, 1}),
      clean_config());
  std::vector<std::size_t> seen;
  executor.set_iteration_callback(
      [&](std::size_t iters) { seen.push_back(iters); });
  executor.run(10, 2);
  ASSERT_EQ(seen.size(), 10u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
}

TEST(Executor, RunIsResumable) {
  Rig rig(2);
  const auto model = uniform_model(2);
  PipelineExecutor executor(
      *rig.cluster, model,
      partition::Partition::even_split(model.num_layers(), {0, 1}),
      clean_config());
  executor.run(5, 1);
  const auto second = executor.run(5, 1);
  EXPECT_EQ(executor.completed_iterations(), 10u);
  EXPECT_EQ(second.iteration_end_times.size(), 5u);
}

TEST(Executor, FineGrainedSwitchAdoptsNewPartition) {
  Rig rig(4);
  const auto model = uniform_model(8);
  const auto before =
      partition::Partition::even_split(model.num_layers(), {0, 1, 2, 3});
  partition::Partition after(
      {{0, 3, {0}}, {4, 5, {1}}, {6, 6, {2}}, {7, 7, {3}}},
      model.num_layers());
  PipelineExecutor executor(*rig.cluster, model, before, clean_config());
  executor.set_iteration_callback([&](std::size_t iters) {
    if (iters == 5)
      executor.request_switch(after,
                              PipelineExecutor::SwitchMode::kFineGrained);
  });
  executor.run(30, 10);
  EXPECT_EQ(executor.current_partition(), after);
  EXPECT_EQ(executor.switches_performed(), 1u);
}

TEST(Executor, StopTheWorldStallsMoreThanFineGrained) {
  const auto model = uniform_model(8, 10.0, 5e4);  // heavy weights to move
  auto run_with = [&](PipelineExecutor::SwitchMode mode) {
    Rig rig(4, 1e4, 1e5);
    const auto before =
        partition::Partition::even_split(model.num_layers(), {0, 1, 2, 3});
    partition::Partition after(
        {{0, 0, {0}}, {1, 3, {1}}, {4, 5, {2}}, {6, 7, {3}}},
        model.num_layers());
    PipelineExecutor executor(*rig.cluster, model, before, clean_config());
    executor.set_iteration_callback([&, mode](std::size_t iters) {
      if (iters == 10) executor.request_switch(after, mode);
    });
    const auto report = executor.run(40, 5);
    EXPECT_EQ(executor.switches_performed(), 1u);
    return report;
  };
  const auto stw = run_with(PipelineExecutor::SwitchMode::kStopTheWorld);
  const auto fg = run_with(PipelineExecutor::SwitchMode::kFineGrained);
  // Fine-grained switching keeps the pipeline running: higher throughput
  // over the same iteration budget (§4.4's whole point).
  EXPECT_GT(fg.throughput, stw.throughput);
  EXPECT_GT(stw.switch_stall, 0.0);
}

TEST(Executor, SwitchToSamePartitionIsRejected) {
  Rig rig(2);
  const auto model = uniform_model(2);
  const auto p =
      partition::Partition::even_split(model.num_layers(), {0, 1});
  PipelineExecutor executor(*rig.cluster, model, p, clean_config());
  EXPECT_FALSE(
      executor.request_switch(p, PipelineExecutor::SwitchMode::kFineGrained));
}

TEST(Executor, SecondSwitchWhileInProgressIsRejected) {
  Rig rig(4, 1e4, 1e2);  // slow network so migration stays in flight
  const auto model = uniform_model(8, 10.0, 1e4);
  const auto p0 =
      partition::Partition::even_split(model.num_layers(), {0, 1, 2, 3});
  partition::Partition p1(
      {{0, 3, {0}}, {4, 5, {1}}, {6, 6, {2}}, {7, 7, {3}}},
      model.num_layers());
  partition::Partition p2(
      {{0, 0, {0}}, {1, 5, {1}}, {6, 6, {2}}, {7, 7, {3}}},
      model.num_layers());
  PipelineExecutor executor(*rig.cluster, model, p0, clean_config());
  EXPECT_TRUE(executor.request_switch(
      p1, PipelineExecutor::SwitchMode::kFineGrained));
  EXPECT_TRUE(executor.switch_in_progress());
  EXPECT_FALSE(executor.request_switch(
      p2, PipelineExecutor::SwitchMode::kFineGrained));
}

TEST(Executor, ObservedBandwidthApproachesLineRate) {
  Rig rig(4, 1e4, 1e5);
  const auto model = uniform_model(4, 1e4);  // big activations: wire busy
  PipelineExecutor executor(
      *rig.cluster, model,
      partition::Partition::even_split(model.num_layers(), {0, 1, 2, 3}),
      clean_config());
  executor.run(20, 5);
  // Workers in the middle of the pipe both send and receive; their observed
  // rate should be within the NIC line rate and positive.
  for (sim::WorkerId w = 0; w < 4; ++w) {
    EXPECT_GT(executor.observed_bandwidth(w), 0.0);
    EXPECT_LE(executor.observed_bandwidth(w), 1e5 * 1.01);
  }
}

TEST(Executor, StageTimingTelemetryIsPopulated) {
  Rig rig(4);
  const auto model = uniform_model();
  PipelineExecutor executor(
      *rig.cluster, model,
      partition::Partition::even_split(model.num_layers(), {0, 1, 2, 3}),
      clean_config());
  executor.run(10, 2);
  const auto& timing = executor.last_stage_timing();
  ASSERT_EQ(timing.size(), 4u);
  for (const auto& t : timing) {
    // Durations include queueing at the GPU, so only positivity and rough
    // scale are stable properties.
    EXPECT_GT(t.fp, 0.0);
    EXPECT_GT(t.bp, 0.0);
    EXPECT_LT(t.fp + t.bp, 1.0);
  }
}

TEST(Executor, FrameworkOverheadSlowsTraining) {
  const auto model = uniform_model();
  double lean, heavy;
  {
    Rig rig(4);
    PipelineExecutor executor(
        *rig.cluster, model,
        partition::Partition::even_split(model.num_layers(), {0, 1, 2, 3}),
        clean_config());
    lean = executor.run(30, 10).throughput;
  }
  {
    Rig rig(4);
    auto config = clean_config();
    config.framework.per_layer_overhead = 0.01;  // 10 ms per layer-pass
    PipelineExecutor executor(
        *rig.cluster, model,
        partition::Partition::even_split(model.num_layers(), {0, 1, 2, 3}),
        config);
    heavy = executor.run(30, 10).throughput;
  }
  EXPECT_LT(heavy, lean);
}

TEST(Memory, WeightVersionsPerSchedule) {
  EXPECT_EQ(weight_versions(ScheduleMode::kAsync1F1B, 4), 4u);
  EXPECT_EQ(weight_versions(ScheduleMode::kTwoBW, 4), 2u);
  EXPECT_EQ(weight_versions(ScheduleMode::kGPipe, 4), 1u);
  EXPECT_EQ(weight_versions(ScheduleMode::kDapple, 4), 1u);
}

TEST(Memory, FootprintArithmetic) {
  const auto model = uniform_model(4, 10.0, 100.0);
  const auto p = partition::Partition::even_split(4, {0, 1, 2, 3});
  // Worker 0, stage of 1 layer: params 100, versions 4, optimizer 200,
  // activations 10 x 2 samples x 4 resident batches = 80.
  const Bytes footprint = worker_memory_footprint(
      model, p, 0, 2, ScheduleMode::kAsync1F1B, 4);
  EXPECT_DOUBLE_EQ(footprint, 100.0 * 4 + 200.0 + 80.0);
  // Unused worker has no footprint.
  EXPECT_DOUBLE_EQ(worker_memory_footprint(model, p, 9, 2,
                                           ScheduleMode::kAsync1F1B, 4),
                   0.0);
}

TEST(Memory, ZooModelsFitTestbedGpusAtModestDepth) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, sim::ClusterConfig{});
  for (const auto& model : models::image_models()) {
    const auto p = partition::Partition::even_split(
        model.num_layers(), {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
    EXPECT_TRUE(plan_fits_memory(cluster, model, p,
                                 model.default_batch_size() / 2,
                                 ScheduleMode::kAsync1F1B, 4))
        << model.name();
  }
}

TEST(Memory, DeepStashingCanExceedP100) {
  // Full-depth weight stashing of VGG16's early stages at batch 64 with 10
  // resident mini-batches overflows a 16 GB device — why PipeDream-2BW
  // exists.
  sim::Simulator sim;
  sim::Cluster cluster(sim, sim::ClusterConfig{});
  const auto model = models::vgg16();
  const auto p = partition::Partition::even_split(
      model.num_layers(), {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_FALSE(plan_fits_memory(cluster, model, p, 64,
                                ScheduleMode::kAsync1F1B, 10));
  // 2BW's two-version scheme relieves the parameter side.
  const Bytes stash10 = worker_memory_footprint(model, p, 9, 64,
                                                ScheduleMode::kAsync1F1B, 10);
  const Bytes twobw = worker_memory_footprint(model, p, 9, 64,
                                              ScheduleMode::kTwoBW, 10);
  EXPECT_LT(twobw, stash10);
}

TEST(Schedule, Names) {
  EXPECT_STREQ(to_string(ScheduleMode::kAsync1F1B), "PipeDream-1F1B");
  EXPECT_STREQ(to_string(ScheduleMode::kChimera), "Chimera");
  EXPECT_TRUE(is_synchronous(ScheduleMode::kGPipe));
  EXPECT_FALSE(is_synchronous(ScheduleMode::kTwoBW));
}


TEST(Executor, BurstCompletionFallsBackToWholeRunMeasurement) {
  // With in-flight far above the requested iterations, every measured
  // iteration can complete at one simulated instant; the report must fall
  // back to whole-run measurement instead of dividing by zero.
  Rig rig(2);
  const auto model = uniform_model(2);
  auto config = clean_config();
  config.in_flight = 16;
  PipelineExecutor executor(
      *rig.cluster, model,
      partition::Partition::even_split(model.num_layers(), {0, 1}), config);
  const auto report = executor.run(4, 2);
  EXPECT_GT(report.throughput, 0.0);
  EXPECT_TRUE(std::isfinite(report.throughput));
}


TEST(Executor, RecomputationTradesThroughputForMemory) {
  const auto model = uniform_model(8, 1000.0, 40.0);
  double plain, recompute;
  {
    Rig rig(4);
    PipelineExecutor executor(
        *rig.cluster, model,
        partition::Partition::even_split(model.num_layers(), {0, 1, 2, 3}),
        clean_config());
    plain = executor.run(30, 10).throughput;
  }
  {
    Rig rig(4);
    auto config = clean_config();
    config.recompute_activations = true;
    PipelineExecutor executor(
        *rig.cluster, model,
        partition::Partition::even_split(model.num_layers(), {0, 1, 2, 3}),
        config);
    recompute = executor.run(30, 10).throughput;
  }
  // Recomputation adds one forward pass of work: measurably slower but by
  // less than the full FP share (FP is 1/3 of FP+BP here).
  EXPECT_LT(recompute, plain);
  EXPECT_GT(recompute, plain * 0.6);
}

TEST(Memory, RecomputationShrinksActivationStash) {
  const auto model = uniform_model(8, 1000.0, 40.0);
  const auto p = partition::Partition::even_split(8, {0, 1, 2, 3});
  const Bytes full = worker_memory_footprint(
      model, p, 1, 2, ScheduleMode::kGPipe, 4, /*recompute=*/false);
  const Bytes lean = worker_memory_footprint(
      model, p, 1, 2, ScheduleMode::kGPipe, 4, /*recompute=*/true);
  EXPECT_LT(lean, full);
}


// Note: PS-vs-Ring *throughput* ordering is asserted on the BSP
// data-parallel runtime (baselines_test), where sync blocks the iteration.
// The async pipeline coalesces weight syncs, deliberately hiding sync
// latency from the critical path, so no such ordering holds here.
TEST(Executor, StopTheWorldSwitchCountsStall) {
  Rig rig(4, 1e4, 1e4);
  const auto model = uniform_model(8, 10.0, 5e4);
  const auto before =
      partition::Partition::even_split(model.num_layers(), {0, 1, 2, 3});
  partition::Partition after(
      {{0, 0, {0}}, {1, 3, {1}}, {4, 5, {2}}, {6, 7, {3}}},
      model.num_layers());
  PipelineExecutor executor(*rig.cluster, model, before, clean_config());
  executor.set_iteration_callback([&](std::size_t iters) {
    if (iters == 5)
      executor.request_switch(after,
                              PipelineExecutor::SwitchMode::kStopTheWorld);
  });
  const auto report = executor.run(30, 2);
  EXPECT_EQ(report.switches, 1u);
  EXPECT_GT(report.switch_stall, 0.0);
}

}  // namespace
}  // namespace autopipe::pipeline
