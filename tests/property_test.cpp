// Cross-module property sweeps (TEST_P): invariants that must hold over
// whole parameter grids rather than single examples — executor sanity over
// the model x bandwidth grid, collective/analytic agreement over member
// counts, staleness-tolerance over pipeline depths, planner/rebalance
// dominance over random environments, and end-to-end determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "baselines/data_parallel.hpp"
#include "comm/collective.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "convergence/dataset.hpp"
#include "convergence/staleness_sgd.hpp"
#include "models/zoo.hpp"
#include "partition/analytic_eval.hpp"
#include "partition/neighborhood.hpp"
#include "partition/pipedream_planner.hpp"
#include "partition/rebalance.hpp"
#include "pipeline/executor.hpp"
#include "sim/cluster.hpp"

namespace autopipe {
namespace {

// ---------------------------------------------------------------------------
// Executor invariants over the paper's model x bandwidth grid
// ---------------------------------------------------------------------------

class ExecutorGrid
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(ExecutorGrid, PlannedRunSatisfiesInvariants) {
  const auto [model_name, bandwidth] = GetParam();
  const auto model = models::model_by_name(model_name);

  sim::Simulator sim;
  sim::ClusterConfig config;
  config.nic_bandwidth = gbps(bandwidth);
  sim::Cluster cluster(sim, config);

  const auto env = partition::EnvironmentView::from_cluster(
      cluster, comm::pytorch_profile(), comm::SyncScheme::kRing);
  partition::PipeDreamPlanner planner(model, env,
                                      model.default_batch_size());
  const auto plan = planner.plan(cluster.num_workers());

  pipeline::PipelineExecutor executor(cluster, model, plan.partition,
                                      pipeline::ExecutorConfig{});
  const auto report = executor.run(30, 10);

  // Throughput positive and finite; utilization a valid fraction.
  EXPECT_GT(report.throughput, 0.0);
  EXPECT_TRUE(std::isfinite(report.throughput));
  EXPECT_GT(report.worker_utilization, 0.0);
  EXPECT_LE(report.worker_utilization, 1.0 + 1e-9);
  // Completion times strictly increase (no time travel).
  for (std::size_t i = 1; i < report.iteration_end_times.size(); ++i) {
    EXPECT_GE(report.iteration_end_times[i],
              report.iteration_end_times[i - 1]);
  }
  // Multi-stage plans must put bytes on the wire.
  if (plan.partition.num_stages() > 1) EXPECT_GT(report.bytes_on_wire, 0.0);
  // The measured rate cannot exceed the cluster's aggregate compute bound
  // (10% slack: short windows measure between completion bursts).
  double aggregate = 0.0;
  for (sim::WorkerId w = 0; w < cluster.num_workers(); ++w)
    aggregate += cluster.gpu(w).spec().throughput;
  const double flops_per_sample = model.total_flops_per_sample();
  EXPECT_LT(report.throughput, aggregate / flops_per_sample * 1.10);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsByBandwidth, ExecutorGrid,
    ::testing::Combine(::testing::Values("alexnet", "vgg16", "resnet50",
                                         "resnet18"),
                       ::testing::Values(10.0, 25.0, 100.0)));

// ---------------------------------------------------------------------------
// Event-driven ring all-reduce matches the analytic formula for any size
// ---------------------------------------------------------------------------

class RingSize : public ::testing::TestWithParam<int> {};

TEST_P(RingSize, SimulatedRingMatchesAnalytic) {
  const auto n = static_cast<std::size_t>(GetParam());
  sim::Simulator sim;
  sim::ClusterConfig config;
  config.num_servers = n;
  config.gpus_per_server = 1;
  config.nic_bandwidth = 1000.0;
  sim::Cluster cluster(sim, config);
  std::vector<sim::WorkerId> members(n);
  for (sim::WorkerId w = 0; w < n; ++w) members[w] = w;
  Seconds done = -1;
  comm::Collective::ring_allreduce(cluster, members, 8000.0, 1.0,
                                   [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, comm::ring_allreduce_time(8000.0, n, 1000.0),
              1e-6);
}

INSTANTIATE_TEST_SUITE_P(MemberCounts, RingSize,
                         ::testing::Values(2, 3, 4, 5, 7, 10));

// ---------------------------------------------------------------------------
// Weight stashing tolerates any bounded pipeline depth
// ---------------------------------------------------------------------------

class StashDepth : public ::testing::TestWithParam<int> {};

TEST_P(StashDepth, BoundedConsistentStalenessConverges) {
  convergence::DatasetConfig dc;
  dc.dims = 8;
  dc.classes = 3;
  dc.train_samples = 512;
  dc.test_samples = 256;
  const convergence::Dataset data(dc, 7);

  convergence::TrainerConfig config;
  config.mode = convergence::StalenessMode::kWeightStashing;
  config.pipeline_depth = static_cast<std::size_t>(GetParam());
  convergence::StalenessSgdTrainer trainer(data, config, 3);
  for (int i = 0; i < 2000; ++i) trainer.step();
  // PipeDream's guarantee: bounded + consistent staleness reaches high
  // accuracy regardless of the (reasonable) depth.
  EXPECT_GT(trainer.test_accuracy(), 0.85);
}

INSTANTIATE_TEST_SUITE_P(PipelineDepths, StashDepth,
                         ::testing::Values(1, 2, 4, 8, 12));

// ---------------------------------------------------------------------------
// Rebalance never hurts the analytic bottleneck on random heterogeneous envs
// ---------------------------------------------------------------------------

class RebalanceRandom : public ::testing::TestWithParam<int> {};

TEST_P(RebalanceRandom, NeverWorseOnComputeBoundEnvironments) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  // Compute-bound setup: generous uniform bandwidth, random speeds.
  const auto model = models::resnet18();
  partition::EnvironmentView env;
  const std::size_t workers = 4;
  for (std::size_t w = 0; w < workers; ++w) {
    env.worker_speed.push_back(rng.uniform(0.5e12, 4e12));
    env.worker_bandwidth.push_back(gbps(100));
  }
  const auto current = partition::Partition::even_split(
      model.num_layers(), {0, 1, 2, 3});
  const auto balanced = partition::speed_proportional_rebalance(
      model, current, env, model.default_batch_size());
  const Seconds before = partition::analytic_batch_time(
      model, current, env, model.default_batch_size());
  const Seconds after = partition::analytic_batch_time(
      model, balanced, env, model.default_batch_size());
  EXPECT_LE(after, before * 1.001)
      << "speeds: " << env.worker_speed[0] << " " << env.worker_speed[1]
      << " " << env.worker_speed[2] << " " << env.worker_speed[3];
}

INSTANTIATE_TEST_SUITE_P(RandomSpeeds, RebalanceRandom,
                         ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Determinism: identical seeds and scripts produce identical runs
// ---------------------------------------------------------------------------

class DeterminismGrid : public ::testing::TestWithParam<const char*> {};

TEST_P(DeterminismGrid, RepeatedRunsAreBitIdentical) {
  auto run_once = [&] {
    sim::Simulator sim;
    sim::ClusterConfig config;
    config.nic_bandwidth = gbps(25);
    sim::Cluster cluster(sim, config);
    const auto model = models::model_by_name(GetParam());
    const auto env = partition::EnvironmentView::from_cluster(
        cluster, comm::pytorch_profile(), comm::SyncScheme::kRing);
    partition::PipeDreamPlanner planner(model, env,
                                        model.default_batch_size());
    const auto plan = planner.plan(cluster.num_workers());
    pipeline::PipelineExecutor executor(cluster, model, plan.partition,
                                        pipeline::ExecutorConfig{});
    return executor.run(20, 5);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
  ASSERT_EQ(a.iteration_end_times.size(), b.iteration_end_times.size());
  for (std::size_t i = 0; i < a.iteration_end_times.size(); ++i)
    EXPECT_DOUBLE_EQ(a.iteration_end_times[i], b.iteration_end_times[i]);
}

INSTANTIATE_TEST_SUITE_P(Models, DeterminismGrid,
                         ::testing::Values("alexnet", "vgg16", "resnet50"));

// ---------------------------------------------------------------------------
// Schedule family: every mode completes and respects synchronous semantics
// ---------------------------------------------------------------------------

class ScheduleFamily
    : public ::testing::TestWithParam<pipeline::ScheduleMode> {};

TEST_P(ScheduleFamily, CompletesOnPlannedPartition) {
  sim::Simulator sim;
  sim::ClusterConfig config;
  config.nic_bandwidth = gbps(25);
  sim::Cluster cluster(sim, config);
  const auto model = models::resnet18();
  const auto partition = partition::Partition::even_split(
      model.num_layers(), {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  pipeline::ExecutorConfig ec;
  ec.mode = GetParam();
  ec.micro_batches = 4;
  pipeline::PipelineExecutor executor(cluster, model, partition, ec);
  const auto report = executor.run(12, 4);
  EXPECT_GT(report.throughput, 0.0);
  EXPECT_EQ(report.iterations, 12u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ScheduleFamily,
    ::testing::Values(pipeline::ScheduleMode::kAsync1F1B,
                      pipeline::ScheduleMode::kGPipe,
                      pipeline::ScheduleMode::kDapple,
                      pipeline::ScheduleMode::kChimera,
                      pipeline::ScheduleMode::kTwoBW));

// ---------------------------------------------------------------------------
// Tracing is observation-only: for random (model, cluster, switch) triples,
// a run with the recorder enabled trains exactly what a run with it disabled
// trains, byte for byte on the timeline.
// ---------------------------------------------------------------------------

class TracingParity : public ::testing::TestWithParam<int> {};

TEST_P(TracingParity, EnabledRunEqualsDisabledRun) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);

  // Random scenario: model, cluster shape, bandwidth, switch mode, and a
  // random neighbourhood switch requested mid-run.
  const auto model = rng.chance(0.5) ? models::alexnet() : models::resnet18();
  const std::size_t servers = static_cast<std::size_t>(rng.uniform_int(2, 3));
  const std::size_t gpus = static_cast<std::size_t>(rng.uniform_int(1, 2));
  const double bandwidths[] = {10.0, 25.0, 100.0};
  const double bw = bandwidths[rng.uniform_int(0, 2)];
  const auto switch_mode =
      rng.chance(0.5) ? pipeline::PipelineExecutor::SwitchMode::kFineGrained
                      : pipeline::PipelineExecutor::SwitchMode::kStopTheWorld;
  const std::size_t switch_pick = static_cast<std::size_t>(
      rng.uniform_int(0, 1000));

  auto run_once = [&](bool tracing) {
    sim::Simulator sim;
    if (tracing) sim.tracer().set_enabled(true);
    sim::ClusterConfig config;
    config.num_servers = servers;
    config.gpus_per_server = gpus;
    config.nic_bandwidth = gbps(bw);
    sim::Cluster cluster(sim, config);
    std::vector<sim::WorkerId> workers(cluster.num_workers());
    for (sim::WorkerId w = 0; w < workers.size(); ++w) workers[w] = w;
    const auto initial =
        partition::Partition::even_split(model.num_layers(), workers);
    pipeline::PipelineExecutor executor(cluster, model, initial,
                                        pipeline::ExecutorConfig{});
    const auto candidates = partition::two_worker_candidates(initial);
    executor.set_iteration_callback([&](std::size_t iters) {
      if (iters == 3 && !candidates.empty()) {
        executor.request_switch(
            candidates[switch_pick % candidates.size()].partition,
            switch_mode);
      }
    });
    const auto report = executor.run(15, 3);
    return std::make_tuple(report.iteration_end_times, report.throughput,
                           sim.now(), report.iterations * executor.batch_size(),
                           executor.switches_performed());
  };

  const auto with_trace = run_once(true);
  const auto without = run_once(false);

  // Samples trained are identical...
  EXPECT_EQ(std::get<3>(with_trace), std::get<3>(without));
  EXPECT_EQ(std::get<4>(with_trace), std::get<4>(without));
  // ...and so is the entire timeline, bit for bit.
  EXPECT_DOUBLE_EQ(std::get<1>(with_trace), std::get<1>(without));
  EXPECT_DOUBLE_EQ(std::get<2>(with_trace), std::get<2>(without));
  const auto& ta = std::get<0>(with_trace);
  const auto& tb = std::get<0>(without);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i)
    EXPECT_DOUBLE_EQ(ta[i], tb[i]) << "iteration " << i;
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, TracingParity,
                         ::testing::Range(0, 50));

}  // namespace
}  // namespace autopipe
