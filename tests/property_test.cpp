// Cross-module property sweeps (TEST_P): invariants that must hold over
// whole parameter grids rather than single examples — executor sanity over
// the model x bandwidth grid, collective/analytic agreement over member
// counts, staleness-tolerance over pipeline depths, planner/rebalance
// dominance over random environments, and end-to-end determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "baselines/data_parallel.hpp"
#include "comm/collective.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/event_queue.hpp"
#include "convergence/dataset.hpp"
#include "convergence/staleness_sgd.hpp"
#include "models/zoo.hpp"
#include "partition/analytic_eval.hpp"
#include "partition/neighborhood.hpp"
#include "partition/pipedream_planner.hpp"
#include "partition/rebalance.hpp"
#include "pipeline/executor.hpp"
#include "sim/cluster.hpp"

namespace autopipe {
namespace {

// ---------------------------------------------------------------------------
// Executor invariants over the paper's model x bandwidth grid
// ---------------------------------------------------------------------------

class ExecutorGrid
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(ExecutorGrid, PlannedRunSatisfiesInvariants) {
  const auto [model_name, bandwidth] = GetParam();
  const auto model = models::model_by_name(model_name);

  sim::Simulator sim;
  sim::ClusterConfig config;
  config.nic_bandwidth = gbps(bandwidth);
  sim::Cluster cluster(sim, config);

  const auto env = partition::EnvironmentView::from_cluster(
      cluster, comm::pytorch_profile(), comm::SyncScheme::kRing);
  partition::PipeDreamPlanner planner(model, env,
                                      model.default_batch_size());
  const auto plan = planner.plan(cluster.num_workers());

  pipeline::PipelineExecutor executor(cluster, model, plan.partition,
                                      pipeline::ExecutorConfig{});
  const auto report = executor.run(30, 10);

  // Throughput positive and finite; utilization a valid fraction.
  EXPECT_GT(report.throughput, 0.0);
  EXPECT_TRUE(std::isfinite(report.throughput));
  EXPECT_GT(report.worker_utilization, 0.0);
  EXPECT_LE(report.worker_utilization, 1.0 + 1e-9);
  // Completion times strictly increase (no time travel).
  for (std::size_t i = 1; i < report.iteration_end_times.size(); ++i) {
    EXPECT_GE(report.iteration_end_times[i],
              report.iteration_end_times[i - 1]);
  }
  // Multi-stage plans must put bytes on the wire.
  if (plan.partition.num_stages() > 1) EXPECT_GT(report.bytes_on_wire, 0.0);
  // The measured rate cannot exceed the cluster's aggregate compute bound
  // (10% slack: short windows measure between completion bursts).
  double aggregate = 0.0;
  for (sim::WorkerId w = 0; w < cluster.num_workers(); ++w)
    aggregate += cluster.gpu(w).spec().throughput;
  const double flops_per_sample = model.total_flops_per_sample();
  EXPECT_LT(report.throughput, aggregate / flops_per_sample * 1.10);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsByBandwidth, ExecutorGrid,
    ::testing::Combine(::testing::Values("alexnet", "vgg16", "resnet50",
                                         "resnet18"),
                       ::testing::Values(10.0, 25.0, 100.0)));

// ---------------------------------------------------------------------------
// Event-driven ring all-reduce matches the analytic formula for any size
// ---------------------------------------------------------------------------

class RingSize : public ::testing::TestWithParam<int> {};

TEST_P(RingSize, SimulatedRingMatchesAnalytic) {
  const auto n = static_cast<std::size_t>(GetParam());
  sim::Simulator sim;
  sim::ClusterConfig config;
  config.num_servers = n;
  config.gpus_per_server = 1;
  config.nic_bandwidth = 1000.0;
  sim::Cluster cluster(sim, config);
  std::vector<sim::WorkerId> members(n);
  for (sim::WorkerId w = 0; w < n; ++w) members[w] = w;
  Seconds done = -1;
  comm::Collective::ring_allreduce(cluster, members, 8000.0, 1.0,
                                   [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, comm::ring_allreduce_time(8000.0, n, 1000.0),
              1e-6);
}

INSTANTIATE_TEST_SUITE_P(MemberCounts, RingSize,
                         ::testing::Values(2, 3, 4, 5, 7, 10));

// ---------------------------------------------------------------------------
// Weight stashing tolerates any bounded pipeline depth
// ---------------------------------------------------------------------------

class StashDepth : public ::testing::TestWithParam<int> {};

TEST_P(StashDepth, BoundedConsistentStalenessConverges) {
  convergence::DatasetConfig dc;
  dc.dims = 8;
  dc.classes = 3;
  dc.train_samples = 512;
  dc.test_samples = 256;
  const convergence::Dataset data(dc, 7);

  convergence::TrainerConfig config;
  config.mode = convergence::StalenessMode::kWeightStashing;
  config.pipeline_depth = static_cast<std::size_t>(GetParam());
  convergence::StalenessSgdTrainer trainer(data, config, 3);
  for (int i = 0; i < 2000; ++i) trainer.step();
  // PipeDream's guarantee: bounded + consistent staleness reaches high
  // accuracy regardless of the (reasonable) depth.
  EXPECT_GT(trainer.test_accuracy(), 0.85);
}

INSTANTIATE_TEST_SUITE_P(PipelineDepths, StashDepth,
                         ::testing::Values(1, 2, 4, 8, 12));

// ---------------------------------------------------------------------------
// Rebalance never hurts the analytic bottleneck on random heterogeneous envs
// ---------------------------------------------------------------------------

class RebalanceRandom : public ::testing::TestWithParam<int> {};

TEST_P(RebalanceRandom, NeverWorseOnComputeBoundEnvironments) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  // Compute-bound setup: generous uniform bandwidth, random speeds.
  const auto model = models::resnet18();
  partition::EnvironmentView env;
  const std::size_t workers = 4;
  for (std::size_t w = 0; w < workers; ++w) {
    env.worker_speed.push_back(rng.uniform(0.5e12, 4e12));
    env.worker_bandwidth.push_back(gbps(100));
  }
  const auto current = partition::Partition::even_split(
      model.num_layers(), {0, 1, 2, 3});
  const auto balanced = partition::speed_proportional_rebalance(
      model, current, env, model.default_batch_size());
  const Seconds before = partition::analytic_batch_time(
      model, current, env, model.default_batch_size());
  const Seconds after = partition::analytic_batch_time(
      model, balanced, env, model.default_batch_size());
  EXPECT_LE(after, before * 1.001)
      << "speeds: " << env.worker_speed[0] << " " << env.worker_speed[1]
      << " " << env.worker_speed[2] << " " << env.worker_speed[3];
}

INSTANTIATE_TEST_SUITE_P(RandomSpeeds, RebalanceRandom,
                         ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Determinism: identical seeds and scripts produce identical runs
// ---------------------------------------------------------------------------

class DeterminismGrid : public ::testing::TestWithParam<const char*> {};

TEST_P(DeterminismGrid, RepeatedRunsAreBitIdentical) {
  auto run_once = [&] {
    sim::Simulator sim;
    sim::ClusterConfig config;
    config.nic_bandwidth = gbps(25);
    sim::Cluster cluster(sim, config);
    const auto model = models::model_by_name(GetParam());
    const auto env = partition::EnvironmentView::from_cluster(
        cluster, comm::pytorch_profile(), comm::SyncScheme::kRing);
    partition::PipeDreamPlanner planner(model, env,
                                        model.default_batch_size());
    const auto plan = planner.plan(cluster.num_workers());
    pipeline::PipelineExecutor executor(cluster, model, plan.partition,
                                        pipeline::ExecutorConfig{});
    return executor.run(20, 5);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
  ASSERT_EQ(a.iteration_end_times.size(), b.iteration_end_times.size());
  for (std::size_t i = 0; i < a.iteration_end_times.size(); ++i)
    EXPECT_DOUBLE_EQ(a.iteration_end_times[i], b.iteration_end_times[i]);
}

INSTANTIATE_TEST_SUITE_P(Models, DeterminismGrid,
                         ::testing::Values("alexnet", "vgg16", "resnet50"));

// ---------------------------------------------------------------------------
// Schedule family: every mode completes and respects synchronous semantics
// ---------------------------------------------------------------------------

class ScheduleFamily
    : public ::testing::TestWithParam<pipeline::ScheduleMode> {};

TEST_P(ScheduleFamily, CompletesOnPlannedPartition) {
  sim::Simulator sim;
  sim::ClusterConfig config;
  config.nic_bandwidth = gbps(25);
  sim::Cluster cluster(sim, config);
  const auto model = models::resnet18();
  const auto partition = partition::Partition::even_split(
      model.num_layers(), {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  pipeline::ExecutorConfig ec;
  ec.mode = GetParam();
  ec.micro_batches = 4;
  pipeline::PipelineExecutor executor(cluster, model, partition, ec);
  const auto report = executor.run(12, 4);
  EXPECT_GT(report.throughput, 0.0);
  EXPECT_EQ(report.iterations, 12u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ScheduleFamily,
    ::testing::Values(pipeline::ScheduleMode::kAsync1F1B,
                      pipeline::ScheduleMode::kGPipe,
                      pipeline::ScheduleMode::kDapple,
                      pipeline::ScheduleMode::kChimera,
                      pipeline::ScheduleMode::kTwoBW));

// ---------------------------------------------------------------------------
// Tracing is observation-only: for random (model, cluster, switch) triples,
// a run with the recorder enabled trains exactly what a run with it disabled
// trains, byte for byte on the timeline.
// ---------------------------------------------------------------------------

class TracingParity : public ::testing::TestWithParam<int> {};

TEST_P(TracingParity, EnabledRunEqualsDisabledRun) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);

  // Random scenario: model, cluster shape, bandwidth, switch mode, and a
  // random neighbourhood switch requested mid-run.
  const auto model = rng.chance(0.5) ? models::alexnet() : models::resnet18();
  const std::size_t servers = static_cast<std::size_t>(rng.uniform_int(2, 3));
  const std::size_t gpus = static_cast<std::size_t>(rng.uniform_int(1, 2));
  const double bandwidths[] = {10.0, 25.0, 100.0};
  const double bw = bandwidths[rng.uniform_int(0, 2)];
  const auto switch_mode =
      rng.chance(0.5) ? pipeline::PipelineExecutor::SwitchMode::kFineGrained
                      : pipeline::PipelineExecutor::SwitchMode::kStopTheWorld;
  const std::size_t switch_pick = static_cast<std::size_t>(
      rng.uniform_int(0, 1000));

  auto run_once = [&](bool tracing) {
    sim::Simulator sim;
    if (tracing) sim.tracer().set_enabled(true);
    sim::ClusterConfig config;
    config.num_servers = servers;
    config.gpus_per_server = gpus;
    config.nic_bandwidth = gbps(bw);
    sim::Cluster cluster(sim, config);
    std::vector<sim::WorkerId> workers(cluster.num_workers());
    for (sim::WorkerId w = 0; w < workers.size(); ++w) workers[w] = w;
    const auto initial =
        partition::Partition::even_split(model.num_layers(), workers);
    pipeline::PipelineExecutor executor(cluster, model, initial,
                                        pipeline::ExecutorConfig{});
    const auto candidates = partition::two_worker_candidates(initial);
    executor.set_iteration_callback([&](std::size_t iters) {
      if (iters == 3 && !candidates.empty()) {
        executor.request_switch(
            candidates[switch_pick % candidates.size()].partition,
            switch_mode);
      }
    });
    const auto report = executor.run(15, 3);
    return std::make_tuple(report.iteration_end_times, report.throughput,
                           sim.now(), report.iterations * executor.batch_size(),
                           executor.switches_performed());
  };

  const auto with_trace = run_once(true);
  const auto without = run_once(false);

  // Samples trained are identical...
  EXPECT_EQ(std::get<3>(with_trace), std::get<3>(without));
  EXPECT_EQ(std::get<4>(with_trace), std::get<4>(without));
  // ...and so is the entire timeline, bit for bit.
  EXPECT_DOUBLE_EQ(std::get<1>(with_trace), std::get<1>(without));
  EXPECT_DOUBLE_EQ(std::get<2>(with_trace), std::get<2>(without));
  const auto& ta = std::get<0>(with_trace);
  const auto& tb = std::get<0>(without);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i)
    EXPECT_DOUBLE_EQ(ta[i], tb[i]) << "iteration " << i;
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, TracingParity,
                         ::testing::Range(0, 50));

// ---------------------------------------------------------------------------
// Planner invariants over randomly generated layer graphs
// ---------------------------------------------------------------------------

/// A random but well-formed model: positive per-layer work, positive
/// activations, a mix of parameter-heavy and parameter-free layers, wide
/// spreads in all magnitudes — shapes no zoo model exercises.
models::ModelSpec random_layer_model(Rng& rng) {
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 24));
  std::vector<models::LayerSpec> layers;
  layers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    models::LayerSpec layer;
    layer.name = "L" + std::to_string(i);
    layer.fwd_flops_per_sample = rng.uniform(1e6, 5e9);
    layer.bwd_flops_per_sample =
        layer.fwd_flops_per_sample * rng.uniform(1.0, 3.0);
    layer.activation_bytes_per_sample = rng.uniform(1e3, 5e7);
    layer.param_bytes = rng.chance(0.3) ? 0.0 : rng.uniform(1e4, 4e8);
    layers.push_back(layer);
  }
  const auto batch = static_cast<std::size_t>(rng.uniform_int(8, 128));
  return models::ModelSpec("random", batch, std::move(layers));
}

class RandomModelPlanner : public ::testing::TestWithParam<int> {};

TEST_P(RandomModelPlanner, PlanSatisfiesPartitionInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const auto model = random_layer_model(rng);

  // Heterogeneous random environment (contended GPUs, uneven NICs).
  const auto num_workers = static_cast<std::size_t>(rng.uniform_int(2, 10));
  partition::EnvironmentView env;
  for (std::size_t w = 0; w < num_workers; ++w) {
    env.worker_speed.push_back(tflops(rng.uniform(1.0, 10.0)));
    env.worker_bandwidth.push_back(gbps(rng.uniform(5.0, 100.0)));
  }

  const std::size_t batch = model.default_batch_size();
  for (const auto mode : {partition::PipeDreamPlanner::Mode::kPipeDream,
                          partition::PipeDreamPlanner::Mode::
                              kCurrentEnvironment}) {
    partition::PipeDreamPlanner planner(model, env, batch, mode);
    const partition::PlanResult plan = planner.plan(num_workers);
    const partition::Partition& p = plan.partition;

    // Layer coverage: stages tile [0, num_layers) contiguously in order,
    // and every layer maps back to exactly the stage holding it.
    ASSERT_GE(p.num_stages(), 1u);
    EXPECT_EQ(p.num_layers(), model.num_layers());
    std::size_t covered = 0;
    for (std::size_t s = 0; s < p.num_stages(); ++s) {
      const auto& stage = p.stage(s);
      EXPECT_EQ(stage.first_layer, covered) << "stage " << s;
      ASSERT_LE(stage.first_layer, stage.last_layer);
      ASSERT_LT(stage.last_layer, model.num_layers());
      for (std::size_t l = stage.first_layer; l <= stage.last_layer; ++l)
        EXPECT_EQ(p.stage_of_layer(l), s);
      covered = stage.last_layer + 1;
    }
    EXPECT_EQ(covered, model.num_layers()) << "stages must cover every layer";

    // No empty stage; worker sets pairwise disjoint and within range.
    std::vector<bool> seen(num_workers, false);
    for (std::size_t s = 0; s < p.num_stages(); ++s) {
      const auto& stage = p.stage(s);
      ASSERT_FALSE(stage.workers.empty()) << "empty stage " << s;
      for (sim::WorkerId w : stage.workers) {
        ASSERT_LT(w, num_workers);
        EXPECT_FALSE(seen[w]) << "worker " << w << " serves two stages";
        seen[w] = true;
        EXPECT_EQ(p.stage_of_worker(w), s);
      }
    }
    EXPECT_LE(p.num_workers(), num_workers);

    // The planner's pipeline-fill depth matches the closed form.
    EXPECT_GE(plan.in_flight, 1u);
    EXPECT_EQ(plan.in_flight, partition::optimal_in_flight(p));

    // Predicted time is positive, finite, and — by the max-bottleneck
    // definition — exactly the worst stage/boundary cost, never less than
    // any individual component.
    EXPECT_GT(plan.predicted_batch_time, 0.0);
    EXPECT_TRUE(std::isfinite(plan.predicted_batch_time));
    const Seconds analytic =
        partition::analytic_batch_time(model, p, env, batch);
    Seconds worst = 0.0;
    for (std::size_t s = 0; s < p.num_stages(); ++s) {
      const auto cost = partition::stage_cost(model, p.stage(s), env, batch);
      EXPECT_NEAR(cost.effective,
                  (cost.compute + cost.sync) /
                      static_cast<double>(p.stage(s).replication()),
                  1e-12 * std::max(1.0, cost.effective));
      EXPECT_LE(cost.effective, analytic + 1e-12);
      worst = std::max(worst, cost.effective);
    }
    for (std::size_t b = 0; b + 1 < p.num_stages(); ++b) {
      const Seconds t =
          partition::boundary_transfer_time(model, p, b, env, batch);
      EXPECT_LE(t, analytic + 1e-12);
      worst = std::max(worst, t);
    }
    EXPECT_NEAR(analytic, worst, 1e-12 * std::max(1.0, worst))
        << "analytic_batch_time must equal the max component cost";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLayerGraphs, RandomModelPlanner,
                         ::testing::Range(0, 200));

// ---------------------------------------------------------------------------
// Event-queue properties: the timing wheel against a sorted-vector oracle
// ---------------------------------------------------------------------------

/// The oracle: (time, seq) pairs; the minimum under (time, then seq) is
/// what any correct queue must dequeue next.
using OracleEntry = std::pair<Seconds, std::uint64_t>;

std::size_t oracle_min(const std::vector<OracleEntry>& oracle) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < oracle.size(); ++i) {
    if (oracle[i].first < oracle[best].first ||
        (oracle[i].first == oracle[best].first &&
         oracle[i].second < oracle[best].second)) {
      best = i;
    }
  }
  return best;
}

class EventQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzz, RandomScheduleMatchesOracleOnBothQueues) {
  // Random interleavings of pushes (times spanning the near heap, all three
  // wheel levels, the overflow horizon and +inf) and pops; after every pop
  // both queues must agree with the oracle's (time, seq) minimum exactly.
  Rng rng(GetParam() * 7919 + 1);
  sim::TimingWheelEventQueue wheel;
  sim::HeapEventQueue heap;
  std::vector<OracleEntry> oracle;
  std::uint64_t seq = 0;
  Seconds watermark = 0.0;  // last popped time: pushes never go backwards

  for (int op = 0; op < 4000; ++op) {
    const bool push = oracle.empty() || rng.chance(0.55);
    if (push) {
      Seconds t;
      switch (rng.uniform_int(0, 6)) {
        case 0: t = watermark; break;  // exact tie: FIFO must decide
        case 1: t = watermark + rng.uniform(0.0, 0.0005); break;  // same tick
        case 2: t = watermark + rng.uniform(0.0, 2.0); break;     // level 0/1
        case 3: t = watermark + rng.uniform(0.0, 400.0); break;   // level 1/2
        case 4: t = watermark + rng.uniform(0.0, 5e4); break;     // level 2
        case 5: t = watermark + 2e7; break;  // beyond horizon: overflow
        default: t = std::numeric_limits<Seconds>::infinity(); break;
      }
      wheel.push(sim::SimEvent{t, seq, {}, nullptr});
      heap.push(sim::SimEvent{t, seq, {}, nullptr});
      oracle.emplace_back(t, seq);
      ++seq;
    } else {
      const std::size_t want = oracle_min(oracle);
      ASSERT_EQ(wheel.peek_time(), oracle[want].first);
      const sim::SimEvent got_w = wheel.pop();
      const sim::SimEvent got_h = heap.pop();
      ASSERT_EQ(got_w.time, oracle[want].first);
      ASSERT_EQ(got_w.seq, oracle[want].second);
      ASSERT_EQ(got_h.time, got_w.time);
      ASSERT_EQ(got_h.seq, got_w.seq);
      if (std::isfinite(got_w.time)) watermark = got_w.time;
      oracle.erase(oracle.begin() + static_cast<std::ptrdiff_t>(want));
    }
    ASSERT_EQ(wheel.size(), oracle.size());
    ASSERT_EQ(wheel.empty(), oracle.empty());
  }
  // Drain: the remaining events must come out fully sorted on both queues.
  while (!oracle.empty()) {
    const std::size_t want = oracle_min(oracle);
    const sim::SimEvent got_w = wheel.pop();
    const sim::SimEvent got_h = heap.pop();
    ASSERT_EQ(got_w.time, oracle[want].first);
    ASSERT_EQ(got_w.seq, oracle[want].second);
    ASSERT_EQ(got_h.seq, got_w.seq);
    oracle.erase(oracle.begin() + static_cast<std::ptrdiff_t>(want));
  }
  EXPECT_TRUE(wheel.empty());
  EXPECT_TRUE(heap.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz,
                         ::testing::Range<std::uint64_t>(0, 16));

TEST(EventQueueProperty, SameTimestampDequeuesInSchedulingOrder) {
  // 500 events at one instant: (time, seq) FIFO is the whole contract.
  sim::TimingWheelEventQueue wheel;
  for (std::uint64_t s = 0; s < 500; ++s)
    wheel.push(sim::SimEvent{1.5, s, {}, nullptr});
  for (std::uint64_t s = 0; s < 500; ++s) {
    const sim::SimEvent ev = wheel.pop();
    ASSERT_EQ(ev.time, 1.5);
    ASSERT_EQ(ev.seq, s);
  }
  EXPECT_TRUE(wheel.empty());
}

TEST(EventQueueProperty, CascadesAcrossLevelBoundaries) {
  // Times striding every level-0 window edge and well into level 1 and 2;
  // pushed shuffled, must dequeue sorted. Exercises cascade_slot re-basing
  // (the bug class where a stale coarse bucket captures near events).
  Rng rng(42);
  std::vector<Seconds> times;
  for (int i = 0; i < 800; ++i)
    times.push_back(static_cast<Seconds>(i) * 0.37);  // 0 .. ~296 s
  std::vector<Seconds> shuffled = times;
  rng.shuffle(shuffled);

  sim::TimingWheelEventQueue wheel;
  std::uint64_t seq = 0;
  for (const Seconds t : shuffled)
    wheel.push(sim::SimEvent{t, seq++, {}, nullptr});
  Seconds prev = -1.0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    const sim::SimEvent ev = wheel.pop();
    ASSERT_GT(ev.time, prev);
    prev = ev.time;
  }
  EXPECT_TRUE(wheel.empty());
}

TEST(EventQueueProperty, FarFutureEventsWaitInOverflowAndRepage) {
  sim::TimingWheelEventQueue wheel;
  // Beyond the three-level horizon (~16777 s): overflow list.
  wheel.push(sim::SimEvent{3e7, 0, {}, nullptr});
  wheel.push(sim::SimEvent{1.0, 1, {}, nullptr});
  ASSERT_EQ(wheel.pop().seq, 1u);
  // Draining the levels re-pages the wheel around the overflow tick …
  ASSERT_EQ(wheel.peek_time(), 3e7);
  // … after which nearer events can still be scheduled and win again.
  wheel.push(sim::SimEvent{3e7 - 1.0, 2, {}, nullptr});
  ASSERT_EQ(wheel.pop().seq, 2u);
  ASSERT_EQ(wheel.pop().seq, 0u);
  EXPECT_TRUE(wheel.empty());
}

TEST(EventQueueProperty, InfiniteTimesDegradeToExactHeapMode) {
  sim::TimingWheelEventQueue wheel;
  const Seconds inf = std::numeric_limits<Seconds>::infinity();
  wheel.push(sim::SimEvent{inf, 0, {}, nullptr});
  wheel.push(sim::SimEvent{inf, 1, {}, nullptr});
  wheel.push(sim::SimEvent{2.0, 2, {}, nullptr});
  ASSERT_EQ(wheel.pop().seq, 2u);
  // Only unrepresentable ticks remain: the wheel re-pages into pure-heap
  // mode. New finite pushes must still dequeue before the infinite ones,
  // and the infinite ones FIFO among themselves.
  ASSERT_EQ(wheel.peek_time(), inf);
  wheel.push(sim::SimEvent{5.0, 3, {}, nullptr});
  ASSERT_EQ(wheel.pop().seq, 3u);
  ASSERT_EQ(wheel.pop().seq, 0u);
  ASSERT_EQ(wheel.pop().seq, 1u);
  EXPECT_TRUE(wheel.empty());
}

// ---------------------------------------------------------------------------
// RingQueue (the deque replacement in GPU executors) vs a deque oracle
// ---------------------------------------------------------------------------

class RingQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RingQueueFuzz, RandomOpsMatchDequeOracle) {
  Rng rng(GetParam() * 104729 + 3);
  common::RingQueue<int> ring;
  std::deque<int> oracle;
  int next = 0;
  for (int op = 0; op < 5000; ++op) {
    const int kind = static_cast<int>(rng.uniform_int(0, 99));
    if (oracle.empty() || kind < 55) {
      ring.push_back(next);
      oracle.push_back(next);
      ++next;
    } else if (kind < 95) {
      ASSERT_EQ(ring.front(), oracle.front());
      ASSERT_EQ(ring.pop_front(), oracle.front());
      oracle.pop_front();
    } else {
      ring.clear();
      oracle.clear();
    }
    ASSERT_EQ(ring.size(), oracle.size());
    ASSERT_EQ(ring.empty(), oracle.empty());
    if (!oracle.empty()) ASSERT_EQ(ring.front(), oracle.front());
  }
  while (!oracle.empty()) {
    ASSERT_EQ(ring.pop_front(), oracle.front());
    oracle.pop_front();
  }
  EXPECT_TRUE(ring.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingQueueFuzz,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(RingQueueProperty, MoveOnlyPayloadsReleaseOnPop) {
  // pop_front resets the slot, so a move-only payload's resources are
  // released immediately — the property GpuExecutor task queues rely on.
  common::RingQueue<std::unique_ptr<int>> ring;
  for (int i = 0; i < 40; ++i) ring.push_back(std::make_unique<int>(i));
  for (int i = 0; i < 40; ++i) {
    auto p = ring.pop_front();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, i);
  }
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace autopipe
