// Decision-ledger tests: the controller emits exactly one record per
// planning round and resolves every one of them, the text form is
// byte-deterministic and round-trips through the reader, and the
// calibration report's aggregates match hand-computed values on a
// synthetic ledger (plus a live switch-cost join against a real trace).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/calibration.hpp"
#include "analysis/gantt.hpp"
#include "analysis/ledger_reader.hpp"
#include "analysis/trace_view.hpp"
#include "autopipe/controller.hpp"
#include "common/ledger.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "models/zoo.hpp"
#include "pipeline/executor.hpp"
#include "sim/cluster.hpp"
#include "sim/trace.hpp"

namespace autopipe::core {
namespace {

models::ModelSpec toy_model(std::size_t layers = 6) {
  std::vector<models::LayerSpec> specs;
  for (std::size_t l = 0; l < layers; ++l) {
    models::LayerSpec s;
    s.name = "l" + std::to_string(l);
    s.fwd_flops_per_sample = 100.0 * static_cast<double>(1 + l % 2);
    s.bwd_flops_per_sample = 2.0 * s.fwd_flops_per_sample;
    s.activation_bytes_per_sample = 20.0;
    s.param_bytes = 400.0;
    specs.push_back(std::move(s));
  }
  return models::ModelSpec("toy", 4, std::move(specs));
}

struct Rig {
  explicit Rig(std::size_t servers = 3, double gpu_flops = 1e4,
               double nic = 1e5) {
    config.num_servers = servers;
    config.gpus_per_server = 1;
    config.gpu_specs = {sim::GpuSpec{"toy", gpu_flops, gib(16)}};
    config.nic_bandwidth = nic;
    cluster = std::make_unique<sim::Cluster>(sim, config);
  }
  sim::Simulator sim;
  sim::ClusterConfig config;
  std::unique_ptr<sim::Cluster> cluster;
};

pipeline::ExecutorConfig clean_config() {
  pipeline::ExecutorConfig c;
  c.framework.per_layer_overhead = 0.0;
  c.framework.comm_efficiency = 1.0;
  c.framework.compute_efficiency = 1.0;
  return c;
}

/// The skewed-start scenario from the controller tests: the threshold
/// arbiter rebalances it within a few decision rounds, so the ledger sees
/// both switch and hold verdicts. Returns the ledger's text form.
std::string run_skewed_scenario(Rig& rig, bool trace = false) {
  const auto model = toy_model(6);
  rig.sim.ledger().set_enabled(true);
  if (trace) rig.sim.tracer().set_enabled(true);
  partition::Partition skewed({{0, 3, {0}}, {4, 4, {1}}, {5, 5, {2}}},
                              model.num_layers());
  pipeline::PipelineExecutor executor(*rig.cluster, model, skewed,
                                      clean_config());
  ControllerConfig config;
  config.arbiter_mode = ControllerConfig::ArbiterMode::kThreshold;
  config.use_meta_network = false;
  config.decision_interval = 2;
  AutoPipeController controller(*rig.cluster, executor, config, nullptr,
                                nullptr);
  controller.attach();
  executor.run(40, 10);

  EXPECT_GT(controller.stats().decisions, 0u);
  EXPECT_EQ(rig.sim.ledger().size(), controller.stats().decisions);
  rig.sim.ledger().finalize("run_end");
  EXPECT_TRUE(rig.sim.ledger().all_resolved());

  std::ostringstream os;
  rig.sim.ledger().write_text(os);
  return os.str();
}

TEST(Ledger, DisabledByDefaultAndRecordsNothing) {
  Rig rig;
  const auto model = toy_model(6);
  partition::Partition skewed({{0, 3, {0}}, {4, 4, {1}}, {5, 5, {2}}},
                              model.num_layers());
  pipeline::PipelineExecutor executor(*rig.cluster, model, skewed,
                                      clean_config());
  ControllerConfig config;
  config.arbiter_mode = ControllerConfig::ArbiterMode::kThreshold;
  config.use_meta_network = false;
  config.decision_interval = 2;
  AutoPipeController controller(*rig.cluster, executor, config, nullptr,
                                nullptr);
  controller.attach();
  executor.run(30, 5);
  EXPECT_GT(controller.stats().decisions, 0u);
  EXPECT_FALSE(rig.sim.ledger().enabled());
  EXPECT_TRUE(rig.sim.ledger().empty());
}

TEST(Ledger, OneRecordPerDecisionAllResolved) {
  Rig rig;
  const std::string text = run_skewed_scenario(rig);
  EXPECT_NE(text.find("ledger v1 model=toy"), std::string::npos);
  // At least one adopted switch and at least one resolved outcome beyond
  // run_end: the scenario is built to rebalance.
  EXPECT_NE(text.find("action=switch"), std::string::npos);
}

TEST(Ledger, ByteDeterministicAcrossIdenticalRuns) {
  Rig rig_a;
  Rig rig_b;
  const std::string a = run_skewed_scenario(rig_a);
  const std::string b = run_skewed_scenario(rig_b);
  EXPECT_EQ(a, b);
}

TEST(Ledger, RoundTripsThroughReader) {
  Rig rig;
  const std::string text = run_skewed_scenario(rig);

  std::istringstream in(text);
  const trace::DecisionLedger parsed = analysis::read_ledger(in);
  EXPECT_EQ(parsed.size(), rig.sim.ledger().size());
  EXPECT_EQ(parsed.model(), "toy");
  EXPECT_EQ(parsed.run_workers(), 3);
  EXPECT_EQ(parsed.batches_per_iteration(), 4);

  std::ostringstream out;
  parsed.write_text(out);
  EXPECT_EQ(out.str(), text);
}

TEST(Ledger, ReaderRejectsMalformedInput) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return analysis::read_ledger(in);
  };
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("not a ledger\n"), std::runtime_error);
  // Header promising more decisions than the body delivers.
  EXPECT_THROW(parse("ledger v1 model=toy batch=4 workers=3 decisions=1\n"),
               std::runtime_error);
  // A decision with no choice/outcome lines.
  EXPECT_THROW(
      parse("ledger v1 model=toy batch=4 workers=3 decisions=1\n"
            "decision id=0 t=1 iter=5 kind=neighborhood digest=00 workers=3 "
            "iter_time=0.1 current=L0-5@{0} current_pred=40\n"),
      std::runtime_error);
}

// Hand-checked calibration arithmetic on a synthetic three-decision ledger:
//   d0: switch, executed,  pred 100, realized 80,  best 110
//       -> ape 0.25, bias +0.25, regret (110-80)/80 = 0.375
//   d1: hold,   rejected,  pred 50,  realized 100, best 120
//       -> ape 0.50, bias -0.50, regret (120-100)/100 = 0.2
//   d2: switch, superseded, never measured -> excluded from the means
// Aggregates: accept rate 2/3, measured 2, MAPE 0.375, bias -0.125,
// mean regret 0.2875, max regret 0.375.
trace::DecisionLedger synthetic_ledger() {
  trace::DecisionLedger ledger;
  ledger.set_enabled(true);
  ledger.set_run_info(4, 2, "toy");

  trace::DecisionRecord d0;
  d0.time = 1.0;
  d0.iteration = 5;
  d0.kind = "neighborhood";
  d0.num_workers = 2;
  d0.action = trace::DecisionAction::kSwitch;
  d0.chosen_pred = 100.0;
  d0.best_pred = 110.0;
  d0.outcome = {trace::OutcomeStatus::kExecuted, 80.0, 4, "measured"};
  ledger.add(d0);

  trace::DecisionRecord d1;
  d1.time = 2.0;
  d1.iteration = 10;
  d1.kind = "neighborhood";
  d1.num_workers = 2;
  d1.action = trace::DecisionAction::kHold;
  d1.chosen_pred = 50.0;
  d1.best_pred = 120.0;
  d1.outcome = {trace::OutcomeStatus::kRejected, 100.0, 4, "measured"};
  ledger.add(d1);

  trace::DecisionRecord d2;
  d2.time = 3.0;
  d2.iteration = 15;
  d2.kind = "neighborhood";
  d2.num_workers = 2;
  d2.action = trace::DecisionAction::kSwitch;
  d2.chosen_pred = 90.0;
  d2.best_pred = 90.0;
  d2.arbiter = "rl";  // exercises the q-value list serialization
  d2.q_values = {0.125, -1.75};
  d2.explored = true;
  d2.outcome = {trace::OutcomeStatus::kSuperseded, -1.0, 0, "run_end"};
  ledger.add(d2);
  return ledger;
}

TEST(Calibration, HandCheckedAggregates) {
  const analysis::CalibrationReport report =
      analysis::calibrate(synthetic_ledger());

  EXPECT_EQ(report.decisions, 3u);
  EXPECT_EQ(report.switches, 2u);
  EXPECT_EQ(report.holds, 1u);
  EXPECT_NEAR(report.accept_rate, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(report.executed, 1u);
  EXPECT_EQ(report.rejected, 1u);
  EXPECT_EQ(report.superseded, 1u);
  EXPECT_EQ(report.reverted, 0u);

  EXPECT_EQ(report.measured, 2u);
  EXPECT_NEAR(report.speed_mape, 0.375, 1e-12);
  EXPECT_NEAR(report.speed_bias, -0.125, 1e-12);
  EXPECT_NEAR(report.mean_regret, 0.2875, 1e-12);
  EXPECT_NEAR(report.max_regret, 0.375, 1e-12);
  EXPECT_EQ(report.cost_joined, 0u);

  ASSERT_EQ(report.rows.size(), 3u);
  EXPECT_NEAR(report.rows[0].ape, 0.25, 1e-12);
  EXPECT_NEAR(report.rows[0].bias, 0.25, 1e-12);
  EXPECT_NEAR(report.rows[0].regret, 0.375, 1e-12);
  EXPECT_NEAR(report.rows[1].ape, 0.5, 1e-12);
  EXPECT_NEAR(report.rows[1].bias, -0.5, 1e-12);
  EXPECT_LT(report.rows[2].ape, 0.0);  // unmeasured stays -1
}

TEST(Calibration, SyntheticLedgerRoundTripsAndRenders) {
  const trace::DecisionLedger ledger = synthetic_ledger();
  std::ostringstream os;
  ledger.write_text(os);
  std::istringstream in(os.str());
  const trace::DecisionLedger parsed = analysis::read_ledger(in);
  std::ostringstream re;
  parsed.write_text(re);
  EXPECT_EQ(re.str(), os.str());

  std::ostringstream rendered;
  analysis::render_calibration(analysis::calibrate(parsed), rendered);
  EXPECT_NE(rendered.str().find("MAPE 37.50%"), std::string::npos);

  std::ostringstream table;
  analysis::render_decisions(parsed, table);
  EXPECT_NE(table.str().find("superseded"), std::string::npos);
}

TEST(Calibration, SwitchCostJoinAgainstLiveTrace) {
  Rig rig;
  run_skewed_scenario(rig, /*trace=*/true);

  const analysis::TraceView view(rig.sim.tracer().events());
  const analysis::CalibrationReport report =
      analysis::calibrate(rig.sim.ledger(), view);

  // Every executed/reverted switch decision left a switch span in the trace
  // at the decision instant, so each must join to a post-mortem.
  std::size_t joinable = 0;
  for (const analysis::CalibrationRow& row : report.rows) {
    if (row.action == "switch" &&
        (row.status == "executed" || row.status == "reverted")) {
      ++joinable;
    }
  }
  EXPECT_GT(joinable, 0u);
  EXPECT_EQ(report.cost_joined, joinable);
  for (const analysis::CalibrationRow& row : report.rows) {
    if (row.cost_actual >= 0.0) EXPECT_GE(row.cost_pred, 0.0);
  }
}

TEST(Gantt, DecisionRowMarksLedgerRecords) {
  Rig rig;
  run_skewed_scenario(rig, /*trace=*/true);
  const analysis::TraceView view(rig.sim.tracer().events());
  const std::string plain = analysis::render_gantt(view, 80);
  const std::string marked =
      analysis::render_gantt(view, rig.sim.ledger(), 80);
  EXPECT_EQ(plain.find("decision row"), std::string::npos);
  EXPECT_NE(marked.find("decision row: ^ switch verdict  . hold"),
            std::string::npos);
  EXPECT_NE(marked.find('^'), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fuzz-style reader robustness. read_ledger's contract is "parse or throw
// std::runtime_error" — the ledger format does carry cross-line state
// (decision records accumulate cand/choice/outcome lines), so unlike the
// trace reader most corruptions must be *rejected*, and none may crash,
// hang, or surface a foreign exception type (contract_error included).
// ---------------------------------------------------------------------------

std::string synthetic_ledger_text() {
  std::ostringstream os;
  synthetic_ledger().write_text(os);
  return os.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

/// True when read_ledger accepts the text, false when it rejects it with
/// std::runtime_error. Anything else propagates into gtest and fails.
bool ledger_parses_cleanly(const std::string& text) {
  std::istringstream is(text);
  try {
    (void)analysis::read_ledger(is);
    return true;
  } catch (const std::runtime_error&) {
    return false;
  }
}

class LedgerReaderFuzz : public ::testing::TestWithParam<int> {};

// Cutting at a line boundary strictly inside the body loses decisions the
// header still promises (or leaves a record half-built): every proper
// whole-line prefix must be rejected; only the full text parses.
TEST_P(LedgerReaderFuzz, WholeLinePrefixIsRejectedUnlessComplete) {
  static const std::vector<std::string> lines =
      split_lines(synthetic_ledger_text());
  ASSERT_GT(lines.size(), 1u);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729u + 5u);
  const auto keep = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(lines.size())));
  std::string text;
  for (std::size_t i = 0; i < keep; ++i) text += lines[i] + '\n';
  EXPECT_EQ(ledger_parses_cleanly(text), keep == lines.size())
      << "prefix of " << keep << "/" << lines.size() << " lines";
}

// Byte-level truncation, random byte flips, and interleaving the lines of
// two ledgers (decision ids collide, records nest wrongly) must always land
// in parse-or-reject — never a crash or a non-runtime_error exception.
TEST_P(LedgerReaderFuzz, ArbitraryCorruptionParsesOrRejects) {
  static const std::string base = synthetic_ledger_text();
  ASSERT_FALSE(base.empty());
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729u + 19u);
  std::string text;
  switch (GetParam() % 3) {
    case 0: {  // truncate at an arbitrary byte, usually mid-line
      const auto cut = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(base.size())));
      text = base.substr(0, cut);
      break;
    }
    case 1: {  // flip a handful of bytes to arbitrary values
      text = base;
      const std::int64_t flips = rng.uniform_int(1, 16);
      for (std::int64_t f = 0; f < flips; ++f) {
        const auto pos = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
        text[pos] = static_cast<char>(rng.uniform_int(0, 255));
      }
      break;
    }
    default: {  // interleave two copies' lines, each copy's order preserved
      const std::vector<std::string> lines = split_lines(base);
      std::size_t i = 0, j = 0;
      while (i < lines.size() || j < lines.size()) {
        const bool take_first =
            j >= lines.size() || (i < lines.size() && rng.chance(0.5));
        text += (take_first ? lines[i++] : lines[j++]) + '\n';
      }
      break;
    }
  }
  (void)ledger_parses_cleanly(text);  // either outcome is fine
}

INSTANTIATE_TEST_SUITE_P(SeededCorruptions, LedgerReaderFuzz,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace autopipe::core
