// Communication-model tests: the analytic PS/ring formulas, the framework
// profiles, and — crucially — agreement between the analytic formulas and
// the event-driven collectives executed on the simulated cluster.
#include <gtest/gtest.h>

#include "comm/collective.hpp"
#include "comm/framework.hpp"
#include "common/expect.hpp"
#include "common/units.hpp"
#include "sim/cluster.hpp"

namespace autopipe::comm {
namespace {

TEST(Analytic, RingAllReduceFormula) {
  // 4 workers, 100 bytes, 10 B/s: 2*3 steps of 25 bytes each at 10 B/s.
  EXPECT_NEAR(ring_allreduce_time(100, 4, 10.0), 15.0, 1e-9);
  EXPECT_DOUBLE_EQ(ring_allreduce_time(100, 1, 10.0), 0.0);
}

TEST(Analytic, ParameterServerFormula) {
  // 4 workers: the PS moves 3x the volume in each direction.
  EXPECT_NEAR(parameter_server_time(100, 4, 10.0), 30.0, 1e-9);
  EXPECT_DOUBLE_EQ(parameter_server_time(100, 1, 10.0), 0.0);
}

TEST(Analytic, PsSlowerThanRingBeyondTwoWorkers) {
  for (std::size_t n = 3; n <= 10; ++n) {
    EXPECT_GT(parameter_server_time(1e6, n, 1e9),
              ring_allreduce_time(1e6, n, 1e9))
        << "n=" << n;
  }
}

TEST(Analytic, EfficiencyScalesTime) {
  EXPECT_NEAR(ring_allreduce_time(100, 4, 10.0, 0.5),
              2.0 * ring_allreduce_time(100, 4, 10.0), 1e-9);
}

TEST(Analytic, SyncTimeDispatches) {
  EXPECT_DOUBLE_EQ(sync_time(SyncScheme::kRing, 100, 4, 10.0),
                   ring_allreduce_time(100, 4, 10.0));
  EXPECT_DOUBLE_EQ(sync_time(SyncScheme::kParameterServer, 100, 4, 10.0),
                   parameter_server_time(100, 4, 10.0));
}

TEST(Frameworks, ProfilesOrdered) {
  // PyTorch/NCCL leanest; TensorFlow heaviest per-op (Fig 8's framework
  // axis).
  EXPECT_LT(pytorch_profile().per_layer_overhead,
            mxnet_profile().per_layer_overhead);
  EXPECT_LT(mxnet_profile().per_layer_overhead,
            tensorflow_profile().per_layer_overhead);
  EXPECT_GT(pytorch_profile().comm_efficiency,
            tensorflow_profile().comm_efficiency);
}

TEST(Frameworks, LookupByName) {
  EXPECT_EQ(framework_by_name("pytorch").name, "pytorch");
  EXPECT_THROW(framework_by_name("jax"), contract_error);
  EXPECT_STREQ(to_string(SyncScheme::kRing), "Ring");
  EXPECT_STREQ(to_string(SyncScheme::kParameterServer), "PS");
}

class CollectiveOnCluster : public ::testing::Test {
 protected:
  CollectiveOnCluster() {
    config_.nic_bandwidth = 1000.0;  // 1000 B/s for easy math
    config_.num_servers = 4;
    config_.gpus_per_server = 1;
    cluster_ = std::make_unique<sim::Cluster>(sim_, config_);
  }
  sim::Simulator sim_;
  sim::ClusterConfig config_;
  std::unique_ptr<sim::Cluster> cluster_;
};

TEST_F(CollectiveOnCluster, RingMatchesAnalytic) {
  Seconds done_at = -1;
  Collective::ring_allreduce(*cluster_, {0, 1, 2, 3}, 4000.0, 1.0,
                             [&] { done_at = sim_.now(); });
  sim_.run();
  // Analytic: 2*(4-1) steps x (4000/4)/1000 = 6 seconds. The event-driven
  // version serializes steps the same way, so it matches exactly.
  EXPECT_NEAR(done_at, ring_allreduce_time(4000.0, 4, 1000.0), 1e-6);
}

TEST_F(CollectiveOnCluster, ParameterServerMatchesAnalytic) {
  Seconds done_at = -1;
  Collective::parameter_server(*cluster_, {0, 1, 2, 3}, 3000.0, 1.0,
                               [&] { done_at = sim_.now(); });
  sim_.run();
  // Push: 3 concurrent flows of 3000 into one NIC (rx bottleneck) = 9 s;
  // pull mirrors it on tx = 9 s. Total 18 = (n-1)*V/bw * 2 directions...
  // the analytic single-direction formula gives 9; full-duplex NICs let
  // push and pull each take one direction, but they are serialized phases.
  EXPECT_NEAR(done_at, 2.0 * parameter_server_time(3000.0, 4, 1000.0), 1e-6);
}

TEST_F(CollectiveOnCluster, SingleMemberCompletesImmediately) {
  bool fired = false;
  Collective::ring_allreduce(*cluster_, {2}, 1e9, 1.0, [&] { fired = true; });
  sim_.run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(sim_.now(), 0.0);
}

TEST_F(CollectiveOnCluster, ZeroBytesCompletesImmediately) {
  bool fired = false;
  Collective::run(SyncScheme::kParameterServer, *cluster_, {0, 1}, 0.0, 1.0,
                  [&] { fired = true; });
  sim_.run();
  EXPECT_TRUE(fired);
}

TEST_F(CollectiveOnCluster, EfficiencyInflatesOnWireVolume) {
  Seconds t_full = -1, t_half = -1;
  {
    sim::Simulator s1;
    sim::Cluster c1(s1, config_);
    Collective::ring_allreduce(c1, {0, 1, 2, 3}, 4000.0, 1.0,
                               [&] { t_full = s1.now(); });
    s1.run();
  }
  {
    sim::Simulator s2;
    sim::Cluster c2(s2, config_);
    Collective::ring_allreduce(c2, {0, 1, 2, 3}, 4000.0, 0.5,
                               [&] { t_half = s2.now(); });
    s2.run();
  }
  EXPECT_NEAR(t_half, 2.0 * t_full, 1e-6);
}


TEST_F(CollectiveOnCluster, RingSlowsUnderForeignContention) {
  // A foreign elephant on one ring edge halves that edge's share; the ring
  // serializes steps, so the whole collective stretches.
  Seconds clean = -1;
  {
    sim::Simulator s;
    sim::Cluster c(s, config_);
    Collective::ring_allreduce(c, {0, 1, 2, 3}, 4000.0, 1.0,
                               [&] { clean = s.now(); });
    s.run();
  }
  Seconds contended = -1;
  {
    sim::Simulator s;
    sim::Cluster c(s, config_);
    c.transfer(0, 1, 1e18, nullptr);  // persistent foreign flow on edge 0->1
    Collective::ring_allreduce(c, {0, 1, 2, 3}, 4000.0, 1.0,
                               [&] { contended = s.now(); });
    s.run_until(clean * 4.0);
  }
  EXPECT_GT(contended, clean * 1.2);
}

TEST_F(CollectiveOnCluster, ConcurrentCollectivesShareTheFabric) {
  // Two simultaneous ring all-reduces over the same members take longer
  // than one but less than twice (their steps interleave on the edges).
  Seconds one = -1;
  {
    sim::Simulator s;
    sim::Cluster c(s, config_);
    Collective::ring_allreduce(c, {0, 1, 2, 3}, 4000.0, 1.0,
                               [&] { one = s.now(); });
    s.run();
  }
  Seconds both = -1;
  {
    sim::Simulator s;
    sim::Cluster c(s, config_);
    int done = 0;
    auto on_done = [&] {
      if (++done == 2) both = s.now();
    };
    Collective::ring_allreduce(c, {0, 1, 2, 3}, 4000.0, 1.0, on_done);
    Collective::ring_allreduce(c, {0, 1, 2, 3}, 4000.0, 1.0, on_done);
    s.run();
  }
  EXPECT_GT(both, one * 1.5);
  EXPECT_LT(both, one * 2.5);
}

}  // namespace
}  // namespace autopipe::comm
