// AutoPipe-core tests: the non-intrusive profiler against ground truth,
// feature encoding, meta-network learning, switch-cost arithmetic, the
// resource monitor's change detection, and the controller loop end-to-end.
#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "autopipe/controller.hpp"
#include "common/expect.hpp"
#include "autopipe/features.hpp"
#include "autopipe/meta_network.hpp"
#include "autopipe/profiler.hpp"
#include "autopipe/resource_monitor.hpp"
#include "autopipe/switch_cost.hpp"
#include "autopipe/training.hpp"
#include "common/units.hpp"
#include "models/zoo.hpp"
#include "partition/analytic_eval.hpp"
#include "partition/pipedream_planner.hpp"
#include "pipeline/executor.hpp"
#include "sim/cluster.hpp"
#include "sim/trace.hpp"

namespace autopipe::core {
namespace {

models::ModelSpec toy_model(std::size_t layers = 6) {
  std::vector<models::LayerSpec> specs;
  for (std::size_t l = 0; l < layers; ++l) {
    models::LayerSpec s;
    s.name = "l" + std::to_string(l);
    s.fwd_flops_per_sample = 100.0 * static_cast<double>(1 + l % 2);
    s.bwd_flops_per_sample = 2.0 * s.fwd_flops_per_sample;
    s.activation_bytes_per_sample = 20.0;
    s.param_bytes = 400.0;
    specs.push_back(std::move(s));
  }
  return models::ModelSpec("toy", 4, std::move(specs));
}

struct Rig {
  explicit Rig(std::size_t servers = 3, double gpu_flops = 1e4,
               double nic = 1e5) {
    config.num_servers = servers;
    config.gpus_per_server = 1;
    config.gpu_specs = {sim::GpuSpec{"toy", gpu_flops, gib(16)}};
    config.nic_bandwidth = nic;
    cluster = std::make_unique<sim::Cluster>(sim, config);
  }
  sim::Simulator sim;
  sim::ClusterConfig config;
  std::unique_ptr<sim::Cluster> cluster;
};

pipeline::ExecutorConfig clean_config() {
  pipeline::ExecutorConfig c;
  c.framework.per_layer_overhead = 0.0;
  c.framework.comm_efficiency = 1.0;
  c.framework.compute_efficiency = 1.0;
  return c;
}

TEST(Profiler, StaticMetricsMatchModel) {
  const auto model = toy_model();
  Profiler profiler(model, 4);
  Rig rig;
  pipeline::PipelineExecutor executor(
      *rig.cluster, model,
      partition::Partition::even_split(model.num_layers(), {0, 1, 2}),
      clean_config());
  executor.run(5, 1);
  const ProfileSnapshot snap = profiler.snapshot(executor, *rig.cluster);
  EXPECT_EQ(snap.num_layers, model.num_layers());
  EXPECT_EQ(snap.num_workers, rig.cluster->num_workers());
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    EXPECT_DOUBLE_EQ(snap.activation_bytes[l], model.activation_bytes(l, 4));
    EXPECT_DOUBLE_EQ(snap.gradient_bytes[l], model.gradient_bytes(l, 4));
    EXPECT_DOUBLE_EQ(snap.param_bytes[l], model.param_bytes(l));
  }
  EXPECT_GT(snap.iteration_time, 0.0);
}

TEST(Profiler, ImpliedWorkerSpeedTracksGroundTruth) {
  const auto model = toy_model();
  Profiler profiler(model, 4);
  Rig rig;
  pipeline::PipelineExecutor executor(
      *rig.cluster, model,
      partition::Partition::even_split(model.num_layers(), {0, 1, 2}),
      clean_config());
  executor.run(10, 2);
  const ProfileSnapshot snap = profiler.snapshot(executor, *rig.cluster);
  // Workers host stages; their implied speed should be within queueing
  // noise of the 1e4 FLOP/s device rate.
  for (sim::WorkerId w = 0; w < 3; ++w) {
    EXPECT_GT(snap.worker_speed[w], 0.5 * 1e4);
    EXPECT_LT(snap.worker_speed[w], 1.5 * 1e4);
  }
}

TEST(Profiler, RatioEstimatedLayerTimesSumToStageTime) {
  const auto model = toy_model();
  Profiler profiler(model, 4);
  Rig rig;
  pipeline::PipelineExecutor executor(
      *rig.cluster, model,
      partition::Partition::even_split(model.num_layers(), {0, 1, 2}),
      clean_config());
  executor.run(10, 2);
  const ProfileSnapshot snap = profiler.snapshot(executor, *rig.cluster);
  // FP_{w,l} built from ratios: per-layer times are positive and ordered by
  // the layer's FLOPs for a fixed worker.
  for (std::size_t l = 0; l + 1 < model.num_layers(); l += 2) {
    // layers alternate 100/200 FLOPs per sample
    EXPECT_LT(snap.fp_time[0][l], snap.fp_time[0][l + 1]);
  }
}

TEST(Profiler, DetectsContentionThroughStageTimes) {
  const auto model = toy_model();
  Profiler profiler(model, 4);
  Rig rig;
  pipeline::PipelineExecutor executor(
      *rig.cluster, model,
      partition::Partition::even_split(model.num_layers(), {0, 1, 2}),
      clean_config());
  // Poll the profiler every iteration, as the controller does.
  ProfileSnapshot last;
  executor.set_iteration_callback([&](std::size_t) {
    last = profiler.snapshot(executor, *rig.cluster);
  });
  executor.run(10, 2);
  const double before = last.worker_speed[1];
  rig.cluster->add_background_job(1);
  executor.run(15, 2);
  const double after = last.worker_speed[1];
  EXPECT_LT(after, 0.75 * before);  // tenant 2 should read ≈ half speed
}

TEST(Features, DimensionsAreConsistent) {
  const FeatureEncoder enc;
  const auto model = toy_model();
  Profiler profiler(model, 4);
  Rig rig;
  pipeline::PipelineExecutor executor(
      *rig.cluster, model,
      partition::Partition::even_split(model.num_layers(), {0, 1, 2}),
      clean_config());
  executor.run(5, 1);
  const ProfileSnapshot snap = profiler.snapshot(executor, *rig.cluster);
  EXPECT_EQ(enc.static_features(snap).size(), enc.static_dim());
  EXPECT_EQ(enc.dynamic_features(snap).size(), enc.dynamic_dim());
  EXPECT_EQ(enc.partition_features(executor.current_partition(),
                                   model.num_layers())
                .size(),
            enc.partition_dim());
  EXPECT_EQ(enc.arbiter_state(snap, 10, 12, 0.1, 3).size(),
            enc.arbiter_dim());
}

TEST(Features, PartitionEncodingDistinguishesPartitions) {
  const FeatureEncoder enc;
  const auto a = partition::Partition::even_split(6, {0, 1, 2});
  const partition::Partition b({{0, 3, {0}}, {4, 4, {1}}, {5, 5, {2}}}, 6);
  EXPECT_NE(enc.partition_features(a, 6), enc.partition_features(b, 6));
}

TEST(Features, ThroughputNormalizationRoundTrips) {
  const FeatureEncoder enc;
  EXPECT_NEAR(enc.denormalize_throughput(enc.normalize_throughput(123.0)),
              123.0, 1e-9);
}

TEST(MetaNetwork, LearnsSyntheticSpeedFunction) {
  // Target: speed proportional to the balance of the partition encoding —
  // any smooth function works; we check the MSE drops by 5x.
  MetaNetworkConfig config;
  config.dynamic_dim = 4;
  config.static_dim = 3;
  config.partition_dim = 5;
  config.lstm_hidden = 8;
  config.head_hidden = {16};
  MetaNetwork meta(config, 11);

  Rng rng(5);
  auto make_sample = [&] {
    SpeedSample s;
    s.dynamic_seq.assign(3, std::vector<double>(4));
    for (auto& step : s.dynamic_seq)
      for (double& v : step) v = rng.uniform(0, 1);
    s.static_feat = {rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1)};
    s.partition_feat.assign(5, 0.0);
    for (double& v : s.partition_feat) v = rng.uniform(0, 1);
    s.target = 0.5 * s.partition_feat[0] + 0.3 * s.dynamic_seq[2][1] +
               0.2 * s.static_feat[1];
    return s;
  };
  std::vector<SpeedSample> data;
  for (int i = 0; i < 128; ++i) data.push_back(make_sample());

  double first_loss = 0.0, last_loss = 0.0;
  for (int epoch = 0; epoch < 60; ++epoch) {
    const double loss = meta.train_batch(data);
    if (epoch == 0) first_loss = loss;
    last_loss = loss;
  }
  EXPECT_LT(last_loss, first_loss / 5.0);
}

TEST(MetaNetwork, SaveLoadRoundTrip) {
  MetaNetworkConfig config;
  config.dynamic_dim = 3;
  config.static_dim = 2;
  config.partition_dim = 4;
  config.lstm_hidden = 4;
  config.head_hidden = {8};
  MetaNetwork a(config, 1);
  const std::vector<std::vector<double>> seq(2, {0.1, 0.2, 0.3});
  const std::vector<double> st = {0.4, 0.5};
  const std::vector<double> pf = {0.1, 0.9, 0.2, 0.8};
  const double before = a.predict(seq, st, pf);
  std::stringstream ss;
  a.save(ss);
  MetaNetwork b(config, 999);
  b.load(ss);
  EXPECT_DOUBLE_EQ(b.predict(seq, st, pf), before);
}

TEST(SwitchCost, AnalyticArithmetic) {
  const auto model = toy_model(6);
  const partition::Partition from = partition::Partition::even_split(6, {0, 1, 2});
  const partition::Partition to({{0, 2, {0}}, {3, 3, {1}}, {4, 5, {2}}}, 6);
  partition::EnvironmentView env;
  env.worker_speed.assign(3, 1e4);
  env.worker_bandwidth.assign(3, 1e5);
  const auto cost = analytic_switch_cost(model, from, to, env, 0.1, 3,
                                         millis(2));
  // Layer 2 moves from worker 1 to worker 0; layer 3 moves from 1 to ...
  // from: {0,1}{2,3}{4,5}; to: {0,1,2}{3}{4,5} -> layer 2 gains worker 0.
  EXPECT_DOUBLE_EQ(cost.migration_bytes, 400.0);
  EXPECT_EQ(cost.moved_layers, 1u);
  EXPECT_EQ(cost.changed_workers, 2u);
  EXPECT_GT(cost.stop_the_world, cost.fine_grained);
  // Stop-the-world includes the drain+refill bubble: 2 x 3 x 0.1 = 0.6 s.
  EXPECT_GT(cost.stop_the_world, 0.6);
}

TEST(SwitchCost, NoChangeCostsNothing) {
  const auto model = toy_model(6);
  const auto p = partition::Partition::even_split(6, {0, 1, 2});
  partition::EnvironmentView env;
  env.worker_speed.assign(3, 1e4);
  env.worker_bandwidth.assign(3, 1e5);
  const auto cost = analytic_switch_cost(model, p, p, env, 0.1, 3, millis(2));
  EXPECT_DOUBLE_EQ(cost.migration_bytes, 0.0);
  EXPECT_DOUBLE_EQ(cost.fine_grained, 0.0);
}

TEST(SwitchCost, LearnedModelFitsAnalyticAnchor) {
  SwitchCostModel model(3);
  Rng rng(9);
  std::vector<SwitchCostModel::Sample> data;
  for (int i = 0; i < 64; ++i) {
    SwitchCostEstimate e;
    e.migration_bytes = rng.uniform(0, 5e8);
    e.changed_workers = static_cast<std::size_t>(rng.uniform_int(1, 8));
    e.moved_layers = static_cast<std::size_t>(rng.uniform_int(1, 30));
    e.stop_the_world = rng.uniform(0, 2);
    data.push_back({e, 0.5 * e.stop_the_world});
  }
  double first = 0, last = 0;
  for (int epoch = 0; epoch < 400; ++epoch) {
    const double loss = model.train_batch(data);
    if (epoch == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first / 4.0);
}

TEST(ResourceMonitor, DetectsPersistentBandwidthStep) {
  ResourceMonitor monitor(0.15, 0.3, /*persistence=*/3);
  ProfileSnapshot snap;
  snap.worker_bandwidth = {100.0, 100.0};
  snap.worker_speed = {10.0, 10.0};
  EXPECT_FALSE(monitor.update(snap).changed);  // priming
  EXPECT_FALSE(monitor.update(snap).changed);  // steady
  snap.worker_bandwidth[1] = 50.0;             // halved
  // The deviation must persist for 3 consecutive snapshots.
  EXPECT_FALSE(monitor.update(snap).changed);
  EXPECT_FALSE(monitor.update(snap).changed);
  const auto change = monitor.update(snap);
  EXPECT_TRUE(change.changed);
  EXPECT_GT(change.magnitude, 0.4);
  EXPECT_NE(change.description.find("worker 1"), std::string::npos);
  // Baseline snapped: the same reading is no longer a change.
  EXPECT_FALSE(monitor.update(snap).changed);
}

TEST(ResourceMonitor, TransientJitterIsSuppressed) {
  ResourceMonitor monitor(0.15, 0.3, /*persistence=*/3);
  ProfileSnapshot steady;
  steady.worker_bandwidth = {100.0};
  steady.worker_speed = {10.0};
  monitor.update(steady);  // prime
  ProfileSnapshot spike = steady;
  spike.worker_bandwidth[0] = 55.0;
  // One- and two-snapshot spikes never fire.
  EXPECT_FALSE(monitor.update(spike).changed);
  EXPECT_FALSE(monitor.update(steady).changed);
  EXPECT_FALSE(monitor.update(spike).changed);
  EXPECT_FALSE(monitor.update(spike).changed);
  EXPECT_FALSE(monitor.update(steady).changed);
}

TEST(ResourceMonitor, IgnoresSmallJitter) {
  ResourceMonitor monitor(0.15);
  ProfileSnapshot snap;
  snap.worker_bandwidth = {100.0};
  snap.worker_speed = {10.0};
  monitor.update(snap);
  snap.worker_bandwidth[0] = 95.0;  // 5% jitter
  EXPECT_FALSE(monitor.update(snap).changed);
}

TEST(ResourceMonitor, ZeroObservedBandwidthIsAFullDeviation) {
  // A link failure reads as zero observed bandwidth. Against a positive
  // baseline that is a 100% relative deviation and must fire once it
  // persists — not divide by zero, not wedge the monitor.
  ResourceMonitor monitor(0.15, 0.3, /*persistence=*/3);
  ProfileSnapshot snap;
  snap.worker_bandwidth = {100.0, 100.0};
  snap.worker_speed = {10.0, 10.0};
  monitor.update(snap);  // prime
  snap.worker_bandwidth[1] = 0.0;
  EXPECT_FALSE(monitor.update(snap).changed);
  EXPECT_FALSE(monitor.update(snap).changed);
  const auto change = monitor.update(snap);
  EXPECT_TRUE(change.changed);
  EXPECT_DOUBLE_EQ(change.magnitude, 1.0);
  // The zero becomes the new baseline: with nothing to deviate from, the
  // worker is simply skipped until bandwidth is observed again.
  EXPECT_FALSE(monitor.update(snap).changed);
  snap.worker_bandwidth[1] = 100.0;  // link back — no crash, drift resumes
  EXPECT_FALSE(monitor.update(snap).changed);
}

TEST(ResourceMonitor, WorkerVanishingMidWindowRePrimes) {
  ResourceMonitor monitor(0.15, 0.3, /*persistence=*/3);
  ProfileSnapshot snap;
  snap.worker_bandwidth = {100.0, 100.0, 100.0};
  snap.worker_speed = {10.0, 10.0, 10.0};
  monitor.update(snap);  // prime on three workers
  // The population shrinks between snapshots (a worker evicted mid-window).
  snap.worker_bandwidth.pop_back();
  snap.worker_speed.pop_back();
  const auto change = monitor.update(snap);
  EXPECT_TRUE(change.changed);
  EXPECT_NE(change.description.find("population"), std::string::npos);
  // Re-primed on the new population: the same two-worker reading is steady.
  EXPECT_FALSE(monitor.update(snap).changed);
  // Growing back is a population event again, then steady.
  snap.worker_bandwidth.push_back(100.0);
  snap.worker_speed.push_back(10.0);
  EXPECT_TRUE(monitor.update(snap).changed);
  EXPECT_FALSE(monitor.update(snap).changed);
}

TEST(ResourceMonitor, CapacityStepDuringPersistenceHoldStillFires) {
  // A second, larger step landing while the first deviation is serving its
  // persistence hold must not reset the counter — the hold is about the
  // deviation persisting, not its value staying constant.
  ResourceMonitor monitor(0.15, 0.3, /*persistence=*/3);
  ProfileSnapshot snap;
  snap.worker_bandwidth = {100.0};
  snap.worker_speed = {10.0};
  monitor.update(snap);  // prime
  snap.worker_bandwidth[0] = 60.0;  // first step, hold 1
  EXPECT_FALSE(monitor.update(snap).changed);
  snap.worker_bandwidth[0] = 30.0;  // deeper step mid-hold, hold 2
  EXPECT_FALSE(monitor.update(snap).changed);
  const auto change = monitor.update(snap);  // hold 3: fires
  EXPECT_TRUE(change.changed);
  EXPECT_GT(change.magnitude, 0.6);  // reported against the latest reading
  EXPECT_FALSE(monitor.update(snap).changed);  // baseline snapped to 30
}

TEST(Controller, ThresholdModeAdaptsToBandwidthDrop) {
  const auto model = toy_model(6);
  Rig rig(3, 1e4, 1e4);
  // Start from a deliberately skewed partition.
  partition::Partition skewed({{0, 3, {0}}, {4, 4, {1}}, {5, 5, {2}}},
                              model.num_layers());
  pipeline::PipelineExecutor executor(*rig.cluster, model, skewed,
                                      clean_config());
  ControllerConfig config;
  config.arbiter_mode = ControllerConfig::ArbiterMode::kThreshold;
  config.use_meta_network = false;
  config.decision_interval = 2;
  AutoPipeController controller(*rig.cluster, executor, config, nullptr,
                                nullptr);
  controller.attach();
  executor.run(40, 10);
  EXPECT_GT(controller.stats().decisions, 0u);
  EXPECT_GT(controller.stats().switches_requested, 0u);
  // The skew must have been reduced: stage 0 no longer holds 4 layers.
  EXPECT_LT(executor.current_partition().stage(0).num_layers(), 4u);
}

TEST(Controller, NeverSwitchModeHoldsPartition) {
  const auto model = toy_model(6);
  Rig rig(3);
  const partition::Partition initial =
      partition::Partition::even_split(model.num_layers(), {0, 1, 2});
  pipeline::PipelineExecutor executor(*rig.cluster, model, initial,
                                      clean_config());
  ControllerConfig config;
  config.arbiter_mode = ControllerConfig::ArbiterMode::kNeverSwitch;
  config.use_meta_network = false;
  AutoPipeController controller(*rig.cluster, executor, config, nullptr,
                                nullptr);
  controller.attach();
  executor.run(30, 5);
  EXPECT_EQ(executor.current_partition(), initial);
  EXPECT_EQ(controller.stats().switches_requested, 0u);
}

TEST(Controller, RlModeRequiresAgent) {
  const auto model = toy_model(6);
  Rig rig(3);
  pipeline::PipelineExecutor executor(
      *rig.cluster, model,
      partition::Partition::even_split(model.num_layers(), {0, 1, 2}),
      clean_config());
  ControllerConfig config;
  config.arbiter_mode = ControllerConfig::ArbiterMode::kRl;
  config.use_meta_network = false;
  auto make_bad = [&] {
    AutoPipeController c(*rig.cluster, executor, config, nullptr, nullptr);
    (void)c;
  };
  EXPECT_THROW(make_bad(), autopipe::contract_error);
}

TEST(Controller, DecisionWallClockIsRecorded) {
  const auto model = toy_model(6);
  Rig rig(3);
  pipeline::PipelineExecutor executor(
      *rig.cluster, model,
      partition::Partition::even_split(model.num_layers(), {0, 1, 2}),
      clean_config());
  ControllerConfig config;
  config.arbiter_mode = ControllerConfig::ArbiterMode::kThreshold;
  config.use_meta_network = false;
  config.decision_interval = 1;
  AutoPipeController controller(*rig.cluster, executor, config, nullptr,
                                nullptr);
  controller.attach();
  executor.run(10, 2);
  EXPECT_GT(controller.stats().decisions, 0u);
  EXPECT_GT(controller.stats().candidates_evaluated, 0u);
  EXPECT_GT(controller.stats().total_decision_wall_seconds, 0.0);
  // Fig 12's bar: the whole decision loop is far below one second.
  EXPECT_LT(controller.stats().last_decision_wall_seconds, 1.0);
}

TEST(Training, SpeedDatasetIsLabelled) {
  const auto model = toy_model(6);
  const FeatureEncoder enc;
  ScenarioConfig scenario;
  scenario.num_servers = 3;
  scenario.gpus_per_server = 1;
  scenario.measure_iterations = 3;
  scenario.warmup_iterations = 1;
  const auto data = generate_speed_dataset(model, 6, 7, enc, scenario);
  ASSERT_EQ(data.size(), 6u);
  for (const auto& s : data) {
    EXPECT_GT(s.target, 0.0);
    EXPECT_FALSE(s.dynamic_seq.empty());
    EXPECT_EQ(s.static_feat.size(), enc.static_dim());
    EXPECT_EQ(s.partition_feat.size(), enc.partition_dim());
  }
}

TEST(Training, MetaNetworkImprovesOnSimulatorData) {
  const auto model = toy_model(6);
  const FeatureEncoder enc;
  ScenarioConfig scenario;
  scenario.num_servers = 3;
  scenario.gpus_per_server = 1;
  scenario.measure_iterations = 3;
  scenario.warmup_iterations = 1;
  auto data = generate_speed_dataset(model, 40, 17, enc, scenario);

  MetaNetworkConfig mc;
  mc.dynamic_dim = enc.dynamic_dim();
  mc.static_dim = enc.static_dim();
  mc.partition_dim = enc.partition_dim();
  mc.lstm_hidden = 16;
  mc.head_hidden = {32, 16};
  MetaNetwork meta(mc, 23);

  const auto result = train_meta_network(meta, data, 60, 8, 29);
  EXPECT_GT(result.train_loss, 0.0);
  // Normalized targets for the toy model are O(1-10); the trained net must
  // at least land in the right region.
  EXPECT_LT(result.validation_loss, 5.0);
}

TEST(Training, ArbiterEpisodesRunAndExplore) {
  const auto model = toy_model(6);
  rl::DqnConfig dc;
  dc.state_dim = FeatureEncoder{}.arbiter_dim();
  rl::DqnAgent agent(dc, 31);
  ScenarioConfig scenario;
  scenario.num_servers = 3;
  scenario.gpus_per_server = 1;
  const auto result =
      train_arbiter_offline(agent, model, 3, 20, 37, nullptr, scenario);
  EXPECT_EQ(result.episodes, 3u);
  EXPECT_GT(result.mean_episode_throughput, 0.0);
  EXPECT_GT(agent.steps(), 0u);
}


TEST(ResourceMonitor, BaselineHoldsCatchesGradualStep) {
  // An EMA-smoothed profiler converges on new contention gradually; the
  // baseline must not chase it into silence.
  ResourceMonitor monitor(0.3, 0.3, /*persistence=*/3);
  ProfileSnapshot snap;
  snap.worker_bandwidth = {100.0};
  snap.worker_speed = {10.0};
  monitor.update(snap);  // prime
  // Speed converges geometrically toward half (factor 0.6 per snapshot).
  bool detected = false;
  double speed = 10.0;
  for (int i = 0; i < 12 && !detected; ++i) {
    speed = 5.0 + (speed - 5.0) * 0.6;
    snap.worker_speed[0] = speed;
    detected = monitor.update(snap).changed;
  }
  EXPECT_TRUE(detected);
}

TEST(Controller, RevertsMeasuredRegression) {
  // Force a switch to a known-bad partition through the executor, then let
  // the controller's validation machinery see it via a fresh controller...
  // here we instead verify the end-to-end property: with validation on, a
  // churn-free environment ends at least as fast as never switching.
  const auto model = toy_model(6);
  auto run_mode = [&](bool validate) {
    Rig rig(3, 1e4, 1e4);
    pipeline::PipelineExecutor executor(
        *rig.cluster, model,
        partition::Partition::even_split(model.num_layers(), {0, 1, 2}),
        clean_config());
    ControllerConfig config;
    config.arbiter_mode = ControllerConfig::ArbiterMode::kAlwaysSwitch;
    config.use_meta_network = false;
    config.decision_interval = 2;
    config.min_history_iterations = 4;
    config.candidate_gain_floor = 0.0;  // provoke aggressive switching
    config.validate_switches = validate;
    AutoPipeController controller(*rig.cluster, executor, config, nullptr,
                                  nullptr);
    controller.attach();
    return executor.run(80, 40).throughput;
  };
  // Validation must not be materially worse than unvalidated always-switch
  // (it reverts losers), and both must complete.
  const double with = run_mode(true);
  const double without = run_mode(false);
  EXPECT_GT(with, 0.0);
  EXPECT_GT(without, 0.0);
  EXPECT_GT(with, without * 0.9);
}

TEST(Controller, RevertBackoffSaturatesAtDocumentedCeiling) {
  const auto model = toy_model(6);
  Rig rig(3);
  pipeline::PipelineExecutor executor(
      *rig.cluster, model,
      partition::Partition::even_split(model.num_layers(), {0, 1, 2}),
      clean_config());
  ControllerConfig config;
  config.arbiter_mode = ControllerConfig::ArbiterMode::kThreshold;
  config.use_meta_network = false;
  config.revert_cooldown = 6;
  config.max_revert_backoff_shift = 6;
  AutoPipeController controller(*rig.cluster, executor, config, nullptr,
                                nullptr);

  // Doubles per consecutive revert up to the configured shift...
  EXPECT_EQ(controller.revert_backoff_iterations(0), 6u);
  EXPECT_EQ(controller.revert_backoff_iterations(1), 12u);
  EXPECT_EQ(controller.revert_backoff_iterations(2), 24u);
  EXPECT_EQ(controller.revert_backoff_iterations(6), 6u << 6);
  // ...then saturates: no matter how many reverts pile up, the pause is
  // the documented ceiling, never longer and never an overflowed shift.
  const std::size_t ceiling = controller.revert_backoff_iterations(6);
  EXPECT_EQ(controller.revert_backoff_iterations(7), ceiling);
  EXPECT_EQ(controller.revert_backoff_iterations(1000), ceiling);
  EXPECT_EQ(controller.revert_backoff_iterations(
                std::numeric_limits<std::size_t>::max()),
            ceiling);
}

TEST(Controller, RevertBackoffPathologicalShiftConfigCannotOverflow) {
  const auto model = toy_model(6);
  Rig rig(3);
  pipeline::PipelineExecutor executor(
      *rig.cluster, model,
      partition::Partition::even_split(model.num_layers(), {0, 1, 2}),
      clean_config());
  ControllerConfig config;
  config.arbiter_mode = ControllerConfig::ArbiterMode::kThreshold;
  config.use_meta_network = false;
  config.revert_cooldown = 6;
  // A shift at or past the word width would be undefined behaviour without
  // the hard clamp at 48; the result must stay finite and monotone-capped.
  config.max_revert_backoff_shift = 200;
  AutoPipeController controller(*rig.cluster, executor, config, nullptr,
                                nullptr);
  const std::size_t capped = controller.revert_backoff_iterations(
      std::numeric_limits<std::size_t>::max());
  EXPECT_EQ(capped, std::size_t{6} << 48);
  EXPECT_GT(capped, 0u);
}

TEST(Controller, ReplanAdoptsRebalanceUnderLocalContention) {
  // Several adjacent stages slow at once: single boundary moves cannot
  // improve the bottleneck, so the change-triggered re-plan (DP +
  // speed-proportional rebalance) must carry the recovery.
  const auto model = toy_model(12);
  Rig rig(4, 1e4, 1e6);
  const auto initial =
      partition::Partition::even_split(model.num_layers(), {0, 1, 2, 3});
  pipeline::PipelineExecutor executor(*rig.cluster, model, initial,
                                      clean_config());
  ControllerConfig config;
  config.arbiter_mode = ControllerConfig::ArbiterMode::kThreshold;
  config.use_meta_network = false;
  config.decision_interval = 3;
  config.min_history_iterations = 5;
  AutoPipeController controller(*rig.cluster, executor, config, nullptr,
                                nullptr);
  controller.attach();
  sim::ResourceTrace trace;
  trace.at_iteration(10, sim::ResourceTrace::add_gpu_job(0));
  trace.at_iteration(10, sim::ResourceTrace::add_gpu_job(1));
  executor.set_iteration_callback([&](std::size_t iters) {
    trace.apply_iteration(iters, *rig.cluster);
    controller.on_iteration(iters);
  });
  executor.run(60, 30);
  // The slowed workers 0 and 1 must have shed layers.
  const auto& p = executor.current_partition();
  const std::size_t slow_layers =
      p.stage(p.stage_of_worker(0)).num_layers() +
      p.stage(p.stage_of_worker(1)).num_layers();
  const std::size_t fast_layers =
      p.stage(p.stage_of_worker(2)).num_layers() +
      p.stage(p.stage_of_worker(3)).num_layers();
  EXPECT_LT(slow_layers, fast_layers);
}

}  // namespace
}  // namespace autopipe::core
