// Telemetry tier (ctest labels `telemetry` + `parity`): the metric
// time-series sampler, the autopipe-ts-v1 reader/analyzer behind
// `autopipe_trace timeseries`, the host self-profiler and its report
// builder behind `autopipe_trace profile`, and the determinism contract —
// the sampled series is a pure function of the event sequence, so it must
// be byte-identical across sweep --jobs values (the queue-kind half of the
// contract lives in parity_test via parity::ScenarioResult).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "analysis/profile_report.hpp"
#include "analysis/timeseries_reader.hpp"
#include "common/metrics.hpp"
#include "common/profile.hpp"
#include "common/timeseries.hpp"
#include "sim/simulator.hpp"
#include "sweep/engine.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"

namespace autopipe {
namespace {

using analysis::ProfileReport;
using analysis::TimeSeries;
using analysis::TimeSeriesReport;
using trace::MetricsRegistry;
using trace::TimeSeriesSampler;

// ---------------------------------------------------------------------------
// TimeSeriesSampler: sample-at-boundary semantics
// ---------------------------------------------------------------------------

TEST(TimeSeriesSampler, RowAtBoundaryReflectsEventsStrictlyBefore) {
  MetricsRegistry metrics;
  TimeSeriesSampler sampler;
  sampler.configure(1.0);

  // First advance emits the t=0 row before anything happened.
  sampler.advance_to(0.0, metrics);
  ASSERT_EQ(sampler.size(), 1u);
  EXPECT_EQ(sampler.samples()[0].time, 0.0);
  EXPECT_EQ(sampler.samples()[0].values.count("x"), 0u);

  // An event at t=2.5 first drains boundaries 1.0 and 2.0 — both see the
  // state *before* that event executes.
  metrics.add("x", 1.0);
  sampler.advance_to(2.5, metrics);
  ASSERT_EQ(sampler.size(), 3u);
  EXPECT_EQ(sampler.samples()[1].time, 1.0);
  EXPECT_EQ(sampler.samples()[2].time, 2.0);
  EXPECT_EQ(sampler.samples()[2].values.at("x"), 1.0);

  // finalize() past the last boundary appends one closing row at `now`
  // with the complete end-of-run state.
  metrics.add("x", 1.0);
  sampler.finalize(2.7, metrics);
  ASSERT_EQ(sampler.size(), 4u);
  EXPECT_EQ(sampler.samples()[3].time, 2.7);
  EXPECT_EQ(sampler.samples()[3].values.at("x"), 2.0);
}

TEST(TimeSeriesSampler, BoundariesComeFromMultiplicationNotAccumulation) {
  // 0.1 is not representable in binary; index*interval keeps the grid
  // consistent no matter how advance_to calls interleave.
  MetricsRegistry metrics;
  TimeSeriesSampler incremental;
  incremental.configure(0.1);
  for (int i = 0; i <= 100; ++i)
    incremental.advance_to(static_cast<double>(i) * 0.01, metrics);

  TimeSeriesSampler one_shot;
  one_shot.configure(0.1);
  one_shot.advance_to(1.0, metrics);

  ASSERT_EQ(incremental.size(), one_shot.size());
  for (std::size_t i = 0; i < one_shot.size(); ++i)
    EXPECT_EQ(incremental.samples()[i].time, one_shot.samples()[i].time);
}

TEST(TimeSeriesSampler, FinalizeOnExactBoundaryAddsNoDuplicateRow) {
  MetricsRegistry metrics;
  TimeSeriesSampler sampler;
  sampler.configure(0.5);
  sampler.advance_to(1.0, metrics);  // rows at 0, 0.5, 1.0
  ASSERT_EQ(sampler.size(), 3u);
  sampler.finalize(1.0, metrics);
  EXPECT_EQ(sampler.size(), 3u);
  // finalize is one-shot: later calls must not extend the series.
  sampler.finalize(9.0, metrics);
  EXPECT_EQ(sampler.size(), 3u);
}

TEST(TimeSeriesSampler, ConfigureRearmsAndClears) {
  MetricsRegistry metrics;
  TimeSeriesSampler sampler;
  EXPECT_FALSE(sampler.enabled());
  sampler.advance_to(5.0, metrics);  // disabled: no-op, no rows
  EXPECT_EQ(sampler.size(), 0u);

  sampler.configure(1.0);
  sampler.finalize(2.0, metrics);
  EXPECT_EQ(sampler.size(), 3u);

  sampler.configure(2.0);
  EXPECT_TRUE(sampler.enabled());
  EXPECT_EQ(sampler.size(), 0u);
  sampler.finalize(2.0, metrics);  // re-armed after an earlier finalize
  EXPECT_EQ(sampler.size(), 2u);
}

// ---------------------------------------------------------------------------
// autopipe-ts-v1: writer -> reader round trip
// ---------------------------------------------------------------------------

TEST(TimeSeriesFormat, WriteReadRoundTripWithLateColumnsBackfilledZero) {
  MetricsRegistry metrics;
  TimeSeriesSampler sampler;
  sampler.configure(1.0);
  metrics.set("alpha", 2.5);
  sampler.advance_to(0.0, metrics);
  metrics.add("beta", 7.0);  // appears only after the first row
  metrics.observe("err", 4.0);
  sampler.finalize(1.5, metrics);

  std::ostringstream os;
  sampler.write_text(os);
  std::istringstream is(os.str());
  const TimeSeries ts = analysis::read_timeseries(is);

  EXPECT_EQ(ts.interval, 1.0);
  ASSERT_EQ(ts.rows.size(), 3u);
  ASSERT_FALSE(ts.columns.empty());
  EXPECT_EQ(ts.columns[0], "time");
  // Sorted union of every key that ever appeared: the rolling series
  // expands to .count/.ema/.mean like the flattened registry export.
  const std::size_t alpha = ts.column_index("alpha");
  const std::size_t beta = ts.column_index("beta");
  ASSERT_LT(alpha, ts.columns.size());
  ASSERT_LT(beta, ts.columns.size());
  ASSERT_LT(ts.column_index("err.mean"), ts.columns.size());
  EXPECT_EQ(ts.rows[0][beta], 0.0);  // absent at t=0 -> backfilled 0
  EXPECT_EQ(ts.rows[2][beta], 7.0);
  EXPECT_EQ(ts.rows[2][alpha], 2.5);
  EXPECT_EQ(ts.rows[2][0], 1.5);  // closing row at `now`
}

TEST(TimeSeriesFormat, ReaderRejectsMalformedInput) {
  const auto read = [](const std::string& text) {
    std::istringstream is(text);
    return analysis::read_timeseries(is);
  };
  EXPECT_THROW(read("not-a-timeseries\n"), std::runtime_error);
  EXPECT_THROW(read("autopipe-ts-v1 interval=1 rows=1 columns=2\n"
                    "col time\ncol x\n"
                    "0 1\n"
                    "col y\n"),
               std::runtime_error);  // column declared after data
  EXPECT_THROW(read("autopipe-ts-v1 interval=1 rows=1 columns=2\n"
                    "col time\ncol x\n"
                    "0 1 2\n"),
               std::runtime_error);  // row width mismatch
  EXPECT_THROW(read("autopipe-ts-v1 interval=1 rows=3 columns=2\n"
                    "col time\ncol x\n"
                    "0 1\n"),
               std::runtime_error);  // truncated: fewer rows than declared
  EXPECT_THROW(read("autopipe-ts-v1 interval=1 rows=1 columns=1\n"
                    "col x\n"
                    "0\n"),
               std::runtime_error);  // missing leading time column
}

// ---------------------------------------------------------------------------
// analyze_timeseries: stats, dropped-sample surfacing, anomaly scan
// ---------------------------------------------------------------------------

TimeSeries churny_series() {
  TimeSeries ts;
  ts.interval = 1.0;
  ts.columns = {"time", "arbiter.accepted", "executor.throughput.mean",
                "metrics.dropped_samples"};
  ts.rows = {
      {0.0, 0.0, 100.0, 0.0},
      {1.0, 0.0, 50.0, 0.0},  // 50% drop, no decision activity
      {2.0, 1.0, 20.0, 2.0},  // 60% drop, but the arbiter acted
  };
  return ts;
}

TEST(AnalyzeTimeseries, FlagsSpeedDropsAndChecksDecisionActivity) {
  const TimeSeriesReport report =
      analysis::analyze_timeseries(churny_series(), 0.2);
  EXPECT_EQ(report.rows, 3u);
  EXPECT_EQ(report.duration, 2.0);
  EXPECT_EQ(report.dropped_samples, 2.0);

  ASSERT_EQ(report.anomalies.size(), 2u);
  EXPECT_EQ(report.anomalies[0].time, 1.0);
  EXPECT_EQ(report.anomalies[0].column, "executor.throughput.mean");
  EXPECT_NEAR(report.anomalies[0].drop_frac, 0.5, 1e-12);
  EXPECT_TRUE(report.anomalies[0].no_decision);
  EXPECT_NEAR(report.anomalies[1].drop_frac, 0.6, 1e-12);
  EXPECT_FALSE(report.anomalies[1].no_decision);

  // Raising the threshold above both drops silences the scan.
  EXPECT_TRUE(
      analysis::analyze_timeseries(churny_series(), 0.7).anomalies.empty());
}

TEST(AnalyzeTimeseries, ColumnStatsAndEmaFallback) {
  TimeSeries ts = churny_series();
  ts.columns[2] = "executor.throughput.ema";  // only the EMA form present
  const TimeSeriesReport report = analysis::analyze_timeseries(ts, 0.2);
  ASSERT_EQ(report.anomalies.size(), 2u);
  EXPECT_EQ(report.anomalies[0].column, "executor.throughput.ema");

  ASSERT_EQ(report.columns.size(), 3u);  // "time" excluded
  const auto& thr = report.columns[1];
  EXPECT_EQ(thr.name, "executor.throughput.ema");
  EXPECT_EQ(thr.min, 20.0);
  EXPECT_EQ(thr.max, 100.0);
  EXPECT_NEAR(thr.mean, 170.0 / 3.0, 1e-12);
  EXPECT_EQ(thr.last, 20.0);
}

TEST(AnalyzeTimeseries, FlagsAbortStormsWithoutCommits) {
  TimeSeries ts;
  ts.interval = 1.0;
  ts.columns = {"time", "switch.aborted.transfer", "switch.aborted.prepare",
                "switch.committed"};
  ts.rows = {
      {0.0, 0.0, 0.0, 0.0},
      {1.0, 1.0, 0.0, 0.0},
      {2.0, 2.0, 0.0, 0.0},
      {3.0, 2.0, 1.0, 0.0},  // third abort, still no commit -> storm
      {4.0, 3.0, 1.0, 0.0},  // storm continues but is flagged only once
      {5.0, 3.0, 1.0, 1.0},  // a commit lands; the baseline resets
      {6.0, 4.0, 2.0, 1.0},  // two fresh aborts: below the bar, no flag
  };
  const TimeSeriesReport report = analysis::analyze_timeseries(ts, 0.2);
  ASSERT_EQ(report.anomalies.size(), 1u);
  EXPECT_EQ(report.anomalies[0].kind, "abort_storm");
  EXPECT_EQ(report.anomalies[0].time, 3.0);
  EXPECT_EQ(report.anomalies[0].column, "switch.aborted.*");
  EXPECT_EQ(report.anomalies[0].drop_frac, 3.0);

  const std::string text = analysis::render_timeseries(ts, report, 40);
  EXPECT_NE(text.find("ABORT STORM: 3 switch aborts with no commit"),
            std::string::npos);
  std::ostringstream os;
  analysis::write_timeseries_json(report, os);
  EXPECT_NE(os.str().find("\"kind\": \"abort_storm\""), std::string::npos);

  // Interleaved commits keep resetting the window: no storm.
  ts.rows = {
      {0.0, 0.0, 0.0, 0.0},
      {1.0, 2.0, 0.0, 1.0},
      {2.0, 4.0, 0.0, 2.0},
      {3.0, 6.0, 0.0, 3.0},
  };
  EXPECT_TRUE(analysis::analyze_timeseries(ts, 0.2).anomalies.empty());
}

TEST(AnalyzeTimeseries, RenderAndJsonSurfaceAnomaliesAndDrops) {
  const TimeSeries ts = churny_series();
  const TimeSeriesReport report = analysis::analyze_timeseries(ts, 0.2);
  const std::string text = analysis::render_timeseries(ts, report, 40);
  EXPECT_NE(text.find("WARNING: 2 non-finite"), std::string::npos);
  EXPECT_NE(text.find("NO decision activity"), std::string::npos);
  EXPECT_NE(text.find("decision activity present"), std::string::npos);

  std::ostringstream os;
  analysis::write_timeseries_json(report, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"autopipe-timeseries-report-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"no_decision\": true"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_samples\": 2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Host self-profiler: record, collect, serialize
// ---------------------------------------------------------------------------

std::size_t total_spans(const std::vector<prof::ThreadProfile>& profiles) {
  std::size_t n = 0;
  for (const auto& tp : profiles) n += tp.spans.size() + tp.aggregates.size();
  return n;
}

TEST(Profiler, DisabledRecordsNothing) {
  prof::reset();
  prof::set_enabled(false);
  for (int i = 0; i < 100; ++i) {
    PROF_SPAN("test/disabled");
    PROF_SPAN_AGG("test/disabled_agg");
  }
  EXPECT_EQ(total_spans(prof::collect()), 0u);
}

TEST(Profiler, RecordsNestedSpansAndAggregates) {
  prof::reset();
  prof::set_enabled(true);
  {
    PROF_SPAN("outer/solve");
    { PROF_SPAN("inner/step"); }
    { PROF_SPAN_AGG("agg/tick"); }
    { PROF_SPAN_AGG("agg/tick"); }
  }
  prof::set_enabled(false);

  const auto profiles = prof::collect();
  const prof::ThreadProfile* mine = nullptr;
  for (const auto& tp : profiles)
    if (!tp.spans.empty()) mine = &tp;
  ASSERT_NE(mine, nullptr);
  ASSERT_EQ(mine->spans.size(), 2u);

  // Destructor order: the inner span completes (and records) first.
  const prof::Span& inner = mine->spans[0];
  const prof::Span& outer = mine->spans[1];
  EXPECT_EQ(inner.name, "inner/step");
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(outer.name, "outer/solve");
  EXPECT_EQ(outer.depth, 0u);
  // collect() rebases: the earliest span starts at 0 and nesting holds.
  EXPECT_EQ(outer.start_ns, 0u);
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);

  ASSERT_EQ(mine->aggregates.size(), 1u);
  EXPECT_EQ(mine->aggregates[0].name, "agg/tick");
  EXPECT_EQ(mine->aggregates[0].count, 2u);
}

TEST(Profiler, TextRoundTripIsByteStable) {
  prof::reset();
  prof::set_enabled(true);
  {
    PROF_SPAN("planner/decide_round");
    PROF_SPAN_AGG("predictor/infer");
  }
  prof::set_enabled(false);

  std::ostringstream first;
  prof::write_text(prof::collect(), first);
  std::istringstream is(first.str());
  const auto parsed = prof::read_text(is);
  std::ostringstream second;
  prof::write_text(parsed, second);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_NE(first.str().find("autopipe-prof-v1"), std::string::npos);
  EXPECT_NE(first.str().find("span planner/decide_round"),
            std::string::npos);
  EXPECT_NE(first.str().find("agg predictor/infer"), std::string::npos);
}

TEST(Profiler, ReadTextRejectsBadInput) {
  std::istringstream bad_header("nope\n");
  EXPECT_THROW(prof::read_text(bad_header), std::runtime_error);
  std::istringstream short_line("autopipe-prof-v1\nthread 0\nspan x 1\n");
  EXPECT_THROW(prof::read_text(short_line), std::runtime_error);
}

TEST(Profiler, ResetDropsRecordedSpans) {
  prof::reset();
  prof::set_enabled(true);
  { PROF_SPAN("test/span"); }
  prof::set_enabled(false);
  EXPECT_GT(total_spans(prof::collect()), 0u);
  prof::reset();
  EXPECT_EQ(total_spans(prof::collect()), 0u);
}

// ---------------------------------------------------------------------------
// Profile report: exclusive time, categories, flamegraph folding
// ---------------------------------------------------------------------------

prof::ThreadProfile nested_profile() {
  prof::ThreadProfile tp;
  // cat/root [0,100) containing cat/child [10,40) and other/leaf [50,70).
  tp.spans.push_back({"cat/root", 0, 100, 0});
  tp.spans.push_back({"cat/child", 10, 30, 1});
  tp.spans.push_back({"other/leaf", 50, 20, 1});
  return tp;
}

TEST(ProfileReport, ExclusiveTimeSubtractsNestedSpans) {
  const ProfileReport report =
      analysis::build_profile_report({nested_profile()});
  EXPECT_EQ(report.threads, 1u);
  EXPECT_EQ(report.total_ns, 100u);  // only the depth-0 span

  ASSERT_EQ(report.spans.size(), 3u);  // inclusive desc
  EXPECT_EQ(report.spans[0].name, "cat/root");
  EXPECT_EQ(report.spans[0].inclusive_ns, 100u);
  EXPECT_EQ(report.spans[0].exclusive_ns, 50u);  // 100 - 30 - 20
  EXPECT_EQ(report.spans[1].name, "cat/child");
  EXPECT_EQ(report.spans[1].exclusive_ns, 30u);
  EXPECT_EQ(report.spans[2].name, "other/leaf");
  EXPECT_EQ(report.spans[2].exclusive_ns, 20u);

  // Category inclusive counts only category roots: cat/child sits under
  // cat/root, so "cat" is 100 inclusive (not 130), 80 exclusive.
  ASSERT_EQ(report.categories.size(), 2u);  // exclusive desc
  EXPECT_EQ(report.categories[0].name, "cat");
  EXPECT_EQ(report.categories[0].inclusive_ns, 100u);
  EXPECT_EQ(report.categories[0].exclusive_ns, 80u);
  EXPECT_EQ(report.categories[1].name, "other");
  EXPECT_EQ(report.categories[1].inclusive_ns, 20u);
  EXPECT_EQ(report.categories[1].exclusive_ns, 20u);
}

TEST(ProfileReport, AggregatesCountTowardTotalsAndNsPerCall) {
  prof::ThreadProfile tp;
  tp.aggregates.push_back({"sim/queue_pop", 40, 4});
  const ProfileReport report = analysis::build_profile_report({tp});
  ASSERT_EQ(report.spans.size(), 1u);
  EXPECT_TRUE(report.spans[0].aggregate_only);
  EXPECT_EQ(report.spans[0].count, 4u);
  EXPECT_EQ(report.spans[0].inclusive_ns, 40u);
  EXPECT_EQ(report.total_ns, 40u);
  EXPECT_EQ(analysis::span_ns_per_call(report, "sim/queue_pop"), 10.0);
  EXPECT_EQ(analysis::span_ns_per_call(report, "absent/name"), 0.0);
}

TEST(ProfileReport, CollapsedStacksFoldExclusiveTimeAlongThePath) {
  std::ostringstream os;
  analysis::write_collapsed_stacks({nested_profile()}, os);
  EXPECT_EQ(os.str(),
            "cat/root 50\n"
            "cat/root;cat/child 30\n"
            "cat/root;other/leaf 20\n");
}

TEST(ProfileReport, RenderAndJsonCarrySchemaAndTables) {
  const ProfileReport report =
      analysis::build_profile_report({nested_profile()});
  std::ostringstream json;
  analysis::write_profile_json(report, json);
  EXPECT_NE(json.str().find("\"schema\": \"autopipe-profile-report-v1\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"name\": \"cat/root\""), std::string::npos);

  std::ostringstream text;
  analysis::render_profile(report, {nested_profile()}, 2, text);
  EXPECT_NE(text.str().find("host profile: 1 thread(s)"), std::string::npos);
  EXPECT_NE(text.str().find("cat/root"), std::string::npos);
  EXPECT_NE(text.str().find("top 2 individual spans"), std::string::npos);
}

TEST(ProfileReport, TopSpansOrdersByDuration) {
  const auto top = analysis::top_spans({nested_profile()}, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].name, "cat/root");
  EXPECT_EQ(top[1].name, "cat/child");
}

// ---------------------------------------------------------------------------
// Simulator integration: sampling is pure observation
// ---------------------------------------------------------------------------

TEST(SimulatorTimeseries, SamplingNeverPerturbsTheEventSequence) {
  const auto run = [](bool sample) {
    sim::Simulator simulator;
    if (sample) simulator.timeseries().configure(0.1);
    for (int i = 1; i <= 7; ++i) {
      simulator.at(0.07 * i, [&simulator, i] {
        simulator.metrics().add("test.events");
        simulator.metrics().set("test.last", static_cast<double>(i));
      });
    }
    simulator.run();
    return std::pair<std::uint64_t, std::uint64_t>(
        simulator.events_processed(), simulator.events_scheduled());
  };
  EXPECT_EQ(run(false), run(true));

  sim::Simulator simulator;
  simulator.timeseries().configure(0.1);
  simulator.at(0.05, [&simulator] { simulator.metrics().add("test.events"); });
  simulator.at(0.25, [&simulator] { simulator.metrics().add("test.events"); });
  simulator.run_until(0.4);
  simulator.timeseries().finalize(simulator.now(), simulator.metrics());

  const auto& samples = simulator.timeseries().samples();
  ASSERT_EQ(samples.size(), 5u);  // 0, 0.1, 0.2, 0.3, 0.4
  EXPECT_EQ(samples[0].values.count("test.events"), 0u);
  EXPECT_EQ(samples[1].values.at("test.events"), 1.0);  // t=0.1 saw t=0.05
  EXPECT_EQ(samples[2].values.at("test.events"), 1.0);
  EXPECT_EQ(samples[3].values.at("test.events"), 2.0);  // t=0.3 saw t=0.25
  EXPECT_EQ(samples.back().time, 0.4);
}

// ---------------------------------------------------------------------------
// Determinism across --jobs: the sweep half of the parity contract
// ---------------------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing artifact " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<std::string> timeseries_at_jobs(
    const std::vector<sweep::ScenarioSpec>& scenarios, std::size_t jobs,
    const std::string& directory) {
  ::mkdir(directory.c_str(), 0755);
  sweep::ArtifactOptions artifacts;
  artifacts.directory = directory;
  artifacts.timeseries_interval = 0.05;
  std::vector<sweep::ScenarioResult> results(scenarios.size());
  sweep::run_indexed(scenarios.size(), jobs, [&](std::size_t i) {
    results[i] = sweep::run_scenario(scenarios[i], artifacts);
  });
  std::vector<std::string> series;
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.timeseries_file.empty());
    series.push_back(slurp(r.timeseries_file));
  }
  return series;
}

TEST(TelemetryParity, TimeseriesBytesIdenticalAcrossThreadCounts) {
  // Churny autopipe scenarios at a fine cadence: any cross-thread leak into
  // the metrics registry or the sampler would shift a row. The heap/wheel
  // half of this contract runs in parity_test (50 seeds, timeseries_text
  // is part of parity::ScenarioResult).
  const sweep::SweepSpec spec = sweep::parse_sweep_spec(
      "model = alexnet; servers = 3; gpus-per-server = 1; churn = true;"
      "seed = 1..6; iterations = 12; warmup = 3");
  const std::vector<sweep::ScenarioSpec> scenarios = spec.expand();
  ASSERT_EQ(scenarios.size(), 6u);

  const std::string base = ::testing::TempDir() + "telemetry_parity";
  const auto serial = timeseries_at_jobs(scenarios, 1, base + ".j1");
  const auto threaded = timeseries_at_jobs(scenarios, 8, base + ".j8");
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_FALSE(serial[i].empty());
    EXPECT_NE(serial[i].find("autopipe-ts-v1"), std::string::npos);
    EXPECT_EQ(serial[i], threaded[i])
        << scenarios[i].label << " time-series diverged across --jobs";
  }
}

}  // namespace
}  // namespace autopipe
