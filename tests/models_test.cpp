// Model-zoo tests: the per-layer quantities must match the published
// architectures (parameter counts are the strongest checksum available).
#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/units.hpp"
#include "models/model.hpp"
#include "models/zoo.hpp"

namespace autopipe::models {
namespace {

double total_params(const ModelSpec& m) {
  return m.total_param_bytes() / 4.0;  // fp32
}

TEST(Zoo, Vgg16ParameterCount) {
  const ModelSpec m = vgg16();
  // Published: 138.36M parameters.
  EXPECT_NEAR(total_params(m) / 1e6, 138.36, 1.0);
  EXPECT_EQ(m.default_batch_size(), 64u);
  EXPECT_EQ(m.num_layers(), 21u);  // 13 conv + 5 pool + 3 fc
}

TEST(Zoo, AlexNetParameterCount) {
  const ModelSpec m = alexnet();
  // Published single-tower AlexNet: ≈61M parameters.
  EXPECT_NEAR(total_params(m) / 1e6, 61.0, 3.0);
  EXPECT_EQ(m.default_batch_size(), 256u);
}

TEST(Zoo, ResNet50ParameterCount) {
  const ModelSpec m = resnet50();
  // Published: 25.5M; we omit projection shortcuts (~1.5M) and batchnorm.
  EXPECT_NEAR(total_params(m) / 1e6, 24.0, 2.5);
  EXPECT_EQ(m.default_batch_size(), 128u);
  // One unit per conv: ResNet50 exposes the most partition points.
  EXPECT_GT(m.num_layers(), vgg16().num_layers());
}

TEST(Zoo, Bert48ParameterCount) {
  const ModelSpec m = bert48();
  // 48 layers x ~12.6M + 31M embeddings ≈ 635M.
  EXPECT_NEAR(total_params(m) / 1e6, 635.0, 30.0);
  EXPECT_EQ(m.num_layers(), 50u);  // embedding + 48 blocks + pooler
}

TEST(Zoo, Vgg16FlopsPerSample) {
  // Published ≈ 15.5 GMACs forward ≈ 31 GFLOPs with the 2*MACs convention.
  const ModelSpec m = vgg16();
  double fwd = 0.0;
  for (std::size_t l = 0; l < m.num_layers(); ++l) fwd += m.fwd_flops(l, 1);
  EXPECT_NEAR(fwd / 1e9, 31.0, 3.0);
}

TEST(Zoo, ResNetFlopsPerSample) {
  // Published ≈ 4.1 GMACs forward ≈ 8.2 GFLOPs.
  const ModelSpec m = resnet50();
  double fwd = 0.0;
  for (std::size_t l = 0; l < m.num_layers(); ++l) fwd += m.fwd_flops(l, 1);
  EXPECT_NEAR(fwd / 1e9, 8.0, 1.5);
}

TEST(Zoo, ImageModelsListAndLookup) {
  const auto list = image_models();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].name(), "resnet50");
  EXPECT_EQ(model_by_name("vgg16").name(), "vgg16");
  EXPECT_THROW(model_by_name("lenet"), contract_error);
}

TEST(ModelSpec, GradientBytesMirrorUpstreamActivation) {
  const ModelSpec m = vgg16();
  for (std::size_t l = 1; l < m.num_layers(); ++l) {
    EXPECT_DOUBLE_EQ(m.gradient_bytes(l, 64), m.activation_bytes(l - 1, 64));
  }
  EXPECT_DOUBLE_EQ(m.gradient_bytes(0, 64), 0.0);
}

TEST(ModelSpec, QuantitiesScaleWithBatch) {
  const ModelSpec m = alexnet();
  EXPECT_DOUBLE_EQ(m.activation_bytes(0, 64) * 2, m.activation_bytes(0, 128));
  EXPECT_DOUBLE_EQ(m.fwd_flops(0, 64) * 2, m.fwd_flops(0, 128));
}

TEST(ModelSpec, BackwardCostsTwiceForward) {
  const ModelSpec m = vgg16();
  EXPECT_DOUBLE_EQ(m.bwd_flops(0, 1), 2.0 * m.fwd_flops(0, 1));
}

TEST(ModelSpec, RangeAggregatesMatchLoop) {
  const ModelSpec m = resnet50();
  double fwd = 0.0, params = 0.0;
  for (std::size_t l = 3; l <= 9; ++l) {
    fwd += m.fwd_flops(l, 32);
    params += m.param_bytes(l);
  }
  EXPECT_DOUBLE_EQ(m.range_fwd_flops(3, 9, 32), fwd);
  EXPECT_DOUBLE_EQ(m.range_param_bytes(3, 9), params);
}

TEST(ModelSpec, InvalidAccessThrows) {
  const ModelSpec m = alexnet();
  EXPECT_THROW(m.layer(m.num_layers()), contract_error);
  EXPECT_THROW(m.activation_bytes(m.num_layers(), 1), contract_error);
  EXPECT_THROW(m.range_fwd_flops(5, 3, 1), contract_error);
}

TEST(ConvNetBuilder, TracksSpatialDims) {
  ConvNetBuilder b("tiny", 3, 32, 32);
  b.conv("c1", 8, 3);  // same padding: 32x32
  EXPECT_EQ(b.height(), 32u);
  b.maxpool("p1", 2, 2);  // 16x16
  EXPECT_EQ(b.height(), 16u);
  EXPECT_EQ(b.channels(), 8u);
  b.global_avgpool("gap");
  EXPECT_EQ(b.height(), 1u);
  b.fc("fc", 10);
  const ModelSpec m = std::move(b).build(4);
  EXPECT_EQ(m.num_layers(), 4u);
  // fc params: 8*10 weights + 10 biases.
  EXPECT_DOUBLE_EQ(m.param_bytes(3), (8 * 10 + 10) * 4.0);
}

TEST(ConvNetBuilder, AlexNetFirstLayerShape) {
  // conv1: 11x11/4 pad 2 on 224 -> (224+4-11)/4+1 = 55.
  ConvNetBuilder b("a", 3, 224, 224);
  b.conv("conv1", 96, 11, 4, 2);
  EXPECT_EQ(b.height(), 55u);
  EXPECT_EQ(b.width(), 55u);
}

TEST(ConvNetBuilder, PoolLayersHaveNoParams) {
  const ModelSpec m = vgg16();
  for (std::size_t l = 0; l < m.num_layers(); ++l) {
    if (m.layer(l).name.rfind("pool", 0) == 0)
      EXPECT_DOUBLE_EQ(m.param_bytes(l), 0.0);
  }
}

TEST(ModelSpec, Bert48BlocksAreUniform) {
  const ModelSpec m = bert48();
  // All 48 transformer blocks identical — the "evenly split structurally
  // uniform model" case of Megatron/Chimera.
  for (std::size_t l = 2; l < 49; ++l) {
    EXPECT_DOUBLE_EQ(m.param_bytes(l), m.param_bytes(1));
    EXPECT_DOUBLE_EQ(m.fwd_flops(l, 1), m.fwd_flops(1, 1));
  }
}


TEST(Zoo, ResNet18ParameterCount) {
  const ModelSpec m = resnet18();
  // Published: 11.7M (we omit downsample shortcuts and batchnorm).
  EXPECT_NEAR(m.total_param_bytes() / 4.0 / 1e6, 11.2, 1.2);
  EXPECT_LT(m.num_layers(), resnet50().num_layers());
}

TEST(Zoo, Gpt2SmallParameterCount) {
  const ModelSpec m = gpt2_small();
  // Published: 124M parameters (tied lm_head).
  EXPECT_NEAR(m.total_param_bytes() / 4.0 / 1e6, 124.0, 10.0);
  EXPECT_EQ(m.num_layers(), 14u);  // embedding + 12 blocks + lm_head
  EXPECT_EQ(model_by_name("gpt2").name(), "gpt2-small");
}

}  // namespace
}  // namespace autopipe::models
