// The analysis tier (ctest label `analysis`): interval algebra, trace
// parsing round-trips, and the analyzer itself checked against hand-built
// event sequences whose utilization, bubble classes, critical path and
// switch post-mortems are known exactly — plus a golden `summary --json`
// over the checked-in bandwidth-drop trace and the partition invariant
// (busy + every idle class == wall clock) asserted on it.
//
// Golden regeneration: AUTOPIPE_REGEN_GOLDEN=1 rewrites the summary file,
// same as the trace golden in trace_test.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/bubbles.hpp"
#include "analysis/critical_path.hpp"
#include "analysis/gantt.hpp"
#include "analysis/interval.hpp"
#include "analysis/json.hpp"
#include "analysis/report.hpp"
#include "analysis/switches.hpp"
#include "analysis/trace_reader.hpp"
#include "analysis/trace_view.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/trace.hpp"

namespace autopipe::analysis {
namespace {

using trace::Category;
using trace::TraceRecorder;
using trace::arg;
using trace::kPidControl;
using trace::kPidNetwork;

// Direct Event builders: the Event struct is available even with
// AUTOPIPE_TRACING=OFF (when the recorder is an inert stub), so every
// analyzer test runs in both configurations.

trace::Event span(Category category, std::string name, double begin,
                  double end, int pid, int tid, trace::Args args = {}) {
  trace::Event ev;
  ev.category = category;
  ev.phase = 'X';
  ev.name = std::move(name);
  ev.ts = begin;
  ev.dur = end - begin;
  ev.pid = pid;
  ev.tid = tid;
  ev.args = std::move(args);
  return ev;
}

trace::Event instant(Category category, std::string name, double ts, int pid,
                     int tid, trace::Args args = {}) {
  trace::Event ev;
  ev.category = category;
  ev.phase = 'i';
  ev.name = std::move(name);
  ev.ts = ts;
  ev.pid = pid;
  ev.tid = tid;
  ev.args = std::move(args);
  return ev;
}

trace::Event counter(Category category, std::string name, double ts,
                     double value) {
  trace::Event ev;
  ev.category = category;
  ev.phase = 'C';
  ev.name = std::move(name);
  ev.ts = ts;
  ev.value = value;
  ev.pid = kPidNetwork;
  return ev;
}

trace::Event flow_edge(char phase, std::uint64_t id, double ts,
                       trace::Args args = {}) {
  trace::Event ev;
  ev.category = Category::kComm;
  ev.phase = phase;
  ev.name = "flow";
  ev.id = id;
  ev.ts = ts;
  ev.pid = kPidNetwork;
  ev.args = std::move(args);
  return ev;
}

// ---------------------------------------------------------------------------
// Interval algebra
// ---------------------------------------------------------------------------

TEST(IntervalSet, AddMergesOverlappingAndTouching) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  s.add(2.0, 3.0);
  s.add(0.0, 1.0);
  s.add(1.0, 2.0);  // touches both: everything merges
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_DOUBLE_EQ(s.total(), 3.0);
  EXPECT_DOUBLE_EQ(s.front_begin(), 0.0);
  EXPECT_DOUBLE_EQ(s.back_end(), 3.0);

  s.add(5.0, 5.0);  // empty input ignored
  s.add(7.0, 6.0);  // inverted input ignored
  EXPECT_EQ(s.intervals().size(), 1u);
}

TEST(IntervalSet, SetOperations) {
  IntervalSet a;
  a.add(0.0, 4.0);
  a.add(6.0, 8.0);
  IntervalSet b;
  b.add(3.0, 7.0);

  const IntervalSet u = a.unite(b);
  EXPECT_DOUBLE_EQ(u.total(), 8.0);
  ASSERT_EQ(u.intervals().size(), 1u);

  const IntervalSet i = a.intersect(b);
  EXPECT_DOUBLE_EQ(i.total(), 2.0);  // [3,4) + [6,7)
  ASSERT_EQ(i.intervals().size(), 2u);

  const IntervalSet d = a.subtract(b);
  EXPECT_DOUBLE_EQ(d.total(), 4.0);  // [0,3) + [7,8)
  EXPECT_DOUBLE_EQ(d.front_begin(), 0.0);
  EXPECT_DOUBLE_EQ(d.back_end(), 8.0);

  // subtract + intersect partition the original measure.
  EXPECT_NEAR(d.total() + i.total(), a.total(), 1e-12);
}

TEST(IntervalSet, ComplementClampOverlap) {
  IntervalSet s;
  s.add(1.0, 2.0);
  s.add(4.0, 5.0);

  const IntervalSet c = s.complement(0.0, 6.0);
  EXPECT_DOUBLE_EQ(c.total(), 4.0);  // [0,1) + [2,4) + [5,6)
  ASSERT_EQ(c.intervals().size(), 3u);
  EXPECT_NEAR(c.total() + s.total(), 6.0, 1e-12);

  const IntervalSet k = s.clamp(1.5, 4.5);
  EXPECT_DOUBLE_EQ(k.total(), 1.0);  // [1.5,2) + [4,4.5)

  EXPECT_DOUBLE_EQ(s.overlap(1.5, 4.5), 1.0);
  EXPECT_DOUBLE_EQ(s.overlap(2.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(s.overlap(0.0, 10.0), s.total());
}

// ---------------------------------------------------------------------------
// Histogram percentiles
// ---------------------------------------------------------------------------

TEST(Histogram, PercentilesMatchTheFreeFunction) {
  Histogram h;
  std::vector<double> xs;
  for (int i = 100; i >= 1; --i) {
    h.add(static_cast<double>(i));
    xs.push_back(static_cast<double>(i));
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.p50(), percentile(xs, 50.0));
  EXPECT_DOUBLE_EQ(h.p95(), percentile(xs, 95.0));
  EXPECT_DOUBLE_EQ(h.p99(), percentile(xs, 99.0));

  // Adding after a percentile query re-sorts correctly.
  h.add(1000.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 1000.0);

  const Histogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 101u);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);

  h.reset();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.summary().count, 0u);
}

// ---------------------------------------------------------------------------
// Text-format round trip (needs a live recorder to produce the text)
// ---------------------------------------------------------------------------

#if AUTOPIPE_TRACING

TEST(TraceReader, RoundTripsEveryPhase) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.complete(Category::kCompute, "fp", 0.25, 0.75, 2, 1,
               {arg("batch", 3), arg("micro", 0)});
  rec.instant(Category::kMark, "iteration", 1.0, kPidControl, 0,
              {arg("n", 1)});
  rec.counter(Category::kResource, "cap:server0.nic.tx", 0.0, 1.25e9);
  rec.async_begin(Category::kComm, "flow", 42, 0.25,
                  {arg("bytes", 100.0), arg("path", "server0.nic.tx")});
  rec.async_end(Category::kComm, "flow", 42, 0.5);

  std::ostringstream os;
  rec.write_text(os);
  std::istringstream is(os.str());
  const std::vector<trace::Event> parsed = parse_text(is);
  ASSERT_EQ(parsed.size(), rec.events().size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    const trace::Event& want = rec.events()[i];
    const trace::Event& got = parsed[i];
    EXPECT_EQ(got.category, want.category) << "event " << i;
    EXPECT_EQ(got.phase, want.phase);
    EXPECT_EQ(got.name, want.name);
    EXPECT_EQ(got.pid, want.pid);
    EXPECT_EQ(got.tid, want.tid);
    EXPECT_EQ(got.id, want.id);
    EXPECT_NEAR(got.ts, want.ts, 1e-12);
    EXPECT_NEAR(got.dur, want.dur, 1e-12);
    EXPECT_NEAR(got.value, want.value, 1e-3);
    ASSERT_EQ(got.args.size(), want.args.size());
    for (std::size_t a = 0; a < got.args.size(); ++a) {
      EXPECT_EQ(got.args[a].key, want.args[a].key);
      EXPECT_EQ(got.args[a].value, want.args[a].value);
    }
  }
}

TEST(TraceReader, ArgValuesWithSpacesSurvive) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.instant(Category::kResource, "resource_event", 0.5, 1002, 0,
              {arg("what", "set all NIC bandwidth"), arg("after", "done")});
  std::ostringstream os;
  rec.write_text(os);
  std::istringstream is(os.str());
  const auto parsed = parse_text(is);
  ASSERT_EQ(parsed.size(), 1u);
  ASSERT_NE(parsed[0].find_arg("what"), nullptr);
  EXPECT_EQ(*parsed[0].find_arg("what"), "set all NIC bandwidth");
  ASSERT_NE(parsed[0].find_arg("after"), nullptr);
  EXPECT_EQ(*parsed[0].find_arg("after"), "done");
}

#endif  // AUTOPIPE_TRACING

TEST(TraceReader, MalformedLinesThrow) {
  {
    std::istringstream is("0.5 compute X fp pid=0\n");  // missing tid
    EXPECT_THROW(parse_text(is), contract_error);
  }
  {
    std::istringstream is("not-a-number compute X fp pid=0 tid=0\n");
    EXPECT_THROW(parse_text(is), contract_error);
  }
  {
    // An X span that never states its dur lies about its own shape.
    std::istringstream is("0.5 compute X fp pid=0 tid=0\n");
    EXPECT_THROW(parse_text(is), contract_error);
  }
  EXPECT_THROW(parse_text_file("/nonexistent/run.trace"), contract_error);
}

TEST(TraceReader, UnknownCategorySkipsAndCounts) {
  // A newer writer's category is healed around, not fatal: the line is
  // skipped, the damage is counted, and everything else still parses.
  std::istringstream is(
      "0.5 nonsense X fp pid=0 tid=0 dur=1\n"
      "0.5 compute X fp pid=0 tid=0 dur=1.000000000\n");
  ReadStats stats;
  const auto parsed = parse_text(is, &stats);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].name, "fp");
  EXPECT_EQ(stats.skipped_lines, 1u);
  EXPECT_EQ(stats.events, 1u);
  EXPECT_FALSE(stats.clean());
}

// ---------------------------------------------------------------------------
// A hand-built two-worker run with exactly known answers
// ---------------------------------------------------------------------------

/// w0 computes [0,1) and [5,6); w1 computes [2,4). server0's NIC is
/// saturated over [2,4). One act transfer [1,2) (w0 -> w1) rides flow 1,
/// whose path names the server NICs. Iteration marks at 6 and 10 pin the
/// wall clock to 10.
std::vector<trace::Event> known_run() {
  return {
      span(Category::kCompute, "fp", 0.0, 1.0, 0, 0, {arg("batch", 0)}),
      span(Category::kCompute, "bp", 5.0, 6.0, 0, 0, {arg("batch", 0)}),
      span(Category::kCompute, "fp", 2.0, 3.0, 1, 1, {arg("batch", 0)}),
      span(Category::kCompute, "bp", 3.0, 4.0, 1, 1, {arg("batch", 0)}),
      span(Category::kComm, "act", 1.0, 2.0, kPidNetwork, 1,
           {arg("src", 0), arg("dst", 1), arg("bytes", 100.0)}),
      flow_edge('b', 1, 1.0,
                {arg("bytes", 100.0),
                 arg("path", "server0.nic.tx,server1.nic.rx")}),
      flow_edge('e', 1, 2.0),
      counter(Category::kResource, "cap:server0.nic.tx", 0.0, 1000.0),
      counter(Category::kResource, "load:server0.nic.tx", 2.0, 1000.0),
      counter(Category::kResource, "load:server0.nic.tx", 4.0, 0.0),
      instant(Category::kMark, "iteration", 6.0, kPidControl, 0,
              {arg("n", 0)}),
      instant(Category::kMark, "iteration", 10.0, kPidControl, 0,
              {arg("n", 1)}),
  };
}

TEST(TraceView, IndexesTheKnownRun) {
  const TraceView view(known_run());

  EXPECT_DOUBLE_EQ(view.wall_clock(), 10.0);
  ASSERT_EQ(view.workers().size(), 2u);
  EXPECT_DOUBLE_EQ(view.compute_busy(0).total(), 2.0);
  EXPECT_DOUBLE_EQ(view.compute_busy(1).total(), 2.0);
  EXPECT_DOUBLE_EQ(view.fp_busy(0).total(), 1.0);
  EXPECT_DOUBLE_EQ(view.bp_busy(0).total(), 1.0);
  // The act transfer marks both endpoints comm-busy.
  EXPECT_DOUBLE_EQ(view.comm_busy(0).total(), 1.0);
  EXPECT_DOUBLE_EQ(view.comm_busy(1).total(), 1.0);

  ASSERT_EQ(view.flows().size(), 1u);
  EXPECT_DOUBLE_EQ(view.flows()[0].bytes, 100.0);
  EXPECT_FALSE(view.flows()[0].cancelled);

  EXPECT_EQ(view.iteration_marks().size(), 2u);
  EXPECT_TRUE(view.switch_spans().empty());

  // Saturation reconstructed from the cap/load counters.
  const IntervalSet& sat = view.resource_saturated("server0.nic.tx");
  EXPECT_DOUBLE_EQ(sat.total(), 2.0);
  EXPECT_DOUBLE_EQ(sat.front_begin(), 2.0);

  // Servers inferred from the transfer<->flow correlation.
  EXPECT_EQ(view.server_of(0), 0);
  EXPECT_EQ(view.server_of(1), 1);
  EXPECT_DOUBLE_EQ(view.nic_saturated(0).total(), 2.0);
  EXPECT_DOUBLE_EQ(view.nic_saturated(1).total(), 0.0);
}

TEST(Bubbles, ClassifiesTheKnownRunExactly) {
  const TraceView view(known_run());
  const BubbleReport report = attribute_bubbles(view);
  ASSERT_EQ(report.workers.size(), 2u);

  auto cls = [](const WorkerBubbles& w, BubbleClass c) {
    return w.seconds[static_cast<std::size_t>(c)];
  };

  // w0: busy [0,1)+[5,6); saturated-NIC idle [2,4); the gaps [1,2) and
  // [4,5) both end at its bp span -> downstream; [6,10) is the tail.
  const WorkerBubbles& w0 = report.workers[0];
  EXPECT_EQ(w0.worker, 0);
  EXPECT_DOUBLE_EQ(w0.busy_seconds, 2.0);
  EXPECT_DOUBLE_EQ(cls(w0, BubbleClass::kStartupFill), 0.0);
  EXPECT_DOUBLE_EQ(cls(w0, BubbleClass::kReconfigDrain), 0.0);
  EXPECT_DOUBLE_EQ(cls(w0, BubbleClass::kNetContention), 2.0);
  EXPECT_DOUBLE_EQ(cls(w0, BubbleClass::kUpstreamStall), 0.0);
  EXPECT_DOUBLE_EQ(cls(w0, BubbleClass::kDownstreamStall), 2.0);
  EXPECT_DOUBLE_EQ(cls(w0, BubbleClass::kDrainTail), 4.0);

  // w1: fill until its first fp at 2, tail after its bp ends at 4; its
  // server's NIC was never saturated.
  const WorkerBubbles& w1 = report.workers[1];
  EXPECT_DOUBLE_EQ(w1.busy_seconds, 2.0);
  EXPECT_DOUBLE_EQ(cls(w1, BubbleClass::kStartupFill), 2.0);
  EXPECT_DOUBLE_EQ(cls(w1, BubbleClass::kNetContention), 0.0);
  EXPECT_DOUBLE_EQ(cls(w1, BubbleClass::kDrainTail), 6.0);

  // The partition invariant, exactly.
  for (const WorkerBubbles& w : report.workers) {
    EXPECT_NEAR(w.busy_seconds + w.idle_seconds(), view.wall_clock(), 1e-9);
  }
}

TEST(Bubbles, WorkerWithNoComputeIsAllStartupFill) {
  const TraceView view({
      span(Category::kCompute, "fp", 0.0, 1.0, 0, 0, {arg("batch", 0)}),
      // w1 only ever communicates.
      span(Category::kComm, "act", 1.0, 2.0, kPidNetwork, 1,
           {arg("src", 0), arg("dst", 1), arg("bytes", 8.0)}),
  });
  const BubbleReport report = attribute_bubbles(view);
  ASSERT_EQ(report.workers.size(), 2u);
  const WorkerBubbles& w1 = report.workers[1];
  EXPECT_DOUBLE_EQ(w1.busy_seconds, 0.0);
  EXPECT_DOUBLE_EQ(
      w1.seconds[static_cast<std::size_t>(BubbleClass::kStartupFill)],
      view.wall_clock());
  EXPECT_NEAR(w1.idle_seconds(), view.wall_clock(), 1e-9);
}

TEST(CriticalPath, RecoversTheDependencyChain) {
  // fp on w0 -> activation transfer -> fp on w1, perfectly abutting,
  // plus a decoy on w0 that also ends at 2.0 but feeds nothing.
  const TraceView view({
      span(Category::kCompute, "fp", 0.0, 1.0, 0, 0, {arg("batch", 0)}),
      span(Category::kComm, "act", 1.0, 2.0, kPidNetwork, 1,
           {arg("src", 0), arg("dst", 1), arg("bytes", 64.0),
            arg("batch", 0)}),
      span(Category::kCompute, "fp", 2.0, 3.0, 1, 1, {arg("batch", 0)}),
      span(Category::kCompute, "fp", 1.5, 2.0, 0, 0, {arg("batch", 1)}),
  });
  const CriticalPath path = extract_critical_path(view);

  ASSERT_EQ(path.segments.size(), 3u);
  EXPECT_EQ(path.segments[0].key, "compute:fp:stage0@w0");
  EXPECT_EQ(path.segments[1].key, "comm:act:0->1");
  EXPECT_EQ(path.segments[2].key, "compute:fp:stage1@w1");
  EXPECT_DOUBLE_EQ(path.span_seconds, 3.0);
  EXPECT_DOUBLE_EQ(path.wait_seconds, 0.0);

  double share = 0.0;
  for (const PathEntry& e : path.entries) share += e.share;
  EXPECT_NEAR(share, 1.0, 1e-9);
}

TEST(CriticalPath, InsertsWaitSegmentsAcrossGaps) {
  // Nothing abuts: [1, 2.5) is dead time even on the critical path.
  const TraceView view({
      span(Category::kCompute, "fp", 0.0, 1.0, 0, 0, {arg("batch", 0)}),
      span(Category::kCompute, "fp", 2.5, 3.0, 1, 1, {arg("batch", 0)}),
  });
  const CriticalPath path = extract_critical_path(view);

  ASSERT_EQ(path.segments.size(), 3u);
  EXPECT_EQ(path.segments[1].key, "wait");
  EXPECT_DOUBLE_EQ(path.wait_seconds, 1.5);
  EXPECT_DOUBLE_EQ(path.span_seconds, 1.5);
}

TEST(Switches, PostMortemArithmetic) {
  // Steady 1.0 s/iter before; the switch [3.0, 4.5) completes no
  // iterations; afterwards the run settles at 0.5 s/iter.
  std::vector<trace::Event> events;
  for (int n = 1; n <= 3; ++n) {
    events.push_back(instant(Category::kMark, "iteration",
                             static_cast<double>(n), kPidControl, 0,
                             {arg("n", n)}));
  }
  events.push_back(span(Category::kSwitch, "switch", 3.0, 4.5, kPidControl, 0,
                        {arg("mode", "stw")}));
  events.push_back(instant(Category::kSwitch, "migration_begin", 3.5,
                           kPidControl, 0,
                           {arg("pairs", 2), arg("bytes", 1000.0)}));
  for (int n = 0; n < 3; ++n) {
    events.push_back(instant(Category::kMark, "iteration", 5.0 + 0.5 * n,
                             kPidControl, 0, {arg("n", 4 + n)}));
  }

  const TraceView view(std::move(events));
  const auto post = switch_post_mortems(view);
  ASSERT_EQ(post.size(), 1u);
  const SwitchPostMortem& pm = post[0];
  EXPECT_EQ(pm.mode, "stw");
  EXPECT_DOUBLE_EQ(pm.request_ts, 3.0);
  EXPECT_DOUBLE_EQ(pm.duration, 1.5);
  EXPECT_DOUBLE_EQ(pm.migration_bytes, 1000.0);
  EXPECT_EQ(pm.migration_pairs, 2u);
  EXPECT_EQ(pm.iterations_during, 0u);
  EXPECT_DOUBLE_EQ(pm.period_before, 1.0);
  EXPECT_DOUBLE_EQ(pm.period_after, 0.5);
  EXPECT_NEAR(pm.speedup_pct, 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(pm.stall_seconds, 1.5);
  // 1.5 s stall won back at 0.5 s/iteration gain.
  EXPECT_DOUBLE_EQ(pm.payback_iterations, 3.0);
}

TEST(Switches, AbortedAttemptsGetPostMortemsToo) {
  // One aborted attempt [2.0, 2.8) that rolled back mid-transfer, then a
  // committed retry [3.0, 3.5); both must appear, in time order.
  std::vector<trace::Event> events;
  for (int n = 1; n <= 2; ++n) {
    events.push_back(instant(Category::kMark, "iteration",
                             static_cast<double>(n), kPidControl, 0,
                             {arg("n", n)}));
  }
  events.push_back(span(Category::kSwitch, "switch_aborted", 2.0, 2.8,
                        kPidControl, 0,
                        {arg("mode", "fine"), arg("phase", "transfer"),
                         arg("reason", "worker_loss"), arg("id", 1)}));
  events.push_back(instant(Category::kSwitch, "switch_prepare", 2.0,
                           kPidControl, 0,
                           {arg("pairs", 3), arg("bytes", 500.0)}));
  events.push_back(span(Category::kSwitch, "switch", 3.0, 3.5, kPidControl,
                        0, {arg("mode", "fine"), arg("id", 2)}));
  events.push_back(instant(Category::kSwitch, "switch_prepare", 3.0,
                           kPidControl, 0,
                           {arg("pairs", 3), arg("bytes", 500.0)}));
  for (int n = 0; n < 2; ++n) {
    events.push_back(instant(Category::kMark, "iteration", 4.0 + n,
                             kPidControl, 0, {arg("n", 3 + n)}));
  }

  const TraceView view(std::move(events));
  const auto post = switch_post_mortems(view);
  ASSERT_EQ(post.size(), 2u);

  const SwitchPostMortem& aborted = post[0];
  EXPECT_EQ(aborted.index, 0u);
  EXPECT_TRUE(aborted.aborted);
  EXPECT_EQ(aborted.abort_phase, "transfer");
  EXPECT_EQ(aborted.abort_reason, "worker_loss");
  EXPECT_DOUBLE_EQ(aborted.request_ts, 2.0);
  EXPECT_DOUBLE_EQ(aborted.duration, 0.8);
  EXPECT_DOUBLE_EQ(aborted.migration_bytes, 500.0);
  // An aborted switch buys nothing: no speedup, no payback.
  EXPECT_DOUBLE_EQ(aborted.speedup_pct, 0.0);
  EXPECT_DOUBLE_EQ(aborted.payback_iterations, -1.0);

  const SwitchPostMortem& committed = post[1];
  EXPECT_EQ(committed.index, 1u);
  EXPECT_FALSE(committed.aborted);
  EXPECT_DOUBLE_EQ(committed.request_ts, 3.0);
  EXPECT_DOUBLE_EQ(committed.migration_bytes, 500.0);
}

// ---------------------------------------------------------------------------
// Whole-run analysis over the checked-in golden trace
// ---------------------------------------------------------------------------

std::string golden_path(const char* name) {
  return std::string(AUTOPIPE_GOLDEN_DIR) + "/" + name;
}

TEST(GoldenAnalysis, IdleClassesPartitionWallClock) {
  const TraceView view(parse_text_file(golden_path("bandwidth_drop.trace")));
  const RunAnalysis a = analyze(view);
  ASSERT_FALSE(a.bubbles.workers.empty());
  for (const WorkerBubbles& w : a.bubbles.workers) {
    EXPECT_NEAR(w.busy_seconds + w.idle_seconds(), a.wall_clock, 1e-6)
        << "worker " << w.worker;
  }
  for (const WorkerUtilization& u : a.utilization) {
    EXPECT_NEAR(u.compute_frac + u.comm_frac + u.idle_frac, 1.0, 1e-6)
        << "worker " << u.worker;
    EXPECT_GE(u.idle_frac, -1e-9);
  }
}

TEST(GoldenAnalysis, AttributesContentionAndReconfigDrain) {
  // The golden scenario drops the NIC to 1 Gbps at iteration 5 and switches
  // the partition stop-the-world at iteration 7: both signatures must show.
  const TraceView view(parse_text_file(golden_path("bandwidth_drop.trace")));
  const BubbleReport report = attribute_bubbles(view);
  EXPECT_GT(report.totals[static_cast<std::size_t>(
                BubbleClass::kNetContention)],
            0.0);
  EXPECT_GT(report.totals[static_cast<std::size_t>(
                BubbleClass::kReconfigDrain)],
            0.0);

  const auto post = switch_post_mortems(view);
  ASSERT_EQ(post.size(), 1u);
  EXPECT_EQ(post[0].mode, "stw");
  EXPECT_GT(post[0].migration_bytes, 0.0);
}

TEST(GoldenAnalysis, SummaryJsonMatchesGolden) {
  const std::string path = golden_path("bandwidth_drop.summary.json");
  const TraceView view(parse_text_file(golden_path("bandwidth_drop.trace")));
  const RunAnalysis a = analyze(view);
  std::ostringstream os;
  write_summary_json(a, os);

  if (std::getenv("AUTOPIPE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write golden file " << path;
    out << os.str();
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — regenerate with AUTOPIPE_REGEN_GOLDEN=1";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(os.str(), golden.str())
      << "summary drifted from the golden file; if the change is intended, "
         "regenerate with AUTOPIPE_REGEN_GOLDEN=1";
}

TEST(GoldenAnalysis, SelfDiffIsEmpty) {
  const TraceView view(parse_text_file(golden_path("bandwidth_drop.trace")));
  const RunAnalysis a = analyze(view);
  const RunAnalysis b = analyze(view);
  EXPECT_TRUE(diff_analyses(a, b).empty());

  // flatten() is the diff's substrate: keys must be unique and ordered the
  // same on every call.
  const auto fa = flatten(a);
  const auto fb = flatten(b);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].first, fb[i].first);
  }
}

TEST(GoldenAnalysis, DiffDetectsAChangedRun) {
  const TraceView golden(
      parse_text_file(golden_path("bandwidth_drop.trace")));
  const TraceView other(known_run());
  const auto deltas = diff_analyses(analyze(golden), analyze(other));
  EXPECT_FALSE(deltas.empty());
  bool saw_wall_clock = false;
  for (const DiffEntry& d : deltas) {
    if (d.key == "wall_clock") saw_wall_clock = true;
  }
  EXPECT_TRUE(saw_wall_clock);
}

TEST(Diff, EmptyVsEmptyTraceHasNoDifferences) {
  const TraceView a{std::vector<trace::Event>{}};
  const TraceView b{std::vector<trace::Event>{}};
  const auto deltas = diff_analyses(analyze(a), analyze(b));
  EXPECT_TRUE(deltas.empty());
}

TEST(Diff, MismatchedWorkerCountsCompareAgainstZero) {
  // Two workers vs one: the per-worker keys the single-worker run lacks
  // must still appear in the diff, compared against 0 on the missing side.
  const TraceView two(known_run());
  const TraceView one(std::vector<trace::Event>{
      span(Category::kCompute, "fp", 0.0, 1.0, 0, 0, {arg("batch", 0)}),
      span(Category::kCompute, "bp", 1.0, 2.0, 0, 0, {arg("batch", 0)}),
      instant(Category::kMark, "iteration", 2.0, kPidControl, 0,
              {arg("n", 0)}),
  });
  const auto deltas = diff_analyses(analyze(two), analyze(one));
  ASSERT_FALSE(deltas.empty());
  bool saw_missing_worker = false;
  for (const DiffEntry& d : deltas) {
    if (d.key.find("worker1") != std::string::npos ||
        d.key.find("w1") != std::string::npos) {
      saw_missing_worker = true;
      EXPECT_DOUBLE_EQ(d.b, 0.0) << d.key;
    }
  }
  EXPECT_TRUE(saw_missing_worker);
  // And the comparison is symmetric: swapping sides flips a/b.
  const auto swapped = diff_analyses(analyze(one), analyze(two));
  ASSERT_EQ(swapped.size(), deltas.size());
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    EXPECT_EQ(swapped[i].key, deltas[i].key);
    EXPECT_DOUBLE_EQ(swapped[i].a, deltas[i].b);
    EXPECT_DOUBLE_EQ(swapped[i].b, deltas[i].a);
  }
}

TEST(GoldenAnalysis, UtilizationTimelineIsSane) {
  const TraceView view(parse_text_file(golden_path("bandwidth_drop.trace")));
  const auto timeline = utilization_timeline(view, 16);
  ASSERT_EQ(timeline.size(), 16u);
  EXPECT_DOUBLE_EQ(timeline.front().begin, 0.0);
  EXPECT_DOUBLE_EQ(timeline.back().end, view.wall_clock());
  double busy_from_windows = 0.0;
  for (const UtilizationWindow& w : timeline) {
    ASSERT_EQ(w.compute_frac.size(), view.workers().size());
    for (double f : w.compute_frac) {
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 1.0 + 1e-9);
    }
    busy_from_windows += w.compute_frac[0] * (w.end - w.begin);
  }
  // Window-bucketed busy time telescopes back to the exact total.
  EXPECT_NEAR(busy_from_windows,
              view.compute_busy(view.workers()[0]).total(), 1e-9);
}

TEST(GoldenAnalysis, GanttRendersEveryWorkerRow) {
  const TraceView view(parse_text_file(golden_path("bandwidth_drop.trace")));
  const std::string gantt = render_gantt(view, 60);
  for (int worker : view.workers()) {
    EXPECT_NE(gantt.find("w" + std::to_string(worker) + " "),
              std::string::npos);
  }
  EXPECT_NE(gantt.find("F fp"), std::string::npos);  // legend
  EXPECT_NE(gantt.find("scale: 1 cell"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JSON writer
// ---------------------------------------------------------------------------

TEST(JsonWriter, NestsAndEscapes) {
  std::ostringstream os;
  {
    JsonWriter w(os);
    w.begin_object();
    w.kv("text", "line\n\"quoted\"");
    w.kv("num", 0.5);
    w.kv("flag", true);
    w.key("list");
    w.begin_array();
    w.value(std::int64_t{1});
    w.begin_object();
    w.kv("inner", 2);
    // Destructor closes the inner object, array and outer object.
  }
  const std::string json = os.str();
  EXPECT_NE(json.find("\"text\": \"line\\n\\\"quoted\\\"\""),
            std::string::npos);
  EXPECT_NE(json.find("\"num\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"flag\": true"), std::string::npos);
  // Balanced braces/brackets.
  std::ptrdiff_t depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(JsonWriter, ScalarMapKeepsKeyOrder) {
  std::ostringstream os;
  write_scalar_map_json({{"b.second", 2.0}, {"a.first", 1.5}}, os);
  const std::string json = os.str();
  const std::size_t a = json.find("a.first");
  const std::size_t b = json.find("b.second");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_NE(json.find("\"a.first\": 1.5"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fuzz-style reader robustness. The reader's whole contract is "parse or
// throw contract_error" — never crash, hang or leak a foreign exception
// type — so feed it seeded corruptions of the checked-in golden trace and
// assert nothing else ever escapes. The golden file keeps these tests
// independent of AUTOPIPE_TRACING (no live recorder needed).
// ---------------------------------------------------------------------------

std::string golden_trace_text() {
  std::ifstream in(golden_path("bandwidth_drop.trace"));
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

/// True when parse_text accepts the text, false when it rejects it with
/// contract_error. Any other exception propagates into gtest and fails the
/// test — that is the point of the harness.
bool parses_cleanly(const std::string& text) {
  std::istringstream is(text);
  try {
    (void)parse_text(is);
    return true;
  } catch (const contract_error&) {
    return false;
  }
}

std::string flip_random_bytes(std::string text, Rng& rng) {
  if (text.empty()) return text;
  const std::int64_t flips = rng.uniform_int(1, 16);
  for (std::int64_t f = 0; f < flips; ++f) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
    text[pos] = static_cast<char>(rng.uniform_int(0, 255));
  }
  return text;
}

std::string truncate_random(const std::string& text, Rng& rng) {
  const auto cut = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(text.size())));
  return text.substr(0, cut);
}

class TraceReaderFuzz : public ::testing::TestWithParam<int> {};

// Every whole-line prefix of a valid trace is itself a valid trace: the
// format carries no cross-line state, so a reader catching a file mid-write
// (flush happened, run died) still gets everything up to the cut.
TEST_P(TraceReaderFuzz, WholeLinePrefixParsesExactly) {
  static const std::vector<std::string> lines =
      split_lines(golden_trace_text());
  ASSERT_FALSE(lines.empty());
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u + 101u);
  const auto keep = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(lines.size())));
  std::string text;
  for (std::size_t i = 0; i < keep; ++i) text += lines[i] + '\n';
  std::istringstream is(text);
  EXPECT_EQ(parse_text(is).size(), keep);
}

// Two writers' lines merged in arbitrary order (each stream's own order
// preserved) still parse completely — again because lines are independent.
TEST_P(TraceReaderFuzz, InterleavedLineStreamsParseCompletely) {
  static const std::vector<std::string> lines =
      split_lines(golden_trace_text());
  std::vector<std::string> even, odd;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    (i % 2 == 0 ? even : odd).push_back(lines[i]);
  }
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u + 211u);
  std::string text;
  std::size_t i = 0, j = 0;
  while (i < even.size() || j < odd.size()) {
    const bool take_even =
        j >= odd.size() || (i < even.size() && rng.chance(0.5));
    text += (take_even ? even[i++] : odd[j++]) + '\n';
  }
  std::istringstream is(text);
  EXPECT_EQ(parse_text(is).size(), lines.size());
}

// Arbitrary corruption — byte-level truncation (usually mid-line), random
// byte flips, and both at once — must always land in parse-or-reject.
TEST_P(TraceReaderFuzz, ArbitraryCorruptionParsesOrRejects) {
  static const std::string base = golden_trace_text();
  ASSERT_FALSE(base.empty());
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u + 307u);
  std::string text;
  switch (GetParam() % 3) {
    case 0:
      text = truncate_random(base, rng);
      break;
    case 1:
      text = flip_random_bytes(base, rng);
      break;
    default:
      text = flip_random_bytes(truncate_random(base, rng), rng);
      break;
  }
  (void)parses_cleanly(text);  // either outcome is fine; escapes are not
}

INSTANTIATE_TEST_SUITE_P(SeededCorruptions, TraceReaderFuzz,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace autopipe::analysis
