// End-to-end integration tests: the paper's headline claims as assertions.
// Each test is a miniature of one evaluation scenario — static shared
// cluster, bandwidth drop, GPU contention — comparing PipeDream's one-shot
// configuration with re-planning and with the full AutoPipe loop.
#include <gtest/gtest.h>

#include <memory>

#include "autopipe/controller.hpp"
#include "autopipe/training.hpp"
#include "baselines/data_parallel.hpp"
#include "common/units.hpp"
#include "models/zoo.hpp"
#include "partition/pipedream_planner.hpp"
#include "pipeline/executor.hpp"
#include "sim/cluster.hpp"
#include "sim/trace.hpp"

namespace autopipe {
namespace {

/// The paper's testbed at a chosen bandwidth.
std::unique_ptr<sim::Cluster> testbed(sim::Simulator& sim, double bw_gbps) {
  sim::ClusterConfig config;
  config.nic_bandwidth = gbps(bw_gbps);
  return std::make_unique<sim::Cluster>(sim, config);
}

partition::PlanResult pipedream_plan(const sim::Cluster& cluster,
                                     const models::ModelSpec& model) {
  const auto env = partition::EnvironmentView::from_cluster(
      cluster, comm::pytorch_profile(), comm::SyncScheme::kRing);
  partition::PipeDreamPlanner planner(model, env,
                                      model.default_batch_size());
  return planner.plan(cluster.num_workers());
}

TEST(Integration, PipeDreamPlanBeatsNaiveEvenSplit) {
  const auto model = models::vgg16();
  double planned, naive;
  {
    sim::Simulator sim;
    auto cluster = testbed(sim, 25);
    const auto plan = pipedream_plan(*cluster, model);
    pipeline::PipelineExecutor executor(*cluster, model, plan.partition,
                                        pipeline::ExecutorConfig{});
    planned = executor.run(40, 10).throughput;
  }
  {
    sim::Simulator sim;
    auto cluster = testbed(sim, 25);
    pipeline::PipelineExecutor executor(
        *cluster, model,
        partition::Partition::even_split(model.num_layers(),
                                         {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}),
        pipeline::ExecutorConfig{});
    naive = executor.run(40, 10).throughput;
  }
  EXPECT_GT(planned, naive);
}

TEST(Integration, BandwidthDropMakesStalePlanSuboptimal) {
  // Fig 3's mechanism: halve the bandwidth; the one-shot plan loses to a
  // re-planned configuration executed in the same degraded environment.
  const auto model = models::vgg16();
  double stale, replanned;
  {
    sim::Simulator sim;
    auto cluster = testbed(sim, 25);
    const auto plan = pipedream_plan(*cluster, model);  // planned at 25G
    cluster->set_all_nic_bandwidth(gbps(10));           // runs at 10G
    pipeline::PipelineExecutor executor(*cluster, model, plan.partition,
                                        pipeline::ExecutorConfig{});
    stale = executor.run(40, 10).throughput;
  }
  {
    sim::Simulator sim;
    auto cluster = testbed(sim, 10);                     // planned at 10G
    const auto plan = pipedream_plan(*cluster, model);
    pipeline::PipelineExecutor executor(*cluster, model, plan.partition,
                                        pipeline::ExecutorConfig{});
    replanned = executor.run(40, 10).throughput;
  }
  EXPECT_GT(replanned, stale * 1.05);
}

TEST(Integration, AutoPipeRecoversFromBandwidthDrop) {
  // Fig 9's mechanism in miniature: under a mid-run bandwidth change,
  // AutoPipe (threshold arbiter + analytic predictor) must beat the static
  // PipeDream configuration over the post-change window.
  const auto model = models::vgg16();
  auto run_once = [&](bool autopipe_on) {
    sim::Simulator sim;
    auto cluster = testbed(sim, 25);
    const auto plan = pipedream_plan(*cluster, model);
    pipeline::PipelineExecutor executor(*cluster, model, plan.partition,
                                        pipeline::ExecutorConfig{});
    core::ControllerConfig cc;
    cc.arbiter_mode = core::ControllerConfig::ArbiterMode::kThreshold;
    cc.use_meta_network = false;
    cc.decision_interval = 3;
    std::unique_ptr<core::AutoPipeController> controller;
    if (autopipe_on) {
      controller = std::make_unique<core::AutoPipeController>(
          *cluster, executor, cc, nullptr, nullptr);
    }
    sim::ResourceTrace trace;
    trace.at_iteration(10,
                       sim::ResourceTrace::set_all_nic_bandwidth(gbps(10)));
    executor.set_iteration_callback([&](std::size_t iters) {
      trace.apply_iteration(iters, *cluster);
      if (controller) controller->on_iteration(iters);
    });
    // Measure well after the change so the static penalty dominates.
    return executor.run(60, 25).throughput;
  };
  const double without = run_once(false);
  const double with = run_once(true);
  EXPECT_GT(with, without);
}

TEST(Integration, AutoPipeRecoversFromGpuContention) {
  // Fig 10's mechanism: background jobs land on two GPUs; AutoPipe should
  // shift work off the contended workers.
  const auto model = models::resnet50();
  auto run_once = [&](bool autopipe_on) {
    sim::Simulator sim;
    auto cluster = testbed(sim, 25);
    const auto plan = pipedream_plan(*cluster, model);
    pipeline::PipelineExecutor executor(*cluster, model, plan.partition,
                                        pipeline::ExecutorConfig{});
    core::ControllerConfig cc;
    cc.arbiter_mode = core::ControllerConfig::ArbiterMode::kThreshold;
    cc.use_meta_network = false;
    cc.decision_interval = 3;
    std::unique_ptr<core::AutoPipeController> controller;
    if (autopipe_on) {
      controller = std::make_unique<core::AutoPipeController>(
          *cluster, executor, cc, nullptr, nullptr);
    }
    sim::ResourceTrace trace;
    trace.at_iteration(8, sim::ResourceTrace::add_gpu_job(0));
    trace.at_iteration(8, sim::ResourceTrace::add_gpu_job(0));
    trace.at_iteration(8, sim::ResourceTrace::add_gpu_job(1));
    executor.set_iteration_callback([&](std::size_t iters) {
      trace.apply_iteration(iters, *cluster);
      if (controller) controller->on_iteration(iters);
    });
    return executor.run(50, 20).throughput;
  };
  const double without = run_once(false);
  const double with = run_once(true);
  EXPECT_GT(with, without * 0.98);  // at minimum it must not hurt
}

TEST(Integration, PipelineBeatsDataParallelBaselineAt10G) {
  // Fig 8's baseline relationship on the slowest network, where data
  // parallelism's full-model synchronization is most expensive.
  const auto model = models::vgg16();
  double dp, pipe;
  {
    sim::Simulator sim;
    auto cluster = testbed(sim, 10);
    std::vector<sim::WorkerId> all(cluster->num_workers());
    for (sim::WorkerId w = 0; w < all.size(); ++w) all[w] = w;
    dp = baselines::run_data_parallel(*cluster, model, all, 10, 2)
             .throughput;
  }
  {
    sim::Simulator sim;
    auto cluster = testbed(sim, 10);
    const auto plan = pipedream_plan(*cluster, model);
    pipeline::PipelineExecutor executor(*cluster, model, plan.partition,
                                        pipeline::ExecutorConfig{});
    pipe = executor.run(40, 10).throughput;
  }
  EXPECT_GT(pipe, dp);
}

TEST(Integration, EndToEndWithTrainedComponents) {
  // The full stack: simulator-labelled dataset -> trained meta-network ->
  // offline-trained arbiter -> deployment with online adaptation. Smoke
  // asserts: everything runs, decisions happen, training completes.
  const auto model = models::alexnet();
  const core::FeatureEncoder enc;

  core::ScenarioConfig scenario;
  scenario.measure_iterations = 3;
  scenario.warmup_iterations = 1;
  auto data = core::generate_speed_dataset(model, 24, 101, enc, scenario);

  core::MetaNetworkConfig mc;
  mc.dynamic_dim = enc.dynamic_dim();
  mc.static_dim = enc.static_dim();
  mc.partition_dim = enc.partition_dim();
  core::MetaNetwork meta(mc, 7);
  core::train_meta_network(meta, data, 10, 8, 11);

  rl::DqnConfig dc;
  dc.state_dim = enc.arbiter_dim();
  rl::DqnAgent agent(dc, 13);
  core::train_arbiter_offline(agent, model, 2, 10, 17, &meta, scenario);

  // Deploy.
  agent.begin_online_adaptation();
  meta.begin_online_adaptation();
  sim::Simulator sim;
  auto cluster = testbed(sim, 25);
  const auto plan = pipedream_plan(*cluster, model);
  pipeline::PipelineExecutor executor(*cluster, model, plan.partition,
                                      pipeline::ExecutorConfig{});
  core::ControllerConfig cc;
  cc.arbiter_mode = core::ControllerConfig::ArbiterMode::kRl;
  cc.use_meta_network = true;
  cc.decision_interval = 4;
  core::AutoPipeController controller(*cluster, executor, cc, &meta, &agent);
  controller.attach();

  sim::ResourceTrace trace;
  trace.at_iteration(10, sim::ResourceTrace::set_all_nic_bandwidth(gbps(10)));
  executor.set_iteration_callback([&](std::size_t iters) {
    trace.apply_iteration(iters, *cluster);
    controller.on_iteration(iters);
  });
  const auto report = executor.run(30, 5);
  EXPECT_GT(report.throughput, 0.0);
  EXPECT_GT(controller.stats().decisions, 0u);
}

}  // namespace
}  // namespace autopipe
