// Differential parity tier (ctest label `parity`): the timing-wheel event
// queue must be *observationally identical* to the reference binary heap.
// Full AutoPipe scenarios — executor + controller + seeded random fault
// plans + background-tenant churn — run once per queue kind and every
// artifact is compared byte-for-byte: trace text, decision ledger, metrics,
// iteration end times (bit-exact doubles) and the push/pop counters.
//
// 50 seeds × (faults + churn) is the acceptance bar for the core rewrite;
// a handful of structural cases (fault-free, churn-free, golden scenario)
// pin down the axes separately.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "golden_scenario.hpp"
#include "parity/differential.hpp"

namespace autopipe {
namespace {

using parity::Divergence;
using parity::ScenarioConfig;
using parity::ScenarioResult;

// ---------------------------------------------------------------------------
// Seeded differential sweep: the acceptance bar
// ---------------------------------------------------------------------------

class ParitySeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParitySeeds, HeapAndWheelAreByteIdentical) {
  ScenarioConfig config;
  config.seed = GetParam();
  config.inject_faults = true;
  config.background_churn = true;
  const Divergence d = parity::run_differential(config);
  EXPECT_TRUE(d.identical) << d.report;
}

INSTANTIATE_TEST_SUITE_P(FiftySeeds, ParitySeeds,
                         ::testing::Range<std::uint64_t>(1, 51));

// Mid-switch fault split: the seed picks the protocol phase, fault kind and
// switch mode of a crash point armed against a deterministic mid-run switch,
// so aborted, rolled-back, retried and abandoned switches are all inside the
// byte-for-byte heap-vs-wheel contract.
class ParityMidSwitchSeeds : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ParityMidSwitchSeeds, AbortedSwitchRunsAreByteIdentical) {
  ScenarioConfig config;
  config.seed = GetParam();
  config.inject_faults = false;  // the crash point is the only fault source
  config.background_churn = true;
  config.mid_switch_faults = true;
  const Divergence d = parity::run_differential(config);
  EXPECT_TRUE(d.identical) << d.report;
}

INSTANTIATE_TEST_SUITE_P(FiftySeeds, ParityMidSwitchSeeds,
                         ::testing::Range<std::uint64_t>(1, 51));

// The 50-seed sweeps above diff causal edges through compare(); this pins
// the artifact itself — a regression that stops stamping eids would make
// causal_text empty-vs-empty "identical" while gutting the contract.
TEST_P(ParitySeeds, CausalEdgesAreByteIdenticalAndPresent) {
  ScenarioConfig config;
  config.seed = GetParam();
  config.inject_faults = true;
  config.background_churn = true;
  const ScenarioResult heap =
      parity::run_scenario(config, sim::EventQueueKind::kHeap);
  const ScenarioResult wheel =
      parity::run_scenario(config, sim::EventQueueKind::kWheel);
  ASSERT_FALSE(heap.causal_text.empty());
  EXPECT_EQ(heap.causal_text, wheel.causal_text);
}

// ---------------------------------------------------------------------------
// Co-tenant fleet split: N jobs under the greedy-arbiter JobManager on one
// fabric, with chaos faults and churn on top. Arbitration rides the event
// queue (claim windows, deny-then-abort follow-ups), so a queue that
// reorders same-time events would flip winners and diverge loudly here.
// ---------------------------------------------------------------------------

class ParityFleetSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParityFleetSeeds, TwoJobFleetIsByteIdentical) {
  ScenarioConfig config;
  config.seed = GetParam();
  config.inject_faults = true;
  config.background_churn = true;
  config.fleet_jobs = 2;
  const Divergence d = parity::run_differential(config);
  EXPECT_TRUE(d.identical) << d.report;
}

TEST_P(ParityFleetSeeds, EightJobFleetIsByteIdentical) {
  ScenarioConfig config;
  config.seed = GetParam();
  config.inject_faults = true;
  config.background_churn = true;
  config.fleet_jobs = 8;
  const Divergence d = parity::run_differential(config);
  EXPECT_TRUE(d.identical) << d.report;
}

INSTANTIATE_TEST_SUITE_P(FleetSeeds, ParityFleetSeeds,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Structural cases: each chaos axis alone
// ---------------------------------------------------------------------------

TEST(Parity, FaultFreeScenarioIsByteIdentical) {
  ScenarioConfig config;
  config.seed = 7;
  config.inject_faults = false;
  config.background_churn = false;
  const Divergence d = parity::run_differential(config);
  EXPECT_TRUE(d.identical) << d.report;
}

TEST(Parity, FaultsOnlyScenarioIsByteIdentical) {
  ScenarioConfig config;
  config.seed = 11;
  config.inject_faults = true;
  config.background_churn = false;
  const Divergence d = parity::run_differential(config);
  EXPECT_TRUE(d.identical) << d.report;
}

TEST(Parity, ChurnOnlyScenarioIsByteIdentical) {
  ScenarioConfig config;
  config.seed = 13;
  config.inject_faults = false;
  config.background_churn = true;
  const Divergence d = parity::run_differential(config);
  EXPECT_TRUE(d.identical) << d.report;
}

TEST(Parity, SameSeedReplaysByteIdenticalPerQueue) {
  // Determinism within one queue kind is a precondition for the
  // cross-queue comparison to mean anything.
  ScenarioConfig config;
  config.seed = 17;
  for (const auto kind :
       {sim::EventQueueKind::kHeap, sim::EventQueueKind::kWheel}) {
    const ScenarioResult a = parity::run_scenario(config, kind);
    const ScenarioResult b = parity::run_scenario(config, kind);
    const Divergence d = parity::compare(a, b);
    EXPECT_TRUE(d.identical) << a.queue_name << " replay diverged:\n"
                             << d.report;
  }
}

TEST(Parity, DivergenceReportNamesFirstDifference) {
  ScenarioResult a;
  a.trace_text = "line one\nline two\n";
  a.metrics_text = "m=1\n";
  ScenarioResult b = a;
  b.trace_text = "line one\nline 2\n";
  const Divergence d = parity::compare(a, b);
  ASSERT_FALSE(d.identical);
  EXPECT_NE(d.report.find("trace: first divergence at line 2"),
            std::string::npos);
  EXPECT_NE(d.report.find("line two"), std::string::npos);
  EXPECT_NE(d.report.find("line 2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The committed golden under both queues
// ---------------------------------------------------------------------------

TEST(Parity, GoldenScenarioIdenticalUnderBothQueues) {
  const auto heap =
      test_scenarios::run_golden_scenario(sim::EventQueueKind::kHeap);
  const auto wheel =
      test_scenarios::run_golden_scenario(sim::EventQueueKind::kWheel);
  EXPECT_FALSE(heap.text.empty());
  EXPECT_EQ(heap.text, wheel.text);
}

TEST(Parity, GoldenScenarioWheelMatchesCheckedInGolden) {
  // The committed golden predates the timing wheel; matching it under the
  // wheel is the semantic-preservation proof for the core rewrite. This
  // test never regenerates — a mismatch means the rewrite changed
  // semantics and must be investigated, not re-recorded.
  const std::string path =
      std::string(AUTOPIPE_GOLDEN_DIR) + "/bandwidth_drop.trace";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream golden;
  golden << in.rdbuf();
  const auto wheel =
      test_scenarios::run_golden_scenario(sim::EventQueueKind::kWheel);
  EXPECT_EQ(wheel.text, golden.str());
}

}  // namespace
}  // namespace autopipe
