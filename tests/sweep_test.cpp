// Sweep tier (ctest label `sweep`): spec parsing and grid expansion, the
// fan-out engine's index/exception contract, the baseline gate, and the
// headline determinism guarantee — the same spec produces byte-identical
// BENCH_sweep.json at every thread count, checked over a 50-seed grid.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/expect.hpp"
#include "sweep/engine.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"

namespace autopipe::sweep {
namespace {

// ---------------------------------------------------------------------------
// Spec parsing and expansion
// ---------------------------------------------------------------------------

TEST(SweepSpec, EmptyTextExpandsToSingleDefaultScenario) {
  const SweepSpec spec = parse_sweep_spec("");
  EXPECT_EQ(spec.scenario_count(), 1u);
  const std::vector<ScenarioSpec> scenarios = spec.expand();
  ASSERT_EQ(scenarios.size(), 1u);
  EXPECT_EQ(scenarios[0].model, "resnet50");
  EXPECT_EQ(scenarios[0].system, "autopipe");
  EXPECT_EQ(scenarios[0].label, "resnet50.autopipe.s5x2.bw25.j0.c0.f0.seed1");
}

TEST(SweepSpec, ParsesListsRangesCommentsAndSemicolons) {
  const SweepSpec spec = parse_sweep_spec(
      "# a comment line; with a semicolon that must not start a statement\n"
      "model = alexnet, vgg16  # trailing comments work too\n"
      "system = autopipe, even; servers = 3\n"
      "seed = 1..3, 10\n"
      "iterations = 20; warmup = 5\n");
  EXPECT_EQ(spec.models, (std::vector<std::string>{"alexnet", "vgg16"}));
  EXPECT_EQ(spec.systems, (std::vector<std::string>{"autopipe", "even"}));
  EXPECT_EQ(spec.servers, (std::vector<std::size_t>{3}));
  EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{1, 2, 3, 10}));
  EXPECT_EQ(spec.iterations, 20u);
  EXPECT_EQ(spec.warmup, 5u);
  EXPECT_EQ(spec.scenario_count(), 2u * 2u * 4u);
}

TEST(SweepSpec, ExpansionNestsAxesInDocumentedOrder) {
  const SweepSpec spec = parse_sweep_spec(
      "model = alexnet, vgg16; servers = 2, 3; seed = 1..2;"
      "gpus-per-server = 1");
  const std::vector<ScenarioSpec> scenarios = spec.expand();
  ASSERT_EQ(scenarios.size(), 8u);
  // model outermost, then servers, seed innermost.
  EXPECT_EQ(scenarios[0].label, "alexnet.autopipe.s2x1.bw25.j0.c0.f0.seed1");
  EXPECT_EQ(scenarios[1].label, "alexnet.autopipe.s2x1.bw25.j0.c0.f0.seed2");
  EXPECT_EQ(scenarios[2].label, "alexnet.autopipe.s3x1.bw25.j0.c0.f0.seed1");
  EXPECT_EQ(scenarios[4].label, "vgg16.autopipe.s2x1.bw25.j0.c0.f0.seed1");
  EXPECT_EQ(scenarios[7].label, "vgg16.autopipe.s3x1.bw25.j0.c0.f0.seed2");
  // Labels are unique — they key the baseline map.
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    for (std::size_t j = i + 1; j < scenarios.size(); ++j)
      EXPECT_NE(scenarios[i].label, scenarios[j].label);
}

TEST(SweepSpec, RejectsMalformedInput) {
  EXPECT_THROW(parse_sweep_spec("modle = resnet50"), contract_error);
  EXPECT_THROW(parse_sweep_spec("model = not-a-model"), contract_error);
  EXPECT_THROW(parse_sweep_spec("system = magic"), contract_error);
  EXPECT_THROW(parse_sweep_spec("schedule = lifo"), contract_error);
  EXPECT_THROW(parse_sweep_spec("seed = 9..3"), contract_error);
  EXPECT_THROW(parse_sweep_spec("seed = 1..9999999"), contract_error);
  EXPECT_THROW(parse_sweep_spec("servers ="), contract_error);
  EXPECT_THROW(parse_sweep_spec("servers = two"), contract_error);
  EXPECT_THROW(parse_sweep_spec("iterations = 10; warmup = 10"),
               contract_error);
}

TEST(SweepSpec, DuplicateAxisKeyNamesBothLines) {
  // Regression: a repeated axis key used to silently overwrite the earlier
  // value list. The diagnostic must name the key and both source lines so a
  // grid author can find the clash in a long spec file.
  try {
    parse_sweep_spec("model = alexnet\nseed = 1\nmodel = vgg16");
    FAIL() << "duplicate axis key accepted";
  } catch (const contract_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate key 'model'"), std::string::npos) << what;
    EXPECT_NE(what.find("lines 1 and 3"), std::string::npos) << what;
    EXPECT_NE(what.find("merge the value lists"), std::string::npos) << what;
  }
  // ';' statements on one physical line clash under that line's number.
  EXPECT_THROW(parse_sweep_spec("seed = 1; seed = 2"), contract_error);
  // The same key spread across a comment-bearing line still reports the
  // pre-comment line number.
  try {
    parse_sweep_spec("arbiter = greedy  # policy\njobs = 2\narbiter = auction");
    FAIL() << "duplicate axis key accepted";
  } catch (const contract_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate key 'arbiter'"), std::string::npos) << what;
    EXPECT_NE(what.find("lines 1 and 3"), std::string::npos) << what;
  }
}

TEST(SweepSpec, LoadResolvesInlineTextAndFiles) {
  EXPECT_EQ(load_sweep_spec("seed = 1..4").seeds.size(), 4u);

  const std::string path = ::testing::TempDir() + "sweep_spec_test.sweep";
  {
    std::ofstream out(path);
    out << "model = alexnet\nseed = 1..2\n";
  }
  const SweepSpec spec = load_sweep_spec("@" + path);
  EXPECT_EQ(spec.models, (std::vector<std::string>{"alexnet"}));
  EXPECT_EQ(spec.seeds.size(), 2u);

  EXPECT_THROW(load_sweep_spec("@/nonexistent/grid.sweep"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Fan-out engine
// ---------------------------------------------------------------------------

TEST(RunIndexed, ResolvesJobCounts) {
  EXPECT_GE(resolve_jobs(0), 1u);
  EXPECT_EQ(resolve_jobs(1), 1u);
  EXPECT_EQ(resolve_jobs(7), 7u);
}

TEST(RunIndexed, CoversEveryIndexExactlyOnce) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    const std::size_t count = 257;
    std::vector<std::atomic<int>> hits(count);
    run_indexed(count, jobs, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < count; ++i)
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
  }
}

TEST(RunIndexed, ZeroCountIsANoOp) {
  run_indexed(0, 8, [&](std::size_t) { FAIL() << "body ran"; });
}

TEST(RunIndexed, LowestFailingIndexIsRethrownAfterAllIndicesRun) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    const std::size_t count = 64;
    std::vector<std::atomic<int>> hits(count);
    try {
      run_indexed(count, jobs, [&](std::size_t i) {
        ++hits[i];
        if (i == 3 || i == 10 || i == 57)
          throw std::runtime_error("boom at index " + std::to_string(i));
      });
      FAIL() << "run_indexed swallowed the failure (jobs " << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at index 3") << "jobs " << jobs;
    }
    // Later indices still ran — a failure does not cancel the sweep.
    for (std::size_t i = 0; i < count; ++i)
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
  }
}

// ---------------------------------------------------------------------------
// Report round trip and the baseline gate
// ---------------------------------------------------------------------------

ScenarioResult ok_result(const std::string& label, double throughput) {
  ScenarioResult r;
  r.spec.label = label;
  r.ok = true;
  r.throughput = throughput;
  r.utilization = 0.5;
  r.batch = 32;
  return r;
}

ScenarioResult failed_result(const std::string& label) {
  ScenarioResult r;
  r.spec.label = label;
  r.ok = false;
  r.error = "executor exploded";
  return r;
}

TEST(BenchJson, BaselineThroughputRoundTrips) {
  SweepResult sweep;
  sweep.scenarios.push_back(ok_result("grid.a", 123.5));
  sweep.scenarios.push_back(failed_result("grid.broken"));
  sweep.scenarios.push_back(ok_result("grid.b", 77.25));

  std::ostringstream os;
  write_bench_json(sweep, os, /*include_timing=*/false);
  EXPECT_EQ(os.str().find("\"timing\""), std::string::npos);

  std::istringstream in(os.str());
  const std::map<std::string, double> baseline =
      read_baseline_throughput(in);
  ASSERT_EQ(baseline.size(), 2u);  // the failed scenario has no throughput
  EXPECT_DOUBLE_EQ(baseline.at("grid.a"), 123.5);
  EXPECT_DOUBLE_EQ(baseline.at("grid.b"), 77.25);
}

TEST(BenchJson, BaselineReaderRejectsNonSweepInput) {
  std::istringstream empty("");
  EXPECT_THROW(read_baseline_throughput(empty), std::runtime_error);
  std::istringstream junk("{\"schema\": \"something-else\"}\n");
  EXPECT_THROW(read_baseline_throughput(junk), std::runtime_error);
}

TEST(Gate, PassesWhenEveryScenarioIsWithinTolerance) {
  SweepResult sweep;
  sweep.scenarios.push_back(ok_result("a", 95.0));
  sweep.scenarios.push_back(ok_result("b", 200.0));
  const GateReport report =
      gate_against_baseline(sweep, {{"a", 100.0}, {"b", 180.0}}, 0.10);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.compared, 2u);
}

TEST(Gate, FlagsRegressionsMissingScenariosAndFailures) {
  SweepResult sweep;
  sweep.scenarios.push_back(ok_result("slow", 80.0));  // below 90% of 100
  sweep.scenarios.push_back(failed_result("broken"));
  const GateReport report = gate_against_baseline(
      sweep, {{"slow", 100.0}, {"broken", 50.0}, {"gone", 10.0}}, 0.10);
  ASSERT_EQ(report.violations.size(), 3u);
  EXPECT_EQ(report.compared, 2u);  // "gone" never ran, so never compared
  std::map<std::string, std::string> reasons;
  for (const GateViolation& v : report.violations) reasons[v.label] = v.reason;
  EXPECT_EQ(reasons.at("slow"), "regression");
  EXPECT_EQ(reasons.at("broken"), "failed");
  EXPECT_EQ(reasons.at("gone"), "missing");

  std::ostringstream os;
  write_gate_report(report, 0.10, os);
  EXPECT_NE(os.str().find("FAILED"), std::string::npos);
}

TEST(Gate, ScenariosAbsentFromBaselinePassUnexamined) {
  SweepResult sweep;
  sweep.scenarios.push_back(ok_result("old", 100.0));
  sweep.scenarios.push_back(ok_result("brand-new", 0.001));
  const GateReport report =
      gate_against_baseline(sweep, {{"old", 100.0}}, 0.10);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.compared, 1u);
}

// ---------------------------------------------------------------------------
// The headline guarantee: thread count never changes the report
// ---------------------------------------------------------------------------

std::string bench_json_at_jobs(const std::vector<ScenarioSpec>& scenarios,
                               std::size_t jobs) {
  SweepResult sweep;
  sweep.scenarios.resize(scenarios.size());
  run_indexed(scenarios.size(), jobs, [&](std::size_t i) {
    sweep.scenarios[i] = run_scenario(scenarios[i]);
  });
  sweep.jobs = jobs;
  std::ostringstream os;
  write_bench_json(sweep, os, /*include_timing=*/false);
  return os.str();
}

TEST(SweepDeterminism, ByteIdenticalBenchJsonAcrossThreadCounts) {
  // 50 seeds of a churny autopipe run — enough scheduling freedom that any
  // cross-scenario leak (shared state, output racing) would show up as a
  // diff between thread counts.
  const SweepSpec spec = parse_sweep_spec(
      "model = alexnet; servers = 3; gpus-per-server = 1; churn = true;"
      "seed = 1..50; iterations = 12; warmup = 3");
  const std::vector<ScenarioSpec> scenarios = spec.expand();
  ASSERT_EQ(scenarios.size(), 50u);

  const std::string serial = bench_json_at_jobs(scenarios, 1);
  EXPECT_NE(serial.find("\"schema\": \"autopipe-sweep-v1\""),
            std::string::npos);
  EXPECT_EQ(serial, bench_json_at_jobs(scenarios, 2));
  EXPECT_EQ(serial, bench_json_at_jobs(scenarios, 8));
}

}  // namespace
}  // namespace autopipe::sweep
