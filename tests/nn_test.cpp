// Neural-network library tests. The load-bearing ones are the
// finite-difference gradient checks: every backward pass (Linear, MLP,
// LSTM-through-time) is verified against numerical differentiation, which
// is what makes the meta-network and arbiter training trustworthy.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "nn/matrix.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"

namespace autopipe::nn {
namespace {

TEST(Matrix, BasicOps) {
  Matrix a(2, 3);
  a.at(0, 0) = 1;
  a.at(1, 2) = 5;
  EXPECT_EQ(a.rows(), 2u);
  EXPECT_EQ(a.cols(), 3u);
  const Matrix t = a.transposed();
  EXPECT_DOUBLE_EQ(t.at(2, 1), 5.0);
  EXPECT_THROW(a.at(2, 0), contract_error);
}

TEST(Matrix, Matmul) {
  Matrix a(2, 2), b(2, 2);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(1, 0) = 3; a.at(1, 1) = 4;
  b.at(0, 0) = 5; b.at(0, 1) = 6; b.at(1, 0) = 7; b.at(1, 1) = 8;
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
  // Transposed variants agree with explicit transposition.
  const Matrix tn = matmul_tn(a, b);
  const Matrix tn_ref = matmul(a.transposed(), b);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      EXPECT_DOUBLE_EQ(tn.at(i, j), tn_ref.at(i, j));
  const Matrix nt = matmul_nt(a, b);
  const Matrix nt_ref = matmul(a, b.transposed());
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      EXPECT_DOUBLE_EQ(nt.at(i, j), nt_ref.at(i, j));
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(matmul(a, b), contract_error);
}

TEST(Matrix, SaveLoadRoundTrip) {
  Rng rng(1);
  const Matrix m = Matrix::xavier(3, 4, rng);
  std::stringstream ss;
  m.save(ss);
  const Matrix loaded = Matrix::load(ss);
  ASSERT_TRUE(loaded.same_shape(m));
  for (std::size_t i = 0; i < m.size(); ++i)
    EXPECT_DOUBLE_EQ(loaded.data()[i], m.data()[i]);
}

TEST(Matrix, LoadRejectsGarbage) {
  std::stringstream ss("not a matrix");
  EXPECT_THROW(Matrix::load(ss), contract_error);
}

TEST(Matrix, ColumnSumsAndHadamard) {
  Matrix m(2, 2);
  m.at(0, 0) = 1; m.at(0, 1) = 2; m.at(1, 0) = 3; m.at(1, 1) = 4;
  const Matrix s = column_sums(m);
  EXPECT_DOUBLE_EQ(s.at(0, 0), 4);
  EXPECT_DOUBLE_EQ(s.at(0, 1), 6);
  const Matrix h = hadamard(m, m);
  EXPECT_DOUBLE_EQ(h.at(1, 1), 16);
}

// --- finite-difference gradient checks ------------------------------------

/// Central-difference derivative of scalar_loss w.r.t. one parameter entry.
template <typename LossFn>
double numeric_grad(Parameter& p, std::size_t idx, LossFn scalar_loss,
                    double eps = 1e-6) {
  const double saved = p.value.data()[idx];
  p.value.data()[idx] = saved + eps;
  const double up = scalar_loss();
  p.value.data()[idx] = saved - eps;
  const double down = scalar_loss();
  p.value.data()[idx] = saved;
  return (up - down) / (2.0 * eps);
}

TEST(GradientCheck, MlpMatchesFiniteDifference) {
  Rng rng(7);
  Mlp net({3, 5, 2}, Activation::kTanh, Activation::kIdentity, rng);
  Matrix x(4, 3), y(4, 2);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.uniform(-1, 1);
  for (std::size_t i = 0; i < y.size(); ++i) y.data()[i] = rng.uniform(-1, 1);

  auto scalar_loss = [&] { return mse_loss(net.forward(x), y).value; };

  net.zero_grad();
  const LossResult loss = mse_loss(net.forward(x), y);
  net.backward(loss.grad);

  for (Parameter* p : net.parameters()) {
    for (std::size_t idx = 0; idx < p->value.size(); idx += 3) {
      const double numeric = numeric_grad(*p, idx, scalar_loss);
      EXPECT_NEAR(p->grad.data()[idx], numeric,
                  1e-5 + 1e-3 * std::abs(numeric));
    }
  }
}

TEST(GradientCheck, ReluAndSigmoidLayers) {
  Rng rng(13);
  Mlp net({4, 6, 1}, Activation::kRelu, Activation::kSigmoid, rng);
  Matrix x(3, 4), y(3, 1);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.uniform(-1, 1);
  for (std::size_t i = 0; i < y.size(); ++i) y.data()[i] = rng.uniform(0.1, 0.9);

  auto scalar_loss = [&] { return bce_loss(net.forward(x), y).value; };
  net.zero_grad();
  const LossResult loss = bce_loss(net.forward(x), y);
  net.backward(loss.grad);

  for (Parameter* p : net.parameters()) {
    for (std::size_t idx = 0; idx < p->value.size(); idx += 2) {
      const double numeric = numeric_grad(*p, idx, scalar_loss);
      EXPECT_NEAR(p->grad.data()[idx], numeric,
                  1e-5 + 1e-3 * std::abs(numeric));
    }
  }
}

TEST(GradientCheck, LstmThroughTimeMatchesFiniteDifference) {
  Rng rng(21);
  Lstm lstm(3, 4, rng);
  std::vector<Matrix> seq;
  for (int t = 0; t < 5; ++t) {
    Matrix x(2, 3);
    for (std::size_t i = 0; i < x.size(); ++i)
      x.data()[i] = rng.uniform(-1, 1);
    seq.push_back(std::move(x));
  }
  Matrix target(2, 4);
  for (std::size_t i = 0; i < target.size(); ++i)
    target.data()[i] = rng.uniform(-1, 1);

  auto scalar_loss = [&] {
    return mse_loss(lstm.forward(seq), target).value;
  };

  lstm.zero_grad();
  const LossResult loss = mse_loss(lstm.forward(seq), target);
  lstm.backward(loss.grad);

  for (Parameter* p : lstm.parameters()) {
    for (std::size_t idx = 0; idx < p->value.size(); idx += 7) {
      const double numeric = numeric_grad(*p, idx, scalar_loss);
      EXPECT_NEAR(p->grad.data()[idx], numeric,
                  1e-5 + 1e-3 * std::abs(numeric))
          << "param entry " << idx;
    }
  }
}

// --- losses ----------------------------------------------------------------

TEST(Loss, MseValueAndGrad) {
  Matrix pred(1, 2), target(1, 2);
  pred.at(0, 0) = 1.0;
  pred.at(0, 1) = 3.0;
  target.at(0, 0) = 0.0;
  target.at(0, 1) = 3.0;
  const LossResult r = mse_loss(pred, target);
  EXPECT_DOUBLE_EQ(r.value, 0.5);              // (1 + 0) / 2
  EXPECT_DOUBLE_EQ(r.grad.at(0, 0), 1.0);      // 2*1/2
  EXPECT_DOUBLE_EQ(r.grad.at(0, 1), 0.0);
}

TEST(Loss, HuberIsLinearInTails) {
  Matrix pred(1, 1), target(1, 1);
  pred.at(0, 0) = 10.0;
  target.at(0, 0) = 0.0;
  const LossResult r = huber_loss(pred, target, 1.0);
  EXPECT_DOUBLE_EQ(r.grad.at(0, 0), 1.0);  // clipped
  EXPECT_NEAR(r.value, 9.5, 1e-12);
}

TEST(Loss, BceAtPerfectPredictionIsSmall) {
  Matrix pred(1, 1), target(1, 1);
  pred.at(0, 0) = 0.999;
  target.at(0, 0) = 1.0;
  EXPECT_LT(bce_loss(pred, target).value, 0.01);
}

// --- optimizers --------------------------------------------------------------

TEST(Optimizer, SgdConvergesOnQuadratic) {
  // Minimize ||w - c||^2 by hand-fed gradients.
  Parameter w{Matrix(1, 3)};
  const double target[3] = {1.0, -2.0, 0.5};
  Sgd sgd({&w}, 0.1);
  for (int it = 0; it < 200; ++it) {
    sgd.zero_grad();
    for (std::size_t i = 0; i < 3; ++i)
      w.grad.data()[i] = 2.0 * (w.value.data()[i] - target[i]);
    sgd.step();
  }
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(w.value.data()[i], target[i], 1e-6);
}

TEST(Optimizer, AdamConvergesFasterThanSgdOnIllConditioned) {
  auto run = [](bool adam) {
    Parameter w{Matrix(1, 2)};
    w.value.at(0, 0) = 5.0;
    w.value.at(0, 1) = 5.0;
    const double scale[2] = {100.0, 0.01};  // bad conditioning
    std::unique_ptr<Sgd> sgd;
    std::unique_ptr<Adam> ad;
    if (adam) ad = std::make_unique<Adam>(std::vector<Parameter*>{&w}, 0.1);
    else sgd = std::make_unique<Sgd>(std::vector<Parameter*>{&w}, 1e-3);
    for (int it = 0; it < 300; ++it) {
      w.zero_grad();
      for (std::size_t i = 0; i < 2; ++i)
        w.grad.data()[i] = 2.0 * scale[i] * w.value.data()[i];
      if (adam) ad->step(); else sgd->step();
    }
    return std::abs(w.value.at(0, 0)) + std::abs(w.value.at(0, 1));
  };
  EXPECT_LT(run(true), run(false));
}

TEST(Optimizer, MlpLearnsXor) {
  Rng rng(3);
  Mlp net({2, 8, 1}, Activation::kTanh, Activation::kSigmoid, rng);
  Adam adam(net.parameters(), 0.05);
  Matrix x(4, 2), y(4, 1);
  const double xs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const double ys[4] = {0, 1, 1, 0};
  for (int i = 0; i < 4; ++i) {
    x.at(i, 0) = xs[i][0];
    x.at(i, 1) = xs[i][1];
    y.at(i, 0) = ys[i];
  }
  double final_loss = 1.0;
  for (int it = 0; it < 500; ++it) {
    adam.zero_grad();
    const LossResult loss = bce_loss(net.forward(x), y);
    net.backward(loss.grad);
    adam.step();
    final_loss = loss.value;
  }
  EXPECT_LT(final_loss, 0.1);
}

TEST(Mlp, SaveLoadPreservesPredictions) {
  Rng rng(9);
  Mlp net({3, 4, 2}, Activation::kRelu, Activation::kIdentity, rng);
  Matrix x(1, 3);
  x.at(0, 0) = 0.3;
  x.at(0, 1) = -0.2;
  x.at(0, 2) = 0.9;
  const Matrix before = net.forward(x);
  std::stringstream ss;
  net.save(ss);
  Rng rng2(1234);
  Mlp other({3, 4, 2}, Activation::kRelu, Activation::kIdentity, rng2);
  other.load(ss);
  const Matrix after = other.forward(x);
  for (std::size_t c = 0; c < 2; ++c)
    EXPECT_DOUBLE_EQ(after.at(0, c), before.at(0, c));
}

TEST(Lstm, SaveLoadPreservesOutputs) {
  Rng rng(4);
  Lstm lstm(2, 3, rng);
  std::vector<Matrix> seq(3, Matrix(1, 2, 0.5));
  const Matrix before = lstm.forward(seq);
  std::stringstream ss;
  lstm.save(ss);
  Rng rng2(77);
  Lstm other(2, 3, rng2);
  other.load(ss);
  const Matrix after = other.forward(seq);
  for (std::size_t c = 0; c < 3; ++c)
    EXPECT_DOUBLE_EQ(after.at(0, c), before.at(0, c));
}

TEST(Lstm, LearnsToSumSequence) {
  // Regression: predict the running sum of a short sequence — requires the
  // cell state to integrate over time.
  Rng rng(15);
  Lstm lstm(1, 8, rng);
  Mlp head({8, 1}, Activation::kIdentity, Activation::kIdentity, rng);
  std::vector<Parameter*> params = lstm.parameters();
  for (Parameter* p : head.parameters()) params.push_back(p);
  Adam adam(params, 0.01);

  Rng data_rng(31);
  double final_loss = 1e9;
  for (int it = 0; it < 600; ++it) {
    std::vector<Matrix> seq;
    double sum = 0.0;
    for (int t = 0; t < 4; ++t) {
      Matrix x(1, 1);
      x.at(0, 0) = data_rng.uniform(-1, 1);
      sum += x.at(0, 0);
      seq.push_back(std::move(x));
    }
    Matrix target(1, 1);
    target.at(0, 0) = sum;
    lstm.zero_grad();
    head.zero_grad();
    const Matrix h = lstm.forward(seq);
    const LossResult loss = mse_loss(head.forward(h), target);
    const Matrix dh = head.backward(loss.grad);
    lstm.backward(dh);
    adam.step();
    final_loss = loss.value;
  }
  EXPECT_LT(final_loss, 0.05);
}

}  // namespace
}  // namespace autopipe::nn
