// Tests for the discrete-event substrate: event ordering, the max-min fair
// flow network (including a property sweep), the GPU executor under
// contention changes, the cluster topology and resource traces.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/background.hpp"
#include "sim/cluster.hpp"
#include "sim/flow_network.hpp"
#include "sim/gpu.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace autopipe::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(2.0, [&] { order.push_back(2); });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(3.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, TieBreakIsFifo) {
  Simulator sim;
  std::vector<int> order;
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(1.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, RunUntilAdvancesClock) {
  Simulator sim;
  bool fired = false;
  sim.at(5.0, [&] { fired = true; });
  sim.run_until(3.0);
  EXPECT_FALSE(fired);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  sim.run_until(6.0);
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(sim.now(), 6.0);
}

TEST(Simulator, RunUntilRunsEventsScheduledAtExactlyT) {
  // An event firing at t may schedule more work at exactly t; run_until(t)
  // must drain that cascade before pinning the clock, or the events would be
  // stranded in the past.
  Simulator sim;
  int fired = 0;
  sim.at(2.0, [&] {
    ++fired;
    sim.at(2.0, [&] {
      ++fired;
      sim.after(0.0, [&] { ++fired; });
    });
  });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 3);
  EXPECT_TRUE(sim.empty());
  EXPECT_NEAR(sim.now(), 2.0, 1e-12);
}

TEST(Simulator, RunUntilToleratesFloatDriftAtBoundary) {
  // 0.1 * 3 != 0.3 in binary floating point; an event whose time was built
  // by repeated addition must still count as "no later than" run_until(0.3).
  Simulator sim;
  int fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < 3) sim.after(0.1, tick);
  };
  sim.after(0.1, tick);
  sim.run_until(0.1 + 0.1);  // fires events 1 and 2
  EXPECT_EQ(fired, 2);
  sim.run_until(0.3);  // event 3 sits a few ulps past 0.3
  EXPECT_EQ(fired, 3);
  // And the pinned clock must not break a subsequent run_until at the same
  // nominal time.
  sim.run_until(0.3);
  EXPECT_NEAR(sim.now(), 0.3, 1e-9);
}

TEST(Simulator, CallbacksCanSchedule) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) sim.after(1.0, tick);
  };
  sim.after(1.0, tick);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.at(1.0, [] {}), contract_error);
}

// ---------------------------------------------------------------------------
// Flow network
// ---------------------------------------------------------------------------

TEST(FlowNetwork, SingleFlowTakesBytesOverCapacity) {
  Simulator sim;
  FlowNetwork net(sim);
  const auto r = net.add_resource("link", 100.0);  // 100 B/s
  Seconds done_at = -1;
  net.start_flow({{r}, 500.0, [&] { done_at = sim.now(); }});
  sim.run();
  EXPECT_NEAR(done_at, 5.0, 1e-9);
  EXPECT_NEAR(net.total_bytes_delivered(), 500.0, 1e-6);
}

TEST(FlowNetwork, TwoFlowsShareFairly) {
  Simulator sim;
  FlowNetwork net(sim);
  const auto r = net.add_resource("link", 100.0);
  Seconds t1 = -1, t2 = -1;
  net.start_flow({{r}, 100.0, [&] { t1 = sim.now(); }});
  net.start_flow({{r}, 100.0, [&] { t2 = sim.now(); }});
  sim.run();
  // Each gets 50 B/s: both finish at t=2.
  EXPECT_NEAR(t1, 2.0, 1e-9);
  EXPECT_NEAR(t2, 2.0, 1e-9);
}

TEST(FlowNetwork, ShortFlowFinishesThenLongSpeedsUp) {
  Simulator sim;
  FlowNetwork net(sim);
  const auto r = net.add_resource("link", 100.0);
  Seconds t_short = -1, t_long = -1;
  net.start_flow({{r}, 50.0, [&] { t_short = sim.now(); }});
  net.start_flow({{r}, 150.0, [&] { t_long = sim.now(); }});
  sim.run();
  // Shared 50/50 until t=1 (short done, long has 100 left), then full rate:
  // long finishes at 1 + 100/100 = 2.
  EXPECT_NEAR(t_short, 1.0, 1e-9);
  EXPECT_NEAR(t_long, 2.0, 1e-9);
}

TEST(FlowNetwork, MaxMinRespectsPerFlowBottleneck) {
  Simulator sim;
  FlowNetwork net(sim);
  const auto wide = net.add_resource("wide", 100.0);
  const auto narrow = net.add_resource("narrow", 10.0);
  // Flow A crosses both; flow B only the wide one.
  const auto a = net.start_flow({{wide, narrow}, 1000.0, nullptr});
  const auto b = net.start_flow({{wide}, 1000.0, nullptr});
  // A is pinned to 10 by the narrow link; B picks up the slack: 90.
  EXPECT_NEAR(net.flow_rate(a), 10.0, 1e-9);
  EXPECT_NEAR(net.flow_rate(b), 90.0, 1e-9);
}

TEST(FlowNetwork, CapacityChangeReratesInFlight) {
  Simulator sim;
  FlowNetwork net(sim);
  const auto r = net.add_resource("link", 100.0);
  Seconds done_at = -1;
  net.start_flow({{r}, 200.0, [&] { done_at = sim.now(); }});
  sim.at(1.0, [&] { net.set_capacity(r, 50.0); });
  sim.run();
  // 100 bytes in the first second, the rest at 50 B/s: 1 + 100/50 = 3.
  EXPECT_NEAR(done_at, 3.0, 1e-9);
}

TEST(FlowNetwork, ZeroCapacityStallsUntilRestored) {
  Simulator sim;
  FlowNetwork net(sim);
  const auto r = net.add_resource("link", 100.0);
  Seconds done_at = -1;
  net.start_flow({{r}, 100.0, [&] { done_at = sim.now(); }});
  sim.at(0.5, [&] { net.set_capacity(r, 0.0); });
  sim.at(2.5, [&] { net.set_capacity(r, 100.0); });
  sim.run();
  // 50 bytes by 0.5, stalled 2 seconds, 50 more in 0.5: done at 3.0.
  EXPECT_NEAR(done_at, 3.0, 1e-9);
}

TEST(FlowNetwork, CancelPreventsCompletion) {
  Simulator sim;
  FlowNetwork net(sim);
  const auto r = net.add_resource("link", 100.0);
  bool fired = false;
  const auto id = net.start_flow({{r}, 100.0, [&] { fired = true; }});
  sim.at(0.5, [&] { net.cancel_flow(id); });
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(net.active_flow_count(), 0u);
}

TEST(FlowNetwork, ZeroByteFlowCompletesImmediately) {
  Simulator sim;
  FlowNetwork net(sim);
  const auto r = net.add_resource("link", 100.0);
  bool fired = false;
  net.start_flow({{r}, 0.0, [&] { fired = true; }});
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(FlowNetwork, DuplicateResourceInPathThrows) {
  Simulator sim;
  FlowNetwork net(sim);
  const auto r = net.add_resource("link", 100.0);
  EXPECT_THROW(net.start_flow({{r, r}, 10.0, nullptr}), contract_error);
}

/// Property sweep: for random topologies and flow sets, the max-min
/// allocation must (a) never oversubscribe a resource and (b) leave no flow
/// below a share it could claim without displacing anyone (max-min
/// feasibility: every flow is bottlenecked by some saturated resource).
class FlowNetworkProperty : public ::testing::TestWithParam<int> {};

TEST_P(FlowNetworkProperty, MaxMinAllocationIsFeasibleAndSaturating) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Simulator sim;
  FlowNetwork net(sim);
  const std::size_t R = 2 + static_cast<std::size_t>(rng.uniform_int(0, 4));
  std::vector<ResourceId> resources;
  for (std::size_t i = 0; i < R; ++i)
    resources.push_back(
        net.add_resource("r" + std::to_string(i), rng.uniform(10.0, 200.0)));

  const std::size_t F = 1 + static_cast<std::size_t>(rng.uniform_int(0, 7));
  std::vector<FlowId> flows;
  std::vector<std::vector<ResourceId>> paths;
  for (std::size_t f = 0; f < F; ++f) {
    std::vector<ResourceId> path;
    for (ResourceId r : resources)
      if (rng.chance(0.5)) path.push_back(r);
    if (path.empty()) path.push_back(resources[0]);
    paths.push_back(path);
    flows.push_back(net.start_flow({path, 1e9, nullptr}));
  }

  // (a) No resource oversubscribed.
  for (ResourceId r : resources)
    EXPECT_LE(net.resource_load(r), net.capacity(r) + 1e-6);
  // (b) Every flow is limited by at least one saturated resource.
  for (std::size_t f = 0; f < F; ++f) {
    bool bottlenecked = false;
    for (ResourceId r : paths[f]) {
      if (net.resource_load(r) >= net.capacity(r) - 1e-6) bottlenecked = true;
    }
    EXPECT_TRUE(bottlenecked) << "flow " << f << " rate "
                              << net.flow_rate(flows[f]);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, FlowNetworkProperty,
                         ::testing::Range(0, 20));

// ---------------------------------------------------------------------------
// GPU executor
// ---------------------------------------------------------------------------

TEST(GpuExecutor, TaskDurationMatchesThroughput) {
  Simulator sim;
  GpuExecutor gpu(sim, GpuSpec{"test", 100.0, gib(16)});  // 100 FLOP/s
  Seconds done_at = -1;
  gpu.submit(500.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 5.0, 1e-9);
  EXPECT_NEAR(gpu.total_flops_done(), 500.0, 1e-6);
  EXPECT_NEAR(gpu.busy_time(), 5.0, 1e-9);
}

TEST(GpuExecutor, FifoOrdering) {
  Simulator sim;
  GpuExecutor gpu(sim, GpuSpec{"test", 100.0, gib(16)});
  std::vector<int> order;
  gpu.submit(100.0, [&] { order.push_back(1); });
  gpu.submit(100.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(GpuExecutor, PriorityOvertakesQueuedWork) {
  Simulator sim;
  GpuExecutor gpu(sim, GpuSpec{"test", 100.0, gib(16)});
  std::vector<int> order;
  gpu.submit(100.0, [&] { order.push_back(1); });       // runs first
  gpu.submit(100.0, [&] { order.push_back(2); });       // queued normal
  gpu.submit_prioritized(100.0, 0.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(GpuExecutor, TenantChangeMidTaskRescales) {
  Simulator sim;
  GpuExecutor gpu(sim, GpuSpec{"test", 100.0, gib(16)});
  Seconds done_at = -1;
  gpu.submit(200.0, [&] { done_at = sim.now(); });
  sim.at(1.0, [&] { gpu.set_tenant_count(2); });  // half speed from t=1
  sim.run();
  // 100 FLOPs by t=1; remaining 100 at 50 FLOP/s: done at 3.0.
  EXPECT_NEAR(done_at, 3.0, 1e-9);
}

TEST(GpuExecutor, FixedOverheadUnaffectedByTenancy) {
  Simulator sim;
  GpuExecutor gpu(sim, GpuSpec{"test", 100.0, gib(16)});
  gpu.set_tenant_count(4);
  Seconds done_at = -1;
  gpu.submit(100.0, 2.0, [&] { done_at = sim.now(); });
  sim.run();
  // 2s fixed + 100 FLOPs at 25 FLOP/s = 2 + 4 = 6.
  EXPECT_NEAR(done_at, 6.0, 1e-9);
}

TEST(GpuExecutor, ThroughputScale) {
  Simulator sim;
  GpuExecutor gpu(sim, GpuSpec{"test", 100.0, gib(16)});
  gpu.set_throughput_scale(0.5);
  EXPECT_DOUBLE_EQ(gpu.effective_throughput(), 50.0);
}

TEST(GpuExecutor, PresetSpecsOrdered) {
  EXPECT_LT(p100_spec().throughput, v100_spec().throughput);
  EXPECT_LT(v100_spec().throughput, a100_spec().throughput);
}

// ---------------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------------

TEST(Cluster, TopologyAndPaths) {
  Simulator sim;
  Cluster cluster(sim, ClusterConfig{});
  EXPECT_EQ(cluster.num_workers(), 10u);
  EXPECT_EQ(cluster.server_of(0), 0u);
  EXPECT_EQ(cluster.server_of(1), 0u);
  EXPECT_EQ(cluster.server_of(2), 1u);
  // Same-server pair: single PCIe hop.
  EXPECT_EQ(cluster.path(0, 1).size(), 1u);
  // Cross-server: tx + rx.
  EXPECT_EQ(cluster.path(0, 2).size(), 2u);
  // Same worker: free.
  EXPECT_TRUE(cluster.path(3, 3).empty());
}

TEST(Cluster, CrossServerTransferUsesNicBandwidth) {
  Simulator sim;
  ClusterConfig config;
  config.nic_bandwidth = 100.0;  // 100 B/s for easy arithmetic
  Cluster cluster(sim, config);
  Seconds done_at = -1;
  cluster.transfer(0, 2, 300.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 3.0, 1e-9);
}

TEST(Cluster, SameWorkerTransferIsFree) {
  Simulator sim;
  Cluster cluster(sim, ClusterConfig{});
  Seconds done_at = -1;
  cluster.transfer(4, 4, 1e12, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, 0.0);
}

TEST(Cluster, BackgroundJobsChangeTenancy) {
  Simulator sim;
  Cluster cluster(sim, ClusterConfig{});
  EXPECT_EQ(cluster.gpu(3).tenant_count(), 1);
  cluster.add_background_job(3);
  EXPECT_EQ(cluster.gpu(3).tenant_count(), 2);
  cluster.remove_background_job(3);
  EXPECT_EQ(cluster.gpu(3).tenant_count(), 1);
  EXPECT_THROW(cluster.remove_background_job(3), contract_error);
}

TEST(Cluster, NicBandwidthUpdates) {
  Simulator sim;
  Cluster cluster(sim, ClusterConfig{});
  cluster.set_nic_bandwidth(1, gbps(10));
  EXPECT_DOUBLE_EQ(cluster.nic_bandwidth(1), gbps(10));
  cluster.set_all_nic_bandwidth(gbps(40));
  for (std::size_t s = 0; s < cluster.num_servers(); ++s)
    EXPECT_DOUBLE_EQ(cluster.nic_bandwidth(s), gbps(40));
}

TEST(Cluster, PerWorkerGpuSpecs) {
  Simulator sim;
  ClusterConfig config;
  config.num_servers = 1;
  config.gpus_per_server = 2;
  config.gpu_specs = {p100_spec(), v100_spec()};
  Cluster cluster(sim, config);
  EXPECT_EQ(cluster.gpu(0).spec().name, "P100");
  EXPECT_EQ(cluster.gpu(1).spec().name, "V100");
}


TEST(Cluster, TwoTierTopologyRouting) {
  Simulator sim;
  ClusterConfig config;
  config.num_servers = 4;
  config.gpus_per_server = 1;
  config.servers_per_rack = 2;  // racks {0,1} and {2,3}
  config.nic_bandwidth = 100.0;
  config.rack_uplink_bandwidth = 100.0;
  Cluster cluster(sim, config);
  EXPECT_EQ(cluster.num_racks(), 2u);
  EXPECT_EQ(cluster.rack_of_server(1), 0u);
  EXPECT_EQ(cluster.rack_of_server(2), 1u);
  // Intra-rack: nic tx + nic rx only.
  EXPECT_EQ(cluster.path(0, 1).size(), 2u);
  // Cross-rack: nic tx + uplink tx + uplink rx + nic rx.
  EXPECT_EQ(cluster.path(0, 2).size(), 4u);
}

TEST(Cluster, OversubscribedUplinkBottlenecksCrossRackFlows) {
  // 2 servers per rack, NICs at 100 B/s, uplink at 100 B/s: two concurrent
  // cross-rack flows share the uplink (50 each) while two intra-rack flows
  // would run at full NIC rate.
  Simulator sim;
  ClusterConfig config;
  config.num_servers = 4;
  config.gpus_per_server = 1;
  config.servers_per_rack = 2;
  config.nic_bandwidth = 100.0;
  config.rack_uplink_bandwidth = 100.0;
  Cluster cluster(sim, config);
  Seconds t_a = -1, t_b = -1;
  cluster.transfer(0, 2, 100.0, [&] { t_a = sim.now(); });
  cluster.transfer(1, 3, 100.0, [&] { t_b = sim.now(); });
  sim.run();
  // Both bottlenecked by the shared 100 B/s uplink: 2 s each.
  EXPECT_NEAR(t_a, 2.0, 1e-9);
  EXPECT_NEAR(t_b, 2.0, 1e-9);
}

TEST(Cluster, IntraRackUnaffectedByUplink) {
  Simulator sim;
  ClusterConfig config;
  config.num_servers = 4;
  config.gpus_per_server = 1;
  config.servers_per_rack = 2;
  config.nic_bandwidth = 100.0;
  config.rack_uplink_bandwidth = 1.0;  // nearly dead uplink
  Cluster cluster(sim, config);
  Seconds done = -1;
  cluster.transfer(0, 1, 100.0, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 1.0, 1e-9);  // full NIC rate inside the rack
}

// ---------------------------------------------------------------------------
// Traces and background workload
// ---------------------------------------------------------------------------

TEST(ResourceTrace, TimeAnchoredEventsApply) {
  Simulator sim;
  Cluster cluster(sim, ClusterConfig{});
  ResourceTrace trace;
  trace.at_time(1.0, ResourceTrace::set_all_nic_bandwidth(gbps(10)));
  trace.at_time(2.0, ResourceTrace::add_gpu_job(0));
  int fired = 0;
  trace.install(sim, cluster, [&](const TraceEvent&) { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(cluster.nic_bandwidth(0), gbps(10));
  EXPECT_EQ(cluster.gpu(0).tenant_count(), 2);
}

TEST(ResourceTrace, IterationAnchoredEventsApplyOnce) {
  Simulator sim;
  Cluster cluster(sim, ClusterConfig{});
  ResourceTrace trace;
  trace.at_iteration(20, ResourceTrace::add_job_all_gpus());
  EXPECT_EQ(trace.apply_iteration(19, cluster), 0u);
  EXPECT_EQ(trace.apply_iteration(20, cluster), 1u);
  for (WorkerId w = 0; w < cluster.num_workers(); ++w)
    EXPECT_EQ(cluster.gpu(w).tenant_count(), 2);
}

TEST(ResourceTrace, DescribeIsHumanReadable) {
  const auto ev = ResourceTrace::set_all_nic_bandwidth(gbps(25));
  EXPECT_NE(ev.describe().find("25"), std::string::npos);
}

TEST(BackgroundWorkload, DeterministicAndBalanced) {
  Simulator sim;
  Cluster cluster(sim, ClusterConfig{});
  BackgroundWorkloadConfig config;
  config.horizon = 100.0;
  BackgroundWorkload workload(config, Rng(123));
  workload.install(sim, cluster);
  EXPECT_GT(workload.gpu_jobs() + workload.net_jobs(), 0u);
  sim.run();
  // Every arrival paired with a departure: tenancy returns to 1.
  for (WorkerId w = 0; w < cluster.num_workers(); ++w)
    EXPECT_EQ(cluster.gpu(w).tenant_count(), 1);
  for (std::size_t s = 0; s < cluster.num_servers(); ++s)
    EXPECT_NEAR(cluster.nic_bandwidth(s), gbps(100), 1.0);
}

// ---------------------------------------------------------------------------
// Timing-wheel semantics: exact timestamps despite bucketed placement.
// Every case runs under both queue kinds — same observable behaviour.
// ---------------------------------------------------------------------------

const EventQueueKind kBothKinds[] = {EventQueueKind::kHeap,
                                     EventQueueKind::kWheel};

TEST(SimulatorWheel, RunUntilPinsClockInsideABucket) {
  // 0.01000 and 0.01005 share one wheel tick (tick width 1/1024 s ≈
  // 0.977 ms). run_until at a point between them must fire only the first,
  // pin the clock to *exactly* the requested time — not a bucket edge —
  // and leave the later same-bucket event pending.
  for (const EventQueueKind kind : kBothKinds) {
    Simulator sim(kind);
    std::vector<double> fired;
    sim.at(0.01000, [&] { fired.push_back(sim.now()); });
    sim.at(0.01005, [&] { fired.push_back(sim.now()); });
    sim.run_until(0.01002);
    ASSERT_EQ(fired.size(), 1u) << sim.queue_name();
    EXPECT_EQ(fired[0], 0.01000);
    EXPECT_EQ(sim.now(), 0.01002);  // bit-exact, not rounded to a tick
    EXPECT_FALSE(sim.empty());
    sim.run();
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[1], 0.01005);
    EXPECT_EQ(sim.now(), 0.01005);
  }
}

TEST(SimulatorWheel, NonTickAlignedTimesFireExactly) {
  // 1/3 s is not representable as a tick multiple; the event must still
  // fire at the exact double it was scheduled at.
  for (const EventQueueKind kind : kBothKinds) {
    Simulator sim(kind);
    const Seconds t = 1.0 / 3.0;
    Seconds observed = -1.0;
    sim.at(t, [&] { observed = sim.now(); });
    sim.run();
    EXPECT_EQ(observed, t) << sim.queue_name();  // ==, not NEAR
  }
}

TEST(SimulatorWheel, WatchdogStyleCadenceKeepsExactInstants) {
  // An EMA-watchdog-style self-rescheduling cadence: fires at k * dt with
  // dt a non-tick-aligned period. Accumulated drift must stay within the
  // simulator's own float-slack model — each firing lands on the exact
  // double the previous callback computed.
  for (const EventQueueKind kind : kBothKinds) {
    Simulator sim(kind);
    const Seconds dt = 0.0007;  // sub-tick period: many events per bucket
    std::vector<Seconds> scheduled;
    std::vector<Seconds> observed;
    std::function<void()> tick = [&] {
      observed.push_back(sim.now());
      if (observed.size() < 50) {
        const Seconds next = sim.now() + dt;
        scheduled.push_back(next);
        sim.after(dt, [&] { tick(); }, "watchdog");
      }
    };
    scheduled.push_back(0.001);
    sim.at(0.001, [&] { tick(); }, "watchdog");
    sim.run();
    ASSERT_EQ(observed.size(), 50u);
    for (std::size_t i = 0; i < observed.size(); ++i)
      EXPECT_EQ(observed[i], scheduled[i]) << sim.queue_name() << " @" << i;
  }
}

TEST(SimulatorWheel, ZeroProgressGuardTripsIdenticallyUnderBothQueues) {
  for (const EventQueueKind kind : kBothKinds) {
    Simulator sim(kind);
    sim.set_zero_progress_bound(64);
    std::function<void()> loop = [&] { sim.at(sim.now(), [&] { loop(); }, "spin"); };
    sim.at(1.0, [&] { loop(); }, "spin");
    EXPECT_THROW(sim.run(), contract_error) << sim.queue_name();
  }
}

TEST(SimulatorWheel, LegitimateSameInstantCascadeStaysUnderGuard) {
  // A same-timestamp cascade shorter than the bound must complete: the
  // guard keys on exact event timestamps, not on wheel bucket occupancy
  // (many distinct timestamps share one bucket and must not count as one
  // instant).
  for (const EventQueueKind kind : kBothKinds) {
    Simulator sim(kind);
    sim.set_zero_progress_bound(64);
    int chained = 0;
    std::function<void()> chain = [&] {
      if (++chained < 40) sim.at(sim.now(), [&] { chain(); });
    };
    sim.at(1.0, [&] { chain(); });
    // Distinct-but-same-bucket timestamps: each resets the instant counter.
    for (int i = 0; i < 200; ++i)
      sim.at(2.0 + static_cast<Seconds>(i) * 1e-6, [] {});
    sim.run();
    EXPECT_EQ(chained, 40) << sim.queue_name();
  }
}

TEST(SimulatorWheel, QueueKindIsReportedAndEnvDefaultHolds) {
  Simulator wheel(EventQueueKind::kWheel);
  Simulator heap(EventQueueKind::kHeap);
  EXPECT_STREQ(wheel.queue_name(), "wheel");
  EXPECT_STREQ(heap.queue_name(), "heap");
  EXPECT_EQ(wheel.queue_kind(), EventQueueKind::kWheel);
  EXPECT_EQ(heap.queue_kind(), EventQueueKind::kHeap);
  EXPECT_THROW(parse_event_queue_kind("calendar"), contract_error);
  EXPECT_EQ(parse_event_queue_kind("heap"), EventQueueKind::kHeap);
  EXPECT_EQ(parse_event_queue_kind("wheel"), EventQueueKind::kWheel);
}

// ---------------------------------------------------------------------------
// Approximate flow mode: exact by default, bounded error when opted in
// ---------------------------------------------------------------------------

TEST(ApproxFlow, ExactModeIsTheDefaultEverywhere) {
  Simulator sim;
  FlowNetwork net(sim);
  EXPECT_FALSE(net.approximate_mode());
  ClusterConfig config;
  Cluster cluster(sim, config);
  EXPECT_FALSE(cluster.network().approximate_mode());
  EXPECT_EQ(net.approx_rerates_skipped(), 0u);
}

/// Shared fig3/fig9-style workload: staggered cross-resource transfers with
/// a mid-run capacity drop and recovery. Returns the completion time of the
/// last flow and the total bytes delivered at a fixed probe instant.
struct FlowWorkloadOutcome {
  Seconds last_completion = 0.0;
  Bytes delivered_at_probe = 0.0;
  std::uint64_t skipped = 0;
};

FlowWorkloadOutcome run_flow_workload(BytesPerSec bandwidth, bool approx,
                                      double epsilon) {
  Simulator sim;
  FlowNetwork net(sim);
  if (approx) net.set_approximate_mode(true, epsilon);
  const ResourceId nic_a = net.add_resource("a.nic", bandwidth);
  const ResourceId nic_b = net.add_resource("b.nic", bandwidth);

  FlowWorkloadOutcome out;
  // 24 staggered transfers; odd ones traverse both NICs (fig9's
  // cross-server contention), even ones only the first.
  for (int i = 0; i < 24; ++i) {
    const Seconds start = static_cast<Seconds>(i) * 0.02;
    sim.at(start, [&net, &out, &sim, nic_a, nic_b, i, bandwidth] {
      FlowSpec spec;
      spec.path = (i % 2 == 0) ? std::vector<ResourceId>{nic_a}
                               : std::vector<ResourceId>{nic_a, nic_b};
      spec.bytes = bandwidth * 0.05;  // ≈50 ms of solo wire time each
      spec.on_complete = [&out, &sim] { out.last_completion = sim.now(); };
      net.start_flow(std::move(spec));
    });
  }
  // fig3's mid-run fluctuation: capacity halves, then recovers.
  sim.at(0.3, [&net, nic_a, bandwidth] {
    net.set_capacity(nic_a, bandwidth * 0.5);
  });
  sim.at(0.8, [&net, nic_a, bandwidth] {
    net.set_capacity(nic_a, bandwidth);
  });
  sim.at(0.6, [&net, &out] { out.delivered_at_probe = net.total_bytes_delivered(); });
  sim.run();
  out.skipped = net.approx_rerates_skipped();
  return out;
}

class ApproxFlowGrid : public ::testing::TestWithParam<double> {};

TEST_P(ApproxFlowGrid, ThroughputErrorBoundedByEpsilon) {
  // The documented contract (docs/SIMULATOR.md): between full rating
  // passes the stale allocation is off by O(epsilon). Over a whole
  // workload the relative throughput error stays within a small multiple
  // of epsilon; 3x covers drift compounding across membership changes.
  const BytesPerSec bandwidth = gbps(GetParam());
  const double epsilon = 0.05;
  const FlowWorkloadOutcome exact =
      run_flow_workload(bandwidth, /*approx=*/false, epsilon);
  const FlowWorkloadOutcome approx =
      run_flow_workload(bandwidth, /*approx=*/true, epsilon);

  ASSERT_GT(exact.last_completion, 0.0);
  ASSERT_GT(approx.last_completion, 0.0);
  const double completion_err =
      std::abs(approx.last_completion - exact.last_completion) /
      exact.last_completion;
  EXPECT_LE(completion_err, 3.0 * epsilon)
      << "bandwidth=" << bandwidth << " exact=" << exact.last_completion
      << " approx=" << approx.last_completion;
  ASSERT_GT(exact.delivered_at_probe, 0.0);
  const double delivered_err =
      std::abs(approx.delivered_at_probe - exact.delivered_at_probe) /
      exact.delivered_at_probe;
  EXPECT_LE(delivered_err, 3.0 * epsilon);
  // The mode must actually be skipping work, or it is pointless.
  EXPECT_GT(approx.skipped, 0u);
  EXPECT_EQ(exact.skipped, 0u);
}

INSTANTIATE_TEST_SUITE_P(Fig3Bandwidths, ApproxFlowGrid,
                         ::testing::Values(1.0, 5.0, 10.0, 25.0, 50.0,
                                           100.0));

TEST(ApproxFlow, ApproximateRunsAreDeterministic) {
  const FlowWorkloadOutcome a = run_flow_workload(gbps(10), true, 0.05);
  const FlowWorkloadOutcome b = run_flow_workload(gbps(10), true, 0.05);
  EXPECT_EQ(a.last_completion, b.last_completion);
  EXPECT_EQ(a.delivered_at_probe, b.delivered_at_probe);
  EXPECT_EQ(a.skipped, b.skipped);
}

TEST(ApproxFlow, StaleDriftIsBoundedAndExactReratingRestoresFeasibility) {
  // The documented contract: a *full* rating pass never oversubscribes;
  // between passes stale rates may transiently overshoot by O(epsilon).
  // With epsilon = 0.05 the drift trigger fires as soon as a resource's
  // live share moves 5% off its snapshot, so the load can never exceed
  // capacity by more than ~2 epsilon.
  Simulator sim;
  FlowNetwork net(sim);
  const double epsilon = 0.05;
  net.set_approximate_mode(true, epsilon);
  const ResourceId r = net.add_resource("r", 100.0);
  std::vector<FlowId> flows;
  for (int i = 0; i < 8; ++i) {
    flows.push_back(net.start_flow(FlowSpec{{r}, 1e4, nullptr}));
    EXPECT_LE(net.resource_load(r), 100.0 * (1.0 + 2.0 * epsilon))
        << "after flow " << i;
  }
  // Dropping back to exact mode forces a progressive-filling pass: the
  // allocation must be exactly feasible (and saturating) again.
  net.set_approximate_mode(false);
  EXPECT_LE(net.resource_load(r), 100.0 * (1.0 + 1e-9));
  EXPECT_NEAR(net.resource_load(r), 100.0, 1e-6);
  for (const FlowId f : flows) net.cancel_flow(f);
  EXPECT_DOUBLE_EQ(net.resource_load(r), 0.0);
}

// ---------------------------------------------------------------------------
// Fault instants under the wheel: exact timestamps, not bucket edges
// ---------------------------------------------------------------------------

TEST(SimulatorWheel, FaultInstantsFireAtExactTimestamps) {
  // 0.123456 s is far from any tick edge. The worker-state callback must
  // observe the transition at that exact double under both queues.
  for (const EventQueueKind kind : kBothKinds) {
    Simulator sim(kind);
    ClusterConfig config;
    config.num_servers = 2;
    config.gpus_per_server = 1;
    Cluster cluster(sim, config);
    std::vector<std::pair<Seconds, bool>> transitions;
    cluster.set_worker_state_callback(
        [&](WorkerId, bool up) { transitions.emplace_back(sim.now(), up); });
    sim.at(0.123456, [&] { cluster.set_worker_down(0); });
    sim.at(0.654321, [&] { cluster.set_worker_up(0); });
    sim.run();
    ASSERT_EQ(transitions.size(), 2u) << sim.queue_name();
    EXPECT_EQ(transitions[0].first, 0.123456);
    EXPECT_FALSE(transitions[0].second);
    EXPECT_EQ(transitions[1].first, 0.654321);
    EXPECT_TRUE(transitions[1].second);
  }
}

}  // namespace
}  // namespace autopipe::sim
