// Co-tenancy tier (ctest label `cotenancy`): N concurrent AutoPipe jobs on
// one shared fabric, held to the fleet invariants docs/COTENANCY.md
// promises:
//
//  * no GPU is owned by two jobs at any instant (probed mid-run, not just
//    at the end);
//  * per-job mini-batch conservation holds throughout — injected ==
//    completed + dropped + active for every executor at every probe;
//  * every arbiter conflict resolves to exactly one winner, every loser is
//    denied and its doomed attempt aborted through the rollback path;
//  * fleet throughput is exactly the sum of per-job throughputs.
//
// The invariant sweep runs 50 seeded fleet shapes (2–4 tenants, all three
// arbiter policies, seed-varied preemption). The acceptance scenario pins
// the ISSUE's 4-job contested-GPU case under each policy and checks the
// resolution is deterministic. The tail of the file is the `--jobs-spec`
// reader: grammar unit tests plus the same fuzz harness the trace reader
// gets (truncate / bit-flip / interleave — parse or contract_error, never
// crash).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/job_manager.hpp"
#include "cluster/jobs_spec.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"
#include "partition/partition.hpp"
#include "pipeline/executor.hpp"
#include "sim/cluster.hpp"
#include "sim/simulator.hpp"

namespace autopipe {
namespace {

using cluster::FleetReport;
using cluster::FleetSpec;
using cluster::JobManager;
using cluster::JobSpec;
using cluster::PreemptSpec;

// ---------------------------------------------------------------------------
// Invariant probe: everything that must hold at *every* instant of a fleet
// run, returned as a description of the first violation ("" = clean).
// ---------------------------------------------------------------------------

std::string fleet_invariant_violation(const JobManager& manager,
                                      std::size_t num_workers) {
  std::ostringstream os;

  // Exclusive ownership: every worker sits in at most one job's owned set,
  // and the manager's owner map agrees with the per-job sets.
  std::vector<std::uint64_t> owner(num_workers, 0);
  for (std::size_t i = 0; i < manager.num_jobs(); ++i) {
    const cluster::JobRuntime& job = manager.job(i);
    for (sim::WorkerId w : job.owned) {
      if (w >= num_workers) {
        os << "job " << job.id << " owns out-of-range worker " << w;
        return os.str();
      }
      if (owner[w] != 0) {
        os << "worker " << w << " owned by jobs " << owner[w] << " and "
           << job.id << " at once";
        return os.str();
      }
      owner[w] = job.id;
    }
  }
  for (sim::WorkerId w = 0; w < num_workers; ++w) {
    if (manager.owner_of(w) != owner[w]) {
      os << "owner map says worker " << w << " belongs to job "
         << manager.owner_of(w) << " but the owned sets say " << owner[w];
      return os.str();
    }
  }

  for (std::size_t i = 0; i < manager.num_jobs(); ++i) {
    const cluster::JobRuntime& job = manager.job(i);

    // Routed-worker exclusion: a running job's partition may transiently
    // route a worker it lost to revocation (until its replan migrates off
    // it), but never a worker some *other* job owns.
    if (!job.finished) {
      for (sim::WorkerId w :
           job.executor->current_partition().all_workers()) {
        if (owner[w] != 0 && owner[w] != job.id) {
          os << "job " << job.id << " routes worker " << w
             << " owned by job " << owner[w];
          return os.str();
        }
      }
    }

    // Per-job mini-batch conservation across faults, revocations and
    // arbiter-killed switches.
    const auto& fs = job.executor->fault_stats();
    if (fs.injected !=
        fs.completed + fs.dropped + job.executor->active_batches()) {
      os << "job " << job.id << " batch conservation broken: injected "
         << fs.injected << " != completed " << fs.completed << " + dropped "
         << fs.dropped << " + active " << job.executor->active_batches();
      return os.str();
    }
  }
  return "";
}

// Per-round arbitration accounting recovered from the trace: every grant
// names its claim count, every losing claim is a deny instant causally
// chained to that grant. Returns "" when every conflict produced exactly
// one winner and claims-1 denials.
std::string arbitration_violation(const std::vector<trace::Event>& events,
                                  const FleetReport& report) {
  struct Round {
    std::size_t claims = 0;
    std::size_t denies = 0;
  };
  std::map<std::uint64_t, Round> rounds;  // grant eid -> round
  std::size_t guard_denies = 0;
  for (const trace::Event& ev : events) {
    if (ev.name == "arbiter_grant") {
      const std::string* claims = ev.find_arg("claims");
      if (claims == nullptr) return "arbiter_grant without a claims arg";
      rounds[ev.eid].claims =
          static_cast<std::size_t>(std::strtoull(claims->c_str(), nullptr, 10));
    } else if (ev.name == "arbiter_deny") {
      if (ev.find_arg("winner") == nullptr) {
        ++guard_denies;  // ownership-guard denial, not part of a round
        continue;
      }
      const auto it = rounds.find(ev.cause);
      if (it == rounds.end())
        return "arbiter_deny not chained to any arbiter_grant";
      ++it->second.denies;
    }
  }

  std::ostringstream os;
  std::size_t conflicts = 0, denies = 0;
  for (const auto& [eid, round] : rounds) {
    if (round.claims == 0 || round.denies != round.claims - 1) {
      os << "grant eid " << eid << " saw " << round.claims << " claims but "
         << round.denies << " denials (want claims-1)";
      return os.str();
    }
    if (round.claims >= 2) ++conflicts;
    denies += round.denies;
  }
  if (rounds.size() != report.grants) {
    os << "trace holds " << rounds.size() << " grants, report says "
       << report.grants;
    return os.str();
  }
  if (conflicts != report.conflicts) {
    os << "trace holds " << conflicts << " conflicts, report says "
       << report.conflicts;
    return os.str();
  }
  if (denies + guard_denies != report.denials) {
    os << "trace holds " << denies << "+" << guard_denies
       << " denials, report says " << report.denials;
    return os.str();
  }
  return "";
}

// ---------------------------------------------------------------------------
// 50-seed invariant sweep: fleet shape, arbiter policy and preemption
// timing all vary with the seed; the probe fires every 50 simulated
// milliseconds for the whole run.
// ---------------------------------------------------------------------------

class CotenancySeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CotenancySeeds, FleetInvariantsHoldThroughout) {
  const std::uint64_t seed = GetParam();
  sim::Simulator simulator;
  simulator.tracer().set_enabled(true);

  sim::ClusterConfig cluster_config;
  cluster_config.num_servers = 3;
  cluster_config.gpus_per_server = 2;
  sim::Cluster cluster(simulator, cluster_config);

  static const char* kPolicies[] = {"greedy", "priority", "auction"};
  static const char* kModels[] = {"alexnet", "resnet18", "vgg16"};

  FleetSpec fleet;
  fleet.arbiter = kPolicies[seed % 3];
  const std::size_t njobs = 2 + seed % 3;  // 2..4 tenants on 6 GPUs
  for (std::size_t k = 0; k < njobs; ++k) {
    JobSpec job;
    job.model = kModels[(seed + k) % 3];
    job.iterations = 12 + (seed + k) % 5;
    job.warmup = 3;
    job.priority = 1.0 + static_cast<double>((seed + k) % 4);
    fleet.jobs.push_back(job);
  }
  PreemptSpec preempt;
  preempt.worker =
      static_cast<sim::WorkerId>(seed % cluster.num_workers());
  preempt.at = 0.3 + 0.07 * static_cast<double>(seed % 7);
  preempt.duration = 0.5 + 0.1 * static_cast<double>(seed % 5);
  fleet.preempts.push_back(preempt);
  cluster::assign_default_workers(fleet, cluster.num_workers());

  JobManager manager(simulator, cluster, fleet);

  std::size_t probes = 0;
  std::vector<std::string> violations;
  auto probe = std::make_shared<std::function<void()>>();
  *probe = [&manager, &cluster, &simulator, &probes, &violations, probe] {
    ++probes;
    const std::string v =
        fleet_invariant_violation(manager, cluster.num_workers());
    if (!v.empty() && violations.size() < 5) {
      std::ostringstream os;
      os << "t=" << simulator.now() << ": " << v;
      violations.push_back(os.str());
    }
    simulator.after(0.05, [probe] { (*probe)(); }, "invariant_probe");
  };
  simulator.after(0.01, [probe] { (*probe)(); }, "invariant_probe");

  const FleetReport report = manager.run();

  EXPECT_GT(probes, 10u) << "probe barely ran";
  std::ostringstream all;
  for (const std::string& v : violations) all << v << "\n";
  EXPECT_TRUE(violations.empty()) << "seed " << seed << ":\n" << all.str();

  // Every tenant finishes its target and contributes a positive measured
  // throughput; fleet throughput is the *exact* sum of the per-job values.
  ASSERT_EQ(report.jobs.size(), njobs);
  double sum = 0.0;
  for (const FleetReport::JobSummary& j : report.jobs) {
    EXPECT_GT(j.report.throughput, 0.0) << "job " << j.id;
    EXPECT_GT(j.report.iterations, 0u) << "job " << j.id;
    sum += j.report.throughput;
  }
  EXPECT_DOUBLE_EQ(report.fleet_throughput, sum);
  EXPECT_GE(report.jain, 1.0 / static_cast<double>(njobs) - 1e-12);
  EXPECT_LE(report.jain, 1.0 + 1e-12);

  // Exactly one winner per claim round, claims-1 chained denials per
  // conflict, and the report's counters agree with the trace.
  const std::string arb =
      arbitration_violation(simulator.tracer().events(), report);
  EXPECT_TRUE(arb.empty()) << "seed " << seed << ": " << arb;
  EXPECT_GE(report.denials, report.conflicts);
  EXPECT_LE(report.contention_aborts, report.denials);
  std::size_t job_aborts = 0;
  for (const FleetReport::JobSummary& j : report.jobs)
    job_aborts += j.contention_aborts;
  EXPECT_EQ(job_aborts, report.contention_aborts);
}

INSTANTIATE_TEST_SUITE_P(FiftySeeds, CotenancySeeds,
                         ::testing::Range<std::uint64_t>(1, 51));

// ---------------------------------------------------------------------------
// Acceptance scenario: the ISSUE's 4-job fleet where the preempted GPU's
// return is contested, pinned under each arbiter policy.
// ---------------------------------------------------------------------------

struct GrantRound {
  std::string worker;
  std::uint64_t winner_job = 0;
  std::size_t claims = 0;
  std::vector<std::uint64_t> loser_jobs;  // from chained arbiter_deny events
};

struct ContestedOutcome {
  FleetReport report;
  std::size_t grants_for_preempted = 0;
  std::vector<GrantRound> rounds;  // every grant, in event order
};

constexpr double kContestedPriorities[] = {1.0, 4.0, 2.0, 1.5};

ContestedOutcome run_contested_fleet(const std::string& policy) {
  constexpr sim::WorkerId kPreempted = 1;
  sim::Simulator simulator;
  simulator.tracer().set_enabled(true);

  sim::ClusterConfig cluster_config;
  cluster_config.num_servers = 4;
  cluster_config.gpus_per_server = 2;
  sim::Cluster cluster(simulator, cluster_config);

  // Same shape as bench/cotenancy_fleet.cpp: mixed models with spread
  // priorities so gain-max and priority-max genuinely disagree.
  static const char* kModels[] = {"alexnet", "vgg16", "resnet18", "alexnet"};
  static const std::size_t kIterations[] = {30, 15, 25, 20};

  FleetSpec fleet;
  fleet.arbiter = policy;
  for (std::size_t k = 0; k < 4; ++k) {
    JobSpec job;
    job.model = kModels[k];
    job.iterations = kIterations[k];
    job.warmup = 5;
    job.priority = kContestedPriorities[k];
    fleet.jobs.push_back(job);
  }
  PreemptSpec preempt;
  preempt.worker = kPreempted;
  preempt.at = 0.8;
  preempt.duration = 1.0;
  fleet.preempts.push_back(preempt);
  cluster::assign_default_workers(fleet, cluster.num_workers());

  JobManager manager(simulator, cluster, fleet);

  ContestedOutcome out;
  out.report = manager.run();
  std::map<std::uint64_t, std::size_t> round_of;  // grant eid -> index
  for (const trace::Event& ev : simulator.tracer().events()) {
    if (ev.name == "arbiter_grant") {
      GrantRound round;
      if (const std::string* worker = ev.find_arg("worker"))
        round.worker = *worker;
      if (const std::string* job = ev.find_arg("job"))
        round.winner_job = std::strtoull(job->c_str(), nullptr, 10);
      if (const std::string* claims = ev.find_arg("claims"))
        round.claims = static_cast<std::size_t>(
            std::strtoull(claims->c_str(), nullptr, 10));
      if (round.worker == std::to_string(kPreempted))
        ++out.grants_for_preempted;
      round_of[ev.eid] = out.rounds.size();
      out.rounds.push_back(std::move(round));
    } else if (ev.name == "arbiter_deny" &&
               ev.find_arg("winner") != nullptr) {
      const auto it = round_of.find(ev.cause);
      if (it == round_of.end()) {
        ADD_FAILURE() << "arbiter_deny not chained to any grant";
        continue;
      }
      if (const std::string* job = ev.find_arg("job"))
        out.rounds[it->second].loser_jobs.push_back(
            std::strtoull(job->c_str(), nullptr, 10));
    }
  }
  return out;
}

class ContestedGpu : public ::testing::TestWithParam<const char*> {};

TEST_P(ContestedGpu, ResolvesToOneWinnerDeterministically) {
  const std::string policy = GetParam();
  const ContestedOutcome a = run_contested_fleet(policy);

  // Exactly one winning reconfiguration commits for the preempted GPU's
  // return, under every policy.
  EXPECT_EQ(a.grants_for_preempted, 1u) << policy;
  // Somewhere in the run two controllers requested the same freed GPU, and
  // every such conflict resolved to one winner plus cleanly-aborted rivals.
  EXPECT_GE(a.report.conflicts, 1u) << policy;
  EXPECT_GE(a.report.contention_aborts, 1u) << policy;
  std::size_t contested_rounds = 0;
  for (const GrantRound& r : a.rounds) {
    EXPECT_NE(r.winner_job, 0u) << policy;
    EXPECT_LE(r.winner_job, a.report.jobs.size()) << policy;
    ASSERT_GE(r.claims, 1u) << policy;
    // One winner, claims-1 denied rivals, and the winner never denied.
    EXPECT_EQ(r.loser_jobs.size(), r.claims - 1) << policy;
    for (std::uint64_t loser : r.loser_jobs)
      EXPECT_NE(loser, r.winner_job) << policy << " worker " << r.worker;
    if (r.claims >= 2) ++contested_rounds;
  }
  EXPECT_EQ(contested_rounds, a.report.conflicts) << policy;
  // Every tenant still finishes.
  for (const FleetReport::JobSummary& j : a.report.jobs)
    EXPECT_GT(j.report.throughput, 0.0) << policy << " job " << j.id;

  // Same fleet, same policy, fresh simulator: the arbitration must replay
  // identically — every round's worker, winner and claim count, and every
  // fleet counter.
  const ContestedOutcome b = run_contested_fleet(policy);
  ASSERT_EQ(a.rounds.size(), b.rounds.size()) << policy;
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].worker, b.rounds[i].worker) << policy;
    EXPECT_EQ(a.rounds[i].winner_job, b.rounds[i].winner_job) << policy;
    EXPECT_EQ(a.rounds[i].claims, b.rounds[i].claims) << policy;
    EXPECT_EQ(a.rounds[i].loser_jobs, b.rounds[i].loser_jobs) << policy;
  }
  EXPECT_EQ(a.report.grants, b.report.grants) << policy;
  EXPECT_EQ(a.report.denials, b.report.denials) << policy;
  EXPECT_EQ(a.report.contention_aborts, b.report.contention_aborts) << policy;
  EXPECT_DOUBLE_EQ(a.report.fleet_throughput, b.report.fleet_throughput)
      << policy;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ContestedGpu,
                         ::testing::Values("greedy", "priority", "auction"));

TEST(ContestedGpu, PriorityArbiterNeverPicksALowerPriorityClaimant) {
  // Under the priority policy, every conflict round's winner must carry a
  // priority >= every denied rival's — the defining property of the policy,
  // checked against the real claim rounds the fleet produced.
  const ContestedOutcome o = run_contested_fleet("priority");
  std::size_t conflicted = 0;
  for (const GrantRound& r : o.rounds) {
    if (r.claims < 2) continue;
    ++conflicted;
    const double winner_priority = kContestedPriorities[r.winner_job - 1];
    for (std::uint64_t loser : r.loser_jobs)
      EXPECT_GE(winner_priority, kContestedPriorities[loser - 1])
          << "worker " << r.worker << ": job " << r.winner_job << " beat job "
          << loser;
  }
  EXPECT_GE(conflicted, 1u);
}

// ---------------------------------------------------------------------------
// --jobs-spec reader: grammar unit tests.
// ---------------------------------------------------------------------------

const char kBaseSpec[] =
    "# two-tenant fleet\n"
    "arbiter = priority\n"
    "claim-window = 0.05\n"
    "job = model=alexnet iterations=30 warmup=5 priority=2 workers=0..3\n"
    "job = model=resnet18 iterations=20 priority=1.5\n"
    "preempt = worker=2 at=1.5 for=2.0\n";

TEST(JobsSpec, ParsesFullGrammar) {
  const FleetSpec spec = cluster::parse_jobs_spec(kBaseSpec);
  EXPECT_EQ(spec.arbiter, "priority");
  EXPECT_DOUBLE_EQ(spec.claim_window, 0.05);
  ASSERT_EQ(spec.jobs.size(), 2u);
  EXPECT_EQ(spec.jobs[0].model, "alexnet");
  EXPECT_EQ(spec.jobs[0].iterations, 30u);
  EXPECT_EQ(spec.jobs[0].warmup, 5u);
  EXPECT_DOUBLE_EQ(spec.jobs[0].priority, 2.0);
  EXPECT_EQ(spec.jobs[0].workers,
            (std::vector<sim::WorkerId>{0, 1, 2, 3}));
  EXPECT_EQ(spec.jobs[1].model, "resnet18");
  EXPECT_TRUE(spec.jobs[1].workers.empty());  // filled by the default split
  ASSERT_EQ(spec.preempts.size(), 1u);
  EXPECT_EQ(spec.preempts[0].worker, 2u);
  EXPECT_DOUBLE_EQ(spec.preempts[0].at, 1.5);
  EXPECT_DOUBLE_EQ(spec.preempts[0].duration, 2.0);
}

TEST(JobsSpec, SemicolonsCommentsAndWorkerListForms) {
  const FleetSpec spec = cluster::parse_jobs_spec(
      "arbiter = auction; # inline comment\n"
      "job = model=vgg16 iterations=10 warmup=2 workers=3..5,1,3");
  EXPECT_EQ(spec.arbiter, "auction");
  ASSERT_EQ(spec.jobs.size(), 1u);
  // Ranges and comma lists merge, sorted and deduplicated.
  EXPECT_EQ(spec.jobs[0].workers,
            (std::vector<sim::WorkerId>{1, 3, 4, 5}));
}

TEST(JobsSpec, DiagnosticsNameTheOffendingLine) {
  const auto message_of = [](const std::string& text) -> std::string {
    try {
      (void)cluster::parse_jobs_spec(text);
    } catch (const contract_error& e) {
      return e.what();
    }
    return "";
  };
  EXPECT_NE(message_of("arbiter = greedy\narbiter = auction\n"
                       "job = model=alexnet")
                .find("line 2: duplicate 'arbiter'"),
            std::string::npos);
  EXPECT_NE(message_of("claim-window = 0.1\nclaim-window = 0.2\n"
                       "job = model=alexnet")
                .find("line 2: duplicate 'claim-window'"),
            std::string::npos);
  EXPECT_NE(message_of("job = model=alexnet\nbudget = 3")
                .find("line 2: unknown key 'budget'"),
            std::string::npos);
  EXPECT_NE(message_of("job = model=alexnet colour=red")
                .find("unknown job attribute 'colour'"),
            std::string::npos);
}

TEST(JobsSpec, RejectsMalformedInput) {
  EXPECT_THROW(cluster::parse_jobs_spec(""), contract_error);
  EXPECT_THROW(cluster::parse_jobs_spec("arbiter = greedy"), contract_error);
  EXPECT_THROW(cluster::parse_jobs_spec("arbiter = fifo\n"
                                        "job = model=alexnet"),
               contract_error);
  EXPECT_THROW(cluster::parse_jobs_spec("job = model=not-a-model"),
               contract_error);
  EXPECT_THROW(cluster::parse_jobs_spec("job = iterations=10"),
               contract_error);  // needs model=
  EXPECT_THROW(
      cluster::parse_jobs_spec("job = model=alexnet iterations=5 warmup=5"),
      contract_error);
  EXPECT_THROW(
      cluster::parse_jobs_spec("job = model=alexnet priority=0"),
      contract_error);
  EXPECT_THROW(
      cluster::parse_jobs_spec("job = model=alexnet workers=5..2"),
      contract_error);
  EXPECT_THROW(cluster::parse_jobs_spec("job = model=alexnet\n"
                                        "preempt = worker=1 at=2"),
               contract_error);  // preempt needs for=
  EXPECT_THROW(cluster::parse_jobs_spec("claim-window = -1\n"
                                        "job = model=alexnet"),
               contract_error);
}

TEST(JobsSpec, RejectsOversizedFleet) {
  std::string text;
  for (int i = 0; i < 65; ++i) text += "job = model=alexnet\n";
  EXPECT_THROW(cluster::parse_jobs_spec(text), contract_error);
}

TEST(JobsSpec, AssignDefaultWorkersSplitsTheUnclaimedPool) {
  FleetSpec spec = cluster::parse_jobs_spec(
      "job = model=alexnet workers=0\n"
      "job = model=alexnet\n"
      "job = model=alexnet\n");
  cluster::assign_default_workers(spec, 6);
  // Pool {1..5} splits 3/2 across the two unassigned jobs in order.
  EXPECT_EQ(spec.jobs[0].workers, (std::vector<sim::WorkerId>{0}));
  EXPECT_EQ(spec.jobs[1].workers, (std::vector<sim::WorkerId>{1, 2, 3}));
  EXPECT_EQ(spec.jobs[2].workers, (std::vector<sim::WorkerId>{4, 5}));
}

TEST(JobsSpec, AssignDefaultWorkersRejectsBadOwnership) {
  const auto parse = [](const char* text) {
    return cluster::parse_jobs_spec(text);
  };
  // Two jobs claiming the same worker.
  {
    FleetSpec spec = parse(
        "job = model=alexnet workers=0..2\n"
        "job = model=alexnet workers=2..4\n");
    try {
      cluster::assign_default_workers(spec, 6);
      FAIL() << "overlapping worker sets accepted";
    } catch (const contract_error& e) {
      EXPECT_NE(std::string(e.what()).find(
                    "worker 2 is claimed by two jobs"),
                std::string::npos)
          << e.what();
    }
  }
  // Out-of-range explicit claim.
  {
    FleetSpec spec = parse("job = model=alexnet workers=9\n");
    EXPECT_THROW(cluster::assign_default_workers(spec, 6), contract_error);
  }
  // More unassigned jobs than free workers.
  {
    FleetSpec spec = parse(
        "job = model=alexnet workers=0..4\n"
        "job = model=alexnet\n"
        "job = model=alexnet\n");
    EXPECT_THROW(cluster::assign_default_workers(spec, 6), contract_error);
  }
  // Preemption targeting a worker the cluster does not have.
  {
    FleetSpec spec = parse(
        "job = model=alexnet\npreempt = worker=9 at=1 for=1\n");
    EXPECT_THROW(cluster::assign_default_workers(spec, 6), contract_error);
  }
}

TEST(JobsSpec, LoadResolvesInlineTextAndFiles) {
  EXPECT_EQ(cluster::load_jobs_spec("job = model=alexnet").jobs.size(), 1u);

  const std::string path = ::testing::TempDir() + "cotenancy_test.jobs";
  {
    std::ofstream out(path);
    out << kBaseSpec;
  }
  const FleetSpec spec = cluster::load_jobs_spec("@" + path);
  EXPECT_EQ(spec.jobs.size(), 2u);
  EXPECT_EQ(spec.arbiter, "priority");

  EXPECT_THROW(cluster::load_jobs_spec("@/nonexistent/fleet.jobs"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Fuzz-style reader robustness, mirroring the trace-reader harness
// (analysis_test.cpp): the reader's whole contract is "parse or throw
// contract_error" — never crash, hang or leak a foreign exception type.
// ---------------------------------------------------------------------------

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

/// True when the reader accepts the text, false when it rejects it with
/// contract_error. Any other exception propagates into gtest and fails the
/// test — that is the point of the harness.
bool parses_cleanly(const std::string& text) {
  try {
    (void)cluster::parse_jobs_spec(text);
    return true;
  } catch (const contract_error&) {
    return false;
  }
}

std::string flip_random_bytes(std::string text, Rng& rng) {
  if (text.empty()) return text;
  const std::int64_t flips = rng.uniform_int(1, 16);
  for (std::int64_t f = 0; f < flips; ++f) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
    text[pos] = static_cast<char>(rng.uniform_int(0, 255));
  }
  return text;
}

std::string truncate_random(const std::string& text, Rng& rng) {
  const auto cut = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(text.size())));
  return text.substr(0, cut);
}

class JobsSpecFuzz : public ::testing::TestWithParam<int> {};

// Whole-line prefixes of a valid spec either parse (enough lines survive to
// declare a job) or are rejected with a diagnostic — never anything else.
TEST_P(JobsSpecFuzz, WholeLinePrefixParsesOrRejects) {
  static const std::vector<std::string> lines = split_lines(kBaseSpec);
  ASSERT_FALSE(lines.empty());
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u + 401u);
  const auto keep = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(lines.size())));
  std::string text;
  for (std::size_t i = 0; i < keep; ++i) text += lines[i] + '\n';
  const bool ok = parses_cleanly(text);
  // A prefix that kept any job line must parse; one that kept none must be
  // rejected ("declares no jobs").
  EXPECT_EQ(ok, keep >= 4);
}

// Two valid specs' lines merged in arbitrary order (each stream's own order
// preserved) must land in parse-or-reject: the merge can double a scalar
// key, which is a diagnostic, not a crash.
TEST_P(JobsSpecFuzz, InterleavedSpecStreamsParseOrReject) {
  static const std::vector<std::string> ours = split_lines(kBaseSpec);
  static const std::vector<std::string> theirs = split_lines(
      "claim-window = 0.2\n"
      "job = model=vgg16 iterations=8 warmup=1 workers=4,5\n"
      "preempt = worker=0 at=0.5 for=0.5\n");
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u + 503u);
  std::string text;
  std::size_t i = 0, j = 0;
  while (i < ours.size() || j < theirs.size()) {
    const bool take_ours =
        j >= theirs.size() || (i < ours.size() && rng.chance(0.5));
    text += (take_ours ? ours[i++] : theirs[j++]) + '\n';
  }
  (void)parses_cleanly(text);  // either outcome is fine; escapes are not
}

// Arbitrary corruption — byte-level truncation (usually mid-line), random
// byte flips, and both at once — must always land in parse-or-reject.
TEST_P(JobsSpecFuzz, ArbitraryCorruptionParsesOrRejects) {
  static const std::string base(kBaseSpec);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u + 601u);
  std::string text;
  switch (GetParam() % 3) {
    case 0:
      text = truncate_random(base, rng);
      break;
    case 1:
      text = flip_random_bytes(base, rng);
      break;
    default:
      text = flip_random_bytes(truncate_random(base, rng), rng);
      break;
  }
  (void)parses_cleanly(text);
}

INSTANTIATE_TEST_SUITE_P(SeededCorruptions, JobsSpecFuzz,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace autopipe
