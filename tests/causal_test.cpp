// Causal tracing and the blame engine, end to end: eid/cause stamping in
// the recorder, ambient-cause threading across the simulator's event queue
// (both implementations), round-tripping through the text format, DAG
// reconstruction, the causal critical path cross-validated against the
// interval-based one, and blame correctly walking a slow window back to
// the injected fault on the golden bandwidth-drop scenario.
//
// Forward compatibility rides along: the committed pre-causal golden
// (tests/golden/bandwidth_drop_precausal.trace) must keep parsing with the
// new reader, and traces carrying fields this build has never heard of
// must skip-and-count instead of failing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/causal.hpp"
#include "analysis/critical_path.hpp"
#include "analysis/trace_reader.hpp"
#include "analysis/trace_view.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"
#include "golden_scenario.hpp"
#include "sim/simulator.hpp"

namespace autopipe {
namespace {

using analysis::BlameReport;
using analysis::CausalChain;
using analysis::CausalGraph;
using analysis::ReadStats;
using trace::Category;
using trace::Event;
using trace::TraceRecorder;

std::string golden_path(const std::string& name) {
  return std::string(AUTOPIPE_GOLDEN_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

#if AUTOPIPE_TRACING

// ---------------------------------------------------------------------------
// Recorder eid/cause semantics
// ---------------------------------------------------------------------------

TEST(CausalRecorder, EidsAreMonotonicFromOne) {
  TraceRecorder rec;
  rec.set_enabled(true);
  EXPECT_EQ(rec.instant(Category::kMark, "a", 0.0, 0, 0), 1u);
  EXPECT_EQ(rec.complete(Category::kCompute, "b", 0.0, 1.0, 0, 0), 2u);
  EXPECT_EQ(rec.async_begin(Category::kComm, "c", 1, 1.0), 3u);
  EXPECT_EQ(rec.async_end(Category::kComm, "c", 1, 2.0), 4u);
}

TEST(CausalRecorder, AmbientCauseIsThePreviousEvent) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.instant(Category::kMark, "a", 0.0, 0, 0);
  rec.instant(Category::kMark, "b", 1.0, 0, 0);
  ASSERT_EQ(rec.events().size(), 2u);
  EXPECT_EQ(rec.events()[0].cause, 0u);  // first event is a root
  EXPECT_EQ(rec.events()[1].cause, 1u);
}

TEST(CausalRecorder, ExplicitCauseOverridesAmbient) {
  TraceRecorder rec;
  rec.set_enabled(true);
  const std::uint64_t a = rec.instant(Category::kMark, "a", 0.0, 0, 0);
  rec.instant(Category::kMark, "b", 1.0, 0, 0);
  rec.instant(Category::kMark, "c", 2.0, 0, 0, {}, a);
  EXPECT_EQ(rec.events()[2].cause, a);
  // Explicit zero means "root", not "ambient".
  rec.instant(Category::kMark, "d", 3.0, 0, 0, {}, 0);
  EXPECT_EQ(rec.events()[3].cause, 0u);
}

TEST(CausalRecorder, CountersCarryNoEidAndKeepAmbientIntact) {
  TraceRecorder rec;
  rec.set_enabled(true);
  const std::uint64_t a = rec.instant(Category::kMark, "a", 0.0, 0, 0);
  rec.counter(Category::kComm, "load:x", 0.5, 1.0);
  rec.instant(Category::kMark, "b", 1.0, 0, 0);
  EXPECT_EQ(rec.events()[1].eid, 0u);
  EXPECT_EQ(rec.events()[1].cause, 0u);
  EXPECT_EQ(rec.events()[2].cause, a);  // the counter did not become a cause
}

TEST(CausalRecorder, ClearResetsEidsAndAmbient) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.instant(Category::kMark, "a", 0.0, 0, 0);
  rec.clear();
  EXPECT_EQ(rec.instant(Category::kMark, "b", 0.0, 0, 0), 1u);
  EXPECT_EQ(rec.events()[0].cause, 0u);
}

// ---------------------------------------------------------------------------
// Ambient threading across the event queue
// ---------------------------------------------------------------------------

class CausalThreading
    : public ::testing::TestWithParam<sim::EventQueueKind> {};

// An event recorded inside a callback is caused by the event whose callback
// *scheduled* that callback — the chain crosses the queue hop even though
// other callbacks ran in between.
TEST_P(CausalThreading, CauseCrossesTheQueueHop) {
  sim::Simulator sim(GetParam());
  sim.tracer().set_enabled(true);
  std::uint64_t parent_eid = 0;
  sim.at(0.0, [&] {
    parent_eid = sim.tracer().instant(Category::kMark, "parent", 0.0, 0, 0);
    sim.at(2.0, [&] {
      sim.tracer().instant(Category::kMark, "child", 2.0, 0, 0);
    });
  });
  // An unrelated callback fires between parent and child and records its
  // own event; the child's cause must still be the parent.
  sim.at(1.0, [&] {
    sim.tracer().instant(Category::kMark, "bystander", 1.0, 0, 0);
  });
  sim.run();
  const std::vector<Event>& events = sim.tracer().events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[2].name, "child");
  EXPECT_EQ(events[2].cause, parent_eid);
}

INSTANTIATE_TEST_SUITE_P(BothQueues, CausalThreading,
                         ::testing::Values(sim::EventQueueKind::kHeap,
                                           sim::EventQueueKind::kWheel),
                         [](const auto& info) {
                           return info.param == sim::EventQueueKind::kHeap
                                      ? "heap"
                                      : "wheel";
                         });

// ---------------------------------------------------------------------------
// Text round-trip and the Chrome flow events
// ---------------------------------------------------------------------------

TEST(CausalRoundTrip, TextSinkPreservesEveryEidAndCause) {
  const auto capture = test_scenarios::run_golden_scenario();
  std::istringstream is(capture.text);
  const std::vector<Event> parsed = analysis::parse_text(is);
  ASSERT_EQ(parsed.size(), capture.events.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].eid, capture.events[i].eid) << "event " << i;
    EXPECT_EQ(parsed[i].cause, capture.events[i].cause) << "event " << i;
  }
}

TEST(CausalRoundTrip, ChromeJsonEmitsOneFlowPairPerResolvableEdge) {
  TraceRecorder rec;
  rec.set_enabled(true);
  const std::uint64_t a =
      rec.complete(Category::kCompute, "fp", 0.0, 1.0, 0, 0);
  rec.complete(Category::kComm, "act", 1.0, 2.0, 0, 0, {}, a);
  rec.instant(Category::kMark, "done", 2.0, 0, 0);  // ambient: the act span
  rec.instant(Category::kMark, "orphan", 3.0, 0, 0, {}, 999);  // dangling
  std::ostringstream json;
  rec.write_chrome_json(json);
  const std::string out = json.str();
  // Two resolvable edges (fp→act, act→done); the dangling cause emits no
  // pair. Each edge is one "s" plus one "f" record.
  std::size_t pairs = 0;
  for (std::string::size_type pos = out.find("\"cat\":\"causal\"");
       pos != std::string::npos;
       pos = out.find("\"cat\":\"causal\"", pos + 1)) {
    ++pairs;
  }
  EXPECT_EQ(pairs, 4u);  // 2 edges × (s + f)
  EXPECT_NE(out.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(out.find("\"bp\":\"e\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// DAG reconstruction
// ---------------------------------------------------------------------------

TEST(CausalGraphTest, GoldenScenarioBuildsACleanDag) {
  const auto capture = test_scenarios::run_golden_scenario();
  CausalGraph g(capture.events);
  EXPECT_GT(g.causal_events(), 100u);
  EXPECT_EQ(g.dangling_causes(), 0u);
  for (const analysis::CausalEdge& e : g.edges()) {
    // A cause is always recorded before its effect.
    EXPECT_LT(e.parent, e.child);
    EXPECT_GE(e.contribution, 0.0);
    EXPECT_FALSE(e.cls.empty());
  }
}

TEST(CausalGraphTest, HeapAndWheelProduceIdenticalEdges) {
  const auto heap =
      test_scenarios::run_golden_scenario(sim::EventQueueKind::kHeap);
  const auto wheel =
      test_scenarios::run_golden_scenario(sim::EventQueueKind::kWheel);
  ASSERT_EQ(heap.events.size(), wheel.events.size());
  for (std::size_t i = 0; i < heap.events.size(); ++i) {
    EXPECT_EQ(heap.events[i].eid, wheel.events[i].eid) << "event " << i;
    EXPECT_EQ(heap.events[i].cause, wheel.events[i].cause) << "event " << i;
  }
}

// ---------------------------------------------------------------------------
// Critical path cross-validation
// ---------------------------------------------------------------------------

// The causal chain ending at the last event and the interval-inferred
// critical path measure the same run: both must span the full wall clock.
TEST(CausalCriticalPath, AgreesWithIntervalBasedOnGoldenScenario) {
  const auto capture = test_scenarios::run_golden_scenario();
  CausalGraph g(capture.events);
  const CausalChain chain = analysis::critical_chain(g);
  ASSERT_FALSE(chain.links.empty());

  const analysis::TraceView view(capture.events);
  const analysis::CriticalPath interval =
      analysis::extract_critical_path(view);
  EXPECT_NEAR(chain.duration, interval.wall_clock,
              1e-6 * interval.wall_clock);
  // The weighted length telescopes to the same span (clamping can only
  // add, never subtract).
  EXPECT_GE(chain.weighted, chain.duration - 1e-12);
  EXPECT_NEAR(chain.weighted, chain.duration, 1e-3 * chain.duration);
}

// ---------------------------------------------------------------------------
// Blame on the golden bandwidth drop
// ---------------------------------------------------------------------------

TEST(Blame, GoldenBandwidthDropRootsAtTheInjectedFault) {
  const auto capture = test_scenarios::run_golden_scenario();
  CausalGraph g(capture.events);
  const analysis::TraceView view(capture.events);
  const BlameReport report = analysis::blame_window(g, 0.0,
                                                    view.wall_clock());
  ASSERT_FALSE(report.chain.links.empty());
  ASSERT_NE(report.root_cause, CausalGraph::npos);
  const Event& rc = g.events()[report.root_cause];
  EXPECT_EQ(rc.category, Category::kResource);
  EXPECT_EQ(rc.name, "resource_event");
  // The dominant chain passes through the bandwidth-change instant itself.
  bool chain_names_nic_bw = false;
  for (const analysis::ChainLink& l : report.chain.links) {
    if (g.events()[l.event].name == "nic_bw") chain_names_nic_bw = true;
  }
  EXPECT_TRUE(chain_names_nic_bw);
}

TEST(Blame, SlowIterationAfterDropStillReachesTheFault) {
  const auto capture = test_scenarios::run_golden_scenario();
  CausalGraph g(capture.events);
  const analysis::TraceView view(capture.events);
  // Iteration 6 is the first one completed at the dropped bandwidth.
  const BlameReport report = analysis::blame_iteration(g, view, 6);
  ASSERT_NE(report.root_cause, CausalGraph::npos);
  EXPECT_EQ(g.events()[report.root_cause].name, "resource_event");
}

TEST(Blame, LedgerNamesTheStallMechanisms) {
  const auto capture = test_scenarios::run_golden_scenario();
  CausalGraph g(capture.events);
  const analysis::TraceView view(capture.events);
  const BlameReport report = analysis::blame_window(g, 0.0,
                                                    view.wall_clock());
  ASSERT_FALSE(report.ledger.empty());
  EXPECT_GT(report.ledger_seconds, 0.0);
  bool saw_flow_stall = false, saw_stage_starve = false, saw_bubble = false;
  for (const analysis::LedgerEntry& e : report.ledger) {
    if (e.cls == "flow_stall") saw_flow_stall = true;
    if (e.cls == "stage_starve") saw_stage_starve = true;
    if (e.cls == "bubble") saw_bubble = true;
    EXPECT_GE(e.share, 0.0);
    EXPECT_LE(e.share, 1.0 + 1e-12);
  }
  EXPECT_TRUE(saw_flow_stall);
  EXPECT_TRUE(saw_stage_starve);
  EXPECT_TRUE(saw_bubble);
}

TEST(Blame, EmptyWindowReportsNoChain) {
  const auto capture = test_scenarios::run_golden_scenario();
  CausalGraph g(capture.events);
  const BlameReport report = analysis::blame_window(g, 1e6, 2e6);
  EXPECT_TRUE(report.chain.links.empty());
  EXPECT_EQ(report.root_cause, CausalGraph::npos);
  EXPECT_EQ(report.window_events, 0u);
}

TEST(Blame, RenderAndJsonAreDeterministic) {
  const auto capture = test_scenarios::run_golden_scenario();
  CausalGraph g(capture.events);
  const analysis::TraceView view(capture.events);
  const BlameReport report =
      analysis::blame_window(g, 0.0, view.wall_clock());
  std::ostringstream a, b, ja, jb;
  analysis::render_blame(report, g, 10, a);
  analysis::render_blame(report, g, 10, b);
  analysis::write_blame_json(report, g, ja);
  analysis::write_blame_json(report, g, jb);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(ja.str(), jb.str());
  EXPECT_NE(a.str().find("root cause:"), std::string::npos);
  EXPECT_NE(ja.str().find("\"schema\": \"autopipe-blame-v1\""),
            std::string::npos);
}

#endif  // AUTOPIPE_TRACING

// ---------------------------------------------------------------------------
// Forward/backward compatibility (runs in both tracing configurations: the
// readers and goldens do not depend on the recorder)
// ---------------------------------------------------------------------------

// Old trace, new reader: the pre-causal golden still parses cleanly — no
// eids, no causes, zero leniency counters — and the blame engine reports
// the absence instead of inventing a graph.
TEST(CausalCompat, PreCausalGoldenParsesWithZeroEids) {
  std::istringstream is(
      read_file(golden_path("bandwidth_drop_precausal.trace")));
  ReadStats stats;
  const std::vector<Event> events = analysis::parse_text(is, &stats);
  ASSERT_GT(events.size(), 100u);
  EXPECT_TRUE(stats.clean());
  for (const Event& ev : events) {
    EXPECT_EQ(ev.eid, 0u);
    EXPECT_EQ(ev.cause, 0u);
  }
  CausalGraph g(events);
  EXPECT_EQ(g.causal_events(), 0u);
  const BlameReport report = analysis::blame_window(g, 0.0, 1.0);
  EXPECT_TRUE(report.chain.links.empty());
}

// New trace, new reader: the causal golden round-trips with clean stats.
TEST(CausalCompat, CausalGoldenParsesCleanly) {
  std::istringstream is(read_file(golden_path("bandwidth_drop.trace")));
  ReadStats stats;
  const std::vector<Event> events = analysis::parse_text(is, &stats);
  ASSERT_GT(events.size(), 100u);
  EXPECT_TRUE(stats.clean());
  CausalGraph g(events);
  EXPECT_GT(g.causal_events(), 100u);
  EXPECT_EQ(g.dangling_causes(), 0u);
}

// Newer-writer trace, this reader: unknown key=value fields ride along as
// args, unknown categories/phases and bare tokens skip-and-count.
TEST(CausalCompat, FutureFieldsSkipAndCount) {
  std::istringstream is(
      "0.5 compute X fp pid=0 tid=0 dur=1.000000000 eid=3 cause=1 "
      "gpu_temp=83 batch=1\n"
      "0.6 quantum X tunnel pid=0 tid=0 dur=1.000000000\n"
      "0.7 compute Q fp pid=0 tid=0\n"
      "0.8 compute i note pid=0 tid=0 danglingtoken\n");
  ReadStats stats;
  const std::vector<Event> events = analysis::parse_text(is, &stats);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].eid, 3u);
  EXPECT_EQ(events[0].cause, 1u);
  ASSERT_NE(events[0].find_arg("gpu_temp"), nullptr);
  EXPECT_EQ(*events[0].find_arg("gpu_temp"), "83");
  ASSERT_NE(events[0].find_arg("batch"), nullptr);
  EXPECT_EQ(stats.skipped_lines, 2u);   // unknown category + unknown phase
  EXPECT_EQ(stats.dropped_tokens, 1u);  // the bare token continued nothing
  EXPECT_FALSE(stats.clean());
}

// An `id=` token outside 'b'/'e' phases is an ordinary arg (switch instants
// carry one), while on async delimiters it is the structural pairing id.
TEST(CausalCompat, IdFieldIsPhaseAware) {
  std::istringstream is(
      "0.5 switch i switch_request pid=1001 tid=0 eid=9 id=1\n"
      "0.6 comm b flow pid=1000 tid=0 id=7 eid=10 bytes=5\n");
  const std::vector<Event> events = analysis::parse_text(is);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].id, 0u);
  ASSERT_NE(events[0].find_arg("id"), nullptr);
  EXPECT_EQ(*events[0].find_arg("id"), "1");
  EXPECT_EQ(events[1].id, 7u);
  EXPECT_EQ(events[1].find_arg("id"), nullptr);
}

// ---------------------------------------------------------------------------
// Fuzz over the causal fields: corruption of eid/cause must either reject
// or produce a graph the analyses survive (dangling causes are counted,
// never followed).
// ---------------------------------------------------------------------------

class CausalFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CausalFuzz, CorruptedCausalTraceParsesOrRejectsAndNeverCrashesBlame) {
  static const std::string base =
      read_file(golden_path("bandwidth_drop.trace"));
  ASSERT_FALSE(base.empty());
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6271u + 13u);
  std::string text = base;
  switch (GetParam() % 3) {
    case 0: {  // truncate at a random byte
      const auto cut = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(text.size())));
      text = text.substr(0, cut);
      break;
    }
    case 1: {  // flip random bytes
      for (std::int64_t f = rng.uniform_int(1, 16); f > 0; --f) {
        const auto pos = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(text.size()) - 1));
        text[pos] = static_cast<char>(rng.uniform_int(0, 255));
      }
      break;
    }
    default: {  // interleave two halves line-by-line
      std::istringstream is(text);
      std::vector<std::string> lines;
      std::string line;
      while (std::getline(is, line)) lines.push_back(line);
      std::vector<std::string> even, odd;
      for (std::size_t i = 0; i < lines.size(); ++i)
        (i % 2 == 0 ? even : odd).push_back(lines[i]);
      text.clear();
      std::size_t i = 0, j = 0;
      while (i < even.size() || j < odd.size()) {
        const bool take_even =
            j >= odd.size() || (i < even.size() && rng.chance(0.5));
        text += (take_even ? even[i++] : odd[j++]) + '\n';
      }
      break;
    }
  }
  std::vector<Event> events;
  try {
    std::istringstream is(text);
    events = analysis::parse_text(is);
  } catch (const contract_error&) {
    return;  // rejection is a fine outcome for corrupted input
  }
  CausalGraph g(std::move(events));
  if (g.events().empty()) return;
  double latest = 0.0;
  for (const Event& ev : g.events())
    latest = std::max(latest, analysis::event_end(ev));
  const BlameReport report = analysis::blame_window(g, 0.0, latest);
  // Whatever survived the corruption, the walk terminates and the ledger
  // shares stay normalized.
  for (const analysis::LedgerEntry& e : report.ledger) {
    EXPECT_GE(e.share, 0.0);
    EXPECT_LE(e.share, 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(SeededCorruptions, CausalFuzz,
                         ::testing::Range(0, 45));

}  // namespace
}  // namespace autopipe
