// The shared golden-trace scenario: the fig3 shape in miniature, extracted
// from trace_test.cpp so the differential parity harness can replay the
// *same* committed-golden workload under both event-queue implementations.
// Any edit here changes what the checked-in golden files assert — see
// tests/golden/bandwidth_drop.trace.
#pragma once

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/trace.hpp"
#include "common/units.hpp"
#include "models/zoo.hpp"
#include "partition/partition.hpp"
#include "pipeline/executor.hpp"
#include "sim/cluster.hpp"
#include "sim/trace.hpp"

namespace autopipe::test_scenarios {

/// A 5-layer convnet small enough that the golden trace stays reviewable.
inline models::ModelSpec tiny_model() {
  models::ConvNetBuilder b("tiny", 3, 32, 32);
  b.conv("c1", 8, 3)
      .maxpool("p1", 2, 2)
      .conv("c2", 16, 3)
      .global_avgpool("gap")
      .fc("fc", 10);
  return std::move(b).build(16);
}

struct GoldenCapture {
  std::string text;
  std::vector<trace::Event> events;
};

/// The fig3 shape in miniature: two single-GPU servers, a two-stage
/// pipeline, an all-NIC bandwidth drop at iteration 5 and the response a
/// controller would make — a stop-the-world switch at iteration 7 that
/// shifts work toward the cheaper cut. One golden file then exercises
/// every event family the analyzer classifies: compute, flows, saturated
/// links and a reconfiguration window.
///
/// `kind` selects the event-queue implementation; the committed golden was
/// recorded before the timing wheel existed, so byte-identity under
/// kWheel *is* the semantic-preservation proof for the core rewrite.
inline GoldenCapture run_golden_scenario(
    sim::EventQueueKind kind = sim::default_event_queue_kind()) {
  sim::Simulator sim(kind);
  sim.tracer().set_enabled(true);
  sim::ClusterConfig config;
  config.num_servers = 2;
  config.gpus_per_server = 1;
  config.nic_bandwidth = gbps(10);
  sim::Cluster cluster(sim, config);

  const auto model = tiny_model();
  const std::size_t L = model.num_layers();
  const auto initial = partition::Partition::even_split(L, {0, 1});
  // Pull the cut back to after the pool layer: smaller activations cross
  // the (now slow) wire, and the second conv's weights migrate.
  const partition::Partition next({{0, 1, {0}}, {2, L - 1, {1}}}, L);
  pipeline::PipelineExecutor executor(cluster, model, initial,
                                      pipeline::ExecutorConfig{});
  sim::ResourceTrace rtrace;
  rtrace.at_iteration(5, sim::ResourceTrace::set_all_nic_bandwidth(gbps(1)));
  executor.set_iteration_callback([&](std::size_t iters) {
    rtrace.apply_iteration(iters, cluster);
    if (iters == 7) {
      executor.request_switch(
          next, pipeline::PipelineExecutor::SwitchMode::kStopTheWorld);
    }
  });
  executor.run(12, 2);

  GoldenCapture capture;
  std::ostringstream os;
  sim.tracer().write_text(os);
  capture.text = os.str();
  capture.events = sim.tracer().events();
  return capture;
}

}  // namespace autopipe::test_scenarios
