// Baseline-runtime tests: BSP data parallelism against hand-computed
// iteration times, PS-vs-Ring ordering, and the pipeline-vs-baseline
// relationships the paper's Fig 8 relies on.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/data_parallel.hpp"
#include "baselines/model_parallel.hpp"
#include "common/units.hpp"
#include "models/model.hpp"
#include "models/zoo.hpp"
#include "partition/partition.hpp"
#include "pipeline/executor.hpp"
#include "sim/cluster.hpp"

namespace autopipe::baselines {
namespace {

models::ModelSpec toy_model(double param_bytes = 1000.0) {
  std::vector<models::LayerSpec> specs;
  for (int l = 0; l < 4; ++l) {
    models::LayerSpec s;
    s.name = "l" + std::to_string(l);
    s.fwd_flops_per_sample = 100.0;
    s.bwd_flops_per_sample = 200.0;
    s.activation_bytes_per_sample = 10.0;
    s.param_bytes = param_bytes;
    specs.push_back(std::move(s));
  }
  return models::ModelSpec("toy", 2, std::move(specs));
}

struct Rig {
  explicit Rig(std::size_t servers = 4, double nic = 1e4) {
    config.num_servers = servers;
    config.gpus_per_server = 1;
    config.gpu_specs = {sim::GpuSpec{"toy", 1e4, gib(16)}};
    config.nic_bandwidth = nic;
    cluster = std::make_unique<sim::Cluster>(sim, config);
  }
  sim::Simulator sim;
  sim::ClusterConfig config;
  std::unique_ptr<sim::Cluster> cluster;
};

DataParallelConfig clean_dp() {
  DataParallelConfig c;
  c.framework.per_layer_overhead = 0.0;
  c.framework.comm_efficiency = 1.0;
  c.framework.compute_efficiency = 1.0;
  return c;
}

TEST(DataParallel, SingleWorkerMatchesComputeTime) {
  Rig rig(1);
  const auto model = toy_model();
  const auto report = run_data_parallel(*rig.cluster, model, {0}, 10, 2,
                                        clean_dp());
  // 4 layers x 300 FLOPs x 2 samples = 2400 FLOPs at 1e4 = 0.24 s/iter.
  EXPECT_NEAR(report.throughput, 2.0 / 0.24, 0.1);
}

TEST(DataParallel, AggregateThroughputCountsAllWorkers) {
  const auto model = toy_model(1.0);  // negligible sync volume
  Rig one(1), four(4);
  const double t1 =
      run_data_parallel(*one.cluster, model, {0}, 10, 2, clean_dp())
          .throughput;
  const double t4 = run_data_parallel(*four.cluster, model, {0, 1, 2, 3}, 10,
                                      2, clean_dp())
                        .throughput;
  EXPECT_NEAR(t4, 4.0 * t1, 0.3 * t1);
}

TEST(DataParallel, SyncCostReducesThroughput) {
  Rig rig(4, 1e4);
  const auto light = toy_model(10.0);
  const auto heavy = toy_model(1e4);  // 40 KB model over 10 KB/s links
  const double fast = run_data_parallel(*rig.cluster, light, {0, 1, 2, 3},
                                        10, 2, clean_dp())
                          .throughput;
  Rig rig2(4, 1e4);
  const double slow = run_data_parallel(*rig2.cluster, heavy, {0, 1, 2, 3},
                                        10, 2, clean_dp())
                          .throughput;
  EXPECT_LT(slow, fast * 0.5);
}

TEST(DataParallel, PsSlowerThanRingOnBigModels) {
  const auto model = toy_model(1e4);
  auto run_scheme = [&](comm::SyncScheme scheme) {
    Rig rig(4, 1e4);
    auto config = clean_dp();
    config.sync_scheme = scheme;
    return run_data_parallel(*rig.cluster, model, {0, 1, 2, 3}, 10, 2,
                             config)
        .throughput;
  };
  // The un-sharded PS concentrates (n-1)x traffic at one NIC.
  EXPECT_LT(run_scheme(comm::SyncScheme::kParameterServer),
            run_scheme(comm::SyncScheme::kRing));
}

TEST(DataParallel, IterationSeriesIsMonotone) {
  Rig rig(2);
  const auto report = run_data_parallel(*rig.cluster, toy_model(), {0, 1},
                                        8, 1, clean_dp());
  ASSERT_EQ(report.iteration_end_times.size(), 8u);
  for (std::size_t i = 1; i < 8; ++i)
    EXPECT_GT(report.iteration_end_times[i],
              report.iteration_end_times[i - 1]);
}

TEST(ModelParallel, RunsAndUnderutilizes) {
  Rig rig(4);
  const auto model = toy_model();
  comm::FrameworkProfile lean;
  lean.name = "lean";
  lean.per_layer_overhead = 0.0;
  lean.comm_efficiency = 1.0;
  lean.compute_efficiency = 1.0;
  const auto report =
      run_model_parallel(*rig.cluster, model, {0, 1, 2, 3}, 20, 5, lean);
  // One batch in flight over 4 workers: utilization far below 1.
  EXPECT_LT(report.worker_utilization, 0.5);
  EXPECT_GT(report.throughput, 0.0);
}

TEST(Comparison, PipelineBeatsDataParallelOnSlowNetwork) {
  // The pipeline's raison d'être (Fig 1): on a communication-bound setup,
  // pipelining outruns data parallelism because it ships activations, not
  // the whole model.
  const auto model = toy_model(5e4);  // 200 KB of weights, 10 B activations
  Rig dp_rig(4, 1e4);
  const double dp = run_data_parallel(*dp_rig.cluster, model, {0, 1, 2, 3},
                                      8, 2, clean_dp())
                        .throughput;
  Rig pipe_rig(4, 1e4);
  pipeline::ExecutorConfig pc;
  pc.framework.per_layer_overhead = 0.0;
  pc.framework.comm_efficiency = 1.0;
  pc.framework.compute_efficiency = 1.0;
  pipeline::PipelineExecutor executor(
      *pipe_rig.cluster, model,
      partition::Partition::even_split(model.num_layers(), {0, 1, 2, 3}),
      pc);
  const double pipe = executor.run(30, 10).throughput;
  EXPECT_GT(pipe, dp);
}

}  // namespace
}  // namespace autopipe::baselines
