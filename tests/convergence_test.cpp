// Convergence-module tests: the synthetic dataset, and the Fig-11 ordering
// of staleness semantics — BSP and weight stashing converge to the same
// accuracy, total asynchrony converges worse and slower.
#include <gtest/gtest.h>

#include "convergence/dataset.hpp"
#include "convergence/staleness_sgd.hpp"

namespace autopipe::convergence {
namespace {

DatasetConfig small_data() {
  DatasetConfig c;
  c.dims = 8;
  c.classes = 3;
  c.train_samples = 512;
  c.test_samples = 256;
  c.noise = 1.0;
  return c;
}

TEST(Dataset, ShapesAndDeterminism) {
  const Dataset a(small_data(), 5);
  const Dataset b(small_data(), 5);
  EXPECT_EQ(a.test_x().rows(), 256u);
  EXPECT_EQ(a.test_x().cols(), 8u);
  EXPECT_EQ(a.test_labels().size(), 256u);
  for (std::size_t i = 0; i < a.test_x().size(); ++i)
    EXPECT_DOUBLE_EQ(a.test_x().data()[i], b.test_x().data()[i]);
}

TEST(Dataset, BatchSamplingIsOneHot) {
  const Dataset data(small_data(), 5);
  Rng rng(1);
  nn::Matrix x, y;
  data.sample_batch(rng, 16, x, y);
  EXPECT_EQ(x.rows(), 16u);
  EXPECT_EQ(y.cols(), 3u);
  for (std::size_t i = 0; i < 16; ++i) {
    double sum = 0;
    for (std::size_t c = 0; c < 3; ++c) sum += y.at(i, c);
    EXPECT_DOUBLE_EQ(sum, 1.0);
  }
}

TEST(StalenessSgd, BspLearnsTheTask) {
  const Dataset data(small_data(), 7);
  TrainerConfig config;
  config.mode = StalenessMode::kBsp;
  StalenessSgdTrainer trainer(data, config, 3);
  const double before = trainer.test_accuracy();
  for (int i = 0; i < 1500; ++i) trainer.step();
  const double after = trainer.test_accuracy();
  EXPECT_GT(after, before + 0.2);
  EXPECT_GT(after, 0.7);
}

TEST(StalenessSgd, WeightStashingMatchesBspAccuracy) {
  // PipeDream's claim (and the paper's Fig 11): bounded, consistent
  // staleness reaches the same converged accuracy as BSP.
  const Dataset data(small_data(), 7);
  auto final_acc = [&](StalenessMode mode) {
    TrainerConfig config;
    config.mode = mode;
    config.pipeline_depth = 4;
    StalenessSgdTrainer trainer(data, config, 3);
    for (int i = 0; i < 2500; ++i) trainer.step();
    return trainer.test_accuracy();
  };
  const double bsp = final_acc(StalenessMode::kBsp);
  const double stash = final_acc(StalenessMode::kWeightStashing);
  EXPECT_NEAR(stash, bsp, 0.06);
}

TEST(StalenessSgd, TotalAsyncConvergesWorse) {
  // TAP's inconsistent weights cost converged accuracy (paper: 1.35-1.42x).
  const Dataset data(small_data(), 7);
  auto final_acc = [&](StalenessMode mode) {
    TrainerConfig config;
    config.mode = mode;
    config.pipeline_depth = 4;
    StalenessSgdTrainer trainer(data, config, 3);
    for (int i = 0; i < 2500; ++i) trainer.step();
    return trainer.test_accuracy();
  };
  EXPECT_LT(final_acc(StalenessMode::kTotalAsync),
            final_acc(StalenessMode::kWeightStashing) - 0.05);
}

TEST(StalenessSgd, CurveIsSampledAtRequestedCadence) {
  const Dataset data(small_data(), 7);
  TrainerConfig config;
  const auto curve = accuracy_curve(data, config, 100, 25, 3);
  ASSERT_EQ(curve.size(), 5u);  // step 0 + 4 evals
  EXPECT_EQ(curve[0].step, 0u);
  EXPECT_EQ(curve[4].step, 100u);
}

TEST(StalenessSgd, ModeNames) {
  EXPECT_STREQ(to_string(StalenessMode::kBsp), "BSP");
  EXPECT_STREQ(to_string(StalenessMode::kTotalAsync), "TAP");
}

}  // namespace
}  // namespace autopipe::convergence
