// RL tests: replay-buffer mechanics and the DQN agent's ability to learn a
// contextual decision — the shape of the arbiter's switch/stay problem.
#include <gtest/gtest.h>

#include <sstream>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "rl/dqn.hpp"
#include "rl/replay_buffer.hpp"

namespace autopipe::rl {
namespace {

Transition make_transition(double s, int a, double r) {
  return Transition{{s}, a, r, {s}, false};
}

TEST(ReplayBuffer, FillsThenWrapsAround) {
  ReplayBuffer buf(3);
  for (int i = 0; i < 5; ++i)
    buf.add(make_transition(static_cast<double>(i), 0, 0));
  EXPECT_EQ(buf.size(), 3u);
  // Items 0 and 1 were overwritten by 3 and 4.
  std::vector<double> contents;
  for (std::size_t i = 0; i < buf.size(); ++i)
    contents.push_back(buf.at(i).state[0]);
  std::sort(contents.begin(), contents.end());
  EXPECT_EQ(contents, (std::vector<double>{2, 3, 4}));
}

TEST(ReplayBuffer, SampleDrawsFromContents) {
  ReplayBuffer buf(8);
  buf.add(make_transition(7.0, 1, 0.5));
  Rng rng(1);
  const auto batch = buf.sample(rng, 4);
  ASSERT_EQ(batch.size(), 4u);
  for (const auto& t : batch) {
    EXPECT_DOUBLE_EQ(t.state[0], 7.0);
    EXPECT_EQ(t.action, 1);
  }
}

TEST(ReplayBuffer, ClearEmpties) {
  ReplayBuffer buf(4);
  buf.add(make_transition(1, 0, 0));
  buf.clear();
  EXPECT_TRUE(buf.empty());
}

DqnConfig bandit_config() {
  DqnConfig c;
  c.state_dim = 1;
  c.num_actions = 2;
  c.hidden = {32, 16};  // the paper's arbiter architecture
  c.learning_rate = 5e-3;
  c.gamma = 0.0;  // pure contextual bandit
  c.epsilon_decay = 0.99;
  c.warmup_steps = 16;
  c.target_update_interval = 25;
  return c;
}

TEST(DqnAgent, LearnsContextualBandit) {
  // State +1 -> action 1 pays; state -1 -> action 0 pays. This is the
  // arbiter's problem in miniature: "does the predicted gain exceed the
  // switch cost?"
  DqnAgent agent(bandit_config(), 42);
  Rng rng(7);
  for (int step = 0; step < 1500; ++step) {
    const double s = rng.chance(0.5) ? 1.0 : -1.0;
    const int a = agent.act({s});
    const int good = s > 0 ? 1 : 0;
    const double reward = (a == good) ? 1.0 : -1.0;
    agent.observe(Transition{{s}, a, reward, {s}, true});
  }
  EXPECT_EQ(agent.act({1.0}, /*explore=*/false), 1);
  EXPECT_EQ(agent.act({-1.0}, /*explore=*/false), 0);
}

TEST(DqnAgent, EpsilonDecays) {
  DqnAgent agent(bandit_config(), 1);
  const double initial = agent.epsilon();
  for (int i = 0; i < 200; ++i)
    agent.observe(make_transition(0.0, 0, 0.0));
  EXPECT_LT(agent.epsilon(), initial);
  EXPECT_GE(agent.epsilon(), agent.config().epsilon_end - 1e-12);
}

TEST(DqnAgent, QValuesHaveActionArity) {
  DqnAgent agent(bandit_config(), 2);
  const auto q = agent.q_values({0.5});
  EXPECT_EQ(q.size(), 2u);
}

TEST(DqnAgent, OnlineAdaptationFreezesExploration) {
  DqnAgent agent(bandit_config(), 3);
  agent.begin_online_adaptation(0.1);
  EXPECT_NEAR(agent.epsilon(), agent.config().epsilon_end, 1e-12);
}

TEST(DqnAgent, SaveLoadPreservesPolicy) {
  DqnAgent agent(bandit_config(), 42);
  Rng rng(7);
  for (int step = 0; step < 800; ++step) {
    const double s = rng.chance(0.5) ? 1.0 : -1.0;
    const int a = agent.act({s});
    agent.observe(Transition{{s}, a, (a == (s > 0 ? 1 : 0)) ? 1.0 : -1.0,
                             {s}, true});
  }
  std::stringstream ss;
  agent.save(ss);
  DqnAgent clone(bandit_config(), 999);
  clone.load(ss);
  EXPECT_EQ(clone.act({1.0}, false), agent.act({1.0}, false));
  EXPECT_EQ(clone.act({-1.0}, false), agent.act({-1.0}, false));
}

TEST(DqnAgent, RejectsMalformedTransitions) {
  DqnAgent agent(bandit_config(), 5);
  EXPECT_THROW(agent.observe(Transition{{1.0, 2.0}, 0, 0.0, {1.0}, false}),
               autopipe::contract_error);
  EXPECT_THROW(agent.observe(Transition{{1.0}, 5, 0.0, {1.0}, false}),
               autopipe::contract_error);
}

}  // namespace
}  // namespace autopipe::rl
