// Tests for the fault-injection subsystem and the recovery machinery built
// on it: FaultPlan construction and spec parsing, cluster down/up state
// transitions, flow stall-and-resume, executor-level drop/replay/degraded
// repair and in-place rejoin, the controller's stall watchdog with
// emergency re-planning and re-admission, and the fault-downtime bubble
// class in trace analysis.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/bubbles.hpp"
#include "analysis/trace_view.hpp"
#include "autopipe/controller.hpp"
#include "common/expect.hpp"
#include "common/units.hpp"
#include "faults/fault_plan.hpp"
#include "models/zoo.hpp"
#include "partition/partition.hpp"
#include "partition/pipedream_planner.hpp"
#include "pipeline/executor.hpp"
#include "sim/cluster.hpp"
#include "sim/simulator.hpp"

namespace autopipe {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan construction and parsing
// ---------------------------------------------------------------------------

TEST(FaultPlan, PairSchedulersEmitOutageAndRecovery) {
  faults::FaultPlan plan;
  plan.preempt_gpu(3, 1.0, 0.5);
  plan.fail_link(1, 2.0, 0.25);
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_DOUBLE_EQ(plan.points()[0].at, 1.0);
  EXPECT_EQ(plan.points()[0].event.kind, faults::FaultEvent::Kind::kGpuDown);
  EXPECT_DOUBLE_EQ(plan.points()[1].at, 1.5);
  EXPECT_EQ(plan.points()[1].event.kind, faults::FaultEvent::Kind::kGpuUp);
  EXPECT_EQ(plan.points()[2].event.kind,
            faults::FaultEvent::Kind::kLinkDown);
  EXPECT_DOUBLE_EQ(plan.points()[3].at, 2.25);
  EXPECT_DOUBLE_EQ(plan.horizon(), 2.25);
  EXPECT_NE(plan.points()[0].event.describe().find("gpu_down"),
            std::string::npos);
}

TEST(FaultPlan, FlapSchedulesAlternatingCycles) {
  faults::FaultPlan plan;
  plan.flap_link(0, 1.0, 0.1, 3);
  ASSERT_EQ(plan.size(), 6u);  // 3 down/up cycles
  for (std::size_t i = 0; i < plan.size(); i += 2) {
    EXPECT_EQ(plan.points()[i].event.kind,
              faults::FaultEvent::Kind::kLinkDown);
    EXPECT_EQ(plan.points()[i + 1].event.kind,
              faults::FaultEvent::Kind::kLinkUp);
    EXPECT_DOUBLE_EQ(plan.points()[i + 1].at, plan.points()[i].at + 0.1);
  }
}

TEST(FaultPlan, ParseInlineSpec) {
  const auto plan = faults::parse_spec(
      "0.5 gpu_down 2; 1.0 straggler_begin 1 0.4; 1.5 gpu_up 2", 2, 2);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_DOUBLE_EQ(plan.points()[0].at, 0.5);
  EXPECT_EQ(plan.points()[1].event.kind,
            faults::FaultEvent::Kind::kStragglerBegin);
  EXPECT_DOUBLE_EQ(plan.points()[1].event.value, 0.4);
}

TEST(FaultPlan, ParseRandomSpecIsDeterministic) {
  const std::string spec = "random:seed=7,start=1.0,clear=6.0,gpus=2,links=1";
  const auto a = faults::parse_spec(spec, 3, 2);
  const auto b = faults::parse_spec(spec, 3, 2);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points()[i].at, b.points()[i].at);
    EXPECT_EQ(a.points()[i].event.kind, b.points()[i].event.kind);
    EXPECT_EQ(a.points()[i].event.index, b.points()[i].event.index);
  }
  // Every injected outage recovers within the requested window.
  EXPECT_LE(a.horizon(), 6.0 + 1e-9);
  for (const auto& p : a.points()) EXPECT_GE(p.at, 1.0 - 1e-9);
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(faults::parse_spec("0.5 gpu_melt 0", 2, 2), contract_error);
  EXPECT_THROW(faults::parse_spec("0.5 straggler_begin 0", 2, 2),
               contract_error);  // missing scale
  EXPECT_THROW(faults::parse_spec("0.5 gpu_down 99", 2, 2),
               contract_error);  // worker out of range
  EXPECT_THROW(faults::parse_spec("random:bogus_key=1", 2, 2),
               contract_error);
  EXPECT_THROW(faults::parse_spec("@/no/such/fault/file", 2, 2),
               contract_error);
}

namespace {

/// The contract message a malformed spec dies with; "" if it parses.
std::string spec_error(const std::string& spec) {
  try {
    faults::parse_spec(spec, 2, 2);
  } catch (const contract_error& e) {
    return e.what();
  }
  return "";
}

}  // namespace

TEST(FaultPlan, MalformedSpecErrorsNameLineAndField) {
  // Schedule lines: the message carries the 1-based line of the offender.
  EXPECT_NE(spec_error("0.5 gpu_down 0; not a fault line")
                .find("fault spec line 2: expected"),
            std::string::npos);
  EXPECT_NE(spec_error("0.5 gpu_down 0; 1.0 gpu_melt 0")
                .find("fault spec line 2: unknown fault kind 'gpu_melt'"),
            std::string::npos);
  EXPECT_NE(spec_error("0.5 straggler_begin 1")
                .find("fault spec line 1: straggler_begin needs a scale"),
            std::string::npos);
  EXPECT_NE(spec_error("0.5 gpu_down 0; 1.0 gpu_down 99")
                .find("fault spec line 2: worker index 99 out of range"),
            std::string::npos);
  EXPECT_NE(spec_error("0.5 link_down 7")
                .find("fault spec line 1: server index 7 out of range"),
            std::string::npos);

  // Random specs: comma-separated entries, so the message carries the
  // 1-based entry position and the offending field.
  EXPECT_NE(spec_error("random:seed=1,gpus")
                .find("random entry 2: expected key=value, got 'gpus'"),
            std::string::npos);
  EXPECT_NE(spec_error("random:seed=1,=3")
                .find("random entry 2: empty key in '=3'"),
            std::string::npos);
  EXPECT_NE(spec_error("random:seed=1,gpus=many")
                .find("random entry 2: field 'gpus': bad number 'many'"),
            std::string::npos);
  EXPECT_NE(spec_error("random:seed=1,start=1.0x")
                .find("random entry 2: field 'start': bad number '1.0x'"),
            std::string::npos);
  EXPECT_NE(spec_error("random:seed=1,bogus_key=1")
                .find("random entry 2: unknown random key 'bogus_key'"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Cluster state transitions
// ---------------------------------------------------------------------------

TEST(ClusterFaults, WorkerAndLinkTransitions) {
  sim::Simulator sim;
  sim::ClusterConfig config;
  config.num_servers = 2;
  config.gpus_per_server = 2;
  sim::Cluster cluster(sim, config);

  EXPECT_TRUE(cluster.worker_reachable(1));
  cluster.set_worker_down(1);
  EXPECT_FALSE(cluster.worker_up(1));
  EXPECT_FALSE(cluster.worker_reachable(1));
  EXPECT_TRUE(cluster.worker_reachable(0));  // same server, still fine
  cluster.set_worker_up(1);
  EXPECT_TRUE(cluster.worker_reachable(1));

  const BytesPerSec nominal = cluster.nic_bandwidth(1);
  EXPECT_GT(nominal, 0.0);
  cluster.set_link_down(1);
  EXPECT_DOUBLE_EQ(cluster.nic_bandwidth(1), 0.0);
  // A down link makes every worker on the server unreachable even though
  // the GPUs themselves are up.
  EXPECT_TRUE(cluster.worker_up(2));
  EXPECT_FALSE(cluster.worker_reachable(2));
  EXPECT_FALSE(cluster.worker_reachable(3));
  cluster.set_link_up(1);
  EXPECT_DOUBLE_EQ(cluster.nic_bandwidth(1), nominal);
  EXPECT_TRUE(cluster.worker_reachable(2));
}

TEST(ClusterFaults, DownGpuDropsQueuedTasks) {
  sim::Simulator sim;
  sim::ClusterConfig config;
  config.num_servers = 1;
  config.gpus_per_server = 1;
  sim::Cluster cluster(sim, config);

  int completions = 0;
  cluster.gpu(0).submit(1e12, [&] { ++completions; });
  cluster.gpu(0).submit(1e12, [&] { ++completions; });
  cluster.set_worker_down(0);
  sim.run();
  EXPECT_EQ(completions, 0);
  EXPECT_EQ(cluster.gpu(0).tasks_dropped(), 2u);
  // Work submitted after recovery completes normally.
  cluster.set_worker_up(0);
  cluster.gpu(0).submit(1e12, [&] { ++completions; });
  sim.run();
  EXPECT_EQ(completions, 1);
}

TEST(ClusterFaults, FlowsStallWhileLinkDownAndResume) {
  sim::Simulator sim;
  sim::ClusterConfig config;
  config.num_servers = 2;
  config.gpus_per_server = 1;
  config.nic_bandwidth = gbps(10);
  sim::Cluster cluster(sim, config);

  // Baseline: the same transfer with no fault.
  Seconds clean_done = -1.0;
  cluster.transfer(0, 1, 1e9, [&] { clean_done = sim.now(); });
  sim.run();
  ASSERT_GT(clean_done, 0.0);

  // Fault run: the link goes down mid-flight and comes back 2s later. The
  // flow must stall (not cancel) and complete roughly 2s late. The clock
  // kept running through the baseline, so schedule relative to now().
  const Seconds t0 = sim.now();
  Seconds faulted_done = -1.0;
  cluster.transfer(0, 1, 1e9, [&] { faulted_done = sim.now(); });
  sim.at(t0 + clean_done / 2.0, [&] { cluster.set_link_down(1); });
  sim.at(t0 + clean_done / 2.0 + 2.0, [&] { cluster.set_link_up(1); });
  sim.run();
  ASSERT_GT(faulted_done, 0.0);
  EXPECT_NEAR(faulted_done - t0, clean_done + 2.0, 0.05 * clean_done + 1e-6);
}

TEST(ClusterFaults, ProfilerMuteFlag) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, sim::ClusterConfig{});
  EXPECT_FALSE(cluster.profiler_muted(0));
  cluster.set_profiler_muted(0, true);
  EXPECT_TRUE(cluster.profiler_muted(0));
  cluster.set_profiler_muted(0, false);
  EXPECT_FALSE(cluster.profiler_muted(0));
}

// ---------------------------------------------------------------------------
// Executor recovery
// ---------------------------------------------------------------------------

struct FaultRig {
  std::unique_ptr<sim::Simulator> simulator;
  std::unique_ptr<sim::Cluster> cluster;
  models::ModelSpec model = models::alexnet();
  std::unique_ptr<pipeline::PipelineExecutor> executor;
  std::unique_ptr<core::AutoPipeController> controller;
};

FaultRig make_rig(std::size_t servers, std::size_t gpus_per_server,
                  bool with_controller, bool traced = false) {
  FaultRig rig;
  rig.simulator = std::make_unique<sim::Simulator>();
  if (traced) rig.simulator->tracer().set_enabled(true);
  sim::ClusterConfig config;
  config.num_servers = servers;
  config.gpus_per_server = gpus_per_server;
  rig.cluster = std::make_unique<sim::Cluster>(*rig.simulator, config);

  const auto env = partition::EnvironmentView::from_cluster(
      *rig.cluster, comm::pytorch_profile(), comm::SyncScheme::kRing);
  partition::PipeDreamPlanner planner(
      rig.model, env, rig.model.default_batch_size(),
      partition::PipeDreamPlanner::Mode::kCurrentEnvironment);
  const auto plan = planner.plan(rig.cluster->num_workers());

  pipeline::ExecutorConfig executor_config;
  executor_config.framework = comm::pytorch_profile();
  executor_config.sync_scheme = comm::SyncScheme::kRing;
  rig.executor = std::make_unique<pipeline::PipelineExecutor>(
      *rig.cluster, rig.model, plan.partition, executor_config);

  if (with_controller) {
    core::ControllerConfig cc;
    cc.arbiter_mode = core::ControllerConfig::ArbiterMode::kThreshold;
    cc.use_meta_network = false;
    rig.controller = std::make_unique<core::AutoPipeController>(
        *rig.cluster, *rig.executor, cc, nullptr, nullptr);
    rig.controller->attach();
  }
  return rig;
}

TEST(ExecutorRecovery, PreemptedReplicaRejoinsInPlace) {
  FaultRig rig = make_rig(3, 2, /*with_controller=*/true);
  // Pick a worker on a replicated stage so the pipeline degrades rather
  // than stalls.
  sim::WorkerId victim = 0;
  bool found = false;
  const auto& partition = rig.executor->current_partition();
  for (std::size_t s = 0; s < partition.num_stages() && !found; ++s) {
    if (partition.stage(s).replication() >= 2) {
      victim = partition.stage(s).workers.front();
      found = true;
    }
  }
  ASSERT_TRUE(found) << "planner produced no replicated stage";

  faults::FaultPlan plan;
  plan.preempt_gpu(victim, 1.0, 0.5);
  plan.install(*rig.simulator, *rig.cluster);

  rig.executor->run(60, 5);

  const auto& stats = rig.executor->fault_stats();
  EXPECT_EQ(stats.injected, stats.completed + stats.dropped +
                                rig.executor->active_batches());
  // The returned worker rejoined the stage it was dropped from, with its
  // missed weight versions reconstructed from a surviving replica's stash.
  EXPECT_NE(rig.executor->current_partition().stage_of_worker(victim),
            partition::Partition::npos);
  EXPECT_FALSE(rig.executor->degraded());
  EXPECT_GT(stats.weight_reconstructions, 0u);
}

TEST(ExecutorRecovery, SoleHolderLossWedgesThenEmergencyReplans) {
  FaultRig rig = make_rig(1, 2, /*with_controller=*/true);
  // Force a two-stage, one-worker-per-stage partition so losing a worker
  // leaves a stage with no holder.
  const auto forced = partition::Partition::even_split(
      rig.model.num_layers(), {0, 1});
  ASSERT_TRUE(rig.executor->request_switch(
      forced, pipeline::PipelineExecutor::SwitchMode::kStopTheWorld));

  faults::FaultPlan plan;
  plan.at(1.0, faults::FaultPlan::gpu_down(1));  // never comes back
  plan.install(*rig.simulator, *rig.cluster);

  rig.executor->run(60, 5);

  const auto& stats = rig.controller->stats();
  EXPECT_GE(stats.wedges_detected, 1u);
  EXPECT_GE(stats.emergency_replans, 1u);
  ASSERT_EQ(rig.controller->excluded_workers().size(), 1u);
  EXPECT_EQ(rig.controller->excluded_workers()[0], 1u);
  // The emergency plan runs on the survivor alone.
  EXPECT_EQ(rig.executor->current_partition().stage_of_worker(1),
            partition::Partition::npos);
  const auto& fstats = rig.executor->fault_stats();
  EXPECT_EQ(fstats.injected, fstats.completed + fstats.dropped +
                                 rig.executor->active_batches());
}

TEST(ExecutorRecovery, ReturnedWorkerIsReadmitted) {
  FaultRig rig = make_rig(1, 2, /*with_controller=*/true);
  const auto forced = partition::Partition::even_split(
      rig.model.num_layers(), {0, 1});
  ASSERT_TRUE(rig.executor->request_switch(
      forced, pipeline::PipelineExecutor::SwitchMode::kStopTheWorld));

  faults::FaultPlan plan;
  plan.preempt_gpu(1, 1.0, 3.0);  // long outage: wedge, replan, return
  plan.install(*rig.simulator, *rig.cluster);

  rig.executor->run(120, 5);

  const auto& stats = rig.controller->stats();
  EXPECT_GE(stats.emergency_replans, 1u);
  EXPECT_GE(stats.readmissions, 1u);
  EXPECT_TRUE(rig.controller->excluded_workers().empty());
  // After re-admission the full-width plan uses both workers again.
  EXPECT_NE(rig.executor->current_partition().stage_of_worker(1),
            partition::Partition::npos);
}

TEST(ExecutorRecovery, EmergencyAdoptRejectsUnreachableTargets) {
  FaultRig rig = make_rig(1, 2, /*with_controller=*/false);
  rig.cluster->set_worker_down(1);
  const auto full = partition::Partition::even_split(
      rig.model.num_layers(), {0, 1});
  EXPECT_FALSE(rig.executor->emergency_adopt(full));
  const auto survivor = partition::Partition::even_split(
      rig.model.num_layers(), {0});
  EXPECT_TRUE(rig.executor->emergency_adopt(survivor));
}

// ---------------------------------------------------------------------------
// Trace analysis: fault windows and the fault-downtime bubble class
// ---------------------------------------------------------------------------

TEST(FaultTrace, FaultWindowsAndDowntimeBubblePartitionWallClock) {
  FaultRig rig = make_rig(3, 2, /*with_controller=*/true, /*traced=*/true);
  faults::FaultPlan plan;
  plan.preempt_gpu(2, 1.0, 0.5);
  plan.fail_link(1, 2.0, 0.4);
  plan.install(*rig.simulator, *rig.cluster);

  rig.executor->run(60, 5);

  const analysis::TraceView view(rig.simulator->tracer().events());
  // Workers 2 and 3 sit on server 1. Worker 2 accrues both its own
  // gpu_down/gpu_up outage and the server's link outage (disjoint windows);
  // worker 3 only the link outage; worker 0 neither.
  EXPECT_NEAR(view.fault_windows(2).total(), 0.5 + 0.4, 1e-6);
  EXPECT_NEAR(view.fault_windows(3).total(), 0.4, 1e-6);
  EXPECT_DOUBLE_EQ(view.fault_windows(0).total(), 0.0);

  const analysis::BubbleReport bubbles = analysis::attribute_bubbles(view);
  const double downtime = bubbles.totals[static_cast<std::size_t>(
      analysis::BubbleClass::kFaultDowntime)];
  EXPECT_GT(downtime, 0.0);
  // With the seventh class in the mix the classes must still partition
  // every worker's wall clock exactly.
  for (const analysis::WorkerBubbles& wb : bubbles.workers) {
    EXPECT_NEAR(wb.busy_seconds + wb.idle_seconds(), bubbles.wall_clock,
                1e-6 * std::max(1.0, bubbles.wall_clock));
  }
}

TEST(FaultTrace, SameScheduleReplaysToIdenticalEventStream) {
  auto run_once = [] {
    FaultRig rig = make_rig(2, 2, /*with_controller=*/true, /*traced=*/true);
    faults::FaultPlan plan;
    plan.preempt_gpu(1, 1.0, 0.5);
    plan.flap_link(1, 1.2, 0.05, 2);
    plan.install(*rig.simulator, *rig.cluster);
    rig.executor->run(40, 5);
    std::ostringstream os;
    rig.simulator->tracer().write_text(os);
    return os.str();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace autopipe
