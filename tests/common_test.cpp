// Unit tests for the common substrate: RNG determinism, statistics,
// contract macros, units and the table printer.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <vector>

#include "common/expect.hpp"
#include "common/flags.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace autopipe {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool differ = false;
  for (int i = 0; i < 10 && !differ; ++i)
    differ = a.uniform(0, 1) != b.uniform(0, 1);
  EXPECT_TRUE(differ);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(99);
  Rng child = parent.fork();
  // Child stream should not replay the parent's next draws.
  Rng parent_copy(99);
  (void)parent_copy.fork();
  EXPECT_DOUBLE_EQ(parent.uniform(0, 1), parent_copy.uniform(0, 1));
  (void)child;
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(3);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.weighted_index(w), 1u);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3, -1, 7};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
}

TEST(Stats, EmptyInputsThrow) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), contract_error);
  EXPECT_THROW(percentile(empty, 50), contract_error);
}

TEST(Histogram, EmptyPercentilesAreZeroLikeSummary) {
  // The digest convention: an empty accumulator reads all-zero rather than
  // tripping a contract error — call sites digest whatever a run produced,
  // which may be nothing.
  const Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.p95(), 0.0);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 0.0);
  const Histogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(Histogram, SingleSampleIsEveryPercentile) {
  Histogram h;
  h.add(3.25);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.25);
  EXPECT_DOUBLE_EQ(h.p50(), 3.25);
  EXPECT_DOUBLE_EQ(h.p99(), 3.25);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 3.25);
  const Histogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 3.25);
  EXPECT_DOUBLE_EQ(s.max, 3.25);
  EXPECT_DOUBLE_EQ(s.p95, 3.25);
}

TEST(Histogram, PercentileInterpolatesAndTracksEdges) {
  Histogram h;
  for (double v : {4.0, 1.0, 3.0, 2.0}) h.add(v);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 4.0);
  EXPECT_DOUBLE_EQ(h.p50(), 2.5);
  EXPECT_DOUBLE_EQ(h.percentile(25.0), 1.75);
  EXPECT_THROW(h.percentile(-1.0), contract_error);
  EXPECT_THROW(h.percentile(100.5), contract_error);
}

TEST(Histogram, ResetRestoresEmptyConventions) {
  Histogram h;
  h.add(1.0);
  h.add(2.0);
  h.reset();
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(Ema, FirstSampleWins) {
  Ema ema(0.5);
  EXPECT_TRUE(ema.empty());
  ema.add(10.0);
  EXPECT_DOUBLE_EQ(ema.value(), 10.0);
}

TEST(Ema, Smooths) {
  Ema ema(0.5);
  ema.add(10.0);
  ema.add(20.0);
  EXPECT_DOUBLE_EQ(ema.value(), 15.0);
  ema.reset();
  EXPECT_TRUE(ema.empty());
}

TEST(Ema, AlphaOneTracksLastSample) {
  Ema ema(1.0);
  ema.add(3.0);
  ema.add(8.0);
  EXPECT_DOUBLE_EQ(ema.value(), 8.0);
}

TEST(MetricsRolling, EmaSeedsWithFirstSampleThenSmooths) {
  trace::MetricsRegistry metrics;
  trace::RollingConfig config;
  config.ema_alpha = 0.5;
  metrics.set_rolling_config(config);
  EXPECT_DOUBLE_EQ(metrics.ema("err"), 0.0);  // untouched series reads 0
  metrics.observe("err", 10.0);
  EXPECT_DOUBLE_EQ(metrics.ema("err"), 10.0);
  metrics.observe("err", 20.0);
  EXPECT_DOUBLE_EQ(metrics.ema("err"), 15.0);
  metrics.observe("err", 5.0);
  EXPECT_DOUBLE_EQ(metrics.ema("err"), 10.0);
}

TEST(MetricsRolling, WindowMeanEvictsOldestBeyondLimit) {
  trace::MetricsRegistry metrics;
  trace::RollingConfig config;
  config.window = 3;
  metrics.set_rolling_config(config);
  metrics.observe("p", 1.0);
  metrics.observe("p", 2.0);
  EXPECT_DOUBLE_EQ(metrics.window_mean("p"), 1.5);
  metrics.observe("p", 3.0);
  EXPECT_DOUBLE_EQ(metrics.window_mean("p"), 2.0);
  metrics.observe("p", 10.0);  // evicts the 1.0
  EXPECT_DOUBLE_EQ(metrics.window_mean("p"), 5.0);
  EXPECT_EQ(metrics.observations("p"), 4u);  // lifetime count keeps evicted
}

TEST(MetricsRolling, ConfigAppliesToStreamsCreatedAfterChange) {
  trace::MetricsRegistry metrics;
  metrics.observe("before", 1.0);
  trace::RollingConfig config;
  config.window = 1;
  metrics.set_rolling_config(config);
  metrics.observe("before", 3.0);  // existing stream keeps its window
  metrics.observe("after", 1.0);
  metrics.observe("after", 3.0);
  EXPECT_DOUBLE_EQ(metrics.window_mean("before"), 2.0);
  EXPECT_DOUBLE_EQ(metrics.window_mean("after"), 3.0);
}

TEST(MetricsRolling, FlattenedMergesScalarsAndSeries) {
  trace::MetricsRegistry metrics;
  metrics.add("switch.count", 2.0);
  metrics.observe("calibration.ape", 0.5);
  metrics.observe("calibration.ape", 0.3);
  const auto flat = metrics.flattened();
  EXPECT_DOUBLE_EQ(flat.at("switch.count"), 2.0);
  EXPECT_DOUBLE_EQ(flat.at("calibration.ape.mean"), 0.4);
  EXPECT_DOUBLE_EQ(flat.at("calibration.ape.count"), 2.0);
  EXPECT_GT(flat.at("calibration.ape.ema"), 0.0);
  EXPECT_FALSE(metrics.empty());
  metrics.clear();
  EXPECT_TRUE(metrics.empty());
  EXPECT_EQ(metrics.observations("calibration.ape"), 0u);
}

TEST(MetricsNonFinite, AddAndSetSkipAndCountDrops) {
  trace::MetricsRegistry metrics;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  metrics.add("flow.bytes", 100.0);
  metrics.add("flow.bytes", nan);   // skipped, counter untouched
  metrics.add("flow.bytes", inf);
  EXPECT_DOUBLE_EQ(metrics.value("flow.bytes"), 100.0);
  metrics.set("speed", 5.0);
  metrics.set("speed", -inf);       // gauge keeps its previous value
  EXPECT_DOUBLE_EQ(metrics.value("speed"), 5.0);
  EXPECT_DOUBLE_EQ(
      metrics.value(trace::MetricsRegistry::kDroppedSamplesKey), 3.0);
}

TEST(MetricsNonFinite, ObserveSkipsAndSeriesStaysClean) {
  trace::MetricsRegistry metrics;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  metrics.observe("err", 2.0);
  metrics.observe("err", nan);  // EMA, window and count all untouched
  metrics.observe("err", 4.0);
  EXPECT_EQ(metrics.observations("err"), 2u);
  EXPECT_DOUBLE_EQ(metrics.window_mean("err"), 3.0);
  const auto flat = metrics.flattened();
  EXPECT_DOUBLE_EQ(flat.at("err.count"), 2.0);
  EXPECT_DOUBLE_EQ(
      flat.at(trace::MetricsRegistry::kDroppedSamplesKey), 1.0);
}

TEST(MetricsNonFinite, DroppedCounterVisibleInAllAndFlattened) {
  trace::MetricsRegistry metrics;
  EXPECT_FALSE(metrics.has(trace::MetricsRegistry::kDroppedSamplesKey));
  metrics.set("g", std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(metrics.has(trace::MetricsRegistry::kDroppedSamplesKey));
  EXPECT_DOUBLE_EQ(
      metrics.all().at(trace::MetricsRegistry::kDroppedSamplesKey), 1.0);
}

TEST(RunningStats, MatchesBatch) {
  RunningStats rs;
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
}

TEST(Expect, ThrowsWithMessage) {
  try {
    AUTOPIPE_EXPECT_MSG(false, "value=" << 42);
    FAIL() << "should have thrown";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("value=42"), std::string::npos);
  }
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(gbps(8), 1e9);           // 8 gigabits = 1 GB/s
  EXPECT_DOUBLE_EQ(kib(1), 1024.0);
  EXPECT_DOUBLE_EQ(mib(1), 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(gflop(1), 1e9);
  EXPECT_DOUBLE_EQ(tflops(1), 1e12);
  EXPECT_DOUBLE_EQ(millis(1500), 1.5);
}

TEST(TextTable, RendersAlignedRows) {
  TextTable t({"model", "speed"});
  t.add_row({"vgg16", TextTable::num(12.345, 1)});
  const std::string s = t.render("demo");
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("vgg16"), std::string::npos);
  EXPECT_NE(s.find("12.3"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(TextTable, RejectsWrongWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), contract_error);
}


TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"tool", "--alpha=3.5", "--name", "vgg16",
                        "--verbose"};
  Flags flags(5, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("alpha", 0), 3.5);
  EXPECT_EQ(flags.get("name", ""), "vgg16");
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get_int("missing", 7), 7);
  EXPECT_TRUE(flags.has("alpha"));
  EXPECT_FALSE(flags.has("beta"));
}

TEST(Flags, RejectsMalformedInput) {
  const char* bad[] = {"tool", "positional"};
  EXPECT_THROW(Flags(2, bad), contract_error);
  const char* nonnum[] = {"tool", "--x=abc"};
  Flags flags(2, nonnum);
  EXPECT_THROW(flags.get_double("x", 0), contract_error);
  EXPECT_THROW(flags.get_int("x", 0), contract_error);
}

TEST(Flags, TracksUnusedFlags) {
  const char* argv[] = {"tool", "--used=1", "--typo=2"};
  Flags flags(3, argv);
  (void)flags.get_int("used", 0);
  const auto unused = flags.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

}  // namespace
}  // namespace autopipe
