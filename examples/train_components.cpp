// Offline training of AutoPipe's learned components (§4.3): generate a
// simulator-labelled speed dataset, train the meta-network, train the RL
// arbiter on randomized dynamic episodes, save both to disk, reload them
// and deploy the full learned stack on a fresh dynamic scenario.
//
//   ./examples/train_components [samples] [episodes]
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "autopipe/controller.hpp"
#include "autopipe/training.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "models/zoo.hpp"
#include "partition/pipedream_planner.hpp"
#include "pipeline/executor.hpp"
#include "sim/cluster.hpp"
#include "sim/trace.hpp"

using namespace autopipe;

int main(int argc, char** argv) {
  const std::size_t samples =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 120;
  const std::size_t episodes =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10;

  const models::ModelSpec model = models::resnet50();
  core::FeatureConfig feature_config;
  feature_config.throughput_scale = 2000.0;  // ResNet50's operating range
  const core::FeatureEncoder encoder(feature_config);

  // 1) Speed dataset from randomized shared-cluster scenarios.
  std::cout << "generating " << samples << " simulator-labelled samples...\n";
  auto dataset = core::generate_speed_dataset(model, samples, 7, encoder);

  // 2) Train the meta-network.
  core::MetaNetworkConfig meta_config;
  meta_config.dynamic_dim = encoder.dynamic_dim();
  meta_config.static_dim = encoder.static_dim();
  meta_config.partition_dim = encoder.partition_dim();
  core::MetaNetwork meta(meta_config, 11);
  const auto meta_result = core::train_meta_network(meta, dataset, 40, 16, 3);
  std::cout << "meta-network: train loss "
            << TextTable::num(meta_result.train_loss, 4) << ", validation "
            << TextTable::num(meta_result.validation_loss, 4) << "\n";

  // 3) Train the arbiter on dynamic episodes (exploring).
  rl::DqnConfig dqn_config;
  dqn_config.state_dim = encoder.arbiter_dim();
  rl::DqnAgent agent(dqn_config, 13);
  std::cout << "training arbiter on " << episodes << " episodes...\n";
  const auto arbiter_result =
      core::train_arbiter_offline(agent, model, episodes, 25, 17, &meta);
  std::cout << "arbiter: " << arbiter_result.total_switches
            << " exploratory switches, mean episode throughput "
            << TextTable::num(arbiter_result.mean_episode_throughput, 1)
            << " img/s\n";

  // 4) Save both, reload into fresh instances (the deployment path).
  {
    std::ofstream meta_file("autopipe_meta.net");
    meta.save(meta_file);
    std::ofstream agent_file("autopipe_arbiter.net");
    agent.save(agent_file);
  }
  core::MetaNetwork deployed_meta(meta_config, 999);
  rl::DqnAgent deployed_agent(dqn_config, 999);
  {
    std::ifstream meta_file("autopipe_meta.net");
    deployed_meta.load(meta_file);
    std::ifstream agent_file("autopipe_arbiter.net");
    deployed_agent.load(agent_file);
  }
  deployed_meta.begin_online_adaptation();
  deployed_agent.begin_online_adaptation();
  std::cout << "saved + reloaded autopipe_meta.net / autopipe_arbiter.net\n";

  // 5) Deploy on a fresh dynamic scenario.
  sim::Simulator simulator;
  sim::ClusterConfig cluster_config;
  cluster_config.nic_bandwidth = gbps(25);
  sim::Cluster cluster(simulator, cluster_config);
  const auto env = partition::EnvironmentView::from_cluster(
      cluster, comm::pytorch_profile(), comm::SyncScheme::kRing);
  partition::PipeDreamPlanner planner(model, env, model.default_batch_size());
  const auto plan = planner.plan(cluster.num_workers());

  pipeline::PipelineExecutor executor(cluster, model, plan.partition,
                                      pipeline::ExecutorConfig{});
  core::ControllerConfig controller_config;
  controller_config.arbiter_mode = core::ControllerConfig::ArbiterMode::kRl;
  controller_config.use_meta_network = true;
  core::AutoPipeController controller(cluster, executor, controller_config,
                                      &deployed_meta, &deployed_agent,
                                      encoder);
  controller.attach();

  sim::ResourceTrace trace;
  trace.at_iteration(20, sim::ResourceTrace::set_all_nic_bandwidth(gbps(10)));
  for (sim::WorkerId w : {0u, 1u, 2u})
    trace.at_iteration(40, sim::ResourceTrace::add_gpu_job(w));
  executor.set_iteration_callback([&](std::size_t iters) {
    trace.apply_iteration(iters, cluster);
    controller.on_iteration(iters);
  });
  const auto report = executor.run(60, 10);
  std::cout << "deployed run: " << TextTable::num(report.throughput, 1)
            << " img/s, " << executor.switches_performed() << " switches, "
            << controller.stats().decisions << " decisions\n";
  return 0;
}
