// Quickstart: plan a pipeline with PipeDream's DP, train on the simulated
// cluster, watch a bandwidth drop hurt the static plan, and let AutoPipe
// (analytic predictor + threshold arbiter — no pre-trained networks needed)
// re-partition on the fly.
//
//   ./examples/quickstart
#include <iostream>

#include "autopipe/controller.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "models/zoo.hpp"
#include "partition/pipedream_planner.hpp"
#include "pipeline/executor.hpp"
#include "sim/cluster.hpp"
#include "sim/trace.hpp"

using namespace autopipe;

int main() {
  // 1) The paper's testbed: 5 servers x 2 P100, 25 Gbps to start.
  sim::Simulator simulator;
  sim::ClusterConfig cluster_config;
  cluster_config.nic_bandwidth = gbps(25);
  sim::Cluster cluster(simulator, cluster_config);

  // 2) A model from the zoo and PipeDream's one-shot plan for it.
  const models::ModelSpec model = models::vgg16();
  const auto env = partition::EnvironmentView::from_cluster(
      cluster, comm::pytorch_profile(), comm::SyncScheme::kRing);
  partition::PipeDreamPlanner planner(model, env, model.default_batch_size());
  const partition::PlanResult plan = planner.plan(cluster.num_workers());
  std::cout << "PipeDream plan: " << plan.partition.to_string()
            << "  (in-flight " << plan.in_flight << ")\n";

  // 3) Train for a while at full bandwidth.
  pipeline::ExecutorConfig exec_config;
  pipeline::PipelineExecutor executor(cluster, model, plan.partition,
                                      exec_config);
  auto warm = executor.run(30, 5);
  std::cout << "steady-state speed @25Gbps: " << warm.throughput
            << " img/sec\n";

  // 4) Attach AutoPipe (analytic predictor, threshold arbiter), then halve
  //    the bandwidth mid-training and keep going.
  core::ControllerConfig controller_config;
  controller_config.arbiter_mode =
      core::ControllerConfig::ArbiterMode::kThreshold;
  controller_config.use_meta_network = false;
  core::AutoPipeController controller(cluster, executor, controller_config,
                                      nullptr, nullptr);

  sim::ResourceTrace trace;
  trace.at_iteration(40, sim::ResourceTrace::set_all_nic_bandwidth(gbps(10)));
  executor.set_iteration_callback([&](std::size_t iters) {
    trace.apply_iteration(iters, cluster);
    controller.on_iteration(iters);
  });

  auto adapted = executor.run(60, 20);
  std::cout << "speed after bandwidth drop with AutoPipe: "
            << adapted.throughput << " img/sec  (switches: "
            << executor.switches_performed() << ")\n";
  std::cout << "current partition: "
            << executor.current_partition().to_string() << "\n";
  return 0;
}
