// Dynamic shared-cluster walkthrough: train ResNet50 while other tenants
// come and go (scripted and stochastic), with the full AutoPipe loop —
// profiler, resource monitor, re-planner, fine-grained switching — narrated
// iteration by iteration.
//
//   ./examples/dynamic_cluster [seed]
#include <cstdlib>
#include <iostream>

#include "autopipe/controller.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "models/zoo.hpp"
#include "partition/pipedream_planner.hpp"
#include "pipeline/executor.hpp"
#include "sim/background.hpp"
#include "sim/cluster.hpp"
#include "sim/trace.hpp"

using namespace autopipe;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                      : 2024;

  // A 25 Gbps testbed with stochastic background churn on top of two
  // scripted events.
  sim::Simulator simulator;
  sim::ClusterConfig cluster_config;
  cluster_config.nic_bandwidth = gbps(25);
  sim::Cluster cluster(simulator, cluster_config);

  sim::BackgroundWorkloadConfig churn;
  churn.gpu_job_rate = 0.01;
  churn.net_job_rate = 0.01;
  churn.horizon = 120.0;
  sim::BackgroundWorkload background(churn, Rng(seed));
  background.install(simulator, cluster);
  std::cout << "background churn: " << background.gpu_jobs()
            << " GPU jobs, " << background.net_jobs() << " network jobs\n";

  const models::ModelSpec model = models::resnet50();
  const auto env = partition::EnvironmentView::from_cluster(
      cluster, comm::pytorch_profile(), comm::SyncScheme::kRing);
  partition::PipeDreamPlanner planner(model, env, model.default_batch_size());
  const auto plan = planner.plan(cluster.num_workers());
  std::cout << "initial plan: " << plan.partition.to_string() << "\n\n";

  pipeline::PipelineExecutor executor(cluster, model, plan.partition,
                                      pipeline::ExecutorConfig{});
  core::ControllerConfig controller_config;
  controller_config.arbiter_mode =
      core::ControllerConfig::ArbiterMode::kThreshold;
  controller_config.use_meta_network = false;
  core::AutoPipeController controller(cluster, executor, controller_config,
                                      nullptr, nullptr);
  controller.attach();

  // Two scripted events on top of the stochastic churn.
  sim::ResourceTrace trace;
  trace.at_iteration(30, sim::ResourceTrace::set_all_nic_bandwidth(gbps(10)));
  for (sim::WorkerId w : {0u, 1u, 2u, 3u})
    trace.at_iteration(60, sim::ResourceTrace::add_gpu_job(w));

  std::size_t last_switches = 0;
  TextTable timeline({"iteration", "img/s (5-iter window)", "partition",
                      "event"});
  std::vector<Seconds> end_times;
  executor.set_iteration_callback([&](std::size_t iters) {
    trace.apply_iteration(iters, cluster);
    controller.on_iteration(iters);
    end_times.push_back(simulator.now());
    if (iters % 10 == 0 && end_times.size() >= 6) {
      const double window =
          5.0 * executor.batch_size() /
          (end_times.back() - end_times[end_times.size() - 6]);
      std::string event;
      if (iters == 30) event = "bandwidth 25G -> 10G";
      if (iters == 60) event = "+1 job on workers 0-3";
      if (executor.switches_performed() > last_switches) {
        event += (event.empty() ? "" : "; ");
        event += "switched partition";
        last_switches = executor.switches_performed();
      }
      timeline.add_row({std::to_string(iters), TextTable::num(window, 1),
                        executor.current_partition().to_string(), event});
    }
  });

  const auto report = executor.run(90, 10);
  timeline.print(std::cout, "training timeline");
  std::cout << "\noverall: " << TextTable::num(report.throughput, 1)
            << " img/s, " << executor.switches_performed()
            << " partition switches, "
            << controller.stats().changes_detected
            << " resource changes detected, decision loop cost "
            << TextTable::num(
                   controller.stats().total_decision_wall_seconds * 1e3, 2)
            << " ms host time\n";
  return 0;
}
