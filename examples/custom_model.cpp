// Bring your own model: describe a network with the ConvNetBuilder (or raw
// LayerSpecs), inspect its Table-1 profile, compare partitioning strategies
// and pick the planner output. This is the path a downstream user takes to
// evaluate pipeline-parallel deployment of their own architecture.
//
//   ./examples/custom_model
#include <iostream>

#include "baselines/data_parallel.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "models/zoo.hpp"
#include "partition/analytic_eval.hpp"
#include "partition/pipedream_planner.hpp"
#include "pipeline/executor.hpp"
#include "pipeline/memory.hpp"
#include "sim/cluster.hpp"

using namespace autopipe;

int main() {
  // 1) Describe the model. A mid-sized convnet with a wide classifier head
  //    — deliberately unbalanced so partitioning matters.
  models::ConvNetBuilder builder("custom-net", 3, 128, 128);
  builder.conv("stem", 32, 5, 2, 2)
      .conv("block1a", 64, 3)
      .conv("block1b", 64, 3)
      .maxpool("pool1", 2, 2)
      .conv("block2a", 128, 3)
      .conv("block2b", 128, 3)
      .maxpool("pool2", 2, 2)
      .conv("block3a", 256, 3)
      .conv("block3b", 256, 3)
      .global_avgpool("gap")
      .fc("embed", 2048)
      .fc("head", 1000);
  const models::ModelSpec model = std::move(builder).build(64);

  // 2) Inspect the Table-1 profile.
  TextTable profile({"layer", "fwd GFLOPs/sample", "activation KB/sample",
                     "params (MB)"});
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    profile.add_row({model.layer(l).name,
                     TextTable::num(model.fwd_flops(l, 1) / 1e9, 3),
                     TextTable::num(
                         model.layer(l).activation_bytes_per_sample / 1024, 1),
                     TextTable::num(model.param_bytes(l) / 1e6, 2)});
  }
  profile.print(std::cout, "model profile (Table-1 quantities)");

  // 3) Compare deployment strategies on a 4-server / 25 Gbps slice.
  auto make_cluster = [](sim::Simulator& sim) {
    sim::ClusterConfig config;
    config.num_servers = 4;
    config.gpus_per_server = 1;
    config.nic_bandwidth = gbps(25);
    return std::make_unique<sim::Cluster>(sim, config);
  };

  TextTable comparison({"strategy", "img/s", "utilization"});
  {
    sim::Simulator sim;
    auto cluster = make_cluster(sim);
    const double dp = baselines::run_data_parallel(
                          *cluster, model, {0, 1, 2, 3}, 30, 5)
                          .throughput;
    comparison.add_row({"data parallel (ring)", TextTable::num(dp, 1), "-"});
  }
  {
    sim::Simulator sim;
    auto cluster = make_cluster(sim);
    pipeline::PipelineExecutor executor(
        *cluster, model,
        partition::Partition::even_split(model.num_layers(), {0, 1, 2, 3}),
        pipeline::ExecutorConfig{});
    const auto r = executor.run(40, 10);
    comparison.add_row({"pipeline, even split", TextTable::num(r.throughput, 1),
                        TextTable::num(r.worker_utilization, 2)});
  }
  {
    sim::Simulator sim;
    auto cluster = make_cluster(sim);
    const auto env = partition::EnvironmentView::from_cluster(
        *cluster, comm::pytorch_profile(), comm::SyncScheme::kRing);
    partition::PipeDreamPlanner planner(model, env,
                                        model.default_batch_size());
    const auto plan = planner.plan(4);
    std::cout << "\nplanner output: " << plan.partition.to_string()
              << "  (in-flight " << plan.in_flight << ", solve "
              << TextTable::num(planner.last_solve_seconds() * 1e3, 2)
              << " ms)\n";
    // Check the plan actually fits device memory before deploying.
    const bool fits = pipeline::plan_fits_memory(
        *cluster, model, plan.partition, model.default_batch_size(),
        pipeline::ScheduleMode::kAsync1F1B, plan.in_flight);
    std::cout << "fits 16 GB devices with weight stashing: "
              << (fits ? "yes" : "NO") << "\n\n";
    pipeline::PipelineExecutor executor(*cluster, model, plan.partition,
                                        pipeline::ExecutorConfig{});
    const auto r = executor.run(40, 10);
    comparison.add_row({"pipeline, planned", TextTable::num(r.throughput, 1),
                        TextTable::num(r.worker_utilization, 2)});
  }
  comparison.print(std::cout, "deployment comparison (4 GPUs, 25 Gbps)");
  return 0;
}
