// AutoPipe as an enhancement layer for other pipeline systems (the Fig 13
// usage): run BERT-48 under the DAPPLE, Chimera and PipeDream-2BW schedules
// with and without the AutoPipe controller attached, in a shared cluster
// that degrades mid-run.
//
//   ./examples/enhance_pipeline
#include <iostream>
#include <memory>

#include "autopipe/controller.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "models/zoo.hpp"
#include "partition/partition.hpp"
#include "pipeline/executor.hpp"
#include "sim/cluster.hpp"
#include "sim/trace.hpp"

using namespace autopipe;

namespace {

double run(pipeline::ScheduleMode mode, bool enhanced) {
  sim::Simulator simulator;
  sim::ClusterConfig cluster_config;
  cluster_config.nic_bandwidth = gbps(100);
  sim::Cluster cluster(simulator, cluster_config);

  const models::ModelSpec model = models::bert48();
  // These systems target structurally uniform models and split evenly.
  const auto partition = partition::Partition::even_split(
      model.num_layers(), {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});

  pipeline::ExecutorConfig config;
  config.mode = mode;
  config.micro_batches = 8;
  pipeline::PipelineExecutor executor(cluster, model, partition, config);

  std::unique_ptr<core::AutoPipeController> controller;
  if (enhanced) {
    core::ControllerConfig cc;
    cc.arbiter_mode = core::ControllerConfig::ArbiterMode::kThreshold;
    cc.use_meta_network = false;
    controller = std::make_unique<core::AutoPipeController>(
        cluster, executor, cc, nullptr, nullptr);
    controller->attach();
  }

  sim::ResourceTrace trace;
  trace.at_iteration(12, sim::ResourceTrace::set_nic_bandwidth(0, gbps(25)));
  trace.at_iteration(12, sim::ResourceTrace::set_nic_bandwidth(1, gbps(25)));
  for (sim::WorkerId w : {4u, 5u, 6u, 7u})
    trace.at_iteration(24, sim::ResourceTrace::add_gpu_job(w));
  executor.set_iteration_callback([&](std::size_t iters) {
    trace.apply_iteration(iters, cluster);
    if (controller) controller->on_iteration(iters);
  });
  return executor.run(80, 30).throughput;
}

}  // namespace

int main() {
  TextTable table({"schedule", "vanilla (seq/s)", "AutoPipe-enhanced",
                   "gain"});
  const std::pair<const char*, pipeline::ScheduleMode> systems[] = {
      {"DAPPLE", pipeline::ScheduleMode::kDapple},
      {"Chimera", pipeline::ScheduleMode::kChimera},
      {"PipeDream-2BW", pipeline::ScheduleMode::kTwoBW},
  };
  for (const auto& [name, mode] : systems) {
    const double vanilla = run(mode, false);
    const double enhanced = run(mode, true);
    table.add_row({name, TextTable::num(vanilla, 1),
                   TextTable::num(enhanced, 1),
                   TextTable::num((enhanced / vanilla - 1.0) * 100.0, 1) +
                       "%"});
  }
  table.print(std::cout,
              "AutoPipe-enhanced pipeline systems (BERT-48, dynamic shared "
              "cluster)");
  return 0;
}
