// ML framework profiles. Fig 8's framework axis (TensorFlow vs MXNet vs
// PyTorch) is, for partitioning purposes, a set of constant efficiency
// factors: per-layer kernel-launch overhead, achieved fraction of NIC line
// rate by the comm library, and achieved fraction of device peak by the
// kernel library. Values are in the range reported by published
// framework-comparison studies; absolute numbers are not load-bearing, the
// *ordering* (PyTorch/NCCL leanest, TF heaviest per-op) is.
#pragma once

#include <string>

#include "common/units.hpp"

namespace autopipe::comm {

/// Parameter-synchronization pattern for replicated (data-parallel) stages.
enum class SyncScheme {
  kRing,             ///< ring all-reduce (NCCL/Horovod style)
  kParameterServer,  ///< un-sharded PS co-located with the first replica
};

const char* to_string(SyncScheme scheme);

struct FrameworkProfile {
  std::string name;
  /// Fixed host-side time per layer per pass (kernel launch, op dispatch).
  Seconds per_layer_overhead = 0.0;
  /// Fraction of NIC line rate the comm stack achieves.
  double comm_efficiency = 1.0;
  /// Fraction of the GPU's sustained throughput the kernels achieve.
  double compute_efficiency = 1.0;
};

FrameworkProfile tensorflow_profile();
FrameworkProfile mxnet_profile();
FrameworkProfile pytorch_profile();
FrameworkProfile framework_by_name(const std::string& name);

// --- analytic synchronization cost (used by the planners) -----------------

/// Ring all-reduce of `bytes` over `n` workers, slowest-link bandwidth `bw`:
/// 2(n-1)/n * V / (bw * efficiency). n == 1 costs nothing.
Seconds ring_allreduce_time(Bytes bytes, std::size_t n, BytesPerSec bw,
                            double efficiency = 1.0);

/// Un-sharded parameter server: the PS NIC carries (n-1) pushes of V in and
/// (n-1) pulls of V out; with full-duplex NICs the bottleneck direction is
/// (n-1) * V / (bw * efficiency).
Seconds parameter_server_time(Bytes bytes, std::size_t n, BytesPerSec bw,
                              double efficiency = 1.0);

Seconds sync_time(SyncScheme scheme, Bytes bytes, std::size_t n,
                  BytesPerSec bw, double efficiency = 1.0);

}  // namespace autopipe::comm
