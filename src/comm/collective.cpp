#include "comm/collective.hpp"

#include <utility>

#include "common/expect.hpp"

namespace autopipe::comm {

namespace {

/// Shared state of one in-progress ring all-reduce.
struct RingState {
  sim::Cluster* cluster;
  std::vector<sim::WorkerId> members;
  Bytes chunk_on_wire;     // bytes/n inflated by 1/efficiency
  std::size_t steps_left;  // 2(n-1) total
  std::size_t pending_in_step = 0;
  std::function<void()> done;
};

void ring_step(const std::shared_ptr<RingState>& state) {
  if (state->steps_left == 0) {
    if (state->done) state->done();
    return;
  }
  --state->steps_left;
  const std::size_t n = state->members.size();
  state->pending_in_step = n;
  for (std::size_t i = 0; i < n; ++i) {
    const sim::WorkerId src = state->members[i];
    const sim::WorkerId dst = state->members[(i + 1) % n];
    state->cluster->transfer(src, dst, state->chunk_on_wire, [state] {
      AUTOPIPE_EXPECT(state->pending_in_step > 0);
      if (--state->pending_in_step == 0) ring_step(state);
    });
  }
}

struct PsState {
  sim::Cluster* cluster;
  std::vector<sim::WorkerId> members;
  Bytes bytes_on_wire;
  std::size_t pending = 0;
  bool pulling = false;
  std::function<void()> done;
};

void ps_pull(const std::shared_ptr<PsState>& state) {
  state->pulling = true;
  state->pending = state->members.size() - 1;
  if (state->pending == 0) {
    if (state->done) state->done();
    return;
  }
  const sim::WorkerId server = state->members.front();
  for (std::size_t i = 1; i < state->members.size(); ++i) {
    state->cluster->transfer(server, state->members[i], state->bytes_on_wire,
                             [state] {
                               AUTOPIPE_EXPECT(state->pending > 0);
                               if (--state->pending == 0 && state->done)
                                 state->done();
                             });
  }
}

}  // namespace

void Collective::ring_allreduce(sim::Cluster& cluster,
                                std::vector<sim::WorkerId> members,
                                Bytes bytes, double efficiency,
                                std::function<void()> done) {
  AUTOPIPE_EXPECT(!members.empty());
  AUTOPIPE_EXPECT(efficiency > 0.0 && efficiency <= 1.0);
  if (members.size() == 1 || bytes <= 0.0) {
    if (done) cluster.simulator().after(0.0, std::move(done));
    return;
  }
  auto state = std::make_shared<RingState>();
  state->cluster = &cluster;
  state->members = std::move(members);
  state->chunk_on_wire =
      bytes / static_cast<double>(state->members.size()) / efficiency;
  state->steps_left = 2 * (state->members.size() - 1);
  state->done = std::move(done);
  ring_step(state);
}

void Collective::parameter_server(sim::Cluster& cluster,
                                  std::vector<sim::WorkerId> members,
                                  Bytes bytes, double efficiency,
                                  std::function<void()> done) {
  AUTOPIPE_EXPECT(!members.empty());
  AUTOPIPE_EXPECT(efficiency > 0.0 && efficiency <= 1.0);
  if (members.size() == 1 || bytes <= 0.0) {
    if (done) cluster.simulator().after(0.0, std::move(done));
    return;
  }
  auto state = std::make_shared<PsState>();
  state->cluster = &cluster;
  state->members = std::move(members);
  state->bytes_on_wire = bytes / efficiency;
  state->done = std::move(done);
  // Push phase.
  state->pending = state->members.size() - 1;
  const sim::WorkerId server = state->members.front();
  for (std::size_t i = 1; i < state->members.size(); ++i) {
    cluster.transfer(state->members[i], server, state->bytes_on_wire,
                     [state] {
                       AUTOPIPE_EXPECT(state->pending > 0);
                       if (--state->pending == 0) ps_pull(state);
                     });
  }
}

void Collective::run(SyncScheme scheme, sim::Cluster& cluster,
                     std::vector<sim::WorkerId> members, Bytes bytes,
                     double efficiency, std::function<void()> done) {
  switch (scheme) {
    case SyncScheme::kRing:
      ring_allreduce(cluster, std::move(members), bytes, efficiency,
                     std::move(done));
      return;
    case SyncScheme::kParameterServer:
      parameter_server(cluster, std::move(members), bytes, efficiency,
                       std::move(done));
      return;
  }
}

}  // namespace autopipe::comm
