// Event-driven collectives executed on the simulated cluster. Unlike the
// analytic formulas in framework.hpp (which the *planners* use), these run
// real flows through the FlowNetwork, so synchronization traffic contends
// with activation/gradient transfers and with other jobs' traffic — the
// "exact communication procedure" the paper's integrated model observes.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "comm/framework.hpp"
#include "sim/cluster.hpp"

namespace autopipe::comm {

/// Fire-and-callback collective over a member set. All functions return
/// immediately; `done` fires at the simulated completion instant.
class Collective {
 public:
  /// Ring all-reduce of `bytes` over `members` (order defines the ring):
  /// 2(n-1) serialized steps, each moving bytes/n along every ring edge
  /// concurrently. comm `efficiency` < 1 inflates the on-wire volume.
  static void ring_allreduce(sim::Cluster& cluster,
                             std::vector<sim::WorkerId> members, Bytes bytes,
                             double efficiency, std::function<void()> done);

  /// Un-sharded parameter server co-located with members.front(): a push
  /// phase (every other member sends `bytes` to the PS) followed by a pull
  /// phase (PS sends updated values back).
  static void parameter_server(sim::Cluster& cluster,
                               std::vector<sim::WorkerId> members, Bytes bytes,
                               double efficiency, std::function<void()> done);

  static void run(SyncScheme scheme, sim::Cluster& cluster,
                  std::vector<sim::WorkerId> members, Bytes bytes,
                  double efficiency, std::function<void()> done);
};

}  // namespace autopipe::comm
