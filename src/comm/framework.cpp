#include "comm/framework.hpp"

#include "common/expect.hpp"

namespace autopipe::comm {

const char* to_string(SyncScheme scheme) {
  switch (scheme) {
    case SyncScheme::kRing: return "Ring";
    case SyncScheme::kParameterServer: return "PS";
  }
  return "?";
}

FrameworkProfile tensorflow_profile() {
  return FrameworkProfile{"tensorflow", micros(120), 0.80, 0.90};
}

FrameworkProfile mxnet_profile() {
  return FrameworkProfile{"mxnet", micros(90), 0.84, 0.93};
}

FrameworkProfile pytorch_profile() {
  return FrameworkProfile{"pytorch", micros(60), 0.92, 1.00};
}

FrameworkProfile framework_by_name(const std::string& name) {
  if (name == "tensorflow") return tensorflow_profile();
  if (name == "mxnet") return mxnet_profile();
  if (name == "pytorch") return pytorch_profile();
  AUTOPIPE_EXPECT_MSG(false, "unknown framework: " << name);
  throw contract_error("unreachable");
}

Seconds ring_allreduce_time(Bytes bytes, std::size_t n, BytesPerSec bw,
                            double efficiency) {
  AUTOPIPE_EXPECT(n >= 1);
  AUTOPIPE_EXPECT(bw > 0.0 && efficiency > 0.0);
  if (n == 1) return 0.0;
  const double steps = 2.0 * (static_cast<double>(n) - 1.0);
  const double chunk = bytes / static_cast<double>(n);
  return steps * chunk / (bw * efficiency);
}

Seconds parameter_server_time(Bytes bytes, std::size_t n, BytesPerSec bw,
                              double efficiency) {
  AUTOPIPE_EXPECT(n >= 1);
  AUTOPIPE_EXPECT(bw > 0.0 && efficiency > 0.0);
  if (n == 1) return 0.0;
  return (static_cast<double>(n) - 1.0) * bytes / (bw * efficiency);
}

Seconds sync_time(SyncScheme scheme, Bytes bytes, std::size_t n,
                  BytesPerSec bw, double efficiency) {
  switch (scheme) {
    case SyncScheme::kRing:
      return ring_allreduce_time(bytes, n, bw, efficiency);
    case SyncScheme::kParameterServer:
      return parameter_server_time(bytes, n, bw, efficiency);
  }
  return 0.0;
}

}  // namespace autopipe::comm
