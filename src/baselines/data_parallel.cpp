#include "baselines/data_parallel.hpp"

#include <memory>

#include "comm/collective.hpp"
#include "common/expect.hpp"

namespace autopipe::baselines {

namespace {

struct DpState {
  sim::Cluster* cluster;
  const models::ModelSpec* model;
  std::vector<sim::WorkerId> workers;
  DataParallelConfig config;
  std::size_t batch;
  std::size_t target_iterations;
  std::size_t completed = 0;
  std::size_t compute_pending = 0;
  std::vector<Seconds> iteration_end_times;
  bool done = false;
};

void start_iteration(const std::shared_ptr<DpState>& s);

void on_sync_done(const std::shared_ptr<DpState>& s) {
  ++s->completed;
  s->iteration_end_times.push_back(s->cluster->simulator().now());
  if (s->completed >= s->target_iterations) {
    s->done = true;
    return;
  }
  start_iteration(s);
}

void on_compute_done(const std::shared_ptr<DpState>& s) {
  AUTOPIPE_EXPECT(s->compute_pending > 0);
  if (--s->compute_pending > 0) return;
  // Barrier reached: synchronize the full model's gradients.
  comm::Collective::run(s->config.sync_scheme, *s->cluster, s->workers,
                        s->model->total_param_bytes(),
                        s->config.framework.comm_efficiency,
                        [s] { on_sync_done(s); });
}

void start_iteration(const std::shared_ptr<DpState>& s) {
  s->compute_pending = s->workers.size();
  const Seconds overhead =
      2.0 * s->config.framework.per_layer_overhead *
      static_cast<double>(s->model->num_layers());
  for (sim::WorkerId w : s->workers) {
    Flops work = 0.0;
    for (std::size_t l = 0; l < s->model->num_layers(); ++l) {
      work += s->model->fwd_flops(l, s->batch) +
              s->model->bwd_flops(l, s->batch);
    }
    work /= s->config.framework.compute_efficiency;
    s->cluster->gpu(w).submit(work, overhead,
                              [s] { on_compute_done(s); });
  }
}

}  // namespace

pipeline::ExecutionReport run_data_parallel(
    sim::Cluster& cluster, const models::ModelSpec& model,
    std::vector<sim::WorkerId> workers, std::size_t iterations,
    std::size_t warmup, const DataParallelConfig& config) {
  AUTOPIPE_EXPECT(!workers.empty());
  AUTOPIPE_EXPECT(iterations > warmup);

  auto s = std::make_shared<DpState>();
  s->cluster = &cluster;
  s->model = &model;
  s->workers = std::move(workers);
  s->config = config;
  s->batch = config.batch_size ? config.batch_size
                               : model.default_batch_size();
  s->target_iterations = iterations;

  sim::Simulator& sim = cluster.simulator();
  const Seconds entry = sim.now();
  const Bytes entry_bytes = cluster.network().total_bytes_delivered();
  start_iteration(s);
  while (!s->done) {
    AUTOPIPE_EXPECT_MSG(sim.step(), "data-parallel deadlock");
  }

  pipeline::ExecutionReport report;
  report.iterations = iterations;
  report.batch_size = s->batch;
  report.elapsed = sim.now() - entry;
  report.bytes_on_wire = cluster.network().total_bytes_delivered() -
                         entry_bytes;
  report.iteration_end_times = s->iteration_end_times;
  Seconds prev = entry;
  for (Seconds t : report.iteration_end_times) {
    const Seconds gap = t - prev;
    // Aggregate: every worker advanced one mini-batch this iteration.
    report.iteration_throughput.push_back(
        gap > 0.0 ? static_cast<double>(s->batch * s->workers.size()) / gap
                  : 0.0);
    prev = t;
  }
  const Seconds measure_start =
      warmup == 0 ? entry : s->iteration_end_times[warmup - 1];
  report.throughput =
      static_cast<double>((iterations - warmup) * s->batch *
                          s->workers.size()) /
      (sim.now() - measure_start);
  return report;
}

}  // namespace autopipe::baselines
