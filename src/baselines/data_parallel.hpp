// Vanilla data-parallel training — the "baseline (vanilla ML frameworks)"
// of Fig 8. Bulk-synchronous: every worker computes a full FP+BP over its
// own mini-batch, then a blocking weight synchronization (ring all-reduce or
// parameter server) of the entire model runs before the next iteration.
// Reported throughput is aggregate samples/sec across the workers, the
// paper's img/sec metric.
#pragma once

#include <cstddef>
#include <vector>

#include "comm/framework.hpp"
#include "models/model.hpp"
#include "pipeline/report.hpp"
#include "sim/cluster.hpp"

namespace autopipe::baselines {

struct DataParallelConfig {
  std::size_t batch_size = 0;  // per worker; 0 = model default
  comm::FrameworkProfile framework = comm::pytorch_profile();
  comm::SyncScheme sync_scheme = comm::SyncScheme::kRing;
};

/// Run BSP data parallelism over `workers` for `iterations` updates.
pipeline::ExecutionReport run_data_parallel(
    sim::Cluster& cluster, const models::ModelSpec& model,
    std::vector<sim::WorkerId> workers, std::size_t iterations,
    std::size_t warmup, const DataParallelConfig& config = {});

}  // namespace autopipe::baselines
