// Naive model parallelism (Fig 1b): the model is split across workers but
// only one mini-batch is in flight, so at most one stage computes at a
// time. Realized as the pipeline executor with in_flight pinned to 1 —
// which is exactly what model parallelism is, and makes the "pipelining =
// model parallelism + multiple in-flight batches" relationship executable.
#pragma once

#include <cstddef>
#include <vector>

#include "comm/framework.hpp"
#include "models/model.hpp"
#include "pipeline/report.hpp"
#include "sim/cluster.hpp"

namespace autopipe::baselines {

pipeline::ExecutionReport run_model_parallel(
    sim::Cluster& cluster, const models::ModelSpec& model,
    std::vector<sim::WorkerId> workers, std::size_t iterations,
    std::size_t warmup,
    const comm::FrameworkProfile& framework = comm::pytorch_profile());

}  // namespace autopipe::baselines
