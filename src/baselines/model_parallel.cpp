#include "baselines/model_parallel.hpp"

#include "partition/partition.hpp"
#include "pipeline/executor.hpp"

namespace autopipe::baselines {

pipeline::ExecutionReport run_model_parallel(
    sim::Cluster& cluster, const models::ModelSpec& model,
    std::vector<sim::WorkerId> workers, std::size_t iterations,
    std::size_t warmup, const comm::FrameworkProfile& framework) {
  auto partition =
      partition::Partition::even_split(model.num_layers(), std::move(workers));
  pipeline::ExecutorConfig config;
  config.framework = framework;
  config.in_flight = 1;  // the defining property of naive model parallelism
  pipeline::PipelineExecutor executor(cluster, model, std::move(partition),
                                      config);
  return executor.run(iterations, warmup);
}

}  // namespace autopipe::baselines
