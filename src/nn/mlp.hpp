// Fully-connected networks with explicit backward passes. Enough machinery
// for the paper's two nets: the meta-network's dense head and the RL
// arbiter's 32-16 hidden stack ("two hidden layers with 32 and 16 neurons
// are enough", §4.3).
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "nn/matrix.hpp"

namespace autopipe::nn {

enum class Activation { kIdentity, kRelu, kTanh, kSigmoid };

/// y = act(x W + b). Caches the forward inputs for backward().
class Linear {
 public:
  Linear(std::size_t in, std::size_t out, Activation activation, Rng& rng);

  /// x: batch x in -> batch x out.
  Matrix forward(const Matrix& x);
  /// dy: batch x out -> dx: batch x in. Accumulates into parameter grads.
  Matrix backward(const Matrix& dy);

  std::vector<Parameter*> parameters();
  std::size_t in_features() const { return w_.value.rows(); }
  std::size_t out_features() const { return w_.value.cols(); }

  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  Parameter w_;  // in x out
  Parameter b_;  // 1 x out
  Activation activation_;
  Matrix cached_input_;
  Matrix cached_pre_;  // pre-activation, for the activation derivative
};

/// A stack of Linear layers: hidden layers use `hidden_activation`, the last
/// layer `output_activation`.
class Mlp {
 public:
  Mlp(const std::vector<std::size_t>& widths, Activation hidden_activation,
      Activation output_activation, Rng& rng);

  Matrix forward(const Matrix& x);
  /// Backprop from dLoss/dOutput; returns dLoss/dInput.
  Matrix backward(const Matrix& dy);

  std::vector<Parameter*> parameters();
  void zero_grad();

  std::size_t input_size() const;
  std::size_t output_size() const;

  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  std::vector<Linear> layers_;
};

}  // namespace autopipe::nn
