// Dense row-major matrix for the in-repo neural nets (meta-network, RL
// arbiter). Deliberately minimal: the nets here are tiny (tens of thousands
// of weights), so clarity and testability beat BLAS.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "common/rng.hpp"

namespace autopipe::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix xavier(std::size_t rows, std::size_t cols, Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void fill(double v);
  Matrix transposed() const;

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // Element-wise in-place helpers.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  void save(std::ostream& os) const;
  static Matrix load(std::istream& is);

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// C = A x B.
Matrix matmul(const Matrix& a, const Matrix& b);
/// C = A^T x B without materializing the transpose.
Matrix matmul_tn(const Matrix& a, const Matrix& b);
/// C = A x B^T without materializing the transpose.
Matrix matmul_nt(const Matrix& a, const Matrix& b);
/// Broadcast-add a 1 x C row vector to every row.
void add_row_vector(Matrix& m, const Matrix& row);
/// 1 x C column sums.
Matrix column_sums(const Matrix& m);
/// Hadamard product.
Matrix hadamard(const Matrix& a, const Matrix& b);

/// A parameter tensor paired with its gradient accumulator.
struct Parameter {
  Matrix value;
  Matrix grad;

  explicit Parameter(Matrix v)
      : value(std::move(v)), grad(value.rows(), value.cols()) {}
  void zero_grad() { grad.fill(0.0); }
};

}  // namespace autopipe::nn
