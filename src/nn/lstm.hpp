// Single-layer LSTM with truncated backpropagation through time. The
// meta-network (§4.2, Fig 7) feeds a short window of per-iteration dynamic
// metrics through an LSTM block and reads out the final hidden state;
// training needs gradients w.r.t. the LSTM parameters only (the inputs are
// profiler features), which backward() provides.
#pragma once

#include <iosfwd>
#include <vector>

#include "nn/matrix.hpp"

namespace autopipe::nn {

class Lstm {
 public:
  Lstm(std::size_t input_size, std::size_t hidden_size, Rng& rng);

  /// Process a sequence of T inputs (each batch x input_size); returns the
  /// final hidden state (batch x hidden_size). Caches everything backward()
  /// needs.
  Matrix forward(const std::vector<Matrix>& inputs);

  /// Backpropagate from dLoss/dh_T through all cached steps, accumulating
  /// parameter gradients. Input gradients are not produced.
  void backward(const Matrix& dh_last);

  std::vector<Parameter*> parameters();
  void zero_grad();

  std::size_t input_size() const { return wx_.value.rows(); }
  std::size_t hidden_size() const { return wh_.value.rows(); }

  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  // Gate layout in the 4H axis: [input | forget | cell | output].
  Parameter wx_;  // input  x 4H
  Parameter wh_;  // hidden x 4H
  Parameter b_;   // 1 x 4H

  struct StepCache {
    Matrix x;       // batch x input
    Matrix h_prev;  // batch x H
    Matrix c_prev;  // batch x H
    Matrix i, f, g, o;  // gate activations, batch x H each
    Matrix c;       // batch x H
    Matrix tanh_c;  // batch x H
  };
  std::vector<StepCache> cache_;
};

}  // namespace autopipe::nn
