// Loss functions returning (value, gradient-at-prediction) pairs.
#pragma once

#include <utility>

#include "nn/matrix.hpp"

namespace autopipe::nn {

struct LossResult {
  double value = 0.0;
  Matrix grad;  // dLoss/dPred, same shape as pred
};

/// Mean squared error over all elements.
LossResult mse_loss(const Matrix& pred, const Matrix& target);

/// Binary cross entropy; pred must be in (0, 1) (sigmoid output).
LossResult bce_loss(const Matrix& pred, const Matrix& target);

/// Huber (smooth-L1) loss, the DQN-friendly choice.
LossResult huber_loss(const Matrix& pred, const Matrix& target,
                      double delta = 1.0);

}  // namespace autopipe::nn
