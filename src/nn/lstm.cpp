#include "nn/lstm.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace autopipe::nn {

namespace {
double sigmoid(double v) { return 1.0 / (1.0 + std::exp(-v)); }
}  // namespace

Lstm::Lstm(std::size_t input_size, std::size_t hidden_size, Rng& rng)
    : wx_(Matrix::xavier(input_size, 4 * hidden_size, rng)),
      wh_(Matrix::xavier(hidden_size, 4 * hidden_size, rng)),
      b_(Matrix(1, 4 * hidden_size)) {
  // Forget-gate bias at 1.0: the standard trick for stable early training.
  for (std::size_t c = hidden_size; c < 2 * hidden_size; ++c)
    b_.value.at(0, c) = 1.0;
}

Matrix Lstm::forward(const std::vector<Matrix>& inputs) {
  AUTOPIPE_EXPECT(!inputs.empty());
  const std::size_t H = hidden_size();
  const std::size_t B = inputs.front().rows();
  cache_.clear();
  cache_.reserve(inputs.size());

  Matrix h(B, H);
  Matrix c(B, H);
  for (const Matrix& x : inputs) {
    AUTOPIPE_EXPECT(x.rows() == B && x.cols() == input_size());
    Matrix z = matmul(x, wx_.value);
    z += matmul(h, wh_.value);
    add_row_vector(z, b_.value);

    StepCache step;
    step.x = x;
    step.h_prev = h;
    step.c_prev = c;
    step.i = Matrix(B, H);
    step.f = Matrix(B, H);
    step.g = Matrix(B, H);
    step.o = Matrix(B, H);
    step.c = Matrix(B, H);
    step.tanh_c = Matrix(B, H);
    for (std::size_t r = 0; r < B; ++r) {
      for (std::size_t j = 0; j < H; ++j) {
        const double zi = z.at(r, j);
        const double zf = z.at(r, H + j);
        const double zg = z.at(r, 2 * H + j);
        const double zo = z.at(r, 3 * H + j);
        const double iv = sigmoid(zi);
        const double fv = sigmoid(zf);
        const double gv = std::tanh(zg);
        const double ov = sigmoid(zo);
        const double cv = fv * c.at(r, j) + iv * gv;
        step.i.at(r, j) = iv;
        step.f.at(r, j) = fv;
        step.g.at(r, j) = gv;
        step.o.at(r, j) = ov;
        step.c.at(r, j) = cv;
        step.tanh_c.at(r, j) = std::tanh(cv);
      }
    }
    c = step.c;
    h = hadamard(step.o, step.tanh_c);
    cache_.push_back(std::move(step));
  }
  return h;
}

void Lstm::backward(const Matrix& dh_last) {
  AUTOPIPE_EXPECT(!cache_.empty());
  const std::size_t H = hidden_size();
  const std::size_t B = cache_.front().x.rows();
  AUTOPIPE_EXPECT(dh_last.rows() == B && dh_last.cols() == H);

  Matrix dh = dh_last;
  Matrix dc(B, H);
  for (auto it = cache_.rbegin(); it != cache_.rend(); ++it) {
    const StepCache& s = *it;
    Matrix dz(B, 4 * H);
    for (std::size_t r = 0; r < B; ++r) {
      for (std::size_t j = 0; j < H; ++j) {
        const double iv = s.i.at(r, j), fv = s.f.at(r, j);
        const double gv = s.g.at(r, j), ov = s.o.at(r, j);
        const double tc = s.tanh_c.at(r, j);
        const double dhv = dh.at(r, j);
        const double dov = dhv * tc;
        double dcv = dc.at(r, j) + dhv * ov * (1.0 - tc * tc);
        const double div = dcv * gv;
        const double dfv = dcv * s.c_prev.at(r, j);
        const double dgv = dcv * iv;
        dz.at(r, j) = div * iv * (1.0 - iv);
        dz.at(r, H + j) = dfv * fv * (1.0 - fv);
        dz.at(r, 2 * H + j) = dgv * (1.0 - gv * gv);
        dz.at(r, 3 * H + j) = dov * ov * (1.0 - ov);
        dc.at(r, j) = dcv * fv;  // propagate along the cell path
      }
    }
    wx_.grad += matmul_tn(s.x, dz);
    wh_.grad += matmul_tn(s.h_prev, dz);
    b_.grad += column_sums(dz);
    dh = matmul_nt(dz, wh_.value);
  }
}

std::vector<Parameter*> Lstm::parameters() { return {&wx_, &wh_, &b_}; }

void Lstm::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

void Lstm::save(std::ostream& os) const {
  wx_.value.save(os);
  wh_.value.save(os);
  b_.value.save(os);
}

void Lstm::load(std::istream& is) {
  Matrix wx = Matrix::load(is);
  Matrix wh = Matrix::load(is);
  Matrix b = Matrix::load(is);
  AUTOPIPE_EXPECT(wx.same_shape(wx_.value) && wh.same_shape(wh_.value) &&
                  b.same_shape(b_.value));
  wx_.value = std::move(wx);
  wh_.value = std::move(wh);
  b_.value = std::move(b);
}

}  // namespace autopipe::nn
