#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace autopipe::nn {

LossResult mse_loss(const Matrix& pred, const Matrix& target) {
  AUTOPIPE_EXPECT(pred.same_shape(target));
  LossResult out;
  out.grad = Matrix(pred.rows(), pred.cols());
  const double n = static_cast<double>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred.data()[i] - target.data()[i];
    out.value += d * d / n;
    out.grad.data()[i] = 2.0 * d / n;
  }
  return out;
}

LossResult bce_loss(const Matrix& pred, const Matrix& target) {
  AUTOPIPE_EXPECT(pred.same_shape(target));
  LossResult out;
  out.grad = Matrix(pred.rows(), pred.cols());
  const double n = static_cast<double>(pred.size());
  constexpr double eps = 1e-12;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double p = std::clamp(pred.data()[i], eps, 1.0 - eps);
    const double y = target.data()[i];
    out.value += -(y * std::log(p) + (1.0 - y) * std::log(1.0 - p)) / n;
    out.grad.data()[i] = (p - y) / (p * (1.0 - p)) / n;
  }
  return out;
}

LossResult huber_loss(const Matrix& pred, const Matrix& target,
                      double delta) {
  AUTOPIPE_EXPECT(pred.same_shape(target));
  AUTOPIPE_EXPECT(delta > 0.0);
  LossResult out;
  out.grad = Matrix(pred.rows(), pred.cols());
  const double n = static_cast<double>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred.data()[i] - target.data()[i];
    if (std::abs(d) <= delta) {
      out.value += 0.5 * d * d / n;
      out.grad.data()[i] = d / n;
    } else {
      out.value += delta * (std::abs(d) - 0.5 * delta) / n;
      out.grad.data()[i] = (d > 0.0 ? delta : -delta) / n;
    }
  }
  return out;
}

}  // namespace autopipe::nn
