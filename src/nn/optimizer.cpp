#include "nn/optimizer.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace autopipe::nn {

Sgd::Sgd(std::vector<Parameter*> params, double lr)
    : params_(std::move(params)), lr_(lr) {
  AUTOPIPE_EXPECT(!params_.empty());
  AUTOPIPE_EXPECT(lr_ > 0.0);
}

void Sgd::step() {
  for (Parameter* p : params_) {
    for (std::size_t i = 0; i < p->value.size(); ++i)
      p->value.data()[i] -= lr_ * p->grad.data()[i];
  }
}

void Sgd::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

void Sgd::set_learning_rate(double lr) {
  AUTOPIPE_EXPECT(lr > 0.0);
  lr_ = lr;
}

Adam::Adam(std::vector<Parameter*> params, double lr, double beta1,
           double beta2, double eps)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  AUTOPIPE_EXPECT(!params_.empty());
  AUTOPIPE_EXPECT(lr_ > 0.0);
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Parameter* p = params_[k];
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const double g = p->grad.data()[i];
      double& m = m_[k].data()[i];
      double& v = v_[k].data()[i];
      m = beta1_ * m + (1.0 - beta1_) * g;
      v = beta2_ * v + (1.0 - beta2_) * g * g;
      p->value.data()[i] -=
          lr_ * (m / bc1) / (std::sqrt(v / bc2) + eps_);
    }
  }
}

void Adam::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

void Adam::set_learning_rate(double lr) {
  AUTOPIPE_EXPECT(lr > 0.0);
  lr_ = lr;
}

}  // namespace autopipe::nn
