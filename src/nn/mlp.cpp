#include "nn/mlp.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace autopipe::nn {

namespace {

double activate(Activation a, double v) {
  switch (a) {
    case Activation::kIdentity: return v;
    case Activation::kRelu: return v > 0.0 ? v : 0.0;
    case Activation::kTanh: return std::tanh(v);
    case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-v));
  }
  return v;
}

/// Derivative in terms of the pre-activation value.
double activate_grad(Activation a, double pre) {
  switch (a) {
    case Activation::kIdentity: return 1.0;
    case Activation::kRelu: return pre > 0.0 ? 1.0 : 0.0;
    case Activation::kTanh: {
      const double t = std::tanh(pre);
      return 1.0 - t * t;
    }
    case Activation::kSigmoid: {
      const double s = 1.0 / (1.0 + std::exp(-pre));
      return s * (1.0 - s);
    }
  }
  return 1.0;
}

}  // namespace

Linear::Linear(std::size_t in, std::size_t out, Activation activation,
               Rng& rng)
    : w_(Matrix::xavier(in, out, rng)),
      b_(Matrix(1, out)),
      activation_(activation) {}

Matrix Linear::forward(const Matrix& x) {
  AUTOPIPE_EXPECT(x.cols() == w_.value.rows());
  cached_input_ = x;
  Matrix pre = matmul(x, w_.value);
  add_row_vector(pre, b_.value);
  cached_pre_ = pre;
  Matrix out = pre;
  for (std::size_t i = 0; i < out.size(); ++i)
    out.data()[i] = activate(activation_, out.data()[i]);
  return out;
}

Matrix Linear::backward(const Matrix& dy) {
  AUTOPIPE_EXPECT(dy.rows() == cached_pre_.rows() &&
                  dy.cols() == cached_pre_.cols());
  Matrix dpre = dy;
  for (std::size_t i = 0; i < dpre.size(); ++i)
    dpre.data()[i] *= activate_grad(activation_, cached_pre_.data()[i]);
  w_.grad += matmul_tn(cached_input_, dpre);
  b_.grad += column_sums(dpre);
  return matmul_nt(dpre, w_.value);
}

std::vector<Parameter*> Linear::parameters() { return {&w_, &b_}; }

void Linear::save(std::ostream& os) const {
  w_.value.save(os);
  b_.value.save(os);
}

void Linear::load(std::istream& is) {
  Matrix w = Matrix::load(is);
  Matrix b = Matrix::load(is);
  AUTOPIPE_EXPECT(w.same_shape(w_.value) && b.same_shape(b_.value));
  w_.value = std::move(w);
  b_.value = std::move(b);
}

Mlp::Mlp(const std::vector<std::size_t>& widths, Activation hidden_activation,
         Activation output_activation, Rng& rng) {
  AUTOPIPE_EXPECT(widths.size() >= 2);
  for (std::size_t i = 0; i + 1 < widths.size(); ++i) {
    const bool last = (i + 2 == widths.size());
    layers_.emplace_back(widths[i], widths[i + 1],
                         last ? output_activation : hidden_activation, rng);
  }
}

Matrix Mlp::forward(const Matrix& x) {
  Matrix h = x;
  for (Linear& layer : layers_) h = layer.forward(h);
  return h;
}

Matrix Mlp::backward(const Matrix& dy) {
  Matrix d = dy;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    d = it->backward(d);
  return d;
}

std::vector<Parameter*> Mlp::parameters() {
  std::vector<Parameter*> out;
  for (Linear& layer : layers_)
    for (Parameter* p : layer.parameters()) out.push_back(p);
  return out;
}

void Mlp::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

std::size_t Mlp::input_size() const { return layers_.front().in_features(); }
std::size_t Mlp::output_size() const { return layers_.back().out_features(); }

void Mlp::save(std::ostream& os) const {
  for (const Linear& layer : layers_) layer.save(os);
}

void Mlp::load(std::istream& is) {
  for (Linear& layer : layers_) layer.load(is);
}

}  // namespace autopipe::nn
