#include "nn/matrix.hpp"

#include <cmath>
#include <istream>
#include <ostream>

#include "common/expect.hpp"

namespace autopipe::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  AUTOPIPE_EXPECT(rows > 0 && cols > 0);
}

Matrix Matrix::xavier(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  const double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (double& v : m.data_) v = rng.uniform(-limit, limit);
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  AUTOPIPE_EXPECT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  AUTOPIPE_EXPECT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

void Matrix::fill(double v) {
  for (double& x : data_) x = v;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t.data_[c * rows_ + r] = data_[r * cols_ + c];
  return t;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  AUTOPIPE_EXPECT(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  AUTOPIPE_EXPECT(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

void Matrix::save(std::ostream& os) const {
  os << rows_ << ' ' << cols_ << '\n';
  os.precision(17);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    os << data_[i] << (((i + 1) % cols_ == 0) ? '\n' : ' ');
  }
}

Matrix Matrix::load(std::istream& is) {
  std::size_t rows = 0, cols = 0;
  is >> rows >> cols;
  AUTOPIPE_EXPECT_MSG(is.good() && rows > 0 && cols > 0,
                      "malformed matrix header");
  Matrix m(rows, cols);
  for (double& v : m.data_) {
    is >> v;
    AUTOPIPE_EXPECT_MSG(!is.fail(), "truncated matrix payload");
  }
  return m;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  AUTOPIPE_EXPECT_MSG(a.cols() == b.rows(), "matmul shape mismatch: "
                                                << a.rows() << "x" << a.cols()
                                                << " * " << b.rows() << "x"
                                                << b.cols());
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j)
        c.at(i, j) += aik * b.at(k, j);
    }
  }
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  AUTOPIPE_EXPECT(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = a.at(k, i);
      if (aki == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j)
        c.at(i, j) += aki * b.at(k, j);
    }
  }
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  AUTOPIPE_EXPECT(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k)
        sum += a.at(i, k) * b.at(j, k);
      c.at(i, j) = sum;
    }
  }
  return c;
}

void add_row_vector(Matrix& m, const Matrix& row) {
  AUTOPIPE_EXPECT(row.rows() == 1 && row.cols() == m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) m.at(r, c) += row.at(0, c);
}

Matrix column_sums(const Matrix& m) {
  Matrix s(1, m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) s.at(0, c) += m.at(r, c);
  return s;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  AUTOPIPE_EXPECT(a.same_shape(b));
  Matrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) c.data()[i] = a.data()[i] * b.data()[i];
  return c;
}

}  // namespace autopipe::nn
