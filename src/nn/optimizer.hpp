// Optimizers over Parameter lists. Adam drives both the meta-network and
// the RL arbiter; plain SGD exists for tests and the convergence module's
// synthetic trainer.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/matrix.hpp"

namespace autopipe::nn {

class Sgd {
 public:
  Sgd(std::vector<Parameter*> params, double lr);
  void step();
  void zero_grad();
  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr);

 private:
  std::vector<Parameter*> params_;
  double lr_;
};

class Adam {
 public:
  Adam(std::vector<Parameter*> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void step();
  void zero_grad();
  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr);

 private:
  std::vector<Parameter*> params_;
  double lr_, beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<Matrix> m_, v_;
};

}  // namespace autopipe::nn
