// Synthetic classification data for the convergence study (Fig 11). The
// paper trains ResNet50/VGG16 on ImageNet-format synthetic data; what the
// figure actually demonstrates is how *staleness semantics* (BSP vs weight
// stashing vs total asynchrony) bend an otherwise-identical optimization
// trajectory, so any non-trivially-separable task exposes the effect. We
// use a Gaussian-mixture multi-class problem hard enough that a small MLP
// needs many SGD steps.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "nn/matrix.hpp"

namespace autopipe::convergence {

struct DatasetConfig {
  std::size_t dims = 16;
  std::size_t classes = 4;
  std::size_t train_samples = 2048;
  std::size_t test_samples = 512;
  /// Cluster spread / separation ratio; larger = harder.
  double noise = 1.2;
};

class Dataset {
 public:
  Dataset(DatasetConfig config, std::uint64_t seed);

  const DatasetConfig& config() const { return config_; }

  /// Sample a training mini-batch (features, one-hot labels).
  void sample_batch(Rng& rng, std::size_t batch, nn::Matrix& x,
                    nn::Matrix& y) const;

  const nn::Matrix& test_x() const { return test_x_; }
  const std::vector<std::size_t>& test_labels() const { return test_labels_; }

 private:
  DatasetConfig config_;
  nn::Matrix train_x_;
  std::vector<std::size_t> train_labels_;
  nn::Matrix test_x_;
  std::vector<std::size_t> test_labels_;
};

}  // namespace autopipe::convergence
