#include "convergence/staleness_sgd.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "nn/loss.hpp"

namespace autopipe::convergence {

const char* to_string(StalenessMode mode) {
  switch (mode) {
    case StalenessMode::kBsp: return "BSP";
    case StalenessMode::kWeightStashing: return "WeightStashing";
    case StalenessMode::kTotalAsync: return "TAP";
  }
  return "?";
}

StalenessSgdTrainer::StalenessSgdTrainer(const Dataset& dataset,
                                         TrainerConfig config,
                                         std::uint64_t seed)
    : dataset_(dataset),
      config_(config),
      rng_(seed),
      net_([&] {
        Rng init(seed ^ 0xc2b2ae3d27d4eb4full);
        return nn::Mlp({dataset.config().dims, config.hidden,
                        dataset.config().classes},
                       nn::Activation::kTanh, nn::Activation::kSigmoid,
                       init);
      }()) {
  AUTOPIPE_EXPECT(config_.pipeline_depth >= 1);
}

nn::Mlp& StalenessSgdTrainer::version_for_delay(std::size_t delay) {
  if (delay == 0 || stash_.empty()) return net_;
  const std::size_t idx = std::min(delay, stash_.size()) - 1;
  // stash_.back() is the most recent snapshot (delay 1).
  return stash_[stash_.size() - 1 - idx];
}

void StalenessSgdTrainer::push_snapshot() {
  stash_.push_back(net_);
  const std::size_t keep =
      config_.pipeline_depth + config_.tap_max_extra_delay + 1;
  while (stash_.size() > keep) stash_.pop_front();
}

void StalenessSgdTrainer::step() {
  nn::Matrix x, y;
  dataset_.sample_batch(rng_, config_.batch, x, y);

  // Pick the weight version(s) the gradient is computed with.
  std::size_t fwd_delay = 0, bwd_delay = 0;
  switch (config_.mode) {
    case StalenessMode::kBsp:
      break;
    case StalenessMode::kWeightStashing:
      // Consistent snapshot from pipeline_depth - 1 updates ago.
      fwd_delay = bwd_delay = config_.pipeline_depth - 1;
      break;
    case StalenessMode::kTotalAsync: {
      // Unbounded-ish random delays, *different* for forward and backward:
      // the inconsistency weight stashing exists to prevent.
      const auto max_delay = static_cast<std::int64_t>(
          config_.pipeline_depth - 1 + config_.tap_max_extra_delay);
      fwd_delay = static_cast<std::size_t>(rng_.uniform_int(0, max_delay));
      bwd_delay = static_cast<std::size_t>(rng_.uniform_int(0, max_delay));
      break;
    }
  }

  nn::Matrix grad_source;
  if (fwd_delay == bwd_delay) {
    nn::Mlp& version = version_for_delay(fwd_delay);
    version.zero_grad();
    const nn::Matrix pred = version.forward(x);
    const nn::LossResult loss = nn::mse_loss(pred, y);
    version.backward(loss.grad);
    // Apply the (possibly stale) gradient to the *current* weights.
    auto stale_params = version.parameters();
    auto live_params = net_.parameters();
    for (std::size_t i = 0; i < live_params.size(); ++i) {
      for (std::size_t j = 0; j < live_params[i]->value.size(); ++j) {
        live_params[i]->value.data()[j] -=
            config_.learning_rate * stale_params[i]->grad.data()[j];
      }
    }
  } else {
    // Inconsistent: forward activations from one version, backward pass
    // through another — realized as the average of the two versions'
    // gradients plus the divergence between them acting as gradient error.
    nn::Mlp& v1 = version_for_delay(fwd_delay);
    v1.zero_grad();
    const nn::LossResult l1 = nn::mse_loss(v1.forward(x), y);
    v1.backward(l1.grad);
    nn::Mlp& v2 = version_for_delay(bwd_delay);
    if (&v1 != &v2) {
      v2.zero_grad();
      const nn::LossResult l2 = nn::mse_loss(v2.forward(x), y);
      v2.backward(l2.grad);
    }
    auto p1 = v1.parameters();
    auto p2 = v2.parameters();
    auto live = net_.parameters();

    // Calibrate the persistent-bias scale against the first inconsistent
    // gradient seen, and fix a random error direction per parameter scalar.
    if (bias_direction_.empty()) {
      double abs_sum = 0.0;
      std::size_t count = 0;
      for (std::size_t i = 0; i < live.size(); ++i) {
        bias_direction_.emplace_back();
        auto& dir = bias_direction_.back();
        dir.reserve(p1[i]->grad.size());
        for (std::size_t j = 0; j < p1[i]->grad.size(); ++j) {
          dir.push_back(rng_.chance(0.5) ? 1.0 : -1.0);
          abs_sum += std::abs(p1[i]->grad.data()[j]);
          ++count;
        }
      }
      gradient_scale_ = abs_sum / static_cast<double>(std::max<std::size_t>(1, count));
    }

    for (std::size_t i = 0; i < live.size(); ++i) {
      for (std::size_t j = 0; j < live[i]->value.size(); ++j) {
        const double g1 = p1[i]->grad.data()[j];
        const double g2 = p2[i]->grad.data()[j];
        // Mean gradient, the version divergence, and the persistent bias of
        // mixing forward activations with a mismatched backward Jacobian.
        const double mixed = 0.5 * (g1 + g2) + (g1 - g2) +
                             config_.tap_bias * gradient_scale_ *
                                 bias_direction_[i][j];
        live[i]->value.data()[j] -= config_.learning_rate * mixed;
      }
    }
  }

  push_snapshot();
  ++steps_;
}

double StalenessSgdTrainer::test_accuracy() {
  const nn::Matrix pred = net_.forward(dataset_.test_x());
  const auto& labels = dataset_.test_labels();
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < pred.cols(); ++c)
      if (pred.at(i, c) > pred.at(i, best)) best = c;
    if (best == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

std::vector<CurvePoint> accuracy_curve(const Dataset& dataset,
                                       TrainerConfig config,
                                       std::size_t total_steps,
                                       std::size_t eval_every,
                                       std::uint64_t seed) {
  AUTOPIPE_EXPECT(eval_every >= 1);
  StalenessSgdTrainer trainer(dataset, config, seed);
  std::vector<CurvePoint> curve;
  curve.push_back(CurvePoint{0, trainer.test_accuracy()});
  for (std::size_t s = 1; s <= total_steps; ++s) {
    trainer.step();
    if (s % eval_every == 0)
      curve.push_back(CurvePoint{s, trainer.test_accuracy()});
  }
  return curve;
}

}  // namespace autopipe::convergence
