#include "convergence/dataset.hpp"

#include "common/expect.hpp"

namespace autopipe::convergence {

namespace {

void generate(const DatasetConfig& config, Rng& rng,
              const std::vector<std::vector<double>>& centers,
              std::size_t count, nn::Matrix& x,
              std::vector<std::size_t>& labels) {
  x = nn::Matrix(count, config.dims);
  labels.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto cls = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(config.classes) - 1));
    labels[i] = cls;
    for (std::size_t d = 0; d < config.dims; ++d)
      x.at(i, d) = rng.normal(centers[cls][d], config.noise);
  }
}

}  // namespace

Dataset::Dataset(DatasetConfig config, std::uint64_t seed) : config_(config) {
  AUTOPIPE_EXPECT(config_.classes >= 2);
  AUTOPIPE_EXPECT(config_.dims >= 2);
  Rng rng(seed);
  // Unit-norm-ish random class centers.
  std::vector<std::vector<double>> centers(config_.classes);
  for (auto& c : centers) {
    c.resize(config_.dims);
    for (double& v : c) v = rng.normal(0.0, 1.0);
  }
  generate(config_, rng, centers, config_.train_samples, train_x_,
           train_labels_);
  generate(config_, rng, centers, config_.test_samples, test_x_,
           test_labels_);
}

void Dataset::sample_batch(Rng& rng, std::size_t batch, nn::Matrix& x,
                           nn::Matrix& y) const {
  AUTOPIPE_EXPECT(batch >= 1);
  x = nn::Matrix(batch, config_.dims);
  y = nn::Matrix(batch, config_.classes);
  for (std::size_t i = 0; i < batch; ++i) {
    const auto idx = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(config_.train_samples) - 1));
    for (std::size_t d = 0; d < config_.dims; ++d)
      x.at(i, d) = train_x_.at(idx, d);
    y.at(i, train_labels_[idx]) = 1.0;
  }
}

}  // namespace autopipe::convergence
