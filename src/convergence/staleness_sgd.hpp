// Staleness-aware SGD: the mechanics behind Fig 11's accuracy-vs-time
// comparison. One trainer instance reproduces each paradigm's weight-update
// semantics exactly:
//
//   * BSP — gradients computed at the current weights (delay 0);
//   * PipeDream / AutoPipe (weight stashing) — gradients computed at the
//     consistent snapshot from `pipeline_depth - 1` updates ago: stale but
//     the same version in forward and backward, PipeDream's guarantee;
//   * TAP (total asynchrony) — forward and backward run on *different*
//     stale versions (no stashing), with random unbounded delay: the
//     inconsistent-weights failure mode the paper measures at 1.35-1.42x
//     worse converged accuracy.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "convergence/dataset.hpp"
#include "nn/mlp.hpp"

namespace autopipe::convergence {

enum class StalenessMode {
  kBsp,
  kWeightStashing,  // PipeDream and AutoPipe
  kTotalAsync,      // TAP
};

const char* to_string(StalenessMode mode);

struct TrainerConfig {
  std::size_t hidden = 32;
  double learning_rate = 0.05;
  std::size_t batch = 32;
  StalenessMode mode = StalenessMode::kBsp;
  /// Pipeline depth: the staleness bound under weight stashing and the
  /// delay scale under total asynchrony.
  std::size_t pipeline_depth = 4;
  /// Max extra delay (in updates) for total asynchrony.
  std::size_t tap_max_extra_delay = 12;
  /// Strength of the systematic gradient bias that inconsistent
  /// forward/backward weights introduce under total asynchrony. A gradient
  /// computed with forward activations from one weight version and a
  /// backward pass through another is not the gradient of any single loss;
  /// its error has a persistent component that shifts the converged point.
  /// We model that component as a fixed random direction with magnitude
  /// tap_bias x (initial gradient scale), which reproduces the paper's
  /// observation that TAP plateaus at a lower top-1 accuracy (Fig 11).
  double tap_bias = 1.5;
};

class StalenessSgdTrainer {
 public:
  StalenessSgdTrainer(const Dataset& dataset, TrainerConfig config,
                      std::uint64_t seed);

  /// One SGD update under the configured staleness semantics.
  void step();

  /// Top-1 accuracy on the held-out set.
  double test_accuracy();

  std::size_t steps_done() const { return steps_; }
  const TrainerConfig& config() const { return config_; }

 private:
  nn::Mlp& version_for_delay(std::size_t delay);
  void push_snapshot();

  const Dataset& dataset_;
  TrainerConfig config_;
  Rng rng_;
  nn::Mlp net_;
  /// Ring of past weight versions, newest at the back.
  std::deque<nn::Mlp> stash_;
  std::size_t steps_ = 0;
  /// TAP's persistent gradient-bias direction (one entry in {-1,+1} per
  /// parameter scalar) and the gradient scale it is calibrated against.
  std::vector<std::vector<double>> bias_direction_;
  double gradient_scale_ = 0.0;
};

/// A (time-free) accuracy curve: accuracy after every `eval_every` steps.
struct CurvePoint {
  std::size_t step = 0;
  double accuracy = 0.0;
};
std::vector<CurvePoint> accuracy_curve(const Dataset& dataset,
                                       TrainerConfig config,
                                       std::size_t total_steps,
                                       std::size_t eval_every,
                                       std::uint64_t seed);

}  // namespace autopipe::convergence
