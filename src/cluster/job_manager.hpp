// Co-tenant fleet orchestration: N independent AutoPipe jobs — each with
// its own model, executor, job-scoped controller and validation machinery —
// share one simulated cluster and one flow network. The JobManager owns the
// worker→job ownership map and the claim protocol around it:
//
//  * every worker starts owned by exactly one job (assign_default_workers);
//  * a preempted owned worker is *revoked* — the job's controller sees a
//    shrunken worker population and migrates off it via the normal replan
//    path (or the watchdog's emergency recovery when the pipeline stalled);
//  * a worker that comes back up unowned is announced as a freed GPU
//    (`gpu_freed` resource instant) and collects claims for a claim window;
//  * when the window closes, every running job with a positive analytic
//    throughput gain files a Claim and the Arbiter picks one winner. The
//    winner gets ownership and an expansion switch through the regular
//    Prepare→Drain→Transfer→Commit protocol; every loser's doomed attempt
//    is aborted through the same protocol's rollback path with reason
//    "tenant_contention", causally chained to the arbiter's deny instant —
//    so `autopipe_trace blame` on the loser's slow window roots at a
//    tenant_contention edge naming the winning job.
//
// Invariants the co-tenancy test suite (tests/cotenancy_test.cpp) holds
// this to: no worker is ever owned by two jobs; every executor only routes
// workers its job owns; per-job batch conservation holds throughout; every
// multi-claim round resolves to exactly one grant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "autopipe/controller.hpp"
#include "cluster/arbiter.hpp"
#include "cluster/jobs_spec.hpp"
#include "common/units.hpp"
#include "models/model.hpp"
#include "pipeline/executor.hpp"
#include "pipeline/report.hpp"
#include "sim/cluster.hpp"
#include "sim/simulator.hpp"

namespace autopipe::cluster {

/// Jain's fairness index over per-job throughputs: (Σx)² / (N·Σx²) — 1.0
/// when every job gets the same share, →1/N under total capture. 0 for an
/// empty or all-zero vector.
double jain_fairness(const std::vector<double>& values);

/// One tenant's live state. Heap-pinned (never moved after construction):
/// the executor holds a reference to `model`.
struct JobRuntime {
  explicit JobRuntime(models::ModelSpec m) : model(std::move(m)) {}

  std::uint64_t id = 0;  ///< 1-based fleet job id (the `job=` tag value)
  JobSpec spec;
  models::ModelSpec model;
  std::vector<sim::WorkerId> owned;  ///< sorted current ownership set
  std::unique_ptr<pipeline::PipelineExecutor> executor;
  std::unique_ptr<core::AutoPipeController> controller;

  pipeline::ExecutionReport report;  ///< valid once finished
  bool finished = false;
  Seconds finished_at = 0.0;
  std::size_t commits = 0;            ///< committed switches
  std::size_t contention_aborts = 0;  ///< attempts the arbiter killed
};

struct FleetReport {
  struct JobSummary {
    std::uint64_t id = 0;
    std::string model;
    double priority = 1.0;
    pipeline::ExecutionReport report;
    Seconds finished_at = 0.0;
    std::size_t commits = 0;
    std::size_t contention_aborts = 0;
  };
  std::vector<JobSummary> jobs;
  /// Exact sum of per-job measured throughputs (the conservation the test
  /// suite checks against the recomputed sum).
  double fleet_throughput = 0.0;
  double jain = 0.0;
  std::string arbiter;
  std::size_t claim_rounds = 0;  ///< freed-GPU resolutions that ran
  std::size_t conflicts = 0;     ///< rounds with >= 2 claims (storms)
  std::size_t grants = 0;
  std::size_t denials = 0;
  std::size_t contention_aborts = 0;
};

class JobManager {
 public:
  /// Builds every job (executor + attached job-scoped controller) and the
  /// ownership map. `spec.jobs[k].workers` must be filled in; call
  /// assign_default_workers first when the spec left them empty.
  JobManager(sim::Simulator& sim, sim::Cluster& cluster, FleetSpec spec);
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Drive every job to completion on the shared simulator: schedules the
  /// scripted preemptions, begins every run, then steps until all jobs
  /// finish — each job's measurement window closes at the exact step its
  /// target is reached. Throws contract_error on fleet deadlock (queue
  /// drained with unfinished jobs) or when simulated time passes `horizon`.
  FleetReport run(Seconds horizon = 600.0);

  std::size_t num_jobs() const { return jobs_.size(); }
  const JobRuntime& job(std::size_t index) const { return *jobs_[index]; }

  /// Owning job id of a worker (1-based), 0 when unowned/free.
  std::uint64_t owner_of(sim::WorkerId worker) const {
    return owner_[worker];
  }
  const Arbiter& arbiter() const { return *arbiter_; }

  std::size_t claim_rounds() const { return claim_rounds_; }
  std::size_t conflicts() const { return conflicts_; }
  std::size_t grants() const { return grants_; }
  std::size_t denials() const { return denials_; }
  std::size_t contention_aborts() const { return contention_aborts_; }

 private:
  void build_job(std::uint64_t id, const JobSpec& spec);
  void on_worker_state(sim::WorkerId worker, bool up);
  void revoke_worker(sim::WorkerId worker);
  void announce_free(sim::WorkerId worker);
  void resolve_claims(sim::WorkerId worker, std::uint64_t freed_eid);
  void enforce_ownership(JobRuntime& job, std::uint64_t attempt_id);
  void finish_job(JobRuntime& job);
  void on_job_iteration(JobRuntime& job);

  /// Analytic throughput gain for `job` if it owned `worker` too, against
  /// the ground-truth environment; <= 0 means the job does not claim.
  double claim_gain(const JobRuntime& job, sim::WorkerId worker) const;
  /// Even-split expansion target over owned ∪ {worker} (truncated to the
  /// model's layer count when the union is larger).
  partition::Partition expansion_plan(const JobRuntime& job,
                                      sim::WorkerId worker) const;

  trace::TraceRecorder& tracer() { return sim_.tracer(); }

  sim::Simulator& sim_;
  sim::Cluster& cluster_;
  FleetSpec spec_;
  std::unique_ptr<Arbiter> arbiter_;
  std::vector<std::unique_ptr<JobRuntime>> jobs_;
  /// worker → owning job id (1-based), 0 = free.
  std::vector<std::uint64_t> owner_;
  /// Workers with a claim-window resolution already scheduled.
  std::vector<std::uint8_t> claim_pending_;
  std::uint64_t worker_cb_token_ = 0;
  std::vector<std::uint64_t> switch_observer_tokens_;

  std::size_t claim_rounds_ = 0;
  std::size_t conflicts_ = 0;
  std::size_t grants_ = 0;
  std::size_t denials_ = 0;
  std::size_t contention_aborts_ = 0;
};

}  // namespace autopipe::cluster
