#include "cluster/jobs_spec.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/expect.hpp"
#include "models/zoo.hpp"

namespace autopipe::cluster {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(s);
  while (std::getline(is, item, sep)) out.push_back(item);
  return out;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw contract_error("jobs spec: line " + std::to_string(line_no) + ": " +
                       what);
}

double parse_double(std::size_t line_no, const std::string& key,
                    const std::string& v) {
  try {
    std::size_t pos = 0;
    const double d = std::stod(v, &pos);
    if (pos != v.size())
      fail(line_no, "bad number '" + v + "' for '" + key + "'");
    return d;
  } catch (const contract_error&) {
    throw;
  } catch (const std::exception&) {
    fail(line_no, "bad number '" + v + "' for '" + key + "'");
  }
}

std::uint64_t parse_u64(std::size_t line_no, const std::string& key,
                        const std::string& v) {
  const double d = parse_double(line_no, key, v);
  if (d < 0 || d != static_cast<double>(static_cast<std::uint64_t>(d)))
    fail(line_no, "'" + key + "' wants a non-negative integer, got '" + v +
                      "'");
  return static_cast<std::uint64_t>(d);
}

/// `a..b` inclusive ranges and comma lists: "0..3", "0,2,5", "4".
std::vector<sim::WorkerId> parse_worker_list(std::size_t line_no,
                                             const std::string& v) {
  std::vector<sim::WorkerId> out;
  for (const std::string& part : split(v, ',')) {
    const std::string p = trim(part);
    if (p.empty()) fail(line_no, "empty worker entry in '" + v + "'");
    const std::size_t dots = p.find("..");
    if (dots == std::string::npos) {
      out.push_back(
          static_cast<sim::WorkerId>(parse_u64(line_no, "workers", p)));
      continue;
    }
    const std::uint64_t lo =
        parse_u64(line_no, "workers", trim(p.substr(0, dots)));
    const std::uint64_t hi =
        parse_u64(line_no, "workers", trim(p.substr(dots + 2)));
    if (lo > hi) fail(line_no, "empty worker range '" + p + "'");
    if (hi - lo >= 4096) fail(line_no, "worker range '" + p + "' too large");
    for (std::uint64_t w = lo; w <= hi; ++w)
      out.push_back(static_cast<sim::WorkerId>(w));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Break a `k=v k=v ...` token list (the value of a job/preempt statement)
/// into pairs.
std::vector<std::pair<std::string, std::string>> parse_kv_tokens(
    std::size_t line_no, const std::string& value) {
  std::vector<std::pair<std::string, std::string>> out;
  std::istringstream is(value);
  std::string token;
  while (is >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size())
      fail(line_no, "expected k=v token, got '" + token + "'");
    out.emplace_back(token.substr(0, eq), token.substr(eq + 1));
  }
  return out;
}

JobSpec parse_job(std::size_t line_no, const std::string& value) {
  JobSpec job;
  bool saw_model = false;
  for (const auto& [k, v] : parse_kv_tokens(line_no, value)) {
    if (k == "model") {
      models::model_by_name(v);  // validate; throws on unknown names
      job.model = v;
      saw_model = true;
    } else if (k == "iterations") {
      job.iterations = static_cast<std::size_t>(parse_u64(line_no, k, v));
      if (job.iterations == 0) fail(line_no, "iterations must be >= 1");
    } else if (k == "warmup") {
      job.warmup = static_cast<std::size_t>(parse_u64(line_no, k, v));
    } else if (k == "priority") {
      job.priority = parse_double(line_no, k, v);
      if (job.priority <= 0) fail(line_no, "priority must be > 0");
    } else if (k == "batch") {
      job.batch = static_cast<std::size_t>(parse_u64(line_no, k, v));
    } else if (k == "workers") {
      job.workers = parse_worker_list(line_no, v);
      if (job.workers.empty()) fail(line_no, "workers list is empty");
    } else {
      fail(line_no, "unknown job attribute '" + k + "'");
    }
  }
  if (!saw_model) fail(line_no, "job statement needs model=<name>");
  if (job.warmup >= job.iterations)
    fail(line_no, "warmup (" + std::to_string(job.warmup) +
                      ") must be < iterations (" +
                      std::to_string(job.iterations) + ")");
  return job;
}

PreemptSpec parse_preempt(std::size_t line_no, const std::string& value) {
  PreemptSpec p;
  bool saw_worker = false, saw_at = false, saw_for = false;
  for (const auto& [k, v] : parse_kv_tokens(line_no, value)) {
    if (k == "worker") {
      p.worker = static_cast<sim::WorkerId>(parse_u64(line_no, k, v));
      saw_worker = true;
    } else if (k == "at") {
      p.at = parse_double(line_no, k, v);
      if (p.at < 0) fail(line_no, "preempt time must be >= 0");
      saw_at = true;
    } else if (k == "for") {
      p.duration = parse_double(line_no, k, v);
      if (p.duration <= 0) fail(line_no, "preempt duration must be > 0");
      saw_for = true;
    } else {
      fail(line_no, "unknown preempt attribute '" + k + "'");
    }
  }
  if (!saw_worker || !saw_at || !saw_for)
    fail(line_no, "preempt statement needs worker=, at= and for=");
  return p;
}

}  // namespace

FleetSpec parse_jobs_spec(const std::string& text) {
  FleetSpec spec;
  bool saw_arbiter = false, saw_window = false;

  // Same statement discipline as the sweep grammar: '#' comments run to end
  // of line; newlines and ';' both end a statement. Line numbers are carried
  // through the split so every diagnostic can name its source line.
  std::vector<std::pair<std::size_t, std::string>> statements;
  {
    std::size_t line_no = 0;
    for (std::string chunk : split(text, '\n')) {
      ++line_no;
      const std::size_t hash = chunk.find('#');
      if (hash != std::string::npos) chunk.resize(hash);
      for (const std::string& stmt : split(chunk, ';'))
        statements.emplace_back(line_no, stmt);
    }
  }

  for (const auto& [line_no, raw] : statements) {
    const std::string line = trim(raw);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos)
      fail(line_no, "expected 'key = value', got '" + line + "'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (value.empty()) fail(line_no, "key '" + key + "' has no value");

    if (key == "arbiter") {
      if (saw_arbiter) fail(line_no, "duplicate 'arbiter' statement");
      if (value != "greedy" && value != "priority" && value != "auction")
        fail(line_no, "unknown arbiter policy '" + value +
                          "' (expected greedy, priority or auction)");
      spec.arbiter = value;
      saw_arbiter = true;
    } else if (key == "claim-window") {
      if (saw_window) fail(line_no, "duplicate 'claim-window' statement");
      spec.claim_window = parse_double(line_no, key, value);
      if (spec.claim_window < 0)
        fail(line_no, "claim-window must be >= 0 seconds");
      saw_window = true;
    } else if (key == "job") {
      spec.jobs.push_back(parse_job(line_no, value));
    } else if (key == "preempt") {
      spec.preempts.push_back(parse_preempt(line_no, value));
    } else {
      fail(line_no, "unknown key '" + key + "'");
    }
  }

  if (spec.jobs.empty())
    throw contract_error("jobs spec declares no jobs");
  if (spec.jobs.size() > 64)
    throw contract_error("jobs spec declares " +
                         std::to_string(spec.jobs.size()) +
                         " jobs; the fleet cap is 64");
  return spec;
}

FleetSpec load_jobs_spec(const std::string& arg) {
  if (!arg.empty() && arg[0] == '@') {
    const std::string path = arg.substr(1);
    std::ifstream in(path);
    if (!in.good())
      throw std::runtime_error("cannot read jobs spec file: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return parse_jobs_spec(text.str());
  }
  return parse_jobs_spec(arg);
}

void assign_default_workers(FleetSpec& spec, std::size_t num_workers) {
  std::vector<std::uint8_t> taken(num_workers, 0);
  std::size_t unassigned_jobs = 0;
  for (std::size_t j = 0; j < spec.jobs.size(); ++j) {
    const JobSpec& job = spec.jobs[j];
    if (job.workers.empty()) {
      ++unassigned_jobs;
      continue;
    }
    for (sim::WorkerId w : job.workers) {
      AUTOPIPE_EXPECT_MSG(w < num_workers,
                          "jobs spec: job " << (j + 1) << " claims worker "
                                            << w << " but the cluster has "
                                            << num_workers << " workers");
      AUTOPIPE_EXPECT_MSG(!taken[w], "jobs spec: worker "
                                         << w
                                         << " is claimed by two jobs");
      taken[w] = 1;
    }
  }

  // Remaining workers split evenly (in id order) across the jobs that
  // declared none, in declaration order; the first `extra` such jobs take
  // one additional worker each.
  std::vector<sim::WorkerId> pool;
  for (sim::WorkerId w = 0; w < num_workers; ++w)
    if (!taken[w]) pool.push_back(w);
  if (unassigned_jobs > 0) {
    AUTOPIPE_EXPECT_MSG(pool.size() >= unassigned_jobs,
                        "jobs spec: " << unassigned_jobs
                                      << " jobs need workers but only "
                                      << pool.size()
                                      << " cluster workers are unclaimed");
    const std::size_t base = pool.size() / unassigned_jobs;
    const std::size_t extra = pool.size() % unassigned_jobs;
    std::size_t next = 0, rank = 0;
    for (JobSpec& job : spec.jobs) {
      if (!job.workers.empty()) continue;
      const std::size_t count = base + (rank < extra ? 1 : 0);
      for (std::size_t i = 0; i < count; ++i) job.workers.push_back(pool[next++]);
      ++rank;
    }
  }

  for (std::size_t j = 0; j < spec.jobs.size(); ++j)
    AUTOPIPE_EXPECT_MSG(!spec.jobs[j].workers.empty(),
                        "jobs spec: job " << (j + 1)
                                          << " ends up with no workers");

  for (const PreemptSpec& p : spec.preempts)
    AUTOPIPE_EXPECT_MSG(p.worker < num_workers,
                        "jobs spec: preempt targets worker "
                            << p.worker << " but the cluster has "
                            << num_workers << " workers");
}

}  // namespace autopipe::cluster
