// Cluster-level reconfiguration arbiter: when a GPU frees up on a shared
// cluster, several co-tenant AutoPipe jobs may claim it in the same planning
// round. The arbiter picks exactly one winner per contested resource; every
// loser's doomed switch attempt is aborted through the executor's staged
// rollback path, so a conflict always resolves to one commit and N-1 clean
// aborts. Policies differ only in the ranking function; all of them break
// ties toward the lowest job id so resolution is deterministic under every
// event-queue implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace autopipe::cluster {

/// One job's claim on a contested worker.
struct Claim {
  std::uint64_t job_id = 0;  ///< 1-based fleet job id
  /// Predicted throughput gain (samples/s) from owning the worker, from the
  /// analytic pipeline model over the ground-truth environment.
  double gain = 0.0;
  /// Static job priority from the fleet spec (default 1.0).
  double priority = 0.0;
};

/// Conflict-resolution policy. pick() requires a non-empty claim vector and
/// returns the index of the winning claim.
class Arbiter {
 public:
  virtual ~Arbiter() = default;
  virtual const char* name() const = 0;
  virtual std::size_t pick(const std::vector<Claim>& claims) const = 0;
};

/// "greedy" (max gain — cluster-throughput maximizing), "priority" (max
/// static priority — SLA-respecting), or "auction" (max gain x priority —
/// each job bids its marginal utility weighted by its entitlement). Throws
/// contract_error for any other name.
std::unique_ptr<Arbiter> make_arbiter(const std::string& name);

/// The valid policy names, in the order make_arbiter documents them.
const std::vector<std::string>& arbiter_names();

}  // namespace autopipe::cluster
