#include "cluster/arbiter.hpp"

#include "common/expect.hpp"

namespace autopipe::cluster {

namespace {

/// Shared ranking skeleton: maximize score(), break ties toward the lowest
/// job id. Claims arrive sorted by job id (JobManager collects them in id
/// order), so a strict > comparison implements the tie-break for free — but
/// we do not rely on that: the explicit id comparison keeps pick() correct
/// for arbitrary claim orderings in tests.
template <typename Score>
std::size_t pick_by(const std::vector<Claim>& claims, Score score) {
  AUTOPIPE_EXPECT_MSG(!claims.empty(), "arbiter invoked with no claims");
  std::size_t best = 0;
  for (std::size_t i = 1; i < claims.size(); ++i) {
    const double si = score(claims[i]);
    const double sb = score(claims[best]);
    if (si > sb ||
        (si == sb && claims[i].job_id < claims[best].job_id)) {
      best = i;
    }
  }
  return best;
}

class GreedyArbiter final : public Arbiter {
 public:
  const char* name() const override { return "greedy"; }
  std::size_t pick(const std::vector<Claim>& claims) const override {
    return pick_by(claims, [](const Claim& c) { return c.gain; });
  }
};

class PriorityArbiter final : public Arbiter {
 public:
  const char* name() const override { return "priority"; }
  std::size_t pick(const std::vector<Claim>& claims) const override {
    return pick_by(claims, [](const Claim& c) { return c.priority; });
  }
};

class AuctionArbiter final : public Arbiter {
 public:
  const char* name() const override { return "auction"; }
  std::size_t pick(const std::vector<Claim>& claims) const override {
    return pick_by(claims,
                   [](const Claim& c) { return c.gain * c.priority; });
  }
};

}  // namespace

std::unique_ptr<Arbiter> make_arbiter(const std::string& name) {
  if (name == "greedy") return std::make_unique<GreedyArbiter>();
  if (name == "priority") return std::make_unique<PriorityArbiter>();
  if (name == "auction") return std::make_unique<AuctionArbiter>();
  throw contract_error("unknown arbiter policy '" + name +
                       "' (expected greedy, priority or auction)");
}

const std::vector<std::string>& arbiter_names() {
  static const std::vector<std::string> names = {"greedy", "priority",
                                                 "auction"};
  return names;
}

}  // namespace autopipe::cluster
