// Fleet specification for co-tenant runs: which jobs share the cluster,
// which arbiter policy mediates their reconfiguration conflicts, and any
// scripted preemptions. The text grammar mirrors the sweep spec
// (src/sweep/spec.hpp): statements separated by newlines or ';', '#' starts
// a comment, each statement is `key = value`. Unlike the sweep grammar the
// job/preempt values are themselves `k=v` token lists:
//
//   arbiter = priority          # greedy | priority | auction
//   claim-window = 0.05         # seconds a freed GPU stays claimable
//   job = model=alexnet iterations=30 warmup=5 priority=2 workers=0..3
//   job = model=vgg16 iterations=20 priority=1          # workers: auto
//   preempt = worker=2 at=1.5 for=2.0
//
// Jobs without an explicit `workers=` list split the remaining workers
// evenly, in declaration order (assign_default_workers). Every malformed
// construct throws contract_error with the offending line number — the
// fuzz suite holds the reader to parse-or-diagnose, never crash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/cluster.hpp"

namespace autopipe::cluster {

/// One tenant job of the fleet.
struct JobSpec {
  std::string model = "alexnet";
  std::size_t iterations = 30;
  std::size_t warmup = 5;
  /// Static priority consumed by the priority/auction arbiters.
  double priority = 1.0;
  /// Samples per mini-batch; 0 uses the model default.
  std::size_t batch = 0;
  /// Initially-owned workers; empty = assigned by assign_default_workers.
  std::vector<sim::WorkerId> workers;
};

/// One scripted preemption: the worker goes down at `at` and returns
/// `duration` seconds later — at which point it re-enters the cluster as a
/// *free* GPU that every running job may claim.
struct PreemptSpec {
  sim::WorkerId worker = 0;
  Seconds at = 0.0;
  Seconds duration = 0.0;
};

struct FleetSpec {
  std::string arbiter = "greedy";
  /// How long a freed GPU collects claims before the arbiter resolves them.
  Seconds claim_window = 0.05;
  std::vector<JobSpec> jobs;
  std::vector<PreemptSpec> preempts;
};

/// Parse the fleet grammar above. Throws contract_error (with a line
/// number) on any malformed statement, duplicate scalar key, unknown
/// model/arbiter name, or a spec declaring no jobs.
FleetSpec parse_jobs_spec(const std::string& text);

/// CLI form: `@path` reads the spec from a file, anything else is parsed
/// as inline spec text.
FleetSpec load_jobs_spec(const std::string& arg);

/// Fill in the worker sets of jobs that declared none: the workers not
/// explicitly claimed are split as evenly as possible across those jobs, in
/// declaration order. Validates that explicit sets are in range, pairwise
/// disjoint, and that every job ends up with at least one worker.
void assign_default_workers(FleetSpec& spec, std::size_t num_workers);

}  // namespace autopipe::cluster
