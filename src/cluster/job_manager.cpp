#include "cluster/job_manager.hpp"

#include <algorithm>
#include <exception>

#include "common/expect.hpp"
#include "common/trace.hpp"
#include "models/zoo.hpp"
#include "partition/analytic_eval.hpp"
#include "partition/environment.hpp"
#include "partition/partition.hpp"

namespace autopipe::cluster {

double jain_fairness(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0, sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq <= 0.0) return 0.0;
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

JobManager::JobManager(sim::Simulator& sim, sim::Cluster& cluster,
                       FleetSpec spec)
    : sim_(sim), cluster_(cluster), spec_(std::move(spec)) {
  AUTOPIPE_EXPECT_MSG(!spec_.jobs.empty(), "fleet spec declares no jobs");
  arbiter_ = make_arbiter(spec_.arbiter);
  owner_.assign(cluster_.num_workers(), 0);
  claim_pending_.assign(cluster_.num_workers(), 0);
  for (std::size_t k = 0; k < spec_.jobs.size(); ++k) {
    AUTOPIPE_EXPECT_MSG(
        !spec_.jobs[k].workers.empty(),
        "fleet job " << (k + 1)
                     << " has no workers; run assign_default_workers first");
    build_job(k + 1, spec_.jobs[k]);
  }
  // Registered after every executor's own worker-state callback, so by the
  // time ownership changes hands the executors have already dropped batches
  // and aborted switches touched by the fault.
  worker_cb_token_ = cluster_.add_worker_state_callback(
      [this](sim::WorkerId worker, bool up) { on_worker_state(worker, up); });
}

JobManager::~JobManager() {
  cluster_.remove_worker_state_callback(worker_cb_token_);
  for (std::size_t k = 0; k < jobs_.size(); ++k)
    jobs_[k]->executor->remove_switch_observer(switch_observer_tokens_[k]);
}

void JobManager::build_job(std::uint64_t id, const JobSpec& job_spec) {
  auto job =
      std::make_unique<JobRuntime>(models::model_by_name(job_spec.model));
  job->id = id;
  job->spec = job_spec;
  job->owned = job_spec.workers;
  std::sort(job->owned.begin(), job->owned.end());
  job->owned.erase(std::unique(job->owned.begin(), job->owned.end()),
                   job->owned.end());
  for (sim::WorkerId w : job->owned) {
    AUTOPIPE_EXPECT_MSG(w < cluster_.num_workers(),
                        "fleet job " << id << " claims worker " << w
                                     << " outside the cluster");
    AUTOPIPE_EXPECT_MSG(owner_[w] == 0, "worker " << w
                                                  << " claimed by jobs "
                                                  << owner_[w] << " and "
                                                  << id);
    owner_[w] = id;
  }

  // A job with more GPUs than layers pipelines on the first num_layers of
  // them; the surplus stays owned (and claimable by nobody) until released.
  std::vector<sim::WorkerId> initial = job->owned;
  if (initial.size() > job->model.num_layers())
    initial.resize(job->model.num_layers());

  pipeline::ExecutorConfig ec;
  ec.batch_size = job_spec.batch;
  ec.job_id = id;
  ec.halt_injection_at_target = true;
  job->executor = std::make_unique<pipeline::PipelineExecutor>(
      cluster_, job->model,
      partition::Partition::even_split(job->model.num_layers(),
                                       std::move(initial)),
      ec);

  core::ControllerConfig cc;
  cc.arbiter_mode = core::ControllerConfig::ArbiterMode::kThreshold;
  cc.use_meta_network = false;
  cc.job_id = id;
  cc.owned_workers = job->owned;
  job->controller = std::make_unique<core::AutoPipeController>(
      cluster_, *job->executor, cc, nullptr, nullptr);
  job->controller->attach();

  JobRuntime* jp = job.get();
  // attach() installed the controller hook; replace it with the combined
  // callback (same pattern as the sweep runner) so fleet bookkeeping rides
  // the same notification.
  job->executor->set_iteration_callback([this, jp](std::size_t iterations) {
    jp->controller->on_iteration(iterations);
    on_job_iteration(*jp);
  });

  switch_observer_tokens_.push_back(job->executor->add_switch_observer(
      [this, jp](const pipeline::PipelineExecutor::SwitchAttempt& a) {
        if (a.phase == pipeline::SwitchPhase::kCommit) {
          ++jp->commits;
          return;
        }
        if (a.phase == pipeline::SwitchPhase::kAborted) {
          if (a.abort_reason == "tenant_contention") {
            ++jp->contention_aborts;
            ++contention_aborts_;
            sim_.metrics().add("cluster.contention_aborts");
          }
          return;
        }
        if (a.phase != pipeline::SwitchPhase::kPrepare || a.target == nullptr)
          return;
        // Ownership guard: an attempt whose target routes a worker this job
        // does not own (e.g. a stale retry of a target granted to a sibling
        // meanwhile) is denied. Observers must not re-enter the switch
        // path, so the abort runs as an immediate follow-up event.
        for (sim::WorkerId w : a.target->all_workers()) {
          if (owner_[w] == jp->id) continue;
          sim_.after(
              0.0,
              [this, jp, id = a.id] { enforce_ownership(*jp, id); },
              "ownership_guard");
          break;
        }
      }));

  jobs_.push_back(std::move(job));
}

void JobManager::enforce_ownership(JobRuntime& job,
                                   std::uint64_t attempt_id) {
  pipeline::PipelineExecutor& ex = *job.executor;
  // Only the attempt observed at Prepare time: anything newer already went
  // through its own Prepare-time check.
  if (!ex.switch_in_progress() || ex.switch_attempts() != attempt_id) return;
  std::uint64_t deny_eid = 0;
  if (tracer().enabled()) {
    deny_eid = tracer().instant(
        trace::Category::kResource, "arbiter_deny", sim_.now(),
        trace::kPidResource, 1,
        {trace::arg("job", job.id), trace::arg("reason", "ownership_guard")});
  }
  ++denials_;
  sim_.metrics().add("cluster.denials");
  ex.abort_switch_attempt("tenant_contention", deny_eid);
}

void JobManager::on_worker_state(sim::WorkerId worker, bool up) {
  if (!up) {
    revoke_worker(worker);
    return;
  }
  if (owner_[worker] != 0) return;  // still owned: the job resumes by itself
  // A sole-worker job keeps ownership through preemption (revoke_worker
  // skips it), so an unowned returning worker can still be routed by a
  // stalled pipeline only if a revocation raced ahead of the migration.
  // Restore ownership in that case instead of auctioning the worker out
  // from under a running partition.
  for (auto& job : jobs_) {
    if (job->finished) continue;
    if (job->executor->current_partition().stage_of_worker(worker) ==
        partition::Partition::npos)
      continue;
    owner_[worker] = job->id;
    job->owned.insert(
        std::lower_bound(job->owned.begin(), job->owned.end(), worker),
        worker);
    job->controller->set_owned_workers(job->owned);
    sim_.metrics().add("cluster.ownership_restored");
    return;
  }
  announce_free(worker);
}

void JobManager::revoke_worker(sim::WorkerId worker) {
  const std::uint64_t id = owner_[worker];
  if (id == 0) return;
  JobRuntime& job = *jobs_[id - 1];
  if (job.finished) {
    owner_[worker] = 0;
    return;
  }
  // A job's last GPU is never revoked: there is nowhere to migrate, and on
  // return the stalled pipeline resumes on its stashed weights.
  if (job.owned.size() <= 1) return;
  owner_[worker] = 0;
  job.owned.erase(
      std::find(job.owned.begin(), job.owned.end(), worker));
  // The shrunken population reaches the job's monitor with the next
  // snapshot ("worker population changed"), forcing a replan that migrates
  // off the revoked worker; a fully stalled pipeline is instead rescued by
  // the controller watchdog's emergency recovery over the remaining set.
  job.controller->set_owned_workers(job.owned);
  sim_.metrics().add("cluster.revocations");
  if (tracer().enabled()) {
    tracer().instant(trace::Category::kResource, "gpu_revoked", sim_.now(),
                     trace::kPidResource, 1,
                     {trace::arg("worker", worker), trace::arg("job", id)});
  }
}

void JobManager::announce_free(sim::WorkerId worker) {
  if (claim_pending_[worker]) return;
  claim_pending_[worker] = 1;
  std::uint64_t freed_eid = 0;
  if (tracer().enabled()) {
    freed_eid = tracer().instant(trace::Category::kResource, "gpu_freed",
                                 sim_.now(), trace::kPidResource, 1,
                                 {trace::arg("worker", worker)});
  }
  sim_.metrics().add("cluster.gpu_freed");
  sim_.after(
      spec_.claim_window,
      [this, worker, freed_eid] {
        claim_pending_[worker] = 0;
        resolve_claims(worker, freed_eid);
      },
      "claim_window");
}

double JobManager::claim_gain(const JobRuntime& job,
                              sim::WorkerId worker) const {
  if (job.finished) return 0.0;
  // A job already saturating the model's stage count cannot use another
  // pipeline worker.
  if (job.owned.size() >= job.model.num_layers()) return 0.0;
  const pipeline::ExecutorConfig& ec = job.executor->config();
  const auto env = partition::EnvironmentView::from_cluster(
      cluster_, ec.framework, ec.sync_scheme);
  double current = 0.0;
  try {
    current = partition::analytic_throughput(
        job.model, job.executor->current_partition(), env,
        job.executor->batch_size());
  } catch (const std::exception&) {
    // Degraded partition (e.g. routes a down worker): any valid expansion
    // is an improvement over an unevaluable present.
    current = 0.0;
  }
  double candidate = 0.0;
  try {
    candidate = partition::analytic_throughput(
        job.model, expansion_plan(job, worker), env,
        job.executor->batch_size());
  } catch (const std::exception&) {
    return 0.0;
  }
  return candidate - current;
}

partition::Partition JobManager::expansion_plan(const JobRuntime& job,
                                                sim::WorkerId worker) const {
  std::vector<sim::WorkerId> workers = job.owned;
  workers.push_back(worker);
  std::sort(workers.begin(), workers.end());
  workers.erase(std::unique(workers.begin(), workers.end()), workers.end());
  AUTOPIPE_EXPECT_MSG(workers.size() <= job.model.num_layers(),
                      "expansion plan for job "
                          << job.id << " wants " << workers.size()
                          << " stages on a " << job.model.num_layers()
                          << "-layer model");
  return partition::Partition::even_split(job.model.num_layers(),
                                          std::move(workers));
}

void JobManager::resolve_claims(sim::WorkerId worker,
                                std::uint64_t freed_eid) {
  if (owner_[worker] != 0) return;  // restored to a stalled job meanwhile
  if (!cluster_.worker_reachable(worker)) return;  // went down again

  std::vector<Claim> claims;
  for (const auto& job : jobs_) {
    const double gain = claim_gain(*job, worker);
    if (gain > 0.0)
      claims.push_back(Claim{job->id, gain, job->spec.priority});
  }
  ++claim_rounds_;
  sim_.metrics().add("cluster.claim_rounds");
  if (claims.empty()) {
    sim_.metrics().add("cluster.unclaimed");
    return;  // stays free; a later state change may re-announce it
  }
  if (claims.size() >= 2) {
    ++conflicts_;
    sim_.metrics().add("cluster.conflicts");
  }

  const std::size_t winner_idx = arbiter_->pick(claims);
  JobRuntime& winner = *jobs_[claims[winner_idx].job_id - 1];
  std::uint64_t grant_eid = 0;
  if (tracer().enabled()) {
    grant_eid = tracer().instant(
        trace::Category::kResource, "arbiter_grant", sim_.now(),
        trace::kPidResource, 1,
        {trace::arg("worker", worker), trace::arg("job", winner.id),
         trace::arg("policy", arbiter_->name()),
         trace::arg("claims", claims.size())},
        freed_eid == 0 ? trace::kAmbient : freed_eid);
  }
  ++grants_;
  sim_.metrics().add("cluster.grants");

  // Losers first: each files its doomed attempt through the real staged
  // protocol and is aborted through the same protocol's rollback path, so
  // "conflict ⇒ exactly one winner + one cleanly-aborted attempt per loser"
  // is enforced by the switch engine itself, not by bookkeeping. The deny
  // instant carries the loser's job id with the *grant* (which names the
  // winner) as its cause — the cross-job tenant_contention edge the causal
  // blame engine keys on.
  for (std::size_t i = 0; i < claims.size(); ++i) {
    if (i == winner_idx) continue;
    JobRuntime& loser = *jobs_[claims[i].job_id - 1];
    std::uint64_t deny_eid = 0;
    if (tracer().enabled()) {
      deny_eid = tracer().instant(
          trace::Category::kResource, "arbiter_deny", sim_.now(),
          trace::kPidResource, 1,
          {trace::arg("worker", worker), trace::arg("job", loser.id),
           trace::arg("winner", winner.id)},
          grant_eid == 0 ? trace::kAmbient : grant_eid);
    }
    ++denials_;
    sim_.metrics().add("cluster.denials");
    if (!loser.executor->switch_in_progress()) {
      if (loser.executor->request_switch(
              expansion_plan(loser, worker),
              pipeline::PipelineExecutor::SwitchMode::kFineGrained)) {
        loser.executor->abort_switch_attempt("tenant_contention", deny_eid);
      }
    }
  }

  // Winner: ownership, a job-scope update, and an immediate expansion
  // switch causally chained to the grant. When the engine is busy with
  // another attempt the explicit switch is skipped — the population change
  // alone forces the winner's next replan to fold the worker in.
  owner_[worker] = winner.id;
  winner.owned.insert(
      std::lower_bound(winner.owned.begin(), winner.owned.end(), worker),
      worker);
  winner.controller->set_owned_workers(winner.owned);
  if (!winner.executor->switch_in_progress()) {
    const std::uint64_t prev = tracer().current_cause();
    if (grant_eid != 0) tracer().set_current_cause(grant_eid);
    winner.executor->request_switch(
        expansion_plan(winner, worker),
        pipeline::PipelineExecutor::SwitchMode::kFineGrained);
    if (grant_eid != 0) tracer().set_current_cause(prev);
  }
}

void JobManager::finish_job(JobRuntime& job) {
  if (job.executor->switch_in_progress())
    job.executor->abort_switch_attempt("job_finished");
  job.report = job.executor->finish_run();
  job.finished = true;
  job.finished_at = sim_.now();
  sim_.metrics().add("cluster.jobs_finished");
  if (tracer().enabled()) {
    tracer().instant(trace::Category::kResource, "job_finished", sim_.now(),
                     trace::kPidResource, 1, {trace::arg("job", job.id)});
  }
  std::vector<sim::WorkerId> released = std::move(job.owned);
  job.owned.clear();
  for (sim::WorkerId w : released) {
    owner_[w] = 0;
    if (cluster_.worker_reachable(w)) announce_free(w);
  }
}

void JobManager::on_job_iteration(JobRuntime& job) {
  const std::string prefix = "job" + std::to_string(job.id);
  sim_.metrics().add(prefix + ".iterations");
  const Seconds period = job.executor->last_iteration_time();
  if (period > 0.0) sim_.metrics().observe(prefix + ".iteration_period", period);
}

FleetReport JobManager::run(Seconds horizon) {
  for (const PreemptSpec& p : spec_.preempts) {
    sim_.at(
        p.at, [this, p] { cluster_.set_worker_down(p.worker); },
        "preempt_down");
    sim_.at(
        p.at + p.duration, [this, p] { cluster_.set_worker_up(p.worker); },
        "preempt_up");
  }
  for (auto& job : jobs_)
    job->executor->begin_run(job->spec.iterations, job->spec.warmup);

  const auto all_finished = [this] {
    for (const auto& job : jobs_)
      if (!job->finished) return false;
    return true;
  };
  while (!all_finished()) {
    AUTOPIPE_EXPECT_MSG(
        !sim_.empty(),
        "fleet deadlock: event queue drained with unfinished jobs");
    AUTOPIPE_EXPECT_MSG(sim_.now() <= horizon,
                        "fleet exceeded the time horizon ("
                            << horizon << "s) with unfinished jobs");
    sim_.step();
    // Close each job's measurement window at the exact step its target was
    // reached, not when the whole fleet drains.
    for (auto& job : jobs_)
      if (!job->finished && job->executor->run_complete()) finish_job(*job);
  }

  FleetReport out;
  out.arbiter = spec_.arbiter;
  std::vector<double> throughputs;
  for (const auto& job : jobs_) {
    FleetReport::JobSummary s;
    s.id = job->id;
    s.model = job->spec.model;
    s.priority = job->spec.priority;
    s.report = job->report;
    s.finished_at = job->finished_at;
    s.commits = job->commits;
    s.contention_aborts = job->contention_aborts;
    out.fleet_throughput += job->report.throughput;
    throughputs.push_back(job->report.throughput);
    out.jobs.push_back(std::move(s));
  }
  out.jain = jain_fairness(throughputs);
  out.claim_rounds = claim_rounds_;
  out.conflicts = conflicts_;
  out.grants = grants_;
  out.denials = denials_;
  out.contention_aborts = contention_aborts_;
  return out;
}

}  // namespace autopipe::cluster
