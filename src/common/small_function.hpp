// Move-only callable wrapper with inline (small-buffer) storage. The
// discrete-event simulator schedules millions of short-lived closures per
// run; std::function heap-allocates any capture list larger than ~two
// pointers and copies on every priority-queue sift, which profiling shows
// as the dominant allocation churn in the sim hot path. SmallFunction
// stores callables up to InlineBytes in place (no allocation, moves are a
// memcpy-sized operation) and falls back to the heap only for oversized
// captures. Move-only on purpose: the event queue never needs to copy an
// event, and deleting the copy operations turns accidental copies into
// compile errors instead of silent allocations.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace autopipe::common {

template <typename Signature, std::size_t InlineBytes = 64>
class SmallFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class SmallFunction<R(Args...), InlineBytes> {
 public:
  SmallFunction() = default;
  SmallFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  SmallFunction(SmallFunction&& other) noexcept { move_from(other); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) const {
    return ops_->invoke(&storage_, std::forward<Args>(args)...);
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

 private:
  // Type-erased operations table; one static instance per stored type.
  struct Ops {
    R (*invoke)(const void* storage, Args&&... args);
    void (*destroy)(void* storage);
    void (*move)(void* dst, void* src);  ///< move-construct dst from src
  };

  union Storage {
    alignas(std::max_align_t) unsigned char inline_bytes[InlineBytes];
    void* heap;
  };

  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= InlineBytes && std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(storage_.inline_bytes))
          Fn(std::forward<F>(f));
      static const Ops ops = {
          [](const void* s, Args&&... args) -> R {
            // The callable lives in the wrapper's buffer; invoking it is
            // logically non-const the same way std::function's is.
            auto* fn = const_cast<Fn*>(reinterpret_cast<const Fn*>(s));
            return (*fn)(std::forward<Args>(args)...);
          },
          [](void* s) { reinterpret_cast<Fn*>(s)->~Fn(); },
          [](void* dst, void* src) {
            ::new (dst) Fn(std::move(*reinterpret_cast<Fn*>(src)));
            reinterpret_cast<Fn*>(src)->~Fn();
          },
      };
      ops_ = &ops;
    } else {
      storage_.heap = new Fn(std::forward<F>(f));
      static const Ops ops = {
          [](const void* s, Args&&... args) -> R {
            auto* fn = *const_cast<Fn**>(reinterpret_cast<Fn* const*>(s));
            return (*fn)(std::forward<Args>(args)...);
          },
          [](void* s) { delete *reinterpret_cast<Fn**>(s); },
          [](void* dst, void* src) {
            *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
          },
      };
      ops_ = &ops;
    }
  }

  void move_from(SmallFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->move(raw_storage(), other.raw_storage());
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void* raw_storage() { return static_cast<void*>(&storage_); }

  const Ops* ops_ = nullptr;
  Storage storage_;
};

}  // namespace autopipe::common
