// Event tracing for the simulator and everything that runs on it.
//
// A TraceRecorder collects timestamped events — spans ('X' complete events),
// instants ('i'), counters ('C') and async begin/end pairs ('b'/'e') — each
// stamped with a category and a pid/tid pair identifying the emitting
// worker/stage (or one of the synthetic rows below). Timestamps are
// *simulated* seconds, passed explicitly by the caller, so the recorder has
// no dependency on the Simulator; the Simulator owns the recorder instance
// and every subsystem reaches it through `simulator().tracer()`.
//
// Two sinks:
//  * write_chrome_json — Chrome trace_event JSON, loadable in
//    chrome://tracing or https://ui.perfetto.dev (timestamps converted to
//    microseconds, as the format requires).
//  * write_text — one line per event with fixed formatting, byte-identical
//    across runs of the same scenario; the golden-trace tests diff it.
//
// Causality: every non-counter event is assigned a monotonically increasing
// eid at record time, and carries the eid of the event that caused it
// (`cause`). Causes default to the recorder's *ambient* cause — the last
// event recorded, or whatever the Simulator restored from the popped event
// before running its callback — so causal chains thread through the event
// queue without call-site changes; sites with a more precise dependency
// (previous-stage op, switch-phase barrier, the link_down an up pairs with)
// pass an explicit cause. The text sink emits `eid=`/`cause=` fields and the
// Chrome sink renders each edge as a flow-event pair (ph "s"/"f").
//
// Overhead discipline: recording methods no-op unless set_enabled(true) was
// called, and callers guard argument construction behind `enabled()`. With
// the CMake option AUTOPIPE_TRACING=OFF the recorder compiles down to inline
// empty stubs and `enabled()` becomes a constant false, so every guarded
// call site is dead code.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#ifndef AUTOPIPE_TRACING
#define AUTOPIPE_TRACING 1
#endif

namespace autopipe::trace {

enum class Category {
  kCompute,
  kComm,
  kSwitch,
  kControl,
  kResource,
  kMark,
  kFault,  ///< injected faults and the recovery transitions they trigger
};

/// Short lowercase name used in both sinks ("compute", "comm", ...).
const char* category_name(Category category);

// Synthetic pids for rows that do not belong to a single worker. Worker pids
// are the worker ids themselves (always < 1000 in any plausible cluster).
inline constexpr int kPidNetwork = 1000;   ///< flow network rows
inline constexpr int kPidControl = 1001;   ///< controller / switch engine
inline constexpr int kPidResource = 1002;  ///< cluster resource events

/// Deterministic shortest-round-trip-ish formatting ("%.9g") used for every
/// double that lands in a trace line.
std::string format_double(double value);

struct Arg {
  std::string key;
  std::string value;
};
using Args = std::vector<Arg>;

/// Sentinel `cause` argument meaning "use the recorder's ambient cause" —
/// the id of the most recently recorded event on this recorder, which the
/// Simulator restores from the popped event before running its callback.
/// Pass 0 to record an event with no causal parent.
inline constexpr std::uint64_t kAmbient = ~std::uint64_t{0};

/// Build an Arg from a string, integer or floating-point value with the
/// deterministic formatting the text sink relies on.
template <typename T>
Arg arg(std::string key, T value) {
  if constexpr (std::is_floating_point_v<std::decay_t<T>>) {
    return Arg{std::move(key), format_double(value)};
  } else if constexpr (std::is_integral_v<std::decay_t<T>>) {
    return Arg{std::move(key), std::to_string(value)};
  } else {
    return Arg{std::move(key), std::string(std::move(value))};
  }
}

struct Event {
  Category category = Category::kMark;
  char phase = 'i';  // 'X' complete, 'i' instant, 'C' counter, 'b'/'e' async
  std::string name;
  double ts = 0.0;     ///< simulated seconds (event start for 'X')
  double dur = 0.0;    ///< 'X' only: span length in seconds
  double value = 0.0;  ///< 'C' only
  std::uint64_t id = 0;  ///< 'b'/'e' only: pairing id
  int pid = 0;
  int tid = 0;
  std::uint64_t eid = 0;    ///< causal event id, assigned at record time
  std::uint64_t cause = 0;  ///< eid of the event that caused this one, 0 = root
  Args args;

  /// Value of the named arg, or nullptr when absent.
  const std::string* find_arg(const std::string& key) const;
};

class TraceRecorder {
 public:
#if AUTOPIPE_TRACING
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// A finished span: [ts_begin, ts_end] on row (pid, tid). Returns the
  /// causal id assigned to the event (0 when disabled). `cause` is the eid
  /// of the causal parent; kAmbient picks up the recorder's ambient cause.
  std::uint64_t complete(Category category, std::string name, double ts_begin,
                         double ts_end, int pid, int tid, Args args = {},
                         std::uint64_t cause = kAmbient);
  /// A point event.
  std::uint64_t instant(Category category, std::string name, double ts,
                        int pid, int tid, Args args = {},
                        std::uint64_t cause = kAmbient);
  /// A sampled counter value. Counters carry no causal id and do not
  /// disturb the ambient cause.
  void counter(Category category, std::string name, double ts, double value,
               int pid = kPidNetwork);
  /// Async span delimiters paired by (name, id) — used for flows, whose
  /// lifetimes overlap arbitrarily.
  std::uint64_t async_begin(Category category, std::string name,
                            std::uint64_t id, double ts, Args args = {},
                            std::uint64_t cause = kAmbient);
  std::uint64_t async_end(Category category, std::string name,
                          std::uint64_t id, double ts, Args args = {},
                          std::uint64_t cause = kAmbient);

  /// Ambient causal context: the eid of the most recently recorded
  /// non-counter event, or whatever the Simulator restored before running a
  /// callback. New events default their `cause` to this.
  std::uint64_t current_cause() const { return current_cause_; }
  void set_current_cause(std::uint64_t eid) { current_cause_ = eid; }

  const std::vector<Event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() {
    events_.clear();
    next_eid_ = 1;
    current_cause_ = 0;
  }

  void write_chrome_json(std::ostream& os) const;
  void write_text(std::ostream& os) const;

 private:
  /// Shared body of the four non-counter recording methods.
  std::uint64_t record(Event ev, std::uint64_t cause);

  bool enabled_ = false;
  std::uint64_t next_eid_ = 1;
  std::uint64_t current_cause_ = 0;
  std::vector<Event> events_;
#else
  // Tracing compiled out: every call site guarded by enabled() is dead code.
  void set_enabled(bool) {}
  static constexpr bool enabled() { return false; }
  std::uint64_t complete(Category, std::string, double, double, int, int,
                         Args = {}, std::uint64_t = kAmbient) {
    return 0;
  }
  std::uint64_t instant(Category, std::string, double, int, int, Args = {},
                        std::uint64_t = kAmbient) {
    return 0;
  }
  void counter(Category, std::string, double, double, int = kPidNetwork) {}
  std::uint64_t async_begin(Category, std::string, std::uint64_t, double,
                            Args = {}, std::uint64_t = kAmbient) {
    return 0;
  }
  std::uint64_t async_end(Category, std::string, std::uint64_t, double,
                          Args = {}, std::uint64_t = kAmbient) {
    return 0;
  }
  static constexpr std::uint64_t current_cause() { return 0; }
  void set_current_cause(std::uint64_t) {}
  const std::vector<Event>& events() const { return empty_; }
  std::size_t size() const { return 0; }
  void clear() {}
  void write_chrome_json(std::ostream& os) const;
  void write_text(std::ostream&) const {}

 private:
  static const std::vector<Event> empty_;
#endif
};

}  // namespace autopipe::trace
