#include "common/trace.hpp"

#include <cstdio>
#include <ostream>
#include <set>
#include <utility>

namespace autopipe::trace {

const char* category_name(Category category) {
  switch (category) {
    case Category::kCompute: return "compute";
    case Category::kComm: return "comm";
    case Category::kSwitch: return "switch";
    case Category::kControl: return "control";
    case Category::kResource: return "resource";
    case Category::kMark: return "mark";
    case Category::kFault: return "fault";
  }
  return "unknown";
}

std::string format_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

const std::string* Event::find_arg(const std::string& key) const {
  for (const Arg& a : args) {
    if (a.key == key) return &a.value;
  }
  return nullptr;
}

#if AUTOPIPE_TRACING

std::uint64_t TraceRecorder::record(Event ev, std::uint64_t cause) {
  ev.eid = next_eid_++;
  ev.cause = cause == kAmbient ? current_cause_ : cause;
  if (ev.cause == ev.eid) ev.cause = 0;  // never self-caused
  current_cause_ = ev.eid;
  const std::uint64_t eid = ev.eid;
  events_.push_back(std::move(ev));
  return eid;
}

std::uint64_t TraceRecorder::complete(Category category, std::string name,
                                      double ts_begin, double ts_end, int pid,
                                      int tid, Args args,
                                      std::uint64_t cause) {
  if (!enabled_) return 0;
  Event ev;
  ev.category = category;
  ev.phase = 'X';
  ev.name = std::move(name);
  ev.ts = ts_begin;
  ev.dur = ts_end - ts_begin;
  ev.pid = pid;
  ev.tid = tid;
  ev.args = std::move(args);
  return record(std::move(ev), cause);
}

std::uint64_t TraceRecorder::instant(Category category, std::string name,
                                     double ts, int pid, int tid, Args args,
                                     std::uint64_t cause) {
  if (!enabled_) return 0;
  Event ev;
  ev.category = category;
  ev.phase = 'i';
  ev.name = std::move(name);
  ev.ts = ts;
  ev.pid = pid;
  ev.tid = tid;
  ev.args = std::move(args);
  return record(std::move(ev), cause);
}

void TraceRecorder::counter(Category category, std::string name, double ts,
                            double value, int pid) {
  if (!enabled_) return;
  Event ev;
  ev.category = category;
  ev.phase = 'C';
  ev.name = std::move(name);
  ev.ts = ts;
  ev.value = value;
  ev.pid = pid;
  events_.push_back(std::move(ev));
}

std::uint64_t TraceRecorder::async_begin(Category category, std::string name,
                                         std::uint64_t id, double ts,
                                         Args args, std::uint64_t cause) {
  if (!enabled_) return 0;
  Event ev;
  ev.category = category;
  ev.phase = 'b';
  ev.name = std::move(name);
  ev.ts = ts;
  ev.id = id;
  ev.pid = kPidNetwork;
  ev.args = std::move(args);
  return record(std::move(ev), cause);
}

std::uint64_t TraceRecorder::async_end(Category category, std::string name,
                                       std::uint64_t id, double ts, Args args,
                                       std::uint64_t cause) {
  if (!enabled_) return 0;
  Event ev;
  ev.category = category;
  ev.phase = 'e';
  ev.name = std::move(name);
  ev.ts = ts;
  ev.id = id;
  ev.pid = kPidNetwork;
  ev.args = std::move(args);
  return record(std::move(ev), cause);
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Chrome timestamps are microseconds; keep sub-microsecond digits.
std::string micros_str(double seconds) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", seconds * 1e6);
  return buf;
}

std::string seconds_str(double seconds) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9f", seconds);
  return buf;
}

}  // namespace

void TraceRecorder::write_chrome_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Name the synthetic process rows so the viewer is self-explanatory.
  const std::pair<int, const char*> named[] = {
      {kPidNetwork, "network"},
      {kPidControl, "control"},
      {kPidResource, "resources"},
  };
  std::set<int> worker_pids;
  for (const Event& ev : events_) {
    if (ev.pid < kPidNetwork) worker_pids.insert(ev.pid);
  }
  auto metadata = [&](int pid, const std::string& name) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  };
  for (const auto& [pid, name] : named) metadata(pid, name);
  for (int pid : worker_pids) metadata(pid, "worker " + std::to_string(pid));

  for (const Event& ev : events_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
       << category_name(ev.category) << "\",\"ph\":\"" << ev.phase
       << "\",\"ts\":" << micros_str(ev.ts);
    if (ev.phase == 'X') os << ",\"dur\":" << micros_str(ev.dur);
    if (ev.phase == 'b' || ev.phase == 'e') os << ",\"id\":" << ev.id;
    os << ",\"pid\":" << ev.pid << ",\"tid\":" << ev.tid;
    if (ev.phase == 'C') {
      os << ",\"args\":{\"value\":" << format_double(ev.value) << "}";
    } else if (!ev.args.empty()) {
      os << ",\"args\":{";
      for (std::size_t i = 0; i < ev.args.size(); ++i) {
        if (i) os << ",";
        os << "\"" << json_escape(ev.args[i].key) << "\":\""
           << json_escape(ev.args[i].value) << "\"";
      }
      os << "}";
    }
    os << "}";
  }

  // Causal edges as Chrome flow-event pairs: an 's' (start) anchored at the
  // causing event's end and an 'f' (finish, bp:"e") anchored at the caused
  // event's start, paired by the child's eid. eids are assigned densely over
  // non-counter events, so an index maps cause ids back to their events.
  std::vector<const Event*> by_eid;
  for (const Event& ev : events_) {
    if (ev.eid != 0) {
      if (by_eid.size() < ev.eid) by_eid.resize(ev.eid, nullptr);
      by_eid[ev.eid - 1] = &ev;
    }
  }
  for (const Event& ev : events_) {
    if (ev.cause == 0 || ev.cause > by_eid.size()) continue;
    const Event* parent = by_eid[ev.cause - 1];
    if (parent == nullptr) continue;
    const double parent_end =
        parent->phase == 'X' ? parent->ts + parent->dur : parent->ts;
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"causal\",\"cat\":\"causal\",\"ph\":\"s\",\"id\":"
       << ev.eid << ",\"ts\":" << micros_str(parent_end)
       << ",\"pid\":" << parent->pid << ",\"tid\":" << parent->tid << "},"
       << "\n{\"name\":\"causal\",\"cat\":\"causal\",\"ph\":\"f\",\"bp\":\"e\","
       << "\"id\":" << ev.eid << ",\"ts\":" << micros_str(ev.ts)
       << ",\"pid\":" << ev.pid << ",\"tid\":" << ev.tid << "}";
  }
  os << "\n]}\n";
}

void TraceRecorder::write_text(std::ostream& os) const {
  for (const Event& ev : events_) {
    os << seconds_str(ev.ts) << ' ' << category_name(ev.category) << ' '
       << ev.phase << ' ' << ev.name << " pid=" << ev.pid
       << " tid=" << ev.tid;
    if (ev.phase == 'X') os << " dur=" << seconds_str(ev.dur);
    if (ev.phase == 'b' || ev.phase == 'e') os << " id=" << ev.id;
    if (ev.phase == 'C') os << " value=" << format_double(ev.value);
    if (ev.eid != 0) os << " eid=" << ev.eid;
    if (ev.cause != 0) os << " cause=" << ev.cause;
    for (const Arg& a : ev.args) os << ' ' << a.key << '=' << a.value;
    os << '\n';
  }
}

#else  // !AUTOPIPE_TRACING

const std::vector<Event> TraceRecorder::empty_;

void TraceRecorder::write_chrome_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n";
}

#endif

}  // namespace autopipe::trace
