// Units used across the simulator. We follow a "base SI unit as double"
// convention: time in seconds, data in bytes, compute in FLOPs, rate in
// bytes/second or FLOP/s. Helper constructors keep call sites readable
// (e.g. gbps(25), mib(96)) without the overhead of a full strong-type
// library.
#pragma once

#include <cstdint>

namespace autopipe {

/// Simulated time in seconds.
using Seconds = double;

/// Data volume in bytes.
using Bytes = double;

/// Bandwidth in bytes per second.
using BytesPerSec = double;

/// Compute work in floating point operations.
using Flops = double;

/// Compute rate in FLOP/s.
using FlopsPerSec = double;

// --- data volume -----------------------------------------------------------

constexpr Bytes kib(double v) { return v * 1024.0; }
constexpr Bytes mib(double v) { return v * 1024.0 * 1024.0; }
constexpr Bytes gib(double v) { return v * 1024.0 * 1024.0 * 1024.0; }

// --- bandwidth --------------------------------------------------------------

/// Network link speeds are quoted in decimal gigabits per second, as in the
/// paper's 10/25/40/100Gbps testbed.
constexpr BytesPerSec gbps(double v) { return v * 1e9 / 8.0; }
constexpr BytesPerSec mbps(double v) { return v * 1e6 / 8.0; }

// --- compute ----------------------------------------------------------------

constexpr Flops gflop(double v) { return v * 1e9; }
constexpr Flops mflop(double v) { return v * 1e6; }
constexpr FlopsPerSec tflops(double v) { return v * 1e12; }
constexpr FlopsPerSec gflops(double v) { return v * 1e9; }

// --- time -------------------------------------------------------------------

constexpr Seconds millis(double v) { return v * 1e-3; }
constexpr Seconds micros(double v) { return v * 1e-6; }

}  // namespace autopipe
