#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace autopipe {

double mean(std::span<const double> xs) {
  AUTOPIPE_EXPECT(!xs.empty());
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  AUTOPIPE_EXPECT(!xs.empty());
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double p) {
  AUTOPIPE_EXPECT(!xs.empty());
  AUTOPIPE_EXPECT(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double min_of(std::span<const double> xs) {
  AUTOPIPE_EXPECT(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  AUTOPIPE_EXPECT(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

Ema::Ema(double alpha) : alpha_(alpha) {
  AUTOPIPE_EXPECT(alpha > 0.0 && alpha <= 1.0);
}

void Ema::add(double sample) {
  if (!has_value_) {
    value_ = sample;
    has_value_ = true;
  } else {
    value_ = alpha_ * sample + (1.0 - alpha_) * value_;
  }
}

double Ema::value() const {
  AUTOPIPE_EXPECT(has_value_);
  return value_;
}

void Ema::reset() {
  value_ = 0.0;
  has_value_ = false;
}

void Histogram::add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sorted_ = false;
}

void Histogram::add_all(std::span<const double> samples) {
  for (double s : samples) add(s);
}

double Histogram::mean() const {
  AUTOPIPE_EXPECT(!samples_.empty());
  return sum_ / static_cast<double>(samples_.size());
}

double Histogram::min() const {
  ensure_sorted();
  AUTOPIPE_EXPECT(!samples_.empty());
  return samples_.front();
}

double Histogram::max() const {
  ensure_sorted();
  AUTOPIPE_EXPECT(!samples_.empty());
  return samples_.back();
}

double Histogram::percentile(double p) const {
  AUTOPIPE_EXPECT(p >= 0.0 && p <= 100.0);
  // Empty and single-sample accumulators are legitimate at call sites that
  // digest whatever a run produced (a zero-iteration measurement window, a
  // single completed flow): match summary()'s all-zero convention rather
  // than treating them as contract violations.
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (samples_.size() == 1) return samples_.front();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void Histogram::reset() {
  samples_.clear();
  sum_ = 0.0;
  sorted_ = true;
}

Histogram::Summary Histogram::summary() const {
  Summary s;
  if (samples_.empty()) return s;
  s.count = count();
  s.mean = mean();
  s.min = min();
  s.p50 = p50();
  s.p95 = p95();
  s.p99 = p99();
  s.max = max();
  return s;
}

void Histogram::ensure_sorted() const {
  if (sorted_) return;
  // samples_ is logically const here: sorting changes representation only.
  auto& mut = const_cast<std::vector<double>&>(samples_);
  std::sort(mut.begin(), mut.end());
  sorted_ = true;
}

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  AUTOPIPE_EXPECT(n_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  AUTOPIPE_EXPECT(n_ > 0);
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::reset() {
  n_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

}  // namespace autopipe
