// Minimal leveled logger. Benchmarks run with the logger at `warn` so their
// stdout stays machine-parsable; tests can raise verbosity to debug a
// failing scenario.
#pragma once

#include <sstream>
#include <string>

namespace autopipe {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace autopipe

#define AUTOPIPE_LOG(level, msg)                                       \
  do {                                                                 \
    if (static_cast<int>(level) >=                                     \
        static_cast<int>(::autopipe::log_level())) {                   \
      std::ostringstream os_;                                          \
      os_ << msg;                                                      \
      ::autopipe::detail::log_emit(level, os_.str());                  \
    }                                                                  \
  } while (false)

#define LOG_DEBUG(msg) AUTOPIPE_LOG(::autopipe::LogLevel::kDebug, msg)
#define LOG_INFO(msg) AUTOPIPE_LOG(::autopipe::LogLevel::kInfo, msg)
#define LOG_WARN(msg) AUTOPIPE_LOG(::autopipe::LogLevel::kWarn, msg)
#define LOG_ERROR(msg) AUTOPIPE_LOG(::autopipe::LogLevel::kError, msg)
