// Small statistics helpers used by benchmarks and the profiler: summary
// statistics, percentiles and exponential moving averages (the profiler
// smooths per-iteration bandwidth estimates with an EMA).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace autopipe {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);   // population variance
double stddev(std::span<const double> xs);
double median(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);

double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Exponential moving average with configurable smoothing factor
/// alpha in (0, 1]; alpha = 1 reduces to "last sample wins".
class Ema {
 public:
  explicit Ema(double alpha);

  void add(double sample);
  bool empty() const { return !has_value_; }
  double value() const;
  void reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool has_value_ = false;
};

/// Sample-keeping distribution accumulator with percentile queries — the
/// iteration-time and flow-duration distributions the trace analyzer and
/// the CLI summary tables report. Keeps the raw samples (runs are tens of
/// thousands of events at most) so percentiles are exact.
class Histogram {
 public:
  void add(double sample);
  void add_all(std::span<const double> samples);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;
  /// Linear-interpolated percentile, p in [0, 100]. Follows summary()'s
  /// conventions at the edges: 0.0 on an empty accumulator, the sample
  /// itself when only one was added.
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }

  void reset();

  /// The standard digest row: count/mean/min/p50/p95/p99/max.
  struct Summary {
    std::size_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
  };
  /// Digest of the samples so far; all-zero when empty.
  Summary summary() const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  double sum_ = 0.0;
  mutable bool sorted_ = true;
};

/// Online mean/variance accumulator (Welford). Used by tests and the
/// resource monitor's change detector.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  // population variance
  double stddev() const;
  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace autopipe
