// Small statistics helpers used by benchmarks and the profiler: summary
// statistics, percentiles and exponential moving averages (the profiler
// smooths per-iteration bandwidth estimates with an EMA).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace autopipe {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);   // population variance
double stddev(std::span<const double> xs);
double median(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);

double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Exponential moving average with configurable smoothing factor
/// alpha in (0, 1]; alpha = 1 reduces to "last sample wins".
class Ema {
 public:
  explicit Ema(double alpha);

  void add(double sample);
  bool empty() const { return !has_value_; }
  double value() const;
  void reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool has_value_ = false;
};

/// Online mean/variance accumulator (Welford). Used by tests and the
/// resource monitor's change detector.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  // population variance
  double stddev() const;
  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace autopipe
