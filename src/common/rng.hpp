// Deterministic random number generation. Every stochastic component in the
// repository takes an explicit seed (or an Rng&) so experiments are exactly
// reproducible run-to-run — a requirement for regression-testing the RL and
// meta-network training loops.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace autopipe {

/// Thin wrapper over std::mt19937_64 with the handful of draw shapes the
/// codebase needs. Copyable; copies continue independent streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Gaussian with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial.
  bool chance(double p);

  /// Exponentially distributed value with the given mean (for inter-arrival
  /// times of background jobs).
  double exponential(double mean);

  /// Sample an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (e.g. one per worker).
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace autopipe
