#include "common/flags.hpp"

#include <cstdlib>

#include "common/expect.hpp"

namespace autopipe {

Flags::Flags(int argc, const char* const* argv) {
  AUTOPIPE_EXPECT(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    AUTOPIPE_EXPECT_MSG(arg.rfind("--", 0) == 0,
                        "expected --flag, got '" << arg << "'");
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

bool Flags::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) > 0;
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double Flags::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  AUTOPIPE_EXPECT_MSG(end && *end == '\0',
                      "--" << name << " expects a number, got '"
                           << it->second << "'");
  return v;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const std::int64_t v =
      std::strtoll(it->second.c_str(), &end, 10);
  AUTOPIPE_EXPECT_MSG(end && *end == '\0',
                      "--" << name << " expects an integer, got '"
                           << it->second << "'");
  return v;
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (!queried_.count(key)) out.push_back(key);
  }
  return out;
}

}  // namespace autopipe
