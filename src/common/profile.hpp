// Host-side self-profiler: where does the *tool* spend wall-clock time?
// The event trace and metrics registry describe the simulated world; this
// module describes the simulator/planner/controller themselves — planner
// solve time per round (the paper's Fig 12 concern), predictor inference,
// event-queue push/pop, fault handling, sweep workers.
//
// Design: scoped RAII spans recorded into per-thread buffers. Recording is
// lock-free — each thread appends to its own thread_local buffer, and the
// only synchronization is a mutex taken once per thread at registration
// and again by collect()/reset(), which must only be called after parallel
// work has joined. When the profiler is disabled (the default) a span costs
// one relaxed atomic load and a branch — ≤ 2 ns, measured by
// BM_ProfilerSpanOverhead in bench/micro_benchmarks.cpp — so the macros can
// stay in hot paths unconditionally.
//
// Two macro flavours:
//   PROF_SPAN("planner/solve")   — full record (start, duration, depth);
//     nests, feeds inclusive/exclusive tables, Chrome JSON and flamegraphs.
//   PROF_SPAN_AGG("sim/queue_pop") — aggregate-only (total ns + count);
//     constant memory, for paths hit millions of times per run.
//
// Span names must be string literals (or otherwise outlive collect()):
// the recorder stores the pointer, never a copy. By convention a name is
// "<category>/<what>" — the category (prefix before '/') is the unit of the
// per-category report in `autopipe_trace profile`.
//
// This is *not* src/autopipe/profiler.hpp (the paper's non-intrusive GPU
// profiler for the simulated job) — see docs/TELEMETRY.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace autopipe::prof {

/// One completed span, converted to owned strings by collect().
struct Span {
  std::string name;
  std::uint64_t start_ns = 0;  ///< steady_clock, rebased to 0 by collect()
  std::uint64_t dur_ns = 0;
  std::uint32_t depth = 0;     ///< nesting depth at entry (0 = top level)
};

/// Aggregate-only counter for PROF_SPAN_AGG sites.
struct Aggregate {
  std::string name;
  std::uint64_t total_ns = 0;
  std::uint64_t count = 0;
};

/// Everything one thread recorded, in recording order.
struct ThreadProfile {
  std::uint64_t thread_index = 0;  ///< registration order, 0-based
  std::vector<Span> spans;
  std::vector<Aggregate> aggregates;  ///< sorted by name
};

/// Globally enable/disable recording. Threads observe the change at their
/// next span entry (relaxed ordering — a span straddling the transition may
/// or may not be recorded).
void set_enabled(bool on);
bool enabled();

/// Snapshot all thread buffers. Start times are rebased so the earliest
/// span starts at 0. Must not race with recording: call after worker
/// threads have joined (single-threaded tools call it at exit).
std::vector<ThreadProfile> collect();

/// Drop all recorded spans/aggregates (buffers stay registered). Same
/// threading caveat as collect().
void reset();

/// Serialize in the deterministic-shape `autopipe-prof-v1` text format
/// (values are host timings, so bytes vary run to run):
///   autopipe-prof-v1
///   thread <index>
///   span <name> <start_ns> <dur_ns> <depth>
///   agg <name> <total_ns> <count>
void write_text(const std::vector<ThreadProfile>& profiles, std::ostream& os);

/// Parse write_text output back. Throws std::runtime_error on malformed
/// input (wrong header, short lines).
std::vector<ThreadProfile> read_text(std::istream& is);

/// Chrome trace_event JSON ("X" phase events, pid 2000 "autopipe host",
/// one tid per recorded thread) — load in chrome://tracing or Perfetto,
/// mergeable alongside the simulator's own chrome trace. Aggregate-only
/// sites appear as metadata-style zero-duration counters.
void write_chrome_json(const std::vector<ThreadProfile>& profiles,
                       std::ostream& os);

namespace detail {

extern std::atomic<bool> g_enabled;

std::uint64_t now_ns();

/// Enter/record on the calling thread's buffer (registers it on first use).
std::uint32_t enter_span();
void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t end_ns, std::uint32_t depth);
void record_agg(const char* name, std::uint64_t dur_ns);

}  // namespace detail

/// RAII guard behind PROF_SPAN. All work is skipped when disabled; the
/// guard remembers whether it armed so enable/disable mid-scope is safe.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name) {
    if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
    name_ = name;
    depth_ = detail::enter_span();
    start_ = detail::now_ns();
  }
  ~SpanGuard() {
    if (name_ == nullptr) return;
    detail::record_span(name_, start_, detail::now_ns(), depth_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
  std::uint32_t depth_ = 0;
};

/// RAII guard behind PROF_SPAN_AGG: one (total_ns, count) cell per name.
class AggGuard {
 public:
  explicit AggGuard(const char* name) {
    if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
    name_ = name;
    start_ = detail::now_ns();
  }
  ~AggGuard() {
    if (name_ == nullptr) return;
    detail::record_agg(name_, detail::now_ns() - start_);
  }
  AggGuard(const AggGuard&) = delete;
  AggGuard& operator=(const AggGuard&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
};

}  // namespace autopipe::prof

#define AUTOPIPE_PROF_CONCAT2(a, b) a##b
#define AUTOPIPE_PROF_CONCAT(a, b) AUTOPIPE_PROF_CONCAT2(a, b)

/// Full-record scoped span; `name` must be a string literal "cat/what".
#define PROF_SPAN(name) \
  ::autopipe::prof::SpanGuard AUTOPIPE_PROF_CONCAT(prof_span_, __LINE__)(name)

/// Aggregate-only scoped span for ultra-hot paths (constant memory).
#define PROF_SPAN_AGG(name) \
  ::autopipe::prof::AggGuard AUTOPIPE_PROF_CONCAT(prof_agg_, __LINE__)(name)
