// Decision ledger: a structured audit trail of every planning round the
// AutoPipe controller runs. Where the event trace answers "what did the
// pipeline do", the ledger answers "what did the controller *consider*, what
// did its predictors say, and what did it pick" — one DecisionRecord per
// round, carrying the resource-snapshot digest, every candidate partition in
// the search neighborhood with its predicted speed and switch-cost estimate,
// the arbiter's verdict (Q-values included when the RL agent decided), and
// the chosen action. Each record is later *resolved* with a realized
// outcome, so offline tooling (src/analysis/calibration.*) can compute
// prediction error, bias and regret by joining ledger against trace.
//
// Like the TraceRecorder, the ledger is owned by the Simulator, disabled by
// default, and timestamped in simulated seconds only — no host wall-clock
// ever lands in a record, so a run's ledger is byte-identical across
// same-seed executions. The text sink is a line-based key=value format
// (one `decision`/`cand`*/`choice`/`outcome` group per record) documented in
// docs/DECISIONS.md; analysis::read_ledger() parses it back losslessly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace autopipe::trace {

/// One candidate partition examined during a planning round.
struct CandidateScore {
  std::string partition;        ///< compact form (Partition::to_string, no spaces)
  double predicted_speed = 0.0; ///< samples/s the predictor expects
  double cost_fine = 0.0;       ///< est. fine-grained switch stall (seconds)
  double cost_stw = 0.0;        ///< est. stop-the-world switch stall (seconds)
  bool skipped = false;         ///< pruned (unreachable worker / rejected set)
};

enum class DecisionAction { kHold, kSwitch };

const char* decision_action_name(DecisionAction action);

enum class OutcomeStatus {
  kPending,     ///< not yet resolved (never written; finalize() clears these)
  kExecuted,    ///< switch adopted and kept through validation
  kReverted,    ///< switch adopted then rolled back by validation
  kRejected,    ///< hold decision, realized speed measured under status quo
  kSuperseded,  ///< overtaken before measurement completed (fault, new plan…)
  // A decided switch whose staged execution was interrupted by a fault and,
  // after the controller's retry budget ran out, abandoned. The phase names
  // the furthest point the *last* attempt reached before aborting; each
  // attempted switch resolves to exactly one terminal outcome.
  kAbortedPrepare,   ///< aborted while planning the migration
  kAbortedDrain,     ///< aborted while draining in-flight batches (STW only)
  kAbortedTransfer,  ///< aborted mid-weight-migration and rolled back
};

const char* outcome_status_name(OutcomeStatus status);

struct DecisionOutcome {
  OutcomeStatus status = OutcomeStatus::kPending;
  double realized_speed = -1.0;  ///< samples/s over the window; -1 unmeasured
  int window_iterations = 0;     ///< iterations the measurement spanned
  std::string reason;            ///< terminal cause ("run_end", "fault", …)
};

/// One planning round.
struct DecisionRecord {
  std::uint64_t id = 0;        ///< dense, 0-based, assigned by add()
  /// Co-tenancy: 1-based id of the job whose controller took this decision.
  /// 0 (single-tenant) serializes no job= field, keeping legacy ledgers
  /// byte-identical.
  std::uint64_t job = 0;
  double time = 0.0;           ///< simulated seconds
  std::uint64_t iteration = 0; ///< controller iteration count at decision
  std::string kind;            ///< "neighborhood" or "replan"
  std::string digest;          ///< FNV-1a hex digest of the resource snapshot
  int num_workers = 0;
  double iteration_time = 0.0; ///< smoothed seconds/iteration at decision
  std::string current;         ///< active partition, compact form
  double current_pred = 0.0;   ///< predicted speed of staying put
  std::vector<CandidateScore> candidates;

  DecisionAction action = DecisionAction::kHold;
  std::string target;          ///< chosen partition ("" on hold)
  double chosen_pred = 0.0;    ///< predicted speed of the chosen action
  double best_pred = 0.0;      ///< best predicted speed over all candidates
  double cost_seconds = 0.0;   ///< switch-cost estimate of the chosen mode
  std::string arbiter;         ///< "rl", "threshold", "always", "never", "floor"
  std::vector<double> q_values;///< RL arbiter only; empty otherwise
  bool explored = false;       ///< RL epsilon-greedy exploration fired

  DecisionOutcome outcome;
};

class DecisionLedger {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Identify the run; lands in the header line.
  void set_run_info(int batches_per_iteration, int num_workers,
                    std::string model);

  /// Append a record (outcome typically still kPending); returns its id.
  std::uint64_t add(DecisionRecord record);

  /// Attach the realized outcome to record `id`.
  void resolve(std::uint64_t id, DecisionOutcome outcome);

  /// Mark every still-pending record superseded with `reason`. Call at end
  /// of run so no dangling records survive serialization.
  void finalize(const std::string& reason = "run_end");

  bool all_resolved() const;

  const std::vector<DecisionRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  void clear() { records_.clear(); }

  /// Deterministic text sink; byte-identical for same-seed runs.
  void write_text(std::ostream& os) const;

  int batches_per_iteration() const { return batches_; }
  int run_workers() const { return workers_; }
  const std::string& model() const { return model_; }

 private:
  bool enabled_ = false;
  int batches_ = 0;
  int workers_ = 0;
  std::string model_;
  std::vector<DecisionRecord> records_;
};

}  // namespace autopipe::trace
