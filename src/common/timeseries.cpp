#include "common/timeseries.hpp"

#include <ostream>
#include <set>

#include "common/expect.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace autopipe::trace {

void TimeSeriesSampler::configure(double interval_seconds) {
  AUTOPIPE_EXPECT_MSG(interval_seconds > 0.0,
                      "timeseries interval must be positive, got "
                          << interval_seconds);
  interval_ = interval_seconds;
  next_index_ = 0;
  finalized_ = false;
  samples_.clear();
}

void TimeSeriesSampler::emit(double time, const MetricsRegistry& metrics) {
  samples_.push_back(Sample{time, metrics.flattened()});
}

void TimeSeriesSampler::advance_to(double t, const MetricsRegistry& metrics) {
  if (!enabled()) return;
  // Boundary positions are computed as index * interval (never by repeated
  // addition), so the grid is identical no matter how the calls interleave.
  while (static_cast<double>(next_index_) * interval_ <= t) {
    emit(static_cast<double>(next_index_) * interval_, metrics);
    ++next_index_;
  }
}

void TimeSeriesSampler::finalize(double now, const MetricsRegistry& metrics) {
  if (!enabled() || finalized_) return;
  finalized_ = true;
  advance_to(now, metrics);
  // The run may end between boundaries; close with the complete state.
  if (samples_.empty() || samples_.back().time < now) emit(now, metrics);
}

void TimeSeriesSampler::write_text(std::ostream& os) const {
  std::set<std::string> columns;
  for (const Sample& s : samples_)
    for (const auto& [name, value] : s.values) columns.insert(name);

  os << "autopipe-ts-v1 interval=" << format_double(interval_)
     << " rows=" << samples_.size() << " columns=" << columns.size() + 1
     << "\n";
  os << "col time\n";
  for (const std::string& name : columns) os << "col " << name << "\n";
  for (const Sample& s : samples_) {
    os << format_double(s.time);
    for (const std::string& name : columns) {
      const auto it = s.values.find(name);
      os << " " << format_double(it == s.values.end() ? 0.0 : it->second);
    }
    os << "\n";
  }
}

}  // namespace autopipe::trace
