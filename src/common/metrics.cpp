#include "common/metrics.hpp"

namespace autopipe::trace {

void MetricsRegistry::add(const std::string& name, double delta) {
  values_[name] += delta;
}

void MetricsRegistry::set(const std::string& name, double value) {
  values_[name] = value;
}

double MetricsRegistry::value(const std::string& name) const {
  auto it = values_.find(name);
  return it == values_.end() ? 0.0 : it->second;
}

bool MetricsRegistry::has(const std::string& name) const {
  return values_.count(name) > 0;
}

}  // namespace autopipe::trace
