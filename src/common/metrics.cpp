#include "common/metrics.hpp"

#include <cmath>

namespace autopipe::trace {

bool MetricsRegistry::drop_if_nonfinite(double value) {
  if (std::isfinite(value)) return false;
  // Count into values_ directly: the dropped-sample counter must itself
  // stay finite and must not recurse through this check.
  values_[kDroppedSamplesKey] += 1.0;
  return true;
}

void MetricsRegistry::add(const std::string& name, double delta) {
  if (drop_if_nonfinite(delta)) return;
  values_[name] += delta;
}

void MetricsRegistry::set(const std::string& name, double value) {
  if (drop_if_nonfinite(value)) return;
  values_[name] = value;
}

double MetricsRegistry::value(const std::string& name) const {
  auto it = values_.find(name);
  return it == values_.end() ? 0.0 : it->second;
}

bool MetricsRegistry::has(const std::string& name) const {
  return values_.count(name) > 0;
}

void MetricsRegistry::clear() {
  values_.clear();
  series_.clear();
}

void MetricsRegistry::observe(const std::string& name, double sample) {
  if (drop_if_nonfinite(sample)) return;
  auto [it, inserted] = series_.try_emplace(name);
  Series& s = it->second;
  if (inserted) {
    s.alpha = rolling_.ema_alpha;
    s.limit = rolling_.window == 0 ? 1 : rolling_.window;
  }
  s.ema = s.count == 0 ? sample : s.alpha * sample + (1.0 - s.alpha) * s.ema;
  ++s.count;
  s.window.push_back(sample);
  while (s.window.size() > s.limit) s.window.pop_front();
}

double MetricsRegistry::ema(const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? 0.0 : it->second.ema;
}

double MetricsRegistry::window_mean(const std::string& name) const {
  auto it = series_.find(name);
  if (it == series_.end() || it->second.window.empty()) return 0.0;
  double sum = 0.0;
  for (double v : it->second.window) sum += v;
  return sum / static_cast<double>(it->second.window.size());
}

std::size_t MetricsRegistry::observations(const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? 0 : it->second.count;
}

std::map<std::string, double> MetricsRegistry::flattened() const {
  std::map<std::string, double> out = values_;
  for (const auto& [name, s] : series_) {
    out[name + ".ema"] = s.ema;
    double sum = 0.0;
    for (double v : s.window) sum += v;
    out[name + ".mean"] =
        s.window.empty() ? 0.0 : sum / static_cast<double>(s.window.size());
    out[name + ".count"] = static_cast<double>(s.count);
  }
  return out;
}

}  // namespace autopipe::trace
