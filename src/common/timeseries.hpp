// Metrics time-series: the flattened registry sampled on a fixed sim-time
// cadence, so throughput, bubble ratio and predictor error can be seen
// *evolving* instead of only as end-of-run totals.
//
// Sampling semantics ("sample-at-boundary"): with interval Δ, boundaries
// are b = 0, Δ, 2Δ, ... and the row at boundary b reflects exactly the
// events with time < b. The simulator drives the sampler from inside
// step(): before executing an event at time t it emits every not-yet-
// emitted boundary ≤ t. No events are added to the queue, so the sampler
// cannot perturb event counts or ordering — the rows are a pure function of
// the deterministic event sequence and therefore byte-identical across
// event-queue kinds (heap/wheel) and sweep --jobs values (verified by
// `ctest -L parity`).
//
// Output (`autopipe-ts-v1`): a columnar text block — header, interval, one
// `col <name>` line per column (the sorted union of every key that ever
// appeared; absent values are 0), then one row per sample with
// `%.9g`-formatted values, time first. See docs/TELEMETRY.md.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace autopipe::trace {

class MetricsRegistry;

class TimeSeriesSampler {
 public:
  /// One snapshot: the flattened registry at sim-time boundary `time`.
  struct Sample {
    double time = 0.0;
    std::map<std::string, double> values;
  };

  /// Arm the sampler with a positive sampling interval (sim-seconds).
  /// Must be called before the run; re-configuring clears prior samples.
  void configure(double interval_seconds);

  bool enabled() const { return interval_ > 0.0; }
  double interval() const { return interval_; }

  /// Emit every pending boundary ≤ `t` (called by Simulator::step() before
  /// the event at `t` executes, and by run_until() when pinning the clock).
  /// The first call emits the t=0 row.
  void advance_to(double t, const MetricsRegistry& metrics);

  /// End-of-run hook: emit boundaries up to `now`, then one final row at
  /// `now` itself when it is past the last boundary row — so the last
  /// sample always reflects the complete run.
  void finalize(double now, const MetricsRegistry& metrics);

  const std::vector<Sample>& samples() const { return samples_; }
  std::size_t size() const { return samples_.size(); }

  /// Serialize all samples as autopipe-ts-v1.
  void write_text(std::ostream& os) const;

 private:
  void emit(double time, const MetricsRegistry& metrics);

  double interval_ = 0.0;      ///< 0 = disabled
  std::size_t next_index_ = 0; ///< next boundary is next_index_ * interval_
  bool finalized_ = false;
  std::vector<Sample> samples_;
};

}  // namespace autopipe::trace
