#include "common/profile.hpp"

#include <algorithm>
#include <chrono>
#include <istream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace autopipe::prof {

namespace detail {

std::atomic<bool> g_enabled{false};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

/// Raw per-thread recording cell. Span names stay as borrowed pointers
/// (string literals by contract) until collect() copies them out.
struct RawSpan {
  const char* name;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
  std::uint32_t depth;
};

struct ThreadBuffer {
  std::uint64_t thread_index = 0;
  std::uint32_t depth = 0;
  std::vector<RawSpan> spans;
  /// Keyed by pointer identity: every PROF_SPAN_AGG site passes the same
  /// literal, so lookups never compare characters.
  std::map<const void*, std::pair<const char*, Aggregate>> aggs;
};

/// The registry owns shared_ptrs so a worker thread's buffer survives the
/// thread itself — sweep workers join before the tool collects.
std::mutex g_registry_mutex;
std::vector<std::shared_ptr<ThreadBuffer>>& registry() {
  static std::vector<std::shared_ptr<ThreadBuffer>> r;
  return r;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    b->thread_index = registry().size();
    registry().push_back(b);
    return b;
  }();
  return *buffer;
}

}  // namespace

std::uint32_t enter_span() { return local_buffer().depth++; }

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t end_ns, std::uint32_t depth) {
  ThreadBuffer& b = local_buffer();
  b.spans.push_back(RawSpan{name, start_ns, end_ns - start_ns, depth});
  if (b.depth > 0) --b.depth;
}

void record_agg(const char* name, std::uint64_t dur_ns) {
  ThreadBuffer& b = local_buffer();
  auto& cell = b.aggs[static_cast<const void*>(name)];
  cell.first = name;
  cell.second.total_ns += dur_ns;
  ++cell.second.count;
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

std::vector<ThreadProfile> collect() {
  std::lock_guard<std::mutex> lock(detail::g_registry_mutex);
  std::uint64_t min_start = std::numeric_limits<std::uint64_t>::max();
  for (const auto& b : detail::registry())
    for (const auto& s : b->spans) min_start = std::min(min_start, s.start_ns);
  if (min_start == std::numeric_limits<std::uint64_t>::max()) min_start = 0;

  std::vector<ThreadProfile> out;
  for (const auto& b : detail::registry()) {
    if (b->spans.empty() && b->aggs.empty()) continue;
    ThreadProfile tp;
    tp.thread_index = b->thread_index;
    tp.spans.reserve(b->spans.size());
    for (const auto& s : b->spans) {
      tp.spans.push_back(
          Span{s.name, s.start_ns - min_start, s.dur_ns, s.depth});
    }
    std::map<std::string, Aggregate> sorted;
    for (const auto& [ptr, cell] : b->aggs) {
      Aggregate& a = sorted[cell.first];
      a.name = cell.first;
      a.total_ns += cell.second.total_ns;
      a.count += cell.second.count;
    }
    for (auto& [name, a] : sorted) tp.aggregates.push_back(std::move(a));
    out.push_back(std::move(tp));
  }
  std::sort(out.begin(), out.end(),
            [](const ThreadProfile& a, const ThreadProfile& b) {
              return a.thread_index < b.thread_index;
            });
  return out;
}

void reset() {
  std::lock_guard<std::mutex> lock(detail::g_registry_mutex);
  for (const auto& b : detail::registry()) {
    b->spans.clear();
    b->aggs.clear();
    b->depth = 0;
  }
}

void write_text(const std::vector<ThreadProfile>& profiles,
                std::ostream& os) {
  os << "autopipe-prof-v1\n";
  for (const ThreadProfile& tp : profiles) {
    os << "thread " << tp.thread_index << "\n";
    for (const Span& s : tp.spans) {
      os << "span " << s.name << " " << s.start_ns << " " << s.dur_ns << " "
         << s.depth << "\n";
    }
    for (const Aggregate& a : tp.aggregates) {
      os << "agg " << a.name << " " << a.total_ns << " " << a.count << "\n";
    }
  }
}

std::vector<ThreadProfile> read_text(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != "autopipe-prof-v1")
    throw std::runtime_error(
        "not an autopipe-prof-v1 profile (bad or missing header)");
  std::vector<ThreadProfile> out;
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    const auto fail = [&](const char* why) {
      throw std::runtime_error("profile line " + std::to_string(lineno) +
                               ": " + why);
    };
    if (kind == "thread") {
      ThreadProfile tp;
      if (!(ls >> tp.thread_index)) fail("malformed thread line");
      out.push_back(std::move(tp));
    } else if (kind == "span") {
      if (out.empty()) fail("span before any thread line");
      Span s;
      if (!(ls >> s.name >> s.start_ns >> s.dur_ns >> s.depth))
        fail("malformed span line");
      out.back().spans.push_back(std::move(s));
    } else if (kind == "agg") {
      if (out.empty()) fail("agg before any thread line");
      Aggregate a;
      if (!(ls >> a.name >> a.total_ns >> a.count))
        fail("malformed agg line");
      out.back().aggregates.push_back(std::move(a));
    } else {
      fail("unknown record kind");
    }
  }
  return out;
}

void write_chrome_json(const std::vector<ThreadProfile>& profiles,
                       std::ostream& os) {
  // pid 2000 keeps host spans clear of the simulator's synthetic pids
  // (workers 0.., network 1000, control 1001, resources 1002).
  constexpr int kHostPid = 2000;
  os << "[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  sep();
  os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << kHostPid
     << ", \"tid\": 0, \"args\": {\"name\": \"autopipe host\"}}";
  for (const ThreadProfile& tp : profiles) {
    for (const Span& s : tp.spans) {
      sep();
      const std::string cat = s.name.substr(0, s.name.find('/'));
      os << "  {\"name\": \"" << s.name << "\", \"cat\": \"" << cat
         << "\", \"ph\": \"X\", \"pid\": " << kHostPid
         << ", \"tid\": " << tp.thread_index << ", \"ts\": "
         << static_cast<double>(s.start_ns) / 1e3
         << ", \"dur\": " << static_cast<double>(s.dur_ns) / 1e3 << "}";
    }
    for (const Aggregate& a : tp.aggregates) {
      sep();
      os << "  {\"name\": \"" << a.name << "\", \"ph\": \"C\", \"pid\": "
         << kHostPid << ", \"tid\": " << tp.thread_index
         << ", \"ts\": 0, \"args\": {\"total_ns\": " << a.total_ns
         << ", \"count\": " << a.count << "}}";
    }
  }
  os << "\n]\n";
}

}  // namespace autopipe::prof
