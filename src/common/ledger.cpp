#include "common/ledger.hpp"

#include <ostream>

#include "common/trace.hpp"

namespace autopipe::trace {

const char* decision_action_name(DecisionAction action) {
  return action == DecisionAction::kSwitch ? "switch" : "hold";
}

const char* outcome_status_name(OutcomeStatus status) {
  switch (status) {
    case OutcomeStatus::kPending:
      return "pending";
    case OutcomeStatus::kExecuted:
      return "executed";
    case OutcomeStatus::kReverted:
      return "reverted";
    case OutcomeStatus::kRejected:
      return "rejected";
    case OutcomeStatus::kSuperseded:
      return "superseded";
    case OutcomeStatus::kAbortedPrepare:
      return "aborted_prepare";
    case OutcomeStatus::kAbortedDrain:
      return "aborted_drain";
    case OutcomeStatus::kAbortedTransfer:
      return "aborted_transfer";
  }
  return "pending";
}

void DecisionLedger::set_run_info(int batches_per_iteration, int num_workers,
                                  std::string model) {
  batches_ = batches_per_iteration;
  workers_ = num_workers;
  model_ = std::move(model);
}

std::uint64_t DecisionLedger::add(DecisionRecord record) {
  record.id = records_.size();
  records_.push_back(std::move(record));
  return records_.back().id;
}

void DecisionLedger::resolve(std::uint64_t id, DecisionOutcome outcome) {
  if (id < records_.size()) records_[id].outcome = std::move(outcome);
}

void DecisionLedger::finalize(const std::string& reason) {
  for (DecisionRecord& record : records_) {
    if (record.outcome.status == OutcomeStatus::kPending) {
      record.outcome.status = OutcomeStatus::kSuperseded;
      record.outcome.reason = reason;
    }
  }
}

bool DecisionLedger::all_resolved() const {
  for (const DecisionRecord& record : records_) {
    if (record.outcome.status == OutcomeStatus::kPending) return false;
  }
  return true;
}

namespace {

// "-" marks an absent optional value in the text form.
std::string opt_str(const std::string& s) { return s.empty() ? "-" : s; }

std::string opt_speed(double v) { return v < 0 ? "-" : format_double(v); }

std::string q_list(const std::vector<double>& qs) {
  if (qs.empty()) return "-";
  std::string out;
  for (std::size_t i = 0; i < qs.size(); ++i) {
    if (i) out += ',';
    out += format_double(qs[i]);
  }
  return out;
}

}  // namespace

void DecisionLedger::write_text(std::ostream& os) const {
  os << "ledger v1 model=" << opt_str(model_) << " batch=" << batches_
     << " workers=" << workers_ << " decisions=" << records_.size() << "\n";
  for (const DecisionRecord& r : records_) {
    os << "decision id=" << r.id << " t=" << format_double(r.time)
       << " iter=" << r.iteration << " kind=" << opt_str(r.kind)
       << " digest=" << opt_str(r.digest) << " workers=" << r.num_workers
       << " iter_time=" << format_double(r.iteration_time)
       << " current=" << opt_str(r.current)
       << " current_pred=" << format_double(r.current_pred);
    if (r.job > 0) os << " job=" << r.job;
    os << "\n";
    for (std::size_t i = 0; i < r.candidates.size(); ++i) {
      const CandidateScore& c = r.candidates[i];
      os << "cand id=" << r.id << " n=" << i << " part=" << opt_str(c.partition)
         << " pred=" << format_double(c.predicted_speed)
         << " cost_fine=" << format_double(c.cost_fine)
         << " cost_stw=" << format_double(c.cost_stw)
         << " skip=" << (c.skipped ? 1 : 0) << "\n";
    }
    os << "choice id=" << r.id << " action=" << decision_action_name(r.action)
       << " target=" << opt_str(r.target)
       << " pred=" << format_double(r.chosen_pred)
       << " best=" << format_double(r.best_pred)
       << " cost=" << format_double(r.cost_seconds)
       << " arbiter=" << opt_str(r.arbiter)
       << " explore=" << (r.explored ? 1 : 0) << " q=" << q_list(r.q_values)
       << "\n";
    os << "outcome id=" << r.id
       << " status=" << outcome_status_name(r.outcome.status)
       << " realized=" << opt_speed(r.outcome.realized_speed)
       << " window=" << r.outcome.window_iterations
       << " reason=" << opt_str(r.outcome.reason) << "\n";
  }
}

}  // namespace autopipe::trace
