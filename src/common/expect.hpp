// Contract-checking helpers, in the spirit of the C++ Core Guidelines
// Expects()/Ensures() (I.6, I.8): violations are programming errors and
// throw rather than silently corrupting a simulation.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace autopipe {

/// Thrown when a precondition or invariant stated with AUTOPIPE_EXPECT is
/// violated. Catching it is only appropriate in tests.
class contract_error : public std::logic_error {
 public:
  explicit contract_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "contract violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw contract_error(os.str());
}
}  // namespace detail

}  // namespace autopipe

/// Precondition / invariant check. Always on: the simulator is cheap relative
/// to the cost of debugging a silently-wrong experiment.
#define AUTOPIPE_EXPECT(cond)                                               \
  do {                                                                      \
    if (!(cond))                                                            \
      ::autopipe::detail::contract_fail(#cond, __FILE__, __LINE__, "");     \
  } while (false)

/// Same, with a human-readable message built from stream operators.
#define AUTOPIPE_EXPECT_MSG(cond, msg)                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream os_;                                               \
      os_ << msg;                                                           \
      ::autopipe::detail::contract_fail(#cond, __FILE__, __LINE__,          \
                                        os_.str());                         \
    }                                                                       \
  } while (false)
