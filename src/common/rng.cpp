#include "common/rng.hpp"

#include "common/expect.hpp"

namespace autopipe {

double Rng::uniform(double lo, double hi) {
  AUTOPIPE_EXPECT(lo <= hi);
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  AUTOPIPE_EXPECT(lo <= hi);
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  AUTOPIPE_EXPECT(stddev >= 0.0);
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

bool Rng::chance(double p) {
  AUTOPIPE_EXPECT(p >= 0.0 && p <= 1.0);
  std::bernoulli_distribution d(p);
  return d(engine_);
}

double Rng::exponential(double mean) {
  AUTOPIPE_EXPECT(mean > 0.0);
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  AUTOPIPE_EXPECT(!weights.empty());
  std::discrete_distribution<std::size_t> d(weights.begin(), weights.end());
  return d(engine_);
}

Rng Rng::fork() {
  // Draw a fresh seed from the parent stream; the child is then independent.
  return Rng(engine_());
}

}  // namespace autopipe
