// Plain-text table printer used by the figure benchmarks so each bench binary
// prints the same rows/series the paper's figure reports, aligned and
// greppable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace autopipe {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// fixed precision so benchmark output diffs cleanly across runs.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Format a double with the given number of decimals.
  static std::string num(double v, int decimals = 2);

  /// Render with aligned columns, header underline and a title line.
  std::string render(const std::string& title = "") const;

  void print(std::ostream& os, const std::string& title = "") const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace autopipe
