// A flat FIFO over a power-of-two vector: push_back / pop_front with no
// per-node allocation and contiguous storage. Replaces std::deque in
// event-rate queues (GPU task queues), where deque's chunked map costs an
// allocation every few dozen pushes and an extra indirection per access.
//
// T must be default-constructible and movable; popped slots are reset to a
// default-constructed T so move-only closures release their captures
// immediately rather than at the next overwrite.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace autopipe::common {

template <typename T>
class RingQueue {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  T& front() { return slots_[head_]; }
  const T& front() const { return slots_[head_]; }

  void push_back(T value) {
    if (count_ == slots_.size()) grow();
    slots_[(head_ + count_) & mask_] = std::move(value);
    ++count_;
  }

  /// Remove and return the oldest element; requires !empty().
  T pop_front() {
    T value = std::move(slots_[head_]);
    slots_[head_] = T{};
    head_ = (head_ + 1) & mask_;
    --count_;
    return value;
  }

  void clear() {
    while (count_ > 0) {
      slots_[head_] = T{};
      head_ = (head_ + 1) & mask_;
      --count_;
    }
    head_ = 0;
  }

 private:
  void grow() {
    const std::size_t capacity = slots_.empty() ? 8 : slots_.size() * 2;
    std::vector<T> next(capacity);
    for (std::size_t i = 0; i < count_; ++i)
      next[i] = std::move(slots_[(head_ + i) & mask_]);
    slots_ = std::move(next);
    head_ = 0;
    mask_ = capacity - 1;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace autopipe::common
