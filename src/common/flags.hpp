// Minimal command-line flag parsing for the CLI tools: --key=value and
// --key value forms, typed getters with defaults, and unknown-flag
// diagnostics. Deliberately tiny — the tools have a dozen flags, not a
// configuration language.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace autopipe {

class Flags {
 public:
  /// Parse argv. Throws contract_error on malformed input (missing value,
  /// non-flag positional argument).
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name,
                  const std::string& fallback) const;
  double get_double(const std::string& name, double fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Flags that were provided but never queried — typo detection for tools
  /// that call it after reading everything they understand.
  std::vector<std::string> unused() const;

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace autopipe
