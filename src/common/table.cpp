#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/expect.hpp"

namespace autopipe {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  AUTOPIPE_EXPECT(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  AUTOPIPE_EXPECT_MSG(cells.size() == header_.size(),
                      "row width " << cells.size() << " != header width "
                                   << header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string TextTable::render(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  if (!title.empty()) os << "== " << title << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TextTable::print(std::ostream& os, const std::string& title) const {
  os << render(title);
}

}  // namespace autopipe
