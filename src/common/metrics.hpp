// Named counters and gauges accumulated during a run — bubble time, bytes
// moved during migrations, stalled batches, arbiter accept/reject counts —
// the scalar companions of the event trace. Unlike the TraceRecorder, the
// registry is always on: it is only touched on slow paths (iteration
// boundaries, switches, decisions), and benchmarks print it alongside their
// tables, tracing or not.
//
// Naming convention: "<subsystem>.<metric>", e.g. "switch.migration_bytes".
// Counters accumulate with add(); gauges overwrite with set() (the last run
// wins). Keys are kept sorted so any printed form is deterministic.
#pragma once

#include <map>
#include <string>

namespace autopipe::trace {

class MetricsRegistry {
 public:
  /// Accumulate a counter (creates it at 0 first).
  void add(const std::string& name, double delta = 1.0);

  /// Overwrite a gauge.
  void set(const std::string& name, double value);

  /// Current value; 0 for a metric never touched.
  double value(const std::string& name) const;

  bool has(const std::string& name) const;

  /// All metrics, sorted by name.
  const std::map<std::string, double>& all() const { return values_; }

  bool empty() const { return values_.empty(); }
  void clear() { values_.clear(); }

 private:
  std::map<std::string, double> values_;
};

}  // namespace autopipe::trace
