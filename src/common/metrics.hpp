// Named counters and gauges accumulated during a run — bubble time, bytes
// moved during migrations, stalled batches, arbiter accept/reject counts —
// the scalar companions of the event trace. Unlike the TraceRecorder, the
// registry is always on: it is only touched on slow paths (iteration
// boundaries, switches, decisions), and benchmarks print it alongside their
// tables, tracing or not.
//
// Naming convention: "<subsystem>.<metric>", e.g. "switch.migration_bytes".
// Counters accumulate with add(); gauges overwrite with set() (the last run
// wins). Keys are kept sorted so any printed form is deterministic.
//
// Rolling series: observe() feeds a named stream of samples through two
// aggregators at once — an exponential moving average and a fixed-length
// window whose arithmetic mean is computed on demand (never incrementally,
// so the value is bit-identical regardless of how many samples were evicted).
// The calibration tracker uses these for "recent" predictor error without
// retaining the whole history.
//
// Non-finite samples (NaN, ±inf): add()/set()/observe() *skip* them — a
// single bad division must not poison a counter or an EMA forever — and
// count each skip in the "metrics.dropped_samples" counter, so silent data
// loss still shows up in the registry, the flattened export and the
// time-series. The named metric itself is left untouched.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <string>

namespace autopipe::trace {

/// Tuning for rolling series; applies to streams created after the change.
struct RollingConfig {
  double ema_alpha = 0.2;     ///< weight of the newest sample in the EMA
  std::size_t window = 32;    ///< samples retained for window_mean()
};

class MetricsRegistry {
 public:
  /// Counter incremented once per non-finite sample rejected by
  /// add()/set()/observe().
  static constexpr const char* kDroppedSamplesKey = "metrics.dropped_samples";

  /// Accumulate a counter (creates it at 0 first). Non-finite deltas are
  /// dropped and counted under kDroppedSamplesKey.
  void add(const std::string& name, double delta = 1.0);

  /// Overwrite a gauge. Non-finite values are dropped and counted under
  /// kDroppedSamplesKey (the gauge keeps its previous value).
  void set(const std::string& name, double value);

  /// Current value; 0 for a metric never touched.
  double value(const std::string& name) const;

  bool has(const std::string& name) const;

  /// All metrics, sorted by name.
  const std::map<std::string, double>& all() const { return values_; }

  bool empty() const { return values_.empty() && series_.empty(); }
  void clear();

  // --- rolling series ------------------------------------------------------

  /// Feed one sample into the named rolling series. Non-finite samples are
  /// dropped and counted under kDroppedSamplesKey (the series' EMA, window
  /// and count are untouched).
  void observe(const std::string& name, double sample);

  /// Exponential moving average of the series; 0 before any sample.
  double ema(const std::string& name) const;

  /// Arithmetic mean over the last `window` samples; 0 before any sample.
  double window_mean(const std::string& name) const;

  /// Total samples ever observed (including evicted ones).
  std::size_t observations(const std::string& name) const;

  void set_rolling_config(const RollingConfig& config) { rolling_ = config; }
  const RollingConfig& rolling_config() const { return rolling_; }

  /// Scalars plus rolling series expanded to "<name>.ema", "<name>.mean"
  /// and "<name>.count" keys — the form the JSON exporters write.
  std::map<std::string, double> flattened() const;

 private:
  /// Returns true (and bumps kDroppedSamplesKey) when `value` is NaN/±inf.
  bool drop_if_nonfinite(double value);

  struct Series {
    double ema = 0.0;
    double alpha = 0.2;
    std::size_t limit = 32;
    std::size_t count = 0;          ///< lifetime sample count
    std::deque<double> window;
  };

  std::map<std::string, double> values_;
  std::map<std::string, Series> series_;
  RollingConfig rolling_;
};

}  // namespace autopipe::trace
