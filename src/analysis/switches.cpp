#include "analysis/switches.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/expect.hpp"

namespace autopipe::analysis {

namespace {

/// Mean of up to `window` gaps between consecutive marks, taking the gaps
/// that end at or before `t` (before=true) or start at or after `t`
/// (before=false). 0 when fewer than one full gap is available.
double mean_period(const std::vector<double>& marks, double t, bool before,
                   std::size_t window) {
  if (marks.size() < 2 || window == 0) return 0.0;
  double sum = 0.0;
  std::size_t n = 0;
  if (before) {
    // Last index with marks[i] <= t.
    auto it = std::upper_bound(marks.begin(), marks.end(), t);
    for (; it - marks.begin() >= 2 && n < window; --it) {
      sum += *(it - 1) - *(it - 2);
      ++n;
    }
  } else {
    auto it = std::lower_bound(marks.begin(), marks.end(), t);
    for (; it + 1 < marks.end() && n < window; ++it) {
      sum += *(it + 1) - *it;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace

std::vector<SwitchPostMortem> switch_post_mortems(const TraceView& view,
                                                  std::size_t window) {
  std::vector<SwitchPostMortem> out;
  const std::vector<double>& marks = view.iteration_marks();

  // migration_begin instants (control row) carry bytes/pairs; match each to
  // the switch span containing it.
  struct Migration {
    double ts;
    double bytes;
    std::size_t pairs;
  };
  std::vector<Migration> migrations;
  for (const trace::Event& ev : view.events()) {
    // switch_prepare carries the staged protocol's migration plan;
    // migration_begin is the pre-protocol name, kept for old traces.
    if (ev.phase == 'i' &&
        (ev.name == "switch_prepare" || ev.name == "migration_begin")) {
      Migration m{ev.ts, 0.0, 0};
      if (const std::string* b = ev.find_arg("bytes"))
        m.bytes = std::strtod(b->c_str(), nullptr);
      if (const std::string* p = ev.find_arg("pairs"))
        m.pairs = static_cast<std::size_t>(std::strtoull(p->c_str(),
                                                         nullptr, 10));
      migrations.push_back(m);
    }
  }

  const auto analyze_span = [&](const trace::Event* span) {
    SwitchPostMortem pm;
    pm.request_ts = span->ts;
    pm.finish_ts = span->ts + span->dur;
    pm.duration = span->dur;
    if (const std::string* m = span->find_arg("mode")) pm.mode = *m;

    for (const Migration& m : migrations) {
      if (m.ts >= pm.request_ts - 1e-9 && m.ts <= pm.finish_ts + 1e-9) {
        pm.migration_bytes += m.bytes;
        pm.migration_pairs += m.pairs;
      }
    }

    pm.iterations_during = static_cast<std::size_t>(
        std::upper_bound(marks.begin(), marks.end(), pm.finish_ts) -
        std::upper_bound(marks.begin(), marks.end(), pm.request_ts));

    pm.period_before = mean_period(marks, pm.request_ts, true, window);
    pm.period_after = mean_period(marks, pm.finish_ts, false, window);
    if (pm.period_before > 0.0) {
      pm.stall_seconds =
          std::max(0.0, pm.duration - static_cast<double>(
                                          pm.iterations_during) *
                                          pm.period_before);
    }
    return pm;
  };

  for (const trace::Event* span : view.switch_spans()) {
    SwitchPostMortem pm = analyze_span(span);
    if (pm.period_before > 0.0 && pm.period_after > 0.0) {
      pm.speedup_pct = (pm.period_before / pm.period_after - 1.0) * 100.0;
    }
    if (pm.period_before > 0.0) {
      const double gain = pm.period_before - pm.period_after;
      if (pm.period_after > 0.0 && gain > 0.0) {
        pm.payback_iterations = pm.stall_seconds / gain;
      }
    }
    out.push_back(std::move(pm));
  }

  for (const trace::Event* span : view.aborted_switch_spans()) {
    SwitchPostMortem pm = analyze_span(span);
    pm.aborted = true;
    if (const std::string* p = span->find_arg("phase")) pm.abort_phase = *p;
    if (const std::string* r = span->find_arg("reason"))
      pm.abort_reason = *r;
    out.push_back(std::move(pm));
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const SwitchPostMortem& a, const SwitchPostMortem& b) {
                     return a.request_ts < b.request_ts;
                   });
  for (std::size_t i = 0; i < out.size(); ++i) out[i].index = i;
  return out;
}

}  // namespace autopipe::analysis
