#include "analysis/ledger_reader.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace autopipe::analysis {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("ledger parse error at line " +
                           std::to_string(line_no) + ": " + what);
}

/// key=value tokens after the leading line kind.
std::map<std::string, std::string> parse_fields(std::istringstream& tokens,
                                                std::size_t line_no) {
  std::map<std::string, std::string> fields;
  std::string token;
  while (tokens >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
      fail(line_no, "malformed token '" + token + "'");
    fields[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return fields;
}

const std::string& require(const std::map<std::string, std::string>& fields,
                           const std::string& key, std::size_t line_no) {
  auto it = fields.find(key);
  if (it == fields.end()) fail(line_no, "missing field '" + key + "'");
  return it->second;
}

std::string opt(const std::string& raw) { return raw == "-" ? "" : raw; }

double to_double(const std::string& raw, std::size_t line_no) {
  try {
    std::size_t used = 0;
    const double v = std::stod(raw, &used);
    if (used != raw.size()) fail(line_no, "trailing junk in '" + raw + "'");
    return v;
  } catch (const std::logic_error&) {
    fail(line_no, "bad number '" + raw + "'");
  }
}

std::uint64_t to_u64(const std::string& raw, std::size_t line_no) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(raw, &used);
    if (used != raw.size()) fail(line_no, "trailing junk in '" + raw + "'");
    return v;
  } catch (const std::logic_error&) {
    fail(line_no, "bad integer '" + raw + "'");
  }
}

trace::DecisionAction parse_action(const std::string& raw,
                                   std::size_t line_no) {
  if (raw == "switch") return trace::DecisionAction::kSwitch;
  if (raw == "hold") return trace::DecisionAction::kHold;
  fail(line_no, "unknown action '" + raw + "'");
}

trace::OutcomeStatus parse_status(const std::string& raw,
                                  std::size_t line_no) {
  for (trace::OutcomeStatus s :
       {trace::OutcomeStatus::kPending, trace::OutcomeStatus::kExecuted,
        trace::OutcomeStatus::kReverted, trace::OutcomeStatus::kRejected,
        trace::OutcomeStatus::kSuperseded,
        trace::OutcomeStatus::kAbortedPrepare,
        trace::OutcomeStatus::kAbortedDrain,
        trace::OutcomeStatus::kAbortedTransfer}) {
    if (raw == trace::outcome_status_name(s)) return s;
  }
  fail(line_no, "unknown outcome status '" + raw + "'");
}

std::vector<double> parse_q(const std::string& raw, std::size_t line_no) {
  std::vector<double> q;
  if (raw == "-") return q;
  std::istringstream parts(raw);
  std::string part;
  while (std::getline(parts, part, ',')) q.push_back(to_double(part, line_no));
  return q;
}

}  // namespace

trace::DecisionLedger read_ledger(std::istream& is) {
  trace::DecisionLedger ledger;
  std::string line;
  std::size_t line_no = 0;

  if (!std::getline(is, line)) fail(1, "empty ledger");
  ++line_no;
  std::istringstream header(line);
  std::string kind, version;
  header >> kind >> version;
  if (kind != "ledger") fail(line_no, "not a ledger file");
  if (version != "v1") fail(line_no, "unsupported version '" + version + "'");
  const auto meta = parse_fields(header, line_no);
  ledger.set_run_info(
      static_cast<int>(to_u64(require(meta, "batch", line_no), line_no)),
      static_cast<int>(to_u64(require(meta, "workers", line_no), line_no)),
      opt(require(meta, "model", line_no)));
  const std::uint64_t expected =
      to_u64(require(meta, "decisions", line_no), line_no);

  // The open record accumulates cand/choice/outcome lines until the next
  // `decision` line (or EOF) seals it.
  bool open = false;
  bool have_choice = false, have_outcome = false;
  trace::DecisionRecord rec;
  const auto seal = [&] {
    if (!open) return;
    if (!have_choice) fail(line_no, "record missing choice line");
    if (!have_outcome) fail(line_no, "record missing outcome line");
    const std::uint64_t id = rec.id;
    if (ledger.add(std::move(rec)) != id)
      fail(line_no, "non-sequential record id");
    open = false;
  };

  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream tokens(line);
    std::string what;
    tokens >> what;
    const auto fields = parse_fields(tokens, line_no);
    const std::uint64_t id = to_u64(require(fields, "id", line_no), line_no);

    if (what == "decision") {
      seal();
      open = true;
      have_choice = have_outcome = false;
      rec = trace::DecisionRecord{};
      rec.id = id;
      rec.time = to_double(require(fields, "t", line_no), line_no);
      rec.iteration = to_u64(require(fields, "iter", line_no), line_no);
      rec.kind = opt(require(fields, "kind", line_no));
      rec.digest = opt(require(fields, "digest", line_no));
      rec.num_workers = static_cast<int>(
          to_u64(require(fields, "workers", line_no), line_no));
      rec.iteration_time =
          to_double(require(fields, "iter_time", line_no), line_no);
      rec.current = opt(require(fields, "current", line_no));
      rec.current_pred =
          to_double(require(fields, "current_pred", line_no), line_no);
      // Optional co-tenancy tag; absent in single-tenant ledgers.
      if (const auto it = fields.find("job"); it != fields.end())
        rec.job = to_u64(it->second, line_no);
      continue;
    }
    if (!open || id != rec.id)
      fail(line_no, "'" + what + "' line outside its decision");
    if (what == "cand") {
      if (to_u64(require(fields, "n", line_no), line_no) !=
          rec.candidates.size())
        fail(line_no, "candidate index out of order");
      trace::CandidateScore cs;
      cs.partition = opt(require(fields, "part", line_no));
      cs.predicted_speed = to_double(require(fields, "pred", line_no), line_no);
      cs.cost_fine = to_double(require(fields, "cost_fine", line_no), line_no);
      cs.cost_stw = to_double(require(fields, "cost_stw", line_no), line_no);
      cs.skipped = require(fields, "skip", line_no) == "1";
      rec.candidates.push_back(std::move(cs));
    } else if (what == "choice") {
      have_choice = true;
      rec.action = parse_action(require(fields, "action", line_no), line_no);
      rec.target = opt(require(fields, "target", line_no));
      rec.chosen_pred = to_double(require(fields, "pred", line_no), line_no);
      rec.best_pred = to_double(require(fields, "best", line_no), line_no);
      rec.cost_seconds = to_double(require(fields, "cost", line_no), line_no);
      rec.arbiter = opt(require(fields, "arbiter", line_no));
      rec.explored = require(fields, "explore", line_no) == "1";
      rec.q_values = parse_q(require(fields, "q", line_no), line_no);
    } else if (what == "outcome") {
      have_outcome = true;
      rec.outcome.status =
          parse_status(require(fields, "status", line_no), line_no);
      const std::string& realized = require(fields, "realized", line_no);
      rec.outcome.realized_speed =
          realized == "-" ? -1.0 : to_double(realized, line_no);
      rec.outcome.window_iterations = static_cast<int>(
          to_u64(require(fields, "window", line_no), line_no));
      rec.outcome.reason = opt(require(fields, "reason", line_no));
    } else {
      fail(line_no, "unknown line kind '" + what + "'");
    }
  }
  seal();
  if (ledger.size() != expected)
    fail(line_no, "header promised " + std::to_string(expected) +
                      " decisions, file has " + std::to_string(ledger.size()));
  return ledger;
}

trace::DecisionLedger read_ledger_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open ledger file: " + path);
  return read_ledger(is);
}

}  // namespace autopipe::analysis
