// Minimal streaming JSON writer for the analyzer's --json outputs and the
// --metrics export. Scope-stack based (begin_object/begin_array + end),
// comma placement handled internally, two-space pretty printing, and every
// double formatted with trace::format_double — so identical analyses
// serialize byte-identically and golden files diff cleanly.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace autopipe::analysis {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void begin_array();
  /// Close the innermost object/array. The destructor closes anything
  /// left open, so early returns still produce valid JSON.
  void end();

  /// Name the next value; must be directly inside an object.
  void key(const std::string& name);

  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);  ///< also catches std::size_t
  void value(int v);
  void value(bool v);
  void value(const std::string& v);
  void value(const char* v);

  /// key() + value() in one call.
  template <typename T>
  void kv(const std::string& name, T v) {
    key(name);
    value(v);
  }

 private:
  enum class Scope { kObject, kArray };
  void before_value();
  void newline_indent();

  std::ostream& os_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool key_pending_ = false;
};

/// JSON string escaping (quotes not included).
std::string json_escape(const std::string& s);

/// One flat JSON object from a sorted name→value map — the shape the
/// --metrics=PATH exports use. Key order follows the map (deterministic).
void write_scalar_map_json(const std::map<std::string, double>& values,
                           std::ostream& os);

}  // namespace autopipe::analysis
