// Reporting over host self-profiler captures (src/common/profile): the
// per-category and per-span inclusive/exclusive breakdown behind
// `autopipe_trace profile`, collapsed-stack flamegraph output, and the
// ns-per-call numbers the CI planner-time gate compares against a
// committed baseline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/profile.hpp"

namespace autopipe::analysis {

/// Aggregated timing for one span name (or one category — the name prefix
/// before '/'). Inclusive counts time inside the span; exclusive subtracts
/// time attributed to nested recorded spans.
struct ProfileEntry {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t inclusive_ns = 0;
  std::uint64_t exclusive_ns = 0;
  bool aggregate_only = false;  ///< PROF_SPAN_AGG site (no nesting info)
};

struct ProfileReport {
  std::vector<ProfileEntry> spans;       ///< per name, inclusive desc
  std::vector<ProfileEntry> categories;  ///< per category, exclusive desc
  std::uint64_t total_ns = 0;  ///< top-level inclusive + aggregate totals
  std::size_t threads = 0;
};

/// Aggregate a capture into per-name and per-category entries. Exclusive
/// time is reconstructed from span nesting (sorted by start, a stack of
/// open spans); category inclusive time counts only spans whose parent
/// chain holds no span of the same category, so it never double-counts.
ProfileReport build_profile_report(
    const std::vector<prof::ThreadProfile>& profiles);

/// Load an autopipe-prof-v1 file (throws std::runtime_error — missing
/// file, bad header).
std::vector<prof::ThreadProfile> read_profile_file(const std::string& path);

/// The N individually longest spans across all threads, duration desc.
std::vector<prof::Span> top_spans(
    const std::vector<prof::ThreadProfile>& profiles, std::size_t n);

/// Category table, span table, top-N list.
void render_profile(const ProfileReport& report,
                    const std::vector<prof::ThreadProfile>& profiles,
                    std::size_t top_n, std::ostream& os);

/// Machine-readable report (schema autopipe-profile-report-v1).
void write_profile_json(const ProfileReport& report, std::ostream& os);

/// Collapsed-stack lines ("a;b;c <exclusive_ns>") for flamegraph.pl /
/// speedscope. Aggregate-only sites emit single-frame lines.
void write_collapsed_stacks(const std::vector<prof::ThreadProfile>& profiles,
                            std::ostream& os);

/// Mean inclusive ns per call of the named span; 0 when absent. The CI
/// gate compares span_ns_per_call(report, "planner/decide_round") against
/// the committed baseline.
double span_ns_per_call(const ProfileReport& report, const std::string& name);

}  // namespace autopipe::analysis
