// Reads a recorded trace back into trace::Event records. The deterministic
// text sink (TraceRecorder::write_text) is the on-disk interchange format —
// one event per line — and parses losslessly; the in-memory recorder is
// consumed directly, so analyses run identically on a live run and on a
// file written weeks ago.
//
// Forward compatibility: everything after the name token is parsed by key,
// not by position. Keys the reader knows (pid/tid plus the per-phase
// dur/id/value and the causal eid/cause) land in their Event fields; any
// other `key=value` is preserved as an event arg, so a trace written by a
// newer build still loads — new fields ride along instead of failing the
// parse. Lines with an unknown category or phase are skipped and counted,
// and a bare token that continues nothing is dropped and counted; ReadStats
// surfaces both so tools can warn (the same skip-and-count contract as
// metrics.dropped_samples). Structurally required fields — the timestamp
// header, pid/tid, and the per-phase field — still throw when missing or
// malformed: a trace that lies about what it contains is corrupt, not new.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/trace.hpp"

namespace autopipe::analysis {

/// Leniency counters from one parse. Zero everywhere on a same-version
/// round-trip; non-zero values mean the trace came from a different writer
/// version (or was damaged) and the reader healed around it.
struct ReadStats {
  std::size_t events = 0;          ///< events successfully parsed
  std::size_t skipped_lines = 0;   ///< unknown category/phase: whole line
  std::size_t dropped_tokens = 0;  ///< bare tokens continuing no arg
  bool clean() const { return skipped_lines == 0 && dropped_tokens == 0; }
};

/// Parse the deterministic text format. Throws contract_error on a
/// malformed line (truncated header, bad numbers, missing required
/// fields); skip-and-count leniency is reported through `stats` when
/// provided.
std::vector<trace::Event> parse_text(std::istream& is,
                                     ReadStats* stats = nullptr);

/// Convenience: open and parse a file. Throws contract_error when the file
/// cannot be read.
std::vector<trace::Event> parse_text_file(const std::string& path,
                                          ReadStats* stats = nullptr);

}  // namespace autopipe::analysis
