// Reads a recorded trace back into trace::Event records. The deterministic
// text sink (TraceRecorder::write_text) is the on-disk interchange format —
// one event per line, fixed field order — and parses losslessly; the
// in-memory recorder is consumed directly, so analyses run identically on a
// live run and on a file written weeks ago.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/trace.hpp"

namespace autopipe::analysis {

/// Parse the deterministic text format. Throws contract_error on a
/// malformed line (truncated fields, unknown category/phase).
std::vector<trace::Event> parse_text(std::istream& is);

/// Convenience: open and parse a file. Throws contract_error when the file
/// cannot be read.
std::vector<trace::Event> parse_text_file(const std::string& path);

}  // namespace autopipe::analysis
