#include "analysis/json.hpp"

#include <cstdio>

#include "common/expect.hpp"
#include "common/trace.hpp"

namespace autopipe::analysis {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter::~JsonWriter() {
  while (!stack_.empty()) end();
  os_ << '\n';
}

void JsonWriter::newline_indent() {
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::before_value() {
  if (stack_.empty()) return;
  if (stack_.back() == Scope::kObject) {
    AUTOPIPE_EXPECT_MSG(key_pending_, "JSON object value without a key");
    key_pending_ = false;
    return;
  }
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline_indent();
}

void JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
}

void JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
}

void JsonWriter::end() {
  AUTOPIPE_EXPECT_MSG(!stack_.empty(), "JSON end() with nothing open");
  AUTOPIPE_EXPECT_MSG(!key_pending_, "JSON scope closed with a dangling key");
  const Scope scope = stack_.back();
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  os_ << (scope == Scope::kObject ? '}' : ']');
}

void JsonWriter::key(const std::string& name) {
  AUTOPIPE_EXPECT_MSG(!stack_.empty() && stack_.back() == Scope::kObject,
                      "JSON key() outside an object");
  AUTOPIPE_EXPECT_MSG(!key_pending_, "JSON key() twice without a value");
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline_indent();
  os_ << '"' << json_escape(name) << "\": ";
  key_pending_ = true;
}

void JsonWriter::value(double v) {
  before_value();
  os_ << trace::format_double(v);
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
}

void JsonWriter::value(int v) { value(static_cast<std::int64_t>(v)); }

void JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
}

void JsonWriter::value(const std::string& v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
}

void JsonWriter::value(const char* v) { value(std::string(v)); }

void write_scalar_map_json(const std::map<std::string, double>& values,
                           std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  for (const auto& [name, value] : values) w.kv(name, value);
  w.end();
}

}  // namespace autopipe::analysis
