#include "analysis/interval.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace autopipe::analysis {

IntervalSet::IntervalSet(double begin, double end) { add(begin, end); }

void IntervalSet::add(double begin, double end) {
  if (end <= begin) return;
  intervals_.push_back(Interval{begin, end});
  normalized_ = intervals_.size() == 1;
}

void IntervalSet::normalize() const {
  if (normalized_) return;
  std::sort(intervals_.begin(), intervals_.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  std::vector<Interval> merged;
  merged.reserve(intervals_.size());
  for (const Interval& iv : intervals_) {
    if (!merged.empty() && iv.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, iv.end);
    } else {
      merged.push_back(iv);
    }
  }
  intervals_ = std::move(merged);
  normalized_ = true;
}

bool IntervalSet::empty() const {
  normalize();
  return intervals_.empty();
}

double IntervalSet::total() const {
  normalize();
  double sum = 0.0;
  for (const Interval& iv : intervals_) sum += iv.length();
  return sum;
}

const std::vector<Interval>& IntervalSet::intervals() const {
  normalize();
  return intervals_;
}

double IntervalSet::front_begin() const {
  normalize();
  AUTOPIPE_EXPECT(!intervals_.empty());
  return intervals_.front().begin;
}

double IntervalSet::back_end() const {
  normalize();
  AUTOPIPE_EXPECT(!intervals_.empty());
  return intervals_.back().end;
}

IntervalSet IntervalSet::unite(const IntervalSet& other) const {
  IntervalSet out;
  for (const Interval& iv : intervals()) out.add(iv.begin, iv.end);
  for (const Interval& iv : other.intervals()) out.add(iv.begin, iv.end);
  return out;
}

IntervalSet IntervalSet::intersect(const IntervalSet& other) const {
  const auto& a = intervals();
  const auto& b = other.intervals();
  IntervalSet out;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].begin, b[j].begin);
    const double hi = std::min(a[i].end, b[j].end);
    if (lo < hi) out.add(lo, hi);
    if (a[i].end < b[j].end) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

IntervalSet IntervalSet::subtract(const IntervalSet& other) const {
  const auto& a = intervals();
  const auto& b = other.intervals();
  IntervalSet out;
  std::size_t j = 0;
  for (const Interval& iv : a) {
    double cursor = iv.begin;
    while (j < b.size() && b[j].end <= cursor) ++j;
    std::size_t k = j;
    while (k < b.size() && b[k].begin < iv.end) {
      if (b[k].begin > cursor) out.add(cursor, b[k].begin);
      cursor = std::max(cursor, b[k].end);
      ++k;
    }
    if (cursor < iv.end) out.add(cursor, iv.end);
  }
  return out;
}

IntervalSet IntervalSet::clamp(double lo, double hi) const {
  return intersect(IntervalSet(lo, hi));
}

IntervalSet IntervalSet::complement(double lo, double hi) const {
  IntervalSet window(lo, hi);
  return window.subtract(*this);
}

double IntervalSet::overlap(double lo, double hi) const {
  normalize();
  double sum = 0.0;
  for (const Interval& iv : intervals_) {
    if (iv.end <= lo) continue;
    if (iv.begin >= hi) break;
    sum += std::min(iv.end, hi) - std::max(iv.begin, lo);
  }
  return sum;
}

}  // namespace autopipe::analysis
