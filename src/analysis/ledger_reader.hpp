// Parser for the decision-ledger text format (common/ledger.hpp). The
// format is line-based key=value groups — a `decision` line opens a record,
// `cand` lines add its candidates, `choice` carries the arbiter verdict and
// `outcome` the terminal state — and every double was written with
// trace::format_double, so parse → reserialize is byte-identical. That
// round-trip is the integrity check `autopipe_trace decisions --check` and
// tools/check.sh --ledger-smoke run.
#pragma once

#include <iosfwd>
#include <string>

#include "common/ledger.hpp"

namespace autopipe::analysis {

/// Parse a serialized ledger. Throws std::runtime_error naming the line on
/// malformed input (unknown line kind, missing field, id mismatch, record
/// count disagreeing with the header).
trace::DecisionLedger read_ledger(std::istream& is);

/// read_ledger() on a file; throws std::runtime_error when unreadable.
trace::DecisionLedger read_ledger_file(const std::string& path);

}  // namespace autopipe::analysis
