#include "analysis/timeseries_reader.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "analysis/json.hpp"
#include "common/table.hpp"
#include "common/trace.hpp"

namespace autopipe::analysis {

std::size_t TimeSeries::column_index(const std::string& name) const {
  const auto it = std::find(columns.begin(), columns.end(), name);
  return static_cast<std::size_t>(it - columns.begin());
}

std::vector<double> TimeSeries::column(std::size_t index) const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(row[index]);
  return out;
}

TimeSeries read_timeseries(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line.rfind("autopipe-ts-v1 ", 0) != 0)
    throw std::runtime_error(
        "not an autopipe-ts-v1 time-series (bad or missing header)");

  TimeSeries ts;
  std::size_t expect_rows = 0;
  std::size_t expect_columns = 0;
  {
    std::istringstream hs(line.substr(sizeof("autopipe-ts-v1 ") - 1));
    std::string field;
    while (hs >> field) {
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos)
        throw std::runtime_error("malformed time-series header field '" +
                                 field + "'");
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      try {
        if (key == "interval") ts.interval = std::stod(value);
        else if (key == "rows") expect_rows = std::stoul(value);
        else if (key == "columns") expect_columns = std::stoul(value);
      } catch (const std::exception&) {
        throw std::runtime_error("malformed time-series header value '" +
                                 field + "'");
      }
    }
  }

  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line.rfind("col ", 0) == 0) {
      if (!ts.rows.empty())
        throw std::runtime_error("time-series line " +
                                 std::to_string(lineno) +
                                 ": column declared after data rows");
      ts.columns.push_back(line.substr(4));
      continue;
    }
    std::istringstream rs(line);
    std::vector<double> row;
    row.reserve(ts.columns.size());
    double v = 0.0;
    while (rs >> v) row.push_back(v);
    if (row.size() != ts.columns.size())
      throw std::runtime_error(
          "time-series line " + std::to_string(lineno) + ": expected " +
          std::to_string(ts.columns.size()) + " values, got " +
          std::to_string(row.size()));
    ts.rows.push_back(std::move(row));
  }

  if (ts.columns.empty() || ts.columns[0] != "time")
    throw std::runtime_error(
        "time-series is missing the leading 'time' column");
  if (expect_columns != 0 && ts.columns.size() != expect_columns)
    throw std::runtime_error(
        "time-series header declares " + std::to_string(expect_columns) +
        " columns but " + std::to_string(ts.columns.size()) + " were found");
  if (expect_rows != ts.rows.size())
    throw std::runtime_error(
        "time-series header declares " + std::to_string(expect_rows) +
        " rows but " + std::to_string(ts.rows.size()) +
        " were found (truncated file?)");
  return ts;
}

TimeSeries read_timeseries_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good())
    throw std::runtime_error("cannot open time-series file '" + path + "'");
  return read_timeseries(in);
}

namespace {

bool is_decision_activity(const std::string& column) {
  return column.rfind("arbiter.", 0) == 0 ||
         column.rfind("controller.", 0) == 0 ||
         column.rfind("ledger.", 0) == 0 || column.rfind("switch.", 0) == 0;
}

}  // namespace

TimeSeriesReport analyze_timeseries(const TimeSeries& ts,
                                    double drop_threshold) {
  TimeSeriesReport report;
  report.rows = ts.rows.size();
  report.interval = ts.interval;
  if (!ts.rows.empty()) report.duration = ts.rows.back()[0];

  for (std::size_t c = 1; c < ts.columns.size(); ++c) {
    TimeSeriesReport::ColumnStats stats;
    stats.name = ts.columns[c];
    if (!ts.rows.empty()) {
      double sum = 0.0;
      stats.min = stats.max = ts.rows[0][c];
      for (const auto& row : ts.rows) {
        stats.min = std::min(stats.min, row[c]);
        stats.max = std::max(stats.max, row[c]);
        sum += row[c];
      }
      stats.mean = sum / static_cast<double>(ts.rows.size());
      stats.last = ts.rows.back()[c];
      if (stats.name == "metrics.dropped_samples")
        report.dropped_samples = stats.last;
    }
    report.columns.push_back(std::move(stats));
  }

  // Anomaly scan: a steep drop in instantaneous speed between consecutive
  // samples, cross-checked against decision activity over the same window.
  std::size_t speed = ts.column_index("executor.throughput.mean");
  if (speed == ts.columns.size())
    speed = ts.column_index("executor.throughput.ema");
  if (speed != ts.columns.size()) {
    std::vector<std::size_t> activity;
    for (std::size_t c = 1; c < ts.columns.size(); ++c)
      if (is_decision_activity(ts.columns[c])) activity.push_back(c);
    for (std::size_t i = 1; i < ts.rows.size(); ++i) {
      const double before = ts.rows[i - 1][speed];
      const double after = ts.rows[i][speed];
      if (before <= 0.0) continue;
      const double drop = 1.0 - after / before;
      if (drop <= drop_threshold) continue;
      SeriesAnomaly a;
      a.time = ts.rows[i][0];
      a.column = ts.columns[speed];
      a.before = before;
      a.after = after;
      a.drop_frac = drop;
      a.no_decision = true;
      for (const std::size_t c : activity) {
        if (ts.rows[i][c] != ts.rows[i - 1][c]) {
          a.no_decision = false;
          break;
        }
      }
      report.anomalies.push_back(std::move(a));
    }
  }

  // Abort-storm scan: three or more switch aborts accumulating without a
  // single commit in between. The counters are cumulative, so we measure
  // aborts since the last row where switch.committed increased.
  std::vector<std::size_t> abort_cols;
  for (std::size_t c = 1; c < ts.columns.size(); ++c)
    if (ts.columns[c].rfind("switch.aborted.", 0) == 0)
      abort_cols.push_back(c);
  const std::size_t committed = ts.column_index("switch.committed");
  if (!abort_cols.empty() && !ts.rows.empty()) {
    const auto aborts_at = [&](std::size_t i) {
      double sum = 0.0;
      for (const std::size_t c : abort_cols) sum += ts.rows[i][c];
      return sum;
    };
    const auto commits_at = [&](std::size_t i) {
      return committed != ts.columns.size() ? ts.rows[i][committed] : 0.0;
    };
    double base_aborts = aborts_at(0);
    double last_commits = commits_at(0);
    bool flagged = false;  // one flag per storm, not one per sample
    for (std::size_t i = 1; i < ts.rows.size(); ++i) {
      if (commits_at(i) > last_commits) {
        last_commits = commits_at(i);
        base_aborts = aborts_at(i);
        flagged = false;
        continue;
      }
      const double aborts = aborts_at(i) - base_aborts;
      if (flagged || aborts < 3.0) continue;
      SeriesAnomaly a;
      a.kind = "abort_storm";
      a.time = ts.rows[i][0];
      a.column = "switch.aborted.*";
      a.before = base_aborts;
      a.after = aborts_at(i);
      a.drop_frac = aborts;
      report.anomalies.push_back(std::move(a));
      flagged = true;
    }
  }
  return report;
}

namespace {

/// Eight-level block sparkline of `values` bucketed to `width` cells.
std::string sparkline(const std::vector<double>& values, std::size_t width) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty() || width == 0) return "";
  double lo = values[0];
  double hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi - lo;
  std::string out;
  const std::size_t cells = std::min(width, values.size());
  for (std::size_t cell = 0; cell < cells; ++cell) {
    // Mean over the bucket of samples this cell covers.
    const std::size_t begin = cell * values.size() / cells;
    const std::size_t end =
        std::max(begin + 1, (cell + 1) * values.size() / cells);
    double sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) sum += values[i];
    const double v = sum / static_cast<double>(end - begin);
    const int level =
        span <= 0.0 ? 0
                    : std::min(7, static_cast<int>((v - lo) / span * 8.0));
    out += kBlocks[level];
  }
  return out;
}

}  // namespace

std::string render_timeseries(const TimeSeries& ts,
                              const TimeSeriesReport& report,
                              std::size_t width) {
  std::ostringstream os;
  os << report.rows << " samples over "
     << TextTable::num(report.duration, 3) << "s (interval "
     << trace::format_double(report.interval) << "s), "
     << report.columns.size() << " metrics\n\n";
  const std::size_t spark_width = std::max<std::size_t>(8, width);
  std::size_t name_width = 0;
  for (const auto& c : report.columns)
    name_width = std::max(name_width, c.name.size());
  for (std::size_t c = 1; c < ts.columns.size(); ++c) {
    const auto& stats = report.columns[c - 1];
    os << stats.name << std::string(name_width - stats.name.size(), ' ')
       << "  " << sparkline(ts.column(c), spark_width) << "  min "
       << TextTable::num(stats.min, 3) << "  mean "
       << TextTable::num(stats.mean, 3) << "  last "
       << TextTable::num(stats.last, 3) << "\n";
  }
  if (report.dropped_samples > 0.0) {
    os << "\nWARNING: " << trace::format_double(report.dropped_samples)
       << " non-finite metric sample(s) dropped during the run\n";
  }
  if (report.anomalies.empty()) {
    os << "\nno anomalies\n";
  } else {
    os << "\n" << report.anomalies.size() << " anomaly flag(s):\n";
    for (const SeriesAnomaly& a : report.anomalies) {
      if (a.kind == "abort_storm") {
        os << "  t=" << trace::format_double(a.time) << "  ABORT STORM: "
           << TextTable::num(a.drop_frac, 0)
           << " switch aborts with no commit in between ("
           << TextTable::num(a.before, 0) << " -> "
           << TextTable::num(a.after, 0) << " cumulative)\n";
        continue;
      }
      os << "  t=" << trace::format_double(a.time) << "  " << a.column
         << " dropped " << TextTable::num(a.drop_frac * 100.0, 1) << "% ("
         << TextTable::num(a.before, 1) << " -> "
         << TextTable::num(a.after, 1) << ")"
         << (a.no_decision ? " with NO decision activity in the window"
                           : " (decision activity present)")
         << "\n";
    }
  }
  return os.str();
}

void write_timeseries_json(const TimeSeriesReport& report, std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "autopipe-timeseries-report-v1");
  w.kv("rows", report.rows);
  w.kv("duration", report.duration);
  w.kv("interval", report.interval);
  w.kv("dropped_samples", report.dropped_samples);
  w.key("columns");
  w.begin_array();
  for (const auto& c : report.columns) {
    w.begin_object();
    w.kv("name", c.name);
    w.kv("min", c.min);
    w.kv("max", c.max);
    w.kv("mean", c.mean);
    w.kv("last", c.last);
    w.end();
  }
  w.end();
  w.key("anomalies");
  w.begin_array();
  for (const SeriesAnomaly& a : report.anomalies) {
    w.begin_object();
    w.kv("kind", a.kind);
    w.kv("time", a.time);
    w.kv("column", a.column);
    w.kv("before", a.before);
    w.kv("after", a.after);
    w.kv("drop_frac", a.drop_frac);
    w.kv("no_decision", a.no_decision);
    w.end();
  }
  w.end();
  w.end();
  os << "\n";
}

}  // namespace autopipe::analysis
