#include "analysis/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "analysis/json.hpp"
#include "analysis/switches.hpp"
#include "common/table.hpp"
#include "common/trace.hpp"

namespace autopipe::analysis {

namespace {

CalibrationReport build(const trace::DecisionLedger& ledger,
                        const std::vector<SwitchPostMortem>* post_mortems,
                        double tolerance) {
  CalibrationReport report;
  report.decisions = ledger.size();
  report.rows.reserve(ledger.size());

  double ape_sum = 0.0, bias_sum = 0.0, regret_sum = 0.0;
  double cost_err_sum = 0.0, cost_bias_sum = 0.0;
  std::vector<bool> pm_used(post_mortems ? post_mortems->size() : 0, false);

  for (const trace::DecisionRecord& rec : ledger.records()) {
    CalibrationRow row;
    row.id = rec.id;
    row.time = rec.time;
    row.action = trace::decision_action_name(rec.action);
    row.status = trace::outcome_status_name(rec.outcome.status);
    row.predicted = rec.chosen_pred;
    row.cost_pred = rec.cost_seconds;

    const bool switched = rec.action == trace::DecisionAction::kSwitch;
    (switched ? report.switches : report.holds) += 1;
    switch (rec.outcome.status) {
      case trace::OutcomeStatus::kExecuted: ++report.executed; break;
      case trace::OutcomeStatus::kReverted: ++report.reverted; break;
      case trace::OutcomeStatus::kRejected: ++report.rejected; break;
      case trace::OutcomeStatus::kSuperseded: ++report.superseded; break;
      case trace::OutcomeStatus::kPending: break;
    }

    if (rec.outcome.realized_speed > 0.0) {
      row.realized = rec.outcome.realized_speed;
      ++report.measured;
      if (rec.chosen_pred > 0.0) {
        row.bias = (rec.chosen_pred - row.realized) / row.realized;
        row.ape = std::abs(row.bias);
        ape_sum += row.ape;
        bias_sum += row.bias;
      }
      if (rec.best_pred > 0.0) {
        row.regret =
            std::max(0.0, rec.best_pred - row.realized) / row.realized;
        regret_sum += row.regret;
        report.max_regret = std::max(report.max_regret, row.regret);
      }
    }

    // Switch-cost join: the controller requests the switch synchronously
    // with the decision, so the matching post-mortem's request instant
    // coincides with rec.time. Executed and reverted switches both left a
    // switch span in the trace.
    if (post_mortems && switched &&
        (rec.outcome.status == trace::OutcomeStatus::kExecuted ||
         rec.outcome.status == trace::OutcomeStatus::kReverted)) {
      // The ledger's timestamps round-trip through %.9g (9 significant
      // digits), so the match window must scale with |t| on top of the
      // caller's tolerance.
      const double window =
          tolerance + 1e-8 * std::max(1.0, std::abs(rec.time));
      for (std::size_t i = 0; i < post_mortems->size(); ++i) {
        if (pm_used[i]) continue;
        if (std::abs((*post_mortems)[i].request_ts - rec.time) <= window) {
          pm_used[i] = true;
          row.cost_actual = (*post_mortems)[i].stall_seconds;
          ++report.cost_joined;
          cost_err_sum += std::abs(row.cost_pred - row.cost_actual);
          cost_bias_sum += row.cost_pred - row.cost_actual;
          break;
        }
      }
    }
    report.rows.push_back(std::move(row));
  }

  if (report.decisions > 0)
    report.accept_rate = static_cast<double>(report.switches) /
                         static_cast<double>(report.decisions);
  if (report.measured > 0) {
    report.speed_mape = ape_sum / static_cast<double>(report.measured);
    report.speed_bias = bias_sum / static_cast<double>(report.measured);
    report.mean_regret = regret_sum / static_cast<double>(report.measured);
  }
  if (report.cost_joined > 0) {
    report.cost_mae = cost_err_sum / static_cast<double>(report.cost_joined);
    report.cost_bias = cost_bias_sum / static_cast<double>(report.cost_joined);
  }
  return report;
}

std::string opt_num(double v, int decimals = 3) {
  return v < 0.0 ? "-" : TextTable::num(v, decimals);
}

}  // namespace

CalibrationReport calibrate(const trace::DecisionLedger& ledger) {
  return build(ledger, nullptr, 0.0);
}

CalibrationReport calibrate(const trace::DecisionLedger& ledger,
                            const TraceView& view, double tolerance) {
  const std::vector<SwitchPostMortem> post_mortems =
      switch_post_mortems(view);
  return build(ledger, &post_mortems, tolerance);
}

void render_calibration(const CalibrationReport& report, std::ostream& os) {
  os << "decisions: " << report.decisions << " (switch " << report.switches
     << ", hold " << report.holds << ", accept rate "
     << TextTable::num(100.0 * report.accept_rate, 1) << "%)\n";
  os << "outcomes: executed " << report.executed << ", reverted "
     << report.reverted << ", rejected " << report.rejected
     << ", superseded " << report.superseded << "\n";
  os << "speed predictor over " << report.measured
     << " measured decisions: MAPE "
     << TextTable::num(100.0 * report.speed_mape, 2) << "%, bias "
     << TextTable::num(100.0 * report.speed_bias, 2) << "%\n";
  os << "arbiter regret: mean "
     << TextTable::num(100.0 * report.mean_regret, 2) << "%, max "
     << TextTable::num(100.0 * report.max_regret, 2) << "%\n";
  if (report.cost_joined > 0) {
    os << "switch-cost model over " << report.cost_joined
       << " joined switches: MAE " << TextTable::num(report.cost_mae, 4)
       << " s, bias " << TextTable::num(report.cost_bias, 4) << " s\n";
  } else {
    os << "switch-cost model: no joined switches\n";
  }
  if (report.rows.empty()) return;

  TextTable table({"id", "t", "action", "status", "pred", "realized", "ape%",
                   "regret%", "cost_pred", "cost_actual"});
  for (const CalibrationRow& row : report.rows) {
    table.add_row({std::to_string(row.id), TextTable::num(row.time, 3),
                   row.action, row.status, TextTable::num(row.predicted, 2),
                   opt_num(row.realized, 2),
                   row.ape < 0.0 ? "-" : TextTable::num(100.0 * row.ape, 2),
                   row.regret < 0.0 ? "-"
                                    : TextTable::num(100.0 * row.regret, 2),
                   TextTable::num(row.cost_pred, 4),
                   opt_num(row.cost_actual, 4)});
  }
  table.print(os, "per-decision calibration");
}

void write_calibration_json(const CalibrationReport& report,
                            std::ostream& os) {
  JsonWriter json(os);
  json.begin_object();
  json.kv("schema", "autopipe-calibration-v1");
  json.kv("decisions", report.decisions);
  json.kv("switches", report.switches);
  json.kv("holds", report.holds);
  json.kv("accept_rate", report.accept_rate);
  json.kv("executed", report.executed);
  json.kv("reverted", report.reverted);
  json.kv("rejected", report.rejected);
  json.kv("superseded", report.superseded);
  json.kv("measured", report.measured);
  json.kv("speed_mape", report.speed_mape);
  json.kv("speed_bias", report.speed_bias);
  json.kv("mean_regret", report.mean_regret);
  json.kv("max_regret", report.max_regret);
  json.kv("cost_joined", report.cost_joined);
  json.kv("cost_mae", report.cost_mae);
  json.kv("cost_bias", report.cost_bias);
  json.key("rows");
  json.begin_array();
  for (const CalibrationRow& row : report.rows) {
    json.begin_object();
    json.kv("id", row.id);
    json.kv("time", row.time);
    json.kv("action", row.action);
    json.kv("status", row.status);
    json.kv("predicted", row.predicted);
    json.kv("realized", row.realized);
    json.kv("ape", row.ape);
    json.kv("bias", row.bias);
    json.kv("regret", row.regret);
    json.kv("cost_pred", row.cost_pred);
    json.kv("cost_actual", row.cost_actual);
    json.end();
  }
  json.end();
  json.end();
  os << "\n";
}

void render_decisions(const trace::DecisionLedger& ledger, std::ostream& os) {
  os << "ledger: model=" << (ledger.model().empty() ? "-" : ledger.model())
     << " batch=" << ledger.batches_per_iteration()
     << " workers=" << ledger.run_workers() << " decisions=" << ledger.size()
     << "\n";
  if (ledger.empty()) return;
  TextTable table({"id", "t", "iter", "kind", "cands", "arbiter", "action",
                   "target", "pred", "status", "realized", "reason"});
  for (const trace::DecisionRecord& rec : ledger.records()) {
    table.add_row(
        {std::to_string(rec.id), TextTable::num(rec.time, 3),
         std::to_string(rec.iteration), rec.kind,
         std::to_string(rec.candidates.size()), rec.arbiter,
         trace::decision_action_name(rec.action),
         rec.target.empty() ? "-" : rec.target,
         TextTable::num(rec.chosen_pred, 2),
         trace::outcome_status_name(rec.outcome.status),
         opt_num(rec.outcome.realized_speed, 2),
         rec.outcome.reason.empty() ? "-" : rec.outcome.reason});
  }
  table.print(os, "decisions");
}

void write_decisions_json(const trace::DecisionLedger& ledger,
                          std::ostream& os) {
  JsonWriter json(os);
  json.begin_object();
  json.kv("schema", "autopipe-decisions-v1");
  json.kv("model", ledger.model());
  json.kv("batch", ledger.batches_per_iteration());
  json.kv("workers", ledger.run_workers());
  json.key("decisions");
  json.begin_array();
  for (const trace::DecisionRecord& rec : ledger.records()) {
    json.begin_object();
    json.kv("id", rec.id);
    json.kv("time", rec.time);
    json.kv("iteration", rec.iteration);
    json.kv("kind", rec.kind);
    json.kv("digest", rec.digest);
    json.kv("workers", rec.num_workers);
    json.kv("iteration_time", rec.iteration_time);
    json.kv("current", rec.current);
    json.kv("current_pred", rec.current_pred);
    json.key("candidates");
    json.begin_array();
    for (const trace::CandidateScore& cs : rec.candidates) {
      json.begin_object();
      json.kv("partition", cs.partition);
      json.kv("predicted_speed", cs.predicted_speed);
      json.kv("cost_fine", cs.cost_fine);
      json.kv("cost_stw", cs.cost_stw);
      json.kv("skipped", cs.skipped);
      json.end();
    }
    json.end();
    json.kv("action", trace::decision_action_name(rec.action));
    json.kv("target", rec.target);
    json.kv("chosen_pred", rec.chosen_pred);
    json.kv("best_pred", rec.best_pred);
    json.kv("cost_seconds", rec.cost_seconds);
    json.kv("arbiter", rec.arbiter);
    json.kv("explored", rec.explored);
    json.key("q_values");
    json.begin_array();
    for (double q : rec.q_values) json.value(q);
    json.end();
    json.kv("status", trace::outcome_status_name(rec.outcome.status));
    json.kv("realized_speed", rec.outcome.realized_speed);
    json.kv("window_iterations", rec.outcome.window_iterations);
    json.kv("reason", rec.outcome.reason);
    json.end();
  }
  json.end();
  json.end();
  os << "\n";
}

std::vector<DecisionPathMark> decision_path_marks(
    const CriticalPath& path, const trace::DecisionLedger& ledger) {
  std::vector<DecisionPathMark> marks;
  marks.reserve(ledger.size());
  for (const trace::DecisionRecord& rec : ledger.records()) {
    DecisionPathMark mark;
    mark.id = rec.id;
    mark.time = rec.time;
    for (const PathSegment& seg : path.segments) {
      if (seg.span != nullptr) continue;  // only wait segments matter
      if (rec.time >= seg.begin && rec.time <= seg.end) {
        mark.on_wait = true;
        break;
      }
    }
    marks.push_back(mark);
  }
  return marks;
}

}  // namespace autopipe::analysis
