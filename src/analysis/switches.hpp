// Per-switch post-mortems: for every controller-initiated partition switch
// recorded in a trace, reconstruct what it moved, what it stalled and what
// it bought — migration bytes, drain seconds, iteration period before vs
// after, and the payback horizon (iterations until the cumulative
// per-iteration gain covers the switching cost), i.e. the paper's reward
// signal measured from the trace instead of predicted.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/trace_view.hpp"

namespace autopipe::analysis {

struct SwitchPostMortem {
  std::size_t index = 0;         ///< 0-based, in time order
  double request_ts = 0.0;       ///< switch span start (the request instant)
  double finish_ts = 0.0;        ///< new partition adopted (or rolled back)
  double duration = 0.0;
  std::string mode;              ///< "stw" | "fine" | "" when unrecorded
  /// True for attempts that aborted and rolled back instead of committing;
  /// abort_phase/abort_reason carry the protocol phase the fault struck in
  /// and why (worker_loss, link_loss, emergency). speedup/payback stay at
  /// their defaults — an aborted switch buys nothing.
  bool aborted = false;
  std::string abort_phase;
  std::string abort_reason;
  double migration_bytes = 0.0;
  std::size_t migration_pairs = 0;
  /// Iteration marks inside (request, finish].
  std::size_t iterations_during = 0;
  /// Mean gap between iteration marks over the window before the request /
  /// after completion; 0 when too few marks exist on that side.
  double period_before = 0.0;
  double period_after = 0.0;
  /// (period_before / period_after - 1) * 100; 0 when either period is 0.
  double speedup_pct = 0.0;
  /// Time the switch cost versus continuing at the pre-switch rate:
  /// duration - iterations_during * period_before, floored at 0.
  double stall_seconds = 0.0;
  /// stall_seconds / (period_before - period_after): iterations of the new
  /// regime needed to win the stall back; -1 when the switch never pays
  /// back (no per-iteration gain).
  double payback_iterations = -1.0;
};

/// One post-mortem per attempted switch — committed `switch` spans and
/// `switch_aborted` spans alike — in time order. `window` bounds how many
/// iteration gaps on each side estimate the periods.
std::vector<SwitchPostMortem> switch_post_mortems(const TraceView& view,
                                                  std::size_t window = 5);

}  // namespace autopipe::analysis
