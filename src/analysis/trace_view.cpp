#include "analysis/trace_view.hpp"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "common/expect.hpp"

namespace autopipe::analysis {

const IntervalSet TraceView::kEmptySet;
const std::vector<const trace::Event*> TraceView::kNoSpans;

namespace {

double arg_double(const trace::Event& ev, const char* key, double fallback) {
  const std::string* v = ev.find_arg(key);
  return v == nullptr ? fallback : std::strtod(v->c_str(), nullptr);
}

/// "server3.nic.tx" -> 3; -1 for anything that is not a server resource.
int server_of_resource(const std::string& resource) {
  if (resource.rfind("server", 0) != 0) return -1;
  return std::atoi(resource.c_str() + 6);
}

}  // namespace

TraceView::TraceView(std::vector<trace::Event> events)
    : events_(std::move(events)) {
  index_events();
  build_saturation();
  infer_servers();
  build_fault_windows();
}

void TraceView::index_events() {
  std::map<std::uint64_t, FlowRecord> open_flows;
  for (const trace::Event& ev : events_) {
    const double end = ev.phase == 'X' ? ev.ts + ev.dur : ev.ts;
    wall_clock_ = std::max(wall_clock_, end);

    if (ev.phase == 'X' && ev.category == trace::Category::kCompute &&
        ev.pid < trace::kPidNetwork &&
        (ev.name == "fp" || ev.name == "bp")) {
      WorkerIndex& w = per_worker_[ev.pid];
      w.compute.add(ev.ts, end);
      (ev.name == "fp" ? w.fp : w.bp).add(ev.ts, end);
      w.compute_spans.push_back(&ev);
    } else if (ev.phase == 'X' && ev.category == trace::Category::kComm) {
      if (ev.pid == trace::kPidNetwork) {
        // act/grad/migrate transfer: busy for both endpoints.
        const int src = static_cast<int>(arg_double(ev, "src", -1));
        const int dst = static_cast<int>(arg_double(ev, "dst", -1));
        if (src >= 0) per_worker_[src].comm.add(ev.ts, end);
        if (dst >= 0 && dst != src) per_worker_[dst].comm.add(ev.ts, end);
      } else if (ev.pid < trace::kPidNetwork) {
        // Weight-sync collective rooted on a worker.
        per_worker_[ev.pid].comm.add(ev.ts, end);
      }
    } else if (ev.phase == 'X' &&
               ev.category == trace::Category::kSwitch &&
               ev.name == "switch") {
      switch_spans_.push_back(&ev);
      switch_windows_.add(ev.ts, end);
    } else if (ev.phase == 'X' &&
               ev.category == trace::Category::kSwitch &&
               ev.name == "switch_aborted") {
      aborted_switch_spans_.push_back(&ev);
      switch_windows_.add(ev.ts, end);
    } else if (ev.phase == 'i' && ev.name == "iteration") {
      iteration_marks_.push_back(ev.ts);
    } else if (ev.phase == 'b' && ev.name == "flow") {
      FlowRecord f;
      f.id = ev.id;
      f.begin = ev.ts;
      f.bytes = arg_double(ev, "bytes", 0.0);
      if (const std::string* p = ev.find_arg("path")) f.path = *p;
      open_flows[ev.id] = std::move(f);
    } else if (ev.phase == 'e' && ev.name == "flow") {
      auto it = open_flows.find(ev.id);
      if (it != open_flows.end()) {
        it->second.end = ev.ts;
        it->second.cancelled = ev.find_arg("cancelled") != nullptr;
        flows_.push_back(it->second);
        open_flows.erase(it);
      }
    }
  }

  for (auto& [pid, w] : per_worker_) {
    workers_.push_back(pid);
    std::stable_sort(w.compute_spans.begin(), w.compute_spans.end(),
                     [](const trace::Event* a, const trace::Event* b) {
                       return a->ts < b->ts;
                     });
  }
  std::stable_sort(switch_spans_.begin(), switch_spans_.end(),
                   [](const trace::Event* a, const trace::Event* b) {
                     return a->ts < b->ts;
                   });
  std::stable_sort(aborted_switch_spans_.begin(),
                   aborted_switch_spans_.end(),
                   [](const trace::Event* a, const trace::Event* b) {
                     return a->ts < b->ts;
                   });
  std::sort(iteration_marks_.begin(), iteration_marks_.end());
  std::stable_sort(flows_.begin(), flows_.end(),
                   [](const FlowRecord& a, const FlowRecord& b) {
                     return a.begin < b.begin;
                   });
}

void TraceView::build_saturation() {
  // Reconstruct each resource's cap/load step functions from the counter
  // stream and mark the windows where every byte/sec of capacity was
  // allocated. The simulator emits counters in simulated-time order, but
  // sort defensively (stable, so same-instant cap-then-load order holds).
  struct Change {
    double ts;
    bool is_cap;
    double value;
  };
  std::map<std::string, std::vector<Change>> changes;
  for (const trace::Event& ev : events_) {
    if (ev.phase != 'C') continue;
    if (ev.name.rfind("cap:", 0) == 0) {
      changes[ev.name.substr(4)].push_back(Change{ev.ts, true, ev.value});
    } else if (ev.name.rfind("load:", 0) == 0) {
      changes[ev.name.substr(5)].push_back(Change{ev.ts, false, ev.value});
    }
  }
  for (auto& [resource, list] : changes) {
    std::stable_sort(list.begin(), list.end(),
                     [](const Change& a, const Change& b) {
                       return a.ts < b.ts;
                     });
    IntervalSet& out = saturated_[resource];
    double cap = 0.0, load = 0.0;
    bool saturated = false;
    double since = 0.0;
    for (const Change& c : list) {
      (c.is_cap ? cap : load) = c.value;
      const bool now = cap > 0.0 && load >= cap * (1.0 - 1e-9);
      if (now && !saturated) {
        since = c.ts;
      } else if (!now && saturated) {
        out.add(since, c.ts);
      }
      saturated = now;
    }
    if (saturated) out.add(since, wall_clock_);
  }
}

void TraceView::infer_servers() {
  // Explicit "topology" instants (worker pid -> server tid), emitted by the
  // fault-injection layer, are authoritative: a single-stage all-replicated
  // partition has no inter-stage flows to vote with, yet link outages are
  // keyed by server and still need worker attribution.
  for (const trace::Event& ev : events_) {
    if (ev.phase == 'i' && ev.category == trace::Category::kFault &&
        ev.name == "topology") {
      per_worker_[ev.pid].server = ev.tid;
    }
  }

  // A transfer span ("act"/"grad"/"migrate", started at span.ts) and the
  // flow it rode share a start instant and a byte count; the flow's path
  // names the NIC resources, whose names carry the server indices. Each
  // match is one vote for (src worker -> first-hop server) and
  // (dst worker -> last-hop server).
  std::multimap<double, const FlowRecord*> flows_by_begin;
  for (const FlowRecord& f : flows_) flows_by_begin.emplace(f.begin, &f);

  std::map<int, std::map<int, int>> votes;
  for (const trace::Event& ev : events_) {
    if (ev.phase != 'X' || ev.category != trace::Category::kComm ||
        ev.pid != trace::kPidNetwork) {
      continue;
    }
    const int src = static_cast<int>(arg_double(ev, "src", -1));
    const int dst = static_cast<int>(arg_double(ev, "dst", -1));
    if (src < 0 || dst < 0) continue;
    const double bytes = arg_double(ev, "bytes", -1.0);
    auto [lo, hi] = flows_by_begin.equal_range(ev.ts);
    for (auto it = lo; it != hi; ++it) {
      const FlowRecord& f = *it->second;
      if (f.bytes != bytes || f.path.empty()) continue;
      const std::size_t comma = f.path.find(',');
      const std::string first = f.path.substr(0, comma);
      const std::string last = comma == std::string::npos
                                   ? first
                                   : f.path.substr(f.path.rfind(',') + 1);
      const int src_server = server_of_resource(first);
      const int dst_server = server_of_resource(last);
      if (src_server >= 0) ++votes[src][src_server];
      if (dst_server >= 0) ++votes[dst][dst_server];
      break;
    }
  }

  for (auto& [worker, w] : per_worker_) {
    if (w.server >= 0) continue;  // pinned by a topology instant
    auto it = votes.find(worker);
    if (it == votes.end()) continue;
    int best_server = -1, best_count = 0;
    for (const auto& [server, count] : it->second) {
      if (count > best_count) {
        best_server = server;
        best_count = count;
      }
    }
    w.server = best_server;
  }

  // Workers that never communicated: adopt the smallest uniform
  // workers-per-server layout consistent with every mapped pair (the
  // cluster numbers workers server-major, so w / g == server).
  std::vector<std::pair<int, int>> mapped;
  bool any_unmapped = false;
  for (const auto& [worker, w] : per_worker_) {
    if (w.server >= 0) {
      mapped.emplace_back(worker, w.server);
    } else {
      any_unmapped = true;
    }
  }
  if (any_unmapped && !mapped.empty()) {
    for (int g = 1; g <= 64; ++g) {
      bool ok = true;
      for (const auto& [worker, server] : mapped) {
        if (worker / g != server) {
          ok = false;
          break;
        }
      }
      if (ok) {
        for (auto& [worker, w] : per_worker_) {
          if (w.server < 0) w.server = worker / g;
        }
        break;
      }
    }
  }

  // Saturation windows of the server's resources, as seen from the worker.
  for (auto& [worker, w] : per_worker_) {
    if (w.server < 0) continue;
    const std::string base = "server" + std::to_string(w.server);
    for (const char* suffix : {".nic.tx", ".nic.rx", ".pcie"}) {
      auto it = saturated_.find(base + suffix);
      if (it != saturated_.end())
        w.nic_saturated = w.nic_saturated.unite(it->second);
    }
  }
}

void TraceView::build_fault_windows() {
  // Pair the fault-instant marks the injection layer emits into outage
  // windows. Events arrive in time order; an outage still open at the end
  // of the trace runs to the wall clock.
  std::map<int, double> gpu_open;      // worker -> down ts
  std::map<int, double> link_open;     // server -> down ts
  std::map<int, IntervalSet> gpu_out;  // per worker
  std::map<int, IntervalSet> link_out;  // per server
  IntervalSet wedged;
  double wedged_open = -1.0;
  for (const trace::Event& ev : events_) {
    if (ev.phase != 'i' || ev.category != trace::Category::kFault) continue;
    if (ev.name == "gpu_down") {
      gpu_open.emplace(ev.pid, ev.ts);
    } else if (ev.name == "gpu_up") {
      auto it = gpu_open.find(ev.pid);
      if (it != gpu_open.end()) {
        gpu_out[ev.pid].add(it->second, ev.ts);
        gpu_open.erase(it);
      }
    } else if (ev.name == "link_down") {
      link_open.emplace(ev.tid, ev.ts);
    } else if (ev.name == "link_up") {
      auto it = link_open.find(ev.tid);
      if (it != link_open.end()) {
        link_out[ev.tid].add(it->second, ev.ts);
        link_open.erase(it);
      }
    } else if (ev.name == "pipeline_wedged") {
      if (wedged_open < 0.0) wedged_open = ev.ts;
    } else if (ev.name == "pipeline_recovered") {
      if (wedged_open >= 0.0) {
        wedged.add(wedged_open, ev.ts);
        wedged_open = -1.0;
      }
    }
  }
  for (const auto& [worker, ts] : gpu_open) gpu_out[worker].add(ts, wall_clock_);
  for (const auto& [server, ts] : link_open)
    link_out[server].add(ts, wall_clock_);
  if (wedged_open >= 0.0) wedged.add(wedged_open, wall_clock_);

  for (auto& [worker, w] : per_worker_) {
    auto git = gpu_out.find(worker);
    if (git != gpu_out.end()) w.fault = w.fault.unite(git->second);
    if (w.server >= 0) {
      auto lit = link_out.find(w.server);
      if (lit != link_out.end()) w.fault = w.fault.unite(lit->second);
    }
    if (!wedged.empty()) w.fault = w.fault.unite(wedged);
  }
}

const IntervalSet& TraceView::compute_busy(int worker) const {
  auto it = per_worker_.find(worker);
  return it == per_worker_.end() ? kEmptySet : it->second.compute;
}

const IntervalSet& TraceView::fp_busy(int worker) const {
  auto it = per_worker_.find(worker);
  return it == per_worker_.end() ? kEmptySet : it->second.fp;
}

const IntervalSet& TraceView::bp_busy(int worker) const {
  auto it = per_worker_.find(worker);
  return it == per_worker_.end() ? kEmptySet : it->second.bp;
}

const IntervalSet& TraceView::comm_busy(int worker) const {
  auto it = per_worker_.find(worker);
  return it == per_worker_.end() ? kEmptySet : it->second.comm;
}

const std::vector<const trace::Event*>& TraceView::compute_spans(
    int worker) const {
  auto it = per_worker_.find(worker);
  return it == per_worker_.end() ? kNoSpans : it->second.compute_spans;
}

const IntervalSet& TraceView::resource_saturated(
    const std::string& resource) const {
  auto it = saturated_.find(resource);
  return it == saturated_.end() ? kEmptySet : it->second;
}

std::vector<std::string> TraceView::resource_names() const {
  std::vector<std::string> out;
  out.reserve(saturated_.size());
  for (const auto& [name, set] : saturated_) out.push_back(name);
  return out;
}

const IntervalSet& TraceView::nic_saturated(int worker) const {
  auto it = per_worker_.find(worker);
  return it == per_worker_.end() ? kEmptySet : it->second.nic_saturated;
}

int TraceView::server_of(int worker) const {
  auto it = per_worker_.find(worker);
  return it == per_worker_.end() ? -1 : it->second.server;
}

const IntervalSet& TraceView::fault_windows(int worker) const {
  auto it = per_worker_.find(worker);
  return it == per_worker_.end() ? kEmptySet : it->second.fault;
}

}  // namespace autopipe::analysis
