// Predictor calibration: join a decision ledger against the realized
// outcomes it recorded (and, when a trace is available, against the measured
// switch stalls) to quantify how trustworthy the controller's predictions
// were. Produces per-decision rows plus the aggregates the paper's
// evaluation leans on — speed-prediction MAPE and bias for the meta-network
// (or analytic predictor), switch-cost MAE/bias against the post-mortem
// stalls, arbiter accept rate, and hindsight regret (best candidate's
// predicted speed vs what the taken action actually delivered).
//
// Metric definitions live in docs/DECISIONS.md; the controller maintains the
// same APE/bias/regret series live in MetricsRegistry ("calibration.*").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/critical_path.hpp"
#include "analysis/trace_view.hpp"
#include "common/ledger.hpp"

namespace autopipe::analysis {

/// One resolved decision joined to its realized outcome.
struct CalibrationRow {
  std::uint64_t id = 0;
  double time = 0.0;
  std::string action;      ///< "switch" | "hold"
  std::string status;      ///< terminal outcome state
  double predicted = 0.0;  ///< chosen action's predicted speed (samples/s)
  double realized = -1.0;  ///< measured speed; -1 when never measured
  double ape = -1.0;       ///< |pred - realized| / realized; -1 unmeasured
  double bias = 0.0;       ///< (pred - realized) / realized, signed
  double regret = -1.0;    ///< max(0, best_pred - realized) / realized
  double cost_pred = 0.0;  ///< estimated switch stall (seconds)
  double cost_actual = -1.0;  ///< joined post-mortem stall; -1 when no join
};

struct CalibrationReport {
  std::size_t decisions = 0;
  std::size_t switches = 0;  ///< action == switch
  std::size_t holds = 0;
  double accept_rate = 0.0;  ///< switches / decisions
  std::size_t executed = 0, reverted = 0, rejected = 0, superseded = 0;

  std::size_t measured = 0;    ///< rows with a realized speed
  double speed_mape = 0.0;     ///< mean APE over measured rows
  double speed_bias = 0.0;     ///< mean signed relative error
  double mean_regret = 0.0;    ///< mean relative regret over measured rows
  double max_regret = 0.0;

  std::size_t cost_joined = 0;  ///< switch rows joined to a trace stall
  double cost_mae = 0.0;        ///< mean |cost_pred - stall| (seconds)
  double cost_bias = 0.0;       ///< mean (cost_pred - stall)

  std::vector<CalibrationRow> rows;  ///< every decision, in ledger order
};

/// Ledger-only calibration: realized speeds come from the recorded outcomes.
CalibrationReport calibrate(const trace::DecisionLedger& ledger);

/// Calibration with the switch-cost join: each executed/reverted switch
/// decision is matched to the trace's switch post-mortem whose request
/// instant coincides with the decision (the controller requests the switch
/// synchronously, so the timestamps agree up to `tolerance` plus the
/// ledger's 9-significant-digit serialization round-off).
CalibrationReport calibrate(const trace::DecisionLedger& ledger,
                            const TraceView& view, double tolerance = 1e-9);

/// Human-readable report (aggregates plus a per-decision table).
void render_calibration(const CalibrationReport& report, std::ostream& os);
void write_calibration_json(const CalibrationReport& report, std::ostream& os);

/// Decision table for `autopipe_trace decisions`: one line per record with
/// its candidates count, verdict and outcome.
void render_decisions(const trace::DecisionLedger& ledger, std::ostream& os);
void write_decisions_json(const trace::DecisionLedger& ledger,
                          std::ostream& os);

/// Decision markers against the critical path: which planning rounds fired
/// while the walked path sat in a wait segment (the pipeline starving while
/// the controller deliberated — prime switch opportunities).
struct DecisionPathMark {
  std::uint64_t id = 0;
  double time = 0.0;
  bool on_wait = false;
};
std::vector<DecisionPathMark> decision_path_marks(
    const CriticalPath& path, const trace::DecisionLedger& ledger);

}  // namespace autopipe::analysis
