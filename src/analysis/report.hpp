// The analyzer's front door: analyze() folds a TraceView into one
// RunAnalysis — utilization, bubble attribution, critical path, switch
// post-mortems, iteration-time and flow-duration distributions — and the
// render_*/write_* functions turn it into aligned text tables or
// deterministic JSON. diff_analyses() compares two runs key-by-key (the
// before/after check a perf PR quotes); utilization_timeline() buckets
// per-worker occupancy into equal windows for trend views.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/bubbles.hpp"
#include "analysis/critical_path.hpp"
#include "analysis/switches.hpp"
#include "analysis/trace_view.hpp"
#include "common/stats.hpp"

namespace autopipe::analysis {

struct WorkerUtilization {
  int worker = -1;
  int server = -1;
  double compute_seconds = 0.0;
  /// Communication time not overlapped by compute.
  double comm_seconds = 0.0;
  double idle_seconds = 0.0;
  // Fractions of wall clock; compute + comm + idle == 1 per worker.
  double compute_frac = 0.0;
  double comm_frac = 0.0;
  double idle_frac = 0.0;
};

struct RunAnalysis {
  double wall_clock = 0.0;
  std::size_t num_events = 0;
  std::size_t iterations = 0;
  /// Gaps between consecutive iteration-completion marks.
  Histogram iteration_times;
  /// Completed (non-cancelled) network flows.
  std::size_t flows = 0;
  double flow_bytes = 0.0;
  Histogram flow_durations;
  std::vector<WorkerUtilization> utilization;
  BubbleReport bubbles;
  CriticalPath critical_path;
  std::vector<SwitchPostMortem> switches;
};

/// Run every analysis over the view. `switch_window` bounds the iteration
/// window the switch post-mortems average periods over.
RunAnalysis analyze(const TraceView& view, std::size_t switch_window = 5);

/// Per-worker busy (compute) fraction over `windows` equal slices of the
/// run — the utilization timeline.
struct UtilizationWindow {
  double begin = 0.0;
  double end = 0.0;
  std::vector<double> compute_frac;  ///< aligned with view.workers()
};
std::vector<UtilizationWindow> utilization_timeline(const TraceView& view,
                                                    std::size_t windows);

// --- rendering -------------------------------------------------------------

std::string render_summary_text(const RunAnalysis& a);
std::string render_bubbles_text(const RunAnalysis& a);
std::string render_critical_path_text(const RunAnalysis& a,
                                      std::size_t top = 10);
std::string render_switches_text(const RunAnalysis& a);

void write_summary_json(const RunAnalysis& a, std::ostream& os);
void write_bubbles_json(const RunAnalysis& a, std::ostream& os);
void write_critical_path_json(const RunAnalysis& a, std::ostream& os);
void write_switches_json(const RunAnalysis& a, std::ostream& os);

// --- run comparison ----------------------------------------------------------

/// One scalar both runs report, with its values. Only keys whose values
/// differ by more than `tolerance` appear in diff output.
struct DiffEntry {
  std::string key;
  double a = 0.0;
  double b = 0.0;
};

/// Every scalar the analysis exposes, as deterministic (key, value) pairs.
std::vector<std::pair<std::string, double>> flatten(const RunAnalysis& a);

/// Keys that differ between the runs (union of both key sets; a key one
/// side lacks compares against 0).
std::vector<DiffEntry> diff_analyses(const RunAnalysis& a,
                                     const RunAnalysis& b,
                                     double tolerance = 0.0);

std::string render_diff_text(const std::vector<DiffEntry>& deltas);
void write_diff_json(const std::vector<DiffEntry>& deltas, std::ostream& os);

}  // namespace autopipe::analysis
