#include "analysis/bubbles.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace autopipe::analysis {

const char* bubble_class_name(BubbleClass cls) {
  switch (cls) {
    case BubbleClass::kStartupFill: return "startup_fill";
    case BubbleClass::kReconfigDrain: return "reconfig_drain";
    case BubbleClass::kNetContention: return "net_contention";
    case BubbleClass::kUpstreamStall: return "upstream_stall";
    case BubbleClass::kDownstreamStall: return "downstream_stall";
    case BubbleClass::kDrainTail: return "drain_tail";
    case BubbleClass::kFaultDowntime: return "fault_downtime";
  }
  return "unknown";
}

double WorkerBubbles::idle_seconds() const {
  double sum = 0.0;
  for (double s : seconds) sum += s;
  return sum;
}

double BubbleReport::total_idle() const {
  double sum = 0.0;
  for (double s : totals) sum += s;
  return sum;
}

namespace {

/// First compute span on the worker starting at or after `t` (the span the
/// gap ended by enabling); nullptr when the gap runs past the last span.
const trace::Event* next_compute_span(
    const std::vector<const trace::Event*>& spans, double t) {
  auto it = std::lower_bound(spans.begin(), spans.end(), t - 1e-12,
                             [](const trace::Event* ev, double value) {
                               return ev->ts < value;
                             });
  return it == spans.end() ? nullptr : *it;
}

}  // namespace

BubbleReport attribute_bubbles(const TraceView& view) {
  BubbleReport report;
  report.wall_clock = view.wall_clock();

  for (int worker : view.workers()) {
    WorkerBubbles wb;
    wb.worker = worker;
    const IntervalSet& busy = view.compute_busy(worker);
    wb.busy_seconds = busy.total();

    const IntervalSet idle = busy.complement(0.0, view.wall_clock());
    // Attribution works on progressively smaller remainders, most-specific
    // cause first: fault downtime (an outage explains the idleness whatever
    // position it falls in), then position (fill/tail), then
    // reconfiguration, then contention, then the direction of the
    // dependency the gap waited on. A worker with no compute at all spent
    // the whole run waiting to fill.
    auto& windows = wb.windows;
    windows[static_cast<std::size_t>(BubbleClass::kFaultDowntime)] =
        idle.intersect(view.fault_windows(worker));
    const IntervalSet live = idle.subtract(view.fault_windows(worker));

    const double first_compute =
        busy.empty() ? view.wall_clock() : busy.front_begin();
    const double last_compute =
        busy.empty() ? view.wall_clock() : busy.back_end();

    windows[static_cast<std::size_t>(BubbleClass::kStartupFill)] =
        live.clamp(0.0, first_compute);
    windows[static_cast<std::size_t>(BubbleClass::kDrainTail)] =
        live.clamp(last_compute, view.wall_clock());
    IntervalSet remainder = live.clamp(first_compute, last_compute);

    windows[static_cast<std::size_t>(BubbleClass::kReconfigDrain)] =
        remainder.intersect(view.switch_windows());
    remainder = remainder.subtract(view.switch_windows());

    windows[static_cast<std::size_t>(BubbleClass::kNetContention)] =
        remainder.intersect(view.nic_saturated(worker));
    remainder = remainder.subtract(view.nic_saturated(worker));

    // What remains is a steady-state stall: the gap ends when its worker
    // starts the span it was waiting to run — fp means the upstream
    // activation was late, bp means the downstream gradient was.
    const auto& spans = view.compute_spans(worker);
    for (const Interval& gap : remainder.intervals()) {
      const trace::Event* next = next_compute_span(spans, gap.end);
      const BubbleClass cls = (next != nullptr && next->name == "bp")
                                  ? BubbleClass::kDownstreamStall
                                  : BubbleClass::kUpstreamStall;
      windows[static_cast<std::size_t>(cls)].add(gap.begin, gap.end);
    }

    for (std::size_t c = 0; c < kNumBubbleClasses; ++c) {
      wb.seconds[c] = windows[c].total();
      report.totals[c] += wb.seconds[c];
    }
    report.total_busy += wb.busy_seconds;
    report.workers.push_back(std::move(wb));
  }
  return report;
}

}  // namespace autopipe::analysis
