// Critical-path extraction through the span dependency chain. In a
// discrete-event simulation an enabled task starts at exactly the instant
// its trigger finished, so the chain is recoverable from timestamps alone:
// starting from the span that ends the run, repeatedly step to the span
// that ended where the current one began (preferring the semantically
// matching predecessor — the inbound transfer for a compute span, the
// sender's compute for a transfer), inserting explicit wait segments when
// nothing abuts. Aggregating the walked segments names the stage or link
// that bounds iteration time.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/trace_view.hpp"

namespace autopipe::analysis {

struct PathSegment {
  /// Span walked, or nullptr for a wait (no abutting predecessor).
  const trace::Event* span = nullptr;
  double begin = 0.0;
  double end = 0.0;
  /// Aggregation key: "compute:fp:stage0@w1", "comm:act:0->1", "wait".
  std::string key;
};

struct PathEntry {
  std::string key;
  double seconds = 0.0;
  double share = 0.0;  ///< of the walked path length
  std::size_t segments = 0;
};

struct CriticalPath {
  /// Walked segments in time order (earliest first).
  std::vector<PathSegment> segments;
  /// Aggregated per key, heaviest first.
  std::vector<PathEntry> entries;
  double wall_clock = 0.0;
  /// Path length actually covered by spans (wall_clock minus waits).
  double span_seconds = 0.0;
  double wait_seconds = 0.0;
};

CriticalPath extract_critical_path(const TraceView& view);

}  // namespace autopipe::analysis
