// ASCII gantt timeline: one row per worker, one character per time cell,
// chosen by which activity dominates the cell — 'F' forward compute, 'B'
// backward compute, then the bubble classes ('-' startup fill, '!'
// reconfiguration drain, '#' network contention, '<' upstream stall, '>'
// downstream stall, '.' drain tail). A ruler row marks iteration
// completions and switch windows so pipeline shape, drain gaps and
// contention bands are visible straight from a terminal.
#pragma once

#include <cstddef>
#include <string>

#include "analysis/trace_view.hpp"
#include "common/ledger.hpp"

namespace autopipe::analysis {

/// Render the per-worker timeline at `width` cells across the whole run.
std::string render_gantt(const TraceView& view, std::size_t width = 100);

/// Same, with a decision row under the ruler marking the ledger's planning
/// rounds: '^' where the round chose a switch, '.' where it held.
std::string render_gantt(const TraceView& view,
                         const trace::DecisionLedger& ledger,
                         std::size_t width = 100);

}  // namespace autopipe::analysis
