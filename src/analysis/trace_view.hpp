// Indexed view over a recorded trace: the event semantics PR 1's recorder
// established (worker rows for fp/bp, the network row for transfers and
// cap:/load: counters, the control row for switches and iteration marks)
// turned into the structures every analysis needs — per-worker occupancy
// interval sets, switch spans, iteration completion times, per-resource
// saturation windows and an inferred worker→server mapping.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/interval.hpp"
#include "common/trace.hpp"

namespace autopipe::analysis {

/// One completed flow reconstructed from a 'b'/'e' async pair.
struct FlowRecord {
  std::uint64_t id = 0;
  double begin = 0.0;
  double end = 0.0;
  double bytes = 0.0;
  bool cancelled = false;
  std::string path;  ///< comma-joined resource names from the 'b' event
};

class TraceView {
 public:
  explicit TraceView(std::vector<trace::Event> events);

  const std::vector<trace::Event>& events() const { return events_; }

  /// End of the run: the latest instant any event touches.
  double wall_clock() const { return wall_clock_; }

  /// Worker (GPU) pids observed in the trace, sorted.
  const std::vector<int>& workers() const { return workers_; }

  // --- per-worker occupancy ---------------------------------------------

  /// Union of the worker's fp+bp compute spans.
  const IntervalSet& compute_busy(int worker) const;
  const IntervalSet& fp_busy(int worker) const;
  const IntervalSet& bp_busy(int worker) const;
  /// Union of communication spans involving the worker: transfers with the
  /// worker as src or dst, plus weight-sync collectives rooted on it.
  const IntervalSet& comm_busy(int worker) const;
  /// The worker's fp/bp spans sorted by start time.
  const std::vector<const trace::Event*>& compute_spans(int worker) const;

  // --- control-row structure ----------------------------------------------

  /// Completed `switch` spans (request to adoption), in time order.
  const std::vector<const trace::Event*>& switch_spans() const {
    return switch_spans_;
  }
  /// `switch_aborted` spans (request to abort), in time order — attempts
  /// that rolled back instead of committing.
  const std::vector<const trace::Event*>& aborted_switch_spans() const {
    return aborted_switch_spans_;
  }
  /// Union of the switch spans — the reconfiguration windows.
  const IntervalSet& switch_windows() const { return switch_windows_; }
  /// Timestamps of the per-iteration completion marks, sorted.
  const std::vector<double>& iteration_marks() const {
    return iteration_marks_;
  }

  // --- network ------------------------------------------------------------

  /// Completed flows ('b' paired with 'e'), in begin order.
  const std::vector<FlowRecord>& flows() const { return flows_; }

  /// Windows during which the named resource (e.g. "server0.nic.tx") was
  /// allocated at its full then-current capacity.
  const IntervalSet& resource_saturated(const std::string& resource) const;
  /// All resource names seen in cap:/load: counters, sorted.
  std::vector<std::string> resource_names() const;

  /// Windows during which any NIC (tx or rx) or PCIe bus of the worker's
  /// server was saturated — the "capped flow on that worker's NIC" signal
  /// bubble attribution classifies contention stalls with. Empty when the
  /// worker could not be mapped to a server.
  const IntervalSet& nic_saturated(int worker) const;

  /// Server hosting the worker, inferred by correlating transfer spans with
  /// flow paths; -1 when the worker never communicated and no uniform
  /// workers-per-server layout fits the observed pairs.
  int server_of(int worker) const;

  // --- faults ---------------------------------------------------------------

  /// Windows during which the worker was fault-afflicted: its own
  /// gpu_down→gpu_up outages, its server's link_down→link_up outages, and
  /// the pipeline-wide pipeline_wedged→pipeline_recovered stalls. Unclosed
  /// windows run to wall_clock(). Stragglers and profiler dropouts are not
  /// downtime and are excluded.
  const IntervalSet& fault_windows(int worker) const;

 private:
  void index_events();
  void build_saturation();
  void infer_servers();
  void build_fault_windows();

  std::vector<trace::Event> events_;
  double wall_clock_ = 0.0;
  std::vector<int> workers_;

  struct WorkerIndex {
    IntervalSet compute;
    IntervalSet fp;
    IntervalSet bp;
    IntervalSet comm;
    IntervalSet nic_saturated;
    IntervalSet fault;
    std::vector<const trace::Event*> compute_spans;
    int server = -1;
  };
  std::map<int, WorkerIndex> per_worker_;

  std::vector<const trace::Event*> switch_spans_;
  std::vector<const trace::Event*> aborted_switch_spans_;
  IntervalSet switch_windows_;
  std::vector<double> iteration_marks_;
  std::vector<FlowRecord> flows_;
  std::map<std::string, IntervalSet> saturated_;

  static const IntervalSet kEmptySet;
  static const std::vector<const trace::Event*> kNoSpans;
};

}  // namespace autopipe::analysis
