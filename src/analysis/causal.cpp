#include "analysis/causal.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <ostream>

#include "analysis/json.hpp"
#include "common/expect.hpp"

namespace autopipe::analysis {

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Value of the event's `job` arg, or empty when untagged (single-tenant
/// traces carry no job args at all).
const std::string* job_arg(const trace::Event& ev) {
  for (const trace::Arg& a : ev.args)
    if (a.key == "job") return &a.value;
  return nullptr;
}

/// One-line event descriptor used by the text report.
std::string describe_event(const trace::Event& ev) {
  std::string out = category_name(ev.category);
  out += ':';
  out += ev.name;
  if (ev.phase == 'b') out += "[begin]";
  if (ev.phase == 'e') out += "[end]";
  for (const trace::Arg& a : ev.args) {
    out += ' ';
    out += a.key;
    out += '=';
    out += a.value;
  }
  return out;
}

}  // namespace

std::string classify_edge(const trace::Event& parent,
                          const trace::Event& child) {
  using trace::Category;
  // Cross-job interference outranks every single-tenant class: a causal
  // hop between events tagged with different jobs (an arbiter grant to the
  // winner causing the loser's denial, or the loser's rollback) is tenant
  // contention regardless of the categories involved.
  {
    const std::string* pj = job_arg(parent);
    const std::string* cj = job_arg(child);
    if (pj != nullptr && cj != nullptr && *pj != *cj)
      return "tenant_contention";
  }
  if (parent.category == Category::kFault) {
    if (starts_with(parent.name, "link")) return "link_outage";
    if (starts_with(parent.name, "gpu")) return "gpu_outage";
    return "fault";
  }
  if (parent.category == Category::kResource) return "resource_shift";
  if (parent.category == Category::kSwitch ||
      child.category == Category::kSwitch)
    return "reconfig";
  if (child.category == Category::kMark) return "bubble";
  if (parent.category == Category::kMark) return "iteration_chain";
  if (parent.category == Category::kComm) {
    if (child.category == Category::kComm) return "flow_stall";
    if (child.category == Category::kCompute) return "stage_starve";
  }
  if (parent.category == Category::kCompute) {
    if (child.category == Category::kCompute) return "compute_chain";
    if (child.category == Category::kComm) return "comm_launch";
  }
  if (parent.category == Category::kControl ||
      child.category == Category::kControl)
    return "control";
  return std::string(category_name(parent.category)) + "->" +
         category_name(child.category);
}

CausalGraph::CausalGraph(std::vector<trace::Event> events)
    : events_(std::move(events)) {
  std::uint64_t max_eid = 0;
  for (const trace::Event& ev : events_) max_eid = std::max(max_eid, ev.eid);
  eid_to_index_.assign(static_cast<std::size_t>(max_eid), npos);
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (events_[i].eid == 0) continue;
    ++causal_events_;
    // Last writer wins on a duplicated eid (concatenated traces); the
    // deterministic writer never emits duplicates.
    eid_to_index_[events_[i].eid - 1] = i;
  }
  parent_edge_.assign(events_.size(), npos);
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const trace::Event& child = events_[i];
    if (child.cause == 0) continue;
    const std::size_t p = index_of_eid(child.cause);
    if (p == npos || p == i) {
      ++dangling_causes_;
      continue;
    }
    const trace::Event& parent = events_[p];
    CausalEdge edge;
    edge.parent = p;
    edge.child = i;
    edge.contribution = std::max(0.0, event_end(child) - event_end(parent));
    edge.cls = classify_edge(parent, child);
    parent_edge_[i] = edges_.size();
    edges_.push_back(std::move(edge));
  }
}

std::size_t CausalGraph::index_of_eid(std::uint64_t eid) const {
  if (eid == 0 || eid > eid_to_index_.size()) return npos;
  return eid_to_index_[eid - 1];
}

namespace {

/// Backward walk from `terminal` through recorded causes, root first. The
/// visited guard breaks cycles a corrupt trace could encode.
CausalChain walk_back(const CausalGraph& g, std::size_t terminal) {
  CausalChain chain;
  std::vector<ChainLink> reversed;
  std::vector<bool> visited(g.events().size(), false);
  std::size_t cur = terminal;
  while (cur != CausalGraph::npos && !visited[cur]) {
    visited[cur] = true;
    ChainLink link;
    link.event = cur;
    link.edge = g.parent_edge(cur);
    if (link.edge != CausalGraph::npos)
      link.contribution = g.edges()[link.edge].contribution;
    reversed.push_back(link);
    cur = link.edge != CausalGraph::npos ? g.edges()[link.edge].parent
                                         : CausalGraph::npos;
  }
  chain.links.assign(reversed.rbegin(), reversed.rend());
  if (!chain.links.empty()) {
    chain.links.front().edge = CausalGraph::npos;
    chain.links.front().contribution = 0.0;
    for (const ChainLink& l : chain.links) chain.weighted += l.contribution;
    chain.duration = event_end(g.events()[chain.links.back().event]) -
                     g.events()[chain.links.front().event].ts;
  }
  return chain;
}

/// Latest-ending causal event with end inside [t0, t1], or npos. Later
/// trace position wins a tie, so the pick is deterministic. A non-empty
/// `job` restricts the terminal to events tagged job=<job> — the handle a
/// co-tenant fleet needs to blame one job's slow window rather than
/// whichever tenant happened to finish last.
std::size_t window_terminal(const CausalGraph& g, double t0, double t1,
                            const std::string& job = std::string()) {
  std::size_t best = CausalGraph::npos;
  double best_end = 0.0;
  for (std::size_t i = 0; i < g.events().size(); ++i) {
    const trace::Event& ev = g.events()[i];
    if (ev.eid == 0) continue;
    if (!job.empty()) {
      const std::string* j = job_arg(ev);
      if (j == nullptr || *j != job) continue;
    }
    const double end = event_end(ev);
    if (end < t0 || end > t1) continue;
    if (best == CausalGraph::npos || end >= best_end) {
      best = i;
      best_end = end;
    }
  }
  return best;
}

std::size_t find_root_cause(const CausalGraph& g, const CausalChain& chain) {
  using trace::Category;
  // Cross-job interference wins over the generic fault/resource scan: when
  // the chain crosses a tenant_contention edge, the blamed event is that
  // edge's parent — the arbiter grant whose job= arg names the winning job.
  for (const ChainLink& l : chain.links) {
    if (l.edge == CausalGraph::npos) continue;
    if (g.edges()[l.edge].cls == "tenant_contention")
      return g.edges()[l.edge].parent;
  }
  for (const ChainLink& l : chain.links) {
    const trace::Event& ev = g.events()[l.event];
    // "topology" instants share the fault category but only record the
    // worker->server layout at install time — bookkeeping, not a fault.
    if (ev.name == "topology") continue;
    if (ev.category == Category::kFault || ev.category == Category::kResource)
      return l.event;
  }
  // No injected disturbance on the chain: blame the heaviest hop's cause.
  std::size_t heaviest = CausalGraph::npos;
  double weight = -1.0;
  for (std::size_t i = 1; i < chain.links.size(); ++i) {
    if (chain.links[i].contribution > weight) {
      weight = chain.links[i].contribution;
      heaviest = i;
    }
  }
  if (heaviest == CausalGraph::npos)
    return chain.links.empty() ? CausalGraph::npos : chain.links.front().event;
  return chain.links[heaviest - 1].event;
}

}  // namespace

CausalChain critical_chain(const CausalGraph& g) {
  return walk_back(
      g, window_terminal(g, 0.0, std::numeric_limits<double>::infinity()));
}

BlameReport blame_window(const CausalGraph& g, double t0, double t1) {
  return blame_window(g, t0, t1, 0);
}

BlameReport blame_window(const CausalGraph& g, double t0, double t1,
                         std::uint64_t job) {
  AUTOPIPE_EXPECT_MSG(t1 >= t0, "blame window ends before it begins");
  BlameReport report;
  report.window_begin = t0;
  report.window_end = t1;
  for (const trace::Event& ev : g.events()) {
    if (ev.eid == 0) continue;
    const double end = event_end(ev);
    if (end >= t0 && end <= t1) ++report.window_events;
  }
  const std::size_t terminal = window_terminal(
      g, t0, t1, job > 0 ? std::to_string(job) : std::string());
  if (terminal != CausalGraph::npos) {
    report.chain = walk_back(g, terminal);
    report.root_cause = find_root_cause(g, report.chain);
  }

  std::map<std::string, LedgerEntry> classes;
  for (const CausalEdge& e : g.edges()) {
    const double end = event_end(g.events()[e.child]);
    if (end < t0 || end > t1) continue;
    LedgerEntry& entry = classes[e.cls];
    entry.cls = e.cls;
    entry.seconds += e.contribution;
    ++entry.edges;
    report.ledger_seconds += e.contribution;
  }
  for (auto& [cls, entry] : classes) {
    entry.share = report.ledger_seconds > 0.0
                      ? entry.seconds / report.ledger_seconds
                      : 0.0;
    report.ledger.push_back(entry);
  }
  std::stable_sort(report.ledger.begin(), report.ledger.end(),
                   [](const LedgerEntry& a, const LedgerEntry& b) {
                     if (a.seconds != b.seconds) return a.seconds > b.seconds;
                     return a.cls < b.cls;
                   });
  return report;
}

BlameReport blame_iteration(const CausalGraph& g, const TraceView& view,
                            std::size_t n) {
  const std::vector<double>& marks = view.iteration_marks();
  AUTOPIPE_EXPECT_MSG(n >= 1 && n <= marks.size(),
                      "trace has " << marks.size()
                                   << " iteration marks, cannot blame "
                                      "iteration "
                                   << n);
  const double t0 = n >= 2 ? marks[n - 2] : 0.0;
  return blame_window(g, t0, marks[n - 1]);
}

BlameReport blame_iteration(const CausalGraph& g, std::size_t n,
                            std::uint64_t job) {
  AUTOPIPE_EXPECT(job > 0);
  // The job's own iteration marks, in trace order (the shared TraceView
  // mark list interleaves every tenant's iterations).
  const std::string tag = std::to_string(job);
  std::vector<double> marks;
  for (const trace::Event& ev : g.events()) {
    if (ev.category != trace::Category::kMark || ev.name != "iteration")
      continue;
    const std::string* j = job_arg(ev);
    if (j != nullptr && *j == tag) marks.push_back(ev.ts);
  }
  AUTOPIPE_EXPECT_MSG(n >= 1 && n <= marks.size(),
                      "trace has " << marks.size() << " iteration marks for "
                                   << "job " << job
                                   << ", cannot blame iteration " << n);
  const double t0 = n >= 2 ? marks[n - 2] : 0.0;
  return blame_window(g, t0, marks[n - 1], job);
}

void render_blame(const BlameReport& report, const CausalGraph& g,
                  std::size_t top, std::ostream& os) {
  using trace::format_double;
  os << "blame window [" << format_double(report.window_begin) << ", "
     << format_double(report.window_end) << "]: " << report.window_events
     << " causal events\n";
  if (report.chain.links.empty()) {
    os << "no causal events in window (pre-causality trace, or tracing "
          "was off)\n";
    return;
  }
  if (report.root_cause != CausalGraph::npos) {
    const trace::Event& rc = g.events()[report.root_cause];
    os << "root cause: " << describe_event(rc)
       << " at t=" << format_double(rc.ts) << " (eid " << rc.eid << ")\n";
  }
  os << "dominant chain: " << report.chain.links.size() << " links, "
     << format_double(report.chain.weighted) << " s weighted, spanning "
     << format_double(report.chain.duration) << " s\n";
  // Print the chain's heaviest hops in causal order; everything below 1%
  // of the chain's weight is noise here (the JSON report keeps it all).
  const double floor = report.chain.weighted * 0.01;
  std::vector<std::size_t> shown;
  for (std::size_t i = 0; i < report.chain.links.size(); ++i) {
    const ChainLink& l = report.chain.links[i];
    if (i == 0 || l.contribution > floor) shown.push_back(i);
  }
  if (shown.size() > top) {
    // Keep the root and the `top` heaviest of the rest, in causal order.
    std::vector<std::size_t> rest(shown.begin() + 1, shown.end());
    std::stable_sort(rest.begin(), rest.end(),
                     [&](std::size_t a, std::size_t b) {
                       return report.chain.links[a].contribution >
                              report.chain.links[b].contribution;
                     });
    rest.resize(top - 1);
    std::sort(rest.begin(), rest.end());
    shown.assign(1, shown.front());
    shown.insert(shown.end(), rest.begin(), rest.end());
  }
  std::size_t omitted = report.chain.links.size() - shown.size();
  for (std::size_t i : shown) {
    const ChainLink& l = report.chain.links[i];
    const trace::Event& ev = g.events()[l.event];
    if (i == 0) {
      os << "  root  t=" << format_double(ev.ts) << "  " << describe_event(ev)
         << " (eid " << ev.eid << ")\n";
      continue;
    }
    const CausalEdge& e = g.edges()[l.edge];
    os << "  +" << format_double(l.contribution) << " s  [" << e.cls << "]  "
       << describe_event(ev) << " ends t="
       << format_double(event_end(ev)) << " (eid " << ev.eid << ")\n";
  }
  if (omitted > 0) os << "  (" << omitted << " lighter links omitted)\n";
  os << "stall ledger (edges ending in window, "
     << format_double(report.ledger_seconds) << " s total):\n";
  for (const LedgerEntry& entry : report.ledger) {
    os << "  " << entry.cls << "  " << format_double(entry.seconds) << " s  "
       << format_double(entry.share * 100.0) << "%  (" << entry.edges
       << (entry.edges == 1 ? " edge)" : " edges)") << "\n";
  }
}

void write_blame_json(const BlameReport& report, const CausalGraph& g,
                      std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "autopipe-blame-v1");
  w.kv("window_begin", report.window_begin);
  w.kv("window_end", report.window_end);
  w.kv("window_events", report.window_events);
  if (report.root_cause != CausalGraph::npos) {
    const trace::Event& rc = g.events()[report.root_cause];
    w.key("root_cause");
    w.begin_object();
    w.kv("eid", rc.eid);
    w.kv("category", category_name(rc.category));
    w.kv("name", rc.name);
    w.kv("ts", rc.ts);
    w.end();
  }
  w.key("chain");
  w.begin_object();
  w.kv("weighted_seconds", report.chain.weighted);
  w.kv("duration_seconds", report.chain.duration);
  w.key("links");
  w.begin_array();
  for (const ChainLink& l : report.chain.links) {
    const trace::Event& ev = g.events()[l.event];
    w.begin_object();
    w.kv("eid", ev.eid);
    w.kv("cause", ev.cause);
    w.kv("category", category_name(ev.category));
    w.kv("name", ev.name);
    w.kv("end", event_end(ev));
    w.kv("contribution_seconds", l.contribution);
    if (l.edge != CausalGraph::npos)
      w.kv("class", g.edges()[l.edge].cls);
    w.end();
  }
  w.end();  // links
  w.end();  // chain
  w.key("ledger");
  w.begin_array();
  for (const LedgerEntry& entry : report.ledger) {
    w.begin_object();
    w.kv("class", entry.cls);
    w.kv("seconds", entry.seconds);
    w.kv("share", entry.share);
    w.kv("edges", entry.edges);
    w.end();
  }
  w.end();  // ledger
  w.kv("ledger_seconds", report.ledger_seconds);
  w.end();
}

}  // namespace autopipe::analysis
