// Bubble attribution: every second a worker's GPU is not computing is
// classified into the taxonomy the paper's figures argue about — pipeline
// startup fill, steady-state stalls on upstream activations or downstream
// gradients, stalls while the worker's NIC was saturated (network
// contention), reconfiguration drain inside a partition switch, and the
// tail after the worker's last task. Classes partition [0, wall_clock)
// exactly: per worker, busy + all classes == wall within float rounding,
// which the analysis tests assert.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "analysis/interval.hpp"
#include "analysis/trace_view.hpp"

namespace autopipe::analysis {

enum class BubbleClass {
  kStartupFill = 0,   ///< before the worker's first compute span
  kReconfigDrain,     ///< inside a partition-switch span
  kNetContention,     ///< the worker's NIC (or PCIe) was saturated
  kUpstreamStall,     ///< waiting on an activation (next span is fp)
  kDownstreamStall,   ///< waiting on a gradient (next span is bp)
  kDrainTail,         ///< after the worker's last compute span
  kFaultDowntime,     ///< inside a fault window (GPU/link outage or wedge)
};
inline constexpr std::size_t kNumBubbleClasses = 7;

/// Short stable name used in tables and JSON ("startup_fill", ...).
const char* bubble_class_name(BubbleClass cls);

struct WorkerBubbles {
  int worker = -1;
  double busy_seconds = 0.0;
  /// Idle seconds per class, indexed by BubbleClass.
  std::array<double, kNumBubbleClasses> seconds{};
  /// The classified windows themselves (for timelines/gantt).
  std::array<IntervalSet, kNumBubbleClasses> windows;
  double idle_seconds() const;
};

struct BubbleReport {
  double wall_clock = 0.0;
  std::vector<WorkerBubbles> workers;
  /// Sums across workers.
  double total_busy = 0.0;
  std::array<double, kNumBubbleClasses> totals{};
  double total_idle() const;
};

/// Classify every idle gap on every worker.
BubbleReport attribute_bubbles(const TraceView& view);

}  // namespace autopipe::analysis
