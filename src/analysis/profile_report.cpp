#include "analysis/profile_report.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "analysis/json.hpp"
#include "common/table.hpp"

namespace autopipe::analysis {

namespace {

std::string category_of(const std::string& name) {
  return name.substr(0, name.find('/'));
}

/// Per-thread exclusive-time reconstruction: spans sorted by start (parents
/// before children via duration tie-break), a stack of open spans; each
/// span's duration is subtracted from its direct parent's exclusive time.
struct ThreadAttribution {
  std::vector<std::uint64_t> exclusive;  ///< per span, same indexing
  /// Span indices whose parent chain holds no span of the same category —
  /// the spans whose durations sum to the category's inclusive time.
  std::vector<bool> category_root;
};

ThreadAttribution attribute_thread(const std::vector<prof::Span>& spans) {
  std::vector<std::size_t> order(spans.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (spans[a].start_ns != spans[b].start_ns)
      return spans[a].start_ns < spans[b].start_ns;
    return spans[a].dur_ns > spans[b].dur_ns;
  });

  ThreadAttribution out;
  out.exclusive.resize(spans.size());
  out.category_root.assign(spans.size(), true);
  for (std::size_t i = 0; i < spans.size(); ++i)
    out.exclusive[i] = spans[i].dur_ns;

  std::vector<std::size_t> stack;  // open span indices, outermost first
  for (const std::size_t i : order) {
    const prof::Span& s = spans[i];
    while (!stack.empty() &&
           spans[stack.back()].start_ns + spans[stack.back()].dur_ns <=
               s.start_ns) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      const std::size_t parent = stack.back();
      out.exclusive[parent] -= std::min(out.exclusive[parent], s.dur_ns);
      const std::string cat = category_of(s.name);
      for (const std::size_t open : stack) {
        if (category_of(spans[open].name) == cat) {
          out.category_root[i] = false;
          break;
        }
      }
    }
    stack.push_back(i);
  }
  return out;
}

}  // namespace

ProfileReport build_profile_report(
    const std::vector<prof::ThreadProfile>& profiles) {
  ProfileReport report;
  report.threads = profiles.size();

  std::map<std::string, ProfileEntry> by_name;
  std::map<std::string, ProfileEntry> by_category;

  for (const prof::ThreadProfile& tp : profiles) {
    const ThreadAttribution attr = attribute_thread(tp.spans);
    for (std::size_t i = 0; i < tp.spans.size(); ++i) {
      const prof::Span& s = tp.spans[i];
      ProfileEntry& e = by_name[s.name];
      e.name = s.name;
      ++e.count;
      e.inclusive_ns += s.dur_ns;
      e.exclusive_ns += attr.exclusive[i];
      const std::string cat = category_of(s.name);
      ProfileEntry& c = by_category[cat];
      c.name = cat;
      ++c.count;
      if (attr.category_root[i]) c.inclusive_ns += s.dur_ns;
      c.exclusive_ns += attr.exclusive[i];
      if (s.depth == 0) report.total_ns += s.dur_ns;
    }
    for (const prof::Aggregate& a : tp.aggregates) {
      ProfileEntry& e = by_name[a.name];
      e.name = a.name;
      e.count += a.count;
      e.inclusive_ns += a.total_ns;
      e.exclusive_ns += a.total_ns;
      e.aggregate_only = true;
      const std::string cat = category_of(a.name);
      ProfileEntry& c = by_category[cat];
      c.name = cat;
      c.count += a.count;
      c.inclusive_ns += a.total_ns;
      c.exclusive_ns += a.total_ns;
      report.total_ns += a.total_ns;
    }
  }

  for (auto& [name, e] : by_name) report.spans.push_back(std::move(e));
  for (auto& [name, e] : by_category)
    report.categories.push_back(std::move(e));
  std::sort(report.spans.begin(), report.spans.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              if (a.inclusive_ns != b.inclusive_ns)
                return a.inclusive_ns > b.inclusive_ns;
              return a.name < b.name;
            });
  std::sort(report.categories.begin(), report.categories.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              if (a.exclusive_ns != b.exclusive_ns)
                return a.exclusive_ns > b.exclusive_ns;
              return a.name < b.name;
            });
  return report;
}

std::vector<prof::ThreadProfile> read_profile_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good())
    throw std::runtime_error("cannot open profile file '" + path + "'");
  return prof::read_text(in);
}

std::vector<prof::Span> top_spans(
    const std::vector<prof::ThreadProfile>& profiles, std::size_t n) {
  std::vector<prof::Span> all;
  for (const prof::ThreadProfile& tp : profiles)
    all.insert(all.end(), tp.spans.begin(), tp.spans.end());
  std::sort(all.begin(), all.end(),
            [](const prof::Span& a, const prof::Span& b) {
              if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
              return a.start_ns < b.start_ns;
            });
  if (all.size() > n) all.resize(n);
  return all;
}

namespace {

std::string ms(std::uint64_t ns) {
  return TextTable::num(static_cast<double>(ns) / 1e6, 3);
}

}  // namespace

void render_profile(const ProfileReport& report,
                    const std::vector<prof::ThreadProfile>& profiles,
                    std::size_t top_n, std::ostream& os) {
  TextTable categories({"category", "calls", "inclusive(ms)",
                        "exclusive(ms)", "excl %"});
  for (const ProfileEntry& e : report.categories) {
    const double pct =
        report.total_ns == 0
            ? 0.0
            : static_cast<double>(e.exclusive_ns) /
                  static_cast<double>(report.total_ns) * 100.0;
    categories.add_row({e.name, std::to_string(e.count), ms(e.inclusive_ns),
                        ms(e.exclusive_ns), TextTable::num(pct, 1)});
  }
  categories.print(os, "host profile: " + std::to_string(report.threads) +
                           " thread(s), total " + ms(report.total_ns) +
                           " ms");

  TextTable spans({"span", "calls", "inclusive(ms)", "exclusive(ms)",
                   "ns/call", "kind"});
  for (const ProfileEntry& e : report.spans) {
    spans.add_row({e.name, std::to_string(e.count), ms(e.inclusive_ns),
                   ms(e.exclusive_ns),
                   TextTable::num(span_ns_per_call(report, e.name), 0),
                   e.aggregate_only ? "agg" : "span"});
  }
  os << "\n";
  spans.print(os, "per-span");

  const auto top = top_spans(profiles, top_n);
  if (!top.empty()) {
    os << "\ntop " << top.size() << " individual spans:\n";
    for (const prof::Span& s : top) {
      os << "  " << s.name << "  " << ms(s.dur_ns) << " ms at +"
         << ms(s.start_ns) << " ms (depth " << s.depth << ")\n";
    }
  }
}

void write_profile_json(const ProfileReport& report, std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "autopipe-profile-report-v1");
  w.kv("threads", report.threads);
  w.kv("total_ns", report.total_ns);
  const auto entries = [&w](const char* key,
                            const std::vector<ProfileEntry>& list,
                            const ProfileReport& r) {
    w.key(key);
    w.begin_array();
    for (const ProfileEntry& e : list) {
      w.begin_object();
      w.kv("name", e.name);
      w.kv("count", e.count);
      w.kv("inclusive_ns", e.inclusive_ns);
      w.kv("exclusive_ns", e.exclusive_ns);
      w.kv("ns_per_call", e.count == 0
                              ? 0.0
                              : static_cast<double>(e.inclusive_ns) /
                                    static_cast<double>(e.count));
      w.kv("aggregate_only", e.aggregate_only);
      w.end();
    }
    w.end();
    (void)r;
  };
  entries("categories", report.categories, report);
  entries("spans", report.spans, report);
  w.end();
  os << "\n";
}

void write_collapsed_stacks(const std::vector<prof::ThreadProfile>& profiles,
                            std::ostream& os) {
  // Re-run the stack reconstruction and emit one line per span with its
  // full open-span path and exclusive nanoseconds — the folded format
  // flamegraph.pl and speedscope ingest directly.
  std::map<std::string, std::uint64_t> folded;
  for (const prof::ThreadProfile& tp : profiles) {
    const ThreadAttribution attr = attribute_thread(tp.spans);
    std::vector<std::size_t> order(tp.spans.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                if (tp.spans[a].start_ns != tp.spans[b].start_ns)
                  return tp.spans[a].start_ns < tp.spans[b].start_ns;
                return tp.spans[a].dur_ns > tp.spans[b].dur_ns;
              });
    std::vector<std::size_t> stack;
    for (const std::size_t i : order) {
      const prof::Span& s = tp.spans[i];
      while (!stack.empty() &&
             tp.spans[stack.back()].start_ns +
                     tp.spans[stack.back()].dur_ns <=
                 s.start_ns) {
        stack.pop_back();
      }
      std::string path;
      for (const std::size_t open : stack)
        path += tp.spans[open].name + ";";
      path += s.name;
      folded[path] += attr.exclusive[i];
      stack.push_back(i);
    }
    for (const prof::Aggregate& a : tp.aggregates)
      folded[a.name] += a.total_ns;
  }
  for (const auto& [path, ns] : folded) os << path << " " << ns << "\n";
}

double span_ns_per_call(const ProfileReport& report,
                        const std::string& name) {
  for (const ProfileEntry& e : report.spans) {
    if (e.name == name && e.count > 0)
      return static_cast<double>(e.inclusive_ns) /
             static_cast<double>(e.count);
  }
  return 0.0;
}

}  // namespace autopipe::analysis
