#include "analysis/gantt.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/bubbles.hpp"
#include "common/expect.hpp"
#include "common/trace.hpp"

namespace autopipe::analysis {

namespace {

constexpr char kClassChar[kNumBubbleClasses] = {'-', '!', '#', '<',
                                                '>', '.', 'X'};

char dominant_char(const IntervalSet& fp, const IntervalSet& bp,
                   const std::array<IntervalSet, kNumBubbleClasses>& idle,
                   double lo, double hi) {
  char best = ' ';
  double best_overlap = 0.0;
  auto consider = [&](const IntervalSet& set, char c) {
    const double o = set.overlap(lo, hi);
    if (o > best_overlap) {
      best_overlap = o;
      best = c;
    }
  };
  consider(fp, 'F');
  consider(bp, 'B');
  for (std::size_t c = 0; c < kNumBubbleClasses; ++c) {
    consider(idle[c], kClassChar[c]);
  }
  return best;
}

std::string render_gantt_impl(const TraceView& view, std::size_t width,
                              const trace::DecisionLedger* ledger);

}  // namespace

std::string render_gantt(const TraceView& view, std::size_t width) {
  return render_gantt_impl(view, width, nullptr);
}

std::string render_gantt(const TraceView& view,
                         const trace::DecisionLedger& ledger,
                         std::size_t width) {
  return render_gantt_impl(view, width, &ledger);
}

namespace {

std::string render_gantt_impl(const TraceView& view, std::size_t width,
                              const trace::DecisionLedger* ledger) {
  AUTOPIPE_EXPECT(width > 0);
  std::ostringstream os;
  const double wall = view.wall_clock();
  if (wall <= 0.0 || view.workers().empty()) {
    os << "empty trace\n";
    return os.str();
  }
  const double cell = wall / static_cast<double>(width);
  const BubbleReport bubbles = attribute_bubbles(view);

  std::size_t label_width = 0;
  for (int worker : view.workers()) {
    label_width = std::max(label_width,
                           1 + std::to_string(worker).size());
  }

  // Ruler: '|' where an iteration completes, 'S' inside a switch window.
  os << std::string(label_width, ' ') << ' ';
  const std::vector<double>& marks = view.iteration_marks();
  for (std::size_t i = 0; i < width; ++i) {
    const double lo = cell * static_cast<double>(i);
    const double hi = i + 1 == width ? wall : lo + cell;
    char c = ' ';
    if (view.switch_windows().overlap(lo, hi) > 0.0) c = 'S';
    const bool has_mark =
        std::lower_bound(marks.begin(), marks.end(), lo) !=
        std::lower_bound(marks.begin(), marks.end(), hi);
    if (has_mark) c = '|';
    os << c;
  }
  os << '\n';

  // Decision row: one mark per planning round in the ledger, switch
  // verdicts drawn over holds when both land in a cell.
  if (ledger != nullptr && !ledger->empty()) {
    os << std::string(label_width, ' ') << ' ';
    for (std::size_t i = 0; i < width; ++i) {
      const double lo = cell * static_cast<double>(i);
      const double hi = i + 1 == width ? wall : lo + cell;
      char c = ' ';
      for (const trace::DecisionRecord& rec : ledger->records()) {
        if (rec.time < lo || rec.time >= hi) continue;
        if (rec.action == trace::DecisionAction::kSwitch) {
          c = '^';
          break;
        }
        c = '.';
      }
      os << c;
    }
    os << '\n';
  }

  for (const WorkerBubbles& wb : bubbles.workers) {
    std::string label = "w" + std::to_string(wb.worker);
    os << label << std::string(label_width - label.size(), ' ') << ' ';
    const IntervalSet& fp = view.fp_busy(wb.worker);
    const IntervalSet& bp = view.bp_busy(wb.worker);
    for (std::size_t i = 0; i < width; ++i) {
      const double lo = cell * static_cast<double>(i);
      const double hi = i + 1 == width ? wall : lo + cell;
      os << dominant_char(fp, bp, wb.windows, lo, hi);
    }
    os << '\n';
  }

  os << '\n'
     << "F fp  B bp  - startup  ! reconfig drain  # net contention  "
        "< upstream stall  > downstream stall  . tail   "
        "ruler: | iteration  S switch\n";
  if (ledger != nullptr && !ledger->empty())
    os << "decision row: ^ switch verdict  . hold\n";
  os << "scale: 1 cell = " << trace::format_double(cell) << " s, run = "
     << trace::format_double(wall) << " s\n";
  return os.str();
}

}  // namespace

}  // namespace autopipe::analysis
