#include "analysis/report.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

#include "analysis/json.hpp"
#include "common/expect.hpp"
#include "common/table.hpp"
#include "common/trace.hpp"

namespace autopipe::analysis {

RunAnalysis analyze(const TraceView& view, std::size_t switch_window) {
  RunAnalysis a;
  a.wall_clock = view.wall_clock();
  a.num_events = view.events().size();
  a.iterations = view.iteration_marks().size();

  const std::vector<double>& marks = view.iteration_marks();
  for (std::size_t i = 1; i < marks.size(); ++i) {
    a.iteration_times.add(marks[i] - marks[i - 1]);
  }
  for (const FlowRecord& f : view.flows()) {
    if (f.cancelled) continue;
    ++a.flows;
    a.flow_bytes += f.bytes;
    a.flow_durations.add(f.end - f.begin);
  }

  for (int worker : view.workers()) {
    WorkerUtilization u;
    u.worker = worker;
    u.server = view.server_of(worker);
    const IntervalSet& compute = view.compute_busy(worker);
    u.compute_seconds = compute.total();
    u.comm_seconds = view.comm_busy(worker).subtract(compute).total();
    u.idle_seconds =
        std::max(0.0, a.wall_clock - u.compute_seconds - u.comm_seconds);
    if (a.wall_clock > 0.0) {
      u.compute_frac = u.compute_seconds / a.wall_clock;
      u.comm_frac = u.comm_seconds / a.wall_clock;
      u.idle_frac = 1.0 - u.compute_frac - u.comm_frac;
    }
    a.utilization.push_back(u);
  }

  a.bubbles = attribute_bubbles(view);
  a.critical_path = extract_critical_path(view);
  a.switches = switch_post_mortems(view, switch_window);
  return a;
}

std::vector<UtilizationWindow> utilization_timeline(const TraceView& view,
                                                    std::size_t windows) {
  AUTOPIPE_EXPECT(windows > 0);
  std::vector<UtilizationWindow> out;
  const double wall = view.wall_clock();
  if (wall <= 0.0) return out;
  const double step = wall / static_cast<double>(windows);
  for (std::size_t i = 0; i < windows; ++i) {
    UtilizationWindow w;
    w.begin = step * static_cast<double>(i);
    w.end = i + 1 == windows ? wall : step * static_cast<double>(i + 1);
    for (int worker : view.workers()) {
      const double busy =
          view.compute_busy(worker).overlap(w.begin, w.end);
      w.compute_frac.push_back(w.end > w.begin ? busy / (w.end - w.begin)
                                               : 0.0);
    }
    out.push_back(std::move(w));
  }
  return out;
}

// --- rendering ---------------------------------------------------------------

namespace {

std::string fmt(double v) { return trace::format_double(v); }

void histogram_rows(TextTable& t, const std::string& what,
                    const Histogram& h) {
  const Histogram::Summary s = h.summary();
  t.add_row({what + " count", std::to_string(s.count)});
  if (s.count == 0) return;
  t.add_row({what + " mean", fmt(s.mean)});
  t.add_row({what + " p50", fmt(s.p50)});
  t.add_row({what + " p95", fmt(s.p95)});
  t.add_row({what + " p99", fmt(s.p99)});
  t.add_row({what + " max", fmt(s.max)});
}

void histogram_json(JsonWriter& w, const Histogram& h) {
  const Histogram::Summary s = h.summary();
  w.begin_object();
  w.kv("count", s.count);
  w.kv("mean", s.mean);
  w.kv("min", s.min);
  w.kv("p50", s.p50);
  w.kv("p95", s.p95);
  w.kv("p99", s.p99);
  w.kv("max", s.max);
  w.end();
}

}  // namespace

std::string render_summary_text(const RunAnalysis& a) {
  std::ostringstream os;
  TextTable run({"metric", "value"});
  run.add_row({"wall clock (s)", fmt(a.wall_clock)});
  run.add_row({"events", std::to_string(a.num_events)});
  run.add_row({"iterations", std::to_string(a.iterations)});
  histogram_rows(run, "iteration time (s)", a.iteration_times);
  run.add_row({"flows completed", std::to_string(a.flows)});
  run.add_row({"flow bytes", fmt(a.flow_bytes)});
  histogram_rows(run, "flow duration (s)", a.flow_durations);
  run.add_row({"switches", std::to_string(a.switches.size())});
  run.print(os, "run summary");

  os << '\n';
  TextTable util({"worker", "server", "compute", "comm", "idle"});
  for (const WorkerUtilization& u : a.utilization) {
    util.add_row({std::to_string(u.worker),
                  u.server < 0 ? "?" : std::to_string(u.server),
                  TextTable::num(u.compute_frac, 4),
                  TextTable::num(u.comm_frac, 4),
                  TextTable::num(u.idle_frac, 4)});
  }
  util.print(os, "per-worker utilization (fraction of wall clock)");

  os << '\n' << render_bubbles_text(a);
  return os.str();
}

std::string render_bubbles_text(const RunAnalysis& a) {
  std::ostringstream os;
  std::vector<std::string> header = {"worker", "busy"};
  for (std::size_t c = 0; c < kNumBubbleClasses; ++c) {
    header.push_back(bubble_class_name(static_cast<BubbleClass>(c)));
  }
  header.push_back("wall");
  TextTable t(std::move(header));
  auto row = [&t](const std::string& who, double busy,
                  const std::array<double, kNumBubbleClasses>& seconds,
                  double wall) {
    std::vector<std::string> cells = {who, TextTable::num(busy, 6)};
    for (double s : seconds) cells.push_back(TextTable::num(s, 6));
    cells.push_back(TextTable::num(wall, 6));
    t.add_row(std::move(cells));
  };
  for (const WorkerBubbles& w : a.bubbles.workers) {
    row("w" + std::to_string(w.worker), w.busy_seconds, w.seconds,
        w.busy_seconds + w.idle_seconds());
  }
  row("total", a.bubbles.total_busy, a.bubbles.totals,
      a.bubbles.total_busy + a.bubbles.total_idle());
  t.print(os, "bubble attribution (seconds)");
  return os.str();
}

std::string render_critical_path_text(const RunAnalysis& a,
                                      std::size_t top) {
  std::ostringstream os;
  TextTable t({"rank", "segment", "seconds", "share", "count"});
  std::size_t rank = 0;
  for (const PathEntry& e : a.critical_path.entries) {
    if (rank >= top) break;
    ++rank;
    t.add_row({std::to_string(rank), e.key, fmt(e.seconds),
               TextTable::num(e.share * 100.0, 1) + "%",
               std::to_string(e.segments)});
  }
  t.print(os, "critical path (" + fmt(a.critical_path.span_seconds) +
                  "s spans + " + fmt(a.critical_path.wait_seconds) +
                  "s waits over " + fmt(a.wall_clock) + "s wall)");
  return os.str();
}

std::string render_switches_text(const RunAnalysis& a) {
  std::ostringstream os;
  if (a.switches.empty()) {
    os << "no partition switches in this trace\n";
    return os.str();
  }
  TextTable t({"#", "mode", "outcome", "at (s)", "duration (s)",
               "migrated (MB)", "iters during", "period before",
               "period after", "speedup", "stall (s)", "payback (iters)"});
  for (const SwitchPostMortem& s : a.switches) {
    const std::string outcome =
        s.aborted ? "aborted_" + s.abort_phase +
                        (s.abort_reason.empty() ? "" : " (" + s.abort_reason +
                                                           ")")
                  : "committed";
    t.add_row({std::to_string(s.index), s.mode.empty() ? "?" : s.mode,
               outcome, fmt(s.request_ts), fmt(s.duration),
               TextTable::num(s.migration_bytes / 1e6, 3),
               std::to_string(s.iterations_during), fmt(s.period_before),
               fmt(s.period_after), TextTable::num(s.speedup_pct, 1) + "%",
               fmt(s.stall_seconds),
               s.payback_iterations < 0.0
                   ? "never"
                   : TextTable::num(s.payback_iterations, 1)});
  }
  t.print(os, "switch post-mortems");
  return os.str();
}

namespace {

void utilization_json(JsonWriter& w, const RunAnalysis& a) {
  w.begin_array();
  for (const WorkerUtilization& u : a.utilization) {
    w.begin_object();
    w.kv("worker", u.worker);
    w.kv("server", u.server);
    w.kv("compute_seconds", u.compute_seconds);
    w.kv("comm_seconds", u.comm_seconds);
    w.kv("idle_seconds", u.idle_seconds);
    w.kv("compute_frac", u.compute_frac);
    w.kv("comm_frac", u.comm_frac);
    w.kv("idle_frac", u.idle_frac);
    w.end();
  }
  w.end();
}

// `schema` is emitted as the first key when the object is a top-level
// payload; pass nullptr when nesting inside the summary.
void bubbles_json(JsonWriter& w, const RunAnalysis& a,
                  const char* schema = nullptr) {
  w.begin_object();
  if (schema != nullptr) w.kv("schema", schema);
  w.kv("wall_clock", a.bubbles.wall_clock);
  w.key("workers");
  w.begin_array();
  for (const WorkerBubbles& wb : a.bubbles.workers) {
    w.begin_object();
    w.kv("worker", wb.worker);
    w.kv("busy_seconds", wb.busy_seconds);
    for (std::size_t c = 0; c < kNumBubbleClasses; ++c) {
      w.kv(bubble_class_name(static_cast<BubbleClass>(c)), wb.seconds[c]);
    }
    w.kv("idle_seconds", wb.idle_seconds());
    w.end();
  }
  w.end();
  w.key("totals");
  w.begin_object();
  w.kv("busy_seconds", a.bubbles.total_busy);
  for (std::size_t c = 0; c < kNumBubbleClasses; ++c) {
    w.kv(bubble_class_name(static_cast<BubbleClass>(c)),
         a.bubbles.totals[c]);
  }
  w.kv("idle_seconds", a.bubbles.total_idle());
  w.end();
  w.end();
}

void critical_path_json(JsonWriter& w, const RunAnalysis& a,
                        const char* schema = nullptr) {
  w.begin_object();
  if (schema != nullptr) w.kv("schema", schema);
  w.kv("span_seconds", a.critical_path.span_seconds);
  w.kv("wait_seconds", a.critical_path.wait_seconds);
  w.kv("segments", a.critical_path.segments.size());
  w.key("entries");
  w.begin_array();
  for (const PathEntry& e : a.critical_path.entries) {
    w.begin_object();
    w.kv("key", e.key);
    w.kv("seconds", e.seconds);
    w.kv("share", e.share);
    w.kv("count", e.segments);
    w.end();
  }
  w.end();
  w.end();
}

void switches_json(JsonWriter& w, const RunAnalysis& a) {
  w.begin_array();
  for (const SwitchPostMortem& s : a.switches) {
    w.begin_object();
    w.kv("index", s.index);
    w.kv("mode", s.mode);
    w.kv("aborted", s.aborted);
    if (s.aborted) {
      w.kv("abort_phase", s.abort_phase);
      w.kv("abort_reason", s.abort_reason);
    }
    w.kv("request_ts", s.request_ts);
    w.kv("finish_ts", s.finish_ts);
    w.kv("duration", s.duration);
    w.kv("migration_bytes", s.migration_bytes);
    w.kv("migration_pairs", s.migration_pairs);
    w.kv("iterations_during", s.iterations_during);
    w.kv("period_before", s.period_before);
    w.kv("period_after", s.period_after);
    w.kv("speedup_pct", s.speedup_pct);
    w.kv("stall_seconds", s.stall_seconds);
    w.kv("payback_iterations", s.payback_iterations);
    w.end();
  }
  w.end();
}

}  // namespace

void write_summary_json(const RunAnalysis& a, std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "autopipe-summary-v1");
  w.kv("wall_clock", a.wall_clock);
  w.kv("events", a.num_events);
  w.kv("iterations", a.iterations);
  w.key("iteration_time");
  histogram_json(w, a.iteration_times);
  w.kv("flows", a.flows);
  w.kv("flow_bytes", a.flow_bytes);
  w.key("flow_duration");
  histogram_json(w, a.flow_durations);
  w.key("utilization");
  utilization_json(w, a);
  w.key("bubbles");
  bubbles_json(w, a);
  w.key("critical_path");
  critical_path_json(w, a);
  w.key("switches");
  switches_json(w, a);
  w.end();
}

void write_bubbles_json(const RunAnalysis& a, std::ostream& os) {
  JsonWriter w(os);
  bubbles_json(w, a, "autopipe-bubbles-v1");
}

void write_critical_path_json(const RunAnalysis& a, std::ostream& os) {
  JsonWriter w(os);
  critical_path_json(w, a, "autopipe-critical-path-v1");
}

void write_switches_json(const RunAnalysis& a, std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "autopipe-switches-v1");
  w.key("switches");
  switches_json(w, a);
  w.end();
}

// --- run comparison ----------------------------------------------------------

std::vector<std::pair<std::string, double>> flatten(const RunAnalysis& a) {
  std::vector<std::pair<std::string, double>> out;
  auto put = [&out](const std::string& key, double value) {
    out.emplace_back(key, value);
  };
  put("wall_clock", a.wall_clock);
  put("events", static_cast<double>(a.num_events));
  put("iterations", static_cast<double>(a.iterations));
  if (!a.iteration_times.empty()) {
    put("iteration_time.mean", a.iteration_times.mean());
    put("iteration_time.p50", a.iteration_times.p50());
    put("iteration_time.p95", a.iteration_times.p95());
    put("iteration_time.p99", a.iteration_times.p99());
  }
  put("flows", static_cast<double>(a.flows));
  put("flow_bytes", a.flow_bytes);
  for (const WorkerUtilization& u : a.utilization) {
    const std::string base = "w" + std::to_string(u.worker) + ".";
    put(base + "compute_seconds", u.compute_seconds);
    put(base + "comm_seconds", u.comm_seconds);
    put(base + "idle_seconds", u.idle_seconds);
  }
  for (const WorkerBubbles& wb : a.bubbles.workers) {
    const std::string base =
        "w" + std::to_string(wb.worker) + ".bubble.";
    for (std::size_t c = 0; c < kNumBubbleClasses; ++c) {
      put(base + bubble_class_name(static_cast<BubbleClass>(c)),
          wb.seconds[c]);
    }
  }
  put("critical_path.span_seconds", a.critical_path.span_seconds);
  put("critical_path.wait_seconds", a.critical_path.wait_seconds);
  for (const PathEntry& e : a.critical_path.entries) {
    put("critical_path." + e.key, e.seconds);
  }
  put("switches", static_cast<double>(a.switches.size()));
  for (const SwitchPostMortem& s : a.switches) {
    const std::string base = "switch" + std::to_string(s.index) + ".";
    put(base + "duration", s.duration);
    put(base + "migration_bytes", s.migration_bytes);
    put(base + "stall_seconds", s.stall_seconds);
    put(base + "period_before", s.period_before);
    put(base + "period_after", s.period_after);
    put(base + "payback_iterations", s.payback_iterations);
  }
  return out;
}

std::vector<DiffEntry> diff_analyses(const RunAnalysis& a,
                                     const RunAnalysis& b,
                                     double tolerance) {
  std::map<std::string, std::pair<double, double>> merged;
  for (const auto& [key, value] : flatten(a)) merged[key].first = value;
  for (const auto& [key, value] : flatten(b)) merged[key].second = value;
  std::vector<DiffEntry> out;
  for (const auto& [key, values] : merged) {
    const double delta = values.second - values.first;
    if (delta > tolerance || delta < -tolerance) {
      out.push_back(DiffEntry{key, values.first, values.second});
    }
  }
  return out;
}

std::string render_diff_text(const std::vector<DiffEntry>& deltas) {
  std::ostringstream os;
  if (deltas.empty()) {
    os << "no differences\n";
    return os.str();
  }
  TextTable t({"key", "run A", "run B", "delta"});
  for (const DiffEntry& d : deltas) {
    t.add_row({d.key, fmt(d.a), fmt(d.b), fmt(d.b - d.a)});
  }
  t.print(os, std::to_string(deltas.size()) + " differing metrics");
  return os.str();
}

void write_diff_json(const std::vector<DiffEntry>& deltas,
                     std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "autopipe-diff-v1");
  w.kv("identical", deltas.empty());
  w.kv("differing", deltas.size());
  w.key("deltas");
  w.begin_array();
  for (const DiffEntry& d : deltas) {
    w.begin_object();
    w.kv("key", d.key);
    w.kv("a", d.a);
    w.kv("b", d.b);
    w.kv("delta", d.b - d.a);
    w.end();
  }
  w.end();
  w.end();
}

}  // namespace autopipe::analysis
