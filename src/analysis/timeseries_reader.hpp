// Reader + reporting for autopipe-ts-v1 metric time-series (the columnar
// text written by trace::TimeSeriesSampler — see docs/TELEMETRY.md).
// Backs `autopipe_trace timeseries`: per-column stats, an ASCII sparkline
// dashboard, and anomaly detection ("speed dropped >X% with no decision
// activity in the window").
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace autopipe::analysis {

/// Parsed time-series. columns[0] is always "time"; every row has exactly
/// columns.size() values.
struct TimeSeries {
  double interval = 0.0;
  std::vector<std::string> columns;
  std::vector<std::vector<double>> rows;

  /// Index of `name` in columns; columns.size() when absent.
  std::size_t column_index(const std::string& name) const;
  /// All values of one column, row order.
  std::vector<double> column(std::size_t index) const;
};

/// Parse write_text output. Throws std::runtime_error on malformed input
/// (bad header, column/row count mismatch, unparseable value).
TimeSeries read_timeseries(std::istream& is);
TimeSeries read_timeseries_file(const std::string& path);

/// One flagged window between consecutive samples.
struct SeriesAnomaly {
  /// "speed_drop": a steep fall in instantaneous speed. "abort_storm":
  /// switch.aborted.* counters climbed `drop_frac`-many times with no
  /// switch.committed increase in between — the controller is thrashing
  /// against a switch that cannot land.
  std::string kind = "speed_drop";
  double time = 0.0;        ///< boundary where the drop was observed
  std::string column;       ///< the metric that dropped
  double before = 0.0;
  double after = 0.0;
  double drop_frac = 0.0;   ///< speed_drop: 1 - after/before; storm: aborts
  /// True when no decision-activity column (arbiter.*, controller.*,
  /// ledger.*, switch.*) changed across the same window — the controller
  /// slept through a speed cliff.
  bool no_decision = false;
};

struct TimeSeriesReport {
  struct ColumnStats {
    std::string name;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double last = 0.0;
  };
  std::size_t rows = 0;
  double duration = 0.0;    ///< last sample time
  double interval = 0.0;
  std::vector<ColumnStats> columns;  ///< column order, "time" excluded
  std::vector<SeriesAnomaly> anomalies;
  double dropped_samples = 0.0;  ///< metrics.dropped_samples at run end
};

/// Column stats plus anomaly scan. `drop_threshold` is the fractional
/// speed drop between consecutive samples that triggers a flag (0.2 =
/// flag drops steeper than 20%); the speed column is
/// executor.throughput.mean (falling back to .ema).
TimeSeriesReport analyze_timeseries(const TimeSeries& ts,
                                    double drop_threshold);

/// ASCII dashboard: one sparkline row per column plus the anomaly list.
std::string render_timeseries(const TimeSeries& ts,
                              const TimeSeriesReport& report,
                              std::size_t width);

/// Machine-readable report (schema autopipe-timeseries-report-v1).
void write_timeseries_json(const TimeSeriesReport& report, std::ostream& os);

}  // namespace autopipe::analysis
