#include "analysis/critical_path.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>

#include "common/expect.hpp"

namespace autopipe::analysis {

namespace {

constexpr double kEps = 1e-9;

struct SpanRef {
  const trace::Event* ev = nullptr;
  double begin = 0.0;
  double end = 0.0;
  /// Worker whose progress the span advances (transfer: the receiver).
  int dst_worker = -1;
  /// Worker whose output the span consumed (transfer: the sender).
  int src_worker = -1;
  bool is_compute = false;
};

int arg_int(const trace::Event& ev, const char* key) {
  const std::string* v = ev.find_arg(key);
  return v == nullptr ? -1 : std::atoi(v->c_str());
}

std::string span_key(const SpanRef& s) {
  const trace::Event& ev = *s.ev;
  if (s.is_compute) {
    return "compute:" + ev.name + ":stage" + std::to_string(ev.tid) + "@w" +
           std::to_string(ev.pid);
  }
  if (ev.pid == trace::kPidNetwork) {
    return "comm:" + ev.name + ":" + std::to_string(s.src_worker) + "->" +
           std::to_string(s.dst_worker);
  }
  return "comm:" + ev.name + ":stage" + std::to_string(ev.tid) + "@w" +
         std::to_string(ev.pid);
}

/// Preference for E enabling `current`: the inbound transfer for a compute
/// span, the sender's compute for a transfer, then same-row continuity.
int score(const SpanRef& current, const SpanRef& e) {
  int s = 1;
  if (current.is_compute) {
    if (!e.is_compute && e.dst_worker == current.dst_worker) s += 4;
    if (e.is_compute && e.dst_worker == current.dst_worker) s += 2;
  } else {
    if (e.is_compute && e.dst_worker == current.src_worker) s += 4;
    if (!e.is_compute && e.dst_worker == current.src_worker) s += 2;
  }
  const std::string* a = current.ev->find_arg("batch");
  const std::string* b = e.ev->find_arg("batch");
  if (a != nullptr && b != nullptr && *a == *b) s += 1;
  return s;
}

}  // namespace

CriticalPath extract_critical_path(const TraceView& view) {
  CriticalPath path;
  path.wall_clock = view.wall_clock();

  std::vector<SpanRef> spans;
  for (const trace::Event& ev : view.events()) {
    if (ev.phase != 'X') continue;
    // The control row's `switch` span aggregates a whole reconfiguration
    // and overlaps the real work; the migration transfers inside it are
    // the dependency-carrying spans.
    if (ev.category == trace::Category::kSwitch) continue;
    SpanRef s;
    s.ev = &ev;
    s.begin = ev.ts;
    s.end = ev.ts + ev.dur;
    if (ev.category == trace::Category::kCompute &&
        ev.pid < trace::kPidNetwork) {
      s.is_compute = true;
      s.dst_worker = ev.pid;
      s.src_worker = ev.pid;
    } else if (ev.category == trace::Category::kComm) {
      if (ev.pid == trace::kPidNetwork) {
        s.src_worker = arg_int(ev, "src");
        s.dst_worker = arg_int(ev, "dst");
      } else {
        s.src_worker = ev.pid;
        s.dst_worker = ev.pid;
      }
    } else {
      continue;
    }
    spans.push_back(s);
  }
  if (spans.empty()) return path;

  // Order by end time for the predecessor binary search.
  std::vector<std::size_t> by_end(spans.size());
  for (std::size_t i = 0; i < by_end.size(); ++i) by_end[i] = i;
  std::stable_sort(by_end.begin(), by_end.end(),
                   [&](std::size_t a, std::size_t b) {
                     return spans[a].end < spans[b].end;
                   });

  // Start from the span that finishes the run.
  std::size_t current = by_end.back();
  std::set<std::size_t> visited;
  std::vector<PathSegment> reversed;

  const std::size_t step_cap = 2 * spans.size() + 8;
  for (std::size_t steps = 0; steps < step_cap; ++steps) {
    const SpanRef& cur = spans[current];
    visited.insert(current);
    reversed.push_back(PathSegment{cur.ev, cur.begin, cur.end,
                                   span_key(cur)});
    if (cur.begin <= kEps) break;

    // Candidates ending within eps of our start.
    auto lo = std::lower_bound(by_end.begin(), by_end.end(),
                               cur.begin - kEps,
                               [&](std::size_t idx, double value) {
                                 return spans[idx].end < value;
                               });
    std::size_t best = spans.size();
    int best_score = -1;
    for (auto it = lo; it != by_end.end(); ++it) {
      const SpanRef& e = spans[*it];
      if (e.end > cur.begin + kEps) break;
      if (*it == current || visited.count(*it) != 0) continue;
      const int sc = score(cur, e);
      if (sc > best_score ||
          (sc == best_score && best < spans.size() &&
           e.begin > spans[best].begin)) {
        best = *it;
        best_score = sc;
      }
    }

    if (best < spans.size()) {
      current = best;
      continue;
    }

    // Nothing abuts: true dead time on the path. Jump to the latest span
    // ending strictly earlier.
    std::size_t prev = spans.size();
    for (auto it = by_end.begin(); it != lo; ++it) {
      if (visited.count(*it) == 0) prev = *it;
    }
    if (prev == spans.size()) {
      reversed.push_back(PathSegment{nullptr, 0.0, cur.begin, "wait"});
      break;
    }
    reversed.push_back(
        PathSegment{nullptr, spans[prev].end, cur.begin, "wait"});
    current = prev;
  }

  path.segments.assign(reversed.rbegin(), reversed.rend());

  std::map<std::string, PathEntry> agg;
  for (const PathSegment& seg : path.segments) {
    PathEntry& e = agg[seg.key];
    e.key = seg.key;
    e.seconds += seg.end - seg.begin;
    ++e.segments;
    if (seg.span == nullptr) {
      path.wait_seconds += seg.end - seg.begin;
    } else {
      path.span_seconds += seg.end - seg.begin;
    }
  }
  const double covered = path.span_seconds + path.wait_seconds;
  for (auto& [key, e] : agg) {
    e.share = covered > 0.0 ? e.seconds / covered : 0.0;
    path.entries.push_back(e);
  }
  std::stable_sort(path.entries.begin(), path.entries.end(),
                   [](const PathEntry& a, const PathEntry& b) {
                     if (a.seconds != b.seconds) return a.seconds > b.seconds;
                     return a.key < b.key;
                   });
  return path;
}

}  // namespace autopipe::analysis
