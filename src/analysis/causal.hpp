// Causal event-graph analysis over a recorded trace. The recorder stamps
// every non-counter event with an eid and the eid of the event that caused
// it (common/trace.hpp); reassembling those links yields a DAG whose edges
// carry delay: the contribution of edge parent→child is how much later the
// child finished than its cause. Walking the DAG backward from the event
// that ends a slow interval recovers the *dominant delay chain* — the
// concrete sequence fault → rescheduled flow → starved stage → late
// iteration mark — and aggregating edge classes over the interval yields a
// stall ledger that names where the time went, by mechanism rather than by
// row. Complements the interval-based critical path (critical_path.hpp),
// which infers dependencies from abutting timestamps; here the dependencies
// are the recorded ones, so the chain survives coincidental abutment and
// crosses layers (compute → flow → fault) that timestamp inference cannot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/trace_view.hpp"
#include "common/trace.hpp"

namespace autopipe::analysis {

/// When an event's effect was complete: span end for 'X', the timestamp
/// itself for instants, marks and async delimiters.
inline double event_end(const trace::Event& ev) {
  return ev.phase == 'X' ? ev.ts + ev.dur : ev.ts;
}

/// One causal edge parent→child with its delay contribution:
/// end(child) − end(parent), clamped at zero (a cause that outlived its
/// effect — e.g. an aggregate span — contributes nothing).
struct CausalEdge {
  std::size_t parent = 0;  ///< index into CausalGraph::events()
  std::size_t child = 0;
  double contribution = 0.0;
  std::string cls;  ///< stall-ledger class, see classify_edge
};

/// Stall-ledger class of the edge parent→child, derived from the endpoint
/// categories: "link_outage"/"gpu_outage"/"fault" (a fault instant caused
/// the child), "resource_shift" (bandwidth or background-load change),
/// "flow_stall" (comm waiting on comm), "stage_starve" (compute waiting on
/// comm), "compute_chain", "comm_launch" (comm following compute),
/// "bubble" (edge into an iteration mark), "iteration_chain" (work kicked
/// off by an iteration mark), "reconfig" (switch protocol), "control", or
/// "<parent-category>-><child-category>" as a fallback. One class outranks
/// all of these: "tenant_contention", an edge whose endpoints carry
/// *different* job= args — cross-job interference on a co-tenant cluster
/// (e.g. an arbiter grant to one job causing another job's abort).
std::string classify_edge(const trace::Event& parent,
                          const trace::Event& child);

/// The event DAG reconstructed from recorded eid/cause links.
class CausalGraph {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  explicit CausalGraph(std::vector<trace::Event> events);

  const std::vector<trace::Event>& events() const { return events_; }
  const std::vector<CausalEdge>& edges() const { return edges_; }

  /// Index of the event carrying `eid`, or npos.
  std::size_t index_of_eid(std::uint64_t eid) const;
  /// Index into edges() of the edge into event `i` (from its recorded
  /// cause), or npos for a root / non-causal event.
  std::size_t parent_edge(std::size_t i) const { return parent_edge_[i]; }

  /// Events carrying an eid (counters and pre-causality traces have none).
  std::size_t causal_events() const { return causal_events_; }
  /// Cause references that resolve to no recorded event (truncated trace).
  std::size_t dangling_causes() const { return dangling_causes_; }

 private:
  std::vector<trace::Event> events_;
  std::vector<std::size_t> eid_to_index_;  ///< eid-1 → event index
  std::vector<std::size_t> parent_edge_;
  std::vector<CausalEdge> edges_;
  std::size_t causal_events_ = 0;
  std::size_t dangling_causes_ = 0;
};

/// One link of a backward-walked chain. The root link has edge == npos and
/// contribution 0; every later link names the edge from the previous link's
/// event into this one.
struct ChainLink {
  std::size_t event = CausalGraph::npos;
  std::size_t edge = CausalGraph::npos;
  double contribution = 0.0;
};

/// A causal chain, root first.
struct CausalChain {
  std::vector<ChainLink> links;
  /// Wall-clock spanned: end(terminal) − ts(root).
  double duration = 0.0;
  /// Sum of edge contributions — the exact weighted causal path length.
  double weighted = 0.0;
};

/// The causal critical path: the recorded-cause chain ending at the
/// latest-finishing causal event. Cross-validate against the interval-based
/// extract_critical_path: on a complete trace both span the run, so
/// duration ≈ CriticalPath.wall_clock.
CausalChain critical_chain(const CausalGraph& g);

/// Per-class delay aggregate over a window's edges.
struct LedgerEntry {
  std::string cls;
  double seconds = 0.0;
  std::size_t edges = 0;
  double share = 0.0;  ///< of the window's total edge contribution
};

struct BlameReport {
  double window_begin = 0.0;
  double window_end = 0.0;
  /// Causal events whose end lies inside the window.
  std::size_t window_events = 0;
  /// Dominant delay chain: backward walk from the latest-finishing causal
  /// event in the window, through recorded causes, to the DAG root — the
  /// walk deliberately crosses the window's left edge so a fault injected
  /// earlier still appears. Root first; empty when the window holds no
  /// causal event.
  CausalChain chain;
  /// The injected disturbance the chain blames: the chain's rootmost
  /// fault/resource-category event; when the chain passes through none,
  /// the parent of its heaviest edge; npos for an empty chain.
  std::size_t root_cause = CausalGraph::npos;
  /// Stall ledger over edges whose child ends inside the window,
  /// heaviest class first.
  std::vector<LedgerEntry> ledger;
  double ledger_seconds = 0.0;  ///< total over all classes
};

/// Blame a wall-clock window [t0, t1].
BlameReport blame_window(const CausalGraph& g, double t0, double t1);

/// Co-tenancy variant: a non-zero `job` anchors the dominant chain at the
/// latest event tagged job=<job> inside the window instead of whichever
/// tenant's event happens to finish last. The stall ledger still aggregates
/// every edge ending in the window. job == 0 is the plain overload.
BlameReport blame_window(const CausalGraph& g, double t0, double t1,
                         std::uint64_t job);

/// Blame iteration `n` (1-based): the window from the previous iteration
/// mark (or the start of the trace) to mark n. Throws when the trace holds
/// fewer than n marks.
BlameReport blame_iteration(const CausalGraph& g, const TraceView& view,
                            std::size_t n);

/// Co-tenancy variant: iteration `n` *of job `job`*, counted over the
/// job-tagged iteration marks only (requires job > 0; a fleet trace
/// interleaves every tenant's marks).
BlameReport blame_iteration(const CausalGraph& g, std::size_t n,
                            std::uint64_t job);

/// Human-readable report: window, root cause, the chain's top contributing
/// links (at most `top`, ≥1% of the chain's weight), and the stall ledger.
void render_blame(const BlameReport& report, const CausalGraph& g,
                  std::size_t top, std::ostream& os);

/// Machine-readable report (schema "autopipe-blame-v1"), full chain.
void write_blame_json(const BlameReport& report, const CausalGraph& g,
                      std::ostream& os);

}  // namespace autopipe::analysis
