// Interval algebra over simulated time — the substrate of every analyzer
// question ("how long was worker 3 idle while its NIC was saturated?").
// An IntervalSet is a set of points on the time axis stored as sorted,
// disjoint, half-open [begin, end) intervals; set operations (union,
// intersection, subtraction) are linear merges, so attribution over a
// whole trace stays O(events log events).
#pragma once

#include <cstddef>
#include <vector>

namespace autopipe::analysis {

struct Interval {
  double begin = 0.0;
  double end = 0.0;

  double length() const { return end - begin; }
  bool empty() const { return end <= begin; }
};

class IntervalSet {
 public:
  IntervalSet() = default;
  /// The single interval [begin, end); empty input yields the empty set.
  IntervalSet(double begin, double end);

  /// Insert [begin, end); overlapping or touching intervals merge. Empty or
  /// inverted input is ignored.
  void add(double begin, double end);

  bool empty() const;
  /// Total measure (sum of lengths).
  double total() const;
  /// Sorted, disjoint intervals.
  const std::vector<Interval>& intervals() const;

  /// Earliest point of the set; contract error when empty.
  double front_begin() const;
  /// Latest point of the set; contract error when empty.
  double back_end() const;

  IntervalSet unite(const IntervalSet& other) const;
  IntervalSet intersect(const IntervalSet& other) const;
  /// Points of *this not in `other`.
  IntervalSet subtract(const IntervalSet& other) const;
  /// Intersection with the single interval [lo, hi).
  IntervalSet clamp(double lo, double hi) const;

  /// Complement within [lo, hi).
  IntervalSet complement(double lo, double hi) const;

  /// Measure of the intersection with [lo, hi) without materialising it.
  double overlap(double lo, double hi) const;

 private:
  void normalize() const;

  mutable std::vector<Interval> intervals_;
  mutable bool normalized_ = true;
};

}  // namespace autopipe::analysis
