#include "analysis/trace_reader.hpp"

#include <cstdlib>
#include <fstream>
#include <istream>
#include <sstream>

#include "common/expect.hpp"

namespace autopipe::analysis {

namespace {

trace::Category parse_category(const std::string& name, std::size_t line_no) {
  using trace::Category;
  if (name == "compute") return Category::kCompute;
  if (name == "comm") return Category::kComm;
  if (name == "switch") return Category::kSwitch;
  if (name == "control") return Category::kControl;
  if (name == "resource") return Category::kResource;
  if (name == "mark") return Category::kMark;
  if (name == "fault") return Category::kFault;
  AUTOPIPE_EXPECT_MSG(false, "trace line " << line_no
                                           << ": unknown category " << name);
  throw contract_error("unreachable");
}

double parse_double_field(const std::string& token, std::size_t line_no) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  AUTOPIPE_EXPECT_MSG(end != nullptr && *end == '\0' && !token.empty(),
                      "trace line " << line_no << ": bad number " << token);
  return v;
}

/// The value of a "key=value" token; contract error when the key differs.
std::string expect_field(const std::string& token, const char* key,
                         std::size_t line_no) {
  const std::string prefix = std::string(key) + "=";
  AUTOPIPE_EXPECT_MSG(token.rfind(prefix, 0) == 0,
                      "trace line " << line_no << ": expected " << prefix
                                    << "..., got " << token);
  return token.substr(prefix.size());
}

}  // namespace

std::vector<trace::Event> parse_text(std::istream& is) {
  std::vector<trace::Event> events;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (ls >> tok) tokens.push_back(std::move(tok));
    AUTOPIPE_EXPECT_MSG(tokens.size() >= 6,
                        "trace line " << line_no << ": truncated");

    trace::Event ev;
    ev.ts = parse_double_field(tokens[0], line_no);
    ev.category = parse_category(tokens[1], line_no);
    AUTOPIPE_EXPECT_MSG(tokens[2].size() == 1,
                        "trace line " << line_no << ": bad phase "
                                      << tokens[2]);
    ev.phase = tokens[2][0];
    AUTOPIPE_EXPECT_MSG(ev.phase == 'X' || ev.phase == 'i' ||
                            ev.phase == 'C' || ev.phase == 'b' ||
                            ev.phase == 'e',
                        "trace line " << line_no << ": unknown phase "
                                      << ev.phase);
    ev.name = tokens[3];
    ev.pid = static_cast<int>(
        parse_double_field(expect_field(tokens[4], "pid", line_no), line_no));
    ev.tid = static_cast<int>(
        parse_double_field(expect_field(tokens[5], "tid", line_no), line_no));

    // Fixed per-phase fields follow pid/tid in the order write_text emits
    // them; everything after is event args. Arg values may contain spaces
    // (e.g. resource_event descriptions), so a token without '=' continues
    // the previous arg's value.
    std::size_t i = 6;
    if (ev.phase == 'X') {
      AUTOPIPE_EXPECT_MSG(i < tokens.size(),
                          "trace line " << line_no << ": X without dur");
      ev.dur = parse_double_field(expect_field(tokens[i++], "dur", line_no),
                                  line_no);
    } else if (ev.phase == 'b' || ev.phase == 'e') {
      AUTOPIPE_EXPECT_MSG(i < tokens.size(),
                          "trace line " << line_no << ": async without id");
      ev.id = static_cast<std::uint64_t>(parse_double_field(
          expect_field(tokens[i++], "id", line_no), line_no));
    } else if (ev.phase == 'C') {
      AUTOPIPE_EXPECT_MSG(i < tokens.size(),
                          "trace line " << line_no << ": C without value");
      ev.value = parse_double_field(
          expect_field(tokens[i++], "value", line_no), line_no);
    }
    for (; i < tokens.size(); ++i) {
      const std::string& t = tokens[i];
      const std::size_t eq = t.find('=');
      if (eq == std::string::npos) {
        AUTOPIPE_EXPECT_MSG(!ev.args.empty(),
                            "trace line " << line_no
                                          << ": dangling token " << t);
        ev.args.back().value += ' ' + t;
      } else {
        ev.args.push_back(trace::Arg{t.substr(0, eq), t.substr(eq + 1)});
      }
    }
    events.push_back(std::move(ev));
  }
  return events;
}

std::vector<trace::Event> parse_text_file(const std::string& path) {
  std::ifstream in(path);
  AUTOPIPE_EXPECT_MSG(in.good(), "cannot read trace file " << path);
  return parse_text(in);
}

}  // namespace autopipe::analysis
