#include "analysis/trace_reader.hpp"

#include <cstdlib>
#include <fstream>
#include <istream>
#include <sstream>

#include "common/expect.hpp"

namespace autopipe::analysis {

namespace {

/// Category for a name, or false when the name is unknown (a newer writer's
/// category: the caller skips the line and counts it).
bool lookup_category(const std::string& name, trace::Category& out) {
  using trace::Category;
  if (name == "compute") out = Category::kCompute;
  else if (name == "comm") out = Category::kComm;
  else if (name == "switch") out = Category::kSwitch;
  else if (name == "control") out = Category::kControl;
  else if (name == "resource") out = Category::kResource;
  else if (name == "mark") out = Category::kMark;
  else if (name == "fault") out = Category::kFault;
  else return false;
  return true;
}

double parse_double_field(const std::string& token, std::size_t line_no) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  AUTOPIPE_EXPECT_MSG(end != nullptr && *end == '\0' && !token.empty(),
                      "trace line " << line_no << ": bad number " << token);
  return v;
}

std::uint64_t parse_u64_field(const std::string& token, std::size_t line_no) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  AUTOPIPE_EXPECT_MSG(end != nullptr && *end == '\0' && !token.empty(),
                      "trace line " << line_no << ": bad integer " << token);
  return static_cast<std::uint64_t>(v);
}

}  // namespace

std::vector<trace::Event> parse_text(std::istream& is, ReadStats* stats) {
  std::vector<trace::Event> events;
  ReadStats local;
  ReadStats& st = stats != nullptr ? *stats : local;
  st = ReadStats{};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (ls >> tok) tokens.push_back(std::move(tok));
    AUTOPIPE_EXPECT_MSG(tokens.size() >= 6,
                        "trace line " << line_no << ": truncated");

    trace::Event ev;
    ev.ts = parse_double_field(tokens[0], line_no);
    if (!lookup_category(tokens[1], ev.category)) {
      ++st.skipped_lines;  // a newer writer's category: skip the whole line
      continue;
    }
    AUTOPIPE_EXPECT_MSG(tokens[2].size() == 1,
                        "trace line " << line_no << ": bad phase "
                                      << tokens[2]);
    ev.phase = tokens[2][0];
    if (ev.phase != 'X' && ev.phase != 'i' && ev.phase != 'C' &&
        ev.phase != 'b' && ev.phase != 'e') {
      ++st.skipped_lines;  // a newer writer's phase: skip the whole line
      continue;
    }
    ev.name = tokens[3];

    // Everything after the name is `key=value` fields, parsed by key so a
    // newer writer may add fields in any position. Keys this reader knows
    // land in Event fields; anything else is preserved as an arg. Arg
    // values may contain spaces (e.g. resource_event descriptions), so a
    // bare token continues the previous arg's value — or is dropped and
    // counted when there is none.
    bool saw_pid = false, saw_tid = false, saw_phase_field = false;
    for (std::size_t i = 4; i < tokens.size(); ++i) {
      const std::string& t = tokens[i];
      const std::size_t eq = t.find('=');
      if (eq == std::string::npos) {
        if (ev.args.empty()) {
          ++st.dropped_tokens;
        } else {
          ev.args.back().value += ' ' + t;
        }
        continue;
      }
      const std::string key = t.substr(0, eq);
      const std::string value = t.substr(eq + 1);
      if (key == "pid") {
        ev.pid = static_cast<int>(parse_double_field(value, line_no));
        saw_pid = true;
      } else if (key == "tid") {
        ev.tid = static_cast<int>(parse_double_field(value, line_no));
        saw_tid = true;
      } else if (key == "dur" && ev.phase == 'X') {
        ev.dur = parse_double_field(value, line_no);
        saw_phase_field = true;
      } else if (key == "id" && (ev.phase == 'b' || ev.phase == 'e')) {
        ev.id = parse_u64_field(value, line_no);
        saw_phase_field = true;
      } else if (key == "value" && ev.phase == 'C') {
        ev.value = parse_double_field(value, line_no);
        saw_phase_field = true;
      } else if (key == "eid") {
        ev.eid = parse_u64_field(value, line_no);
      } else if (key == "cause") {
        ev.cause = parse_u64_field(value, line_no);
      } else {
        ev.args.push_back(trace::Arg{key, value});
      }
    }
    AUTOPIPE_EXPECT_MSG(saw_pid && saw_tid,
                        "trace line " << line_no << ": missing pid/tid");
    if (ev.phase == 'X') {
      AUTOPIPE_EXPECT_MSG(saw_phase_field,
                          "trace line " << line_no << ": X without dur");
    } else if (ev.phase == 'b' || ev.phase == 'e') {
      AUTOPIPE_EXPECT_MSG(saw_phase_field,
                          "trace line " << line_no << ": async without id");
    } else if (ev.phase == 'C') {
      AUTOPIPE_EXPECT_MSG(saw_phase_field,
                          "trace line " << line_no << ": C without value");
    }
    events.push_back(std::move(ev));
  }
  st.events = events.size();
  return events;
}

std::vector<trace::Event> parse_text_file(const std::string& path,
                                          ReadStats* stats) {
  std::ifstream in(path);
  AUTOPIPE_EXPECT_MSG(in.good(), "cannot read trace file " << path);
  return parse_text(in, stats);
}

}  // namespace autopipe::analysis
