#include "partition/rebalance.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace autopipe::partition {

Partition speed_proportional_rebalance(const models::ModelSpec& model,
                                       const Partition& current,
                                       const EnvironmentView& env,
                                       std::size_t batch) {
  const std::size_t S = current.num_stages();
  const std::size_t L = model.num_layers();
  AUTOPIPE_EXPECT(S <= L);

  // Per-layer work and each stage's processing capacity (replicas x the
  // slowest member's speed — the round-robin replication bound).
  std::vector<double> work(L);
  double total_work = 0.0;
  for (std::size_t l = 0; l < L; ++l) {
    work[l] = model.fwd_flops(l, batch) + model.bwd_flops(l, batch);
    total_work += work[l];
  }
  std::vector<double> capacity(S);
  double total_capacity = 0.0;
  for (std::size_t s = 0; s < S; ++s) {
    const auto& stage = current.stage(s);
    capacity[s] = env.min_speed(stage.workers) *
                  static_cast<double>(stage.replication());
    AUTOPIPE_EXPECT(capacity[s] > 0.0);
    total_capacity += capacity[s];
  }

  // Waterfill: stage s takes layers until its share of the total work
  // (proportional to capacity) is met, always leaving enough layers for the
  // remaining stages.
  std::vector<StageAssignment> stages;
  stages.reserve(S);
  std::size_t next_layer = 0;
  for (std::size_t s = 0; s < S; ++s) {
    const std::size_t stages_left = S - s - 1;
    const double target = total_work * capacity[s] / total_capacity;
    StageAssignment assignment;
    assignment.first_layer = next_layer;
    assignment.workers = current.stage(s).workers;
    // Take at least one layer, then keep extending while under target and
    // while at least one layer per remaining stage is preserved.
    std::size_t last = next_layer;
    double acc = work[last];
    while (last + 1 + stages_left < L && acc < target) {
      ++last;
      acc += work[last];
    }
    assignment.last_layer = last;
    next_layer = last + 1;
    stages.push_back(std::move(assignment));
  }
  // The final stage absorbs any remaining layers.
  stages.back().last_layer = L - 1;
  return Partition(std::move(stages), L);
}

}  // namespace autopipe::partition
