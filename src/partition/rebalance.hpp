// Speed-proportional rebalancing: given a stage->worker order, re-draw the
// contiguous layer boundaries so every stage's compute time matches its
// workers' measured speed (waterfilling). This is the heterogeneity-aware
// complement to the count-based DP: when co-located jobs slow a subset of
// workers, the DP's uniform-speed split leaves several equally-slow
// bottleneck stages that no single two-worker move can improve — the
// rebalance jumps straight to the balanced assignment while keeping every
// worker in its stage position (so the switch migrates only layer
// boundaries, not worker roles).
#pragma once

#include <vector>

#include "models/model.hpp"
#include "partition/environment.hpp"
#include "partition/partition.hpp"

namespace autopipe::partition {

/// Rebalance `current`'s layer boundaries to the environment's per-worker
/// speeds, preserving the stage count and each stage's worker set.
Partition speed_proportional_rebalance(const models::ModelSpec& model,
                                       const Partition& current,
                                       const EnvironmentView& env,
                                       std::size_t batch);

}  // namespace autopipe::partition
