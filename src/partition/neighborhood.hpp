// AutoPipe's candidate generator (§4.2 "New worker partition"): rather than
// re-solving the full partitioning problem, enumerate partitions that differ
// from the current one in the tasks of as few workers as possible —
// boundary-layer moves between adjacent stages and single-worker
// re-homing between stages. The enumeration is O(L^2) in the layer count,
// and each candidate can be adopted with a two-worker fine-grained switch.
#pragma once

#include <vector>

#include "partition/partition.hpp"

namespace autopipe::partition {

struct Candidate {
  Partition partition;
  /// Workers whose layer assignment differs from the current partition —
  /// the set that must migrate state on a switch.
  std::vector<sim::WorkerId> changed_workers;
};

/// All two-worker-change candidates of `current`:
///   * move k >= 1 trailing layers of stage s to the head of stage s+1
///     (and the mirror image), for every adjacent pair and every feasible k;
///   * move one worker from a replicated stage to an adjacent stage.
/// The current partition itself is not included.
std::vector<Candidate> two_worker_candidates(const Partition& current);

}  // namespace autopipe::partition
