#include "partition/pipedream_planner.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <numeric>

#include "common/expect.hpp"
#include "common/profile.hpp"
#include "partition/analytic_eval.hpp"

namespace autopipe::partition {

namespace {
constexpr Seconds kInf = std::numeric_limits<Seconds>::infinity();
}

PipeDreamPlanner::PipeDreamPlanner(const models::ModelSpec& model,
                                   EnvironmentView env, std::size_t batch_size,
                                   Mode mode)
    : model_(model), env_(std::move(env)), batch_(batch_size), mode_(mode) {
  AUTOPIPE_EXPECT(batch_ >= 1);
  AUTOPIPE_EXPECT(env_.num_workers() >= 1);
  const std::size_t L = model_.num_layers();
  prefix_flops_.assign(L + 1, 0.0);
  prefix_params_.assign(L + 1, 0.0);
  for (std::size_t l = 0; l < L; ++l) {
    prefix_flops_[l + 1] = prefix_flops_[l] + model_.fwd_flops(l, batch_) +
                           model_.bwd_flops(l, batch_);
    prefix_params_[l + 1] = prefix_params_[l] + model_.param_bytes(l);
  }
}

Seconds PipeDreamPlanner::stage_time(std::size_t first, std::size_t last,
                                     std::size_t replication) const {
  const Flops work = prefix_flops_[last + 1] - prefix_flops_[first];
  FlopsPerSec speed;
  BytesPerSec bw;
  comm::SyncScheme scheme;
  if (mode_ == Mode::kPipeDream) {
    // PipeDream profiles one exclusive GPU and assumes uniform bandwidth
    // and all-reduce weight sync.
    speed = env_.uniform_speed();
    bw = env_.uniform_bandwidth();
    scheme = comm::SyncScheme::kRing;
  } else {
    // Plan against the current environment: contended mean speed, the
    // narrowest currently-available pipe, the real sync scheme.
    speed = std::accumulate(env_.worker_speed.begin(),
                            env_.worker_speed.end(), 0.0) /
            static_cast<double>(env_.num_workers());
    bw = *std::min_element(env_.worker_bandwidth.begin(),
                           env_.worker_bandwidth.end());
    scheme = env_.sync_scheme;
  }
  AUTOPIPE_EXPECT(speed > 0.0);
  const Seconds overhead = 2.0 * env_.per_layer_overhead *
                           static_cast<double>(last - first + 1);
  Seconds sync = 0.0;
  if (replication > 1) {
    const Bytes params = prefix_params_[last + 1] - prefix_params_[first];
    sync = comm::sync_time(scheme, params, replication, bw,
                           env_.comm_efficiency);
  }
  return (work / speed + overhead + sync) /
         static_cast<double>(replication);
}

Seconds PipeDreamPlanner::boundary_time(std::size_t layer) const {
  const Bytes activation = model_.activation_bytes(layer, batch_);
  const BytesPerSec bw =
      mode_ == Mode::kPipeDream
          ? env_.uniform_bandwidth()
          : *std::min_element(env_.worker_bandwidth.begin(),
                              env_.worker_bandwidth.end());
  AUTOPIPE_EXPECT(bw > 0.0);
  return activation / (bw * env_.comm_efficiency);
}

PlanResult PipeDreamPlanner::plan(std::size_t max_workers) {
  PROF_SPAN("planner/solve");
  AUTOPIPE_EXPECT(max_workers >= 1);
  AUTOPIPE_EXPECT(max_workers <= env_.num_workers());
  const auto t0 = std::chrono::steady_clock::now();

  const std::size_t L = model_.num_layers();
  const std::size_t N = max_workers;

  // A[j][m]: best bottleneck period covering the first j layers with exactly
  // m workers. choice[j][m] records (split point k, workers m' in the last
  // stage); k == 0 means a single stage.
  std::vector<std::vector<Seconds>> A(L + 1,
                                      std::vector<Seconds>(N + 1, kInf));
  struct Choice {
    std::size_t k = 0;
    std::size_t last_stage_workers = 0;
  };
  std::vector<std::vector<Choice>> choice(L + 1,
                                          std::vector<Choice>(N + 1));

  for (std::size_t j = 1; j <= L; ++j) {
    for (std::size_t m = 1; m <= N; ++m) {
      // Option 1: layers [0, j) as a single stage replicated m ways.
      Seconds best = stage_time(0, j - 1, m);
      Choice best_choice{0, m};
      // Option 2: split after layer k-1; last stage = layers [k, j) on m'.
      for (std::size_t k = 1; k < j; ++k) {
        const Seconds comm = boundary_time(k - 1);
        for (std::size_t mprime = 1; mprime < m; ++mprime) {
          const Seconds head = A[k][m - mprime];
          if (head >= best) continue;  // max() can only be worse
          const Seconds tail = stage_time(k, j - 1, mprime);
          const Seconds candidate = std::max({head, comm, tail});
          if (candidate < best) {
            best = candidate;
            best_choice = Choice{k, mprime};
          }
        }
      }
      A[j][m] = best;
      choice[j][m] = best_choice;
    }
  }

  // Using fewer workers is allowed (idle workers can win when bandwidth is
  // the bottleneck).
  std::size_t best_m = 1;
  for (std::size_t m = 2; m <= N; ++m) {
    if (A[L][m] < A[L][best_m]) best_m = m;
  }

  // Reconstruct stage layer ranges and replication counts, back to front.
  struct StagePlan {
    std::size_t first, last, workers;
  };
  std::vector<StagePlan> plan_stages;
  {
    std::size_t j = L, m = best_m;
    while (j > 0) {
      const Choice c = choice[j][m];
      plan_stages.push_back(StagePlan{c.k, j - 1, c.last_stage_workers});
      AUTOPIPE_EXPECT(c.last_stage_workers <= m);
      m -= c.last_stage_workers;
      j = c.k;
      if (c.k == 0) break;
    }
    std::reverse(plan_stages.begin(), plan_stages.end());
  }

  // Map replica counts to concrete workers: hand the fastest GPUs to the
  // stages with the highest per-replica load (greedy, exact under the
  // homogeneous testbed). PipeDream mode profiles a single exclusive GPU,
  // so it has no per-worker speeds to exploit and assigns in id order.
  std::vector<sim::WorkerId> workers(env_.num_workers());
  std::iota(workers.begin(), workers.end(), sim::WorkerId{0});
  if (mode_ == Mode::kCurrentEnvironment) {
    std::stable_sort(workers.begin(), workers.end(),
                     [&](sim::WorkerId a, sim::WorkerId b) {
                       return env_.worker_speed[a] > env_.worker_speed[b];
                     });
  }
  std::vector<std::size_t> order(plan_stages.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<Seconds> load(plan_stages.size());
  for (std::size_t s = 0; s < plan_stages.size(); ++s) {
    load[s] = stage_time(plan_stages[s].first, plan_stages[s].last,
                         plan_stages[s].workers);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return load[a] > load[b];
                   });
  std::vector<std::vector<sim::WorkerId>> stage_workers(plan_stages.size());
  std::size_t next_worker = 0;
  for (std::size_t s : order) {
    for (std::size_t r = 0; r < plan_stages[s].workers; ++r)
      stage_workers[s].push_back(workers[next_worker++]);
    std::sort(stage_workers[s].begin(), stage_workers[s].end());
  }

  std::vector<StageAssignment> assignments;
  assignments.reserve(plan_stages.size());
  for (std::size_t s = 0; s < plan_stages.size(); ++s) {
    assignments.push_back(StageAssignment{
        plan_stages[s].first, plan_stages[s].last, stage_workers[s]});
  }
  Partition partition(std::move(assignments), L);

  const auto t1 = std::chrono::steady_clock::now();
  last_solve_seconds_ =
      std::chrono::duration<double>(t1 - t0).count();

  PlanResult result{partition, optimal_in_flight(partition), A[L][best_m]};
  return result;
}

}  // namespace autopipe::partition
