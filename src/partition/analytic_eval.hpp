// Closed-form steady-state pipeline model: the per-mini-batch period of a
// 1F1B pipeline is the bottleneck over (a) every stage's compute+sync time
// amortized over its replicas and (b) every inter-stage transfer. This is
// the "integrated pipeline model" evaluated against the *full* environment
// view; feeding it PipeDream's collapsed view instead reproduces PipeDream's
// planning error.
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "models/model.hpp"
#include "partition/environment.hpp"
#include "partition/partition.hpp"

namespace autopipe::partition {

struct StageCostBreakdown {
  Seconds compute = 0.0;      ///< whole-mini-batch FP+BP at the stage's speed
  Seconds sync = 0.0;         ///< weight sync across replicas (0 if r == 1)
  Seconds effective = 0.0;    ///< (compute + sync) / replication
};

/// Compute one stage's steady-state contribution.
StageCostBreakdown stage_cost(const models::ModelSpec& model,
                              const StageAssignment& stage,
                              const EnvironmentView& env, std::size_t batch);

/// Transfer time for the activation (forward) or gradient (backward) crossing
/// the boundary after `boundary_layer`, at the bandwidth between the two
/// stages' workers.
Seconds boundary_transfer_time(const models::ModelSpec& model,
                               const Partition& partition,
                               std::size_t boundary_stage,
                               const EnvironmentView& env, std::size_t batch);

/// Steady-state seconds per mini-batch for the whole pipeline: the maximum
/// over stage costs and boundary transfers.
Seconds analytic_batch_time(const models::ModelSpec& model,
                            const Partition& partition,
                            const EnvironmentView& env, std::size_t batch);

/// Images (samples) per second implied by analytic_batch_time.
double analytic_throughput(const models::ModelSpec& model,
                           const Partition& partition,
                           const EnvironmentView& env, std::size_t batch);

/// PipeDream's NOW: in-flight mini-batches to fill the pipeline,
/// ceil(total workers / replication of the input stage).
std::size_t optimal_in_flight(const Partition& partition);

}  // namespace autopipe::partition
