#include "partition/environment.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace autopipe::partition {

FlopsPerSec EnvironmentView::uniform_speed() const {
  AUTOPIPE_EXPECT(!worker_speed.empty());
  return *std::max_element(worker_speed.begin(), worker_speed.end());
}

BytesPerSec EnvironmentView::uniform_bandwidth() const {
  AUTOPIPE_EXPECT(!worker_bandwidth.empty());
  return *std::max_element(worker_bandwidth.begin(), worker_bandwidth.end());
}

FlopsPerSec EnvironmentView::min_speed(
    const std::vector<sim::WorkerId>& workers) const {
  AUTOPIPE_EXPECT(!workers.empty());
  FlopsPerSec v = worker_speed.at(workers.front());
  for (sim::WorkerId w : workers) v = std::min(v, worker_speed.at(w));
  return v;
}

BytesPerSec EnvironmentView::min_bandwidth(
    const std::vector<sim::WorkerId>& workers) const {
  AUTOPIPE_EXPECT(!workers.empty());
  BytesPerSec v = worker_bandwidth.at(workers.front());
  for (sim::WorkerId w : workers) v = std::min(v, worker_bandwidth.at(w));
  return v;
}

FlopsPerSec EnvironmentView::mean_speed(
    const std::vector<sim::WorkerId>& workers) const {
  AUTOPIPE_EXPECT(!workers.empty());
  FlopsPerSec sum = 0.0;
  for (sim::WorkerId w : workers) sum += worker_speed.at(w);
  return sum / static_cast<double>(workers.size());
}

EnvironmentView EnvironmentView::from_cluster(
    const sim::Cluster& cluster, const comm::FrameworkProfile& framework,
    comm::SyncScheme scheme) {
  EnvironmentView env;
  const std::size_t n = cluster.num_workers();
  env.worker_speed.reserve(n);
  env.worker_bandwidth.reserve(n);
  for (sim::WorkerId w = 0; w < n; ++w) {
    env.worker_speed.push_back(cluster.gpu(w).effective_throughput() *
                               framework.compute_efficiency);
    env.worker_bandwidth.push_back(
        cluster.nic_bandwidth(cluster.server_of(w)));
  }
  env.per_layer_overhead = framework.per_layer_overhead;
  env.comm_efficiency = framework.comm_efficiency;
  env.sync_scheme = scheme;
  return env;
}

}  // namespace autopipe::partition
