// Brute-force partition search. Exponential in the layer count, so it only
// runs on small instances; it serves as (a) the optimality oracle the DP
// planner is tested against and (b) the "what if we could afford full
// search" ablation.
#pragma once

#include <cstddef>
#include <optional>

#include "models/model.hpp"
#include "partition/environment.hpp"
#include "partition/partition.hpp"

namespace autopipe::partition {

/// Enumerate every (stage split, replica-count distribution) over the given
/// workers and return the partition minimizing analytic_batch_time. Workers
/// are consumed in ascending id order within each stage. Instances beyond
/// `max_layers_guard` layers are rejected (the search is exponential).
std::optional<PlanResult> exhaustive_best(const models::ModelSpec& model,
                                          const EnvironmentView& env,
                                          std::size_t batch,
                                          std::size_t num_workers,
                                          std::size_t max_layers_guard = 14);

}  // namespace autopipe::partition
