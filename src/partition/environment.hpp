// A planner's view of the cluster: per-worker effective compute speed and
// per-worker available bandwidth, plus framework constants. PipeDream's
// planner deliberately collapses this to a single exclusive-GPU speed and a
// single uniform bandwidth (its two modelling drawbacks per the paper's
// Observation 2); the "optimal" re-planner and AutoPipe consume the full
// per-worker vectors.
#pragma once

#include <cstddef>
#include <vector>

#include "comm/framework.hpp"
#include "common/units.hpp"
#include "sim/cluster.hpp"

namespace autopipe::partition {

struct EnvironmentView {
  /// Effective FLOP/s available to the training job on each worker
  /// (device throughput x framework compute efficiency / tenants).
  std::vector<FlopsPerSec> worker_speed;
  /// NIC bandwidth available at each worker's server.
  std::vector<BytesPerSec> worker_bandwidth;
  /// Framework constants applied to every task / transfer.
  Seconds per_layer_overhead = 0.0;
  double comm_efficiency = 1.0;
  /// How replicated stages synchronize weights.
  comm::SyncScheme sync_scheme = comm::SyncScheme::kRing;

  std::size_t num_workers() const { return worker_speed.size(); }

  /// PipeDream's simplifications: one speed (an exclusively-used reference
  /// GPU — we take the max, i.e. an uncontended device), one bandwidth.
  FlopsPerSec uniform_speed() const;
  BytesPerSec uniform_bandwidth() const;

  /// Slowest speed / narrowest pipe across a worker subset.
  FlopsPerSec min_speed(const std::vector<sim::WorkerId>& workers) const;
  BytesPerSec min_bandwidth(const std::vector<sim::WorkerId>& workers) const;
  FlopsPerSec mean_speed(const std::vector<sim::WorkerId>& workers) const;

  /// Ground-truth snapshot of the simulated cluster (what a perfect profiler
  /// would report).
  static EnvironmentView from_cluster(const sim::Cluster& cluster,
                                      const comm::FrameworkProfile& framework,
                                      comm::SyncScheme scheme);
};

}  // namespace autopipe::partition
