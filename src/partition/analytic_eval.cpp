#include "partition/analytic_eval.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace autopipe::partition {

StageCostBreakdown stage_cost(const models::ModelSpec& model,
                              const StageAssignment& stage,
                              const EnvironmentView& env, std::size_t batch) {
  AUTOPIPE_EXPECT(stage.last_layer < model.num_layers());
  StageCostBreakdown out;
  // A replicated stage processes whole mini-batches round-robin, so the
  // per-batch compute cost is the full-stage cost at the slowest member's
  // speed, amortized by the replication factor.
  const FlopsPerSec speed = env.min_speed(stage.workers);
  AUTOPIPE_EXPECT(speed > 0.0);
  const Flops work =
      model.range_fwd_flops(stage.first_layer, stage.last_layer, batch) +
      model.range_bwd_flops(stage.first_layer, stage.last_layer, batch);
  // Two passes (FP and BP) of per-layer launch overhead.
  const Seconds overhead =
      2.0 * env.per_layer_overhead * static_cast<double>(stage.num_layers());
  out.compute = work / speed + overhead;
  if (stage.replication() > 1) {
    const Bytes params =
        model.range_param_bytes(stage.first_layer, stage.last_layer);
    out.sync = comm::sync_time(env.sync_scheme, params, stage.replication(),
                               env.min_bandwidth(stage.workers),
                               env.comm_efficiency);
  }
  out.effective =
      (out.compute + out.sync) / static_cast<double>(stage.replication());
  return out;
}

Seconds boundary_transfer_time(const models::ModelSpec& model,
                               const Partition& partition,
                               std::size_t boundary_stage,
                               const EnvironmentView& env, std::size_t batch) {
  AUTOPIPE_EXPECT(boundary_stage + 1 < partition.num_stages());
  const StageAssignment& up = partition.stage(boundary_stage);
  const StageAssignment& down = partition.stage(boundary_stage + 1);
  const Bytes activation = model.activation_bytes(up.last_layer, batch);
  // Forward activation and backward gradient have the same size and cross
  // the same links in opposite directions; with full-duplex NICs they do
  // not contend, so the boundary's period contribution is one transfer.
  const BytesPerSec bw =
      std::min(env.min_bandwidth(up.workers), env.min_bandwidth(down.workers));
  AUTOPIPE_EXPECT(bw > 0.0);
  return activation / (bw * env.comm_efficiency);
}

Seconds analytic_batch_time(const models::ModelSpec& model,
                            const Partition& partition,
                            const EnvironmentView& env, std::size_t batch) {
  Seconds bottleneck = 0.0;
  for (std::size_t s = 0; s < partition.num_stages(); ++s) {
    bottleneck = std::max(
        bottleneck, stage_cost(model, partition.stage(s), env, batch).effective);
  }
  for (std::size_t s = 0; s + 1 < partition.num_stages(); ++s) {
    bottleneck =
        std::max(bottleneck, boundary_transfer_time(model, partition, s, env,
                                                    batch));
  }
  return bottleneck;
}

double analytic_throughput(const models::ModelSpec& model,
                           const Partition& partition,
                           const EnvironmentView& env, std::size_t batch) {
  const Seconds t = analytic_batch_time(model, partition, env, batch);
  AUTOPIPE_EXPECT(t > 0.0);
  return static_cast<double>(batch) / t;
}

std::size_t optimal_in_flight(const Partition& partition) {
  // PipeDream's NOW = ceil(#machines / #machines in the input stage) is a
  // *per-replica* in-flight count; the executor tracks total active
  // mini-batches, so the pipeline needs NOW batches per input replica.
  const std::size_t total = partition.num_workers();
  const std::size_t first = partition.stage(0).replication();
  const std::size_t now_per_replica = (total + first - 1) / first;
  return now_per_replica * first;
}

}  // namespace autopipe::partition
