#include "partition/partition.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "common/expect.hpp"

namespace autopipe::partition {

Partition::Partition(std::vector<StageAssignment> stages,
                     std::size_t num_layers)
    : stages_(std::move(stages)), num_layers_(num_layers) {
  AUTOPIPE_EXPECT(!stages_.empty());
  AUTOPIPE_EXPECT(num_layers_ > 0);
  std::size_t expect_first = 0;
  std::unordered_set<sim::WorkerId> seen;
  for (const StageAssignment& s : stages_) {
    AUTOPIPE_EXPECT_MSG(s.first_layer == expect_first,
                        "stage gap: expected first layer "
                            << expect_first << ", got " << s.first_layer);
    AUTOPIPE_EXPECT(s.last_layer >= s.first_layer);
    AUTOPIPE_EXPECT(s.last_layer < num_layers_);
    AUTOPIPE_EXPECT_MSG(!s.workers.empty(), "stage with no workers");
    for (sim::WorkerId w : s.workers)
      AUTOPIPE_EXPECT_MSG(seen.insert(w).second,
                          "worker " << w << " assigned to two stages");
    expect_first = s.last_layer + 1;
  }
  AUTOPIPE_EXPECT_MSG(expect_first == num_layers_,
                      "stages cover " << expect_first << " of " << num_layers_
                                      << " layers");
}

Partition Partition::even_split(std::size_t num_layers,
                                std::vector<sim::WorkerId> workers) {
  AUTOPIPE_EXPECT(!workers.empty());
  AUTOPIPE_EXPECT(num_layers >= workers.size());
  const std::size_t n = workers.size();
  std::vector<StageAssignment> stages;
  std::size_t next = 0;
  for (std::size_t s = 0; s < n; ++s) {
    // Distribute the remainder over the leading stages.
    const std::size_t len = num_layers / n + (s < num_layers % n ? 1 : 0);
    stages.push_back(StageAssignment{next, next + len - 1, {workers[s]}});
    next += len;
  }
  return Partition(std::move(stages), num_layers);
}

Partition Partition::single_stage(std::size_t num_layers,
                                  std::vector<sim::WorkerId> workers) {
  AUTOPIPE_EXPECT(!workers.empty());
  return Partition({StageAssignment{0, num_layers - 1, std::move(workers)}},
                   num_layers);
}

const StageAssignment& Partition::stage(std::size_t s) const {
  AUTOPIPE_EXPECT(s < stages_.size());
  return stages_[s];
}

std::size_t Partition::stage_of_layer(std::size_t layer) const {
  AUTOPIPE_EXPECT(layer < num_layers_);
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    if (layer >= stages_[s].first_layer && layer <= stages_[s].last_layer)
      return s;
  }
  AUTOPIPE_EXPECT_MSG(false, "unreachable: layer not covered");
  return npos;
}

std::size_t Partition::stage_of_worker(sim::WorkerId worker) const {
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const auto& ws = stages_[s].workers;
    if (std::find(ws.begin(), ws.end(), worker) != ws.end()) return s;
  }
  return npos;
}

std::vector<sim::WorkerId> Partition::all_workers() const {
  std::vector<sim::WorkerId> out;
  for (const StageAssignment& s : stages_)
    out.insert(out.end(), s.workers.begin(), s.workers.end());
  return out;
}

std::size_t Partition::num_workers() const {
  std::size_t n = 0;
  for (const StageAssignment& s : stages_) n += s.workers.size();
  return n;
}

std::vector<sim::WorkerId> Partition::changed_workers(
    const Partition& other) const {
  std::vector<sim::WorkerId> changed;
  auto layer_range = [](const Partition& p, sim::WorkerId w)
      -> std::pair<std::size_t, std::size_t> {
    const std::size_t s = p.stage_of_worker(w);
    if (s == npos) return {npos, npos};
    return {p.stage(s).first_layer, p.stage(s).last_layer};
  };
  std::unordered_set<sim::WorkerId> universe;
  for (sim::WorkerId w : all_workers()) universe.insert(w);
  for (sim::WorkerId w : other.all_workers()) universe.insert(w);
  for (sim::WorkerId w : universe) {
    if (layer_range(*this, w) != layer_range(other, w)) changed.push_back(w);
  }
  std::sort(changed.begin(), changed.end());
  return changed;
}

std::string Partition::to_string() const {
  std::ostringstream os;
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    if (s) os << " | ";
    os << "L" << stages_[s].first_layer << "-" << stages_[s].last_layer
       << "@{";
    for (std::size_t i = 0; i < stages_[s].workers.size(); ++i) {
      if (i) os << ",";
      os << stages_[s].workers[i];
    }
    os << "}";
  }
  return os.str();
}

Partition remap_workers(const Partition& p,
                        const std::vector<sim::WorkerId>& worker_map) {
  std::vector<StageAssignment> stages = p.stages();
  for (StageAssignment& stage : stages) {
    for (sim::WorkerId& w : stage.workers) {
      AUTOPIPE_EXPECT_MSG(w < worker_map.size(),
                          "remap_workers: worker " << w << " outside map of "
                                                   << worker_map.size());
      w = worker_map[w];
    }
  }
  return Partition(std::move(stages), p.num_layers());
}

}  // namespace autopipe::partition
