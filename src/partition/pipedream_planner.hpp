// PipeDream's dynamic-programming work partitioner (Narayanan et al.,
// SOSP'19, §3.1), generalized so the same solver serves two roles:
//
//   * `Mode::kPipeDream` reproduces the original planner, including its two
//     simplifications the paper criticizes: compute speed profiled on one
//     exclusively-used GPU, and a single uniform bandwidth with ring
//     all-reduce assumed for replicated stages.
//   * `Mode::kCurrentEnvironment` is the "optimal" baseline of Figs 3-6:
//     the identical DP re-solved against the *current* environment view
//     (contended speeds, changed bandwidth, actual sync scheme).
//
// The DP minimizes the pipeline's bottleneck period:
//   A[j][m] = min( S(0..j-1, m),
//                  min_{k,m'} max( A[k][m-m'], C(k-1), S(k..j-1, m') ) )
// where S is the amortized stage cost and C a boundary transfer.
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "models/model.hpp"
#include "partition/environment.hpp"
#include "partition/partition.hpp"

namespace autopipe::partition {

class PipeDreamPlanner {
 public:
  enum class Mode {
    kPipeDream,           ///< uniform-speed / uniform-bandwidth assumptions
    kCurrentEnvironment,  ///< plan against the full environment view
  };

  PipeDreamPlanner(const models::ModelSpec& model, EnvironmentView env,
                   std::size_t batch_size, Mode mode = Mode::kPipeDream);

  /// Solve for the best plan using at most `max_workers` workers drawn from
  /// worker ids [0, max_workers). Also permits leaving workers idle when
  /// that wins (it can, under very low bandwidth).
  PlanResult plan(std::size_t max_workers);

  /// Wall-clock time the most recent plan() spent in the DP (Fig 12).
  Seconds last_solve_seconds() const { return last_solve_seconds_; }

  Mode mode() const { return mode_; }

 private:
  /// Amortized per-batch cost of layers [first, last] replicated r ways.
  Seconds stage_time(std::size_t first, std::size_t last,
                     std::size_t replication) const;
  /// Transfer across the boundary after `layer`.
  Seconds boundary_time(std::size_t layer) const;

  const models::ModelSpec& model_;
  EnvironmentView env_;
  std::size_t batch_;
  Mode mode_;
  Seconds last_solve_seconds_ = 0.0;

  // Prefix sums over layers for O(1) range cost queries.
  std::vector<Flops> prefix_flops_;   // fwd+bwd
  std::vector<Bytes> prefix_params_;
};

}  // namespace autopipe::partition
