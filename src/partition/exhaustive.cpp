#include "partition/exhaustive.hpp"

#include <limits>
#include <numeric>

#include "common/expect.hpp"
#include "partition/analytic_eval.hpp"

namespace autopipe::partition {

namespace {

struct SearchState {
  const models::ModelSpec* model;
  const EnvironmentView* env;
  std::size_t batch;
  std::size_t num_workers;
  Seconds best_time = std::numeric_limits<Seconds>::infinity();
  std::optional<Partition> best;
};

/// Recursively extend a partial partition starting at `next_layer` with
/// `workers_left` unassigned workers (ids assigned in ascending order).
void search(SearchState& state, std::vector<StageAssignment>& prefix,
            std::size_t next_layer, std::size_t next_worker) {
  const std::size_t L = state.model->num_layers();
  if (next_layer == L) {
    Partition p(prefix, L);
    const Seconds t =
        analytic_batch_time(*state.model, p, *state.env, state.batch);
    if (t < state.best_time) {
      state.best_time = t;
      state.best = std::move(p);
    }
    return;
  }
  const std::size_t workers_left = state.num_workers - next_worker;
  if (workers_left == 0) return;
  for (std::size_t last = next_layer; last < L; ++last) {
    // The remaining layers after `last` need at least one worker.
    const bool more_layers = last + 1 < L;
    for (std::size_t r = 1; r <= workers_left - (more_layers ? 1 : 0); ++r) {
      StageAssignment stage;
      stage.first_layer = next_layer;
      stage.last_layer = last;
      for (std::size_t i = 0; i < r; ++i)
        stage.workers.push_back(next_worker + i);
      prefix.push_back(std::move(stage));
      search(state, prefix, last + 1, next_worker + r);
      prefix.pop_back();
    }
  }
}

}  // namespace

std::optional<PlanResult> exhaustive_best(const models::ModelSpec& model,
                                          const EnvironmentView& env,
                                          std::size_t batch,
                                          std::size_t num_workers,
                                          std::size_t max_layers_guard) {
  AUTOPIPE_EXPECT(num_workers >= 1);
  AUTOPIPE_EXPECT(num_workers <= env.num_workers());
  if (model.num_layers() > max_layers_guard) return std::nullopt;

  SearchState state{&model, &env, batch, num_workers,
                    std::numeric_limits<Seconds>::infinity(), std::nullopt};
  std::vector<StageAssignment> prefix;
  search(state, prefix, 0, 0);
  AUTOPIPE_EXPECT(state.best.has_value());
  return PlanResult{*state.best, optimal_in_flight(*state.best),
                    state.best_time};
}

}  // namespace autopipe::partition
