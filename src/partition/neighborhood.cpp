#include "partition/neighborhood.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace autopipe::partition {

namespace {

/// Rebuild a Partition after editing a copy of its stages.
Partition rebuild(std::vector<StageAssignment> stages,
                  std::size_t num_layers) {
  return Partition(std::move(stages), num_layers);
}

}  // namespace

std::vector<Candidate> two_worker_candidates(const Partition& current) {
  std::vector<Candidate> out;
  const auto& stages = current.stages();
  const std::size_t L = current.num_layers();

  // 1) Boundary-layer moves between adjacent stages.
  for (std::size_t s = 0; s + 1 < stages.size(); ++s) {
    // Move k trailing layers of s into s+1 (keep at least one layer in s).
    for (std::size_t k = 1; k < stages[s].num_layers(); ++k) {
      auto edited = stages;
      edited[s].last_layer -= k;
      edited[s + 1].first_layer -= k;
      Partition candidate = rebuild(std::move(edited), L);
      auto changed = current.changed_workers(candidate);
      out.push_back(Candidate{std::move(candidate), std::move(changed)});
    }
    // Move k leading layers of s+1 into s.
    for (std::size_t k = 1; k < stages[s + 1].num_layers(); ++k) {
      auto edited = stages;
      edited[s].last_layer += k;
      edited[s + 1].first_layer += k;
      Partition candidate = rebuild(std::move(edited), L);
      auto changed = current.changed_workers(candidate);
      out.push_back(Candidate{std::move(candidate), std::move(changed)});
    }
  }

  // 2) Re-home one worker from a replicated stage to an adjacent stage.
  for (std::size_t s = 0; s < stages.size(); ++s) {
    if (stages[s].replication() < 2) continue;
    for (const std::size_t t : {s == 0 ? stages.size() : s - 1, s + 1}) {
      if (t >= stages.size()) continue;
      // Moving the highest-id worker keeps candidates canonical.
      auto edited = stages;
      const sim::WorkerId mover = edited[s].workers.back();
      edited[s].workers.pop_back();
      edited[t].workers.push_back(mover);
      std::sort(edited[t].workers.begin(), edited[t].workers.end());
      Partition candidate = rebuild(std::move(edited), L);
      auto changed = current.changed_workers(candidate);
      out.push_back(Candidate{std::move(candidate), std::move(changed)});
    }
  }

  return out;
}

}  // namespace autopipe::partition
