// Work partitions: the assignment of contiguous layer ranges (stages) to
// disjoint worker sets, with optional data-parallel replication inside a
// stage — PipeDream's output format, and the object AutoPipe's neighbourhood
// search perturbs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/cluster.hpp"

namespace autopipe::partition {

struct StageAssignment {
  /// Inclusive layer range [first_layer, last_layer].
  std::size_t first_layer = 0;
  std::size_t last_layer = 0;
  /// Workers replicating this stage (round-robin over mini-batches).
  std::vector<sim::WorkerId> workers;

  std::size_t num_layers() const { return last_layer - first_layer + 1; }
  std::size_t replication() const { return workers.size(); }
  bool operator==(const StageAssignment&) const = default;
};

class Partition {
 public:
  /// Validates: stages cover [0, num_layers) contiguously in order; worker
  /// sets are non-empty and pairwise disjoint.
  Partition(std::vector<StageAssignment> stages, std::size_t num_layers);

  /// One stage per worker, layers split as evenly as possible (the "even
  /// split" strategy of Megatron-LM / Chimera for uniform models).
  static Partition even_split(std::size_t num_layers,
                              std::vector<sim::WorkerId> workers);

  /// Everything on one (replicated) stage — data parallelism's shape.
  static Partition single_stage(std::size_t num_layers,
                                std::vector<sim::WorkerId> workers);

  std::size_t num_stages() const { return stages_.size(); }
  std::size_t num_layers() const { return num_layers_; }
  const StageAssignment& stage(std::size_t s) const;
  const std::vector<StageAssignment>& stages() const { return stages_; }

  /// Index of the stage containing the layer.
  std::size_t stage_of_layer(std::size_t layer) const;

  /// Stage index a worker serves, or npos if the worker is unused.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t stage_of_worker(sim::WorkerId worker) const;

  /// All workers in stage order.
  std::vector<sim::WorkerId> all_workers() const;
  std::size_t num_workers() const;

  /// Workers whose layer set differs between *this and `other` — the
  /// migration set for state switching.
  std::vector<sim::WorkerId> changed_workers(const Partition& other) const;

  std::string to_string() const;
  bool operator==(const Partition& other) const = default;

 private:
  std::vector<StageAssignment> stages_;
  std::size_t num_layers_ = 0;
};

/// Rewrite every worker id through `worker_map`: stage worker i becomes
/// worker_map[i]. Used by job-scoped planning on a shared cluster — the
/// planner runs over a dense id space [0, owned) and the result is mapped
/// back onto the job's real (possibly non-contiguous) cluster workers.
/// Requires every referenced id to be < worker_map.size().
Partition remap_workers(const Partition& p,
                        const std::vector<sim::WorkerId>& worker_map);

/// A planner's full answer: the partition plus the number of in-flight
/// mini-batches (PipeDream's NOW) and the planner's own time estimate.
struct PlanResult {
  Partition partition;
  /// Optimal number of on-the-fly mini-batches that fills the pipeline.
  std::size_t in_flight = 1;
  /// Planner-model estimate of steady-state seconds per mini-batch.
  Seconds predicted_batch_time = 0.0;
};

}  // namespace autopipe::partition
