#include "sweep/runner.hpp"

#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "analysis/json.hpp"
#include "autopipe/controller.hpp"
#include "cluster/job_manager.hpp"
#include "cluster/jobs_spec.hpp"
#include "common/expect.hpp"
#include "common/stats.hpp"
#include "faults/fault_plan.hpp"
#include "models/zoo.hpp"
#include "partition/pipedream_planner.hpp"
#include "pipeline/executor.hpp"
#include "sim/background.hpp"
#include "sim/cluster.hpp"

namespace autopipe::sweep {

namespace {

pipeline::ScheduleMode schedule_by_name(const std::string& name) {
  if (name == "1f1b") return pipeline::ScheduleMode::kAsync1F1B;
  if (name == "gpipe") return pipeline::ScheduleMode::kGPipe;
  if (name == "dapple") return pipeline::ScheduleMode::kDapple;
  if (name == "chimera") return pipeline::ScheduleMode::kChimera;
  if (name == "2bw") return pipeline::ScheduleMode::kTwoBW;
  throw contract_error("unknown schedule: " + name);
}

/// Shared artifact emission: trace, flattened metrics, optional ledger and
/// time series, under `<directory>/<label>.*`.
void emit_artifacts(sim::Simulator& simulator, const std::string& label,
                    const ArtifactOptions& artifacts, bool with_ledger,
                    ScenarioResult& result) {
  const std::string base = artifacts.directory + "/" + label;
  const auto open = [](const std::string& path) {
    std::ofstream out(path);
    if (!out.good())
      throw std::runtime_error("cannot open artifact file: " + path);
    return out;
  };
  {
    auto out = open(base + ".trace");
    simulator.tracer().write_text(out);
    result.trace_file = base + ".trace";
  }
  {
    auto out = open(base + ".metrics.json");
    analysis::write_scalar_map_json(simulator.metrics().flattened(), out);
    result.metrics_file = base + ".metrics.json";
  }
  if (with_ledger) {
    simulator.ledger().finalize("run_end");
    auto out = open(base + ".ledger");
    simulator.ledger().write_text(out);
    result.ledger_file = base + ".ledger";
  }
  if (simulator.timeseries().enabled()) {
    simulator.timeseries().finalize(simulator.now(), simulator.metrics());
    auto out = open(base + ".ts");
    simulator.timeseries().write_text(out);
    result.timeseries_file = base + ".ts";
  }
}

/// The per-job model cycle of a fleet scenario: job-models entries cycled
/// across jobs, falling back to the scenario's single model.
std::vector<std::string> fleet_model_cycle(const ScenarioSpec& spec) {
  std::vector<std::string> mix;
  std::istringstream parts(spec.job_models);
  std::string part;
  while (std::getline(parts, part, '+')) {
    // Trim (the spec parser validated the names already).
    const std::size_t b = part.find_first_not_of(" \t");
    const std::size_t e = part.find_last_not_of(" \t");
    if (b != std::string::npos) mix.push_back(part.substr(b, e - b + 1));
  }
  if (mix.empty()) mix.push_back(spec.model);
  return mix;
}

/// Co-tenant scenario: spec.jobs independent AutoPipe jobs on one cluster,
/// driven by a JobManager (src/cluster/) under the scenario's arbiter.
void run_fleet_body(const ScenarioSpec& spec, const ArtifactOptions& artifacts,
                    ScenarioResult& result) {
  const bool emit = !artifacts.directory.empty();

  sim::Simulator simulator;
  if (emit) {
    simulator.tracer().set_enabled(true);
    simulator.ledger().set_enabled(true);
    if (artifacts.timeseries_interval > 0.0)
      simulator.timeseries().configure(artifacts.timeseries_interval);
  }

  sim::ClusterConfig cluster_config;
  cluster_config.num_servers = spec.servers;
  cluster_config.gpus_per_server = spec.gpus_per_server;
  cluster_config.nic_bandwidth = gbps(spec.bandwidth_gbps);
  sim::Cluster cluster(simulator, cluster_config);

  for (int j = 0; j < spec.extra_jobs; ++j)
    for (sim::WorkerId w = 0; w < cluster.num_workers(); ++w)
      cluster.add_background_job(w);

  sim::BackgroundWorkload churn(
      [] {
        sim::BackgroundWorkloadConfig config;
        config.horizon = 600.0;
        return config;
      }(),
      Rng(spec.seed));
  if (spec.churn) churn.install(simulator, cluster);

  faults::FaultPlan fault_plan;
  if (!spec.faults.empty()) {
    fault_plan = faults::parse_spec(spec.faults, spec.servers,
                                    spec.gpus_per_server);
    fault_plan.install(simulator, cluster);
  }

  cluster::FleetSpec fleet;
  fleet.arbiter = spec.arbiter;
  const auto mix = fleet_model_cycle(spec);
  for (std::size_t k = 0; k < spec.jobs; ++k) {
    cluster::JobSpec job;
    job.model = mix[k % mix.size()];
    job.iterations = spec.iterations;
    job.warmup = spec.warmup;
    fleet.jobs.push_back(std::move(job));
  }
  cluster::assign_default_workers(fleet, cluster.num_workers());

  cluster::JobManager manager(simulator, cluster, fleet);
  const cluster::FleetReport fleet_report = manager.run();

  result.throughput = fleet_report.fleet_throughput;
  result.fleet_jain = fleet_report.jain;
  result.fleet_conflicts = fleet_report.conflicts;
  result.fleet_grants = fleet_report.grants;
  result.fleet_contention_aborts = fleet_report.contention_aborts;
  result.events = simulator.events_processed();
  result.batch = manager.job(0).executor->batch_size();

  double utilization = 0.0;
  Histogram iteration_times;
  for (std::size_t i = 0; i < manager.num_jobs(); ++i) {
    const cluster::JobRuntime& job = manager.job(i);
    utilization += job.report.worker_utilization;
    result.switches += job.executor->switches_performed();
    result.switch_aborts += job.executor->switches_aborted();
    result.job_throughputs.push_back(job.report.throughput);
    const auto& ends = job.report.iteration_end_times;
    for (std::size_t n = spec.warmup + 1; n < ends.size(); ++n)
      iteration_times.add(ends[n] - ends[n - 1]);
  }
  result.utilization = utilization / static_cast<double>(manager.num_jobs());
  if (!iteration_times.empty()) {
    const Histogram::Summary s = iteration_times.summary();
    result.iteration_p50_ms = s.p50 * 1e3;
    result.iteration_p95_ms = s.p95 * 1e3;
    result.iteration_p99_ms = s.p99 * 1e3;
  }

  if (emit) emit_artifacts(simulator, spec.label, artifacts, true, result);
}

void run_body(const ScenarioSpec& spec, const ArtifactOptions& artifacts,
              ScenarioResult& result) {
  if (spec.jobs > 1) {
    run_fleet_body(spec, artifacts, result);
    return;
  }
  const bool emit = !artifacts.directory.empty();
  const auto model = models::model_by_name(spec.model);

  sim::Simulator simulator;
  if (emit) {
    simulator.tracer().set_enabled(true);
    if (spec.system == "autopipe") simulator.ledger().set_enabled(true);
    if (artifacts.timeseries_interval > 0.0)
      simulator.timeseries().configure(artifacts.timeseries_interval);
  }

  sim::ClusterConfig cluster_config;
  cluster_config.num_servers = spec.servers;
  cluster_config.gpus_per_server = spec.gpus_per_server;
  cluster_config.nic_bandwidth = gbps(spec.bandwidth_gbps);
  sim::Cluster cluster(simulator, cluster_config);

  for (int j = 0; j < spec.extra_jobs; ++j)
    for (sim::WorkerId w = 0; w < cluster.num_workers(); ++w)
      cluster.add_background_job(w);

  // The churn schedule is pre-materialized at install time from an Rng
  // seeded by the scenario alone; the workload object outlives the run.
  sim::BackgroundWorkload churn(
      [] {
        sim::BackgroundWorkloadConfig config;
        config.horizon = 600.0;
        return config;
      }(),
      Rng(spec.seed));
  if (spec.churn) churn.install(simulator, cluster);

  faults::FaultPlan fault_plan;
  if (!spec.faults.empty()) {
    fault_plan = faults::parse_spec(spec.faults, spec.servers,
                                    spec.gpus_per_server);
    fault_plan.install(simulator, cluster);
  }

  const auto env = partition::EnvironmentView::from_cluster(
      cluster, comm::pytorch_profile(), comm::SyncScheme::kRing);
  partition::PipeDreamPlanner planner(model, env,
                                      model.default_batch_size());
  const auto plan = planner.plan(cluster.num_workers());
  const auto partition =
      spec.system == "even"
          ? partition::Partition::even_split(
                model.num_layers(),
                [&] {
                  std::vector<sim::WorkerId> all(cluster.num_workers());
                  for (sim::WorkerId w = 0; w < all.size(); ++w) all[w] = w;
                  return all;
                }())
          : plan.partition;

  pipeline::ExecutorConfig executor_config;
  executor_config.framework = comm::pytorch_profile();
  executor_config.sync_scheme = comm::SyncScheme::kRing;
  executor_config.mode = schedule_by_name(spec.schedule);
  executor_config.micro_batches = spec.micro_batches;
  pipeline::PipelineExecutor executor(cluster, model, partition,
                                      executor_config);

  std::unique_ptr<core::AutoPipeController> controller;
  if (spec.system == "autopipe") {
    core::ControllerConfig cc;
    cc.arbiter_mode = core::ControllerConfig::ArbiterMode::kThreshold;
    cc.use_meta_network = false;
    controller = std::make_unique<core::AutoPipeController>(
        cluster, executor, cc, nullptr, nullptr);
    controller->attach();
    executor.set_iteration_callback(
        [&](std::size_t iters) { controller->on_iteration(iters); });
  }

  const auto report = executor.run(spec.iterations, spec.warmup);

  result.throughput = report.throughput;
  result.utilization = report.worker_utilization;
  result.batch = executor.batch_size();
  result.switches = executor.switches_performed();
  result.switch_aborts = executor.switches_aborted();
  result.events = simulator.events_processed();

  Histogram iteration_times;
  for (std::size_t i = spec.warmup + 1;
       i < report.iteration_end_times.size(); ++i) {
    iteration_times.add(report.iteration_end_times[i] -
                        report.iteration_end_times[i - 1]);
  }
  if (!iteration_times.empty()) {
    const Histogram::Summary s = iteration_times.summary();
    result.iteration_p50_ms = s.p50 * 1e3;
    result.iteration_p95_ms = s.p95 * 1e3;
    result.iteration_p99_ms = s.p99 * 1e3;
  }

  if (emit)
    emit_artifacts(simulator, spec.label, artifacts,
                   spec.system == "autopipe", result);
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const ArtifactOptions& artifacts) {
  ScenarioResult result;
  result.spec = spec;
  const auto start = std::chrono::steady_clock::now();
  try {
    run_body(spec, artifacts, result);
    result.ok = true;
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace autopipe::sweep
