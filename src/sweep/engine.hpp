// The fan-out engine under the scenario sweep: run N index-addressed jobs
// across a worker-thread pool. Determinism contract: the engine imposes no
// ordering of its own — job i writes only to slot i of whatever result
// array the caller preallocated, so the merged output depends solely on the
// index space, never on thread count or scheduling. Anything order-
// dependent (tables, JSON, stdout) is emitted by the caller after
// run_indexed returns, walking the slots in index order.
#pragma once

#include <cstddef>
#include <functional>

namespace autopipe::sweep {

/// Number of worker threads a `jobs` request resolves to: 0 means "one per
/// hardware thread" (at least 1); anything else is used as given.
std::size_t resolve_jobs(std::size_t jobs);

/// Execute body(0) .. body(count-1) across resolve_jobs(jobs) worker
/// threads. Indices are claimed from an atomic counter, so threads stay
/// busy regardless of per-index runtime skew. Blocks until every index has
/// finished. With jobs == 1 the bodies run inline on the calling thread (no
/// pool), which keeps single-threaded runs trivially debuggable/profilable.
///
/// The body must confine its writes to per-index state (slot i of a
/// preallocated vector); it is invoked concurrently from multiple threads.
/// Exceptions thrown by a body are captured per index; after all indices
/// complete, the one with the lowest index is rethrown — identical to what
/// a serial loop that failed on that index would have surfaced, except
/// later indices still ran.
void run_indexed(std::size_t count, std::size_t jobs,
                 const std::function<void(std::size_t)>& body);

}  // namespace autopipe::sweep
