#include "sweep/spec.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/expect.hpp"
#include "models/zoo.hpp"

namespace autopipe::sweep {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(s);
  while (std::getline(is, item, sep)) out.push_back(item);
  return out;
}

double parse_double(const std::string& key, const std::string& v) {
  try {
    std::size_t pos = 0;
    const double d = std::stod(v, &pos);
    AUTOPIPE_EXPECT_MSG(pos == v.size(), "sweep spec: bad number '"
                                             << v << "' for key '" << key
                                             << "'");
    return d;
  } catch (const contract_error&) {
    throw;
  } catch (const std::exception&) {
    throw contract_error("sweep spec: bad number '" + v + "' for key '" +
                         key + "'");
  }
}

std::uint64_t parse_u64(const std::string& key, const std::string& v) {
  const double d = parse_double(key, v);
  AUTOPIPE_EXPECT_MSG(d >= 0 && d == static_cast<double>(
                                        static_cast<std::uint64_t>(d)),
                      "sweep spec: key '" << key
                                          << "' wants a non-negative "
                                             "integer, got '" << v << "'");
  return static_cast<std::uint64_t>(d);
}

/// Seeds accept `lo..hi` inclusive ranges alongside plain values.
std::vector<std::uint64_t> parse_seed_values(
    const std::vector<std::string>& values) {
  std::vector<std::uint64_t> out;
  for (const std::string& v : values) {
    const std::size_t dots = v.find("..");
    if (dots == std::string::npos) {
      out.push_back(parse_u64("seed", v));
      continue;
    }
    const std::uint64_t lo = parse_u64("seed", trim(v.substr(0, dots)));
    const std::uint64_t hi = parse_u64("seed", trim(v.substr(dots + 2)));
    AUTOPIPE_EXPECT_MSG(lo <= hi, "sweep spec: empty seed range '" << v
                                                                   << "'");
    AUTOPIPE_EXPECT_MSG(hi - lo < 100000,
                        "sweep spec: seed range '" << v << "' too large");
    for (std::uint64_t s = lo; s <= hi; ++s) out.push_back(s);
  }
  return out;
}

std::string format_compact(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// Characters outside [A-Za-z0-9._-] become '_' so labels are safe as file
/// name components.
std::string sanitize(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '.' &&
        c != '_' && c != '-') {
      c = '_';
    }
  }
  return out;
}

}  // namespace

std::size_t SweepSpec::scenario_count() const {
  return models.size() * systems.size() * servers.size() *
         gpus_per_server.size() * bandwidth_gbps.size() * extra_jobs.size() *
         jobs.size() * churn.size() * faults.size() * seeds.size();
}

std::vector<ScenarioSpec> SweepSpec::expand() const {
  std::vector<ScenarioSpec> out;
  out.reserve(scenario_count());
  for (const std::string& model : models)
    for (const std::string& system : systems)
      for (std::size_t srv : servers)
        for (std::size_t gps : gpus_per_server)
          for (double bw : bandwidth_gbps)
            for (int extra : extra_jobs)
              for (std::size_t fleet : jobs)
                for (bool ch : churn)
                  for (std::size_t f = 0; f < faults.size(); ++f)
                    for (std::uint64_t seed : seeds) {
                      ScenarioSpec s;
                      s.model = model;
                      s.system = system;
                      s.servers = srv;
                      s.gpus_per_server = gps;
                      s.bandwidth_gbps = bw;
                      s.extra_jobs = extra;
                      s.jobs = fleet;
                      s.job_models = job_models;
                      s.arbiter = arbiter;
                      s.churn = ch;
                      s.faults = faults[f];
                      s.seed = seed;
                      s.iterations = iterations;
                      s.warmup = warmup;
                      s.micro_batches = micro_batches;
                      s.schedule = schedule;
                      // The faults axis appears by index: fault specs hold
                      // characters labels cannot (':', '=', ','), and the
                      // full string is recorded in the JSON per scenario.
                      // The fleet component appears only for actual fleets
                      // so single-tenant labels stay byte-stable.
                      s.label = sanitize(model) + "." + sanitize(system) +
                                ".s" + std::to_string(srv) + "x" +
                                std::to_string(gps) + ".bw" +
                                format_compact(bw) + ".j" +
                                std::to_string(extra) +
                                (fleet > 1
                                     ? ".J" + std::to_string(fleet) + "." +
                                           sanitize(arbiter)
                                     : "") +
                                (ch ? ".c1" : ".c0") + ".f" +
                                std::to_string(f) + ".seed" +
                                std::to_string(seed);
                      out.push_back(std::move(s));
                    }
  return out;
}

SweepSpec parse_sweep_spec(const std::string& text) {
  SweepSpec spec;
  // Newlines and ';' both end a statement, so inline one-liner specs work.
  // '#' comments run to end of *line* and are stripped first, so a ';'
  // inside prose never starts a phantom statement. Each statement keeps its
  // source line number for diagnostics.
  std::vector<std::pair<std::size_t, std::string>> statements;
  {
    std::size_t line_no = 0;
    for (std::string chunk : split(text, '\n')) {
      ++line_no;
      const std::size_t hash = chunk.find('#');
      if (hash != std::string::npos) chunk.resize(hash);
      for (const std::string& stmt : split(chunk, ';'))
        statements.emplace_back(line_no, stmt);
    }
  }

  // First line each key appeared on. A repeated key used to be silently
  // last-wins — a hard-to-spot way to lose half a sweep — so it is now a
  // parse error naming both occurrences.
  std::map<std::string, std::size_t> seen;

  for (const auto& [line_no, raw] : statements) {
    const std::string line = trim(raw);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    AUTOPIPE_EXPECT_MSG(eq != std::string::npos,
                        "sweep spec: expected 'key = value', got '" << line
                                                                    << "'");
    const std::string key = trim(line.substr(0, eq));
    if (const auto it = seen.find(key); it != seen.end()) {
      throw contract_error(
          "sweep spec: duplicate key '" + key + "' (lines " +
          std::to_string(it->second) + " and " + std::to_string(line_no) +
          "); merge the value lists into one statement");
    }
    seen.emplace(key, line_no);
    std::vector<std::string> values;
    for (const std::string& v : split(line.substr(eq + 1), ','))
      values.push_back(trim(v));
    AUTOPIPE_EXPECT_MSG(!values.empty() && !values[0].empty(),
                        "sweep spec: key '" << key << "' has no values");

    const auto scalar = [&]() -> const std::string& {
      AUTOPIPE_EXPECT_MSG(values.size() == 1,
                          "sweep spec: key '" << key
                                              << "' takes a single value");
      return values[0];
    };

    if (key == "model") {
      for (const std::string& v : values) models::model_by_name(v);  // validate
      spec.models = values;
    } else if (key == "system") {
      for (const std::string& v : values)
        AUTOPIPE_EXPECT_MSG(v == "autopipe" || v == "pipedream" ||
                                v == "even",
                            "sweep spec: unknown system '" << v << "'");
      spec.systems = values;
    } else if (key == "servers") {
      spec.servers.clear();
      for (const std::string& v : values) {
        const std::uint64_t n = parse_u64(key, v);
        AUTOPIPE_EXPECT_MSG(n >= 1, "sweep spec: servers must be >= 1");
        spec.servers.push_back(static_cast<std::size_t>(n));
      }
    } else if (key == "gpus-per-server") {
      spec.gpus_per_server.clear();
      for (const std::string& v : values) {
        const std::uint64_t n = parse_u64(key, v);
        AUTOPIPE_EXPECT_MSG(n >= 1,
                            "sweep spec: gpus-per-server must be >= 1");
        spec.gpus_per_server.push_back(static_cast<std::size_t>(n));
      }
    } else if (key == "bandwidth") {
      spec.bandwidth_gbps.clear();
      for (const std::string& v : values) {
        const double bw = parse_double(key, v);
        AUTOPIPE_EXPECT_MSG(bw > 0, "sweep spec: bandwidth must be > 0");
        spec.bandwidth_gbps.push_back(bw);
      }
    } else if (key == "extra-jobs") {
      spec.extra_jobs.clear();
      for (const std::string& v : values)
        spec.extra_jobs.push_back(static_cast<int>(parse_u64(key, v)));
    } else if (key == "churn") {
      spec.churn.clear();
      for (const std::string& v : values) {
        AUTOPIPE_EXPECT_MSG(v == "true" || v == "false",
                            "sweep spec: churn wants true/false, got '"
                                << v << "'");
        spec.churn.push_back(v == "true");
      }
    } else if (key == "faults") {
      spec.faults.clear();
      for (const std::string& v : values)
        spec.faults.push_back(v == "none" ? "" : v);
    } else if (key == "seed") {
      spec.seeds = parse_seed_values(values);
    } else if (key == "iterations") {
      spec.iterations = static_cast<std::size_t>(parse_u64(key, scalar()));
      AUTOPIPE_EXPECT_MSG(spec.iterations >= 1,
                          "sweep spec: iterations must be >= 1");
    } else if (key == "warmup") {
      spec.warmup = static_cast<std::size_t>(parse_u64(key, scalar()));
    } else if (key == "micro-batches") {
      spec.micro_batches = static_cast<std::size_t>(parse_u64(key, scalar()));
      AUTOPIPE_EXPECT_MSG(spec.micro_batches >= 1,
                          "sweep spec: micro-batches must be >= 1");
    } else if (key == "schedule") {
      const std::string& v = scalar();
      AUTOPIPE_EXPECT_MSG(v == "1f1b" || v == "gpipe" || v == "dapple" ||
                              v == "chimera" || v == "2bw",
                          "sweep spec: unknown schedule '" << v << "'");
      spec.schedule = v;
    } else if (key == "jobs") {
      spec.jobs.clear();
      for (const std::string& v : values) {
        const std::uint64_t n = parse_u64(key, v);
        AUTOPIPE_EXPECT_MSG(n >= 1 && n <= 64,
                            "sweep spec: jobs must be in [1, 64], got '"
                                << v << "'");
        spec.jobs.push_back(static_cast<std::size_t>(n));
      }
    } else if (key == "job-models") {
      const std::string& v = scalar();
      std::istringstream parts(v);
      std::string part;
      bool any = false;
      while (std::getline(parts, part, '+')) {
        const std::string name = trim(part);
        AUTOPIPE_EXPECT_MSG(!name.empty(),
                            "sweep spec: empty model in job-models '"
                                << v << "'");
        models::model_by_name(name);  // validate
        any = true;
      }
      AUTOPIPE_EXPECT_MSG(any, "sweep spec: job-models has no models");
      spec.job_models = v;
    } else if (key == "arbiter") {
      const std::string& v = scalar();
      AUTOPIPE_EXPECT_MSG(v == "greedy" || v == "priority" || v == "auction",
                          "sweep spec: unknown arbiter '" << v << "'");
      spec.arbiter = v;
    } else {
      throw contract_error("sweep spec: unknown key '" + key + "'");
    }
  }
  AUTOPIPE_EXPECT_MSG(spec.warmup < spec.iterations,
                      "sweep spec: warmup (" << spec.warmup
                                             << ") must be < iterations ("
                                             << spec.iterations << ")");
  AUTOPIPE_EXPECT_MSG(spec.scenario_count() > 0,
                      "sweep spec expands to zero scenarios");
  return spec;
}

SweepSpec load_sweep_spec(const std::string& arg) {
  if (!arg.empty() && arg[0] == '@') {
    const std::string path = arg.substr(1);
    std::ifstream in(path);
    if (!in.good())
      throw std::runtime_error("cannot read sweep spec file: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return parse_sweep_spec(text.str());
  }
  return parse_sweep_spec(arg);
}

}  // namespace autopipe::sweep
