// Declarative scenario-sweep specification. A sweep is a grid over the
// scenario axes the driver tools expose (model, system, cluster shape, NIC
// bandwidth, co-located jobs, churn, fault plan, seed); expanding the spec
// yields the full cross product as an ordered list of self-contained
// ScenarioSpecs. The expansion order is fixed (axis nesting, values in
// spec order), so "scenario #17 of this spec" means the same run on every
// machine and at every thread count — the sweep engine leans on that to
// merge parallel results deterministically.
//
// Spec text is `key = value[, value...]` lines; lines may also be separated
// by ';' so a whole spec fits in one shell argument. Blank lines and
// '#'-comments are ignored. Axis keys accept value lists; scalar keys
// (iterations, warmup, ...) do not. `seed` accepts `lo..hi` ranges.
// See docs/BENCHMARKS.md for the full grammar.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace autopipe::sweep {

/// One fully-specified scenario: everything a runner needs to reproduce the
/// run bit-for-bit, with no environmental inputs.
struct ScenarioSpec {
  /// Filesystem-safe unique name derived from the axis values
  /// ("resnet50.autopipe.s5x2.bw25.j0.c0.f0.seed1").
  std::string label;

  std::string model = "resnet50";
  /// autopipe | pipedream | even (mirrors `autopipe_sim --system`).
  std::string system = "autopipe";
  std::size_t servers = 5;
  std::size_t gpus_per_server = 2;
  double bandwidth_gbps = 25.0;
  int extra_jobs = 0;
  bool churn = false;
  /// `faults::parse_spec` input; empty = fault-free.
  std::string faults;
  std::uint64_t seed = 1;

  /// Co-tenancy axis: number of independent AutoPipe jobs sharing the
  /// cluster. 1 (the default) runs the classic single-tenant path; > 1
  /// runs a JobManager fleet (src/cluster/) and records the fleet_* result
  /// fields. Single-tenant labels and report rows are unchanged.
  std::size_t jobs = 1;
  /// '+'-separated per-job model mix cycled across fleet jobs
  /// ("alexnet+vgg16"); empty = every job trains `model`. Fleet runs only.
  std::string job_models;
  /// Cluster arbiter policy for fleet runs: greedy | priority | auction.
  std::string arbiter = "greedy";

  std::size_t iterations = 40;
  std::size_t warmup = 10;
  std::size_t micro_batches = 4;
  /// 1f1b | gpipe | dapple | chimera | 2bw.
  std::string schedule = "1f1b";
};

/// The parsed grid: per-axis value lists plus the run-shape scalars shared
/// by every scenario.
struct SweepSpec {
  std::vector<std::string> models = {"resnet50"};
  std::vector<std::string> systems = {"autopipe"};
  std::vector<std::size_t> servers = {5};
  std::vector<std::size_t> gpus_per_server = {2};
  std::vector<double> bandwidth_gbps = {25.0};
  std::vector<int> extra_jobs = {0};
  std::vector<bool> churn = {false};
  std::vector<std::string> faults = {""};
  std::vector<std::uint64_t> seeds = {1};
  /// Fleet-size axis; {1} keeps every scenario single-tenant.
  std::vector<std::size_t> jobs = {1};

  std::size_t iterations = 40;
  std::size_t warmup = 10;
  std::size_t micro_batches = 4;
  std::string schedule = "1f1b";
  std::string job_models;  ///< '+'-separated fleet model mix (scalar)
  std::string arbiter = "greedy";

  /// Number of scenarios the grid expands to.
  std::size_t scenario_count() const;

  /// The ordered cross product. Axis nesting (outermost first): model,
  /// system, servers, gpus-per-server, bandwidth, extra-jobs, jobs, churn,
  /// faults, seed; each axis iterates its values in spec order. The jobs
  /// axis only contributes a label component (".J<n>") when n > 1, so
  /// single-tenant labels are stable across spec versions.
  std::vector<ScenarioSpec> expand() const;
};

/// Parse spec text (see the header comment for the grammar). Throws
/// common::contract_error with a key/value diagnostic on malformed input:
/// unknown keys, duplicate keys (the diagnostic names the key and both
/// source lines), empty value lists, non-numeric numbers, unknown model or
/// system names, a zero-scenario grid.
SweepSpec parse_sweep_spec(const std::string& text);

/// Resolve a `--spec=` argument: `@path` loads the file (std::runtime_error
/// when unreadable), anything else is inline spec text.
SweepSpec load_sweep_spec(const std::string& arg);

}  // namespace autopipe::sweep
