// Declarative scenario-sweep specification. A sweep is a grid over the
// scenario axes the driver tools expose (model, system, cluster shape, NIC
// bandwidth, co-located jobs, churn, fault plan, seed); expanding the spec
// yields the full cross product as an ordered list of self-contained
// ScenarioSpecs. The expansion order is fixed (axis nesting, values in
// spec order), so "scenario #17 of this spec" means the same run on every
// machine and at every thread count — the sweep engine leans on that to
// merge parallel results deterministically.
//
// Spec text is `key = value[, value...]` lines; lines may also be separated
// by ';' so a whole spec fits in one shell argument. Blank lines and
// '#'-comments are ignored. Axis keys accept value lists; scalar keys
// (iterations, warmup, ...) do not. `seed` accepts `lo..hi` ranges.
// See docs/BENCHMARKS.md for the full grammar.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace autopipe::sweep {

/// One fully-specified scenario: everything a runner needs to reproduce the
/// run bit-for-bit, with no environmental inputs.
struct ScenarioSpec {
  /// Filesystem-safe unique name derived from the axis values
  /// ("resnet50.autopipe.s5x2.bw25.j0.c0.f0.seed1").
  std::string label;

  std::string model = "resnet50";
  /// autopipe | pipedream | even (mirrors `autopipe_sim --system`).
  std::string system = "autopipe";
  std::size_t servers = 5;
  std::size_t gpus_per_server = 2;
  double bandwidth_gbps = 25.0;
  int extra_jobs = 0;
  bool churn = false;
  /// `faults::parse_spec` input; empty = fault-free.
  std::string faults;
  std::uint64_t seed = 1;

  std::size_t iterations = 40;
  std::size_t warmup = 10;
  std::size_t micro_batches = 4;
  /// 1f1b | gpipe | dapple | chimera | 2bw.
  std::string schedule = "1f1b";
};

/// The parsed grid: per-axis value lists plus the run-shape scalars shared
/// by every scenario.
struct SweepSpec {
  std::vector<std::string> models = {"resnet50"};
  std::vector<std::string> systems = {"autopipe"};
  std::vector<std::size_t> servers = {5};
  std::vector<std::size_t> gpus_per_server = {2};
  std::vector<double> bandwidth_gbps = {25.0};
  std::vector<int> extra_jobs = {0};
  std::vector<bool> churn = {false};
  std::vector<std::string> faults = {""};
  std::vector<std::uint64_t> seeds = {1};

  std::size_t iterations = 40;
  std::size_t warmup = 10;
  std::size_t micro_batches = 4;
  std::string schedule = "1f1b";

  /// Number of scenarios the grid expands to.
  std::size_t scenario_count() const;

  /// The ordered cross product. Axis nesting (outermost first): model,
  /// system, servers, gpus-per-server, bandwidth, extra-jobs, churn,
  /// faults, seed; each axis iterates its values in spec order.
  std::vector<ScenarioSpec> expand() const;
};

/// Parse spec text (see the header comment for the grammar). Throws
/// common::contract_error with a key/value diagnostic on malformed input:
/// unknown keys, empty value lists, non-numeric numbers, unknown model or
/// system names, a zero-scenario grid.
SweepSpec parse_sweep_spec(const std::string& text);

/// Resolve a `--spec=` argument: `@path` loads the file (std::runtime_error
/// when unreadable), anything else is inline spec text.
SweepSpec load_sweep_spec(const std::string& arg);

}  // namespace autopipe::sweep
