#include "sweep/engine.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "common/profile.hpp"

namespace autopipe::sweep {

std::size_t resolve_jobs(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void run_indexed(std::size_t count, std::size_t jobs,
                 const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t workers = std::min(resolve_jobs(jobs), count);

  std::vector<std::exception_ptr> errors(count);
  std::atomic<std::size_t> next{0};
  const auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        PROF_SPAN("sweep/scenario");
        body(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  if (workers == 1) {
    drain();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(drain);
    for (std::thread& t : pool) t.join();
  }

  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace autopipe::sweep
