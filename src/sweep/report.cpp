#include "sweep/report.hpp"

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "analysis/json.hpp"
#include "common/table.hpp"

namespace autopipe::sweep {

void write_summary_table(const SweepResult& result, std::ostream& os) {
  TextTable table({"scenario", "status", "samples/s", "util", "p50(ms)",
                   "switches", "aborts", "events"});
  std::size_t failed = 0;
  for (const ScenarioResult& r : result.scenarios) {
    if (r.ok) {
      table.add_row({r.spec.label, "ok", TextTable::num(r.throughput, 1),
                     TextTable::num(r.utilization, 3),
                     TextTable::num(r.iteration_p50_ms, 3),
                     std::to_string(r.switches),
                     std::to_string(r.switch_aborts),
                     std::to_string(r.events)});
    } else {
      ++failed;
      table.add_row({r.spec.label, "FAIL", "-", "-", "-", "-", "-", "-"});
    }
  }
  table.print(os, "sweep: " + std::to_string(result.scenarios.size()) +
                      " scenarios");
  if (failed > 0) {
    os << "\n" << failed << " scenario(s) failed:\n";
    for (const ScenarioResult& r : result.scenarios)
      if (!r.ok) os << "  " << r.spec.label << ": " << r.error << "\n";
  }
}

void write_bench_json(const SweepResult& result, std::ostream& os,
                      bool include_timing) {
  analysis::JsonWriter json(os);
  json.begin_object();
  json.kv("schema", "autopipe-sweep-v1");
  json.kv("scenario_count", result.scenarios.size());
  std::size_t ok_count = 0;
  for (const ScenarioResult& r : result.scenarios)
    if (r.ok) ++ok_count;
  json.kv("ok_count", ok_count);

  json.key("scenarios");
  json.begin_array();
  for (const ScenarioResult& r : result.scenarios) {
    json.begin_object();
    json.kv("label", r.spec.label);
    json.kv("model", r.spec.model);
    json.kv("system", r.spec.system);
    json.kv("servers", r.spec.servers);
    json.kv("gpus_per_server", r.spec.gpus_per_server);
    json.kv("bandwidth_gbps", r.spec.bandwidth_gbps);
    json.kv("extra_jobs", static_cast<std::int64_t>(r.spec.extra_jobs));
    json.kv("churn", r.spec.churn);
    json.kv("faults", r.spec.faults);
    json.kv("seed", static_cast<std::uint64_t>(r.spec.seed));
    json.kv("iterations", r.spec.iterations);
    json.kv("warmup", r.spec.warmup);
    json.kv("ok", r.ok);
    if (r.ok) {
      json.kv("throughput", r.throughput);
      json.kv("utilization", r.utilization);
      json.kv("batch", r.batch);
      json.kv("iteration_p50_ms", r.iteration_p50_ms);
      json.kv("iteration_p95_ms", r.iteration_p95_ms);
      json.kv("iteration_p99_ms", r.iteration_p99_ms);
      json.kv("switches", r.switches);
      json.kv("switch_aborts", r.switch_aborts);
      json.kv("events", r.events);
      if (r.spec.jobs > 1) {
        // Co-tenancy view; omitted for single-tenant scenarios so legacy
        // bench JSON stays byte-stable.
        json.kv("fleet_jobs", r.spec.jobs);
        json.kv("arbiter", r.spec.arbiter);
        json.kv("fleet_jain", r.fleet_jain);
        json.kv("fleet_conflicts", r.fleet_conflicts);
        json.kv("fleet_grants", r.fleet_grants);
        json.kv("fleet_contention_aborts", r.fleet_contention_aborts);
        json.key("job_throughputs");
        json.begin_array();
        for (double t : r.job_throughputs) json.value(t);
        json.end();
      }
    } else {
      json.kv("error", r.error);
    }
    if (!r.trace_file.empty()) json.kv("trace_file", r.trace_file);
    if (!r.metrics_file.empty()) json.kv("metrics_file", r.metrics_file);
    if (!r.ledger_file.empty()) json.kv("ledger_file", r.ledger_file);
    if (!r.timeseries_file.empty())
      json.kv("timeseries_file", r.timeseries_file);
    json.end();
  }
  json.end();

  if (include_timing) {
    json.key("timing");
    json.begin_object();
    json.kv("jobs", result.jobs);
    json.kv("wall_seconds", result.wall_seconds);
    json.key("scenario_wall_seconds");
    json.begin_array();
    for (const ScenarioResult& r : result.scenarios)
      json.value(r.wall_seconds);
    json.end();
    if (!result.profile.empty()) {
      json.key("profile");
      json.begin_array();
      for (const HostProfileRow& row : result.profile) {
        json.begin_object();
        json.kv("name", row.name);
        json.kv("count", row.count);
        json.kv("inclusive_ns", row.inclusive_ns);
        json.kv("exclusive_ns", row.exclusive_ns);
        json.end();
      }
      json.end();
    }
    json.end();
  }
  json.end();
  os << "\n";
}

std::map<std::string, double> read_baseline_throughput(std::istream& is) {
  // Deliberately not a JSON parser: the input is our own write_bench_json
  // output, where "label" and "throughput" each occupy one line of a
  // scenario object and labels never need escaping.
  std::map<std::string, double> out;
  std::string line;
  std::string label;
  bool have_label = false;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto fail = [&](const std::string& why) {
      throw std::runtime_error("baseline line " + std::to_string(lineno) +
                               ": " + why);
    };
    std::size_t pos = line.find("\"label\":");
    if (pos != std::string::npos) {
      const std::size_t open = line.find('"', pos + 8);
      const std::size_t close =
          open == std::string::npos ? std::string::npos
                                    : line.find('"', open + 1);
      if (close == std::string::npos) fail("malformed label entry");
      label = line.substr(open + 1, close - open - 1);
      have_label = true;
      continue;
    }
    pos = line.find("\"throughput\":");
    if (pos == std::string::npos) continue;
    if (!have_label) fail("throughput entry before any label");
    std::string num = line.substr(pos + 13);
    if (!num.empty() && num.back() == ',') num.pop_back();
    try {
      out[label] = std::stod(num);
    } catch (const std::exception&) {
      fail("malformed throughput value '" + num + "'");
    }
    have_label = false;
  }
  if (out.empty())
    throw std::runtime_error(
        "baseline contains no scenario throughput entries");
  return out;
}

GateReport gate_against_baseline(
    const SweepResult& result,
    const std::map<std::string, double>& baseline, double tolerance) {
  GateReport report;
  std::map<std::string, const ScenarioResult*> by_label;
  for (const ScenarioResult& r : result.scenarios)
    by_label[r.spec.label] = &r;

  for (const auto& [label, expected] : baseline) {
    const auto it = by_label.find(label);
    if (it == by_label.end()) {
      report.violations.push_back({label, expected, 0.0, "missing"});
      continue;
    }
    ++report.compared;
    const ScenarioResult& r = *it->second;
    if (!r.ok) {
      report.violations.push_back({label, expected, 0.0, "failed"});
      continue;
    }
    if (r.throughput < expected * (1.0 - tolerance)) {
      report.violations.push_back(
          {label, expected, r.throughput, "regression"});
    }
  }
  return report;
}

void write_gate_report(const GateReport& report, double tolerance,
                       std::ostream& os) {
  if (report.ok()) {
    os << "baseline gate: " << report.compared
       << " scenario(s) within tolerance (" << TextTable::num(tolerance * 100, 1)
       << "%)\n";
    return;
  }
  TextTable table({"scenario", "baseline", "measured", "reason"});
  for (const GateViolation& v : report.violations) {
    table.add_row({v.label, TextTable::num(v.baseline, 1),
                   v.reason == "missing" ? "-" : TextTable::num(v.measured, 1),
                   v.reason});
  }
  table.print(os, "baseline gate FAILED (tolerance " +
                      TextTable::num(tolerance * 100, 1) + "%)");
}

}  // namespace autopipe::sweep
