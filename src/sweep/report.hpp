// Sweep output: the human summary table, the machine-readable
// BENCH_sweep.json, and the perf-regression gate against a committed
// baseline.
//
// Determinism contract: everything under the JSON "scenarios" key is a pure
// function of the sweep spec, serialized with the analyzer's canonical
// number formatting — two runs of the same spec produce byte-identical
// sections at any thread count. Host timing (wall clock, jobs) is
// non-deterministic by nature and lives in a separate "timing" section that
// callers include only when they want it (the determinism tests and the
// committed baselines leave it out). Gating therefore compares *simulated*
// throughput, which does not drift with load on the machine running the
// sweep; the tolerance band absorbs legitimate model changes below the
// gating threshold.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sweep/runner.hpp"

namespace autopipe::sweep {

/// One host-profiler category row (see src/common/profile) for the timing
/// section — host wall time, so non-deterministic like the rest of timing.
struct HostProfileRow {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t inclusive_ns = 0;
  std::uint64_t exclusive_ns = 0;
};

/// All scenario outcomes in spec-expansion order, plus run-wide host timing.
struct SweepResult {
  std::vector<ScenarioResult> scenarios;
  std::size_t jobs = 1;        ///< worker threads the sweep ran with
  double wall_seconds = 0.0;   ///< host wall-clock for the whole sweep
  /// Per-category host-profiler breakdown; empty unless the sweep ran with
  /// the self-profiler enabled (autopipe_sweep --profile).
  std::vector<HostProfileRow> profile;
};

/// Render the per-scenario summary table (one row per scenario, spec
/// order) followed by a failure recap when any scenario failed.
void write_summary_table(const SweepResult& result, std::ostream& os);

/// Serialize BENCH_sweep.json. `include_timing` adds the host-timing
/// section; leave it off wherever byte-identical output matters.
void write_bench_json(const SweepResult& result, std::ostream& os,
                      bool include_timing);

/// Read label -> throughput from a BENCH_sweep.json previously produced by
/// write_bench_json. Throws std::runtime_error when the stream contains no
/// scenario entries (wrong file) or a scenario entry is malformed.
std::map<std::string, double> read_baseline_throughput(std::istream& is);

/// One gate violation: a scenario whose measured simulated throughput fell
/// below baseline * (1 - tolerance), or a baseline scenario the sweep no
/// longer produced (missing — renamed labels count as regressions until the
/// baseline is regenerated), or a scenario that failed outright.
struct GateViolation {
  std::string label;
  double baseline = 0.0;
  double measured = 0.0;
  std::string reason;  ///< "regression" | "missing" | "failed"
};

struct GateReport {
  std::vector<GateViolation> violations;
  /// Scenarios compared against the baseline (missing ones not included).
  std::size_t compared = 0;
  bool ok() const { return violations.empty(); }
};

/// Compare a sweep against a baseline with a fractional tolerance
/// (0.10 = fail below 90% of baseline). Scenarios absent from the baseline
/// pass unexamined, so adding scenarios does not require regenerating it.
GateReport gate_against_baseline(
    const SweepResult& result,
    const std::map<std::string, double>& baseline, double tolerance);

/// Render the gate outcome (violations table or an all-clear line).
void write_gate_report(const GateReport& report, double tolerance,
                       std::ostream& os);

}  // namespace autopipe::sweep
