// One scenario, run in isolation. Every run_scenario call builds its own
// Simulator / Cluster / planner / executor / controller from the
// ScenarioSpec alone — no shared mutable state, no environmental input —
// so scenarios are both bit-reproducible (seeded Rng streams derived from
// spec.seed) and safe to run concurrently from the sweep engine's pool.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/spec.hpp"

namespace autopipe::sweep {

/// Per-scenario artifact emission. When `directory` is non-empty each
/// scenario writes `<directory>/<label>.trace` (text event trace) and
/// `<directory>/<label>.metrics.json`; autopipe-controlled scenarios also
/// write `<directory>/<label>.ledger`. Paths land in the ScenarioResult.
struct ArtifactOptions {
  std::string directory;
  /// When > 0, also sample the metrics registry every `timeseries_interval`
  /// sim-seconds and write `<directory>/<label>.ts` (autopipe-ts-v1 — see
  /// docs/TELEMETRY.md). The sampler output is a pure function of the spec,
  /// so it is byte-identical across --jobs values and event-queue kinds.
  double timeseries_interval = 0.0;
};

/// Outcome of one scenario. Every field except wall_seconds is a pure
/// function of the ScenarioSpec (wall_seconds is host time and is kept out
/// of the deterministic report sections).
struct ScenarioResult {
  ScenarioSpec spec;
  bool ok = false;
  /// Exception text when !ok; the sweep keeps going and reports it.
  std::string error;

  double throughput = 0.0;       ///< samples/sec (simulated)
  double utilization = 0.0;      ///< mean worker busy fraction
  std::size_t batch = 0;         ///< mini-batch size the run used
  std::size_t switches = 0;      ///< partition switches committed
  std::size_t switch_aborts = 0; ///< switch attempts aborted + rolled back
  std::uint64_t events = 0;      ///< simulator events processed
  double iteration_p50_ms = 0.0; ///< measured-window iteration time
  double iteration_p95_ms = 0.0;
  double iteration_p99_ms = 0.0;

  // Fleet scenarios only (spec.jobs > 1): aggregate throughput lands in
  // `throughput`, these carry the co-tenancy view. Zero/empty — and never
  // serialized — for single-tenant scenarios, so legacy bench JSON is
  // byte-stable.
  double fleet_jain = 0.0;               ///< Jain fairness over job throughputs
  std::size_t fleet_conflicts = 0;       ///< claim rounds with >= 2 claims
  std::size_t fleet_grants = 0;          ///< arbiter grants
  std::size_t fleet_contention_aborts = 0;
  std::vector<double> job_throughputs;   ///< per-job samples/s, job order

  double wall_seconds = 0.0;  ///< host wall-clock (non-deterministic)

  std::string trace_file;    ///< written artifacts, empty when not emitted
  std::string metrics_file;
  std::string ledger_file;
  std::string timeseries_file;
};

/// Run the scenario to completion. Exceptions from anywhere inside the run
/// (bad fault spec, executor contract violation, unwritable artifact) are
/// captured into {ok=false, error}; this never throws.
ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const ArtifactOptions& artifacts = {});

}  // namespace autopipe::sweep
