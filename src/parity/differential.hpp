// Differential parity harness for the simulator core rewrite.
//
// The timing-wheel event queue must be *observationally identical* to the
// reference binary heap: same dequeue order, same callback interleaving,
// same floating-point accumulation order — byte-for-byte the same traces,
// decision ledgers and metrics. This library runs one full AutoPipe
// scenario (cluster + planner + executor + controller, optionally with a
// seeded random fault plan and background-tenant churn) twice, once per
// queue kind, and diffs every observable artifact.
//
// Used by tests/parity_test.cpp (ctest tier, ≥50 seeds) and the
// bench/parity_harness CLI (CI parity-smoke job, divergence artifacts).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"

namespace autopipe::parity {

/// One differential scenario. The seed drives the fault plan and the
/// background workload; seeds 0.. give distinct but reproducible runs.
struct ScenarioConfig {
  std::uint64_t seed = 1;
  std::size_t iterations = 12;
  std::size_t warmup = 5;
  /// Install a seeded random fault plan (preemptions, link failures/flaps,
  /// stragglers, profiler drops).
  bool inject_faults = true;
  /// Install seeded background-tenant churn on GPUs and the network.
  bool background_churn = true;
  /// Trigger a deterministic mid-run partition switch and arm a
  /// SwitchFaultPlan crash point against it (phase, fault kind and switch
  /// mode all derived from the seed), so aborted and rolled-back switches
  /// are part of the byte-for-byte parity contract too.
  bool mid_switch_faults = false;
  /// When > 0, replace the single-job scenario with a co-tenant fleet of
  /// this many AutoPipe jobs under a greedy-arbiter JobManager
  /// (src/cluster/), cycling a small model mix. The testbed grows to
  /// max(3, fleet_jobs) servers so every job starts with at least two
  /// GPUs. Claim windows, arbiter grants/denials and contention aborts all
  /// join the byte-for-byte parity contract. mid_switch_faults is ignored
  /// in fleet mode (the JobManager drives its own switches).
  std::size_t fleet_jobs = 0;
};

/// Every observable artifact of one run. Two queue kinds are "at parity"
/// when all fields compare equal — the strings byte-for-byte, the floats
/// bit-for-bit.
struct ScenarioResult {
  std::string queue_name;
  std::string trace_text;    ///< full event trace, text form
  std::string ledger_text;   ///< finalized decision ledger, text form
  std::string metrics_text;  ///< sorted name=value metric lines
  /// autopipe-ts-v1 metric time-series sampled at a fixed cadence during
  /// the run — covers the TimeSeriesSampler in the parity contract.
  std::string timeseries_text;
  /// One line per causal event: "eid<-cause category:name". Redundant with
  /// trace_text byte-equality, but diffing it separately localizes a
  /// divergence in the causal graph (a reordered scheduling decision)
  /// even when timestamps happen to agree.
  std::string causal_text;
  std::vector<double> iteration_end_times;
  std::uint64_t events_processed = 0;
  std::uint64_t scheduled_events = 0;  ///< seq counter: pushes must match too
};

/// Run the scenario on the given queue implementation.
ScenarioResult run_scenario(const ScenarioConfig& config,
                            sim::EventQueueKind kind);

/// Outcome of diffing two runs of the same scenario.
struct Divergence {
  bool identical = true;
  /// Empty when identical; otherwise a human-readable report naming the
  /// first diverging artifact, line number and both lines.
  std::string report;
};

/// Byte/bit-exact comparison with first-divergence diagnostics.
Divergence compare(const ScenarioResult& reference,
                   const ScenarioResult& candidate);

/// Convenience: run `config` under both queues and diff. The heap is the
/// reference, the wheel the candidate.
Divergence run_differential(const ScenarioConfig& config);

}  // namespace autopipe::parity
