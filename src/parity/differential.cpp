#include "parity/differential.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

#include "autopipe/controller.hpp"
#include "cluster/job_manager.hpp"
#include "cluster/jobs_spec.hpp"
#include "comm/framework.hpp"
#include "common/rng.hpp"
#include "faults/fault_plan.hpp"
#include "faults/switch_fault_plan.hpp"
#include "models/zoo.hpp"
#include "partition/pipedream_planner.hpp"
#include "pipeline/executor.hpp"
#include "sim/background.hpp"
#include "sim/cluster.hpp"

namespace autopipe::parity {

namespace {

// Small shared testbed (3 servers × 2 GPUs) — big enough for real pipeline
// stages, migrations and cross-server flows, small enough that 50+ seeds ×
// 2 queues stay fast.
constexpr std::size_t kServers = 3;
constexpr std::size_t kGpusPerServer = 2;

faults::FaultPlan plan_for_seed(std::uint64_t seed, std::size_t servers) {
  // A 12-iteration alexnet run on this testbed spans roughly 0.8 simulated
  // seconds; the default ChaosSpec window (seconds to tens of seconds)
  // would schedule every fault past the end of the run. Compress the whole
  // schedule into the first ~0.6 s so preemptions, link failures, flaps,
  // stragglers and profiler drops all land mid-pipeline.
  faults::ChaosSpec spec;
  spec.seed = seed;
  spec.start = 0.05;
  spec.clear_by = 0.6;
  spec.min_outage = 0.02;
  spec.max_outage = 0.15;
  spec.flap_outage = 0.01;
  return faults::random_plan(spec, servers, kGpusPerServer);
}

/// The current partition with each stage handed the next stage's workers:
/// a valid layout where every worker serves a different layer range, so the
/// switch genuinely migrates weights instead of finding them in place.
partition::Partition rotate_workers(const partition::Partition& current) {
  std::vector<partition::StageAssignment> stages = current.stages();
  if (stages.size() > 1) {
    std::vector<sim::WorkerId> first = stages.front().workers;
    for (std::size_t s = 0; s + 1 < stages.size(); ++s)
      stages[s].workers = stages[s + 1].workers;
    stages.back().workers = std::move(first);
  }
  return partition::Partition(std::move(stages), current.num_layers());
}

std::string metrics_text(const trace::MetricsRegistry& metrics) {
  // The registry keeps names sorted, so this rendering is deterministic.
  std::ostringstream os;
  for (const auto& [name, value] : metrics.all())
    os << name << "=" << trace::format_double(value) << "\n";
  return os.str();
}

/// Serialize every observable artifact of a finished run.
ScenarioResult collect_artifacts(sim::Simulator& simulator,
                                 std::vector<double> iteration_end_times) {
  ScenarioResult out;
  out.queue_name = simulator.queue_name();
  out.iteration_end_times = std::move(iteration_end_times);
  out.events_processed = simulator.events_processed();
  out.scheduled_events = simulator.events_scheduled();
  std::ostringstream ts;
  simulator.tracer().write_text(ts);
  out.trace_text = ts.str();
  simulator.ledger().finalize("run_end");
  std::ostringstream ls;
  simulator.ledger().write_text(ls);
  out.ledger_text = ls.str();
  out.metrics_text = metrics_text(simulator.metrics());
  simulator.timeseries().finalize(simulator.now(), simulator.metrics());
  std::ostringstream tss;
  simulator.timeseries().write_text(tss);
  out.timeseries_text = tss.str();
  std::ostringstream cs;
  for (const trace::Event& ev : simulator.tracer().events()) {
    if (ev.eid == 0) continue;
    cs << ev.eid << "<-" << ev.cause << ' '
       << trace::category_name(ev.category) << ':' << ev.name << '\n';
  }
  out.causal_text = cs.str();
  return out;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioConfig& config,
                            sim::EventQueueKind kind) {
  sim::Simulator simulator(kind);
  simulator.tracer().set_enabled(true);
  simulator.ledger().set_enabled(true);
  // Fine cadence relative to the ~0.8 s run so dozens of rows land between
  // events; rows must be byte-identical across queue kinds.
  simulator.timeseries().configure(0.02);

  const std::size_t servers =
      config.fleet_jobs > 0 ? std::max(kServers, config.fleet_jobs)
                            : kServers;
  sim::ClusterConfig cluster_config;
  cluster_config.num_servers = servers;
  cluster_config.gpus_per_server = kGpusPerServer;
  sim::Cluster cluster(simulator, cluster_config);

  if (config.fleet_jobs > 0) {
    // Co-tenant fleet: JobManager-driven jobs replace the single
    // executor/controller pair; claim windows, arbiter decisions and
    // contention aborts all land in the compared artifacts.
    cluster::FleetSpec fleet;
    static constexpr const char* kMix[] = {"alexnet", "resnet18"};
    for (std::size_t k = 0; k < config.fleet_jobs; ++k) {
      cluster::JobSpec job;
      job.model = kMix[k % 2];
      job.iterations = config.iterations;
      job.warmup = config.warmup;
      job.priority = 1.0 + static_cast<double>(k % 3);
      fleet.jobs.push_back(std::move(job));
    }
    cluster::assign_default_workers(fleet, cluster.num_workers());

    faults::FaultPlan fault_plan;
    if (config.inject_faults) fault_plan = plan_for_seed(config.seed, servers);
    fault_plan.install(simulator, cluster);

    if (config.background_churn) {
      sim::BackgroundWorkloadConfig bg;
      bg.gpu_job_rate = 4.0;
      bg.net_job_rate = 4.0;
      bg.mean_gpu_job_duration = 0.2;
      bg.mean_net_job_duration = 0.2;
      bg.horizon = 1.0;
      sim::BackgroundWorkload churn(
          bg, Rng(config.seed ^ 0x9e3779b97f4a7c15ull));
      churn.install(simulator, cluster);
    }

    cluster::JobManager manager(simulator, cluster, fleet);
    manager.run();
    std::vector<double> ends;
    for (std::size_t i = 0; i < manager.num_jobs(); ++i) {
      const auto& times = manager.job(i).report.iteration_end_times;
      ends.insert(ends.end(), times.begin(), times.end());
    }
    return collect_artifacts(simulator, std::move(ends));
  }

  const auto model = models::alexnet();
  const auto env = partition::EnvironmentView::from_cluster(
      cluster, comm::pytorch_profile(), comm::SyncScheme::kRing);
  partition::PipeDreamPlanner planner(
      model, env, model.default_batch_size(),
      partition::PipeDreamPlanner::Mode::kCurrentEnvironment);
  const auto plan = planner.plan(cluster.num_workers());

  pipeline::ExecutorConfig executor_config;
  executor_config.framework = comm::pytorch_profile();
  executor_config.sync_scheme = comm::SyncScheme::kRing;
  // The planner's pick for this testbed is single-stage data parallelism,
  // where every worker replicates every layer and a switch has nothing to
  // move. Mid-switch scenarios start from an even pipeline split instead so
  // the Transfer phase carries real weight migrations to interrupt.
  const partition::Partition initial =
      config.mid_switch_faults
          ? partition::Partition::even_split(
                model.num_layers(),
                [&] {
                  std::vector<sim::WorkerId> workers(cluster.num_workers());
                  for (std::size_t w = 0; w < workers.size(); ++w)
                    workers[w] = static_cast<sim::WorkerId>(w);
                  return workers;
                }())
          : plan.partition;
  pipeline::PipelineExecutor executor(cluster, model, initial,
                                      executor_config);

  core::ControllerConfig cc;
  cc.arbiter_mode = core::ControllerConfig::ArbiterMode::kThreshold;
  cc.use_meta_network = false;
  core::AutoPipeController controller(cluster, executor, cc, nullptr,
                                      nullptr);
  controller.attach();

  faults::FaultPlan fault_plan;
  if (config.inject_faults) fault_plan = plan_for_seed(config.seed, servers);
  fault_plan.install(simulator, cluster);

  // The plan must outlive executor.run(): it holds the executor-side phase
  // observer and the recovery events it schedules.
  std::optional<faults::SwitchFaultPlan> switch_faults;
  if (config.mid_switch_faults) {
    static constexpr pipeline::SwitchPhase kPhases[] = {
        pipeline::SwitchPhase::kPrepare, pipeline::SwitchPhase::kDrain,
        pipeline::SwitchPhase::kTransfer, pipeline::SwitchPhase::kCommit};
    static constexpr faults::FaultEvent::Kind kKinds[] = {
        faults::FaultEvent::Kind::kGpuDown, faults::FaultEvent::Kind::kLinkDown,
        faults::FaultEvent::Kind::kStragglerBegin,
        faults::FaultEvent::Kind::kProfilerDrop};
    faults::SwitchCrashPoint point;
    point.phase = kPhases[config.seed % 4];
    point.kind = kKinds[(config.seed / 4) % 4];
    point.nth_attempt = 0;  // hit retries of the aborted switch too
    point.max_shots = 4;    // bounded: commit-phase outages would otherwise
                            // re-fire on every readmission commit, forever
    point.recover_after = 0.1;
    switch_faults.emplace(cluster, executor);
    switch_faults->add(point);

    // Drain is a stop-the-world-only phase; otherwise let the seed pick.
    using SwitchMode = pipeline::PipelineExecutor::SwitchMode;
    const SwitchMode mode =
        point.phase == pipeline::SwitchPhase::kDrain || config.seed % 2 == 0
            ? SwitchMode::kStopTheWorld
            : SwitchMode::kFineGrained;
    simulator.after(
        0.12,
        [&executor, mode] {
          executor.request_switch(rotate_workers(executor.current_partition()),
                                  mode);
        },
        "parity_switch_trigger");
  }

  if (config.background_churn) {
    // Rates scaled to the sub-second run the same way the fault plan is:
    // a handful of tenant arrivals and NIC cuts per run instead of the
    // default hours-scale Poisson processes.
    sim::BackgroundWorkloadConfig bg;
    bg.gpu_job_rate = 4.0;
    bg.net_job_rate = 4.0;
    bg.mean_gpu_job_duration = 0.2;
    bg.mean_net_job_duration = 0.2;
    bg.horizon = 1.0;
    sim::BackgroundWorkload churn(
        bg, Rng(config.seed ^ 0x9e3779b97f4a7c15ull));
    churn.install(simulator, cluster);
  }

  const auto report = executor.run(config.iterations, config.warmup);

  return collect_artifacts(simulator, report.iteration_end_times);
}

namespace {

/// Report the first line where two texts differ (1-based), with context.
void diff_text(const std::string& artifact, const std::string& ref,
               const std::string& cand, std::ostringstream& os) {
  if (ref == cand) return;
  std::istringstream a(ref);
  std::istringstream b(cand);
  std::string la;
  std::string lb;
  std::size_t line = 0;
  for (;;) {
    const bool ga = static_cast<bool>(std::getline(a, la));
    const bool gb = static_cast<bool>(std::getline(b, lb));
    ++line;
    if (!ga && !gb) break;  // equal prefix but unequal strings: length diff
    if (ga != gb || la != lb) {
      os << artifact << ": first divergence at line " << line << "\n"
         << "  reference: " << (ga ? la : std::string("<end of text>"))
         << "\n"
         << "  candidate: " << (gb ? lb : std::string("<end of text>"))
         << "\n";
      return;
    }
  }
  os << artifact << ": texts differ in length only (" << ref.size() << " vs "
     << cand.size() << " bytes)\n";
}

}  // namespace

Divergence compare(const ScenarioResult& reference,
                   const ScenarioResult& candidate) {
  Divergence d;
  std::ostringstream os;
  diff_text("trace", reference.trace_text, candidate.trace_text, os);
  diff_text("ledger", reference.ledger_text, candidate.ledger_text, os);
  diff_text("metrics", reference.metrics_text, candidate.metrics_text, os);
  diff_text("timeseries", reference.timeseries_text,
            candidate.timeseries_text, os);
  diff_text("causal", reference.causal_text, candidate.causal_text, os);
  if (reference.iteration_end_times != candidate.iteration_end_times) {
    os << "iteration_end_times: ";
    const std::size_t n = std::min(reference.iteration_end_times.size(),
                                   candidate.iteration_end_times.size());
    if (reference.iteration_end_times.size() !=
        candidate.iteration_end_times.size()) {
      os << "count " << reference.iteration_end_times.size() << " vs "
         << candidate.iteration_end_times.size() << "\n";
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        if (reference.iteration_end_times[i] !=
            candidate.iteration_end_times[i]) {
          os.precision(17);
          os << "first divergence at iteration " << i << ": "
             << reference.iteration_end_times[i] << " vs "
             << candidate.iteration_end_times[i] << "\n";
          break;
        }
      }
    }
  }
  if (reference.events_processed != candidate.events_processed) {
    os << "events_processed: " << reference.events_processed << " vs "
       << candidate.events_processed << "\n";
  }
  if (reference.scheduled_events != candidate.scheduled_events) {
    os << "scheduled_events: " << reference.scheduled_events << " vs "
       << candidate.scheduled_events << "\n";
  }
  d.report = os.str();
  d.identical = d.report.empty();
  return d;
}

Divergence run_differential(const ScenarioConfig& config) {
  const ScenarioResult heap =
      run_scenario(config, sim::EventQueueKind::kHeap);
  const ScenarioResult wheel =
      run_scenario(config, sim::EventQueueKind::kWheel);
  return compare(heap, wheel);
}

}  // namespace autopipe::parity
