// Scripted resource fluctuation. The paper's dynamic experiments flip
// resources at fixed points ("change the bandwidth to 25Gbps at the 20th
// iteration", "add one more training job at the 40th iteration"); a
// ResourceTrace encodes such a script so benchmarks replay it exactly.
// Trace points may be anchored either in simulated time or in completed
// training iterations (the executor reports iteration counts).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/cluster.hpp"

namespace autopipe::sim {

struct TraceEvent {
  enum class Kind {
    kSetAllNicBandwidth,  ///< value = bytes/sec
    kSetNicBandwidth,     ///< index = server, value = bytes/sec
    kAddGpuJob,           ///< index = worker
    kRemoveGpuJob,        ///< index = worker
    kAddJobAllGpus,       ///< background job spanning every GPU
    kRemoveJobAllGpus,
  };

  Kind kind;
  std::size_t index = 0;
  double value = 0.0;

  /// Human-readable description for logs and benchmark output.
  std::string describe() const;
};

/// One scheduled point in the script.
struct TracePoint {
  /// Anchor: simulated seconds (when by_iteration is false) or completed
  /// iteration count (when true).
  double at = 0.0;
  bool by_iteration = false;
  TraceEvent event;
};

class ResourceTrace {
 public:
  ResourceTrace& at_time(Seconds t, TraceEvent ev);
  ResourceTrace& at_iteration(std::size_t iter, TraceEvent ev);

  /// Install all time-anchored points on the simulator. `on_change`, if set,
  /// fires after each applied event (used by tests and by experiment
  /// harnesses that log reconfiguration points).
  void install(Simulator& simulator, Cluster& cluster,
               std::function<void(const TraceEvent&)> on_change = {}) const;

  /// Apply every iteration-anchored point with anchor == iter. Called by the
  /// training loop after each completed iteration. Returns how many fired.
  std::size_t apply_iteration(std::size_t iter, Cluster& cluster,
                              std::function<void(const TraceEvent&)> on_change = {}) const;

  static void apply(const TraceEvent& ev, Cluster& cluster);

  const std::vector<TracePoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  // Event constructors.
  static TraceEvent set_all_nic_bandwidth(BytesPerSec bw);
  static TraceEvent set_nic_bandwidth(std::size_t server, BytesPerSec bw);
  static TraceEvent add_gpu_job(WorkerId worker);
  static TraceEvent remove_gpu_job(WorkerId worker);
  static TraceEvent add_job_all_gpus();
  static TraceEvent remove_job_all_gpus();

 private:
  std::vector<TracePoint> points_;
};

}  // namespace autopipe::sim
