#include "sim/flow_network.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/expect.hpp"
#include "common/log.hpp"

namespace autopipe::sim {

namespace {
/// Completion times within this tolerance of "now" are treated as due, to
/// absorb floating-point division noise in remaining/rate arithmetic.
constexpr Seconds kTimeEps = 1e-12;
constexpr Bytes kByteEps = 1e-6;
}  // namespace

ResourceId FlowNetwork::add_resource(std::string name, BytesPerSec capacity) {
  AUTOPIPE_EXPECT(capacity >= 0.0);
  resources_.push_back(Resource{std::move(name), capacity});
  const ResourceId id = resources_.size() - 1;
  if (sim_.tracer().enabled()) {
    sim_.tracer().counter(trace::Category::kComm,
                          "cap:" + resources_[id].name, sim_.now(), capacity);
  }
  return id;
}

void FlowNetwork::set_capacity(ResourceId resource, BytesPerSec capacity) {
  AUTOPIPE_EXPECT(resource < resources_.size());
  AUTOPIPE_EXPECT(capacity >= 0.0);
  if (resources_[resource].down) {
    // Deferred: applies when the resource comes back up.
    resources_[resource].saved_capacity = capacity;
    return;
  }
  advance_to_now();
  resources_[resource].capacity = capacity;
  recompute_rates();
  schedule_next_completion();
  if (sim_.tracer().enabled()) {
    sim_.tracer().counter(trace::Category::kComm,
                          "cap:" + resources_[resource].name, sim_.now(),
                          capacity);
  }
  emit_loads();
}

void FlowNetwork::set_resource_down(ResourceId resource) {
  AUTOPIPE_EXPECT(resource < resources_.size());
  Resource& r = resources_[resource];
  if (r.down) return;
  const BytesPerSec nominal = r.capacity;
  set_capacity(resource, 0.0);
  r.down = true;
  r.saved_capacity = nominal;
}

void FlowNetwork::set_resource_up(ResourceId resource) {
  AUTOPIPE_EXPECT(resource < resources_.size());
  Resource& r = resources_[resource];
  if (!r.down) return;
  r.down = false;
  set_capacity(resource, r.saved_capacity);
  r.saved_capacity = 0.0;
}

bool FlowNetwork::resource_down(ResourceId resource) const {
  AUTOPIPE_EXPECT(resource < resources_.size());
  return resources_[resource].down;
}

BytesPerSec FlowNetwork::capacity(ResourceId resource) const {
  AUTOPIPE_EXPECT(resource < resources_.size());
  return resources_[resource].capacity;
}

const std::string& FlowNetwork::resource_name(ResourceId resource) const {
  AUTOPIPE_EXPECT(resource < resources_.size());
  return resources_[resource].name;
}

FlowId FlowNetwork::start_flow(FlowSpec spec) {
  AUTOPIPE_EXPECT(!spec.path.empty());
  AUTOPIPE_EXPECT(spec.bytes >= 0.0);
  {
    std::unordered_set<ResourceId> seen;
    for (ResourceId r : spec.path) {
      AUTOPIPE_EXPECT(r < resources_.size());
      AUTOPIPE_EXPECT_MSG(seen.insert(r).second,
                          "duplicate resource in flow path");
    }
  }
  const FlowId id = next_flow_id_++;
  if (spec.bytes <= kByteEps) {
    // Degenerate transfer: deliver "immediately" but still via the event
    // queue so callback ordering matches non-degenerate flows.
    if (spec.on_complete) sim_.after(0.0, std::move(spec.on_complete));
    return id;
  }
  advance_to_now();
  if (sim_.tracer().enabled()) {
    std::string path_names;
    for (ResourceId r : spec.path) {
      if (!path_names.empty()) path_names += ',';
      path_names += resources_[r].name;
    }
    sim_.tracer().async_begin(trace::Category::kComm, "flow", id, sim_.now(),
                              {trace::arg("bytes", spec.bytes),
                               trace::arg("path", std::move(path_names))});
  }
  flows_.emplace(id, Flow{std::move(spec.path), spec.bytes, 0.0,
                          std::move(spec.on_complete)});
  recompute_rates();
  schedule_next_completion();
  emit_loads();
  return id;
}

void FlowNetwork::cancel_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;  // already completed: cancel is a no-op
  advance_to_now();
  flows_.erase(it);
  recompute_rates();
  schedule_next_completion();
  if (sim_.tracer().enabled()) {
    sim_.tracer().async_end(trace::Category::kComm, "flow", id, sim_.now(),
                            {trace::arg("cancelled", 1)});
  }
  emit_loads();
}

BytesPerSec FlowNetwork::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  AUTOPIPE_EXPECT_MSG(it != flows_.end(), "flow " << id << " not active");
  return it->second.rate;
}

Bytes FlowNetwork::flow_remaining(FlowId id) const {
  auto it = flows_.find(id);
  AUTOPIPE_EXPECT_MSG(it != flows_.end(), "flow " << id << " not active");
  return it->second.remaining;
}

BytesPerSec FlowNetwork::resource_load(ResourceId resource) const {
  AUTOPIPE_EXPECT(resource < resources_.size());
  BytesPerSec load = 0.0;
  for (const auto& [id, flow] : flows_) {
    if (std::find(flow.path.begin(), flow.path.end(), resource) !=
        flow.path.end()) {
      load += flow.rate;
    }
  }
  return load;
}

void FlowNetwork::advance_to_now() {
  const Seconds now = sim_.now();
  const Seconds dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0.0) return;
  for (auto& [id, flow] : flows_) {
    const Bytes moved = std::min(flow.remaining, flow.rate * dt);
    flow.remaining -= moved;
    bytes_delivered_ += moved;
  }
}

void FlowNetwork::recompute_rates() {
  // Progressive filling: repeatedly find the resource whose fair share
  // (remaining capacity / unfrozen flows through it) is smallest, pin every
  // unfrozen flow through it to that share, and deduct.
  //
  // Runs at event rate (every flow start/finish and every capacity change),
  // so the per-resource accumulators are flat vectors indexed by the dense
  // ResourceId, reused across calls — the earlier unordered_map version
  // spent more time hashing than filling.
  const std::size_t n = resources_.size();
  if (scratch_cap_.size() < n) {
    scratch_cap_.resize(n);
    scratch_count_.resize(n);
  }
  for (std::size_t r = 0; r < n; ++r) {
    scratch_cap_[r] = resources_[r].capacity;
    scratch_count_[r] = 0;
  }
  scratch_unfrozen_.clear();
  scratch_unfrozen_.reserve(flows_.size());
  for (auto& [id, flow] : flows_) {
    flow.rate = 0.0;
    scratch_unfrozen_.push_back(&flow);
    for (ResourceId r : flow.path) ++scratch_count_[r];
  }

  while (!scratch_unfrozen_.empty()) {
    // Find the bottleneck resource.
    bool found = false;
    ResourceId bottleneck = 0;
    double best_share = 0.0;
    for (ResourceId r = 0; r < n; ++r) {
      const std::size_t count = scratch_count_[r];
      if (count == 0) continue;
      const double share = scratch_cap_[r] / static_cast<double>(count);
      if (!found || share < best_share) {
        found = true;
        best_share = share;
        bottleneck = r;
      }
    }
    if (!found) break;
    // Pin every unfrozen flow through the bottleneck at the fair share,
    // compacting the survivors in place.
    std::size_t kept = 0;
    for (Flow* flow : scratch_unfrozen_) {
      const bool through = std::find(flow->path.begin(), flow->path.end(),
                                     bottleneck) != flow->path.end();
      if (!through) {
        scratch_unfrozen_[kept++] = flow;
        continue;
      }
      flow->rate = best_share;
      for (ResourceId r : flow->path) {
        scratch_cap_[r] = std::max(0.0, scratch_cap_[r] - best_share);
        --scratch_count_[r];
      }
    }
    scratch_unfrozen_.resize(kept);
  }
}

void FlowNetwork::schedule_next_completion() {
  Seconds next = kNever;
  for (const auto& [id, flow] : flows_) {
    if (flow.rate <= 0.0) continue;
    next = std::min(next, sim_.now() + flow.remaining / flow.rate);
  }
  const std::uint64_t generation = ++schedule_generation_;
  if (next == kNever) return;
  sim_.at(next, [this, generation] {
    if (generation != schedule_generation_) return;  // superseded
    complete_due_flows();
  }, "flow_completion");
}

void FlowNetwork::complete_due_flows() {
  advance_to_now();
  // Collect completions first: callbacks may start new flows re-entrantly.
  std::vector<std::function<void()>> callbacks;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining <= kByteEps ||
        (it->second.rate > 0.0 &&
         it->second.remaining / it->second.rate <= kTimeEps)) {
      bytes_delivered_ += it->second.remaining;
      if (sim_.tracer().enabled()) {
        sim_.tracer().async_end(trace::Category::kComm, "flow", it->first,
                                sim_.now());
      }
      if (it->second.on_complete)
        callbacks.push_back(std::move(it->second.on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  recompute_rates();
  schedule_next_completion();
  emit_loads();
  for (auto& cb : callbacks) cb();
}

void FlowNetwork::emit_loads() {
  if (!sim_.tracer().enabled()) return;
  traced_load_.resize(resources_.size(), 0.0);
  for (ResourceId r = 0; r < resources_.size(); ++r) {
    const BytesPerSec load = resource_load(r);
    if (load == traced_load_[r]) continue;
    traced_load_[r] = load;
    sim_.tracer().counter(trace::Category::kComm,
                          "load:" + resources_[r].name, sim_.now(), load);
  }
}

}  // namespace autopipe::sim
