#include "sim/flow_network.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/expect.hpp"
#include "common/log.hpp"

namespace autopipe::sim {

namespace {
/// Completion times within this tolerance of "now" are treated as due, to
/// absorb floating-point division noise in remaining/rate arithmetic.
constexpr Seconds kTimeEps = 1e-12;
constexpr Bytes kByteEps = 1e-6;
/// Snapshot share of a resource no flow crossed at the last full rating.
constexpr double kUnconstrained = std::numeric_limits<double>::infinity();
}  // namespace

ResourceId FlowNetwork::add_resource(std::string name, BytesPerSec capacity) {
  AUTOPIPE_EXPECT(capacity >= 0.0);
  res_name_.push_back(std::move(name));
  res_capacity_.push_back(capacity);
  res_saved_capacity_.push_back(0.0);
  res_down_.push_back(0);
  const ResourceId id = res_capacity_.size() - 1;
  if (sim_.tracer().enabled()) {
    sim_.tracer().counter(trace::Category::kComm, "cap:" + res_name_[id],
                          sim_.now(), capacity);
  }
  return id;
}

void FlowNetwork::set_capacity(ResourceId resource, BytesPerSec capacity) {
  AUTOPIPE_EXPECT(resource < res_capacity_.size());
  AUTOPIPE_EXPECT(capacity >= 0.0);
  if (res_down_[resource]) {
    // Deferred: applies when the resource comes back up.
    res_saved_capacity_[resource] = capacity;
    return;
  }
  advance_to_now();
  res_capacity_[resource] = capacity;
  recompute_rates();
  schedule_next_completion();
  if (sim_.tracer().enabled()) {
    sim_.tracer().counter(trace::Category::kComm,
                          "cap:" + res_name_[resource], sim_.now(), capacity);
  }
  emit_loads();
}

void FlowNetwork::set_resource_down(ResourceId resource) {
  AUTOPIPE_EXPECT(resource < res_capacity_.size());
  if (res_down_[resource]) return;
  const BytesPerSec nominal = res_capacity_[resource];
  set_capacity(resource, 0.0);
  res_down_[resource] = 1;
  res_saved_capacity_[resource] = nominal;
}

void FlowNetwork::set_resource_up(ResourceId resource) {
  AUTOPIPE_EXPECT(resource < res_capacity_.size());
  if (!res_down_[resource]) return;
  res_down_[resource] = 0;
  set_capacity(resource, res_saved_capacity_[resource]);
  res_saved_capacity_[resource] = 0.0;
}

bool FlowNetwork::resource_down(ResourceId resource) const {
  AUTOPIPE_EXPECT(resource < res_capacity_.size());
  return res_down_[resource] != 0;
}

BytesPerSec FlowNetwork::capacity(ResourceId resource) const {
  AUTOPIPE_EXPECT(resource < res_capacity_.size());
  return res_capacity_[resource];
}

const std::string& FlowNetwork::resource_name(ResourceId resource) const {
  AUTOPIPE_EXPECT(resource < res_name_.size());
  return res_name_[resource];
}

void FlowNetwork::set_approximate_mode(bool on, double epsilon) {
  AUTOPIPE_EXPECT(epsilon > 0.0);
  advance_to_now();
  approx_ = on;
  approx_eps_ = epsilon;
  snap_valid_ = false;  // next rating pass is a full one in either mode
  recompute_rates();
  schedule_next_completion();
  emit_loads();
}

std::size_t FlowNetwork::find_slot(FlowId id) const {
  const auto it = std::lower_bound(flow_id_.begin(), flow_id_.end(), id);
  if (it == flow_id_.end() || *it != id) return kNoSlot;
  return static_cast<std::size_t>(it - flow_id_.begin());
}

void FlowNetwork::erase_slot(std::size_t slot) {
  flow_id_.erase(flow_id_.begin() + static_cast<std::ptrdiff_t>(slot));
  flow_remaining_.erase(flow_remaining_.begin() +
                        static_cast<std::ptrdiff_t>(slot));
  flow_rate_.erase(flow_rate_.begin() + static_cast<std::ptrdiff_t>(slot));
  flow_path_.erase(flow_path_.begin() + static_cast<std::ptrdiff_t>(slot));
  flow_on_complete_.erase(flow_on_complete_.begin() +
                          static_cast<std::ptrdiff_t>(slot));
}

FlowId FlowNetwork::start_flow(FlowSpec spec) {
  AUTOPIPE_EXPECT(!spec.path.empty());
  AUTOPIPE_EXPECT(spec.bytes >= 0.0);
  {
    std::unordered_set<ResourceId> seen;
    for (ResourceId r : spec.path) {
      AUTOPIPE_EXPECT(r < res_capacity_.size());
      AUTOPIPE_EXPECT_MSG(seen.insert(r).second,
                          "duplicate resource in flow path");
    }
  }
  const FlowId id = next_flow_id_++;
  if (spec.bytes <= kByteEps) {
    // Degenerate transfer: deliver "immediately" but still via the event
    // queue so callback ordering matches non-degenerate flows.
    if (spec.on_complete) sim_.after(0.0, std::move(spec.on_complete));
    return id;
  }
  advance_to_now();
  if (sim_.tracer().enabled()) {
    std::string path_names;
    for (ResourceId r : spec.path) {
      if (!path_names.empty()) path_names += ',';
      path_names += res_name_[r];
    }
    sim_.tracer().async_begin(trace::Category::kComm, "flow", id, sim_.now(),
                              {trace::arg("bytes", spec.bytes),
                               trace::arg("path", std::move(path_names))});
  }
  // Ids are monotone, so push_back keeps the slot arrays sorted. The -1
  // rate marks the flow as not-yet-rated for the approximate pass.
  flow_id_.push_back(id);
  flow_remaining_.push_back(spec.bytes);
  flow_rate_.push_back(-1.0);
  flow_path_.push_back(std::move(spec.path));
  flow_on_complete_.push_back(std::move(spec.on_complete));
  recompute_rates();
  schedule_next_completion();
  emit_loads();
  return id;
}

void FlowNetwork::cancel_flow(FlowId id) {
  const std::size_t slot = find_slot(id);
  if (slot == kNoSlot) return;  // already completed: cancel is a no-op
  advance_to_now();
  erase_slot(slot);
  recompute_rates();
  schedule_next_completion();
  if (sim_.tracer().enabled()) {
    sim_.tracer().async_end(trace::Category::kComm, "flow", id, sim_.now(),
                            {trace::arg("cancelled", 1)});
  }
  emit_loads();
}

BytesPerSec FlowNetwork::flow_rate(FlowId id) const {
  const std::size_t slot = find_slot(id);
  AUTOPIPE_EXPECT_MSG(slot != kNoSlot, "flow " << id << " not active");
  return flow_rate_[slot];
}

Bytes FlowNetwork::flow_remaining(FlowId id) const {
  const std::size_t slot = find_slot(id);
  AUTOPIPE_EXPECT_MSG(slot != kNoSlot, "flow " << id << " not active");
  return flow_remaining_[slot];
}

BytesPerSec FlowNetwork::resource_load(ResourceId resource) const {
  AUTOPIPE_EXPECT(resource < res_capacity_.size());
  BytesPerSec load = 0.0;
  for (std::size_t s = 0; s < flow_id_.size(); ++s) {
    if (std::find(flow_path_[s].begin(), flow_path_[s].end(), resource) !=
        flow_path_[s].end()) {
      load += flow_rate_[s];
    }
  }
  return load;
}

void FlowNetwork::advance_to_now() {
  const Seconds now = sim_.now();
  const Seconds dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0.0) return;
  for (std::size_t s = 0; s < flow_id_.size(); ++s) {
    const Bytes moved = std::min(flow_remaining_[s], flow_rate_[s] * dt);
    flow_remaining_[s] -= moved;
    bytes_delivered_ += moved;
  }
}

void FlowNetwork::recompute_rates() {
  if (approx_) {
    approx_rerate();
  } else {
    exact_rerate();
  }
}

void FlowNetwork::exact_rerate() {
  // Progressive filling: repeatedly find the resource whose fair share
  // (remaining capacity / unfrozen flows through it) is smallest, pin every
  // unfrozen flow through it to that share, and deduct.
  //
  // Runs at event rate (every flow start/finish and every capacity change),
  // so the per-resource accumulators are flat vectors indexed by the dense
  // ResourceId, reused across calls, and the unfrozen set is a vector of
  // flow slots walked in ascending order — iteration (and so floating-point
  // deduction order) is part of the determinism contract.
  const std::size_t n = res_capacity_.size();
  if (scratch_cap_.size() < n) {
    scratch_cap_.resize(n);
    scratch_count_.resize(n);
  }
  for (std::size_t r = 0; r < n; ++r) {
    scratch_cap_[r] = res_capacity_[r];
    scratch_count_[r] = 0;
  }
  const std::size_t flows = flow_id_.size();
  scratch_unfrozen_.clear();
  scratch_unfrozen_.reserve(flows);
  for (std::size_t s = 0; s < flows; ++s) {
    flow_rate_[s] = 0.0;
    scratch_unfrozen_.push_back(static_cast<std::uint32_t>(s));
    for (ResourceId r : flow_path_[s]) ++scratch_count_[r];
  }

  while (!scratch_unfrozen_.empty()) {
    // Find the bottleneck resource.
    bool found = false;
    ResourceId bottleneck = 0;
    double best_share = 0.0;
    for (ResourceId r = 0; r < n; ++r) {
      const std::size_t count = scratch_count_[r];
      if (count == 0) continue;
      const double share = scratch_cap_[r] / static_cast<double>(count);
      if (!found || share < best_share) {
        found = true;
        best_share = share;
        bottleneck = r;
      }
    }
    if (!found) break;
    // Pin every unfrozen flow through the bottleneck at the fair share,
    // compacting the survivors in place.
    std::size_t kept = 0;
    for (const std::uint32_t s : scratch_unfrozen_) {
      const bool through =
          std::find(flow_path_[s].begin(), flow_path_[s].end(), bottleneck) !=
          flow_path_[s].end();
      if (!through) {
        scratch_unfrozen_[kept++] = s;
        continue;
      }
      flow_rate_[s] = best_share;
      for (ResourceId r : flow_path_[s]) {
        scratch_cap_[r] = std::max(0.0, scratch_cap_[r] - best_share);
        --scratch_count_[r];
      }
    }
    scratch_unfrozen_.resize(kept);
  }
}

void FlowNetwork::approx_rerate() {
  // Snapshot/drift scheme: a full single-pass rating assigns every flow the
  // minimum fair share (capacity / live count) along its path and snapshots
  // each contended resource's share. Subsequent membership changes re-rate
  // only the fresh flows — from live shares, so a new flow never sees an
  // unconstrained path — until some resource's live share drifts more than
  // approx_eps_ (relative) from its snapshot. A full pass never
  // oversubscribes (each flow takes at most the fair share of every
  // resource it crosses); between passes the stale rates are off by at most
  // the drift bound.
  const std::size_t n = res_capacity_.size();
  if (scratch_count_.size() < n) scratch_count_.resize(n);
  if (snap_share_.size() < n) {
    snap_share_.resize(n, kUnconstrained);
    snap_valid_ = false;  // a new resource invalidates the snapshot
  }
  const std::size_t flows = flow_id_.size();
  for (std::size_t r = 0; r < n; ++r) scratch_count_[r] = 0;
  for (std::size_t s = 0; s < flows; ++s)
    for (ResourceId r : flow_path_[s]) ++scratch_count_[r];

  bool needs_full = !snap_valid_;
  for (std::size_t r = 0; !needs_full && r < n; ++r) {
    const std::size_t count = scratch_count_[r];
    if (count == 0) continue;  // nothing flows here: no rate to be wrong
    const double snap = snap_share_[r];
    if (snap == kUnconstrained) {
      needs_full = true;  // newly contended resource was never rated
      break;
    }
    const double share = res_capacity_[r] / static_cast<double>(count);
    if (std::abs(share - snap) > approx_eps_ * snap) needs_full = true;
  }

  if (needs_full) {
    for (std::size_t r = 0; r < n; ++r) {
      snap_share_[r] = scratch_count_[r] == 0
                           ? kUnconstrained
                           : res_capacity_[r] /
                                 static_cast<double>(scratch_count_[r]);
    }
    for (std::size_t s = 0; s < flows; ++s) {
      double rate = kUnconstrained;
      for (ResourceId r : flow_path_[s]) rate = std::min(rate, snap_share_[r]);
      flow_rate_[s] = rate;  // path is non-empty, so rate is finite
    }
    snap_valid_ = true;
    return;
  }

  ++approx_skipped_;
  // Rate only flows the full pass has not seen (the -1 sentinel), from live
  // shares so their own claim is counted.
  for (std::size_t s = 0; s < flows; ++s) {
    if (flow_rate_[s] >= 0.0) continue;
    double rate = kUnconstrained;
    for (ResourceId r : flow_path_[s]) {
      rate = std::min(rate, res_capacity_[r] /
                                static_cast<double>(scratch_count_[r]));
    }
    flow_rate_[s] = rate;
  }
}

void FlowNetwork::schedule_next_completion() {
  Seconds next = kNever;
  for (std::size_t s = 0; s < flow_id_.size(); ++s) {
    if (flow_rate_[s] <= 0.0) continue;
    next = std::min(next, sim_.now() + flow_remaining_[s] / flow_rate_[s]);
  }
  const std::uint64_t generation = ++schedule_generation_;
  if (next == kNever) return;
  sim_.at(next, [this, generation] {
    if (generation != schedule_generation_) return;  // superseded
    complete_due_flows();
  }, "flow_completion");
}

void FlowNetwork::complete_due_flows() {
  advance_to_now();
  // Collect completions first: callbacks may start new flows re-entrantly.
  // One compaction pass keeps the slot arrays sorted. Callbacks fire newest
  // flow first — the order the original hash-map storage produced (bucket
  // heads are insertion points, so iteration ran newest-to-oldest), which
  // downstream schedulers' tie-breaks have calcified around.
  std::vector<std::function<void()>> callbacks;
  std::size_t kept = 0;
  const std::size_t flows = flow_id_.size();
  for (std::size_t s = 0; s < flows; ++s) {
    const bool due = flow_remaining_[s] <= kByteEps ||
                     (flow_rate_[s] > 0.0 &&
                      flow_remaining_[s] / flow_rate_[s] <= kTimeEps);
    if (due) {
      bytes_delivered_ += flow_remaining_[s];
      if (sim_.tracer().enabled()) {
        sim_.tracer().async_end(trace::Category::kComm, "flow", flow_id_[s],
                                sim_.now());
      }
      if (flow_on_complete_[s])
        callbacks.push_back(std::move(flow_on_complete_[s]));
      continue;
    }
    if (kept != s) {
      flow_id_[kept] = flow_id_[s];
      flow_remaining_[kept] = flow_remaining_[s];
      flow_rate_[kept] = flow_rate_[s];
      flow_path_[kept] = std::move(flow_path_[s]);
      flow_on_complete_[kept] = std::move(flow_on_complete_[s]);
    }
    ++kept;
  }
  flow_id_.resize(kept);
  flow_remaining_.resize(kept);
  flow_rate_.resize(kept);
  flow_path_.resize(kept);
  flow_on_complete_.resize(kept);
  recompute_rates();
  schedule_next_completion();
  emit_loads();
  for (auto it = callbacks.rbegin(); it != callbacks.rend(); ++it) (*it)();
}

void FlowNetwork::emit_loads() {
  if (!sim_.tracer().enabled()) return;
  traced_load_.resize(res_capacity_.size(), 0.0);
  for (ResourceId r = 0; r < res_capacity_.size(); ++r) {
    const BytesPerSec load = resource_load(r);
    if (load == traced_load_[r]) continue;
    traced_load_[r] = load;
    sim_.tracer().counter(trace::Category::kComm, "load:" + res_name_[r],
                          sim_.now(), load);
  }
}

}  // namespace autopipe::sim
