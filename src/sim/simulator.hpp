// Discrete-event simulation core. A single-threaded event loop with a
// deterministic tie-break (FIFO among equal timestamps), which every other
// substrate (flow network, GPU executors, background workload, pipeline
// executor) schedules against.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ledger.hpp"
#include "common/metrics.hpp"
#include "common/small_function.hpp"
#include "common/trace.hpp"
#include "common/units.hpp"

namespace autopipe::sim {

/// Discrete-event simulator. Events are closures ordered by (time, sequence
/// number); the sequence number makes simultaneous events fire in scheduling
/// order so runs are bit-for-bit reproducible.
///
/// Hot-path discipline: a run executes millions of events, so the queue is a
/// hand-rolled binary heap over a reused vector (no per-push node
/// allocation, pops move the closure out instead of copying it) and the
/// callback type is a move-only small-buffer closure — captures up to the
/// inline budget never touch the allocator.
class Simulator {
 public:
  /// Inline capture budget: large enough for every scheduling site in the
  /// sim (the largest captures a this-pointer plus a handful of scalars).
  using Callback = common::SmallFunction<void(), 48>;

  /// Current simulated time in seconds.
  Seconds now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must not be in the past). The
  /// optional `label` must be a string literal (or otherwise outlive the
  /// event); it names the event in zero-progress diagnostics.
  void at(Seconds t, Callback fn, const char* label = nullptr);

  /// Schedule `fn` `dt` seconds from now (dt >= 0).
  void after(Seconds dt, Callback fn, const char* label = nullptr);

  /// Run the next pending event. Returns false when the queue is empty.
  /// Throws contract_error when more than zero_progress_bound() consecutive
  /// events execute at the same timestamp — a self-rescheduling loop that
  /// would otherwise spin forever.
  bool step();

  /// Run until the event queue drains.
  void run();

  /// Run events with time <= t, then advance the clock to exactly t.
  void run_until(Seconds t);

  bool empty() const { return queue_.empty(); }
  std::uint64_t events_processed() const { return events_processed_; }

  /// Maximum number of consecutive events the loop will execute at one
  /// timestamp before declaring zero progress (default 1e6). The default is
  /// far above any legitimate same-instant cascade; lower it in tests to
  /// catch loops quickly.
  void set_zero_progress_bound(std::uint64_t bound);
  std::uint64_t zero_progress_bound() const { return zero_progress_bound_; }

  /// Time of the next pending event; only valid when !empty().
  Seconds next_event_time() const;

  /// Event trace for this run. Disabled (and recording nothing) unless
  /// `tracer().set_enabled(true)` is called before the run.
  trace::TraceRecorder& tracer() { return tracer_; }
  const trace::TraceRecorder& tracer() const { return tracer_; }

  /// Named counters/gauges accumulated by subsystems during the run.
  trace::MetricsRegistry& metrics() { return metrics_; }
  const trace::MetricsRegistry& metrics() const { return metrics_; }

  /// Decision ledger written by the AutoPipe controller. Disabled unless
  /// `ledger().set_enabled(true)` is called before the run.
  trace::DecisionLedger& ledger() { return ledger_; }
  const trace::DecisionLedger& ledger() const { return ledger_; }

 private:
  struct Event {
    Seconds time;
    std::uint64_t seq;
    Callback fn;
    const char* label;  ///< static string naming the event, or nullptr
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Remove and return the earliest event (heap pop with a move, never a
  /// copy — Callback is move-only, so a copying pop would not compile).
  Event pop_event();

  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t zero_progress_bound_ = 1'000'000;
  Seconds instant_time_ = -1.0;       ///< timestamp of the current run
  std::uint64_t instant_events_ = 0;  ///< events executed at instant_time_
  /// Binary min-heap on (time, seq) maintained with std::push_heap /
  /// std::pop_heap; the vector's capacity is reused across the whole run.
  std::vector<Event> queue_;
  trace::TraceRecorder tracer_;
  trace::MetricsRegistry metrics_;
  trace::DecisionLedger ledger_;
};

}  // namespace autopipe::sim
