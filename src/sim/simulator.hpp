// Discrete-event simulation core. A single-threaded event loop with a
// deterministic tie-break (FIFO among equal timestamps), which every other
// substrate (flow network, GPU executors, background workload, pipeline
// executor) schedules against.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "common/units.hpp"

namespace autopipe::sim {

/// Discrete-event simulator. Events are closures ordered by (time, sequence
/// number); the sequence number makes simultaneous events fire in scheduling
/// order so runs are bit-for-bit reproducible.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time in seconds.
  Seconds now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must not be in the past).
  void at(Seconds t, Callback fn);

  /// Schedule `fn` `dt` seconds from now (dt >= 0).
  void after(Seconds dt, Callback fn);

  /// Run the next pending event. Returns false when the queue is empty.
  bool step();

  /// Run until the event queue drains.
  void run();

  /// Run events with time <= t, then advance the clock to exactly t.
  void run_until(Seconds t);

  bool empty() const { return queue_.empty(); }
  std::uint64_t events_processed() const { return events_processed_; }

  /// Time of the next pending event; only valid when !empty().
  Seconds next_event_time() const;

  /// Event trace for this run. Disabled (and recording nothing) unless
  /// `tracer().set_enabled(true)` is called before the run.
  trace::TraceRecorder& tracer() { return tracer_; }
  const trace::TraceRecorder& tracer() const { return tracer_; }

  /// Named counters/gauges accumulated by subsystems during the run.
  trace::MetricsRegistry& metrics() { return metrics_; }
  const trace::MetricsRegistry& metrics() const { return metrics_; }

 private:
  struct Event {
    Seconds time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  trace::TraceRecorder tracer_;
  trace::MetricsRegistry metrics_;
};

}  // namespace autopipe::sim
