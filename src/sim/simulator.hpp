// Discrete-event simulation core. A single-threaded event loop with a
// deterministic tie-break (FIFO among equal timestamps), which every other
// substrate (flow network, GPU executors, background workload, pipeline
// executor) schedules against.
#pragma once

#include <cstdint>
#include <memory>

#include "common/expect.hpp"
#include "common/ledger.hpp"
#include "common/metrics.hpp"
#include "common/profile.hpp"
#include "common/small_function.hpp"
#include "common/timeseries.hpp"
#include "common/trace.hpp"
#include "common/units.hpp"
#include "sim/event_queue.hpp"

namespace autopipe::sim {

/// Discrete-event simulator. Events are closures ordered by (time, sequence
/// number); the sequence number makes simultaneous events fire in scheduling
/// order so runs are bit-for-bit reproducible.
///
/// Hot-path discipline: a run executes millions of events, so the queue is
/// a pluggable EventQueue (a timing wheel by default, the reference binary
/// heap behind AUTOPIPE_EVENT_QUEUE=heap — both dequeue in identical order)
/// and the callback type is a move-only small-buffer closure — captures up
/// to the inline budget never touch the allocator. The simulator holds a
/// typed pointer to the concrete (final) queue next to the owning interface
/// pointer, so scheduling and stepping are devirtualized and inlined; on the
/// wheel a popped event's closure even runs in place in its pool node, so a
/// closure is moved exactly once over its lifetime.
class Simulator {
 public:
  using Callback = SimEvent::Callback;

  /// The queue implementation is fixed at construction;
  /// default_event_queue_kind() honours the AUTOPIPE_EVENT_QUEUE
  /// environment variable and otherwise picks the timing wheel.
  explicit Simulator(EventQueueKind queue_kind = default_event_queue_kind());

  /// Current simulated time in seconds.
  Seconds now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must not be in the past). The
  /// optional `label` must be a string literal (or otherwise outlive the
  /// event); it names the event in zero-progress diagnostics.
  void at(Seconds t, Callback fn, const char* label = nullptr) {
    // Tolerate tiny negative drift from floating-point arithmetic on event
    // times, but reject genuinely past scheduling, which indicates a logic
    // bug.
    AUTOPIPE_EXPECT_MSG(t >= now_ - kTimeSlack,
                        "scheduling into the past: t=" << t
                                                       << " now=" << now_);
    schedule(t, std::move(fn), label);
  }

  /// Schedule `fn` `dt` seconds from now (dt >= 0).
  void after(Seconds dt, Callback fn, const char* label = nullptr) {
    AUTOPIPE_EXPECT(dt >= 0.0);
    schedule(now_ + dt, std::move(fn), label);
  }

  /// Run the next pending event. Returns false when the queue is empty.
  /// Throws contract_error when more than zero_progress_bound() consecutive
  /// events execute at the same timestamp — a self-rescheduling loop that
  /// would otherwise spin forever.
  bool step();

  /// Run until the event queue drains.
  void run();

  /// Run events with time <= t, then advance the clock to exactly t. Event
  /// timestamps are exact regardless of the queue's internal bucket
  /// granularity: an event at t + one ulp stays unfired and the clock pins
  /// to t precisely.
  void run_until(Seconds t);

  bool empty() const {
    return wheel_ != nullptr ? wheel_->empty() : heap_->empty();
  }
  std::uint64_t events_processed() const { return events_processed_; }

  /// Events scheduled so far (the next sequence number). The differential
  /// parity harness checks this alongside events_processed: two queue
  /// implementations at parity must push and pop in lockstep.
  std::uint64_t events_scheduled() const { return next_seq_; }

  /// Maximum number of consecutive events the loop will execute at one
  /// timestamp before declaring zero progress (default 1e6). The default is
  /// far above any legitimate same-instant cascade; lower it in tests to
  /// catch loops quickly.
  void set_zero_progress_bound(std::uint64_t bound);
  std::uint64_t zero_progress_bound() const { return zero_progress_bound_; }

  /// Time of the next pending event; only valid when !empty(). Non-const:
  /// the timing wheel settles its buckets lazily on first access.
  Seconds next_event_time();

  /// Which queue implementation this simulator was built with.
  EventQueueKind queue_kind() const { return queue_kind_; }
  const char* queue_name() const { return queue_->name(); }

  /// Event trace for this run. Disabled (and recording nothing) unless
  /// `tracer().set_enabled(true)` is called before the run.
  trace::TraceRecorder& tracer() { return tracer_; }
  const trace::TraceRecorder& tracer() const { return tracer_; }

  /// Named counters/gauges accumulated by subsystems during the run.
  trace::MetricsRegistry& metrics() { return metrics_; }
  const trace::MetricsRegistry& metrics() const { return metrics_; }

  /// Decision ledger written by the AutoPipe controller. Disabled unless
  /// `ledger().set_enabled(true)` is called before the run.
  trace::DecisionLedger& ledger() { return ledger_; }
  const trace::DecisionLedger& ledger() const { return ledger_; }

  /// Metrics time-series sampler. Disabled (and costing one branch per
  /// event) unless `timeseries().configure(interval)` is called before the
  /// run; step() then snapshots the flattened registry at every sim-time
  /// boundary, with the row at boundary b reflecting exactly the events
  /// with time < b. Drivers call `timeseries().finalize(now(), metrics())`
  /// after the run (see docs/TELEMETRY.md).
  trace::TimeSeriesSampler& timeseries() { return timeseries_; }
  const trace::TimeSeriesSampler& timeseries() const { return timeseries_; }

 private:
  /// Tolerance for floating-point drift on event times (0.1 * 3 != 0.3).
  /// Shared by at() and run_until() so an event computed as "now + k*dt" is
  /// treated as on-time in both directions.
  static constexpr Seconds kTimeSlack = 1e-12;

  /// Devirtualized scheduling: the prvalue event materializes straight into
  /// the concrete queue's push parameter, whose body is inline.
  void schedule(Seconds t, Callback&& fn, const char* label) {
    PROF_SPAN_AGG("sim/queue_push");
    const Seconds when = t < now_ ? now_ : t;
    // Capture the ambient causal context (the trace eid of the event being
    // recorded/executed right now); step() restores it before running fn.
    const std::uint64_t cause = tracer_.current_cause();
    if (wheel_ != nullptr) {
      wheel_->push(SimEvent{when, next_seq_++, std::move(fn), label, cause});
    } else {
      heap_->push(SimEvent{when, next_seq_++, std::move(fn), label, cause});
    }
  }

  /// Zero-progress guard: a buggy schedule (e.g. a fault event rescheduling
  /// itself at `now`) would otherwise spin forever without advancing time.
  /// Keys on the event's exact timestamp, never on queue bucket
  /// granularity, so it behaves identically under the heap and the wheel.
  void check_progress(Seconds t, const char* label) {
    if (t == instant_time_) {
      ++instant_events_;
      AUTOPIPE_EXPECT_MSG(
          instant_events_ <= zero_progress_bound_,
          "zero progress: " << instant_events_ << " events executed at t="
                            << t << " without the clock advancing; "
                            << "looping event: "
                            << (label != nullptr ? label : "(unlabelled)"));
    } else {
      instant_time_ = t;
      instant_events_ = 1;
    }
  }

  Seconds peek_time() {
    return wheel_ != nullptr ? wheel_->peek_time() : heap_->peek_time();
  }

  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t zero_progress_bound_ = 1'000'000;
  Seconds instant_time_ = -1.0;       ///< timestamp of the current run
  std::uint64_t instant_events_ = 0;  ///< events executed at instant_time_
  EventQueueKind queue_kind_;
  std::unique_ptr<EventQueue> queue_;
  /// Typed aliases of queue_ (exactly one non-null): the hot path calls the
  /// final classes directly instead of through the vtable.
  TimingWheelEventQueue* wheel_ = nullptr;
  HeapEventQueue* heap_ = nullptr;
  trace::TraceRecorder tracer_;
  trace::MetricsRegistry metrics_;
  trace::DecisionLedger ledger_;
  trace::TimeSeriesSampler timeseries_;
};

}  // namespace autopipe::sim
