// Pluggable priority queues for the discrete-event simulator core.
//
// Two implementations share one contract — events dequeue in strict
// (time, seq) order, bit-for-bit identical between them:
//
//   * HeapEventQueue  — the reference binary heap the simulator shipped
//     with. O(log n) per operation, every sift moves whole Event payloads
//     (~80 bytes including the inline closure buffer). Retained forever as
//     the oracle the differential parity harness replays against.
//   * TimingWheelEventQueue — a three-level paged calendar queue. Pushes
//     and cascades relink fixed-size pool nodes (no Event moves); only the
//     events of the *current tick* sit in a tiny exactness heap of node
//     indices, so the hot path is O(1) amortized and an event's closure is
//     moved exactly once (into its node) over its whole lifetime. See
//     docs/SIMULATOR.md for the layout.
//
// The wheel quantizes *placement* (which bucket an event waits in), never
// *time*: the Event keeps its exact timestamp, and same-bucket events are
// heap-ordered before release. Watchdog/fault events therefore fire at
// exact instants even though the wheel advances in tick quanta.
//
// Hot-path discipline: both classes are `final` and their push/pop bodies
// live in this header, so the Simulator (which holds typed pointers next
// to the owning interface pointer) calls them devirtualized and inlined —
// the virtual interface exists for the parity/property harnesses, not for
// the per-event path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/small_function.hpp"
#include "common/units.hpp"

namespace autopipe::sim {

/// One scheduled closure. `seq` is the global scheduling sequence number:
/// ties on `time` resolve FIFO, which is what makes runs reproducible.
struct SimEvent {
  /// Inline capture budget: large enough for every scheduling site in the
  /// sim (the largest captures a this-pointer plus a handful of scalars).
  using Callback = common::SmallFunction<void(), 48>;

  Seconds time = 0.0;
  std::uint64_t seq = 0;
  Callback fn;
  const char* label = nullptr;  ///< static string naming the event, or nullptr
  /// Causal context captured at schedule time: the trace eid of the event
  /// whose callback scheduled this one (0 = scheduled outside any event).
  /// The Simulator restores it as the tracer's ambient cause before running
  /// `fn`, so trace events recorded inside the callback chain to it.
  std::uint64_t cause = 0;
};

/// Comparator for a *min*-heap on (time, seq) via std::push_heap/pop_heap.
struct SimEventAfter {
  bool operator()(const SimEvent& a, const SimEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// Priority-queue contract the simulator schedules against. Single
/// threaded; pop()/peek_time() require !empty(). peek_time() is non-const
/// because the wheel settles (cascades buckets) lazily on first access.
class EventQueue {
 public:
  virtual ~EventQueue() = default;
  virtual void push(SimEvent ev) = 0;
  virtual SimEvent pop() = 0;
  virtual Seconds peek_time() = 0;
  virtual bool empty() const = 0;
  virtual std::size_t size() const = 0;
  virtual const char* name() const = 0;
};

/// Reference implementation: binary min-heap over a reused vector (no
/// per-push allocation; pops move the closure out instead of copying).
class HeapEventQueue final : public EventQueue {
 public:
  void push(SimEvent ev) override {
    if (events_.capacity() == 0) events_.reserve(256);
    events_.push_back(std::move(ev));
    std::push_heap(events_.begin(), events_.end(), SimEventAfter{});
  }

  SimEvent pop() override {
    // Heap pop with a move, never a copy — the callback is move-only, so a
    // copying pop would not compile.
    std::pop_heap(events_.begin(), events_.end(), SimEventAfter{});
    SimEvent ev = std::move(events_.back());
    events_.pop_back();
    return ev;
  }

  Seconds peek_time() override { return events_.front().time; }
  bool empty() const override { return events_.empty(); }
  std::size_t size() const override { return events_.size(); }
  const char* name() const override { return "heap"; }

 private:
  std::vector<SimEvent> events_;
};

/// Three-level paged timing wheel (calendar queue).
///
/// Time is quantized into ticks of kTickSeconds. Level l spans
/// kSlots^(l+1) ticks in kSlots buckets of kSlots^l ticks each; the three
/// levels cover ~4.6 hours of simulated time from the current window, and
/// anything beyond that (or with a non-finite timestamp) waits in an
/// overflow list that is re-paged when the levels drain. Buckets are
/// intrusive singly-linked lists over a chunked node pool (stable
/// addresses, so growth never moves an event and a popped event's closure
/// can run in place), so scheduling and cascading move 4-byte indices,
/// never Event payloads. Events of the current tick are released through a
/// small (time, seq) heap of node indices, which makes the dequeue order
/// *exactly* the heap queue's order.
class TimingWheelEventQueue final : public EventQueue {
 public:
  static constexpr int kSlotsLog2 = 8;
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotsLog2;
  static constexpr int kLevels = 3;
  /// Tick width. A power of two keeps t * (1/tick) exact scaling; ~1 ms
  /// matches the sub-millisecond-to-seconds event spacing of the workloads.
  static constexpr double kTickSeconds = 1.0 / 1024.0;

  TimingWheelEventQueue();

  struct Node {
    SimEvent ev;
    std::uint64_t tick = 0;
    std::uint32_t next = 0xffffffffu;
  };

  void push(SimEvent ev) override {
    const std::uint64_t k = tick_of(ev.time);
    ++size_;
    const std::uint32_t n = alloc_node(std::move(ev), k);
    if (k <= cur_tick_) {
      // At-or-behind the tick being released: competes with the in-flight
      // events directly in the exactness heap.
      push_near(n);
      return;
    }
    place(n);
  }

  /// Interface pop (parity/property harnesses): moves the event out of its
  /// node. The Simulator uses pop_node()/release_node() instead and runs
  /// the closure in place, skipping this move.
  SimEvent pop() override {
    const std::uint32_t n = pop_node();
    SimEvent ev = std::move(node(n).ev);
    release_node(n);
    return ev;
  }

  Seconds peek_time() override {
    if (near_.empty()) settle();
    return node(near_.front()).ev.time;
  }

  bool empty() const override { return size_ == 0; }
  std::size_t size() const override { return size_; }
  const char* name() const override { return "wheel"; }

  // --- Simulator fast path (devirtualized) -------------------------------

  /// Unlink and return the index of the next event's node. The event stays
  /// in pool storage — chunk addresses are stable even if the running
  /// callback schedules more events — until release_node().
  std::uint32_t pop_node() {
    if (near_.empty()) settle();
    std::uint32_t n;
    if (near_.size() == 1) {
      // Single event in the current tick: the common case, no heap fix-up.
      n = near_.front();
      near_.clear();
    } else {
      std::pop_heap(near_.begin(), near_.end(), NearAfter{this});
      n = near_.back();
      near_.pop_back();
    }
    --size_;
    return n;
  }

  Node& node(std::uint32_t n) {
    return chunks_[n >> kChunkLog2][n & (kChunkSize - 1)];
  }

  /// Destroy the popped event's closure and recycle its node.
  void release_node(std::uint32_t n) {
    Node& nd = node(n);
    nd.ev.fn.reset();
    nd.ev.label = nullptr;
    nd.next = free_head_;
    free_head_ = n;
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  /// Tick for events whose time overflows the integer tick range
  /// (infinity, NaN-ish, or > ~280k years). They wait in the overflow
  /// list; if they are ever reached the queue degrades to pure-heap mode,
  /// which is still exact.
  static constexpr std::uint64_t kSaturatedTick = ~std::uint64_t{0};
  /// Node pool chunk size: 512 nodes ≈ 48 KiB per chunk, allocated on
  /// demand and never relocated.
  static constexpr int kChunkLog2 = 9;
  static constexpr std::uint32_t kChunkSize = std::uint32_t{1} << kChunkLog2;

  /// Orders the near heap's node indices by their events' (time, seq).
  struct NearAfter {
    TimingWheelEventQueue* q;
    bool operator()(std::uint32_t a, std::uint32_t b) const {
      const SimEvent& ea = q->node(a).ev;
      const SimEvent& eb = q->node(b).ev;
      if (ea.time != eb.time) return ea.time > eb.time;
      return ea.seq > eb.seq;
    }
  };

  static std::uint64_t tick_of(Seconds t) {
    const double ticks = t * (1.0 / kTickSeconds);
    // Negated comparison catches +inf and NaN along with genuinely huge
    // timestamps; anything past ~2^53 ticks loses integer precision anyway.
    if (!(ticks < 9.0e15)) return kSaturatedTick;
    if (!(ticks > 0.0)) return 0;
    return static_cast<std::uint64_t>(ticks);
  }

  std::uint32_t alloc_node(SimEvent&& ev, std::uint64_t tick) {
    std::uint32_t n;
    if (free_head_ != kNil) {
      n = free_head_;
      free_head_ = node(n).next;
    } else {
      if ((pool_size_ & (kChunkSize - 1)) == 0)
        chunks_.emplace_back(new Node[kChunkSize]);
      n = pool_size_++;
    }
    Node& nd = node(n);
    nd.ev = std::move(ev);  // the closure's single lifetime move
    nd.tick = tick;
    nd.next = kNil;
    return n;
  }

  void link(int level, std::size_t slot, std::uint32_t n) {
    node(n).next = head_[level][slot];
    head_[level][slot] = n;
    occ_[level][slot >> 6] |= std::uint64_t{1} << (slot & 63);
  }

  void place(std::uint32_t n) {
    const std::uint64_t k = node(n).tick;
    for (int l = 0; l < kLevels; ++l) {
      // k >= base_[l] for every live placement: pushes satisfy
      // k > cur_tick_ >= base_[l], and overflow re-paging first resets every
      // base to the minimum pending tick. (If it ever failed, the unsigned
      // subtraction wraps huge and the node falls through to overflow, which
      // handles any tick correctly.)
      const std::uint64_t off = k - base_[l];
      if (off < (std::uint64_t{kSlots} << (kSlotsLog2 * l))) {
        link(l, static_cast<std::size_t>(off >> (kSlotsLog2 * l)), n);
        return;
      }
    }
    node(n).next = overflow_head_;
    overflow_head_ = n;
  }

  void push_near(std::uint32_t n) {
    near_.push_back(n);
    if (near_.size() > 1)
      std::push_heap(near_.begin(), near_.end(), NearAfter{this});
  }

  int first_occupied(int level) const;
  /// Cascade/page buckets until the earliest pending tick's events sit in
  /// the near heap. Precondition: near_ empty, size_ > 0.
  void settle();
  void drain_slot(int level, std::size_t slot);
  void cascade_slot(int from_level, std::size_t slot);
  void refill_from_overflow();

  /// Node indices of the current tick's events (and any pushed at/behind
  /// it), released in exact (time, seq) heap order.
  std::vector<std::uint32_t> near_;
  /// Chunked node pool: addresses are stable for the pool's lifetime.
  std::vector<std::unique_ptr<Node[]>> chunks_;
  std::uint32_t pool_size_ = 0;
  std::uint32_t free_head_ = kNil;
  std::uint32_t overflow_head_ = kNil;
  std::uint32_t head_[kLevels][kSlots];
  std::uint64_t occ_[kLevels][kSlots / 64];
  /// Tick of slot 0 per level. Invariant between operations:
  /// base_[2] <= base_[1] <= base_[0] <= cur_tick_.
  std::uint64_t base_[kLevels] = {0, 0, 0};
  /// The tick currently being released; pushes at or before it go straight
  /// to the near heap.
  std::uint64_t cur_tick_ = 0;
  std::size_t size_ = 0;
};

enum class EventQueueKind { kHeap, kWheel };

/// Parse "heap" / "wheel"; throws contract_error on anything else.
EventQueueKind parse_event_queue_kind(std::string_view name);
const char* event_queue_kind_name(EventQueueKind kind);

/// Process-wide default: the AUTOPIPE_EVENT_QUEUE environment variable
/// ("heap" or "wheel", read once) or the wheel when unset — the escape
/// hatch back to the reference queue if a wheel bug is ever suspected.
EventQueueKind default_event_queue_kind();

std::unique_ptr<EventQueue> make_event_queue(EventQueueKind kind);

}  // namespace autopipe::sim
