// Fluid-flow network model with max-min fair bandwidth sharing.
//
// The paper's testbed is five dual-GPU servers behind a single Mellanox
// switch; activations, gradients and parameter traffic from multiple jobs
// contend on the per-server NICs. We model each contended capacity (NIC tx,
// NIC rx, PCIe lane, ...) as a generic `Resource` and each transfer as a
// `Flow` that consumes one unit of share on every resource along its path.
// Rates follow the classical progressive-filling (max-min fair) allocation,
// the standard fluid abstraction of a non-blocking switch fabric; this is
// the "exact communication procedure" AutoPipe's integrated model observes,
// in contrast to PipeDream's uniform-hierarchy assumption.
//
// Capacities may change at any simulated instant (background jobs joining or
// leaving, administrative rate limits); in-flight flows are re-rated and
// their completion events rescheduled.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace autopipe::sim {

/// Handle to a contended capacity (a NIC direction, a PCIe link, ...).
using ResourceId = std::size_t;

/// Handle to an in-flight transfer.
using FlowId = std::uint64_t;

struct FlowSpec {
  /// Resources traversed; each gets one flow-share claim. Must be non-empty
  /// and duplicate-free.
  std::vector<ResourceId> path;
  /// Total volume to transfer.
  Bytes bytes = 0.0;
  /// Invoked at the simulated instant the last byte arrives.
  std::function<void()> on_complete;
};

/// Max-min fair fluid flow network driven by a Simulator.
class FlowNetwork {
 public:
  explicit FlowNetwork(Simulator& simulator) : sim_(simulator) {}

  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Define a resource with the given capacity; returns its id.
  ResourceId add_resource(std::string name, BytesPerSec capacity);

  /// Change a resource's capacity now; re-rates all flows through it. While
  /// the resource is down the new value is remembered as the capacity to
  /// restore on the up transition.
  void set_capacity(ResourceId resource, BytesPerSec capacity);

  /// Live capacity: 0 while the resource is down.
  BytesPerSec capacity(ResourceId resource) const;

  /// Hard failure transition, distinct from a capacity change: the nominal
  /// capacity is remembered across the outage and restored by
  /// set_resource_up(). Flows through a down resource are not cancelled —
  /// they stall at rate 0 and resume when the resource returns, the fluid
  /// analogue of transport-level retransmission. Idempotent.
  void set_resource_down(ResourceId resource);
  void set_resource_up(ResourceId resource);
  bool resource_down(ResourceId resource) const;

  /// Begin a transfer. Zero-byte flows complete via an immediate event.
  FlowId start_flow(FlowSpec spec);

  /// Abort an in-flight flow; its completion callback never fires.
  void cancel_flow(FlowId id);

  /// Current allocated rate of a flow (0 if it shares a zero-capacity
  /// resource).
  BytesPerSec flow_rate(FlowId id) const;

  Bytes flow_remaining(FlowId id) const;

  bool flow_active(FlowId id) const { return flows_.count(id) > 0; }

  std::size_t active_flow_count() const { return flows_.size(); }

  /// Sum of allocated flow rates through the resource.
  BytesPerSec resource_load(ResourceId resource) const;

  /// Total bytes delivered by completed and in-flight flows so far.
  Bytes total_bytes_delivered() const { return bytes_delivered_; }

  const std::string& resource_name(ResourceId resource) const;
  std::size_t resource_count() const { return resources_.size(); }

 private:
  struct Resource {
    std::string name;
    BytesPerSec capacity = 0.0;
    bool down = false;
    BytesPerSec saved_capacity = 0.0;  ///< nominal capacity while down
  };
  struct Flow {
    std::vector<ResourceId> path;
    Bytes remaining = 0.0;
    BytesPerSec rate = 0.0;
    std::function<void()> on_complete;
  };

  /// Integrate flow progress from last_update_ to now at current rates.
  void advance_to_now();

  /// Progressive-filling max-min fair allocation over active flows.
  /// Accumulates per-resource state in flat scratch vectors indexed by the
  /// dense ResourceId (profiling showed per-call unordered_map churn here
  /// dominating whole-run cost).
  void recompute_rates();

  /// (Re)schedule the single next-completion event.
  void schedule_next_completion();

  void complete_due_flows();

  /// Trace-only: emit a `load:<name>` counter for every resource whose
  /// allocated load changed since the last emission. No-op when tracing is
  /// disabled.
  void emit_loads();

  Simulator& sim_;
  std::vector<Resource> resources_;
  std::unordered_map<FlowId, Flow> flows_;
  FlowId next_flow_id_ = 1;
  Seconds last_update_ = 0.0;
  Bytes bytes_delivered_ = 0.0;
  /// Last-emitted `load:` counter value per resource (tracing only).
  std::vector<BytesPerSec> traced_load_;
  /// Scratch buffers reused by recompute_rates(), indexed by ResourceId.
  std::vector<double> scratch_cap_;
  std::vector<std::size_t> scratch_count_;
  std::vector<Flow*> scratch_unfrozen_;
  /// Generation counter invalidating superseded completion events.
  std::uint64_t schedule_generation_ = 0;
};

/// Sentinel "never" time used for flows with zero rate.
inline constexpr Seconds kNever = std::numeric_limits<Seconds>::infinity();

}  // namespace autopipe::sim
