// Fluid-flow network model with max-min fair bandwidth sharing.
//
// The paper's testbed is five dual-GPU servers behind a single Mellanox
// switch; activations, gradients and parameter traffic from multiple jobs
// contend on the per-server NICs. We model each contended capacity (NIC tx,
// NIC rx, PCIe lane, ...) as a generic `Resource` and each transfer as a
// `Flow` that consumes one unit of share on every resource along its path.
// Rates follow the classical progressive-filling (max-min fair) allocation,
// the standard fluid abstraction of a non-blocking switch fabric; this is
// the "exact communication procedure" AutoPipe's integrated model observes,
// in contrast to PipeDream's uniform-hierarchy assumption.
//
// Capacities may change at any simulated instant (background jobs joining or
// leaving, administrative rate limits); in-flight flows are re-rated and
// their completion events rescheduled.
//
// Storage is structure-of-arrays: resources and flows each live in parallel
// flat vectors indexed by a dense slot, and every hot loop (rate integration,
// progressive filling, completion scan) walks those arrays in ascending slot
// order. Flow slots stay sorted by FlowId (ids are monotone and erasure
// compacts), so iteration order — and with it callback order and
// floating-point summation order — is a documented invariant rather than a
// hash-map accident.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace autopipe::sim {

/// Handle to a contended capacity (a NIC direction, a PCIe link, ...).
using ResourceId = std::size_t;

/// Handle to an in-flight transfer.
using FlowId = std::uint64_t;

struct FlowSpec {
  /// Resources traversed; each gets one flow-share claim. Must be non-empty
  /// and duplicate-free.
  std::vector<ResourceId> path;
  /// Total volume to transfer.
  Bytes bytes = 0.0;
  /// Invoked at the simulated instant the last byte arrives.
  std::function<void()> on_complete;
};

/// Max-min fair fluid flow network driven by a Simulator.
class FlowNetwork {
 public:
  explicit FlowNetwork(Simulator& simulator) : sim_(simulator) {}

  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Define a resource with the given capacity; returns its id.
  ResourceId add_resource(std::string name, BytesPerSec capacity);

  /// Change a resource's capacity now; re-rates all flows through it. While
  /// the resource is down the new value is remembered as the capacity to
  /// restore on the up transition.
  void set_capacity(ResourceId resource, BytesPerSec capacity);

  /// Live capacity: 0 while the resource is down.
  BytesPerSec capacity(ResourceId resource) const;

  /// Hard failure transition, distinct from a capacity change: the nominal
  /// capacity is remembered across the outage and restored by
  /// set_resource_up(). Flows through a down resource are not cancelled —
  /// they stall at rate 0 and resume when the resource returns, the fluid
  /// analogue of transport-level retransmission. Idempotent.
  void set_resource_down(ResourceId resource);
  void set_resource_up(ResourceId resource);
  bool resource_down(ResourceId resource) const;

  /// Begin a transfer. Zero-byte flows complete via an immediate event.
  FlowId start_flow(FlowSpec spec);

  /// Abort an in-flight flow; its completion callback never fires.
  void cancel_flow(FlowId id);

  /// Current allocated rate of a flow (0 if it shares a zero-capacity
  /// resource).
  BytesPerSec flow_rate(FlowId id) const;

  Bytes flow_remaining(FlowId id) const;

  bool flow_active(FlowId id) const { return find_slot(id) != kNoSlot; }

  std::size_t active_flow_count() const { return flow_id_.size(); }

  /// Sum of allocated flow rates through the resource.
  BytesPerSec resource_load(ResourceId resource) const;

  /// Total bytes delivered by completed and in-flight flows so far.
  Bytes total_bytes_delivered() const { return bytes_delivered_; }

  const std::string& resource_name(ResourceId resource) const;
  std::size_t resource_count() const { return res_capacity_.size(); }

  /// Opt-in approximate rating. Exact mode (the default) runs progressive
  /// filling on every membership or capacity change. Approximate mode keeps
  /// a snapshot of each contended resource's fair share (capacity / flow
  /// count) from the last full rating and only re-rates everything when
  /// some resource's live share drifts more than `epsilon` (relative) from
  /// its snapshot; otherwise freshly started flows are rated single-pass
  /// from live shares and existing rates are left stale. Rates are then a
  /// bounded approximation of max-min: a full pass never oversubscribes a
  /// resource, and between full passes the stale allocation is off by
  /// O(epsilon). Deterministic either way — see docs/SIMULATOR.md.
  void set_approximate_mode(bool on, double epsilon = 0.05);
  bool approximate_mode() const { return approx_; }
  double approximate_epsilon() const { return approx_eps_; }
  /// Number of full rating passes skipped thanks to approximate mode.
  std::uint64_t approx_rerates_skipped() const { return approx_skipped_; }

 private:
  static constexpr std::size_t kNoSlot = ~std::size_t{0};

  /// Slot holding `id`, or kNoSlot. Flow slots are sorted by id, so this is
  /// a binary search.
  std::size_t find_slot(FlowId id) const;
  void erase_slot(std::size_t slot);

  /// Integrate flow progress from last_update_ to now at current rates.
  void advance_to_now();

  /// Re-rate every flow after a membership or capacity change: progressive
  /// filling in exact mode, the snapshot/drift scheme in approximate mode.
  void recompute_rates();
  void exact_rerate();
  void approx_rerate();

  /// (Re)schedule the single next-completion event.
  void schedule_next_completion();

  void complete_due_flows();

  /// Trace-only: emit a `load:<name>` counter for every resource whose
  /// allocated load changed since the last emission. No-op when tracing is
  /// disabled.
  void emit_loads();

  Simulator& sim_;

  // Resource table (SoA, indexed by ResourceId).
  std::vector<std::string> res_name_;
  std::vector<BytesPerSec> res_capacity_;
  std::vector<BytesPerSec> res_saved_capacity_;  ///< nominal while down
  std::vector<std::uint8_t> res_down_;

  // Flow table (SoA, indexed by dense slot; sorted by FlowId).
  std::vector<FlowId> flow_id_;
  std::vector<Bytes> flow_remaining_;
  std::vector<BytesPerSec> flow_rate_;
  std::vector<std::vector<ResourceId>> flow_path_;
  std::vector<std::function<void()>> flow_on_complete_;

  FlowId next_flow_id_ = 1;
  Seconds last_update_ = 0.0;
  Bytes bytes_delivered_ = 0.0;
  /// Last-emitted `load:` counter value per resource (tracing only).
  std::vector<BytesPerSec> traced_load_;
  /// Scratch buffers reused by the rating passes, indexed by ResourceId.
  std::vector<double> scratch_cap_;
  std::vector<std::size_t> scratch_count_;
  std::vector<std::uint32_t> scratch_unfrozen_;
  /// Generation counter invalidating superseded completion events.
  std::uint64_t schedule_generation_ = 0;

  // Approximate-mode state.
  bool approx_ = false;
  double approx_eps_ = 0.05;
  bool snap_valid_ = false;
  std::vector<double> snap_share_;  ///< fair share at last full rating
  std::uint64_t approx_skipped_ = 0;
};

/// Sentinel "never" time used for flows with zero rate.
inline constexpr Seconds kNever = std::numeric_limits<Seconds>::infinity();

}  // namespace autopipe::sim
