#include "sim/gpu.hpp"

#include <utility>

#include "common/expect.hpp"

namespace autopipe::sim {

GpuSpec p100_spec() {
  // P100: 9.3 TFLOPS peak fp32; ~45% sustained in convnet training.
  return GpuSpec{"P100", tflops(4.2), gib(16)};
}

GpuSpec v100_spec() {
  // V100: 14 TFLOPS peak fp32 plus tensor cores; sustained ≈ 2x P100.
  return GpuSpec{"V100", tflops(8.4), gib(32)};
}

GpuSpec a100_spec() {
  // A100: ≈ 2x V100 sustained for the mixed conv/transformer workloads here.
  return GpuSpec{"A100", tflops(16.8), gib(40)};
}

GpuExecutor::GpuExecutor(Simulator& simulator, GpuSpec spec)
    : sim_(simulator), spec_(std::move(spec)) {
  AUTOPIPE_EXPECT(spec_.throughput > 0.0);
}

GpuExecutor::TaskId GpuExecutor::submit(Flops flops,
                                        CompletionFn on_complete) {
  return submit(flops, 0.0, std::move(on_complete));
}

GpuExecutor::TaskId GpuExecutor::submit(Flops flops, Seconds fixed_overhead,
                                        CompletionFn on_complete) {
  AUTOPIPE_EXPECT(flops >= 0.0);
  AUTOPIPE_EXPECT(fixed_overhead >= 0.0);
  AUTOPIPE_EXPECT_MSG(available_, "submit on a down GPU");
  const TaskId id = next_task_id_++;
  queue_.push_back(Task{id, flops, fixed_overhead, std::move(on_complete)});
  maybe_start_next();
  return id;
}

GpuExecutor::TaskId GpuExecutor::submit_prioritized(
    Flops flops, Seconds fixed_overhead, CompletionFn on_complete) {
  AUTOPIPE_EXPECT(flops >= 0.0);
  AUTOPIPE_EXPECT(fixed_overhead >= 0.0);
  AUTOPIPE_EXPECT_MSG(available_, "submit on a down GPU");
  const TaskId id = next_task_id_++;
  priority_queue_.push_back(
      Task{id, flops, fixed_overhead, std::move(on_complete)});
  maybe_start_next();
  return id;
}

void GpuExecutor::set_tenant_count(int n) {
  AUTOPIPE_EXPECT(n >= 1);
  if (n == tenant_count_) return;
  advance_to_now();
  tenant_count_ = n;
  schedule_completion();
}

void GpuExecutor::set_throughput_scale(double scale) {
  AUTOPIPE_EXPECT(scale > 0.0);
  advance_to_now();
  throughput_scale_ = scale;
  schedule_completion();
}

void GpuExecutor::set_available(bool on) {
  if (on == available_) return;
  if (!on) {
    // Account busy time up to the preemption instant, then drop everything:
    // a preempted device loses its in-flight kernels, and completion events
    // already scheduled are invalidated via the generation counter.
    advance_to_now();
    tasks_dropped_ += queue_.size() + priority_queue_.size() +
                      (running_ ? 1 : 0);
    queue_.clear();
    priority_queue_.clear();
    current_ = Task{};
    running_ = false;
    ++schedule_generation_;
    available_ = false;
  } else {
    advance_to_now();
    available_ = true;
  }
}

FlopsPerSec GpuExecutor::effective_throughput() const {
  return spec_.throughput * throughput_scale_ /
         static_cast<double>(tenant_count_);
}

Seconds GpuExecutor::busy_time() const {
  Seconds t = busy_time_;
  if (running_) t += sim_.now() - last_update_;
  return t;
}

void GpuExecutor::advance_to_now() {
  const Seconds now = sim_.now();
  if (running_) {
    Seconds dt = now - last_update_;
    busy_time_ += dt;
    // The fixed host-side part elapses first, at wall rate.
    const Seconds fixed = std::min(dt, current_.fixed_remaining);
    current_.fixed_remaining -= fixed;
    dt -= fixed;
    compute_time_ += dt;
    const Flops done =
        std::min(current_.remaining, effective_throughput() * dt);
    current_.remaining -= done;
    flops_done_ += done;
  }
  last_update_ = now;
}

void GpuExecutor::maybe_start_next() {
  if (running_ || (queue_.empty() && priority_queue_.empty())) return;
  advance_to_now();
  auto& source = priority_queue_.empty() ? queue_ : priority_queue_;
  current_ = source.pop_front();
  running_ = true;
  schedule_completion();
}

void GpuExecutor::schedule_completion() {
  const std::uint64_t generation = ++schedule_generation_;
  if (!running_) return;
  const FlopsPerSec rate = effective_throughput();
  AUTOPIPE_EXPECT(rate > 0.0);
  const Seconds eta = current_.fixed_remaining + current_.remaining / rate;
  sim_.after(eta, [this, generation] {
    if (generation != schedule_generation_) return;
    finish_current();
  }, "gpu_task_completion");
}

void GpuExecutor::finish_current() {
  AUTOPIPE_EXPECT(running_);
  advance_to_now();
  // Floating-point scheduling noise may leave a vanishing residue.
  flops_done_ += current_.remaining;
  current_.remaining = 0.0;
  running_ = false;
  auto callback = std::move(current_.on_complete);
  maybe_start_next();
  if (callback) callback();
}

}  // namespace autopipe::sim
