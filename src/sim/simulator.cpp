#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "common/expect.hpp"

namespace autopipe::sim {

namespace {
// Tolerance for floating-point drift on event times (0.1 * 3 != 0.3). Shared
// by at() and run_until() so an event computed as "now + k*dt" is treated as
// on-time in both directions.
constexpr Seconds kTimeSlack = 1e-12;
}  // namespace

void Simulator::at(Seconds t, Callback fn, const char* label) {
  // Tolerate tiny negative drift from floating-point arithmetic on event
  // times, but reject genuinely past scheduling, which indicates a logic bug.
  AUTOPIPE_EXPECT_MSG(t >= now_ - kTimeSlack, "scheduling into the past: t="
                                              << t << " now=" << now_);
  if (queue_.capacity() == 0) queue_.reserve(256);
  queue_.push_back(Event{std::max(t, now_), next_seq_++, std::move(fn),
                         label});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

Simulator::Event Simulator::pop_event() {
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  return ev;
}

void Simulator::after(Seconds dt, Callback fn, const char* label) {
  AUTOPIPE_EXPECT(dt >= 0.0);
  at(now_ + dt, std::move(fn), label);
}

void Simulator::set_zero_progress_bound(std::uint64_t bound) {
  AUTOPIPE_EXPECT(bound > 0);
  zero_progress_bound_ = bound;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // Move the event out before popping so the callback may schedule freely.
  Event ev = pop_event();
  // Zero-progress guard: a buggy schedule (e.g. a fault event rescheduling
  // itself at `now`) would otherwise spin forever without advancing time.
  if (ev.time == instant_time_) {
    ++instant_events_;
    AUTOPIPE_EXPECT_MSG(
        instant_events_ <= zero_progress_bound_,
        "zero progress: " << instant_events_ << " events executed at t="
                          << ev.time << " without the clock advancing; "
                          << "looping event: "
                          << (ev.label ? ev.label : "(unlabelled)"));
  } else {
    instant_time_ = ev.time;
    instant_events_ = 1;
  }
  now_ = ev.time;
  ++events_processed_;
  ev.fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(Seconds t) {
  AUTOPIPE_EXPECT(t >= now_ - kTimeSlack);
  // The slack matters twice over: an event firing at t may schedule another
  // event at exactly t (which must still run before the clock is pinned), and
  // an event computed as "now + k*dt" may land a few ulps past t. Both count
  // as "no later than t".
  while (!queue_.empty() && queue_.front().time <= t + kTimeSlack) {
    step();
  }
  // step() may have set now_ slightly past t (within the slack); never move
  // the clock backwards.
  now_ = std::max(now_, t);
}

Seconds Simulator::next_event_time() const {
  AUTOPIPE_EXPECT(!queue_.empty());
  return queue_.front().time;
}

}  // namespace autopipe::sim
