#include "sim/simulator.hpp"

#include <utility>

#include "common/expect.hpp"

namespace autopipe::sim {

void Simulator::at(Seconds t, Callback fn) {
  // Tolerate tiny negative drift from floating-point arithmetic on event
  // times, but reject genuinely past scheduling, which indicates a logic bug.
  AUTOPIPE_EXPECT_MSG(t >= now_ - 1e-12, "scheduling into the past: t=" << t
                                         << " now=" << now_);
  queue_.push(Event{std::max(t, now_), next_seq_++, std::move(fn)});
}

void Simulator::after(Seconds dt, Callback fn) {
  AUTOPIPE_EXPECT(dt >= 0.0);
  at(now_ + dt, std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // Move the event out before popping so the callback may schedule freely.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++events_processed_;
  ev.fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(Seconds t) {
  AUTOPIPE_EXPECT(t >= now_);
  while (!queue_.empty() && queue_.top().time <= t) {
    step();
  }
  now_ = t;
}

Seconds Simulator::next_event_time() const {
  AUTOPIPE_EXPECT(!queue_.empty());
  return queue_.top().time;
}

}  // namespace autopipe::sim
