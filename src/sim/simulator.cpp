#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "common/expect.hpp"
#include "common/profile.hpp"

namespace autopipe::sim {

Simulator::Simulator(EventQueueKind queue_kind)
    : queue_kind_(queue_kind), queue_(make_event_queue(queue_kind)) {
  if (queue_kind_ == EventQueueKind::kWheel) {
    wheel_ = static_cast<TimingWheelEventQueue*>(queue_.get());
  } else {
    heap_ = static_cast<HeapEventQueue*>(queue_.get());
  }
}

void Simulator::set_zero_progress_bound(std::uint64_t bound) {
  AUTOPIPE_EXPECT(bound > 0);
  zero_progress_bound_ = bound;
}

bool Simulator::step() {
  if (wheel_ != nullptr) {
    if (wheel_->empty()) return false;
    // The event's closure runs in place in its pool node (addresses are
    // stable across pushes from inside the callback); the node is recycled
    // only after the callback returns.
    const std::uint32_t n = [this] {
      PROF_SPAN_AGG("sim/queue_pop");
      return wheel_->pop_node();
    }();
    TimingWheelEventQueue::Node& nd = wheel_->node(n);
    check_progress(nd.ev.time, nd.ev.label);
    // Sample *before* the event executes: the row at boundary b reflects
    // exactly the events with time < b, identically under either queue.
    if (timeseries_.enabled()) timeseries_.advance_to(nd.ev.time, metrics_);
    now_ = nd.ev.time;
    ++events_processed_;
    // Restore the scheduling event's causal context so trace events recorded
    // by the callback chain across the queue hop.
    tracer_.set_current_cause(nd.ev.cause);
    nd.ev.fn();
    wheel_->release_node(n);
    return true;
  }
  if (heap_->empty()) return false;
  // Move the event out before popping so the callback may schedule freely.
  SimEvent ev = [this] {
    PROF_SPAN_AGG("sim/queue_pop");
    return heap_->pop();
  }();
  check_progress(ev.time, ev.label);
  if (timeseries_.enabled()) timeseries_.advance_to(ev.time, metrics_);
  now_ = ev.time;
  ++events_processed_;
  tracer_.set_current_cause(ev.cause);
  ev.fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(Seconds t) {
  AUTOPIPE_EXPECT(t >= now_ - kTimeSlack);
  // The slack matters twice over: an event firing at t may schedule another
  // event at exactly t (which must still run before the clock is pinned), and
  // an event computed as "now + k*dt" may land a few ulps past t. Both count
  // as "no later than t".
  while (!empty() && peek_time() <= t + kTimeSlack) {
    step();
  }
  // step() may have set now_ slightly past t (within the slack); never move
  // the clock backwards.
  now_ = std::max(now_, t);
  // Pinning the clock may cross sampling boundaries with no event at them;
  // every executed event's time is below those boundaries, so emitting here
  // preserves the sample-at-boundary semantics.
  if (timeseries_.enabled()) timeseries_.advance_to(now_, metrics_);
}

Seconds Simulator::next_event_time() {
  AUTOPIPE_EXPECT(!empty());
  return peek_time();
}

}  // namespace autopipe::sim
