#include "sim/background.hpp"

#include <algorithm>
#include <memory>

#include "common/expect.hpp"
#include "common/log.hpp"

namespace autopipe::sim {

BackgroundWorkload::BackgroundWorkload(BackgroundWorkloadConfig config,
                                       Rng rng)
    : config_(config), rng_(rng) {
  AUTOPIPE_EXPECT(config_.gpu_job_rate >= 0.0);
  AUTOPIPE_EXPECT(config_.net_job_rate >= 0.0);
  AUTOPIPE_EXPECT(config_.net_bandwidth_factor > 0.0 &&
                  config_.net_bandwidth_factor <= 1.0);
  AUTOPIPE_EXPECT(config_.horizon > 0.0);
}

void BackgroundWorkload::install(Simulator& simulator, Cluster& cluster) {
  // GPU-intensive arrivals.
  if (config_.gpu_job_rate > 0.0) {
    Seconds t = 0.0;
    while (true) {
      t += rng_.exponential(1.0 / config_.gpu_job_rate);
      if (t > config_.horizon) break;
      const Seconds duration =
          rng_.exponential(config_.mean_gpu_job_duration);
      // Pick `span` distinct workers.
      std::vector<WorkerId> all(cluster.num_workers());
      for (WorkerId w = 0; w < all.size(); ++w) all[w] = w;
      rng_.shuffle(all);
      const std::size_t span =
          std::min(config_.gpu_job_span, all.size());
      auto occupied = std::make_shared<std::vector<WorkerId>>(
          all.begin(), all.begin() + static_cast<std::ptrdiff_t>(span));
      simulator.at(t, [&cluster, occupied] {
        for (WorkerId w : *occupied) cluster.add_background_job(w);
      });
      simulator.at(t + duration, [&cluster, occupied] {
        for (WorkerId w : *occupied) cluster.remove_background_job(w);
      });
      ++gpu_jobs_;
    }
  }
  // Network-intensive arrivals.
  if (config_.net_job_rate > 0.0) {
    Seconds t = 0.0;
    while (true) {
      t += rng_.exponential(1.0 / config_.net_job_rate);
      if (t > config_.horizon) break;
      const Seconds duration =
          rng_.exponential(config_.mean_net_job_duration);
      const auto server = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(cluster.num_servers()) - 1));
      const double factor = config_.net_bandwidth_factor;
      // Scale the configured bandwidth, not the link-masked effective one:
      // a tenant arriving during a link outage would otherwise read 0 and
      // pin the server's NIC at zero long after the link recovers.
      simulator.at(t, [&cluster, server, factor] {
        cluster.set_nic_bandwidth(
            server, cluster.configured_nic_bandwidth(server) * factor);
      });
      simulator.at(t + duration, [&cluster, server, factor] {
        cluster.set_nic_bandwidth(
            server, cluster.configured_nic_bandwidth(server) / factor);
      });
      ++net_jobs_;
    }
  }
  LOG_INFO("background workload installed: " << gpu_jobs_ << " gpu jobs, "
                                             << net_jobs_ << " net jobs");
}

}  // namespace autopipe::sim
