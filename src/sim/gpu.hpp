// GPU compute model. A GpuExecutor runs the training job's kernels serially
// (one FP/BP task at a time, FIFO), at an effective throughput of
// base_throughput / tenant_count — the fair time-slicing approximation of
// multiple jobs packed onto one accelerator, which is how the paper emulates
// GPU contention ("we add an extra job on each GPU"). Tenant count may
// change while a task is in flight; remaining work is preserved and the
// completion event rescheduled.
#pragma once

#include <cstdint>
#include <string>

#include "common/ring_buffer.hpp"
#include "common/small_function.hpp"
#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace autopipe::sim {

/// Static description of an accelerator type.
struct GpuSpec {
  std::string name = "P100";
  /// Sustained training throughput (post-efficiency, not peak datasheet).
  FlopsPerSec throughput = 0.0;
  /// Device memory; the pipeline executor checks weight-stash footprints
  /// against it.
  Bytes memory = 0.0;
};

/// Well-known accelerator presets. Throughputs are sustained-training
/// estimates (≈40-50% of peak fp32), which is what partitioning cares about.
GpuSpec p100_spec();
GpuSpec v100_spec();
GpuSpec a100_spec();

class GpuExecutor {
 public:
  using TaskId = std::uint64_t;
  /// Completion callbacks share the simulator's move-only small-buffer
  /// closure type: task queues churn at event rate, and std::function here
  /// cost one heap allocation per enqueued kernel.
  using CompletionFn = common::SmallFunction<void(), 48>;

  GpuExecutor(Simulator& simulator, GpuSpec spec);

  GpuExecutor(const GpuExecutor&) = delete;
  GpuExecutor& operator=(const GpuExecutor&) = delete;
  GpuExecutor(GpuExecutor&&) = delete;

  /// Enqueue a compute task; tasks run FIFO, one at a time.
  TaskId submit(Flops flops, CompletionFn on_complete);

  /// Enqueue a task with an additional fixed host-side component (kernel
  /// launch / dispatch overhead). The fixed part elapses in wall time and is
  /// unaffected by GPU tenancy; the FLOP part shares the device.
  TaskId submit(Flops flops, Seconds fixed_overhead,
                CompletionFn on_complete);

  /// Two-level non-preemptive priority (1F1B: backward passes overtake
  /// queued forward passes). High-priority tasks run before queued normal
  /// tasks; the in-flight task is never preempted.
  TaskId submit_prioritized(Flops flops, Seconds fixed_overhead,
                            CompletionFn on_complete);

  /// Number of jobs time-sharing this GPU, including the training job
  /// itself. Must be >= 1.
  void set_tenant_count(int n);
  int tenant_count() const { return tenant_count_; }

  /// Scale the device's base throughput (e.g. thermal throttling scenarios).
  void set_throughput_scale(double scale);

  /// Hard availability transition (preemption / eviction), distinct from a
  /// capacity change: taking the device down drops the in-flight task and
  /// everything queued — their completion callbacks never fire — and rejects
  /// submissions until it comes back. Idempotent in both directions.
  void set_available(bool on);
  bool available() const { return available_; }
  /// Cumulative number of tasks dropped by down transitions.
  std::uint64_t tasks_dropped() const { return tasks_dropped_; }

  /// Rate currently available to the training job.
  FlopsPerSec effective_throughput() const;

  const GpuSpec& spec() const { return spec_; }
  bool busy() const { return running_; }
  std::size_t queue_depth() const {
    return queue_.size() + priority_queue_.size() + (running_ ? 1 : 0);
  }
  Flops total_flops_done() const { return flops_done_; }
  /// Cumulative time this executor spent with a task in flight.
  Seconds busy_time() const;
  /// Cumulative time spent in the FLOP phase only (excludes fixed
  /// host-side overhead) — the denominator for counter-based rate probes.
  Seconds compute_time() const { return compute_time_; }

 private:
  struct Task {
    TaskId id;
    Flops remaining;
    Seconds fixed_remaining;
    CompletionFn on_complete;
  };

  void advance_to_now();
  void maybe_start_next();
  void schedule_completion();
  void finish_current();

  Simulator& sim_;
  GpuSpec spec_;
  double throughput_scale_ = 1.0;
  int tenant_count_ = 1;

  /// Flat FIFOs: task churn runs at event rate, and deque's chunked map
  /// cost an allocation every few dozen pushes.
  common::RingQueue<Task> queue_;
  common::RingQueue<Task> priority_queue_;
  Task current_{};
  bool running_ = false;
  bool available_ = true;
  std::uint64_t tasks_dropped_ = 0;
  Seconds last_update_ = 0.0;
  Flops flops_done_ = 0.0;
  Seconds busy_time_ = 0.0;
  Seconds compute_time_ = 0.0;
  TaskId next_task_id_ = 1;
  std::uint64_t schedule_generation_ = 0;
};

}  // namespace autopipe::sim
