#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <utility>

#include "common/expect.hpp"

namespace autopipe::sim {

TimingWheelEventQueue::TimingWheelEventQueue() {
  for (int l = 0; l < kLevels; ++l) {
    for (std::size_t s = 0; s < kSlots; ++s) head_[l][s] = kNil;
    for (std::size_t w = 0; w < kSlots / 64; ++w) occ_[l][w] = 0;
  }
  near_.reserve(64);
}

int TimingWheelEventQueue::first_occupied(int level) const {
  for (std::size_t w = 0; w < kSlots / 64; ++w) {
    if (occ_[level][w] != 0)
      return static_cast<int>(w * 64) + std::countr_zero(occ_[level][w]);
  }
  return -1;
}

void TimingWheelEventQueue::drain_slot(int level, std::size_t slot) {
  std::uint32_t n = head_[level][slot];
  head_[level][slot] = kNil;
  occ_[level][slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  while (n != kNil) {
    const std::uint32_t next = node(n).next;
    near_.push_back(n);
    n = next;
  }
  // Called with near_ empty; a single-event tick (the common case) is
  // already a heap.
  if (near_.size() > 1)
    std::make_heap(near_.begin(), near_.end(), NearAfter{this});
}

void TimingWheelEventQueue::cascade_slot(int from_level, std::size_t slot) {
  const int to = from_level - 1;
  const std::uint64_t span = std::uint64_t{1} << (kSlotsLog2 * from_level);
  // The drained slot's tick range becomes the finer level's whole window,
  // so every node relinks within bounds. base differences stay multiples
  // of the finer level's span, which keeps stale-window captures
  // impossible (see docs/SIMULATOR.md).
  base_[to] = base_[from_level] + static_cast<std::uint64_t>(slot) * span;
  std::uint32_t n = head_[from_level][slot];
  head_[from_level][slot] = kNil;
  occ_[from_level][slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  while (n != kNil) {
    const std::uint32_t next = node(n).next;
    link(to,
         static_cast<std::size_t>((node(n).tick - base_[to]) >>
                                  (kSlotsLog2 * to)),
         n);
    n = next;
  }
}

void TimingWheelEventQueue::refill_from_overflow() {
  std::uint64_t min_k = kSaturatedTick;
  for (std::uint32_t n = overflow_head_; n != kNil; n = node(n).next)
    min_k = std::min(min_k, node(n).tick);
  std::uint32_t n = overflow_head_;
  overflow_head_ = kNil;
  if (min_k == kSaturatedTick) {
    // Only unrepresentable timestamps remain (infinite / beyond-horizon).
    // Degrade to pure-heap mode: everything lives in the near heap from
    // here on, which is exactly the reference queue's behaviour.
    cur_tick_ = kSaturatedTick;
    while (n != kNil) {
      const std::uint32_t next = node(n).next;
      near_.push_back(n);
      n = next;
    }
    if (near_.size() > 1)
      std::make_heap(near_.begin(), near_.end(), NearAfter{this});
    return;
  }
  // Re-page the wheel so the earliest overflow tick is slot 0 of every
  // level; nodes still beyond the level-2 horizon return to overflow.
  base_[0] = base_[1] = base_[2] = min_k;
  while (n != kNil) {
    const std::uint32_t next = node(n).next;
    place(n);
    n = next;
  }
}

void TimingWheelEventQueue::settle() {
  for (;;) {
    if (const int s = first_occupied(0); s >= 0) {
      cur_tick_ = base_[0] + static_cast<std::uint64_t>(s);
      drain_slot(0, static_cast<std::size_t>(s));
      return;
    }
    if (const int s = first_occupied(1); s >= 0) {
      cascade_slot(1, static_cast<std::size_t>(s));
      continue;
    }
    if (const int s = first_occupied(2); s >= 0) {
      cascade_slot(2, static_cast<std::size_t>(s));
      continue;
    }
    if (overflow_head_ != kNil) {
      refill_from_overflow();
      continue;
    }
    return;  // wheel empty; pop()/peek_time() preconditions bar this
  }
}

// ---------------------------------------------------------------------------
// Selection
// ---------------------------------------------------------------------------

EventQueueKind parse_event_queue_kind(std::string_view name) {
  if (name == "heap") return EventQueueKind::kHeap;
  if (name == "wheel") return EventQueueKind::kWheel;
  AUTOPIPE_EXPECT_MSG(false, "unknown event queue kind \""
                                 << name << "\" (expected heap or wheel)");
  return EventQueueKind::kWheel;  // unreachable
}

const char* event_queue_kind_name(EventQueueKind kind) {
  return kind == EventQueueKind::kHeap ? "heap" : "wheel";
}

EventQueueKind default_event_queue_kind() {
  static const EventQueueKind kind = [] {
    const char* env = std::getenv("AUTOPIPE_EVENT_QUEUE");
    return env == nullptr ? EventQueueKind::kWheel
                          : parse_event_queue_kind(env);
  }();
  return kind;
}

std::unique_ptr<EventQueue> make_event_queue(EventQueueKind kind) {
  if (kind == EventQueueKind::kHeap) return std::make_unique<HeapEventQueue>();
  return std::make_unique<TimingWheelEventQueue>();
}

}  // namespace autopipe::sim
