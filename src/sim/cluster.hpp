// The shared GPU cluster: servers with one NIC each and several GPUs behind
// a single non-blocking switch, matching the paper's testbed (5 servers × 2
// P100, one 100Gbps ConnectX-5 NIC per server, one SN2100 switch).
//
// Workers are GPUs, numbered 0..num_workers-1 in server-major order. Flows
// between workers on the same server consume the server's PCIe resource;
// flows between servers consume the sender's NIC-tx and the receiver's
// NIC-rx resources. NIC capacity and per-GPU tenancy can change at any
// simulated instant, which is exactly the fluctuation AutoPipe reacts to.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/units.hpp"
#include "sim/flow_network.hpp"
#include "sim/gpu.hpp"
#include "sim/simulator.hpp"

namespace autopipe::sim {

using WorkerId = std::size_t;

struct ClusterConfig {
  std::size_t num_servers = 5;
  std::size_t gpus_per_server = 2;
  /// Accelerator types, one per GPU slot; a single entry is broadcast to
  /// every slot (the paper's homogeneous-P100 testbed).
  std::vector<GpuSpec> gpu_specs = {p100_spec()};
  BytesPerSec nic_bandwidth = gbps(100);
  /// PCIe 3.0 x16 effective ≈ 12 GB/s, shared by the GPUs of one server.
  BytesPerSec pcie_bandwidth = 12e9;
  /// Optional two-tier topology: servers grouped into racks of this size,
  /// with an oversubscribed uplink per rack toward the core. 0 keeps the
  /// paper's single-switch testbed. PipeDream's planner *assumes* such a
  /// hierarchy has uniform per-level bandwidth; the simulator lets that
  /// assumption be tested against real rack-uplink contention.
  std::size_t servers_per_rack = 0;
  BytesPerSec rack_uplink_bandwidth = gbps(100);
};

class Cluster {
 public:
  Cluster(Simulator& simulator, ClusterConfig config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  std::size_t num_servers() const { return config_.num_servers; }
  std::size_t num_workers() const {
    return config_.num_servers * config_.gpus_per_server;
  }
  std::size_t server_of(WorkerId worker) const;
  /// Rack of a server; all servers share rack 0 on a single-switch cluster.
  std::size_t rack_of_server(std::size_t server) const;
  std::size_t num_racks() const;

  GpuExecutor& gpu(WorkerId worker);
  const GpuExecutor& gpu(WorkerId worker) const;

  FlowNetwork& network() { return network_; }
  const FlowNetwork& network() const { return network_; }
  Simulator& simulator() { return sim_; }

  /// Resource path a transfer from src to dst traverses. src == dst yields
  /// an empty path, which callers should treat as a free local copy.
  std::vector<ResourceId> path(WorkerId src, WorkerId dst) const;

  /// Convenience: start a byte transfer between two workers. A src==dst
  /// "transfer" completes via an immediate event.
  FlowId transfer(WorkerId src, WorkerId dst, Bytes bytes,
                  std::function<void()> on_complete);

  // --- dynamic resource state ------------------------------------------

  void set_nic_bandwidth(std::size_t server, BytesPerSec bandwidth);
  void set_all_nic_bandwidth(BytesPerSec bandwidth);
  /// Effective bandwidth: 0 while the server's link is down.
  BytesPerSec nic_bandwidth(std::size_t server) const;
  /// The configured (tenant-modulated) bandwidth regardless of link state.
  /// Relative adjustments (background churn scaling up/down) must read this
  /// one: scaling the effective value latches a mid-outage zero forever.
  BytesPerSec configured_nic_bandwidth(std::size_t server) const;

  /// Add / remove one co-located background job on a GPU (adjusts the
  /// executor's tenant count).
  void add_background_job(WorkerId worker);
  void remove_background_job(WorkerId worker);

  // --- fault state (hard down/up transitions, not capacity changes) -----

  /// Preempt / return a worker's GPU. Down drops its in-flight and queued
  /// compute (see GpuExecutor::set_available), emits a fault trace instant
  /// and notifies the registered worker-state callback. Idempotent.
  void set_worker_down(WorkerId worker);
  void set_worker_up(WorkerId worker);
  bool worker_up(WorkerId worker) const;

  /// Fail / restore a server's NIC (both directions). The nominal bandwidth
  /// is remembered across the outage; in-flight flows stall and resume.
  void set_link_down(std::size_t server);
  void set_link_up(std::size_t server);
  bool link_up(std::size_t server) const;

  /// A worker that is up *and* whose server link is up: usable by a plan.
  bool worker_reachable(WorkerId worker) const {
    return worker_up(worker) && link_up(server_of(worker));
  }

  /// Profiler dropout: while muted, measurement consumers (the AutoPipe
  /// controller) hold the last good sample for this worker instead of
  /// reading fresh — modelling a monitoring-agent outage, not a GPU one.
  void set_profiler_muted(WorkerId worker, bool muted);
  bool profiler_muted(WorkerId worker) const;

  /// Observers for worker down/up transitions. Multi-slot: every pipeline
  /// executor registers one, and a co-tenancy JobManager adds its own to
  /// reassign ownership of preempted GPUs. Called synchronously from
  /// set_worker_* in registration order. add returns a token for remove.
  using WorkerStateCallback = std::function<void(WorkerId, bool up)>;
  std::uint64_t add_worker_state_callback(WorkerStateCallback cb);
  void remove_worker_state_callback(std::uint64_t token);
  /// Legacy single-slot setter: replaces the previous set_ registration (if
  /// any) without disturbing add_-registered observers. nullptr clears it.
  void set_worker_state_callback(WorkerStateCallback cb);

  /// Observers for server-link down/up transitions (multi-slot, same token
  /// protocol; a pipeline executor registers one so a link failure can abort
  /// an in-flight partition switch). Called synchronously from set_link_*.
  using LinkStateCallback = std::function<void(std::size_t server, bool up)>;
  std::uint64_t add_link_state_callback(LinkStateCallback cb);
  void remove_link_state_callback(std::uint64_t token);
  void set_link_state_callback(LinkStateCallback cb);

  const ClusterConfig& config() const { return config_; }

 private:
  Simulator& sim_;
  ClusterConfig config_;
  FlowNetwork network_;
  /// By value in a deque: executors are immovable (the simulator holds
  /// their this-pointers in scheduled closures) and deque never relocates
  /// elements, so gpu(w) is one indexed access with no per-GPU allocation.
  std::deque<GpuExecutor> gpus_;
  std::vector<ResourceId> nic_tx_;
  std::vector<ResourceId> nic_rx_;
  std::vector<ResourceId> pcie_;
  std::vector<ResourceId> uplink_tx_;  // per rack (two-tier only)
  std::vector<ResourceId> uplink_rx_;
  std::vector<BytesPerSec> nic_bw_;
  /// Byte flags, not vector<bool>: fault paths and reachability checks read
  /// these at event rate and the proxy-reference bit twiddling shows up.
  std::vector<std::uint8_t> worker_up_;
  std::vector<std::uint8_t> link_up_;
  std::vector<std::uint8_t> profiler_muted_;
  /// Trace eids of the most recent down instants, so the matching up
  /// instant records the outage that it ends as its explicit cause.
  std::vector<std::uint64_t> worker_down_eid_;
  std::vector<std::uint64_t> link_down_eid_;
  void notify_worker_state(WorkerId worker, bool up);
  void notify_link_state(std::size_t server, bool up);

  /// Registered observers, keyed by token. A deterministic vector (not a
  /// map) so notification order is registration order; token 0 is reserved
  /// for the legacy single-slot set_ registration.
  std::vector<std::pair<std::uint64_t, WorkerStateCallback>> worker_state_callbacks_;
  std::vector<std::pair<std::uint64_t, LinkStateCallback>> link_state_callbacks_;
  std::uint64_t next_callback_token_ = 1;
};

}  // namespace autopipe::sim
