#include "sim/trace.hpp"

#include <sstream>

#include "common/expect.hpp"

namespace autopipe::sim {

std::string TraceEvent::describe() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kSetAllNicBandwidth:
      os << "set all NIC bandwidth to " << value * 8.0 / 1e9 << " Gbps";
      break;
    case Kind::kSetNicBandwidth:
      os << "set server " << index << " NIC bandwidth to "
         << value * 8.0 / 1e9 << " Gbps";
      break;
    case Kind::kAddGpuJob:
      os << "add background job on worker " << index;
      break;
    case Kind::kRemoveGpuJob:
      os << "remove background job on worker " << index;
      break;
    case Kind::kAddJobAllGpus:
      os << "add background job on every GPU";
      break;
    case Kind::kRemoveJobAllGpus:
      os << "remove background job from every GPU";
      break;
  }
  return os.str();
}

ResourceTrace& ResourceTrace::at_time(Seconds t, TraceEvent ev) {
  AUTOPIPE_EXPECT(t >= 0.0);
  points_.push_back(TracePoint{t, false, ev});
  return *this;
}

ResourceTrace& ResourceTrace::at_iteration(std::size_t iter, TraceEvent ev) {
  points_.push_back(TracePoint{static_cast<double>(iter), true, ev});
  return *this;
}

void ResourceTrace::install(
    Simulator& simulator, Cluster& cluster,
    std::function<void(const TraceEvent&)> on_change) const {
  for (const TracePoint& p : points_) {
    if (p.by_iteration) continue;
    TraceEvent ev = p.event;
    simulator.at(p.at, [&cluster, ev, on_change] {
      apply(ev, cluster);
      if (on_change) on_change(ev);
    });
  }
}

std::size_t ResourceTrace::apply_iteration(
    std::size_t iter, Cluster& cluster,
    std::function<void(const TraceEvent&)> on_change) const {
  std::size_t fired = 0;
  for (const TracePoint& p : points_) {
    if (!p.by_iteration) continue;
    if (static_cast<std::size_t>(p.at) != iter) continue;
    apply(p.event, cluster);
    if (on_change) on_change(p.event);
    ++fired;
  }
  return fired;
}

void ResourceTrace::apply(const TraceEvent& ev, Cluster& cluster) {
  Simulator& sim = cluster.simulator();
  if (sim.tracer().enabled()) {
    sim.tracer().instant(trace::Category::kResource, "resource_event",
                         sim.now(), trace::kPidResource, 0,
                         {trace::arg("what", ev.describe())});
  }
  switch (ev.kind) {
    case TraceEvent::Kind::kSetAllNicBandwidth:
      cluster.set_all_nic_bandwidth(ev.value);
      break;
    case TraceEvent::Kind::kSetNicBandwidth:
      cluster.set_nic_bandwidth(ev.index, ev.value);
      break;
    case TraceEvent::Kind::kAddGpuJob:
      cluster.add_background_job(ev.index);
      break;
    case TraceEvent::Kind::kRemoveGpuJob:
      cluster.remove_background_job(ev.index);
      break;
    case TraceEvent::Kind::kAddJobAllGpus:
      for (WorkerId w = 0; w < cluster.num_workers(); ++w)
        cluster.add_background_job(w);
      break;
    case TraceEvent::Kind::kRemoveJobAllGpus:
      for (WorkerId w = 0; w < cluster.num_workers(); ++w)
        cluster.remove_background_job(w);
      break;
  }
}

TraceEvent ResourceTrace::set_all_nic_bandwidth(BytesPerSec bw) {
  return TraceEvent{TraceEvent::Kind::kSetAllNicBandwidth, 0, bw};
}
TraceEvent ResourceTrace::set_nic_bandwidth(std::size_t server,
                                            BytesPerSec bw) {
  return TraceEvent{TraceEvent::Kind::kSetNicBandwidth, server, bw};
}
TraceEvent ResourceTrace::add_gpu_job(WorkerId worker) {
  return TraceEvent{TraceEvent::Kind::kAddGpuJob, worker, 0.0};
}
TraceEvent ResourceTrace::remove_gpu_job(WorkerId worker) {
  return TraceEvent{TraceEvent::Kind::kRemoveGpuJob, worker, 0.0};
}
TraceEvent ResourceTrace::add_job_all_gpus() {
  return TraceEvent{TraceEvent::Kind::kAddJobAllGpus, 0, 0.0};
}
TraceEvent ResourceTrace::remove_job_all_gpus() {
  return TraceEvent{TraceEvent::Kind::kRemoveJobAllGpus, 0, 0.0};
}

}  // namespace autopipe::sim
