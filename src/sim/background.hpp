// Stochastic shared-cluster churn. The Microsoft trace study the paper cites
// ([7], Jeon et al., ATC'19) motivates three fluctuation sources: jobs
// joining/leaving (gang scheduling), locality-constrained placements, and
// failures. We model churn as two independent marked Poisson processes:
//
//   * GPU-intensive jobs: arrive at rate lambda_gpu, occupy `span` random
//     GPUs for an exponentially distributed duration, adding one tenant to
//     each occupied executor.
//   * Network-intensive jobs: arrive at rate lambda_net, cut a random
//     server's NIC capacity by a multiplicative factor for their duration.
//
// The generator pre-materializes the whole event schedule up to a horizon at
// install time from a seeded Rng, so experiments replay identically.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/cluster.hpp"

namespace autopipe::sim {

struct BackgroundWorkloadConfig {
  /// Mean arrivals per simulated second.
  double gpu_job_rate = 0.02;
  double net_job_rate = 0.02;
  /// Mean holding time of one background job.
  Seconds mean_gpu_job_duration = 30.0;
  Seconds mean_net_job_duration = 30.0;
  /// How many GPUs one GPU-intensive job occupies.
  std::size_t gpu_job_span = 1;
  /// Multiplicative NIC capacity cut while a network job holds a server
  /// (0.5 = the paper's "available bandwidth is halved").
  double net_bandwidth_factor = 0.5;
  /// Stop generating arrivals beyond this horizon.
  Seconds horizon = 600.0;
};

/// Pre-materialized churn schedule bound to one cluster.
class BackgroundWorkload {
 public:
  BackgroundWorkload(BackgroundWorkloadConfig config, Rng rng);

  /// Sample the schedule and install start/stop events on the simulator.
  void install(Simulator& simulator, Cluster& cluster);

  /// Number of job arrivals materialized (after install()).
  std::size_t gpu_jobs() const { return gpu_jobs_; }
  std::size_t net_jobs() const { return net_jobs_; }

 private:
  BackgroundWorkloadConfig config_;
  Rng rng_;
  std::size_t gpu_jobs_ = 0;
  std::size_t net_jobs_ = 0;
};

}  // namespace autopipe::sim
