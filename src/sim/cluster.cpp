#include "sim/cluster.hpp"

#include <string>
#include <utility>

#include "common/expect.hpp"

namespace autopipe::sim {

Cluster::Cluster(Simulator& simulator, ClusterConfig config)
    : sim_(simulator), config_(std::move(config)), network_(simulator) {
  AUTOPIPE_EXPECT(config_.num_servers >= 1);
  AUTOPIPE_EXPECT(config_.gpus_per_server >= 1);
  AUTOPIPE_EXPECT(!config_.gpu_specs.empty());
  AUTOPIPE_EXPECT(config_.nic_bandwidth > 0.0);
  AUTOPIPE_EXPECT(config_.pcie_bandwidth > 0.0);

  const std::size_t workers = num_workers();
  AUTOPIPE_EXPECT_MSG(
      config_.gpu_specs.size() == 1 || config_.gpu_specs.size() == workers,
      "gpu_specs must have 1 entry or one per worker");

  for (std::size_t s = 0; s < config_.num_servers; ++s) {
    const std::string base = "server" + std::to_string(s);
    nic_tx_.push_back(
        network_.add_resource(base + ".nic.tx", config_.nic_bandwidth));
    nic_rx_.push_back(
        network_.add_resource(base + ".nic.rx", config_.nic_bandwidth));
    pcie_.push_back(
        network_.add_resource(base + ".pcie", config_.pcie_bandwidth));
    nic_bw_.push_back(config_.nic_bandwidth);
  }
  if (config_.servers_per_rack > 0) {
    AUTOPIPE_EXPECT(config_.rack_uplink_bandwidth > 0.0);
    for (std::size_t r = 0; r < num_racks(); ++r) {
      const std::string base = "rack" + std::to_string(r);
      uplink_tx_.push_back(network_.add_resource(
          base + ".uplink.tx", config_.rack_uplink_bandwidth));
      uplink_rx_.push_back(network_.add_resource(
          base + ".uplink.rx", config_.rack_uplink_bandwidth));
    }
  }
  for (std::size_t w = 0; w < workers; ++w) {
    const GpuSpec& spec = config_.gpu_specs.size() == 1
                              ? config_.gpu_specs.front()
                              : config_.gpu_specs[w];
    gpus_.emplace_back(sim_, spec);
  }
  worker_up_.assign(workers, 1);
  link_up_.assign(config_.num_servers, 1);
  profiler_muted_.assign(workers, 0);
  worker_down_eid_.assign(workers, 0);
  link_down_eid_.assign(config_.num_servers, 0);
}

std::size_t Cluster::server_of(WorkerId worker) const {
  AUTOPIPE_EXPECT(worker < num_workers());
  return worker / config_.gpus_per_server;
}

std::size_t Cluster::rack_of_server(std::size_t server) const {
  AUTOPIPE_EXPECT(server < config_.num_servers);
  if (config_.servers_per_rack == 0) return 0;
  return server / config_.servers_per_rack;
}

std::size_t Cluster::num_racks() const {
  if (config_.servers_per_rack == 0) return 1;
  return (config_.num_servers + config_.servers_per_rack - 1) /
         config_.servers_per_rack;
}

GpuExecutor& Cluster::gpu(WorkerId worker) {
  AUTOPIPE_EXPECT(worker < num_workers());
  return gpus_[worker];
}

const GpuExecutor& Cluster::gpu(WorkerId worker) const {
  AUTOPIPE_EXPECT(worker < num_workers());
  return gpus_[worker];
}

std::vector<ResourceId> Cluster::path(WorkerId src, WorkerId dst) const {
  AUTOPIPE_EXPECT(src < num_workers());
  AUTOPIPE_EXPECT(dst < num_workers());
  if (src == dst) return {};
  const std::size_t ss = server_of(src);
  const std::size_t ds = server_of(dst);
  if (ss == ds) return {pcie_[ss]};
  const std::size_t sr = rack_of_server(ss);
  const std::size_t dr = rack_of_server(ds);
  if (config_.servers_per_rack == 0 || sr == dr)
    return {nic_tx_[ss], nic_rx_[ds]};
  // Cross-rack: the transfer also claims a share of both rack uplinks.
  return {nic_tx_[ss], uplink_tx_[sr], uplink_rx_[dr], nic_rx_[ds]};
}

FlowId Cluster::transfer(WorkerId src, WorkerId dst, Bytes bytes,
                         std::function<void()> on_complete) {
  auto p = path(src, dst);
  if (p.empty()) {
    // Device-local move: modelled as free (HBM bandwidth dwarfs the network).
    if (on_complete) sim_.after(0.0, std::move(on_complete));
    return 0;
  }
  return network_.start_flow(
      FlowSpec{std::move(p), bytes, std::move(on_complete)});
}

void Cluster::set_nic_bandwidth(std::size_t server, BytesPerSec bandwidth) {
  AUTOPIPE_EXPECT(server < config_.num_servers);
  nic_bw_[server] = bandwidth;
  // Record the instant *before* touching capacities: the rate recompute
  // reschedules flow completions, whose causal parent must be this change.
  if (sim_.tracer().enabled()) {
    sim_.tracer().instant(trace::Category::kResource, "nic_bw", sim_.now(),
                          trace::kPidResource, static_cast<int>(server),
                          {trace::arg("gbps", bandwidth * 8.0 / 1e9)});
  }
  network_.set_capacity(nic_tx_[server], bandwidth);
  network_.set_capacity(nic_rx_[server], bandwidth);
}

void Cluster::set_all_nic_bandwidth(BytesPerSec bandwidth) {
  for (std::size_t s = 0; s < config_.num_servers; ++s)
    set_nic_bandwidth(s, bandwidth);
}

BytesPerSec Cluster::nic_bandwidth(std::size_t server) const {
  AUTOPIPE_EXPECT(server < config_.num_servers);
  return link_up_[server] != 0 ? nic_bw_[server] : 0.0;
}

BytesPerSec Cluster::configured_nic_bandwidth(std::size_t server) const {
  AUTOPIPE_EXPECT(server < config_.num_servers);
  return nic_bw_[server];
}

void Cluster::set_worker_down(WorkerId worker) {
  AUTOPIPE_EXPECT(worker < num_workers());
  if (worker_up_[worker] == 0) return;
  worker_up_[worker] = 0;
  // Instant first: everything the preemption triggers (dropped work,
  // executor recovery scheduling) chains to this fault as ambient cause.
  worker_down_eid_[worker] =
      sim_.tracer().instant(trace::Category::kFault, "gpu_down", sim_.now(),
                            static_cast<int>(worker), 0);
  gpu(worker).set_available(false);
  sim_.metrics().add("cluster.gpu_down", 1.0);
  notify_worker_state(worker, false);
}

void Cluster::set_worker_up(WorkerId worker) {
  AUTOPIPE_EXPECT(worker < num_workers());
  if (worker_up_[worker] != 0) return;
  worker_up_[worker] = 1;
  // The recovery is explicitly caused by the outage it ends.
  sim_.tracer().instant(trace::Category::kFault, "gpu_up", sim_.now(),
                        static_cast<int>(worker), 0, {},
                        worker_down_eid_[worker]);
  gpu(worker).set_available(true);
  sim_.metrics().add("cluster.gpu_up", 1.0);
  notify_worker_state(worker, true);
}

bool Cluster::worker_up(WorkerId worker) const {
  AUTOPIPE_EXPECT(worker < num_workers());
  return worker_up_[worker] != 0;
}

void Cluster::set_link_down(std::size_t server) {
  AUTOPIPE_EXPECT(server < config_.num_servers);
  if (link_up_[server] == 0) return;
  link_up_[server] = 0;
  // Instant first: stalled-flow reschedules and switch aborts triggered by
  // this outage chain to it as ambient cause.
  link_down_eid_[server] =
      sim_.tracer().instant(trace::Category::kFault, "link_down", sim_.now(),
                            trace::kPidResource, static_cast<int>(server));
  network_.set_resource_down(nic_tx_[server]);
  network_.set_resource_down(nic_rx_[server]);
  sim_.metrics().add("cluster.link_down", 1.0);
  notify_link_state(server, false);
}

void Cluster::set_link_up(std::size_t server) {
  AUTOPIPE_EXPECT(server < config_.num_servers);
  if (link_up_[server] != 0) return;
  link_up_[server] = 1;
  // The restore is explicitly caused by the outage it ends; resumed flow
  // completions then chain to the restore via the ambient cause.
  sim_.tracer().instant(trace::Category::kFault, "link_up", sim_.now(),
                        trace::kPidResource, static_cast<int>(server), {},
                        link_down_eid_[server]);
  network_.set_resource_up(nic_tx_[server]);
  network_.set_resource_up(nic_rx_[server]);
  sim_.metrics().add("cluster.link_up", 1.0);
  notify_link_state(server, true);
}

bool Cluster::link_up(std::size_t server) const {
  AUTOPIPE_EXPECT(server < config_.num_servers);
  return link_up_[server] != 0;
}

void Cluster::set_profiler_muted(WorkerId worker, bool muted) {
  AUTOPIPE_EXPECT(worker < num_workers());
  if ((profiler_muted_[worker] != 0) == muted) return;
  profiler_muted_[worker] = muted ? 1 : 0;
  if (sim_.tracer().enabled()) {
    sim_.tracer().instant(trace::Category::kFault,
                          muted ? "profiler_mute" : "profiler_unmute",
                          sim_.now(), static_cast<int>(worker), 0);
  }
}

bool Cluster::profiler_muted(WorkerId worker) const {
  AUTOPIPE_EXPECT(worker < num_workers());
  return profiler_muted_[worker] != 0;
}

void Cluster::add_background_job(WorkerId worker) {
  GpuExecutor& g = gpu(worker);
  g.set_tenant_count(g.tenant_count() + 1);
  if (sim_.tracer().enabled()) {
    sim_.tracer().instant(trace::Category::kResource, "bg_add", sim_.now(),
                          trace::kPidResource, static_cast<int>(worker),
                          {trace::arg("tenants", g.tenant_count())});
  }
}

void Cluster::remove_background_job(WorkerId worker) {
  GpuExecutor& g = gpu(worker);
  AUTOPIPE_EXPECT_MSG(g.tenant_count() > 1,
                      "no background job to remove on worker " << worker);
  g.set_tenant_count(g.tenant_count() - 1);
  if (sim_.tracer().enabled()) {
    sim_.tracer().instant(trace::Category::kResource, "bg_remove", sim_.now(),
                          trace::kPidResource, static_cast<int>(worker),
                          {trace::arg("tenants", g.tenant_count())});
  }
}

std::uint64_t Cluster::add_worker_state_callback(WorkerStateCallback cb) {
  const std::uint64_t token = next_callback_token_++;
  worker_state_callbacks_.emplace_back(token, std::move(cb));
  return token;
}

void Cluster::remove_worker_state_callback(std::uint64_t token) {
  for (auto it = worker_state_callbacks_.begin();
       it != worker_state_callbacks_.end(); ++it) {
    if (it->first == token) {
      worker_state_callbacks_.erase(it);
      return;
    }
  }
}

void Cluster::set_worker_state_callback(WorkerStateCallback cb) {
  for (auto it = worker_state_callbacks_.begin();
       it != worker_state_callbacks_.end(); ++it) {
    if (it->first == 0) {
      if (cb)
        it->second = std::move(cb);
      else
        worker_state_callbacks_.erase(it);
      return;
    }
  }
  if (cb) worker_state_callbacks_.emplace_back(0, std::move(cb));
}

std::uint64_t Cluster::add_link_state_callback(LinkStateCallback cb) {
  const std::uint64_t token = next_callback_token_++;
  link_state_callbacks_.emplace_back(token, std::move(cb));
  return token;
}

void Cluster::remove_link_state_callback(std::uint64_t token) {
  for (auto it = link_state_callbacks_.begin();
       it != link_state_callbacks_.end(); ++it) {
    if (it->first == token) {
      link_state_callbacks_.erase(it);
      return;
    }
  }
}

void Cluster::set_link_state_callback(LinkStateCallback cb) {
  for (auto it = link_state_callbacks_.begin();
       it != link_state_callbacks_.end(); ++it) {
    if (it->first == 0) {
      if (cb)
        it->second = std::move(cb);
      else
        link_state_callbacks_.erase(it);
      return;
    }
  }
  if (cb) link_state_callbacks_.emplace_back(0, std::move(cb));
}

void Cluster::notify_worker_state(WorkerId worker, bool up) {
  // Copy: an observer may unregister (or register) from within its callback
  // (an executor tearing down a switch attempt), which would invalidate
  // iterators into the live vector.
  auto observers = worker_state_callbacks_;
  for (auto& [token, cb] : observers)
    if (cb) cb(worker, up);
}

void Cluster::notify_link_state(std::size_t server, bool up) {
  auto observers = link_state_callbacks_;
  for (auto& [token, cb] : observers)
    if (cb) cb(server, up);
}

}  // namespace autopipe::sim
