// Event-driven pipeline-parallel training executor.
//
// Runs a work partition on the simulated cluster: per-stage FP/BP compute
// tasks on the stage's GPUs, activation/gradient flows across the network,
// weight-synchronization collectives inside replicated stages, and — the
// part that makes AutoPipe possible — *live partition switching* while the
// pipeline keeps running.
//
// Mini-batch routing: a replicated stage serves whole mini-batches
// round-robin across its replicas (PipeDream's replication semantics), so a
// batch's route fixes one worker per stage at injection time. In-flight
// batches complete on the route they started with even across a partition
// switch; PipeDream's weight stashing is what makes that sound, and the
// executor models its memory cost in memory.hpp.
//
// Switching modes:
//  * kStopTheWorld — the straw-man of §3.1: stop injecting, drain, move the
//    re-homed layers' weights, refill. The drain+refill bubble is visible in
//    the iteration-time series.
//  * kFineGrained — AutoPipe §4.4: weight migration flows start immediately
//    and contend with training traffic; the affected workers pay a
//    layer-by-layer restaging overhead; injection never stops, and the new
//    assignment takes effect for batches injected after the migration
//    completes (earlier batches finish on stashed weights).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "comm/collective.hpp"
#include "comm/framework.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "models/model.hpp"
#include "partition/partition.hpp"
#include "pipeline/report.hpp"
#include "pipeline/schedule.hpp"
#include "sim/cluster.hpp"

namespace autopipe::pipeline {

/// Protocol phase of a partition switch. Every switch is a staged
/// transaction — Prepare (plan the migration, pick donors) → Drain
/// (stop-the-world only: wait for in-flight batches) → Transfer (weight
/// migration flows on the wire) → Commit (adopt the new layout, restage).
/// Abort/Rollback is reachable from every non-committed phase: the
/// pre-switch partition stays authoritative and partially-received weight
/// copies are discarded (donors never relinquish theirs before Commit, so
/// rollback is always safe).
enum class SwitchPhase {
  kIdle,      ///< no switch in progress
  kPrepare,   ///< migration plan computed, donors chosen
  kDrain,     ///< stop-the-world: waiting for the pipeline to empty
  kTransfer,  ///< weight-migration flows in flight
  kCommit,    ///< terminal: new partition adopted
  kAborted,   ///< terminal: rolled back to the pre-switch partition
};

/// Stable lower-case name ("idle", "prepare", ...), used in trace events,
/// metrics names (switch.aborted.<phase>) and ledger outcomes.
const char* switch_phase_name(SwitchPhase phase);

struct ExecutorConfig {
  /// Samples per mini-batch; 0 uses the model's default.
  std::size_t batch_size = 0;
  comm::FrameworkProfile framework = comm::pytorch_profile();
  comm::SyncScheme sync_scheme = comm::SyncScheme::kRing;
  ScheduleMode mode = ScheduleMode::kAsync1F1B;
  /// Micro-batches per mini-batch for the synchronous schedules.
  std::size_t micro_batches = 4;
  /// In-flight mini-batches (PipeDream's NOW); 0 derives it from the
  /// partition.
  std::size_t in_flight = 0;
  /// Fixed restaging cost per migrated layer on an affected worker during a
  /// fine-grained switch (PipeSwitch's per-layer transmission calls).
  Seconds switch_overhead_per_layer = millis(2);
  /// Smoothing for the per-worker observed-bandwidth estimate.
  double bandwidth_ema_alpha = 0.25;
  /// GPipe's activation recomputation: discard stage-internal activations
  /// after the forward pass and recompute them at backward time. Trades
  /// one extra forward pass of compute for an O(stage) smaller activation
  /// stash (§2.1: "GPipe recomputes the FP").
  bool recompute_activations = false;
  /// Co-tenancy: 1-based job id tagged on this executor's trace events
  /// (`job=` arg on iteration marks and switch-phase instants). 0 — the
  /// single-tenant default — emits no job arg, keeping legacy artifacts
  /// byte-identical.
  std::uint64_t job_id = 0;
  /// Stop injecting new batches once the in-flight set suffices to reach
  /// run_target_. Single-tenant run() loops leave this off (the executor is
  /// the only event source, so over-injection is harmless and the historical
  /// traces depend on it); a fleet must set it or a finished job keeps
  /// training on shared GPUs while its siblings run on.
  bool halt_injection_at_target = false;
};

class PipelineExecutor {
 public:
  PipelineExecutor(sim::Cluster& cluster, const models::ModelSpec& model,
                   partition::Partition initial, ExecutorConfig config);

  /// Unregisters the cluster worker/link-state observers the constructor
  /// added (multi-slot, so several co-tenant executors can share a cluster).
  ~PipelineExecutor();

  PipelineExecutor(const PipelineExecutor&) = delete;
  PipelineExecutor& operator=(const PipelineExecutor&) = delete;

  /// Invoked after every completed iteration (weight update) with the count
  /// so far; the AutoPipe controller and the dynamic-resource traces hook
  /// here. Safe to call request_switch() from inside.
  using IterationCallback = std::function<void(std::size_t iterations)>;
  void set_iteration_callback(IterationCallback cb);

  /// Run `iterations` mini-batch updates; throughput is measured after the
  /// first `warmup` of them. Resumable: consecutive runs continue the same
  /// training timeline.
  ExecutionReport run(std::size_t iterations, std::size_t warmup = 0);

  /// Split-phase run for co-tenant fleets, where one caller drives the
  /// simulator for several executors at once: begin_run primes the pipeline
  /// and captures measurement baselines (but pumps no events); the caller
  /// steps the shared simulator until run_complete(); finish_run() closes
  /// the measurement window *at that moment* and returns the report.
  /// run() == begin_run + step-until-complete + finish_run.
  void begin_run(std::size_t iterations, std::size_t warmup = 0);
  bool run_complete() const { return completed_iterations_ >= run_target_; }
  ExecutionReport finish_run();

  enum class SwitchMode { kStopTheWorld, kFineGrained };

  /// Adopt a new partition. Returns false (no-op) if a switch is already in
  /// progress or the partition is identical to the current one. `round` is
  /// the decision-round ledger id driving this switch (0 = none); it tags
  /// the attempt's switch-phase trace instants so the causal trace links
  /// protocol events back to the controller decision.
  bool request_switch(partition::Partition next, SwitchMode mode,
                      std::uint64_t round = 0);
  bool switch_in_progress() const { return switch_state_ != nullptr; }

  /// Phase of the in-flight switch; kIdle when none is in progress.
  SwitchPhase switch_phase() const;

  /// One switch attempt's protocol state, as seen by phase observers. The
  /// terminal notification carries phase == kCommit or kAborted; an aborted
  /// attempt records the phase the fault interrupted in `aborted_in` and a
  /// stable reason string ("worker_loss", "link_loss", "emergency").
  struct SwitchAttempt {
    std::uint64_t id = 0;  ///< 1-based, monotonic per executor
    SwitchMode mode = SwitchMode::kFineGrained;
    SwitchPhase phase = SwitchPhase::kIdle;
    SwitchPhase aborted_in = SwitchPhase::kIdle;
    std::string abort_reason;
    Seconds requested_at = 0.0;
    Bytes migration_bytes = 0.0;    ///< planned on-wire bytes
    Bytes transferred_bytes = 0.0;  ///< bytes whose flows completed
    std::size_t transfers_total = 0;
    std::size_t transfers_done = 0;
    /// Workers/servers whose failure aborts this attempt: every donor,
    /// every recipient and every worker routed by the target partition.
    /// Sorted, deduplicated.
    std::vector<sim::WorkerId> involved_workers;
    std::vector<std::size_t> involved_servers;
    /// The layout this attempt migrates toward (rollback keeps the current
    /// partition). Shared so observers can retry an aborted target.
    std::shared_ptr<const partition::Partition> target;
  };

  /// Observe every phase transition of every switch attempt, including the
  /// terminal kCommit/kAborted notification. Multi-slot; fired
  /// synchronously, so observers must not re-enter the switch path —
  /// schedule follow-up work (retries, fault injection) through the
  /// simulator instead. Returns a token for remove_switch_observer.
  using SwitchObserver = std::function<void(const SwitchAttempt&)>;
  std::uint64_t add_switch_observer(SwitchObserver observer);
  void remove_switch_observer(std::uint64_t token);

  /// Abort the in-flight switch attempt from outside the protocol — the
  /// cluster arbiter denying a reconfiguration that a sibling job won. The
  /// rollback path is the same staged-protocol abort used for faults; a
  /// non-zero `cause_eid` (the arbiter's deny instant) becomes the abort
  /// instant's causal parent so blame chains cross the job boundary. No-op
  /// when no switch is in progress.
  void abort_switch_attempt(const char* reason, std::uint64_t cause_eid = 0);

  /// Total switch attempts accepted (committed + aborted + in-flight).
  std::size_t switch_attempts() const { return switch_attempt_counter_; }
  std::size_t switches_aborted() const { return switches_aborted_; }

  /// Per-layer primary weight-holder sets, tracked through the physical
  /// copy operations (migration flows, stash reconstructions, degraded
  /// repairs) rather than recomputed from the logical layout — so tests can
  /// verify the two never diverge. Sorted per layer.
  const std::vector<std::vector<sim::WorkerId>>& layer_holders() const {
    return layer_holders_;
  }

  /// Weight-conservation / consistent-layout invariant: every layer has at
  /// least one holder, every worker the current partition routes holds its
  /// stage's layers, and — outside a switch — no worker holds a layer the
  /// layout does not assign to it (never half-transitioned).
  bool weight_layout_consistent() const;

  const partition::Partition& current_partition() const {
    return *current_partition_;
  }
  std::size_t completed_iterations() const { return completed_iterations_; }
  std::size_t switches_performed() const { return switches_; }
  bool running() const { return running_; }

  // --- fault recovery ---------------------------------------------------

  /// Mini-batch conservation accounting across faults: at every instant,
  /// injected == completed + dropped + active. Replays are fresh
  /// injections credited against earlier drops.
  struct FaultStats {
    std::uint64_t injected = 0;   ///< batch units created (micro for sync)
    std::uint64_t completed = 0;  ///< batch units that finished BP at stage 0
    std::uint64_t dropped = 0;    ///< batch units lost to worker failures
    std::uint64_t replayed = 0;   ///< re-injections covering earlier drops
    std::uint64_t weight_reconstructions = 0;  ///< layers rebuilt from stash
    std::uint64_t orphan_events = 0;  ///< completions for dropped batches
  };
  const FaultStats& fault_stats() const { return fault_stats_; }
  std::size_t active_batches() const { return active_batches_; }

  /// Worker-loss transitions, invoked by the cluster's worker-state
  /// callback (registered in the constructor). On loss: drop every
  /// in-flight batch routed through the worker, then — if the worker's
  /// stage has surviving replicas — shrink the stage in place and keep
  /// going in degraded mode; a sole-worker stage stalls injection until
  /// the worker returns or a controller adopts an emergency plan. On
  /// return: the worker's stashed weights are assumed intact (preemption,
  /// not disk loss), so a stalled pipeline resumes by itself.
  void notify_worker_down(sim::WorkerId worker);
  void notify_worker_up(sim::WorkerId worker);

  /// Fewer replicas than planned are serving some stage while recovery
  /// runs. Cleared when a new partition is adopted.
  bool degraded() const { return degraded_; }

  /// Every stage of the current partition has at least its routed workers
  /// alive; injection pauses while false.
  bool partition_serviceable() const;

  /// Controller-driven emergency recovery: abort any in-flight switch,
  /// drop all in-flight batches (counted, replayable), cancel this
  /// executor's outstanding transfers, and adopt `next` immediately with
  /// donor-aware weight migration (alive holders first, stash
  /// reconstruction otherwise). Returns false when `next` routes through a
  /// dead or unreachable worker.
  bool emergency_adopt(partition::Partition next);

  // --- profiler-facing telemetry ---------------------------------------

  /// EMA of transfer rates observed at each worker over the last
  /// iterations — the paper's non-intrusive available-bandwidth estimate.
  BytesPerSec observed_bandwidth(sim::WorkerId worker) const;

  struct StageTiming {
    Seconds fp = 0.0;
    Seconds bp = 0.0;
  };
  /// Most recent measured FP/BP wall time per stage of the current
  /// partition (whole mini-batch, one replica).
  const std::vector<StageTiming>& last_stage_timing() const {
    return stage_timing_;
  }
  Seconds last_iteration_time() const { return last_iteration_time_; }

  const ExecutorConfig& config() const { return config_; }
  std::size_t batch_size() const { return batch_; }
  const models::ModelSpec& model() const { return model_; }

 private:
  /// One mini-batch's (or micro-batch's) pinned route through the stages.
  struct Route {
    std::shared_ptr<const partition::Partition> partition;
    std::vector<sim::WorkerId> workers;  // one per stage
    std::size_t micro_size;              // samples in this batch unit
    std::size_t sync_iteration = 0;      // owning iteration (sync modes)
    bool reversed = false;               // Chimera stream B
  };

  struct SyncIterationState {
    std::size_t fp_remaining = 0;    // micro FPs yet to finish at last stage
    std::size_t bp_remaining = 0;    // micro BPs yet to finish at stage 0
    std::size_t syncs_pending = 0;   // weight syncs in flight at flush
    std::vector<std::uint64_t> queued_bp;  // GPipe: BPs released after barrier
  };

  /// In-flight switch attempt. `attempt` is the observer-visible protocol
  /// record; the rest is migration-plan state computed at Prepare.
  struct SwitchState {
    SwitchAttempt attempt;
    /// One planned migration flow: donor → recipient carrying `layers`.
    struct MigrationPair {
      MigrationPair(sim::WorkerId s, sim::WorkerId d) : src(s), dst(d) {}
      sim::WorkerId src = 0;
      sim::WorkerId dst = 0;
      Bytes bytes = 0.0;
      std::vector<std::size_t> layers;
    };
    std::vector<MigrationPair> pairs;
    /// Layers with no alive donor: the recipient rebuilds them from its
    /// co-hosted PipeDream stash at Commit (no wire traffic).
    std::vector<std::pair<std::size_t, sim::WorkerId>> reconstructions;
    std::size_t transfers_pending = 0;
    /// Flow ids of the in-flight migration transfers, so abort can cancel
    /// exactly these (activation/gradient flows keep running).
    std::vector<sim::FlowId> migration_flows;
    /// Trace eid of the attempt's latest switch-phase instant: each phase
    /// transition chains to the previous one regardless of which event's
    /// callback drives it.
    std::uint64_t last_eid = 0;
    /// Decision-round ledger id tagged on the phase instants (0 = none).
    std::uint64_t round = 0;
  };
  bool draining() const {
    return switch_state_ != nullptr &&
           switch_state_->attempt.phase == SwitchPhase::kDrain;
  }

  // Injection / iteration control.
  void fill_pipeline();
  void inject_async_batch();
  void start_sync_iteration();
  void on_iteration_complete();
  std::size_t target_in_flight() const;

  // Per-batch pipeline progression.
  std::uint64_t make_batch(Route route);
  void start_fp(std::uint64_t batch, std::size_t stage);
  void after_fp(std::uint64_t batch, std::size_t stage);
  void start_bp(std::uint64_t batch, std::size_t stage);
  void after_bp(std::uint64_t batch, std::size_t stage);
  void finish_batch(std::uint64_t batch);

  // Stage cost helpers.
  Flops stage_fp_flops(const partition::Partition& p, std::size_t stage,
                       std::size_t samples) const;
  Flops stage_bp_flops(const partition::Partition& p, std::size_t stage,
                       std::size_t samples) const;
  Seconds stage_overhead(const partition::Partition& p,
                         std::size_t stage) const;

  // Weight synchronization.
  void maybe_async_sync(const Route& route, std::size_t stage);
  void run_flush_syncs(std::size_t sync_iter);

  // Transfers with bandwidth observation. `label` names the traffic class in
  // the trace ("act", "grad", "migrate"). Returns the flow id (0 for a
  // device-local copy) so switch rollback can cancel migration flows.
  // The transfer's trace span takes its cause from the ambient context (the
  // flow-end event that completed it, which chains back to the flow start
  // or to the fault/bandwidth instant that rescheduled it); a non-zero
  // `batch_id` additionally makes the span the batch's new chain head so
  // the batch's next compute op chains behind the transfer.
  sim::FlowId observed_transfer(const char* label, sim::WorkerId src,
                                sim::WorkerId dst, Bytes bytes,
                                std::function<void()> done,
                                std::uint64_t batch_id = 0);

  // The simulator-owned trace/metrics sinks every emission goes through.
  trace::TraceRecorder& tracer() { return cluster_.simulator().tracer(); }
  trace::MetricsRegistry& metrics() { return cluster_.simulator().metrics(); }

  // Switching — the staged protocol. start_switch_attempt runs Prepare and
  // advances into Drain (stop-the-world) or Transfer (fine-grained);
  // enter_transfer launches the migration flows; commit_switch adopts the
  // target; abort_switch rolls back to the pre-switch partition.
  bool start_switch_attempt(partition::Partition next, SwitchMode mode,
                            std::uint64_t round = 0);
  void enter_phase(SwitchPhase phase);
  void enter_transfer();
  void commit_switch();
  /// Roll back to the pre-switch partition. `resume_after` restarts
  /// injection (false only on the emergency path, which re-empties the
  /// pipeline itself right after).
  void abort_switch(const char* reason, bool resume_after = true);
  void notify_switch_observers(const SwitchAttempt& attempt);
  /// A worker/server fault that touches an in-flight attempt aborts it.
  void maybe_abort_switch_on_worker(sim::WorkerId worker);
  void maybe_abort_switch_on_link(std::size_t server);
  void adopt_partition();

  // Physical weight-holder bookkeeping (see layer_holders()).
  void set_holders_from(const partition::Partition& p);
  void holders_add(std::size_t layer, sim::WorkerId worker);
  void holders_remove(std::size_t layer, sim::WorkerId worker);

  // Fault handling.
  bool worker_alive(sim::WorkerId worker) const;
  /// Erase one batch (and its conservation accounting). `credit_replay`
  /// arms a replacement injection for async schedules.
  void drop_batch(std::uint64_t batch, bool credit_replay);
  /// Drop every batch routed through `worker`; in sync modes whole
  /// iterations are dropped (their barrier can no longer be satisfied).
  std::size_t drop_batches_through(sim::WorkerId worker);
  /// Shrink the dead worker's stage in place when replicas survive.
  void repair_degraded(sim::WorkerId worker);
  void resume_if_possible();

  sim::Cluster& cluster_;
  const models::ModelSpec& model_;
  ExecutorConfig config_;
  std::size_t batch_;
  std::shared_ptr<const partition::Partition> current_partition_;
  std::size_t in_flight_;

  struct BatchState {
    Route route;
    Seconds task_started = 0.0;
    /// Trace eid of the batch's latest op (inject, fp, bp, act/grad
    /// transfer): the next op in the chain records it as explicit cause, so
    /// the causal trace carries the true per-batch dependency even when
    /// unrelated events interleave on the ambient context.
    std::uint64_t last_eid = 0;
  };
  std::unordered_map<std::uint64_t, BatchState> batches_;
  std::uint64_t next_batch_id_ = 1;
  std::uint64_t next_round_robin_ = 0;  // replica selection counter
  std::size_t active_batches_ = 0;

  // Sync-mode state (one mini-batch iteration at a time).
  std::size_t sync_iter_counter_ = 0;
  std::unordered_map<std::size_t, SyncIterationState> sync_state_;

  // Async weight-sync gating: one outstanding collective per stage.
  std::vector<bool> sync_outstanding_;

  std::unique_ptr<SwitchState> switch_state_;
  std::size_t switches_ = 0;
  std::size_t switches_aborted_ = 0;
  std::uint64_t switch_attempt_counter_ = 0;
  Seconds total_switch_stall_ = 0.0;
  /// Invalidates in-flight migration-transfer callbacks when a fault aborts
  /// the switch they belong to.
  std::uint64_t switch_generation_ = 0;
  /// Phase observers, keyed by registration token (see add_switch_observer).
  std::vector<std::pair<std::uint64_t, SwitchObserver>> switch_observers_;
  std::uint64_t next_observer_token_ = 1;
  /// Per-layer primary weight-holder sets (sorted); see layer_holders().
  std::vector<std::vector<sim::WorkerId>> layer_holders_;

  // Fault state.
  std::unordered_set<sim::WorkerId> dead_workers_;
  std::unordered_set<sim::FlowId> live_flows_;
  FaultStats fault_stats_;
  std::uint64_t replay_credit_ = 0;
  bool degraded_ = false;
  /// Workers dropped from a replicated stage by a degraded-mode repair,
  /// keyed to the stage they left — so a preempted worker that comes back
  /// can rejoin in place. Cleared when a switch installs a new partition.
  std::unordered_map<sim::WorkerId, std::size_t> degraded_lost_;

  IterationCallback iteration_callback_;
  std::size_t completed_iterations_ = 0;
  std::size_t run_target_ = 0;
  bool running_ = false;

  /// Measurement baselines captured by begin_run, consumed by finish_run.
  struct RunContext {
    std::size_t prior = 0;
    std::size_t iterations = 0;
    std::size_t warmup = 0;
    Seconds entry_time = 0.0;
    Bytes entry_bytes = 0.0;
    std::vector<Seconds> entry_busy;
  };
  RunContext run_ctx_;

  /// Tokens for the cluster worker/link-state observers registered in the
  /// constructor (multi-slot, so several executors share one cluster).
  std::uint64_t worker_cb_token_ = 0;
  std::uint64_t link_cb_token_ = 0;

  // Telemetry.
  std::vector<Ema> bandwidth_ema_;  // per worker
  std::vector<StageTiming> stage_timing_;
  Seconds last_iteration_end_ = 0.0;
  Seconds last_iteration_time_ = 0.0;
  std::vector<Seconds> iteration_end_times_;
};

}  // namespace autopipe::pipeline
