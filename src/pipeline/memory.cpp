#include "pipeline/memory.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace autopipe::pipeline {

std::size_t weight_versions(ScheduleMode mode, std::size_t in_flight) {
  switch (mode) {
    case ScheduleMode::kAsync1F1B:
      return std::max<std::size_t>(1, in_flight);  // one per active batch
    case ScheduleMode::kTwoBW:
      return 2;  // double buffering
    case ScheduleMode::kGPipe:
    case ScheduleMode::kDapple:
    case ScheduleMode::kChimera:
      return 1;  // flush before update
  }
  return 1;
}

Bytes worker_memory_footprint(const models::ModelSpec& model,
                              const partition::Partition& partition,
                              sim::WorkerId worker, std::size_t batch,
                              ScheduleMode mode, std::size_t in_flight,
                              bool recompute_activations) {
  const std::size_t s = partition.stage_of_worker(worker);
  if (s == partition::Partition::npos) return 0.0;
  const auto& stage = partition.stage(s);

  const Bytes params =
      model.range_param_bytes(stage.first_layer, stage.last_layer);
  const std::size_t versions = weight_versions(mode, in_flight);
  // Optimizer state (momentum + variance, Adam-style): 2x parameters,
  // kept once regardless of stashed versions.
  const Bytes optimizer = 2.0 * params;

  // Stashed activations: each in-flight batch passing through this stage
  // holds its stage-internal activations until its backward pass — unless
  // recomputation is on, in which case only the stage's boundary input
  // survives (GPipe's trade).
  Bytes act_per_batch = 0.0;
  if (recompute_activations) {
    act_per_batch = stage.first_layer == 0
                        ? model.activation_bytes(0, batch)
                        : model.activation_bytes(stage.first_layer - 1, batch);
  } else {
    for (std::size_t l = stage.first_layer; l <= stage.last_layer; ++l)
      act_per_batch += model.activation_bytes(l, batch);
  }
  const std::size_t resident =
      std::max<std::size_t>(1, in_flight / stage.replication());
  return params * static_cast<double>(versions) + optimizer +
         act_per_batch * static_cast<double>(resident);
}

bool plan_fits_memory(const sim::Cluster& cluster,
                      const models::ModelSpec& model,
                      const partition::Partition& partition,
                      std::size_t batch, ScheduleMode mode,
                      std::size_t in_flight) {
  for (sim::WorkerId w : partition.all_workers()) {
    const Bytes need = worker_memory_footprint(model, partition, w, batch,
                                               mode, in_flight);
    if (need > cluster.gpu(w).spec().memory) return false;
  }
  return true;
}

}  // namespace autopipe::pipeline
