// Pipeline schedule families implemented by the executor. §2.1's taxonomy:
// asynchronous (PipeDream 1F1B with weight stashing; PipeDream-2BW with
// double-buffered weights and gradient coalescing) and synchronous (GPipe
// all-forward-then-all-backward; DAPPLE early-backward with flush; Chimera
// bidirectional pipelines).
#pragma once

#include <string>

namespace autopipe::pipeline {

enum class ScheduleMode {
  kAsync1F1B,  ///< PipeDream: continuous 1F1B, weight stashing, no flush
  kGPipe,      ///< all micro-batch FPs, then all BPs, then update (flush)
  kDapple,     ///< early backward (1F1B inside the mini-batch) + flush
  kChimera,    ///< two bidirectional DAPPLE streams sharing the workers
  kTwoBW,      ///< async 1F1B, 2 weight versions, coalesced gradient sync
};

const char* to_string(ScheduleMode mode);

/// Whether the schedule flushes (synchronous weight-update semantics).
bool is_synchronous(ScheduleMode mode);

}  // namespace autopipe::pipeline
