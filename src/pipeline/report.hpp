// Execution telemetry produced by a pipeline run: the quantities the
// paper's figures plot (samples/sec, per-iteration speed traces) plus the
// internals AutoPipe's profiler consumes (observed bandwidth, stage times).
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"

namespace autopipe::pipeline {

struct ExecutionReport {
  std::size_t iterations = 0;
  std::size_t batch_size = 0;
  Seconds elapsed = 0.0;
  /// Steady-state training speed over the measured window (after warmup):
  /// the paper's img/sec metric.
  double throughput = 0.0;
  /// Completion timestamp of every iteration (simulated seconds).
  std::vector<Seconds> iteration_end_times;
  /// Instantaneous speed at each iteration (batch / inter-completion gap),
  /// the series Figs 9-10 plot.
  std::vector<double> iteration_throughput;
  /// Mean busy fraction across the workers that took part.
  double worker_utilization = 0.0;
  /// Total bytes the run placed on the network.
  Bytes bytes_on_wire = 0.0;
  /// Partition switches the run performed and the injection stall they cost.
  std::size_t switches = 0;
  Seconds switch_stall = 0.0;
};

}  // namespace autopipe::pipeline
