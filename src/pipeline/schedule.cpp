#include "pipeline/schedule.hpp"

namespace autopipe::pipeline {

const char* to_string(ScheduleMode mode) {
  switch (mode) {
    case ScheduleMode::kAsync1F1B: return "PipeDream-1F1B";
    case ScheduleMode::kGPipe: return "GPipe";
    case ScheduleMode::kDapple: return "DAPPLE";
    case ScheduleMode::kChimera: return "Chimera";
    case ScheduleMode::kTwoBW: return "PipeDream-2BW";
  }
  return "?";
}

bool is_synchronous(ScheduleMode mode) {
  switch (mode) {
    case ScheduleMode::kGPipe:
    case ScheduleMode::kDapple:
    case ScheduleMode::kChimera:
      return true;
    case ScheduleMode::kAsync1F1B:
    case ScheduleMode::kTwoBW:
      return false;
  }
  return false;
}

}  // namespace autopipe::pipeline
